//! Offline stand-in for the subset of the `rand` crate this workspace
//! uses: `SmallRng::seed_from_u64` plus `Rng::gen_range` over primitive
//! ranges.
//!
//! The container this repository builds in has no registry access, so
//! the real crate cannot be fetched. The generator is a SplitMix64 —
//! statistically solid for scene synthesis, fully deterministic, and
//! stable across platforms (which the test-suite relies on).

use std::ops::Range;

pub mod rngs {
    /// Deterministic small-state RNG (SplitMix64 core).
    #[derive(Debug, Clone)]
    pub struct SmallRng {
        pub(crate) state: u64,
    }

    impl SmallRng {
        pub(crate) fn next_u64(&mut self) -> u64 {
            self.state = self.state.wrapping_add(0x9e37_79b9_7f4a_7c15);
            let mut z = self.state;
            z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
            z ^ (z >> 31)
        }

        /// Uniform in `[0, 1)` with 53 bits of precision.
        pub(crate) fn next_f64(&mut self) -> f64 {
            (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
        }
    }
}

use rngs::SmallRng;

/// Seeding behavior (stub of `rand::SeedableRng`).
pub trait SeedableRng: Sized {
    /// Builds the generator from a 64-bit seed.
    fn seed_from_u64(seed: u64) -> Self;
}

impl SeedableRng for SmallRng {
    fn seed_from_u64(seed: u64) -> Self {
        // Pre-mix so nearby seeds diverge immediately.
        let mut rng = SmallRng {
            state: seed ^ 0x5DEE_CE66_D1CE_4E5B,
        };
        rng.next_u64();
        SmallRng { state: rng.state }
    }
}

/// Types uniformly samplable from a `Range` (stub of
/// `rand::distributions::uniform::SampleUniform`).
pub trait SampleUniform: Sized {
    /// Draws one value from `range`.
    fn sample_in(range: Range<Self>, rng: &mut SmallRng) -> Self;
}

impl SampleUniform for f32 {
    fn sample_in(range: Range<Self>, rng: &mut SmallRng) -> Self {
        let u = rng.next_f64() as f32;
        let v = range.start + u * (range.end - range.start);
        if v >= range.end {
            range.start
        } else {
            v
        }
    }
}

impl SampleUniform for f64 {
    fn sample_in(range: Range<Self>, rng: &mut SmallRng) -> Self {
        let u = rng.next_f64();
        let v = range.start + u * (range.end - range.start);
        if v >= range.end {
            range.start
        } else {
            v
        }
    }
}

macro_rules! impl_int_uniform {
    ($($ty:ty),*) => {$(
        impl SampleUniform for $ty {
            fn sample_in(range: Range<Self>, rng: &mut SmallRng) -> Self {
                let span = (range.end as i128 - range.start as i128).max(1) as u128;
                let v = (rng.next_u64() as u128) % span;
                (range.start as i128 + v as i128) as $ty
            }
        }
    )*};
}

impl_int_uniform!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

/// Range sampling (stub of `rand::distributions::uniform::SampleRange`).
///
/// The single blanket impl ties `T` to the range's element type during
/// inference — exactly how the real crate lets
/// `rng.gen_range(-1.0..1.0) * some_f32` resolve the literals to `f32`.
pub trait SampleRange<T> {
    /// Draws one value from the range.
    fn sample_single(self, rng: &mut SmallRng) -> T;
}

impl<T: SampleUniform> SampleRange<T> for Range<T> {
    fn sample_single(self, rng: &mut SmallRng) -> T {
        T::sample_in(self, rng)
    }
}

/// Stub of the `rand::Rng` extension trait.
pub trait Rng {
    /// Draws a value uniformly from `range`.
    fn gen_range<T, R: SampleRange<T>>(&mut self, range: R) -> T;
}

impl Rng for SmallRng {
    fn gen_range<T, R: SampleRange<T>>(&mut self, range: R) -> T {
        range.sample_single(self)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn seeding_is_deterministic() {
        let mut a = SmallRng::seed_from_u64(42);
        let mut b = SmallRng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn nearby_seeds_diverge() {
        let mut a = SmallRng::seed_from_u64(1);
        let mut b = SmallRng::seed_from_u64(2);
        assert_ne!(a.next_u64(), b.next_u64());
    }

    #[test]
    fn float_ranges_respect_bounds() {
        let mut rng = SmallRng::seed_from_u64(7);
        for _ in 0..10_000 {
            let v: f32 = rng.gen_range(-2.0f32..3.0);
            assert!((-2.0..3.0).contains(&v));
        }
    }

    #[test]
    fn int_ranges_respect_bounds() {
        let mut rng = SmallRng::seed_from_u64(9);
        let mut seen_lo = false;
        for _ in 0..10_000 {
            let v: usize = rng.gen_range(3usize..9);
            assert!((3..9).contains(&v));
            seen_lo |= v == 3;
        }
        assert!(seen_lo, "range endpoints must be reachable");
    }
}
