//! Offline stand-in for the subset of `criterion` this workspace uses:
//! `Criterion::bench_function`, `Bencher::iter`, `black_box`, and the
//! `criterion_group!`/`criterion_main!` macros.
//!
//! Timing is a simple calibrated sampling loop reporting the median
//! nanoseconds per iteration. `--test` (as passed by
//! `cargo bench -- --test`) runs each benchmark exactly once for a fast
//! smoke pass.

use std::time::{Duration, Instant};

pub use std::hint::black_box;

/// Benchmark driver (stub of `criterion::Criterion`).
#[derive(Debug, Clone)]
pub struct Criterion {
    sample_size: usize,
    measurement_time: Duration,
    warm_up_time: Duration,
    test_mode: bool,
}

impl Default for Criterion {
    fn default() -> Self {
        Self {
            sample_size: 20,
            measurement_time: Duration::from_millis(500),
            warm_up_time: Duration::from_millis(200),
            test_mode: std::env::args().any(|a| a == "--test"),
        }
    }
}

impl Criterion {
    /// Number of samples per benchmark.
    pub fn sample_size(mut self, n: usize) -> Self {
        self.sample_size = n.max(1);
        self
    }

    /// Total measurement budget per benchmark.
    pub fn measurement_time(mut self, d: Duration) -> Self {
        self.measurement_time = d;
        self
    }

    /// Warm-up budget per benchmark.
    pub fn warm_up_time(mut self, d: Duration) -> Self {
        self.warm_up_time = d;
        self
    }

    /// Runs one named benchmark.
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, name: &str, mut f: F) -> &mut Self {
        let mut b = Bencher {
            iters: 1,
            elapsed: Duration::ZERO,
        };
        if self.test_mode {
            f(&mut b);
            println!("test {name} ... ok");
            return self;
        }
        // Warm up and calibrate the per-sample iteration count.
        let warm_start = Instant::now();
        let mut calib_iters = 1u64;
        let mut per_iter = Duration::from_nanos(1);
        while warm_start.elapsed() < self.warm_up_time {
            b.iters = calib_iters;
            b.elapsed = Duration::ZERO;
            f(&mut b);
            per_iter = (b.elapsed / calib_iters as u32).max(Duration::from_nanos(1));
            calib_iters = calib_iters.saturating_mul(2).min(1 << 24);
        }
        let budget = self.measurement_time / self.sample_size as u32;
        let iters = (budget.as_nanos() / per_iter.as_nanos().max(1)).clamp(1, 1 << 24) as u64;
        let mut samples: Vec<f64> = Vec::with_capacity(self.sample_size);
        for _ in 0..self.sample_size {
            b.iters = iters;
            b.elapsed = Duration::ZERO;
            f(&mut b);
            samples.push(b.elapsed.as_nanos() as f64 / iters as f64);
        }
        samples.sort_by(f64::total_cmp);
        let median = samples[samples.len() / 2];
        let (lo, hi) = (samples[0], samples[samples.len() - 1]);
        println!("{name:<32} time: [{lo:>10.1} ns {median:>10.1} ns {hi:>10.1} ns] ({iters} iters/sample)");
        self
    }
}

/// Per-benchmark measurement handle (stub of `criterion::Bencher`).
#[derive(Debug)]
pub struct Bencher {
    iters: u64,
    elapsed: Duration,
}

impl Bencher {
    /// Times `iters` invocations of `routine`.
    pub fn iter<O, R: FnMut() -> O>(&mut self, mut routine: R) {
        let start = Instant::now();
        for _ in 0..self.iters {
            black_box(routine());
        }
        self.elapsed += start.elapsed();
    }
}

/// Declares a benchmark group function (stub of
/// `criterion::criterion_group!`).
#[macro_export]
macro_rules! criterion_group {
    (name = $name:ident; config = $config:expr; targets = $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion: $crate::Criterion = $config;
            $( $target(&mut criterion); )+
        }
    };
    ($name:ident, $($target:path),+ $(,)?) => {
        $crate::criterion_group!(
            name = $name;
            config = $crate::Criterion::default();
            targets = $($target),+
        );
    };
}

/// Declares the bench `main` (stub of `criterion::criterion_main!`).
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    fn quick(c: &mut Criterion) {
        c.bench_function("noop", |b| b.iter(|| black_box(1 + 1)));
    }

    #[test]
    fn bench_function_runs_in_test_mode() {
        let mut c = Criterion {
            test_mode: true,
            ..Criterion::default()
        };
        quick(&mut c);
    }

    #[test]
    fn bench_function_measures() {
        let mut c = Criterion::default()
            .sample_size(3)
            .measurement_time(Duration::from_millis(5))
            .warm_up_time(Duration::from_millis(1));
        c.test_mode = false;
        c.bench_function("spin", |b| b.iter(|| black_box((0..100u32).sum::<u32>())));
    }
}
