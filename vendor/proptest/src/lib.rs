//! Offline stand-in for the subset of `proptest` this workspace uses.
//!
//! The build container has no registry access, so the real crate cannot
//! be fetched. This stub keeps the same surface — `proptest!`,
//! `prop_assert*`, `prop_assume!`, [`Strategy`] with
//! `prop_map`/`prop_filter`/`prop_filter_map`, range and tuple
//! strategies, and `prop::collection::vec` — over a deterministic
//! SplitMix64 generator. There is no shrinking: a failing case panics
//! with the generating seed so it can be replayed by fixing the seed in
//! [`TestRng::deterministic`].

use std::ops::Range;

/// Deterministic RNG driving all value generation.
#[derive(Debug, Clone)]
pub struct TestRng {
    state: u64,
}

impl TestRng {
    /// Seeds the generator from a test name so every test gets a
    /// distinct but reproducible stream.
    pub fn deterministic(name: &str) -> Self {
        let mut h = 0xcbf2_9ce4_8422_2325u64;
        for b in name.bytes() {
            h ^= b as u64;
            h = h.wrapping_mul(0x1000_0000_01b3);
        }
        Self { state: h }
    }

    /// Next raw 64-bit value (SplitMix64).
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9e37_79b9_7f4a_7c15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        z ^ (z >> 31)
    }

    /// Uniform in `[0, 1)`.
    pub fn next_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

/// Why a generated case did not complete.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum TestCaseError {
    /// Precondition not met (`prop_assume!` / filter): retry with a new
    /// case.
    Reject(String),
    /// Assertion failed: the test fails.
    Fail(String),
}

impl TestCaseError {
    /// A failure with the given message.
    pub fn fail(msg: impl Into<String>) -> Self {
        TestCaseError::Fail(msg.into())
    }

    /// A rejection (filtered case) with the given reason.
    pub fn reject(msg: impl Into<String>) -> Self {
        TestCaseError::Reject(msg.into())
    }
}

impl std::fmt::Display for TestCaseError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            TestCaseError::Reject(m) => write!(f, "rejected: {m}"),
            TestCaseError::Fail(m) => write!(f, "failed: {m}"),
        }
    }
}

/// Runner configuration (stub of `proptest::test_runner::Config`).
#[derive(Debug, Clone)]
pub struct ProptestConfig {
    /// Number of accepted cases to run per test.
    pub cases: u32,
}

impl ProptestConfig {
    /// Config running `cases` accepted cases.
    pub fn with_cases(cases: u32) -> Self {
        Self { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        Self { cases: 64 }
    }
}

/// A generator of values (stub of `proptest::strategy::Strategy`).
///
/// `generate` returns `None` when a filter rejected the candidate; the
/// runner counts a rejection and retries the whole case.
pub trait Strategy {
    /// The generated value type.
    type Value;

    /// Draws one candidate value.
    fn generate(&self, rng: &mut TestRng) -> Option<Self::Value>;

    /// Maps generated values through `f`.
    fn prop_map<U, F: Fn(Self::Value) -> U>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
    {
        Map { inner: self, f }
    }

    /// Rejects values failing the predicate.
    fn prop_filter<F: Fn(&Self::Value) -> bool>(
        self,
        _reason: impl ToString,
        f: F,
    ) -> Filter<Self, F>
    where
        Self: Sized,
    {
        Filter { inner: self, f }
    }

    /// Maps and filters in one step (`None` rejects).
    fn prop_filter_map<U, F: Fn(Self::Value) -> Option<U>>(
        self,
        _reason: impl ToString,
        f: F,
    ) -> FilterMap<Self, F>
    where
        Self: Sized,
    {
        FilterMap { inner: self, f }
    }
}

/// See [`Strategy::prop_map`].
#[derive(Debug, Clone)]
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S: Strategy, U, F: Fn(S::Value) -> U> Strategy for Map<S, F> {
    type Value = U;

    fn generate(&self, rng: &mut TestRng) -> Option<U> {
        self.inner.generate(rng).map(&self.f)
    }
}

/// See [`Strategy::prop_filter`].
#[derive(Debug, Clone)]
pub struct Filter<S, F> {
    inner: S,
    f: F,
}

impl<S: Strategy, F: Fn(&S::Value) -> bool> Strategy for Filter<S, F> {
    type Value = S::Value;

    fn generate(&self, rng: &mut TestRng) -> Option<S::Value> {
        self.inner.generate(rng).filter(&self.f)
    }
}

/// See [`Strategy::prop_filter_map`].
#[derive(Debug, Clone)]
pub struct FilterMap<S, F> {
    inner: S,
    f: F,
}

impl<S: Strategy, U, F: Fn(S::Value) -> Option<U>> Strategy for FilterMap<S, F> {
    type Value = U;

    fn generate(&self, rng: &mut TestRng) -> Option<U> {
        self.inner.generate(rng).and_then(&self.f)
    }
}

/// Primitive types generable from a `Range` strategy.
pub trait RangeValue: Sized {
    /// Draws one value uniformly from `range`.
    fn sample_range(range: &Range<Self>, rng: &mut TestRng) -> Self;
}

impl RangeValue for f32 {
    fn sample_range(range: &Range<Self>, rng: &mut TestRng) -> Self {
        let u = rng.next_f64() as f32;
        let v = range.start + u * (range.end - range.start);
        if v >= range.end {
            range.start
        } else {
            v
        }
    }
}

impl RangeValue for f64 {
    fn sample_range(range: &Range<Self>, rng: &mut TestRng) -> Self {
        let u = rng.next_f64();
        let v = range.start + u * (range.end - range.start);
        if v >= range.end {
            range.start
        } else {
            v
        }
    }
}

macro_rules! impl_int_range_value {
    ($($ty:ty),*) => {$(
        impl RangeValue for $ty {
            fn sample_range(range: &Range<Self>, rng: &mut TestRng) -> Self {
                let span = (range.end as i128 - range.start as i128).max(1) as u128;
                let v = (rng.next_u64() as u128) % span;
                (range.start as i128 + v as i128) as $ty
            }
        }
    )*};
}

impl_int_range_value!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl<T: RangeValue> Strategy for Range<T> {
    type Value = T;

    fn generate(&self, rng: &mut TestRng) -> Option<T> {
        Some(T::sample_range(self, rng))
    }
}

macro_rules! impl_tuple_strategy {
    ($(($($name:ident),+))*) => {$(
        impl<$($name: Strategy),+> Strategy for ($($name,)+) {
            type Value = ($($name::Value,)+);

            #[allow(non_snake_case)]
            fn generate(&self, rng: &mut TestRng) -> Option<Self::Value> {
                let ($($name,)+) = self;
                Some(($($name.generate(rng)?,)+))
            }
        }
    )*};
}

impl_tuple_strategy! {
    (A)
    (A, B)
    (A, B, C)
    (A, B, C, D)
    (A, B, C, D, E)
    (A, B, C, D, E, F)
}

/// Collection strategies (stub of `proptest::collection`).
pub mod collection {
    use super::{Strategy, TestRng};
    use std::ops::Range;

    /// Strategy producing `Vec`s with lengths drawn from a range.
    #[derive(Debug, Clone)]
    pub struct VecStrategy<S> {
        element: S,
        len: Range<usize>,
    }

    /// `Vec` strategy over `element` with length in `len`.
    pub fn vec<S: Strategy>(element: S, len: Range<usize>) -> VecStrategy<S> {
        VecStrategy { element, len }
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;

        fn generate(&self, rng: &mut TestRng) -> Option<Vec<S::Value>> {
            let n = self.len.clone().generate(rng)?;
            (0..n).map(|_| self.element.generate(rng)).collect()
        }
    }
}

/// Everything a `proptest!` user needs in scope.
pub mod prelude {
    pub use crate as prop;
    pub use crate::{
        prop_assert, prop_assert_eq, prop_assert_ne, prop_assume, proptest, ProptestConfig,
        Strategy, TestCaseError, TestRng,
    };
}

/// Fails the current case unless `cond` holds.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        $crate::prop_assert!($cond, "assertion failed: {}", stringify!($cond))
    };
    ($cond:expr, $($fmt:tt)*) => {
        if !$cond {
            return ::std::result::Result::Err($crate::TestCaseError::fail(format!($($fmt)*)));
        }
    };
}

/// Fails the current case unless `left == right`.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {{
        let (l, r) = (&$left, &$right);
        $crate::prop_assert!(*l == *r, "assertion failed: {:?} == {:?}", l, r);
    }};
    ($left:expr, $right:expr, $($fmt:tt)*) => {{
        let (l, r) = (&$left, &$right);
        $crate::prop_assert!(*l == *r, "assertion failed: {:?} == {:?}: {}", l, r, format!($($fmt)*));
    }};
}

/// Fails the current case if `left == right`.
#[macro_export]
macro_rules! prop_assert_ne {
    ($left:expr, $right:expr $(,)?) => {{
        let (l, r) = (&$left, &$right);
        $crate::prop_assert!(*l != *r, "assertion failed: {:?} != {:?}", l, r);
    }};
    ($left:expr, $right:expr, $($fmt:tt)*) => {{
        let (l, r) = (&$left, &$right);
        $crate::prop_assert!(*l != *r, "assertion failed: {:?} != {:?}: {}", l, r, format!($($fmt)*));
    }};
}

/// Rejects the current case (retried with fresh values) unless `cond`
/// holds.
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr) => {
        if !$cond {
            return ::std::result::Result::Err($crate::TestCaseError::reject(stringify!($cond)));
        }
    };
}

/// Defines property tests (stub of `proptest::proptest!`).
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($config:expr)] $($rest:tt)*) => {
        $crate::__proptest_body! { config = $config; $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_body! { config = $crate::ProptestConfig::default(); $($rest)* }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_body {
    (config = $config:expr; $(
        $(#[$meta:meta])*
        fn $name:ident($($arg:ident in $strat:expr),* $(,)?) $body:block
    )*) => {$(
        $(#[$meta])*
        fn $name() {
            let config: $crate::ProptestConfig = $config;
            let mut rng = $crate::TestRng::deterministic(concat!(module_path!(), "::", stringify!($name)));
            let mut accepted: u32 = 0;
            let mut rejected: u32 = 0;
            let max_rejects = config.cases.saturating_mul(100).saturating_add(1000);
            while accepted < config.cases {
                $(
                    let $arg = match $crate::Strategy::generate(&($strat), &mut rng) {
                        ::std::option::Option::Some(v) => v,
                        ::std::option::Option::None => {
                            rejected += 1;
                            assert!(rejected < max_rejects, "too many rejected cases");
                            continue;
                        }
                    };
                )*
                let outcome: ::std::result::Result<(), $crate::TestCaseError> =
                    (|| { $body ::std::result::Result::Ok(()) })();
                match outcome {
                    ::std::result::Result::Ok(()) => accepted += 1,
                    ::std::result::Result::Err($crate::TestCaseError::Reject(_)) => {
                        rejected += 1;
                        assert!(rejected < max_rejects, "too many rejected cases");
                    }
                    ::std::result::Result::Err($crate::TestCaseError::Fail(msg)) => {
                        panic!("proptest case {} failed after {} cases: {}",
                            stringify!($name), accepted, msg);
                    }
                }
            }
        }
    )*};
}

#[cfg(test)]
mod tests {
    use super::prelude::*;

    proptest! {
        #[test]
        fn ranges_stay_in_bounds(x in -5.0f32..5.0, n in 1usize..10) {
            prop_assert!((-5.0..5.0).contains(&x));
            prop_assert!((1..10).contains(&n));
        }

        #[test]
        fn filters_reject_and_retry(v in (0u32..100).prop_filter("even", |v| v % 2 == 0)) {
            prop_assert_eq!(v % 2, 0);
        }

        #[test]
        fn tuples_and_maps_compose(p in (0.0f32..1.0, 0.0f32..1.0).prop_map(|(a, b)| a + b)) {
            prop_assert!((0.0..2.0).contains(&p));
        }

        #[test]
        fn assume_rejects(v in 0u32..10) {
            prop_assume!(v < 8);
            prop_assert!(v < 8);
        }
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(5))]

        #[test]
        fn config_form_parses(xs in prop::collection::vec(0i32..3, 1..4)) {
            prop_assert!(!xs.is_empty() && xs.len() < 4);
            prop_assert!(xs.iter().all(|&x| (0..3).contains(&x)));
        }
    }

    #[test]
    fn deterministic_rng_replays() {
        let mut a = TestRng::deterministic("x");
        let mut b = TestRng::deterministic("x");
        assert_eq!(a.next_u64(), b.next_u64());
    }
}
