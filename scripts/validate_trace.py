#!/usr/bin/env python3
"""Minimal schema check for grtx telemetry artifacts.

Usage: validate_trace.py <chrome-trace.json> <telemetry-report.json>

Validates that the Chrome trace is loadable trace-event JSON with
per-thread name metadata and well-formed complete events, and that the
TelemetryReport JSON carries the v1 schema with the span/counter/
histogram sections the pipeline is expected to populate. Exits non-zero
with a message on the first violation.
"""

import json
import sys


def fail(message: str) -> None:
    print(f"validate_trace: FAIL: {message}", file=sys.stderr)
    sys.exit(1)


def validate_trace(path: str) -> None:
    with open(path) as f:
        trace = json.load(f)
    if trace.get("displayTimeUnit") != "ms":
        fail("trace missing displayTimeUnit=ms")
    events = trace.get("traceEvents")
    if not isinstance(events, list) or not events:
        fail("trace has no traceEvents")
    threads = {}
    spans = 0
    for event in events:
        ph = event.get("ph")
        if ph == "M":
            if event.get("name") != "thread_name":
                fail(f"unexpected metadata event {event}")
            threads[event["tid"]] = event["args"]["name"]
        elif ph == "X":
            for key in ("pid", "tid", "name", "ts", "dur"):
                if key not in event:
                    fail(f"complete event missing {key}: {event}")
            if event["ts"] < 0 or event["dur"] < 0:
                fail(f"negative timestamp in {event}")
            spans += 1
        else:
            fail(f"unexpected event phase {ph!r}")
    if not threads:
        fail("trace names no threads")
    if spans == 0:
        fail("trace contains no spans")
    orphans = {e["tid"] for e in events if e["ph"] == "X"} - set(threads)
    if orphans:
        fail(f"span tids without thread_name metadata: {sorted(orphans)}")
    named = sorted(set(threads.values()))
    print(f"validate_trace: trace OK — {spans} spans on {len(threads)} threads: {named}")


def validate_report(path: str) -> None:
    with open(path) as f:
        report = json.load(f)
    if report.get("schema") != "grtx-telemetry-v1":
        fail("report schema is not grtx-telemetry-v1")
    for section in ("spans", "counters", "histograms", "threads"):
        if not isinstance(report.get(section), list):
            fail(f"report missing list section {section!r}")
    for span in report["spans"]:
        for key in ("path", "count", "total_us", "max_us"):
            if key not in span:
                fail(f"span row missing {key}: {span}")
    for counter in report["counters"]:
        if "name" not in counter or "value" not in counter:
            fail(f"malformed counter row: {counter}")
    for hist in report["histograms"]:
        for key in ("name", "count", "p50", "p95", "p99", "max"):
            if key not in hist:
                fail(f"histogram row missing {key}: {hist}")
        if not hist["p50"] <= hist["p95"] <= hist["p99"] <= hist["max"]:
            fail(f"histogram percentiles out of order: {hist}")
    hist_names = {h["name"] for h in report["histograms"]}
    for expected in ("pipeline.frame_latency_us", "pipeline.handoff.build_depth"):
        if expected not in hist_names:
            fail(f"report missing expected histogram {expected!r}")
    print(
        "validate_trace: report OK — "
        f"{len(report['spans'])} span paths, {len(report['counters'])} counters, "
        f"{len(report['histograms'])} histograms"
    )


def main() -> None:
    if len(sys.argv) != 3:
        fail("usage: validate_trace.py <chrome-trace.json> <telemetry-report.json>")
    validate_trace(sys.argv[1])
    validate_report(sys.argv[2])


if __name__ == "__main__":
    main()
