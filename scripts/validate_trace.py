#!/usr/bin/env python3
"""Minimal schema check for grtx telemetry and profiler artifacts.

Usage:
  validate_trace.py <chrome-trace.json> <telemetry-report.json>
  validate_trace.py --profile <chrome-trace.json> <prof-report.json>

Default mode validates that the Chrome trace is loadable trace-event
JSON with per-thread name metadata and well-formed complete events, and
that the TelemetryReport JSON carries the v1 schema with the span/
counter/histogram sections the pipeline is expected to populate.

`--profile` mode validates grtx-prof artifacts instead: every trace
track must be a simulated SM (`sm-NN`) with monotone non-decreasing
virtual-clock timestamps, and the report must carry the grtx-prof-v1
schema with a complete per-(launch, SM) counter matrix (every cell
linked to a known launch, hit counts bounded by access counts, digest
and occupancy fields well-formed). Exits non-zero with a message on the
first violation.
"""

import json
import re
import sys


def fail(message: str) -> None:
    print(f"validate_trace: FAIL: {message}", file=sys.stderr)
    sys.exit(1)


def validate_trace(path: str) -> None:
    with open(path) as f:
        trace = json.load(f)
    if trace.get("displayTimeUnit") != "ms":
        fail("trace missing displayTimeUnit=ms")
    events = trace.get("traceEvents")
    if not isinstance(events, list) or not events:
        fail("trace has no traceEvents")
    threads = {}
    spans = 0
    for event in events:
        ph = event.get("ph")
        if ph == "M":
            if event.get("name") != "thread_name":
                fail(f"unexpected metadata event {event}")
            threads[event["tid"]] = event["args"]["name"]
        elif ph == "X":
            for key in ("pid", "tid", "name", "ts", "dur"):
                if key not in event:
                    fail(f"complete event missing {key}: {event}")
            if event["ts"] < 0 or event["dur"] < 0:
                fail(f"negative timestamp in {event}")
            spans += 1
        else:
            fail(f"unexpected event phase {ph!r}")
    if not threads:
        fail("trace names no threads")
    if spans == 0:
        fail("trace contains no spans")
    orphans = {e["tid"] for e in events if e["ph"] == "X"} - set(threads)
    if orphans:
        fail(f"span tids without thread_name metadata: {sorted(orphans)}")
    # Structural track checks, deliberately count-free: exact span counts
    # shift with workload and scheduler changes, so pinning them makes
    # the check brittle. What must hold is the track *shape* — uniquely
    # named tracks, at least one of them a worker pool.
    named = sorted(set(threads.values()))
    if len(named) != len(threads):
        dupes = sorted(
            name for name in set(threads.values())
            if sum(1 for v in threads.values() if v == name) > 1
        )
        fail(f"duplicate track names: {dupes}")
    if not any(re.fullmatch(r"[a-z]+(-[a-z]+)*-worker-\d{2}", name) for name in named):
        fail(f"no worker-pool track (expected some '*-worker-NN') among: {named}")
    print(f"validate_trace: trace OK — {spans} spans on {len(threads)} threads: {named}")


def validate_report(path: str) -> None:
    with open(path) as f:
        report = json.load(f)
    if report.get("schema") != "grtx-telemetry-v1":
        fail("report schema is not grtx-telemetry-v1")
    for section in ("spans", "counters", "histograms", "threads"):
        if not isinstance(report.get(section), list):
            fail(f"report missing list section {section!r}")
    for span in report["spans"]:
        for key in ("path", "count", "total_us", "max_us"):
            if key not in span:
                fail(f"span row missing {key}: {span}")
    for counter in report["counters"]:
        if "name" not in counter or "value" not in counter:
            fail(f"malformed counter row: {counter}")
    for hist in report["histograms"]:
        for key in ("name", "count", "p50", "p95", "p99", "max"):
            if key not in hist:
                fail(f"histogram row missing {key}: {hist}")
        if not hist["p50"] <= hist["p95"] <= hist["p99"] <= hist["max"]:
            fail(f"histogram percentiles out of order: {hist}")
    hist_names = {h["name"] for h in report["histograms"]}
    for expected in ("pipeline.frame_latency_us", "pipeline.handoff.build_depth"):
        if expected not in hist_names:
            fail(f"report missing expected histogram {expected!r}")
    print(
        "validate_trace: report OK — "
        f"{len(report['spans'])} span paths, {len(report['counters'])} counters, "
        f"{len(report['histograms'])} histograms"
    )


def validate_profile_trace(path: str) -> None:
    """The profiler's Chrome trace: one track per simulated SM, virtual
    timestamps (cycles) monotone non-decreasing within each track."""
    with open(path) as f:
        trace = json.load(f)
    if trace.get("displayTimeUnit") != "ms":
        fail("profile trace missing displayTimeUnit=ms")
    events = trace.get("traceEvents")
    if not isinstance(events, list) or not events:
        fail("profile trace has no traceEvents")
    threads = {}
    spans = 0
    last_ts = {}
    for event in events:
        ph = event.get("ph")
        if ph == "M":
            if event.get("name") != "thread_name":
                fail(f"unexpected metadata event {event}")
            threads[event["tid"]] = event["args"]["name"]
        elif ph == "X":
            for key in ("pid", "tid", "name", "ts", "dur"):
                if key not in event:
                    fail(f"complete event missing {key}: {event}")
            if event["ts"] < 0 or event["dur"] < 0:
                fail(f"negative timestamp in {event}")
            if event["name"] not in ("launch", "warp"):
                fail(f"profile span must be 'launch' or 'warp': {event}")
            tid = event["tid"]
            if event["ts"] < last_ts.get(tid, 0):
                fail(
                    f"virtual clock ran backwards on tid {tid}: "
                    f"{event['ts']} after {last_ts[tid]}"
                )
            last_ts[tid] = event["ts"]
            spans += 1
        else:
            fail(f"unexpected event phase {ph!r}")
    if not threads:
        fail("profile trace names no tracks")
    if spans == 0:
        fail("profile trace contains no spans")
    bad = [name for name in threads.values() if not re.fullmatch(r"sm-\d{2}", name)]
    if bad:
        fail(f"profile tracks must be simulated SMs (sm-NN), got: {sorted(bad)}")
    orphans = {e["tid"] for e in events if e["ph"] == "X"} - set(threads)
    if orphans:
        fail(f"span tids without thread_name metadata: {sorted(orphans)}")
    named = sorted(set(threads.values()))
    print(f"validate_trace: profile trace OK — {spans} spans on {len(threads)} SM tracks: {named}")


# Every per-(launch, SM) matrix cell must carry the full counter set:
# the 19 SimStats fields plus the memory-system counters.
PROF_CELL_COUNTERS = (
    "busy_cycles",
    "warps",
    "node_fetches_total",
    "node_fetches_unique",
    "internal_fetches_total",
    "internal_fetches_unique",
    "fetch_latency_cycles",
    "box_tests",
    "triangle_tests",
    "sphere_tests",
    "ellipsoid_tests",
    "ray_transforms",
    "any_hit_invocations",
    "checkpoint_writes",
    "checkpoint_reads",
    "eviction_writes",
    "peak_checkpoint_entries",
    "peak_eviction_entries",
    "rounds",
    "rays",
    "blended_gaussians",
    "l1_accesses",
    "l1_hits",
    "l2_accesses",
    "l2_hits",
    "dram_accesses",
    "prefetch_installs",
)


def validate_profile_report(path: str) -> None:
    with open(path) as f:
        report = json.load(f)
    if report.get("schema") != "grtx-prof-v1":
        fail("report schema is not grtx-prof-v1")
    gpu = report.get("gpu")
    if not isinstance(gpu, dict):
        fail("profile report missing gpu description")
    for key in ("num_sms", "clock_mhz", "warp_size", "warp_buffer_size"):
        if key not in gpu:
            fail(f"gpu description missing {key}")
    launches = report.get("launches")
    matrix = report.get("matrix")
    if not isinstance(launches, list) or not launches:
        fail("profile report has no launches")
    if not isinstance(matrix, list) or not matrix:
        fail("profile report has no counter matrix")
    keys = [launch["key"] for launch in launches]
    if len(set(keys)) != len(keys):
        fail(f"duplicate launch keys: {keys}")
    cells_per_launch = {key: 0 for key in keys}
    seen_cells = set()
    for cell in matrix:
        for key in ("launch", "sm") + PROF_CELL_COUNTERS:
            if key not in cell:
                fail(f"matrix cell missing {key!r}: launch={cell.get('launch')} sm={cell.get('sm')}")
            if key in PROF_CELL_COUNTERS and cell[key] < 0:
                fail(f"negative counter {key} in cell {cell['launch']}/{cell['sm']}")
        if cell["launch"] not in cells_per_launch:
            fail(f"matrix cell references unknown launch {cell['launch']}")
        if not 0 <= cell["sm"] < gpu["num_sms"]:
            fail(f"matrix cell SM {cell['sm']} out of range for {gpu['num_sms']} SMs")
        if (cell["launch"], cell["sm"]) in seen_cells:
            fail(f"duplicate matrix cell ({cell['launch']}, {cell['sm']})")
        seen_cells.add((cell["launch"], cell["sm"]))
        if cell["l1_hits"] > cell["l1_accesses"] or cell["l2_hits"] > cell["l2_accesses"]:
            fail(f"cache hits exceed accesses in cell {cell['launch']}/{cell['sm']}")
        for digest in ("lane_occupancy", "divergence"):
            d = cell.get(digest)
            if not isinstance(d, dict) or not {"count", "mean", "p50", "p95", "max"} <= set(d):
                fail(f"malformed {digest} digest in cell {cell['launch']}/{cell['sm']}")
        for sample in cell.get("occupancy", []):
            if len(sample) != 4 or any(v < 0 for v in sample):
                fail(f"malformed occupancy sample {sample} in cell {cell['launch']}/{cell['sm']}")
        cells_per_launch[cell["launch"]] += 1
    empty = [key for key, count in cells_per_launch.items() if count == 0]
    if empty:
        fail(f"launches with no matrix cells: {empty}")
    print(
        "validate_trace: profile report OK — "
        f"{len(launches)} launches, {len(matrix)} matrix cells, "
        f"{gpu['num_sms']} SMs @ {gpu['clock_mhz']} MHz"
    )


def main() -> None:
    args = sys.argv[1:]
    if args and args[0] == "--profile":
        if len(args) != 3:
            fail("usage: validate_trace.py --profile <chrome-trace.json> <prof-report.json>")
        validate_profile_trace(args[1])
        validate_profile_report(args[2])
        return
    if len(args) != 2:
        fail("usage: validate_trace.py <chrome-trace.json> <telemetry-report.json>")
    validate_trace(args[0])
    validate_report(args[1])


if __name__ == "__main__":
    main()
