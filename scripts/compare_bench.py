#!/usr/bin/env python3
"""Diff a freshly dumped bench JSON against a committed baseline.

Usage: compare_bench.py <baseline.json> <current.json> [--warn-over PCT]
                        [--fail-over PCT]

Both files are dump_*_baseline documents: a flat numeric "results"
object plus provenance. Every key present in both is compared; wall-time
keys (``*_ms``, ``*_ns``) regressions over the warn threshold (default
15%) print a warning — a GitHub Actions ``::warning::`` annotation when
running in CI — and count toward the exit code only past ``--fail-over``
(default: never). Non-time keys (simulated cycles, counts) are
deterministic, so *any* drift there is reported; it means the modeled
workload changed, not the host. Keys present in only one file are
listed as schema drift. Exits 0 unless ``--fail-over`` trips or the
files are malformed.
"""

import argparse
import json
import sys


def emit_warning(message: str) -> None:
    print(f"compare_bench: WARN: {message}")
    import os

    if os.environ.get("GITHUB_ACTIONS"):
        print(f"::warning title=bench regression::{message}")


def load_results(path: str) -> dict:
    try:
        with open(path) as f:
            doc = json.load(f)
    except (OSError, json.JSONDecodeError) as err:
        print(f"compare_bench: FAIL: cannot read {path}: {err}", file=sys.stderr)
        sys.exit(2)
    results = doc.get("results")
    if not isinstance(results, dict) or not results:
        print(f"compare_bench: FAIL: {path} has no results object", file=sys.stderr)
        sys.exit(2)
    return doc


def is_wall_time(key: str) -> bool:
    return key.endswith(("_ms", "_ns"))


def main() -> None:
    parser = argparse.ArgumentParser()
    parser.add_argument("baseline")
    parser.add_argument("current")
    parser.add_argument("--warn-over", type=float, default=15.0, metavar="PCT")
    parser.add_argument("--fail-over", type=float, default=None, metavar="PCT")
    args = parser.parse_args()

    base_doc = load_results(args.baseline)
    cur_doc = load_results(args.current)
    base, cur = base_doc["results"], cur_doc["results"]

    base_prov = base_doc.get("provenance", {})
    cur_prov = cur_doc.get("provenance", {})
    if base_prov != cur_prov:
        changed = sorted(
            k
            for k in set(base_prov) | set(cur_prov)
            if base_prov.get(k) != cur_prov.get(k)
        )
        print(
            "compare_bench: note: build provenance differs "
            f"({', '.join(changed)}) — wall-time deltas may reflect the "
            "environment, not the code"
        )

    missing = sorted(set(base) - set(cur))
    added = sorted(set(cur) - set(base))
    for key in missing:
        emit_warning(f"baseline key {key!r} missing from current dump (schema drift)")
    for key in added:
        print(f"compare_bench: note: new key {key!r} not in baseline")

    worst = 0.0
    regressions = 0
    for key in sorted(set(base) & set(cur)):
        b, c = base[key], cur[key]
        if not isinstance(b, (int, float)) or not isinstance(c, (int, float)):
            continue
        if is_wall_time(key):
            if b <= 0:
                continue
            delta = (c - b) / b * 100.0
            marker = ""
            if delta > args.warn_over:
                regressions += 1
                worst = max(worst, delta)
                marker = "  <-- regression"
                emit_warning(
                    f"{key}: {b:g} -> {c:g} ({delta:+.1f}% > {args.warn_over:g}% threshold)"
                )
            print(f"compare_bench: {key}: {b:g} -> {c:g} ({delta:+.1f}%){marker}")
        elif b != c:
            # Deterministic quantities: any drift is a behavior change.
            emit_warning(f"{key}: deterministic value changed {b:g} -> {c:g}")

    if regressions == 0:
        print(f"compare_bench: OK — no wall-time regression over {args.warn_over:g}%")
    if args.fail_over is not None and worst > args.fail_over:
        print(
            f"compare_bench: FAIL: worst regression {worst:+.1f}% exceeds "
            f"--fail-over {args.fail_over:g}%",
            file=sys.stderr,
        )
        sys.exit(1)


if __name__ == "__main__":
    main()
