#!/usr/bin/env python3
"""Minimal schema check for the grtx-analyze JSON report.

Usage: validate_analyze.py <grtx-analyze.json>

Validates that the report carries the grtx-analyze-v1 schema, lists the
full lint table, and is internally consistent (counts match the finding
and waiver sections, every finding names a declared lint, a clean CI
report has zero findings and no stale waivers). Exits non-zero with a
message on the first violation.
"""

import json
import sys

EXPECTED_LINTS = {
    "unsafe-needs-safety",
    "forbid-unsafe-outside-math",
    "deterministic-collections",
    "no-wall-clock",
    "float-total-order",
    "fma-containment",
    "no-unscoped-spawn",
    "panic-containment",
    "waiver-needs-reason",
    "waiver-unknown-lint",
}


def fail(message: str) -> None:
    print(f"validate_analyze: FAIL: {message}", file=sys.stderr)
    sys.exit(1)


def validate(path: str) -> None:
    with open(path) as f:
        report = json.load(f)
    if report.get("schema") != "grtx-analyze-v1":
        fail("report schema is not grtx-analyze-v1")
    for section in ("crates", "lints", "findings", "waivers"):
        if not isinstance(report.get(section), list):
            fail(f"report missing list section {section!r}")
    if not isinstance(report.get("files_scanned"), int) or report["files_scanned"] == 0:
        fail("report scanned no files")

    declared = set()
    for lint in report["lints"]:
        for key in ("id", "summary", "rationale"):
            if not lint.get(key):
                fail(f"lint row missing {key}: {lint}")
        declared.add(lint["id"])
    if declared != EXPECTED_LINTS:
        fail(
            "lint table drifted: "
            f"missing {sorted(EXPECTED_LINTS - declared)}, "
            f"unexpected {sorted(declared - EXPECTED_LINTS)}"
        )

    for finding in report["findings"]:
        for key in ("lint", "file", "line", "message", "rationale"):
            if key not in finding:
                fail(f"finding row missing {key}: {finding}")
        if finding["lint"] not in declared:
            fail(f"finding names undeclared lint: {finding}")
        if not isinstance(finding["line"], int) or finding["line"] < 1:
            fail(f"finding line must be 1-based: {finding}")

    active = 0
    for waiver in report["waivers"]:
        for key in ("file", "line", "lint", "reason", "used"):
            if key not in waiver:
                fail(f"waiver row missing {key}: {waiver}")
        if waiver["used"]:
            active += 1
        else:
            fail(f"stale waiver (suppresses nothing): {waiver}")

    counts = report.get("counts")
    if not isinstance(counts, dict):
        fail("report missing counts section")
    if counts.get("findings") != len(report["findings"]):
        fail("counts.findings disagrees with the findings section")
    if counts.get("waivers") != len(report["waivers"]):
        fail("counts.waivers disagrees with the waivers section")
    if counts.get("waivers_active") != active:
        fail("counts.waivers_active disagrees with the waivers section")

    if report["findings"]:
        fail(f"{len(report['findings'])} unwaived finding(s) — the tree must be lint-clean")

    print(
        "validate_analyze: report OK — "
        f"{report['files_scanned']} files across {len(report['crates'])} crates, "
        f"0 findings, {active} active waiver(s)"
    )


def main() -> None:
    if len(sys.argv) != 2:
        fail("usage: validate_analyze.py <grtx-analyze.json>")
    validate(sys.argv[1])


if __name__ == "__main__":
    main()
