#!/usr/bin/env python3
"""Minimal schema check for the grtx-fault-v1 chaos report.

Usage: validate_fault.py <grtx-fault.json>

Validates the report the `fault_chaos` example dumps: the schema tag,
the canonical ordering of the injection log, internal consistency
between the log, the telemetry counters, and the per-frame status rows
(every injection counted, every quarantined frame accounted for), and
the acceptance flag itself (recovered frames bit-identical to the
fault-free reference). Exits non-zero with a message on the first
violation.
"""

import json
import sys

SITES = {"partition", "build", "fragment", "merge"}


def fail(message: str) -> None:
    print(f"validate_fault: FAIL: {message}", file=sys.stderr)
    sys.exit(1)


def validate(path: str) -> None:
    with open(path) as f:
        report = json.load(f)

    if report.get("schema") != "grtx-fault-v1":
        fail(f"unexpected schema tag: {report.get('schema')!r}")
    frames = report.get("frames")
    if not isinstance(frames, int) or frames < 1:
        fail(f"frames must be a positive int: {frames!r}")

    records = report.get("records")
    if not isinstance(records, list) or not records:
        fail("records must be a non-empty list — the pinned seed places faults")
    for record in records:
        for key in ("site", "frame", "camera", "unit", "attempt", "permanent"):
            if key not in record:
                fail(f"record missing {key}: {record}")
        if record["site"] not in SITES:
            fail(f"record names unknown site: {record}")
        if not 0 <= record["frame"] < frames:
            fail(f"record frame out of range: {record}")
        if not isinstance(record["permanent"], bool):
            fail(f"record permanent must be a bool: {record}")
    keys = [
        (r["site"], r["frame"], r["camera"], r["unit"], r["attempt"]) for r in records
    ]
    order = {site: i for i, site in enumerate(("partition", "build", "fragment", "merge"))}
    canonical = sorted(keys, key=lambda k: (order[k[0]],) + k[1:])
    if keys != canonical:
        fail("records are not in canonical (site, key, unit, attempt) order")
    if len(set(keys)) != len(keys):
        fail("duplicate injection records")

    counters = report.get("counters")
    if not isinstance(counters, dict):
        fail("report missing counters section")
    if counters.get("injected") != len(records):
        fail(
            f"counters.injected ({counters.get('injected')}) disagrees with "
            f"the log ({len(records)} records)"
        )
    if counters.get("retries", -1) > len(records):
        fail("more retries than injections")

    status = report.get("frame_status")
    if not isinstance(status, list) or len(status) != frames:
        fail("frame_status must carry one row per frame")
    failed = 0
    for i, row in enumerate(status):
        if row.get("index") != i:
            fail(f"frame_status out of order at row {i}: {row}")
        if row.get("status") == "failed":
            failed += 1
            if not row.get("error"):
                fail(f"failed frame carries no error: {row}")
        elif row.get("status") != "rendered":
            fail(f"unknown frame status: {row}")
    if counters.get("frames_failed") != failed:
        fail(
            f"counters.frames_failed ({counters.get('frames_failed')}) disagrees "
            f"with the status rows ({failed} failed)"
        )
    if any(r["permanent"] for r in records) and failed == 0:
        fail("permanent faults recorded but no frame was quarantined")

    if report.get("matches_reference") is not True:
        fail("stream diverged from the fault-free reference")

    print(
        "validate_fault: report OK — "
        f"{len(records)} injection(s) over {frames} frames, "
        f"{failed} quarantined, recovered frames bit-identical"
    )


def main() -> None:
    if len(sys.argv) != 2:
        fail("usage: validate_fault.py <grtx-fault.json>")
    validate(sys.argv[1])


if __name__ == "__main__":
    main()
