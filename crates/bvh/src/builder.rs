//! Binned-SAH wide-BVH construction.
//!
//! Standard top-down binned surface-area-heuristic build producing a
//! binary tree, followed by a collapse into up-to-8-wide nodes — the
//! same strategy Embree uses for the wide-BVH layouts the paper
//! configures (Section V-A). [`BuilderConfig::wide_width`] narrows the
//! collapse (e.g. to 6 for a BVH-6 baseline) so benches can report
//! depth/node-fetch deltas against the default BVH-8.

use crate::wide::{ChildKind, WideBvh, WideChild, WideNode, MAX_WIDTH};
use grtx_math::{Aabb, Vec3};

/// Number of SAH bins per axis.
const BIN_COUNT: usize = 16;

/// Input primitive for BVH construction.
#[derive(Debug, Clone, Copy)]
pub struct BuildPrim {
    /// World-space bounds of the primitive.
    pub aabb: Aabb,
    /// Split reference point (usually the AABB center).
    pub centroid: Vec3,
}

impl BuildPrim {
    /// Creates a build primitive from an AABB, using its center as
    /// centroid.
    pub fn from_aabb(aabb: Aabb) -> Self {
        Self {
            aabb,
            centroid: aabb.center(),
        }
    }
}

/// Build-time tunables.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct BuilderConfig {
    /// Leaves stop splitting at or below this primitive count.
    pub max_leaf_size: usize,
    /// SAH cost of traversing an interior node relative to one
    /// intersection test.
    pub traversal_cost: f32,
    /// Maximum children the collapse packs per wide node, clamped to
    /// `2..=`[`MAX_WIDTH`]. The default is [`MAX_WIDTH`] (BVH-8, one
    /// SIMD-kernel call per node); narrower widths exist so benches can
    /// build a BVH-6 baseline and report depth/node-fetch deltas.
    pub wide_width: usize,
}

impl BuilderConfig {
    /// The collapse width actually used: `wide_width` clamped to
    /// `2..=`[`MAX_WIDTH`].
    pub fn clamped_width(&self) -> usize {
        self.wide_width.clamp(2, MAX_WIDTH)
    }
}

impl Default for BuilderConfig {
    fn default() -> Self {
        Self {
            max_leaf_size: 4,
            traversal_cost: 1.0,
            wide_width: MAX_WIDTH,
        }
    }
}

/// Builds a wide BVH over the given primitives.
///
/// Returns an empty BVH for an empty input.
pub fn build_wide_bvh(prims: &[BuildPrim], config: &BuilderConfig) -> WideBvh {
    if prims.is_empty() {
        return WideBvh::default();
    }
    let mut indices: Vec<u32> = (0..prims.len() as u32).collect();
    let mut arena = BinaryArena {
        nodes: Vec::with_capacity(prims.len() / 2 + 1),
    };
    let root = build_binary(&mut arena, prims, &mut indices, 0, prims.len(), config);
    finish_wide(&arena, root, indices, config.clamped_width())
}

/// Collapses a finished binary arena into the wide representation.
fn finish_wide(arena: &BinaryArena, root: usize, indices: Vec<u32>, width: usize) -> WideBvh {
    let mut wide = WideBvh {
        nodes: Vec::with_capacity(arena.nodes.len() / 3 + 1),
        prim_order: indices,
        root_aabb: arena.nodes[root].aabb,
        height: 0,
    };
    if let BinaryKind::Leaf { start, count } = arena.nodes[root].kind {
        // Degenerate single-leaf tree: wrap it in a one-child root node.
        wide.nodes.push(WideNode::from_children(&[WideChild {
            aabb: arena.nodes[root].aabb,
            kind: ChildKind::Leaf { start, count },
        }]));
        wide.height = 1;
        return wide;
    }
    let (root_id, height) = collapse(arena, root, &mut wide, width);
    debug_assert_eq!(root_id, 0, "root must be node 0");
    wide.height = height;
    wide
}

#[derive(Debug)]
struct BinaryNode {
    aabb: Aabb,
    kind: BinaryKind,
}

#[derive(Debug)]
enum BinaryKind {
    Leaf { start: u32, count: u32 },
    Inner { left: usize, right: usize },
}

struct BinaryArena {
    nodes: Vec<BinaryNode>,
}

/// Recursive binned-SAH binary build over `indices[start..start+count]`.
/// Returns the arena id of the subtree root.
fn build_binary(
    arena: &mut BinaryArena,
    prims: &[BuildPrim],
    indices: &mut [u32],
    start: usize,
    count: usize,
    config: &BuilderConfig,
) -> usize {
    let slice = &indices[start..start + count];
    let mut aabb = Aabb::EMPTY;
    let mut centroid_bounds = Aabb::EMPTY;
    for &i in slice {
        aabb = aabb.union(&prims[i as usize].aabb);
        centroid_bounds.grow_point(prims[i as usize].centroid);
    }

    if count <= config.max_leaf_size {
        return push_leaf(arena, aabb, start, count);
    }

    let mid = split_with_bounds(prims, &mut indices[start..start + count], &centroid_bounds);

    let left = build_binary(arena, prims, indices, start, mid, config);
    let right = build_binary(arena, prims, indices, start + mid, count - mid, config);
    arena.nodes.push(BinaryNode {
        aabb,
        kind: BinaryKind::Inner { left, right },
    });
    arena.nodes.len() - 1
}

/// The canonical builder split of one index range: binned SAH with the
/// degenerate-binning / coincident-centroid median fallbacks, partitioning
/// `slice` in place. Returns the left-side count (always in `1..len`).
///
/// This single function is the source of truth for *every* split decision
/// — the serial recursion and the shard-frontier planner both call it, so
/// a planned frontier is always an antichain of the canonical recursion
/// tree and sharded construction reassembles the exact serial structure.
fn split_with_bounds(prims: &[BuildPrim], slice: &mut [u32], centroid_bounds: &Aabb) -> usize {
    let count = slice.len();
    match find_best_split(prims, slice, centroid_bounds) {
        Some((axis, threshold)) => {
            let mid = partition(prims, slice, axis, threshold);
            if mid == 0 || mid == count {
                count / 2 // Binning degenerated; fall back to median.
            } else {
                mid
            }
        }
        // All centroids coincide: split down the middle so construction
        // terminates even for pathological input.
        None => count / 2,
    }
}

fn push_leaf(arena: &mut BinaryArena, aabb: Aabb, start: usize, count: usize) -> usize {
    arena.nodes.push(BinaryNode {
        aabb,
        kind: BinaryKind::Leaf {
            start: start as u32,
            count: count as u32,
        },
    });
    arena.nodes.len() - 1
}

/// Finds the SAH-minimal `(axis, centroid threshold)` over binned
/// candidate splits, or `None` when the centroid bounds are degenerate.
fn find_best_split(
    prims: &[BuildPrim],
    slice: &[u32],
    centroid_bounds: &Aabb,
) -> Option<(usize, f32)> {
    let extent = centroid_bounds.extent();
    if extent.max_element() <= 0.0 {
        return None;
    }
    let mut best: Option<(usize, f32, f32)> = None; // (axis, threshold, cost)
    for axis in 0..3 {
        let axis_extent = extent[axis];
        if axis_extent <= 0.0 {
            continue;
        }
        let origin = centroid_bounds.min[axis];
        let scale = BIN_COUNT as f32 / axis_extent;

        let mut bin_aabbs = [Aabb::EMPTY; BIN_COUNT];
        let mut bin_counts = [0usize; BIN_COUNT];
        for &i in slice {
            let p = &prims[i as usize];
            let b = (((p.centroid[axis] - origin) * scale) as usize).min(BIN_COUNT - 1);
            bin_aabbs[b] = bin_aabbs[b].union(&p.aabb);
            bin_counts[b] += 1;
        }

        // Sweep from the right to precompute suffix areas/counts.
        let mut right_area = [0.0f32; BIN_COUNT];
        let mut right_count = [0usize; BIN_COUNT];
        let mut acc = Aabb::EMPTY;
        let mut cnt = 0;
        for b in (1..BIN_COUNT).rev() {
            acc = acc.union(&bin_aabbs[b]);
            cnt += bin_counts[b];
            right_area[b] = acc.surface_area();
            right_count[b] = cnt;
        }
        // Sweep from the left evaluating each split.
        let mut left_acc = Aabb::EMPTY;
        let mut left_cnt = 0usize;
        for b in 0..BIN_COUNT - 1 {
            left_acc = left_acc.union(&bin_aabbs[b]);
            left_cnt += bin_counts[b];
            if left_cnt == 0 || right_count[b + 1] == 0 {
                continue;
            }
            let cost = left_acc.surface_area() * left_cnt as f32
                + right_area[b + 1] * right_count[b + 1] as f32;
            if best.is_none_or(|(_, _, c)| cost < c) {
                let threshold = origin + (b + 1) as f32 / scale;
                best = Some((axis, threshold, cost));
            }
        }
    }
    best.map(|(axis, threshold, _)| (axis, threshold))
}

/// In-place partition by centroid threshold; returns the left-side count.
fn partition(prims: &[BuildPrim], slice: &mut [u32], axis: usize, threshold: f32) -> usize {
    let mut left = 0;
    let mut right = slice.len();
    while left < right {
        if prims[slice[left] as usize].centroid[axis] < threshold {
            left += 1;
        } else {
            right -= 1;
            slice.swap(left, right);
        }
    }
    left
}

/// Collapses a binary subtree into up-to-`width`-wide nodes; returns
/// `(wide node id, subtree height)`.
fn collapse(arena: &BinaryArena, root: usize, out: &mut WideBvh, width: usize) -> (u32, u32) {
    // Gather up to `width` subtree roots by repeatedly expanding the
    // interior child with the largest surface area (the standard
    // SAH-greedy collapse). Each expansion swaps one slot for two, so
    // the loop can overshoot `width` by at most one slot and the check
    // before expanding keeps the final count within bounds.
    let mut slots: Vec<usize> = Vec::with_capacity(width);
    match arena.nodes[root].kind {
        BinaryKind::Inner { left, right } => {
            slots.push(left);
            slots.push(right);
        }
        BinaryKind::Leaf { .. } => unreachable!("collapse called on a leaf"),
    }
    loop {
        if slots.len() >= width {
            break;
        }
        let expandable = slots
            .iter()
            .enumerate()
            .filter(|(_, &id)| matches!(arena.nodes[id].kind, BinaryKind::Inner { .. }))
            .max_by(|(_, &a), (_, &b)| {
                arena.nodes[a]
                    .aabb
                    .surface_area()
                    .total_cmp(&arena.nodes[b].aabb.surface_area())
            })
            .map(|(i, _)| i);
        let Some(i) = expandable else { break };
        let id = slots.swap_remove(i);
        match arena.nodes[id].kind {
            BinaryKind::Inner { left, right } => {
                slots.push(left);
                slots.push(right);
            }
            BinaryKind::Leaf { .. } => unreachable!(),
        }
    }

    // Reserve our node id before recursing so the root lands at index 0.
    let my_id = out.nodes.len() as u32;
    out.nodes.push(WideNode::default());

    let mut children = Vec::with_capacity(slots.len());
    let mut max_child_height = 0;
    for id in slots {
        let node = &arena.nodes[id];
        let child = match node.kind {
            BinaryKind::Leaf { start, count } => {
                max_child_height = max_child_height.max(1);
                WideChild {
                    aabb: node.aabb,
                    kind: ChildKind::Leaf { start, count },
                }
            }
            BinaryKind::Inner { .. } => {
                let (child_id, h) = collapse(arena, id, out, width);
                max_child_height = max_child_height.max(h);
                WideChild {
                    aabb: node.aabb,
                    kind: ChildKind::Node(child_id),
                }
            }
        };
        children.push(child);
    }
    out.nodes[my_id as usize] = WideNode::from_children(&children);
    (my_id, max_child_height + 1)
}

// ---------------------------------------------------------------------------
// Decomposed (sharded) construction.
//
// Scene sharding (`grtx-shard`) needs to build the *same* wide BVH the
// serial path produces, but in parallel across spatial shards. The
// decomposition mirrors the canonical recursion exactly:
//
// 1. [`plan_frontier`] replays the top of the canonical binary recursion
//    serially — every split made with [`split_with_bounds`], the exact
//    decision `build_binary` makes — until K contiguous index ranges (the
//    shards) exist;
// 2. [`build_subtree`] builds each shard's binary subtree independently
//    (callers fan these out over threads; subtrees share nothing);
// 3. [`assemble_wide_bvh`] stitches the subtrees back under the planned
//    top-of-tree splits in shard order and collapses to wide nodes.
//
// Because binary-node emission order, every split decision, and every
// AABB union are reproduced exactly (AABB unions are min/max — exact and
// order-independent in IEEE arithmetic), the assembled structure is
// **bit-identical** to [`build_wide_bvh`] for any shard count.

/// One frontier range of a [`SplitPlan`]: a contiguous slice of the index
/// array that one shard owns, in left-to-right (canonical prim-order)
/// position.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct FrontierRange {
    /// First index-array position of the range.
    pub start: usize,
    /// Number of primitives in the range.
    pub count: usize,
    /// Union of the range's primitive AABBs (the shard bounds).
    pub aabb: Aabb,
}

/// Plan node: an interior split above the frontier, or a frontier leaf.
#[derive(Debug, Clone, Copy)]
struct PlanNode {
    aabb: Aabb,
    start: usize,
    count: usize,
    /// `Some((left, right))` for splits above the frontier.
    children: Option<(usize, usize)>,
    /// Frontier ranges only: index into [`SplitPlan::ranges`].
    range: Option<usize>,
}

/// The top of the canonical binary recursion, planned down to K frontier
/// ranges. Produced by [`plan_frontier`]; consumed by
/// [`assemble_wide_bvh`].
#[derive(Debug, Clone)]
pub struct SplitPlan {
    nodes: Vec<PlanNode>,
    root: usize,
    ranges: Vec<FrontierRange>,
    /// Collapse width captured from the planning config so
    /// [`assemble_wide_bvh`] reproduces the serial build exactly.
    wide_width: usize,
}

impl SplitPlan {
    /// The frontier ranges in left-to-right index order. They partition
    /// `0..prim_count` exactly; empty for an empty input.
    pub fn ranges(&self) -> &[FrontierRange] {
        &self.ranges
    }

    /// Number of frontier ranges (shards) planned.
    pub fn shard_count(&self) -> usize {
        self.ranges.len()
    }
}

/// Plans the canonical top-of-tree splits down to (at most) `shards`
/// frontier ranges, partitioning `indices` in place exactly as the serial
/// build's ancestor splits would.
///
/// The planner repeatedly splits the most populous splittable range
/// (ties: lowest start), so shard populations stay balanced. A range is
/// splittable while it holds more than `config.max_leaf_size` primitives
/// — the same termination rule as the canonical recursion — so scenes
/// with fewer primitives than requested shards yield fewer shards.
pub fn plan_frontier(
    prims: &[BuildPrim],
    indices: &mut [u32],
    shards: usize,
    config: &BuilderConfig,
) -> SplitPlan {
    let mut plan = SplitPlan {
        nodes: Vec::new(),
        root: 0,
        ranges: Vec::new(),
        wide_width: config.clamped_width(),
    };
    if indices.is_empty() {
        return plan;
    }
    let range_node = |prims: &[BuildPrim], slice: &[u32], start: usize| {
        let mut aabb = Aabb::EMPTY;
        for &i in slice {
            aabb = aabb.union(&prims[i as usize].aabb);
        }
        PlanNode {
            aabb,
            start,
            count: slice.len(),
            children: None,
            range: None,
        }
    };
    plan.nodes.push(range_node(prims, indices, 0));
    let mut leaves: Vec<usize> = vec![0];
    while leaves.len() < shards.max(1) {
        // Most populous splittable leaf; ties broken toward the lowest
        // start so planning is fully deterministic.
        let Some(pos) = leaves
            .iter()
            .enumerate()
            .filter(|(_, &id)| plan.nodes[id].count > config.max_leaf_size)
            .max_by_key(|(_, &id)| (plan.nodes[id].count, usize::MAX - plan.nodes[id].start))
            .map(|(pos, _)| pos)
        else {
            break; // Nothing left to split: fewer shards than requested.
        };
        let id = leaves[pos];
        let (start, count) = (plan.nodes[id].start, plan.nodes[id].count);
        let slice = &mut indices[start..start + count];
        let mut centroid_bounds = Aabb::EMPTY;
        for &i in slice.iter() {
            centroid_bounds.grow_point(prims[i as usize].centroid);
        }
        let mid = split_with_bounds(prims, slice, &centroid_bounds);
        let left = range_node(prims, &indices[start..start + mid], start);
        let right = range_node(prims, &indices[start + mid..start + count], start + mid);
        let left_id = plan.nodes.len();
        plan.nodes.push(left);
        let right_id = plan.nodes.len();
        plan.nodes.push(right);
        plan.nodes[id].children = Some((left_id, right_id));
        leaves[pos] = left_id;
        leaves.push(right_id);
    }
    // Frontier in left-to-right order.
    leaves.sort_by_key(|&id| plan.nodes[id].start);
    for (i, &id) in leaves.iter().enumerate() {
        let n = &mut plan.nodes[id];
        n.range = Some(i);
        plan.ranges.push(FrontierRange {
            start: n.start,
            count: n.count,
            aabb: n.aabb,
        });
    }
    plan
}

/// One shard's binary subtree, built over its own index slice. Opaque:
/// only [`assemble_wide_bvh`] consumes it.
#[derive(Debug)]
pub struct BinarySubtree {
    nodes: Vec<BinaryNode>,
}

impl BinarySubtree {
    /// Binary nodes in this subtree (interior + leaf records).
    pub fn node_count(&self) -> usize {
        self.nodes.len()
    }
}

/// Builds the binary subtree over one frontier range. `indices` must be
/// exactly the range's slice of the planned index array (the contents
/// `plan_frontier` left there); leaf starts are recorded relative to the
/// slice and rebased during assembly.
///
/// Independent ranges share nothing, so callers may run this on any
/// number of threads in any order.
pub fn build_subtree(
    prims: &[BuildPrim],
    indices: &mut [u32],
    config: &BuilderConfig,
) -> BinarySubtree {
    let mut arena = BinaryArena {
        nodes: Vec::with_capacity(indices.len() / 2 + 1),
    };
    let count = indices.len();
    let root = build_binary(&mut arena, prims, indices, 0, count, config);
    debug_assert_eq!(root + 1, arena.nodes.len(), "subtree root must be last");
    BinarySubtree { nodes: arena.nodes }
}

/// Stitches per-shard subtrees back under the planned top-of-tree splits
/// — in shard order, with deterministic id/offset rebasing — and
/// collapses the result to the wide representation.
///
/// `subtrees` must hold one subtree per plan range, in range order;
/// `indices` is the fully partitioned index array (now the prim order).
/// The result is bit-identical to [`build_wide_bvh`] over the same
/// primitives.
///
/// # Panics
///
/// Panics if `subtrees.len()` differs from the plan's shard count.
pub fn assemble_wide_bvh(
    plan: &SplitPlan,
    subtrees: Vec<BinarySubtree>,
    indices: Vec<u32>,
) -> WideBvh {
    assert_eq!(
        subtrees.len(),
        plan.ranges.len(),
        "one subtree per planned shard"
    );
    if indices.is_empty() {
        return WideBvh::default();
    }
    let mut arena = BinaryArena {
        nodes: Vec::with_capacity(indices.len() / 2 + 1),
    };
    let mut subs: Vec<Option<BinarySubtree>> = subtrees.into_iter().map(Some).collect();
    let root = emit_plan(plan, plan.root, &mut arena, &mut subs);
    finish_wide(&arena, root, indices, plan.wide_width)
}

/// Recursively emits a plan subtree into `arena` in canonical (post-)
/// order: left block, right block, parent — exactly the order
/// `build_binary` pushes nodes. Returns the emitted subtree's root id.
fn emit_plan(
    plan: &SplitPlan,
    id: usize,
    arena: &mut BinaryArena,
    subs: &mut [Option<BinarySubtree>],
) -> usize {
    let node = &plan.nodes[id];
    match node.children {
        Some((left, right)) => {
            let l = emit_plan(plan, left, arena, subs);
            let r = emit_plan(plan, right, arena, subs);
            arena.nodes.push(BinaryNode {
                aabb: node.aabb,
                kind: BinaryKind::Inner { left: l, right: r },
            });
            arena.nodes.len() - 1
        }
        None => {
            let range = node.range.expect("frontier leaves carry a range id");
            let sub = subs[range].take().expect("one subtree per range");
            let base = arena.nodes.len();
            let offset = plan.ranges[range].start as u32;
            for bn in sub.nodes {
                arena.nodes.push(BinaryNode {
                    aabb: bn.aabb,
                    kind: match bn.kind {
                        BinaryKind::Leaf { start, count } => BinaryKind::Leaf {
                            start: start + offset,
                            count,
                        },
                        BinaryKind::Inner { left, right } => BinaryKind::Inner {
                            left: left + base,
                            right: right + base,
                        },
                    },
                });
            }
            arena.nodes.len() - 1
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn grid_prims(n: usize) -> Vec<BuildPrim> {
        (0..n)
            .map(|i| {
                let x = (i % 10) as f32;
                let y = ((i / 10) % 10) as f32;
                let z = (i / 100) as f32;
                BuildPrim::from_aabb(Aabb::from_center_half_extent(
                    Vec3::new(x, y, z),
                    Vec3::splat(0.3),
                ))
            })
            .collect()
    }

    #[test]
    fn empty_input_builds_empty_bvh() {
        let bvh = build_wide_bvh(&[], &BuilderConfig::default());
        assert_eq!(bvh.node_count(), 0);
        assert_eq!(bvh.prim_count(), 0);
    }

    #[test]
    fn single_prim_builds_single_leaf_root() {
        let prims = grid_prims(1);
        let bvh = build_wide_bvh(&prims, &BuilderConfig::default());
        assert_eq!(bvh.node_count(), 1);
        assert_eq!(bvh.prim_count(), 1);
        assert_eq!(bvh.height, 1);
    }

    #[test]
    fn structure_is_valid_for_grid() {
        let prims = grid_prims(500);
        let bvh = build_wide_bvh(&prims, &BuilderConfig::default());
        let aabbs: Vec<Aabb> = prims.iter().map(|p| p.aabb).collect();
        bvh.validate(&aabbs, 1e-4).expect("valid BVH");
    }

    #[test]
    fn all_nodes_within_width() {
        let prims = grid_prims(1000);
        let bvh = build_wide_bvh(&prims, &BuilderConfig::default());
        for n in &bvh.nodes {
            assert!(!n.is_empty() && n.len() <= MAX_WIDTH);
        }
    }

    #[test]
    fn coincident_centroids_terminate() {
        let prims: Vec<BuildPrim> = (0..64)
            .map(|_| {
                BuildPrim::from_aabb(Aabb::from_center_half_extent(Vec3::ONE, Vec3::splat(0.5)))
            })
            .collect();
        let bvh = build_wide_bvh(&prims, &BuilderConfig::default());
        assert_eq!(bvh.prim_count(), 64);
        let aabbs: Vec<Aabb> = prims.iter().map(|p| p.aabb).collect();
        bvh.validate(&aabbs, 1e-4).expect("valid BVH");
    }

    #[test]
    fn height_grows_sublinearly() {
        let prims = grid_prims(1000);
        let bvh = build_wide_bvh(&prims, &BuilderConfig::default());
        // 1000 prims, width 8, max leaf 4: height should be well under 12.
        assert!(bvh.height <= 12, "height {} too large", bvh.height);
        assert!(bvh.height >= 3);
    }

    #[test]
    fn narrower_wide_width_is_respected_and_valid() {
        let prims = grid_prims(600);
        let aabbs: Vec<Aabb> = prims.iter().map(|p| p.aabb).collect();
        for width in [2usize, 4, 6] {
            let config = BuilderConfig {
                wide_width: width,
                ..Default::default()
            };
            let bvh = build_wide_bvh(&prims, &config);
            bvh.validate(&aabbs, 1e-4).expect("valid BVH");
            for n in &bvh.nodes {
                assert!(n.len() <= width, "node wider than configured width");
            }
            // The decomposed path must reproduce the narrow build too.
            for shards in [1usize, 4] {
                assert_eq!(bvh, build_decomposed(&prims, shards, &config));
            }
        }
        // Out-of-range widths clamp instead of breaking the build.
        let clamped = BuilderConfig {
            wide_width: 99,
            ..Default::default()
        };
        assert_eq!(clamped.clamped_width(), MAX_WIDTH);
        assert_eq!(
            build_wide_bvh(&prims, &clamped),
            build_wide_bvh(&prims, &BuilderConfig::default())
        );
    }

    #[test]
    fn max_leaf_size_respected() {
        let prims = grid_prims(300);
        let config = BuilderConfig {
            max_leaf_size: 2,
            ..Default::default()
        };
        let bvh = build_wide_bvh(&prims, &config);
        for n in &bvh.nodes {
            for c in n.children() {
                if let ChildKind::Leaf { count, .. } = c.kind {
                    assert!(count <= 2, "leaf with {count} prims");
                }
            }
        }
    }

    #[test]
    fn root_aabb_covers_all_prims() {
        let prims = grid_prims(200);
        let bvh = build_wide_bvh(&prims, &BuilderConfig::default());
        for p in &prims {
            assert!(bvh.root_aabb.contains_box(&p.aabb, 1e-4));
        }
    }

    /// Plans + builds + assembles serially (no threads) — the reference
    /// decomposed path the parallel orchestration in `grtx-shard` mirrors.
    fn build_decomposed(prims: &[BuildPrim], shards: usize, config: &BuilderConfig) -> WideBvh {
        let mut indices: Vec<u32> = (0..prims.len() as u32).collect();
        let plan = plan_frontier(prims, &mut indices, shards, config);
        let mut subtrees = Vec::new();
        for range in plan.ranges() {
            let slice = &mut indices[range.start..range.start + range.count];
            subtrees.push(build_subtree(prims, slice, config));
        }
        assemble_wide_bvh(&plan, subtrees, indices)
    }

    #[test]
    fn decomposed_build_is_bit_identical_to_serial() {
        for &(n, max_leaf) in &[
            (1usize, 4usize),
            (3, 4),
            (50, 1),
            (500, 4),
            (777, 1),
            (777, 8),
        ] {
            let prims = grid_prims(n);
            let config = BuilderConfig {
                max_leaf_size: max_leaf,
                ..Default::default()
            };
            let serial = build_wide_bvh(&prims, &config);
            for shards in [1usize, 2, 3, 7, 16, 64] {
                let sharded = build_decomposed(&prims, shards, &config);
                assert_eq!(
                    serial, sharded,
                    "n={n} max_leaf={max_leaf} shards={shards}: structures diverge"
                );
            }
        }
    }

    #[test]
    fn decomposed_build_handles_coincident_centroids() {
        let prims: Vec<BuildPrim> = (0..64)
            .map(|_| {
                BuildPrim::from_aabb(Aabb::from_center_half_extent(Vec3::ONE, Vec3::splat(0.5)))
            })
            .collect();
        let config = BuilderConfig::default();
        let serial = build_wide_bvh(&prims, &config);
        for shards in [2usize, 8] {
            assert_eq!(serial, build_decomposed(&prims, shards, &config));
        }
    }

    #[test]
    fn plan_frontier_partitions_the_index_range() {
        let prims = grid_prims(321);
        let mut indices: Vec<u32> = (0..321).collect();
        let plan = plan_frontier(&prims, &mut indices, 8, &BuilderConfig::default());
        assert_eq!(plan.shard_count(), 8);
        let mut cursor = 0;
        for r in plan.ranges() {
            assert_eq!(r.start, cursor, "ranges must tile the index array");
            assert!(r.count > 0);
            cursor += r.count;
        }
        assert_eq!(cursor, 321);
        let mut sorted = indices.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..321).collect::<Vec<u32>>());
    }

    #[test]
    fn plan_frontier_caps_shards_at_splittable_ranges() {
        let prims = grid_prims(3);
        let mut indices: Vec<u32> = (0..3).collect();
        let config = BuilderConfig {
            max_leaf_size: 1,
            ..Default::default()
        };
        let plan = plan_frontier(&prims, &mut indices, 64, &config);
        assert_eq!(plan.shard_count(), 3, "3 prims can fill at most 3 shards");
        let empty = plan_frontier(&prims, &mut [], 4, &config);
        assert_eq!(empty.shard_count(), 0);
    }
}
