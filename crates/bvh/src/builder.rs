//! Binned-SAH wide-BVH construction.
//!
//! Standard top-down binned surface-area-heuristic build producing a
//! binary tree, followed by a collapse into up-to-6-wide nodes — the same
//! strategy Embree uses for its BVH-6 layout that the paper configures
//! (Section V-A).

use crate::wide::{ChildKind, WideBvh, WideChild, WideNode, MAX_WIDTH};
use grtx_math::{Aabb, Vec3};

/// Number of SAH bins per axis.
const BIN_COUNT: usize = 16;

/// Input primitive for BVH construction.
#[derive(Debug, Clone, Copy)]
pub struct BuildPrim {
    /// World-space bounds of the primitive.
    pub aabb: Aabb,
    /// Split reference point (usually the AABB center).
    pub centroid: Vec3,
}

impl BuildPrim {
    /// Creates a build primitive from an AABB, using its center as
    /// centroid.
    pub fn from_aabb(aabb: Aabb) -> Self {
        Self {
            aabb,
            centroid: aabb.center(),
        }
    }
}

/// Build-time tunables.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct BuilderConfig {
    /// Leaves stop splitting at or below this primitive count.
    pub max_leaf_size: usize,
    /// SAH cost of traversing an interior node relative to one
    /// intersection test.
    pub traversal_cost: f32,
}

impl Default for BuilderConfig {
    fn default() -> Self {
        Self {
            max_leaf_size: 4,
            traversal_cost: 1.0,
        }
    }
}

/// Builds a wide BVH over the given primitives.
///
/// Returns an empty BVH for an empty input.
pub fn build_wide_bvh(prims: &[BuildPrim], config: &BuilderConfig) -> WideBvh {
    if prims.is_empty() {
        return WideBvh::default();
    }
    let mut indices: Vec<u32> = (0..prims.len() as u32).collect();
    let mut arena = BinaryArena {
        nodes: Vec::with_capacity(prims.len() / 2 + 1),
    };
    let root = build_binary(&mut arena, prims, &mut indices, 0, prims.len(), config);

    let mut wide = WideBvh {
        nodes: Vec::with_capacity(arena.nodes.len() / 3 + 1),
        prim_order: indices,
        root_aabb: arena.nodes[root].aabb,
        height: 0,
    };
    if let BinaryKind::Leaf { start, count } = arena.nodes[root].kind {
        // Degenerate single-leaf tree: wrap it in a one-child root node.
        wide.nodes.push(WideNode {
            children: vec![WideChild {
                aabb: arena.nodes[root].aabb,
                kind: ChildKind::Leaf { start, count },
            }],
        });
        wide.height = 1;
        return wide;
    }
    let (root_id, height) = collapse(&arena, root, &mut wide);
    debug_assert_eq!(root_id, 0, "root must be node 0");
    wide.height = height;
    wide
}

struct BinaryNode {
    aabb: Aabb,
    kind: BinaryKind,
}

enum BinaryKind {
    Leaf { start: u32, count: u32 },
    Inner { left: usize, right: usize },
}

struct BinaryArena {
    nodes: Vec<BinaryNode>,
}

/// Recursive binned-SAH binary build over `indices[start..start+count]`.
/// Returns the arena id of the subtree root.
fn build_binary(
    arena: &mut BinaryArena,
    prims: &[BuildPrim],
    indices: &mut [u32],
    start: usize,
    count: usize,
    config: &BuilderConfig,
) -> usize {
    let slice = &indices[start..start + count];
    let mut aabb = Aabb::EMPTY;
    let mut centroid_bounds = Aabb::EMPTY;
    for &i in slice {
        aabb = aabb.union(&prims[i as usize].aabb);
        centroid_bounds.grow_point(prims[i as usize].centroid);
    }

    if count <= config.max_leaf_size {
        return push_leaf(arena, aabb, start, count);
    }

    let split = find_best_split(prims, slice, &centroid_bounds);
    let mid = match split {
        Some((axis, threshold)) => {
            let mid = partition(prims, &mut indices[start..start + count], axis, threshold);
            if mid == 0 || mid == count {
                count / 2 // Binning degenerated; fall back to median.
            } else {
                mid
            }
        }
        // All centroids coincide: split down the middle so construction
        // terminates even for pathological input.
        None => count / 2,
    };

    let left = build_binary(arena, prims, indices, start, mid, config);
    let right = build_binary(arena, prims, indices, start + mid, count - mid, config);
    arena.nodes.push(BinaryNode {
        aabb,
        kind: BinaryKind::Inner { left, right },
    });
    arena.nodes.len() - 1
}

fn push_leaf(arena: &mut BinaryArena, aabb: Aabb, start: usize, count: usize) -> usize {
    arena.nodes.push(BinaryNode {
        aabb,
        kind: BinaryKind::Leaf {
            start: start as u32,
            count: count as u32,
        },
    });
    arena.nodes.len() - 1
}

/// Finds the SAH-minimal `(axis, centroid threshold)` over binned
/// candidate splits, or `None` when the centroid bounds are degenerate.
fn find_best_split(
    prims: &[BuildPrim],
    slice: &[u32],
    centroid_bounds: &Aabb,
) -> Option<(usize, f32)> {
    let extent = centroid_bounds.extent();
    if extent.max_element() <= 0.0 {
        return None;
    }
    let mut best: Option<(usize, f32, f32)> = None; // (axis, threshold, cost)
    for axis in 0..3 {
        let axis_extent = extent[axis];
        if axis_extent <= 0.0 {
            continue;
        }
        let origin = centroid_bounds.min[axis];
        let scale = BIN_COUNT as f32 / axis_extent;

        let mut bin_aabbs = [Aabb::EMPTY; BIN_COUNT];
        let mut bin_counts = [0usize; BIN_COUNT];
        for &i in slice {
            let p = &prims[i as usize];
            let b = (((p.centroid[axis] - origin) * scale) as usize).min(BIN_COUNT - 1);
            bin_aabbs[b] = bin_aabbs[b].union(&p.aabb);
            bin_counts[b] += 1;
        }

        // Sweep from the right to precompute suffix areas/counts.
        let mut right_area = [0.0f32; BIN_COUNT];
        let mut right_count = [0usize; BIN_COUNT];
        let mut acc = Aabb::EMPTY;
        let mut cnt = 0;
        for b in (1..BIN_COUNT).rev() {
            acc = acc.union(&bin_aabbs[b]);
            cnt += bin_counts[b];
            right_area[b] = acc.surface_area();
            right_count[b] = cnt;
        }
        // Sweep from the left evaluating each split.
        let mut left_acc = Aabb::EMPTY;
        let mut left_cnt = 0usize;
        for b in 0..BIN_COUNT - 1 {
            left_acc = left_acc.union(&bin_aabbs[b]);
            left_cnt += bin_counts[b];
            if left_cnt == 0 || right_count[b + 1] == 0 {
                continue;
            }
            let cost = left_acc.surface_area() * left_cnt as f32
                + right_area[b + 1] * right_count[b + 1] as f32;
            if best.is_none_or(|(_, _, c)| cost < c) {
                let threshold = origin + (b + 1) as f32 / scale;
                best = Some((axis, threshold, cost));
            }
        }
    }
    best.map(|(axis, threshold, _)| (axis, threshold))
}

/// In-place partition by centroid threshold; returns the left-side count.
fn partition(prims: &[BuildPrim], slice: &mut [u32], axis: usize, threshold: f32) -> usize {
    let mut left = 0;
    let mut right = slice.len();
    while left < right {
        if prims[slice[left] as usize].centroid[axis] < threshold {
            left += 1;
        } else {
            right -= 1;
            slice.swap(left, right);
        }
    }
    left
}

/// Collapses a binary subtree into wide nodes; returns `(wide node id,
/// subtree height)`.
fn collapse(arena: &BinaryArena, root: usize, out: &mut WideBvh) -> (u32, u32) {
    // Gather up to MAX_WIDTH subtree roots by repeatedly expanding the
    // interior child with the largest surface area (the standard
    // SAH-greedy collapse).
    let mut slots: Vec<usize> = Vec::with_capacity(MAX_WIDTH);
    match arena.nodes[root].kind {
        BinaryKind::Inner { left, right } => {
            slots.push(left);
            slots.push(right);
        }
        BinaryKind::Leaf { .. } => unreachable!("collapse called on a leaf"),
    }
    loop {
        if slots.len() >= MAX_WIDTH {
            break;
        }
        let expandable = slots
            .iter()
            .enumerate()
            .filter(|(_, &id)| matches!(arena.nodes[id].kind, BinaryKind::Inner { .. }))
            .max_by(|(_, &a), (_, &b)| {
                arena.nodes[a]
                    .aabb
                    .surface_area()
                    .total_cmp(&arena.nodes[b].aabb.surface_area())
            })
            .map(|(i, _)| i);
        let Some(i) = expandable else { break };
        let id = slots.swap_remove(i);
        match arena.nodes[id].kind {
            BinaryKind::Inner { left, right } => {
                slots.push(left);
                slots.push(right);
            }
            BinaryKind::Leaf { .. } => unreachable!(),
        }
    }

    // Reserve our node id before recursing so the root lands at index 0.
    let my_id = out.nodes.len() as u32;
    out.nodes.push(WideNode {
        children: Vec::with_capacity(slots.len()),
    });

    let mut children = Vec::with_capacity(slots.len());
    let mut max_child_height = 0;
    for id in slots {
        let node = &arena.nodes[id];
        let child = match node.kind {
            BinaryKind::Leaf { start, count } => {
                max_child_height = max_child_height.max(1);
                WideChild {
                    aabb: node.aabb,
                    kind: ChildKind::Leaf { start, count },
                }
            }
            BinaryKind::Inner { .. } => {
                let (child_id, h) = collapse(arena, id, out);
                max_child_height = max_child_height.max(h);
                WideChild {
                    aabb: node.aabb,
                    kind: ChildKind::Node(child_id),
                }
            }
        };
        children.push(child);
    }
    out.nodes[my_id as usize].children = children;
    (my_id, max_child_height + 1)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn grid_prims(n: usize) -> Vec<BuildPrim> {
        (0..n)
            .map(|i| {
                let x = (i % 10) as f32;
                let y = ((i / 10) % 10) as f32;
                let z = (i / 100) as f32;
                BuildPrim::from_aabb(Aabb::from_center_half_extent(
                    Vec3::new(x, y, z),
                    Vec3::splat(0.3),
                ))
            })
            .collect()
    }

    #[test]
    fn empty_input_builds_empty_bvh() {
        let bvh = build_wide_bvh(&[], &BuilderConfig::default());
        assert_eq!(bvh.node_count(), 0);
        assert_eq!(bvh.prim_count(), 0);
    }

    #[test]
    fn single_prim_builds_single_leaf_root() {
        let prims = grid_prims(1);
        let bvh = build_wide_bvh(&prims, &BuilderConfig::default());
        assert_eq!(bvh.node_count(), 1);
        assert_eq!(bvh.prim_count(), 1);
        assert_eq!(bvh.height, 1);
    }

    #[test]
    fn structure_is_valid_for_grid() {
        let prims = grid_prims(500);
        let bvh = build_wide_bvh(&prims, &BuilderConfig::default());
        let aabbs: Vec<Aabb> = prims.iter().map(|p| p.aabb).collect();
        bvh.validate(&aabbs, 1e-4).expect("valid BVH");
    }

    #[test]
    fn all_nodes_within_width() {
        let prims = grid_prims(1000);
        let bvh = build_wide_bvh(&prims, &BuilderConfig::default());
        for n in &bvh.nodes {
            assert!(!n.children.is_empty() && n.children.len() <= MAX_WIDTH);
        }
    }

    #[test]
    fn coincident_centroids_terminate() {
        let prims: Vec<BuildPrim> = (0..64)
            .map(|_| {
                BuildPrim::from_aabb(Aabb::from_center_half_extent(Vec3::ONE, Vec3::splat(0.5)))
            })
            .collect();
        let bvh = build_wide_bvh(&prims, &BuilderConfig::default());
        assert_eq!(bvh.prim_count(), 64);
        let aabbs: Vec<Aabb> = prims.iter().map(|p| p.aabb).collect();
        bvh.validate(&aabbs, 1e-4).expect("valid BVH");
    }

    #[test]
    fn height_grows_sublinearly() {
        let prims = grid_prims(1000);
        let bvh = build_wide_bvh(&prims, &BuilderConfig::default());
        // 1000 prims, width 6, max leaf 4: height should be well under 12.
        assert!(bvh.height <= 12, "height {} too large", bvh.height);
        assert!(bvh.height >= 3);
    }

    #[test]
    fn max_leaf_size_respected() {
        let prims = grid_prims(300);
        let config = BuilderConfig {
            max_leaf_size: 2,
            ..Default::default()
        };
        let bvh = build_wide_bvh(&prims, &config);
        for n in &bvh.nodes {
            for c in &n.children {
                if let ChildKind::Leaf { count, .. } = c.kind {
                    assert!(count <= 2, "leaf with {count} prims");
                }
            }
        }
    }

    #[test]
    fn root_aabb_covers_all_prims() {
        let prims = grid_prims(200);
        let bvh = build_wide_bvh(&prims, &BuilderConfig::default());
        for p in &prims {
            assert!(bvh.root_aabb.contains_box(&p.aabb, 1e-4));
        }
    }
}
