#![forbid(unsafe_code)]

//! Acceleration structures for Gaussian ray tracing.
//!
//! This crate implements both BVH organizations the paper compares:
//!
//! * [`monolithic`] — the baseline of 3DGRT/Condor et al.: every Gaussian
//!   contributes its own bounding proxy geometry (a stretched 20-triangle
//!   icosahedron, an 80-triangle icosphere, or a single custom ellipsoid
//!   primitive) to one scene-wide BVH;
//! * [`two_level`] — the GRTX-SW structure: a TLAS whose leaves are
//!   per-Gaussian *instances*, all sharing one template BLAS (a unit
//!   sphere, or a 20/80-triangle icosphere), exploiting the insight that
//!   any anisotropic Gaussian becomes the unit sphere after a ray-space
//!   instance transform.
//!
//! Supporting modules:
//!
//! * [`builder`] — a binned-SAH builder producing up-to-8-wide BVHs,
//!   mirroring Embree-style wide-BVH configurations (the collapse width
//!   is configurable down to the BVH-6 baseline for comparisons);
//! * [`packet`] — coherent 4-ray packets amortizing world-space
//!   wide-node box tests through a shared, bit-identical result cache;
//! * [`layout`] — byte-level layout of nodes/primitives in a virtual
//!   address space, for BVH size accounting (Table II) and for the cache
//!   model of `grtx-sim`;
//! * [`traversal`] — the RT-core traversal state machine: per-ray stack,
//!   `t`-interval validation, any-hit callbacks, and the GRTX-HW
//!   checkpoint/replay mechanism;
//! * [`mod@reference`] — brute-force intersection oracles used by tests.

pub mod builder;
pub mod layout;
pub mod monolithic;
pub mod packet;
pub mod reference;
pub mod traversal;
pub mod two_level;
pub mod wide;

pub use builder::{
    assemble_wide_bvh, build_subtree, build_wide_bvh, plan_frontier, BinarySubtree, BuildPrim,
    BuilderConfig, FrontierRange, SplitPlan,
};
pub use layout::{format_bytes, AddressSpace, BvhSizeReport, LayoutConfig};
pub use monolithic::MonolithicBvh;
pub use packet::{PacketCacheStats, PacketLane, RayPacket4};
pub use traversal::{
    trace_round, trace_round_packet, AnyHitVerdict, CheckpointEntry, CheckpointSink, FetchKind,
    NullObserver, PrimTestKind, RoundOutcome, Slot, TraversalObserver, CHECKPOINT_ENTRY_BYTES,
};
pub use two_level::TwoLevelBvh;
pub use wide::{ChildKind, WideBvh, WideChild, WideNode};

use grtx_math::simd::{ray_triangle_4, Tri4};
use grtx_math::Ray;
use grtx_scene::GaussianScene;

/// Shared 4-wide mesh-leaf kernel: backface-culls and intersects up to
/// 4 gathered triangle lanes against `ray`, reproducing the scalar
/// path's exact per-lane operations (cull normal/dot first, then
/// Möller–Trumbore). Lane `i` is `Some(t)` on a front-face hit, `None`
/// when culled or missed. Both leaf organizations
/// ([`MonolithicBvh::intersect_tri4`] and
/// [`TwoLevelBvh::intersect_blas_tri4`]) route through this single
/// bit-parity-critical sequence.
pub(crate) fn intersect_tri_lanes(tris: &[[grtx_math::Vec3; 3]], ray: &Ray) -> [Option<f32>; 4] {
    let mut culled = [true; 4];
    for (i, [a, b, c]) in tris.iter().enumerate() {
        // Backface culling, with the scalar path's exact operations.
        let normal = (*b - *a).cross(*c - *a);
        culled[i] = ray.direction.dot(normal) >= 0.0;
    }
    let hit = ray_triangle_4(ray, &Tri4::from_triangles(tris));
    let mut out = [None; 4];
    for (i, &was_culled) in culled.iter().enumerate().take(tris.len()) {
        if !was_culled {
            out[i] = hit.hit(i).map(|h| h.t);
        }
    }
    out
}

/// One [`BuildPrim`] per Gaussian at the scene's bounding radius, in
/// Gaussian-id order — the shared build input of every per-Gaussian
/// organization (the two-level TLAS and the custom-ellipsoid monolithic
/// BVH). A single source keeps the serial and sharded builds of either
/// organization structurally aligned on identical primitives.
pub fn gaussian_build_prims(scene: &GaussianScene) -> Vec<BuildPrim> {
    scene
        .world_aabbs()
        .map(|(_, aabb)| BuildPrim::from_aabb(aabb))
        .collect()
}

/// Which bounding proxy represents a Gaussian inside the acceleration
/// structure (paper Figs. 5, 12, 22).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum BoundingPrimitive {
    /// Stretched regular icosahedron, 20 triangles (3DGRT baseline).
    Mesh20,
    /// Subdivided icosphere, 80 triangles (Condor et al.).
    Mesh80,
    /// One software-intersected ellipsoid primitive per Gaussian
    /// (EVER/RayGauss style custom primitive).
    CustomEllipsoid,
    /// Unit sphere intersected in hardware after the instance transform
    /// (Blackwell-class RT cores; only meaningful with a shared BLAS).
    UnitSphere,
}

impl BoundingPrimitive {
    /// Triangle count of the proxy, if it is a mesh.
    pub fn triangle_count(self) -> Option<usize> {
        match self {
            BoundingPrimitive::Mesh20 => Some(20),
            BoundingPrimitive::Mesh80 => Some(80),
            BoundingPrimitive::CustomEllipsoid | BoundingPrimitive::UnitSphere => None,
        }
    }

    /// Short label used in experiment tables ("20-tri", "sphere", ...).
    pub fn label(self) -> &'static str {
        match self {
            BoundingPrimitive::Mesh20 => "20-tri",
            BoundingPrimitive::Mesh80 => "80-tri",
            BoundingPrimitive::CustomEllipsoid => "custom",
            BoundingPrimitive::UnitSphere => "sphere",
        }
    }
}

impl std::fmt::Display for BoundingPrimitive {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.label())
    }
}

/// A built acceleration structure of either organization, ready for
/// traversal.
#[derive(Debug)]
pub enum AccelStruct {
    /// Single scene-wide BVH over per-Gaussian proxy geometry.
    Monolithic(MonolithicBvh),
    /// TLAS of instances sharing one template BLAS.
    TwoLevel(TwoLevelBvh),
}

impl AccelStruct {
    /// Builds the acceleration structure the paper variant prescribes.
    ///
    /// # Panics
    ///
    /// Panics if `primitive` is [`BoundingPrimitive::UnitSphere`] with a
    /// monolithic organization (hardware sphere primitives only exist
    /// behind instance transforms).
    pub fn build(
        scene: &GaussianScene,
        primitive: BoundingPrimitive,
        two_level: bool,
        layout: &LayoutConfig,
    ) -> Self {
        if two_level {
            AccelStruct::TwoLevel(TwoLevelBvh::build(scene, primitive, layout))
        } else {
            assert!(
                primitive != BoundingPrimitive::UnitSphere,
                "unit-sphere primitives require the two-level (shared BLAS) organization"
            );
            AccelStruct::Monolithic(MonolithicBvh::build(scene, primitive, layout))
        }
    }

    /// Size accounting for Table II / Fig. 5b.
    pub fn size_report(&self) -> &BvhSizeReport {
        match self {
            AccelStruct::Monolithic(m) => &m.size_report,
            AccelStruct::TwoLevel(t) => &t.size_report,
        }
    }

    /// Height of the structure (TLAS height + BLAS height for two-level).
    pub fn height(&self) -> u32 {
        match self {
            AccelStruct::Monolithic(m) => m.bvh.height,
            AccelStruct::TwoLevel(t) => t.height(),
        }
    }
}
