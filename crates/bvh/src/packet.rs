//! Coherent 4-ray packets amortizing wide-node box tests.
//!
//! Classic packet tracing runs four rays in lockstep; that would change
//! traversal order, observer events, and checkpoint contents — all part
//! of this simulator's bit-identical contract. [`RayPacket4`] instead
//! keeps every ray's traversal 100% sequential and amortizes only the
//! *kernel work*: the first ray of a packet to touch a wide node runs
//! one transposed [`slab_test_8x4`] call (one node load serving all four
//! rays) and caches the four per-ray results; packet-mates touching the
//! same node later read the cache instead of re-testing. Because
//! `slab_test_8x4` lane `r` is bitwise-equal to a single-ray
//! [`grtx_math::simd::slab_test_8`] call for ray `r`, the cached result
//! is exactly what the single-ray path would have computed — traversal
//! order, hit masks, `t` values, observer events, and checkpoints are
//! unchanged.
//!
//! Slab results depend only on the ray and the box, never on the
//! traversal interval, so cache entries stay valid across tracing
//! rounds — a replayed round reuses node tests from round 1 for free.
//!
//! Packets only serve *world-space* nodes (monolithic or TLAS): BLAS
//! traversal happens in instance-local ray space, where the four rays
//! diverge after the transform and share nothing. A packet must also be
//! used against a single acceleration structure, since the cache is
//! keyed by node id.

use grtx_math::simd::{slab_test_8x4, HitMask8, SoaAabbs};
use grtx_math::{Ray, RayInv};

/// Direct-mapped node-test cache entries per packet. Conflict misses
/// just recompute; 64 entries cover the working set of one root-to-leaf
/// wavefront with room to spare at ~17 KiB per packet.
const CACHE_SLOTS: usize = 64;

/// Key marking an empty cache slot (never a real node id: node vectors
/// stay far below `u32::MAX`, which is also the padding-lane sentinel).
const EMPTY_KEY: u32 = u32::MAX;

#[derive(Debug, Clone, Copy)]
struct CacheSlot {
    key: u32,
    results: [HitMask8; 4],
}

/// The packet cache's effectiveness counters: how many node tests the
/// cache served versus how many paid a transposed kernel call, and how
/// many of those misses were direct-map conflicts that evicted a live
/// entry (the signal for whether a bigger/associative cache would help).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct PacketCacheStats {
    /// Transposed kernel calls issued (cold + conflict misses).
    pub kernel_calls: u64,
    /// Node tests answered from the cache without a kernel call.
    pub cache_hits: u64,
    /// Misses that replaced a live entry (direct-map conflicts).
    pub evictions: u64,
}

impl PacketCacheStats {
    /// Accumulates another packet's counters into this one.
    pub fn absorb(&mut self, other: &PacketCacheStats) {
        self.kernel_calls += other.kernel_calls;
        self.cache_hits += other.cache_hits;
        self.evictions += other.evictions;
    }

    /// Fraction of node tests served from the cache (`0.0` when no
    /// tests ran).
    pub fn hit_rate(&self) -> f64 {
        let total = self.kernel_calls + self.cache_hits;
        if total == 0 {
            0.0
        } else {
            self.cache_hits as f64 / total as f64
        }
    }
}

/// Four coherent rays sharing wide-node box tests through a per-packet
/// result cache. See the module docs for the determinism argument.
#[derive(Debug)]
pub struct RayPacket4 {
    rays: [RayInv; 4],
    cache: Vec<CacheSlot>,
    stats: PacketCacheStats,
}

impl RayPacket4 {
    /// Creates a packet over four rays. The slab-test views are derived
    /// with the same [`Ray::inv`] the single-ray path uses, so lane `r`
    /// sees bit-identical kernel inputs.
    pub fn new(rays: [&Ray; 4]) -> Self {
        Self {
            rays: [rays[0].inv(), rays[1].inv(), rays[2].inv(), rays[3].inv()],
            cache: vec![
                CacheSlot {
                    key: EMPTY_KEY,
                    results: [HitMask8::default(); 4],
                };
                CACHE_SLOTS
            ],
            stats: PacketCacheStats::default(),
        }
    }

    /// The slab-test view of lane `lane` (used to assert that a packet
    /// lane and the ray it serves agree).
    pub fn lane_ray(&self, lane: usize) -> &RayInv {
        &self.rays[lane]
    }

    /// Tests one wide node's child bounds for lane `lane`, serving the
    /// result from the cache when a packet-mate already touched the
    /// node. Bitwise-equal to `slab_test_8(self.lane_ray(lane), bounds)`.
    pub fn node_test(&mut self, node_id: u32, bounds: &SoaAabbs, lane: usize) -> HitMask8 {
        let slot = &mut self.cache[node_id as usize % CACHE_SLOTS];
        if slot.key != node_id {
            if slot.key != EMPTY_KEY {
                self.stats.evictions += 1;
            }
            slot.key = node_id;
            slot.results = slab_test_8x4(&self.rays, bounds);
            self.stats.kernel_calls += 1;
        } else {
            self.stats.cache_hits += 1;
        }
        slot.results[lane]
    }

    /// `(transposed kernel calls, cache-served tests)` — the
    /// amortization this packet achieved.
    pub fn kernel_stats(&self) -> (u64, u64) {
        (self.stats.kernel_calls, self.stats.cache_hits)
    }

    /// Full cache-effectiveness counters: hits, misses (kernel calls),
    /// and direct-map conflict evictions.
    pub fn cache_stats(&self) -> PacketCacheStats {
        self.stats
    }
}

/// One lane of a packet, handed to `trace_round_packet`: the shared
/// packet plus which of its four rays this traversal is.
pub struct PacketLane<'a> {
    packet: &'a mut RayPacket4,
    lane: usize,
}

impl<'a> PacketLane<'a> {
    /// Borrows lane `lane` of `packet`.
    ///
    /// # Panics
    ///
    /// Panics if `lane >= 4`.
    pub fn new(packet: &'a mut RayPacket4, lane: usize) -> Self {
        assert!(lane < 4, "a packet has four lanes");
        Self { packet, lane }
    }

    /// The slab-test view this lane serves.
    pub fn ray(&self) -> &RayInv {
        self.packet.lane_ray(self.lane)
    }

    /// Cache-served node test for this lane (see
    /// [`RayPacket4::node_test`]).
    pub fn node_test(&mut self, node_id: u32, bounds: &SoaAabbs) -> HitMask8 {
        self.packet.node_test(node_id, bounds, self.lane)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use grtx_math::simd::slab_test_8;
    use grtx_math::{Aabb, Vec3};

    fn boxes() -> SoaAabbs {
        let aabbs: Vec<Aabb> = (0..8)
            .map(|i| {
                let lo = Vec3::new(i as f32, -1.0, -1.0);
                Aabb::new(lo, lo + Vec3::splat(2.0))
            })
            .collect();
        SoaAabbs::from_aabbs(&aabbs)
    }

    fn fan() -> [Ray; 4] {
        let origin = Vec3::new(-3.0, 0.0, 0.0);
        [
            Ray::new(origin, Vec3::new(1.0, 0.01, 0.0).normalized()),
            Ray::new(origin, Vec3::new(1.0, -0.01, 0.02).normalized()),
            Ray::new(origin, Vec3::new(1.0, 0.03, -0.01).normalized()),
            Ray::new(origin, Vec3::X),
        ]
    }

    #[test]
    fn cached_results_match_single_ray_kernel() {
        let rays = fan();
        let boxes = boxes();
        let mut packet = RayPacket4::new([&rays[0], &rays[1], &rays[2], &rays[3]]);
        for (lane, ray) in rays.iter().enumerate() {
            // Twice per lane: miss path and hit path must agree.
            for _ in 0..2 {
                let got = packet.node_test(7, &boxes, lane);
                assert_eq!(got, slab_test_8(&ray.inv(), &boxes));
            }
        }
        let (calls, hits) = packet.kernel_stats();
        assert_eq!(calls, 1, "one transposed call serves all four lanes");
        assert_eq!(hits, 7);
    }

    #[test]
    fn conflicting_keys_recompute_correctly() {
        let rays = fan();
        let boxes = boxes();
        let mut packet = RayPacket4::new([&rays[0], &rays[1], &rays[2], &rays[3]]);
        // Ids 3 and 3 + CACHE_SLOTS map to the same direct-mapped slot.
        let a = packet.node_test(3, &boxes, 0);
        let b = packet.node_test(3 + CACHE_SLOTS as u32, &boxes, 0);
        assert_eq!(a, slab_test_8(&rays[0].inv(), &boxes));
        assert_eq!(b, slab_test_8(&rays[0].inv(), &boxes));
        let (calls, _) = packet.kernel_stats();
        assert_eq!(calls, 2, "conflicting ids each pay a kernel call");
        assert_eq!(
            packet.cache_stats().evictions,
            1,
            "the second id evicted the first's live entry"
        );
        // Re-touching the evicted id recomputes, still correctly.
        assert_eq!(
            packet.node_test(3, &boxes, 1),
            slab_test_8(&rays[1].inv(), &boxes)
        );
        assert_eq!(
            packet.cache_stats(),
            PacketCacheStats {
                kernel_calls: 3,
                cache_hits: 0,
                evictions: 2,
            }
        );
    }

    #[test]
    fn cold_misses_are_not_evictions() {
        let rays = fan();
        let boxes = boxes();
        let mut packet = RayPacket4::new([&rays[0], &rays[1], &rays[2], &rays[3]]);
        for id in 0..CACHE_SLOTS as u32 {
            packet.node_test(id, &boxes, 0);
        }
        let stats = packet.cache_stats();
        assert_eq!(stats.kernel_calls, CACHE_SLOTS as u64);
        assert_eq!(stats.evictions, 0, "filling empty slots evicts nothing");
        assert_eq!(stats.hit_rate(), 0.0);
    }

    #[test]
    fn stats_absorb_sums_fields() {
        let mut a = PacketCacheStats {
            kernel_calls: 1,
            cache_hits: 3,
            evictions: 0,
        };
        let b = PacketCacheStats {
            kernel_calls: 2,
            cache_hits: 5,
            evictions: 1,
        };
        a.absorb(&b);
        assert_eq!(
            a,
            PacketCacheStats {
                kernel_calls: 3,
                cache_hits: 8,
                evictions: 1,
            }
        );
        assert!((a.hit_rate() - 8.0 / 11.0).abs() < 1e-12);
    }
}
