//! Wide (up to 8-ary) BVH node representation.
//!
//! The paper builds its structures with Intel Embree's wide-BVH
//! configuration (Section V-A). We use the BVH-8 variant: a wide node
//! stores the AABBs of *all* children, so one node fetch feeds up to
//! eight ray–box tests — exactly how the RT unit consumes memory, and
//! exactly one AVX2 register per SoA lane array with no wasted lanes.
//!
//! Child bounds live in a structure-of-arrays layout ([`SoaAabbs`]:
//! `min_x[8], min_y[8], …, max_z[8]` lanes, trailing lanes of
//! narrower nodes padded with empty-box sentinels) so the traversal hot
//! path can feed a whole node into the vectorized
//! [`grtx_math::simd::slab_test_8`] kernel in one call, with a
//! parallel [`ChildKind`] array saying where each occupied lane leads.

use grtx_math::simd::SoaAabbs;
use grtx_math::Aabb;

/// Maximum children per node (Embree-style BVH-8).
pub const MAX_WIDTH: usize = 8;

// One wide node is exactly one SIMD kernel call: every storage lane is a
// potential child, so tree width and kernel width must stay in lockstep.
const _: () = assert!(MAX_WIDTH == grtx_math::simd::LANES);

/// Reference from a node to one child.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ChildKind {
    /// Interior child: index into [`WideBvh::nodes`].
    Node(u32),
    /// Leaf child: a range of [`WideBvh::prim_order`].
    Leaf {
        /// First index into `prim_order`.
        start: u32,
        /// Number of primitives.
        count: u32,
    },
}

/// Sentinel stored in unoccupied child-kind lanes (never dereferenced:
/// the lane mask and child count exclude padding lanes).
const EMPTY_KIND: ChildKind = ChildKind::Node(u32::MAX);

/// One child slot of a wide node: bounding box plus reference. This is
/// the assembly/inspection view; storage inside [`WideNode`] is SoA.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct WideChild {
    /// Child bounds (tested by the parent's node fetch).
    pub aabb: Aabb,
    /// Where the child leads.
    pub kind: ChildKind,
}

/// An interior node holding 2..=8 children in SoA form: eight bounds
/// lanes (trailing lanes of narrower nodes padded with empty sentinels)
/// plus a parallel child-reference array.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct WideNode {
    /// SoA child bounds; lanes `len()..` hold the empty-box sentinel.
    pub bounds: SoaAabbs,
    /// Where each occupied lane leads; padding lanes hold a sentinel.
    pub kinds: [ChildKind; MAX_WIDTH],
}

impl WideNode {
    /// Packs child slots into the SoA lanes.
    ///
    /// # Panics
    ///
    /// Panics if more than [`MAX_WIDTH`] children are given.
    pub fn from_children(children: &[WideChild]) -> Self {
        assert!(children.len() <= MAX_WIDTH, "at most {MAX_WIDTH} children");
        let mut node = Self {
            bounds: SoaAabbs::EMPTY,
            kinds: [EMPTY_KIND; MAX_WIDTH],
        };
        for (i, child) in children.iter().enumerate() {
            node.bounds.push(child.aabb);
            node.kinds[i] = child.kind;
        }
        node
    }

    /// Number of children.
    pub fn len(&self) -> usize {
        self.bounds.len()
    }

    /// `true` for a node with no children (only seen mid-construction;
    /// never in a well-formed BVH).
    pub fn is_empty(&self) -> bool {
        self.bounds.is_empty()
    }

    /// The child in lane `i` as an AoS slot.
    ///
    /// # Panics
    ///
    /// Panics if `i >= self.len()`.
    pub fn child(&self, i: usize) -> WideChild {
        WideChild {
            aabb: self.bounds.get(i),
            kind: self.kinds[i],
        }
    }

    /// Iterates the occupied child slots in lane order.
    pub fn children(&self) -> impl Iterator<Item = WideChild> + '_ {
        (0..self.len()).map(|i| self.child(i))
    }
}

impl Default for WideNode {
    fn default() -> Self {
        Self {
            bounds: SoaAabbs::EMPTY,
            kinds: [EMPTY_KIND; MAX_WIDTH],
        }
    }
}

/// A wide BVH over an abstract primitive array.
///
/// The BVH does not own primitive data; leaves index into `prim_order`,
/// which maps to caller-side primitive ids. Node 0 is the root (for
/// non-empty inputs).
#[derive(Debug, Clone, Default, PartialEq)]
pub struct WideBvh {
    /// Interior nodes; index 0 is the root.
    pub nodes: Vec<WideNode>,
    /// Primitive ids in leaf-contiguous order.
    pub prim_order: Vec<u32>,
    /// Bounds of the whole tree.
    pub root_aabb: Aabb,
    /// Number of node levels from root to deepest leaf (a single-node
    /// tree has height 1).
    pub height: u32,
}

impl WideBvh {
    /// Number of interior nodes.
    pub fn node_count(&self) -> usize {
        self.nodes.len()
    }

    /// Number of leaf ranges across all nodes.
    pub fn leaf_count(&self) -> usize {
        self.nodes
            .iter()
            .flat_map(|n| n.children())
            .filter(|c| matches!(c.kind, ChildKind::Leaf { .. }))
            .count()
    }

    /// Number of primitives referenced.
    pub fn prim_count(&self) -> usize {
        self.prim_order.len()
    }

    /// Checks structural invariants, returning a description of the first
    /// violation. Used by tests; `eps` is the allowed float slack on
    /// parent/child containment.
    pub fn validate(&self, prim_aabbs: &[Aabb], eps: f32) -> Result<(), String> {
        if self.prim_order.is_empty() {
            return if self.nodes.is_empty() {
                Ok(())
            } else {
                Err("empty prim set but non-empty nodes".into())
            };
        }
        // Every primitive referenced exactly once.
        let mut seen = vec![false; prim_aabbs.len()];
        for &p in &self.prim_order {
            let p = p as usize;
            if p >= seen.len() {
                return Err(format!("prim id {p} out of range"));
            }
            if seen[p] {
                return Err(format!("prim id {p} referenced twice"));
            }
            seen[p] = true;
        }
        if self.prim_order.len() != prim_aabbs.len() {
            return Err(format!(
                "prim_order covers {} of {} prims",
                self.prim_order.len(),
                prim_aabbs.len()
            ));
        }
        // Recursive containment + width checks.
        self.validate_node(
            0,
            &self.root_aabb,
            prim_aabbs,
            eps,
            &mut vec![false; self.nodes.len()],
        )
    }

    fn validate_node(
        &self,
        node: u32,
        bound: &Aabb,
        prim_aabbs: &[Aabb],
        eps: f32,
        visited: &mut Vec<bool>,
    ) -> Result<(), String> {
        let idx = node as usize;
        if idx >= self.nodes.len() {
            return Err(format!("node id {node} out of range"));
        }
        if visited[idx] {
            return Err(format!("node {node} reachable twice (not a tree)"));
        }
        visited[idx] = true;
        let n = &self.nodes[idx];
        if n.is_empty() || n.len() > MAX_WIDTH {
            return Err(format!("node {node} has {} children", n.len()));
        }
        for child in n.children() {
            if !bound.contains_box(&child.aabb, eps) {
                return Err(format!("child of node {node} escapes parent bounds"));
            }
            match child.kind {
                ChildKind::Node(c) => {
                    self.validate_node(c, &child.aabb, prim_aabbs, eps, visited)?
                }
                ChildKind::Leaf { start, count } => {
                    if count == 0 {
                        return Err(format!("empty leaf under node {node}"));
                    }
                    let (s, c) = (start as usize, count as usize);
                    if s + c > self.prim_order.len() {
                        return Err(format!("leaf range {s}+{c} out of bounds"));
                    }
                    for &p in &self.prim_order[s..s + c] {
                        if !child.aabb.contains_box(&prim_aabbs[p as usize], eps) {
                            return Err(format!("prim {p} escapes its leaf bounds"));
                        }
                    }
                }
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use grtx_math::Vec3;

    #[test]
    fn from_children_round_trips() {
        let children = [
            WideChild {
                aabb: Aabb::new(Vec3::ZERO, Vec3::ONE),
                kind: ChildKind::Node(7),
            },
            WideChild {
                aabb: Aabb::new(Vec3::splat(2.0), Vec3::splat(3.0)),
                kind: ChildKind::Leaf { start: 4, count: 2 },
            },
        ];
        let node = WideNode::from_children(&children);
        assert_eq!(node.len(), 2);
        assert_eq!(node.child(0), children[0]);
        assert_eq!(node.child(1), children[1]);
        assert_eq!(node.children().collect::<Vec<_>>(), children);
    }

    #[test]
    fn padding_is_deterministic() {
        // Two nodes built from equal child sets must compare equal,
        // padding lanes included (the sharded-build equality tests
        // compare whole structures).
        let children = [WideChild {
            aabb: Aabb::new(Vec3::ZERO, Vec3::ONE),
            kind: ChildKind::Leaf { start: 0, count: 1 },
        }];
        assert_eq!(
            WideNode::from_children(&children),
            WideNode::from_children(&children)
        );
    }
}
