//! Two-level acceleration structure with a single shared BLAS — GRTX-SW.
//!
//! The TLAS is a wide BVH whose leaves are per-Gaussian *instances*; every
//! instance references the same template BLAS (Fig. 8). After the
//! instance transform, the Gaussian ellipsoid is exactly the unit sphere,
//! so one BLAS of a few kilobytes serves millions of Gaussians — this is
//! the entire source of the BVH size reduction and L1 locality gain.

use crate::builder::{build_wide_bvh, BuildPrim, BuilderConfig};
use crate::layout::{AddressSpace, BvhSizeReport, LayoutConfig};
use crate::wide::WideBvh;
use crate::BoundingPrimitive;
use grtx_math::{intersect, Affine3, Ray, Vec3};
use grtx_scene::{GaussianScene, TemplateMesh};

/// One TLAS leaf: a Gaussian instance with its object-to-world transform.
#[derive(Debug, Clone, Copy)]
pub struct Instance {
    /// The Gaussian this instance represents.
    pub gaussian: u32,
    /// Unit-sphere-to-world affine map (with cached inverse for the
    /// hardware ray transform).
    pub transform: Affine3,
}

/// The shared bottom-level structure referenced by every instance.
#[derive(Debug)]
pub enum SharedBlas {
    /// A single hardware sphere primitive (Blackwell-class RT cores):
    /// one ray–AABB test at the TLAS leaf plus one ray–sphere test.
    UnitSphere,
    /// A template icosphere mesh with its own small BVH, intersected by
    /// the high-throughput ray–triangle units.
    Mesh {
        /// BVH over the template triangles.
        bvh: WideBvh,
        /// The template geometry (unit-sphere circumscribed).
        mesh: TemplateMesh,
    },
    /// The software custom-primitive path evaluated after the transform
    /// (a unit-sphere test executed in an intersection shader).
    CustomEllipsoid,
}

/// The GRTX-SW two-level acceleration structure.
#[derive(Debug)]
pub struct TwoLevelBvh {
    /// TLAS over instance world AABBs (leaf prim ids = instance ids).
    pub tlas: WideBvh,
    /// All instances, indexed by instance id.
    pub instances: Vec<Instance>,
    /// The single shared BLAS.
    pub blas: SharedBlas,
    /// Byte accounting.
    pub size_report: BvhSizeReport,
    /// Base address of TLAS nodes.
    pub tlas_node_base: u64,
    /// Base address of instance records.
    pub instance_base: u64,
    /// Base address of BLAS nodes (shared across instances).
    pub blas_node_base: u64,
    /// Base address of BLAS primitive records (shared).
    pub blas_prim_base: u64,
    /// Bytes per node record.
    pub node_stride: u64,
    /// Bytes per instance record.
    pub instance_stride: u64,
    /// Bytes per BLAS primitive record.
    pub blas_prim_stride: u64,
}

impl TwoLevelBvh {
    /// TLAS build inputs: one [`BuildPrim`] per Gaussian, in Gaussian-id
    /// order (the order [`Self::from_tlas`] expects the TLAS to be built
    /// over). Exposed so `grtx-shard` can run the sharded parallel build
    /// over exactly the same primitives.
    pub fn tlas_build_prims(scene: &GaussianScene) -> Vec<BuildPrim> {
        crate::gaussian_build_prims(scene)
    }

    /// The TLAS builder configuration for a layout.
    pub fn tlas_builder_config(layout: &LayoutConfig) -> BuilderConfig {
        BuilderConfig {
            max_leaf_size: layout.tlas_max_leaf,
            ..Default::default()
        }
    }

    /// Builds the TLAS + shared BLAS for a scene.
    pub fn build(
        scene: &GaussianScene,
        primitive: BoundingPrimitive,
        layout: &LayoutConfig,
    ) -> Self {
        let build_prims = Self::tlas_build_prims(scene);
        let tlas = build_wide_bvh(&build_prims, &Self::tlas_builder_config(layout));
        Self::from_tlas(scene, primitive, layout, tlas)
    }

    /// Wraps an externally built TLAS (e.g. a sharded parallel build)
    /// with the instances, shared BLAS, and byte accounting. The TLAS
    /// must be built over [`Self::tlas_build_prims`] with
    /// [`Self::tlas_builder_config`]; a TLAS identical to the serial
    /// build's yields an identical structure — addresses included.
    pub fn from_tlas(
        scene: &GaussianScene,
        primitive: BoundingPrimitive,
        layout: &LayoutConfig,
        tlas: WideBvh,
    ) -> Self {
        let instances: Vec<Instance> = (0..scene.len())
            .map(|i| Instance {
                gaussian: i as u32,
                transform: scene.instance_transform(i),
            })
            .collect();

        let (blas, blas_prim_count, blas_prim_stride) = match primitive {
            BoundingPrimitive::UnitSphere => {
                (SharedBlas::UnitSphere, 1u64, layout.sphere_prim_bytes)
            }
            BoundingPrimitive::CustomEllipsoid => (
                SharedBlas::CustomEllipsoid,
                1u64,
                layout.ellipsoid_prim_bytes,
            ),
            BoundingPrimitive::Mesh20 | BoundingPrimitive::Mesh80 => {
                let mesh = if primitive == BoundingPrimitive::Mesh20 {
                    TemplateMesh::icosahedron()
                } else {
                    TemplateMesh::icosphere_80()
                };
                let tri_prims: Vec<BuildPrim> = (0..mesh.triangle_count())
                    .map(|t| {
                        let mut aabb = grtx_math::Aabb::EMPTY;
                        for v in mesh.triangle_vertices(t) {
                            aabb.grow_point(v);
                        }
                        BuildPrim::from_aabb(aabb)
                    })
                    .collect();
                let bvh = build_wide_bvh(
                    &tri_prims,
                    &BuilderConfig {
                        max_leaf_size: layout.mono_max_leaf,
                        ..Default::default()
                    },
                );
                let count = bvh.prim_count() as u64;
                (SharedBlas::Mesh { bvh, mesh }, count, layout.triangle_bytes)
            }
        };

        let mut space = AddressSpace::new();
        let tlas_node_base = space.alloc(tlas.node_count() as u64, layout.node_bytes);
        let instance_base = space.alloc(instances.len() as u64, layout.instance_bytes);
        let blas_node_count = match &blas {
            SharedBlas::Mesh { bvh, .. } => bvh.node_count() as u64,
            // Sphere/custom BLAS: a single root record.
            _ => 1,
        };
        let blas_node_base = space.alloc(blas_node_count, layout.node_bytes);
        let blas_prim_base = space.alloc(blas_prim_count, blas_prim_stride);

        let tlas_bytes = tlas.node_count() as u64 * layout.node_bytes
            + instances.len() as u64 * layout.instance_bytes;
        let blas_bytes = blas_node_count * layout.node_bytes + blas_prim_count * blas_prim_stride;
        let size_report = BvhSizeReport {
            total_bytes: tlas_bytes + blas_bytes,
            node_bytes: (tlas.node_count() as u64 + blas_node_count) * layout.node_bytes,
            prim_bytes: instances.len() as u64 * layout.instance_bytes
                + blas_prim_count * blas_prim_stride,
            tlas_bytes,
            blas_bytes,
            node_count: tlas.node_count() as u64 + blas_node_count,
            prim_count: blas_prim_count,
            instance_count: instances.len() as u64,
        };

        Self {
            tlas,
            instances,
            blas,
            size_report,
            tlas_node_base,
            instance_base,
            blas_node_base,
            blas_prim_base,
            node_stride: layout.node_bytes,
            instance_stride: layout.instance_bytes,
            blas_prim_stride,
        }
    }

    /// Structure height: TLAS levels plus BLAS levels (plus the instance
    /// level itself).
    pub fn height(&self) -> u32 {
        let blas_height = match &self.blas {
            SharedBlas::Mesh { bvh, .. } => bvh.height,
            _ => 1,
        };
        self.tlas.height + 1 + blas_height
    }

    /// Intersects BLAS primitive `prim_pos` with an *instance-local* ray;
    /// returns the world-equal `t_hit` (the instance transform preserves
    /// `t`).
    ///
    /// For the sphere/custom BLAS, `prim_pos` is ignored (single
    /// primitive).
    pub fn intersect_blas_prim(&self, prim_pos: u32, local_ray: &Ray) -> Option<f32> {
        match &self.blas {
            SharedBlas::UnitSphere | SharedBlas::CustomEllipsoid => {
                intersect::ray_sphere_unit(local_ray).map(|h| {
                    if h.t_enter > 0.0 {
                        h.t_enter
                    } else {
                        h.t_exit
                    }
                })
            }
            SharedBlas::Mesh { bvh, mesh } => {
                let tri = bvh.prim_order[prim_pos as usize] as usize;
                let [a, b, c] = mesh.triangle_vertices(tri);
                let n = (b - a).cross(c - a);
                if local_ray.direction.dot(n) >= 0.0 {
                    return None; // Backface culling, as in the monolithic path.
                }
                intersect::ray_triangle(local_ray, a, b, c).map(|h| h.t)
            }
        }
    }

    /// Batched leaf test: up to 4 consecutive BLAS mesh triangles
    /// (`prim_order` positions `start..start + n`) against an
    /// *instance-local* ray in one [`grtx_math::simd::ray_triangle_4`]
    /// kernel call — the
    /// software analogue of the hardware ray–triangle unit consuming a
    /// whole leaf fetch. Slot `i` is bit-identical to
    /// [`Self::intersect_blas_prim`]`(start + i, local_ray)`, backface
    /// culling included.
    ///
    /// # Panics
    ///
    /// Panics if the BLAS is not a mesh or `n > 4`.
    pub fn intersect_blas_tri4(&self, start: u32, n: usize, local_ray: &Ray) -> [Option<f32>; 4] {
        let SharedBlas::Mesh { bvh, mesh } = &self.blas else {
            panic!("batched triangle tests require a mesh BLAS")
        };
        assert!(n <= 4, "at most 4 lanes");
        let mut tris = [[Vec3::ZERO; 3]; 4];
        for (i, lane) in tris.iter_mut().enumerate().take(n) {
            let tri = bvh.prim_order[start as usize + i] as usize;
            *lane = mesh.triangle_vertices(tri);
        }
        crate::intersect_tri_lanes(&tris[..n], local_ray)
    }

    /// TLAS node address.
    pub fn tlas_node_addr(&self, id: u32) -> u64 {
        self.tlas_node_base + id as u64 * self.node_stride
    }

    /// Instance record address.
    pub fn instance_addr(&self, id: u32) -> u64 {
        self.instance_base + id as u64 * self.instance_stride
    }

    /// BLAS node address (shared by all instances — the locality
    /// mechanism).
    pub fn blas_node_addr(&self, id: u32) -> u64 {
        self.blas_node_base + id as u64 * self.node_stride
    }

    /// BLAS primitive record address (shared).
    pub fn blas_prim_addr(&self, pos: u32) -> u64 {
        self.blas_prim_base + pos as u64 * self.blas_prim_stride
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use grtx_math::Vec3;
    use grtx_scene::Gaussian;

    fn small_scene() -> GaussianScene {
        (0..50)
            .map(|i| {
                Gaussian::isotropic(
                    Vec3::new((i % 10) as f32, (i / 10) as f32, 0.0),
                    0.15,
                    0.7,
                    Vec3::ONE,
                )
            })
            .collect()
    }

    #[test]
    fn one_instance_per_gaussian() {
        let scene = small_scene();
        let t = TwoLevelBvh::build(
            &scene,
            BoundingPrimitive::UnitSphere,
            &LayoutConfig::default(),
        );
        assert_eq!(t.instances.len(), scene.len());
        assert_eq!(t.size_report.instance_count, scene.len() as u64);
    }

    #[test]
    fn shared_blas_is_kilobytes() {
        let scene = small_scene();
        for prim in [
            BoundingPrimitive::UnitSphere,
            BoundingPrimitive::Mesh20,
            BoundingPrimitive::Mesh80,
        ] {
            let t = TwoLevelBvh::build(&scene, prim, &LayoutConfig::default());
            assert!(
                t.size_report.blas_bytes < 16 * 1024,
                "{prim}: BLAS is {} bytes",
                t.size_report.blas_bytes
            );
        }
    }

    #[test]
    fn two_level_is_much_smaller_than_monolithic() {
        let scene = small_scene();
        let mono = crate::MonolithicBvh::build(
            &scene,
            BoundingPrimitive::Mesh20,
            &LayoutConfig::default(),
        );
        let two = TwoLevelBvh::build(&scene, BoundingPrimitive::Mesh20, &LayoutConfig::default());
        assert!(
            two.size_report.total_bytes * 4 < mono.size_report.total_bytes,
            "two-level {} vs monolithic {}",
            two.size_report.total_bytes,
            mono.size_report.total_bytes
        );
    }

    #[test]
    fn tlas_validates() {
        let scene = small_scene();
        let t = TwoLevelBvh::build(
            &scene,
            BoundingPrimitive::UnitSphere,
            &LayoutConfig::default(),
        );
        let aabbs: Vec<grtx_math::Aabb> = scene.world_aabbs().map(|(_, a)| a).collect();
        t.tlas.validate(&aabbs, 1e-3).expect("valid TLAS");
    }

    #[test]
    fn sphere_blas_hit_matches_world_ellipsoid() {
        let scene = small_scene();
        let t = TwoLevelBvh::build(
            &scene,
            BoundingPrimitive::UnitSphere,
            &LayoutConfig::default(),
        );
        let ray = Ray::new(Vec3::new(0.0, 0.0, -5.0), Vec3::Z);
        // Instance 0 is the Gaussian at the origin with σ = 0.15; its
        // 3σ ellipsoid is a sphere of radius 0.45.
        let inst = &t.instances[0];
        let local = inst.transform.inverse_transform_ray(&ray);
        let t_hit = t.intersect_blas_prim(0, &local).expect("hit");
        assert!((t_hit - (5.0 - 0.45)).abs() < 1e-3, "t_hit = {t_hit}");
    }

    #[test]
    fn mesh_blas_reports_single_front_hit() {
        let scene = small_scene();
        let t = TwoLevelBvh::build(&scene, BoundingPrimitive::Mesh20, &LayoutConfig::default());
        // Offset so the ray cannot pass exactly through a proxy-mesh edge.
        let ray = Ray::new(Vec3::new(0.02, 0.04, -5.0), Vec3::Z);
        let inst = &t.instances[0];
        let local = inst.transform.inverse_transform_ray(&ray);
        let mut hits = 0;
        if let SharedBlas::Mesh { bvh, .. } = &t.blas {
            for pos in 0..bvh.prim_count() as u32 {
                if t.intersect_blas_prim(pos, &local).is_some() {
                    hits += 1;
                }
            }
        }
        assert_eq!(hits, 1, "closed convex proxy must report one front hit");
    }

    #[test]
    fn blas_addresses_identical_across_instances() {
        // The whole point of the shared BLAS: its addresses do not depend
        // on which instance is being traversed.
        let scene = small_scene();
        let t = TwoLevelBvh::build(&scene, BoundingPrimitive::Mesh80, &LayoutConfig::default());
        let addr = t.blas_node_addr(0);
        assert!(addr > t.instance_addr(t.instances.len() as u32 - 1));
        assert_eq!(t.blas_node_addr(0), addr);
    }

    #[test]
    fn height_combines_tlas_and_blas() {
        let scene = small_scene();
        let sphere = TwoLevelBvh::build(
            &scene,
            BoundingPrimitive::UnitSphere,
            &LayoutConfig::default(),
        );
        let mesh = TwoLevelBvh::build(&scene, BoundingPrimitive::Mesh80, &LayoutConfig::default());
        assert!(mesh.height() > sphere.height());
    }
}
