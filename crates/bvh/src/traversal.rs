//! RT-core traversal state machine with checkpoint/replay.
//!
//! This module models what the paper's RT unit does for one ray in one
//! tracing round:
//!
//! * stack-based traversal of the acceleration structure, nearest-child
//!   first;
//! * the *t-value validation unit*: a popped element whose entry distance
//!   exceeds the current `t_max` is not fetched — under GRTX-HW it is
//!   **checkpointed** to the destination buffer instead (Fig. 11 step ④);
//! * instance (TLAS-leaf) ray transforms into Gaussian-local space;
//! * any-hit shader invocation for primitive hits inside `(t_min, t_max]`;
//!   a [`AnyHitVerdict::Commit`] shrinks `t_max` to the committed `t`
//!   (the `reportIntersection` path of Listing 1), while
//!   [`AnyHitVerdict::Ignore`] leaves it unchanged
//!   (`ignoreIntersectionEXT`);
//! * **replay**: a round may start from the previous round's checkpoint
//!   buffer instead of the root, re-validating each stored element against
//!   the new interval before fetching anything.
//!
//! All memory traffic and fixed-function work is reported through a
//! [`TraversalObserver`] so `grtx-sim` can charge cycle costs and model
//! caches without this module knowing about either.

use crate::monolithic::MonolithicBvh;
use crate::packet::PacketLane;
use crate::two_level::{SharedBlas, TwoLevelBvh};
use crate::wide::{ChildKind, WideBvh, MAX_WIDTH};
use crate::AccelStruct;
use grtx_math::simd::{slab_test_8, HitMask8};
use grtx_math::{ray::Interval, Ray, RayInv};
use grtx_scene::GaussianScene;

/// What kind of memory a fetch touched (drives Fig. 7's internal/leaf
/// split and the cache model's address classification).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum FetchKind {
    /// Interior node of a monolithic BVH.
    MonoNode,
    /// Interior node of the TLAS.
    TlasNode,
    /// Interior node of the shared BLAS.
    BlasNode,
    /// TLAS leaf instance record (transform matrix).
    Instance,
    /// Leaf primitive record (triangle / sphere / ellipsoid).
    Prim,
}

impl FetchKind {
    /// `true` for interior-node fetches (Fig. 7 "Internal").
    pub fn is_internal(self) -> bool {
        matches!(
            self,
            FetchKind::MonoNode | FetchKind::TlasNode | FetchKind::BlasNode
        )
    }
}

/// Which fixed-function (or shader) unit executes a primitive test.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum PrimTestKind {
    /// Hardware ray–triangle unit.
    HardwareTriangle,
    /// Hardware ray–sphere unit (Blackwell-class).
    HardwareSphere,
    /// User-defined intersection shader on the SM (custom primitive).
    SoftwareEllipsoid,
}

/// Any-hit shader decision for a reported primitive hit.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum AnyHitVerdict {
    /// Accept the hit: the RT core updates `t_max` to the hit distance
    /// (the "report hit" path — taken when the incoming Gaussian is not
    /// closer than everything in a full k-buffer).
    Commit,
    /// `ignoreIntersectionEXT`: traversal continues with `t_max`
    /// unchanged (the Gaussian entered the k-buffer).
    Ignore,
}

/// Sink for per-event instrumentation. `grtx-sim` implements this to
/// charge cycle/cache costs; [`NullObserver`] runs traversal functionally.
pub trait TraversalObserver {
    /// A structure element of `bytes` at `addr` was fetched from memory.
    fn node_fetch(&mut self, addr: u64, bytes: u64, kind: FetchKind) {
        let _ = (addr, bytes, kind);
    }
    /// `count` ray–box slab tests were executed (one wide node feeds up
    /// to eight).
    fn box_tests(&mut self, count: u32) {
        let _ = count;
    }
    /// One ray–primitive test was executed on the given unit.
    fn prim_test(&mut self, kind: PrimTestKind) {
        let _ = kind;
    }
    /// The ray was transformed into an instance's object space.
    fn ray_transform(&mut self) {}
    /// One checkpoint entry was appended to the destination buffer.
    fn checkpoint_write(&mut self) {}
    /// One checkpoint entry was consumed from the source buffer.
    fn checkpoint_read(&mut self) {}
    /// The any-hit shader was invoked once.
    fn any_hit_invocation(&mut self) {}
    /// A child element at `addr` was intersected during parent expansion
    /// and will be visited soon. The simulator's sibling prefetcher (the
    /// paper's L1 calibration mechanism, Section V-A) installs these
    /// lines without charging fetch latency.
    fn prefetch_hint(&mut self, addr: u64, bytes: u64) {
        let _ = (addr, bytes);
    }
}

/// Observer that ignores every event.
#[derive(Debug, Clone, Copy, Default)]
pub struct NullObserver;

impl TraversalObserver for NullObserver {}

/// A traversal element: everything that can sit on the stack or in a
/// checkpoint buffer. Checkpoint entries store (element, `t`), matching
/// the paper's 20-byte {node address, TLAS-leaf address, t_hit} records.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum Slot {
    /// Interior node of a monolithic BVH.
    MonoNode(u32),
    /// Leaf primitive range of a monolithic BVH.
    MonoLeaf {
        /// First `prim_order` position.
        start: u32,
        /// Primitive count.
        count: u32,
    },
    /// A single monolithic primitive (`prim_order` position) whose test
    /// failed the `t_max` check.
    MonoPrim(u32),
    /// Interior node of the TLAS.
    TlasNode(u32),
    /// TLAS leaf instance range.
    TlasLeaf {
        /// First `prim_order` position.
        start: u32,
        /// Instance count.
        count: u32,
    },
    /// A whole instance (checkpointed when its world box failed `t_max`).
    Instance(u32),
    /// Interior node of the shared BLAS under one instance.
    BlasNode {
        /// Owning instance (the paper's stored TLAS-leaf address, needed
        /// to redo the ray transform on replay).
        instance: u32,
        /// BLAS node id.
        node: u32,
    },
    /// BLAS leaf triangle range under one instance.
    BlasLeaf {
        /// Owning instance.
        instance: u32,
        /// First BLAS `prim_order` position.
        start: u32,
        /// Triangle count.
        count: u32,
    },
    /// A single BLAS triangle under one instance.
    BlasPrim {
        /// Owning instance.
        instance: u32,
        /// BLAS `prim_order` position.
        pos: u32,
    },
    /// The sphere / custom primitive of one instance.
    SpherePrim {
        /// Owning instance.
        instance: u32,
    },
}

/// One checkpoint-buffer record: a traversal element plus the `t` value
/// that failed validation (box entry distance for nodes, exact hit
/// distance for primitives).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct CheckpointEntry {
    /// Validation distance.
    pub t: f32,
    /// The stored element.
    pub slot: Slot,
}

/// Hardware checkpoint-entry size in bytes (8 B node address + 8 B TLAS
/// leaf address + 4 B t), per Section IV-B.
pub const CHECKPOINT_ENTRY_BYTES: u64 = 20;

/// Destination checkpoint buffer handle (ping-pong "destination" side).
pub type CheckpointSink<'a> = Option<&'a mut Vec<CheckpointEntry>>;

/// Functional statistics returned from one round (tests use these; the
/// simulator uses the observer instead).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct RoundOutcome {
    /// Interior node fetches this round.
    pub nodes_fetched: u64,
    /// Primitive tests this round.
    pub prims_tested: u64,
    /// Checkpoint entries written this round.
    pub checkpoints_written: u64,
}

/// Runs one tracing round for one ray.
///
/// * `t_min` — exclusive lower bound (hits at or before it were blended
///   in earlier rounds).
/// * `replay_source` — `Some(entries)` resumes from the previous round's
///   checkpoint buffer (GRTX-HW); `None` restarts from the root
///   (baseline).
/// * `checkpoint_dest` — `Some(buf)` enables checkpointing of elements
///   that fail the `t_max` validation; `None` discards them (baseline).
/// * `any_hit` — the any-hit shader: receives `(gaussian id, t_hit)` and
///   decides whether to commit (shrink `t_max`) or ignore.
#[allow(clippy::too_many_arguments)] // mirrors the traceRayEXT surface: structure, ray, interval, buffers, hooks
pub fn trace_round(
    accel: &AccelStruct,
    scene: &GaussianScene,
    ray: &Ray,
    t_min: f32,
    replay_source: Option<&[CheckpointEntry]>,
    checkpoint_dest: CheckpointSink<'_>,
    observer: &mut dyn TraversalObserver,
    any_hit: &mut dyn FnMut(u32, f32) -> AnyHitVerdict,
) -> RoundOutcome {
    trace_round_packet(
        accel,
        scene,
        ray,
        t_min,
        replay_source,
        checkpoint_dest,
        None,
        observer,
        any_hit,
    )
}

/// [`trace_round`] with an optional packet lane: world-space wide-node
/// box tests are served through the packet's shared result cache (one
/// transposed kernel call per node per packet) instead of per-ray
/// kernel calls. Results, traversal order, observer events, and
/// checkpoints are bit-identical to the single-ray path — see
/// [`crate::packet`] for the argument.
///
/// # Panics
///
/// Panics (debug builds) if the packet lane's stored ray differs from
/// `ray` — a lane must serve exactly the ray it was built from.
#[allow(clippy::too_many_arguments)] // trace_round's surface plus the packet lane
pub fn trace_round_packet(
    accel: &AccelStruct,
    scene: &GaussianScene,
    ray: &Ray,
    t_min: f32,
    replay_source: Option<&[CheckpointEntry]>,
    checkpoint_dest: CheckpointSink<'_>,
    packet: Option<PacketLane<'_>>,
    observer: &mut dyn TraversalObserver,
    any_hit: &mut dyn FnMut(u32, f32) -> AnyHitVerdict,
) -> RoundOutcome {
    if let Some(lane) = &packet {
        debug_assert_eq!(
            *lane.ray(),
            ray.inv(),
            "packet lane must carry the traced ray"
        );
    }
    let mut ctx = TraceCtx {
        accel,
        scene,
        ray,
        // The slab-test view (origin + reciprocal directions) is derived
        // once per ray here, never per box test.
        ray_inv: ray.inv(),
        interval: Interval::new(t_min, f32::INFINITY),
        packet,
        observer,
        any_hit,
        dest: checkpoint_dest,
        stack: Vec::with_capacity(64),
        outcome: RoundOutcome::default(),
    };

    match replay_source {
        Some(entries) => {
            for entry in entries {
                ctx.observer.checkpoint_read();
                ctx.replay_entry(*entry);
            }
        }
        None => {
            match accel {
                AccelStruct::Monolithic(m) => {
                    if m.bvh.node_count() > 0 {
                        ctx.push_root_checked(&m.bvh, Slot::MonoNode);
                    }
                }
                AccelStruct::TwoLevel(t) => {
                    if t.tlas.node_count() > 0 {
                        ctx.push_root_checked(&t.tlas, Slot::TlasNode);
                    }
                }
            }
            ctx.drain();
        }
    }
    ctx.outcome
}

struct TraceCtx<'a> {
    accel: &'a AccelStruct,
    scene: &'a GaussianScene,
    ray: &'a Ray,
    ray_inv: RayInv,
    interval: Interval,
    /// Shared packet lane for world-space node tests, if this ray is
    /// part of a coherent 4-ray packet.
    packet: Option<PacketLane<'a>>,
    observer: &'a mut dyn TraversalObserver,
    any_hit: &'a mut dyn FnMut(u32, f32) -> AnyHitVerdict,
    dest: CheckpointSink<'a>,
    stack: Vec<(f32, Slot)>,
    outcome: RoundOutcome,
}

impl<'a> TraceCtx<'a> {
    /// Tests the root AABB and pushes the root node if the ray enters the
    /// scene within the interval.
    fn push_root_checked(&mut self, bvh: &WideBvh, make: impl Fn(u32) -> Slot) {
        self.observer.box_tests(1);
        if let Some((t_enter, t_exit)) = bvh.root_aabb.intersect_ray_inv(&self.ray_inv) {
            if t_exit < self.interval.t_min {
                return;
            }
            if t_enter > self.interval.t_max {
                self.checkpoint(t_enter, make(0));
                return;
            }
            self.stack.push((t_enter, make(0)));
        }
    }

    fn checkpoint(&mut self, t: f32, slot: Slot) {
        if let Some(dest) = self.dest.as_deref_mut() {
            dest.push(CheckpointEntry { t, slot });
            self.observer.checkpoint_write();
            self.outcome.checkpoints_written += 1;
        }
    }

    /// Replays one checkpoint entry: re-validate against the (new)
    /// interval, then resume traversal of the stored element. The paper
    /// traverses checkpointed subtrees sequentially, so each entry is
    /// drained before the next.
    fn replay_entry(&mut self, entry: CheckpointEntry) {
        // t-value validation without any fetch: the stored t makes this
        // free (Fig. 11 — entries failing the new t_max go straight back
        // to the destination buffer).
        if entry.t > self.interval.t_max {
            self.checkpoint(entry.t, entry.slot);
            return;
        }
        match entry.slot {
            // Prim-level entries re-run the intersection (cheap; the node
            // path above them is skipped entirely).
            Slot::MonoPrim(pos) => self.process_mono_prim(pos),
            Slot::SpherePrim { instance } => {
                let two = self.two_level();
                let local = self.enter_instance(two, instance);
                self.process_sphere_prim(two, instance, &local);
            }
            Slot::BlasPrim { instance, pos } => {
                let two = self.two_level();
                let local = self.enter_instance(two, instance);
                self.process_blas_prims(two, instance, &local, pos, 1);
            }
            Slot::BlasLeaf {
                instance,
                start,
                count,
            } => {
                let two = self.two_level();
                let local = self.enter_instance(two, instance);
                self.process_blas_prims(two, instance, &local, start, count);
            }
            Slot::BlasNode { instance, node } => {
                let two = self.two_level();
                let local = self.enter_instance(two, instance);
                self.drain_blas(two, instance, &local, vec![(entry.t, node)]);
            }
            Slot::Instance(instance) => {
                let two = self.two_level();
                self.process_instance(two, instance, entry.t);
            }
            // Node / leaf-range entries resume normal stack traversal.
            slot @ (Slot::MonoNode(_)
            | Slot::MonoLeaf { .. }
            | Slot::TlasNode(_)
            | Slot::TlasLeaf { .. }) => {
                self.stack.push((entry.t, slot));
                self.drain();
            }
        }
    }

    fn two_level(&self) -> &'a TwoLevelBvh {
        match self.accel {
            AccelStruct::TwoLevel(t) => t,
            AccelStruct::Monolithic(_) => {
                unreachable!("instance slots only exist for two-level structures")
            }
        }
    }

    fn mono(&self) -> &'a MonolithicBvh {
        match self.accel {
            AccelStruct::Monolithic(m) => m,
            AccelStruct::TwoLevel(_) => {
                unreachable!("mono slots only exist for monolithic structures")
            }
        }
    }

    /// Main stack loop: pop, t-validate, dispatch.
    fn drain(&mut self) {
        while let Some((t_key, slot)) = self.stack.pop() {
            // t-value validation unit: stale entries (t_max shrank since
            // the push) are checkpointed without a fetch.
            if t_key > self.interval.t_max {
                self.checkpoint(t_key, slot);
                continue;
            }
            match slot {
                Slot::MonoNode(id) => {
                    let m = self.mono();
                    self.observer
                        .node_fetch(m.node_addr(id), m.node_stride, FetchKind::MonoNode);
                    self.outcome.nodes_fetched += 1;
                    self.visit_wide_node(&m.bvh, id, Slot::MonoNode, |s, n| Slot::MonoLeaf {
                        start: s,
                        count: n,
                    });
                }
                Slot::MonoLeaf { start, count } => {
                    // One leaf-node fetch covers the contiguous primitive
                    // records; the intersection unit then tests each.
                    let m = self.mono();
                    self.observer.node_fetch(
                        m.prim_addr(start),
                        count as u64 * m.prim_stride,
                        FetchKind::Prim,
                    );
                    if m.primitive.triangle_count().is_some() && count > 1 {
                        // Mesh proxies: 4-wide batched triangle kernel
                        // over the leaf range (bit-identical per prim).
                        self.test_mono_prims_batched(start, count);
                    } else {
                        for pos in start..start + count {
                            self.test_mono_prim(pos);
                        }
                    }
                }
                Slot::MonoPrim(pos) => self.process_mono_prim(pos),
                Slot::TlasNode(id) => {
                    let t = self.two_level();
                    self.observer.node_fetch(
                        t.tlas_node_addr(id),
                        t.node_stride,
                        FetchKind::TlasNode,
                    );
                    self.outcome.nodes_fetched += 1;
                    self.visit_wide_node(&t.tlas, id, Slot::TlasNode, |s, n| Slot::TlasLeaf {
                        start: s,
                        count: n,
                    });
                }
                Slot::TlasLeaf { start, count } => {
                    let two = self.two_level();
                    for pos in start..start + count {
                        let instance = two.tlas.prim_order[pos as usize];
                        self.process_instance(two, instance, t_key);
                    }
                }
                Slot::Instance(instance) => {
                    let two = self.two_level();
                    self.process_instance(two, instance, t_key);
                }
                Slot::SpherePrim { instance } => {
                    let two = self.two_level();
                    let local = self.enter_instance(two, instance);
                    self.process_sphere_prim(two, instance, &local);
                }
                Slot::BlasNode { instance, node } => {
                    let two = self.two_level();
                    let local = self.enter_instance(two, instance);
                    self.drain_blas(two, instance, &local, vec![(t_key, node)]);
                }
                Slot::BlasLeaf {
                    instance,
                    start,
                    count,
                } => {
                    let two = self.two_level();
                    let local = self.enter_instance(two, instance);
                    self.process_blas_prims(two, instance, &local, start, count);
                }
                Slot::BlasPrim { instance, pos } => {
                    let two = self.two_level();
                    let local = self.enter_instance(two, instance);
                    self.process_blas_prims(two, instance, &local, pos, 1);
                }
            }
        }
    }

    /// Fetches and expands a wide node: box-test every child with one
    /// vectorized 8-wide slab call, skip behind-children, checkpoint
    /// beyond-`t_max` children, push the rest nearest-first.
    fn visit_wide_node(
        &mut self,
        bvh: &WideBvh,
        id: u32,
        make_node: impl Fn(u32) -> Slot,
        make_leaf: impl Fn(u32, u32) -> Slot,
    ) {
        let node = &bvh.nodes[id as usize];
        // Charge one box test per *occupied* lane, exactly like the
        // scalar per-child loop: sentinel padding lanes are free.
        self.observer.box_tests(node.len() as u32);
        // All eight child slabs in one batched kernel call — the
        // software analogue of the RT unit consuming one wide-node fetch
        // as eight parallel ray–box tests (this is the hottest loop in
        // the simulator). Lane results are bit-identical to the scalar
        // test. A packet lane serves the call from its shared cache
        // (same bits, amortized across four coherent rays); only
        // world-space nodes reach this method, so the packet's
        // world-space rays always apply.
        let tested: HitMask8 = match self.packet.as_mut() {
            Some(lane) => lane.node_test(id, &node.bounds),
            None => slab_test_8(&self.ray_inv, &node.bounds),
        };
        // Fixed-capacity hit list: wide nodes have at most eight
        // children, so this stays off the heap.
        let mut hits: [(f32, Slot); MAX_WIDTH] = [(0.0, Slot::MonoNode(0)); MAX_WIDTH];
        let mut n_hits = 0;
        for i in 0..node.len() {
            if tested.mask & (1 << i) == 0 {
                continue;
            }
            let (t_enter, t_exit) = (tested.t_enter[i], tested.t_exit[i]);
            if t_exit < self.interval.t_min {
                continue; // Entirely behind what has been blended.
            }
            let slot = match node.kinds[i] {
                ChildKind::Node(c) => make_node(c),
                ChildKind::Leaf { start, count } => make_leaf(start, count),
            };
            if t_enter > self.interval.t_max {
                self.checkpoint(t_enter, slot);
            } else {
                hits[n_hits] = (t_enter, slot);
                n_hits += 1;
            }
        }
        // Far children first so the nearest is popped first.
        hits[..n_hits].sort_by(|a, b| b.0.total_cmp(&a.0));
        for &(_, slot) in &hits[..n_hits] {
            self.hint_slot(slot);
        }
        self.stack.extend_from_slice(&hits[..n_hits]);
    }

    /// Emits a prefetch hint for intersected sibling **leaf** content.
    ///
    /// This models the paper's calibration (Section V-A): "upon the first
    /// demand fetch of any child leaf node, we issue a one-time prefetch
    /// for its sibling nodes whose bounding boxes are also intersected."
    /// Interior children are *not* prefetched — only leaf-level records.
    fn hint_slot(&mut self, slot: Slot) {
        match (self.accel, slot) {
            (AccelStruct::Monolithic(m), Slot::MonoLeaf { start, count }) => {
                self.observer
                    .prefetch_hint(m.prim_addr(start), count as u64 * m.prim_stride);
            }
            (AccelStruct::TwoLevel(t), Slot::TlasLeaf { start, count }) => {
                for pos in start..start + count {
                    let inst = t.tlas.prim_order[pos as usize];
                    self.observer
                        .prefetch_hint(t.instance_addr(inst), t.instance_stride);
                }
            }
            _ => {}
        }
    }

    /// One monolithic primitive with its own record fetch (checkpoint
    /// replay path, where the surrounding leaf fetch is skipped).
    fn process_mono_prim(&mut self, pos: u32) {
        let m = self.mono();
        self.observer
            .node_fetch(m.prim_addr(pos), m.prim_stride, FetchKind::Prim);
        self.test_mono_prim(pos);
    }

    /// Runs the intersection unit on one already-fetched monolithic
    /// primitive and routes the result (skip / checkpoint / any-hit).
    fn test_mono_prim(&mut self, pos: u32) {
        let m = self.mono();
        let kind = match m.primitive {
            crate::BoundingPrimitive::CustomEllipsoid => PrimTestKind::SoftwareEllipsoid,
            _ => PrimTestKind::HardwareTriangle,
        };
        self.observer.prim_test(kind);
        self.outcome.prims_tested += 1;
        if let Some((gaussian, t)) = m.intersect_prim(self.scene, pos, self.ray) {
            self.route_prim_hit(gaussian, t, Slot::MonoPrim(pos));
        }
    }

    /// Runs the intersection unit over a whole mesh leaf range in 4-wide
    /// triangle batches, routing each result in position order — the
    /// same observer events, any-hit invocations, and checkpoint order
    /// as the scalar per-primitive loop.
    fn test_mono_prims_batched(&mut self, start: u32, count: u32) {
        let m = self.mono();
        let mut pos = start;
        while pos < start + count {
            let n = (start + count - pos).min(4);
            let hits = m.intersect_tri4(pos, n as usize, self.ray);
            for (j, hit) in hits.iter().enumerate().take(n as usize) {
                self.observer.prim_test(PrimTestKind::HardwareTriangle);
                self.outcome.prims_tested += 1;
                if let Some((gaussian, t)) = *hit {
                    self.route_prim_hit(gaussian, t, Slot::MonoPrim(pos + j as u32));
                }
            }
            pos += n;
        }
    }

    /// Fetches an instance record and performs the hardware ray
    /// transform; returns the object-space ray (t-preserving).
    fn enter_instance(&mut self, two: &TwoLevelBvh, instance: u32) -> Ray {
        self.observer.node_fetch(
            two.instance_addr(instance),
            two.instance_stride,
            FetchKind::Instance,
        );
        self.observer.ray_transform();
        two.instances[instance as usize]
            .transform
            .inverse_transform_ray(self.ray)
    }

    /// Processes a whole instance reached from the TLAS (or replayed).
    fn process_instance(&mut self, two: &'a TwoLevelBvh, instance: u32, t_key: f32) {
        let local = self.enter_instance(two, instance);
        match &two.blas {
            SharedBlas::UnitSphere | SharedBlas::CustomEllipsoid => {
                self.process_sphere_prim(two, instance, &local);
            }
            SharedBlas::Mesh { .. } => {
                self.drain_blas(two, instance, &local, vec![(t_key, 0)]);
            }
        }
    }

    fn process_sphere_prim(&mut self, two: &TwoLevelBvh, instance: u32, local: &Ray) {
        self.observer
            .node_fetch(two.blas_prim_addr(0), two.blas_prim_stride, FetchKind::Prim);
        let kind = match &two.blas {
            SharedBlas::CustomEllipsoid => PrimTestKind::SoftwareEllipsoid,
            _ => PrimTestKind::HardwareSphere,
        };
        self.observer.prim_test(kind);
        self.outcome.prims_tested += 1;
        if let Some(t) = two.intersect_blas_prim(0, local) {
            let gaussian = two.instances[instance as usize].gaussian;
            self.route_prim_hit(gaussian, t, Slot::SpherePrim { instance });
        }
    }

    /// Drains a BLAS subtree with a local stack (the ray stays in object
    /// space for the whole subtree — one transform per instance entry,
    /// as in hardware).
    fn drain_blas(
        &mut self,
        two: &'a TwoLevelBvh,
        instance: u32,
        local: &Ray,
        init: Vec<(f32, u32)>,
    ) {
        let SharedBlas::Mesh { bvh, .. } = &two.blas else {
            unreachable!("drain_blas requires a mesh BLAS")
        };
        // One slab-test view per instance entry: the object-space ray's
        // reciprocals serve every node of the BLAS subtree.
        let local_inv = local.inv();
        let mut stack: Vec<(f32, BlasItem)> = init
            .into_iter()
            .map(|(t, n)| (t, BlasItem::Node(n)))
            .collect();
        while let Some((t_key, item)) = stack.pop() {
            if t_key > self.interval.t_max {
                let slot = match item {
                    BlasItem::Node(node) => Slot::BlasNode { instance, node },
                    BlasItem::Leaf { start, count } => Slot::BlasLeaf {
                        instance,
                        start,
                        count,
                    },
                };
                self.checkpoint(t_key, slot);
                continue;
            }
            match item {
                BlasItem::Node(id) => {
                    self.observer.node_fetch(
                        two.blas_node_addr(id),
                        two.node_stride,
                        FetchKind::BlasNode,
                    );
                    self.outcome.nodes_fetched += 1;
                    let node = &bvh.nodes[id as usize];
                    self.observer.box_tests(node.len() as u32);
                    // Same batched 8-wide slab kernel as the TLAS loop.
                    // Never packetized: the ray is in instance-local
                    // space here, where packet-mates share nothing.
                    let tested = slab_test_8(&local_inv, &node.bounds);
                    let mut hits: [(f32, BlasItem); MAX_WIDTH] =
                        [(0.0, BlasItem::Node(0)); MAX_WIDTH];
                    let mut n_hits = 0;
                    for i in 0..node.len() {
                        if tested.mask & (1 << i) == 0 {
                            continue;
                        }
                        let (t_enter, t_exit) = (tested.t_enter[i], tested.t_exit[i]);
                        if t_exit < self.interval.t_min {
                            continue;
                        }
                        let item = match node.kinds[i] {
                            ChildKind::Node(c) => BlasItem::Node(c),
                            ChildKind::Leaf { start, count } => BlasItem::Leaf { start, count },
                        };
                        if t_enter > self.interval.t_max {
                            let slot = match item {
                                BlasItem::Node(node) => Slot::BlasNode { instance, node },
                                BlasItem::Leaf { start, count } => Slot::BlasLeaf {
                                    instance,
                                    start,
                                    count,
                                },
                            };
                            self.checkpoint(t_enter, slot);
                        } else {
                            hits[n_hits] = (t_enter, item);
                            n_hits += 1;
                        }
                    }
                    hits[..n_hits].sort_by(|a, b| b.0.total_cmp(&a.0));
                    for &(_, item) in &hits[..n_hits] {
                        // Leaf-sibling prefetch only (see hint_slot).
                        if let BlasItem::Leaf { start, count } = item {
                            self.observer.prefetch_hint(
                                two.blas_prim_addr(start),
                                count as u64 * two.blas_prim_stride,
                            );
                        }
                    }
                    stack.extend_from_slice(&hits[..n_hits]);
                }
                BlasItem::Leaf { start, count } => {
                    self.process_blas_prims(two, instance, local, start, count);
                }
            }
        }
    }

    fn process_blas_prims(
        &mut self,
        two: &TwoLevelBvh,
        instance: u32,
        local: &Ray,
        start: u32,
        count: u32,
    ) {
        // One leaf fetch for the contiguous triangle records.
        self.observer.node_fetch(
            two.blas_prim_addr(start),
            count as u64 * two.blas_prim_stride,
            FetchKind::Prim,
        );
        if matches!(&two.blas, SharedBlas::Mesh { .. }) && count > 1 {
            self.process_blas_prims_batched(two, instance, local, start, count);
            return;
        }
        for pos in start..start + count {
            self.observer.prim_test(PrimTestKind::HardwareTriangle);
            self.outcome.prims_tested += 1;
            if let Some(t) = two.intersect_blas_prim(pos, local) {
                let gaussian = two.instances[instance as usize].gaussian;
                self.route_prim_hit(gaussian, t, Slot::BlasPrim { instance, pos });
            }
        }
    }

    /// Runs a mesh-BLAS leaf range through the 4-wide triangle kernel,
    /// routing each result in position order — the same observer events,
    /// any-hit invocations, and checkpoint order as the scalar loop
    /// (mirror of [`Self::test_mono_prims_batched`]).
    fn process_blas_prims_batched(
        &mut self,
        two: &TwoLevelBvh,
        instance: u32,
        local: &Ray,
        start: u32,
        count: u32,
    ) {
        let mut pos = start;
        while pos < start + count {
            let n = (start + count - pos).min(4);
            let hits = two.intersect_blas_tri4(pos, n as usize, local);
            for (j, hit) in hits.iter().enumerate().take(n as usize) {
                self.observer.prim_test(PrimTestKind::HardwareTriangle);
                self.outcome.prims_tested += 1;
                if let Some(t) = *hit {
                    let gaussian = two.instances[instance as usize].gaussian;
                    self.route_prim_hit(
                        gaussian,
                        t,
                        Slot::BlasPrim {
                            instance,
                            pos: pos + j as u32,
                        },
                    );
                }
            }
            pos += n;
        }
    }

    /// Routes a primitive hit through the t-value validation: behind →
    /// drop, beyond `t_max` → checkpoint, inside → any-hit shader.
    fn route_prim_hit(&mut self, gaussian: u32, t: f32, ckpt_slot: Slot) {
        if t <= self.interval.t_min {
            return;
        }
        if t > self.interval.t_max {
            self.checkpoint(t, ckpt_slot);
            return;
        }
        self.observer.any_hit_invocation();
        match (self.any_hit)(gaussian, t) {
            AnyHitVerdict::Commit => self.interval.t_max = t,
            AnyHitVerdict::Ignore => {}
        }
    }
}

#[derive(Debug, Clone, Copy)]
enum BlasItem {
    Node(u32),
    Leaf { start: u32, count: u32 },
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::layout::LayoutConfig;
    use crate::BoundingPrimitive;
    use grtx_math::Vec3;
    use grtx_scene::Gaussian;

    fn line_scene(n: usize) -> GaussianScene {
        // Gaussians strung along +Z so a single ray crosses all of them
        // in a known order.
        (0..n)
            .map(|i| Gaussian::isotropic(Vec3::new(0.0, 0.0, i as f32 * 2.0), 0.2, 0.8, Vec3::ONE))
            .collect()
    }

    /// A ray down the line, slightly offset so it never passes exactly
    /// through proxy-mesh edges (a measure-zero degeneracy).
    fn line_ray() -> Ray {
        Ray::new(Vec3::new(0.05, 0.03, -5.0), Vec3::Z)
    }

    fn collect_hits(accel: &AccelStruct, scene: &GaussianScene, ray: &Ray) -> Vec<(u32, f32)> {
        let mut hits = Vec::new();
        trace_round(
            accel,
            scene,
            ray,
            0.0,
            None,
            None,
            &mut NullObserver,
            &mut |g, t| {
                hits.push((g, t));
                AnyHitVerdict::Ignore
            },
        );
        hits.sort_by(|a, b| a.1.total_cmp(&b.1));
        hits
    }

    #[test]
    fn finds_all_gaussians_along_ray_sphere() {
        let scene = line_scene(10);
        let accel = AccelStruct::build(
            &scene,
            BoundingPrimitive::UnitSphere,
            true,
            &LayoutConfig::default(),
        );
        let ray = line_ray();
        let hits = collect_hits(&accel, &scene, &ray);
        assert_eq!(hits.len(), 10);
        // Order along the ray must be the line order.
        let ids: Vec<u32> = hits.iter().map(|h| h.0).collect();
        assert_eq!(ids, (0..10).collect::<Vec<u32>>());
    }

    #[test]
    fn finds_all_gaussians_along_ray_mesh_monolithic() {
        let scene = line_scene(10);
        let accel = AccelStruct::build(
            &scene,
            BoundingPrimitive::Mesh20,
            false,
            &LayoutConfig::default(),
        );
        let ray = line_ray();
        let hits = collect_hits(&accel, &scene, &ray);
        assert_eq!(hits.len(), 10, "one front-face hit per proxy");
    }

    #[test]
    fn t_min_culls_blended_prefix() {
        let scene = line_scene(10);
        let accel = AccelStruct::build(
            &scene,
            BoundingPrimitive::UnitSphere,
            true,
            &LayoutConfig::default(),
        );
        let ray = line_ray();
        // Gaussian i sits at z = 2i, so t = 5 + 2i - 0.6σ-bound; t_min = 10
        // drops roughly the first 3.
        let mut hits = Vec::new();
        trace_round(
            &accel,
            &scene,
            &ray,
            10.0,
            None,
            None,
            &mut NullObserver,
            &mut |g, t| {
                hits.push((g, t));
                AnyHitVerdict::Ignore
            },
        );
        assert!(hits.iter().all(|&(_, t)| t > 10.0));
        assert!(!hits.is_empty());
    }

    #[test]
    fn commit_shrinks_t_max_and_stops_far_hits() {
        let scene = line_scene(10);
        let accel = AccelStruct::build(
            &scene,
            BoundingPrimitive::UnitSphere,
            true,
            &LayoutConfig::default(),
        );
        let ray = line_ray();
        let mut hits = Vec::new();
        trace_round(
            &accel,
            &scene,
            &ray,
            0.0,
            None,
            None,
            &mut NullObserver,
            &mut |g, t| {
                hits.push((g, t));
                // Commit immediately: t_max collapses onto the first hit.
                AnyHitVerdict::Commit
            },
        );
        // Only hits at or before the earliest committed t can be reported.
        let min_t = hits.iter().map(|h| h.1).fold(f32::INFINITY, f32::min);
        assert!(hits.iter().all(|&(_, t)| t <= min_t + 1e-6 || t == min_t));
    }

    #[test]
    fn checkpoint_plus_replay_finds_exactly_the_remainder() {
        let scene = line_scene(12);
        let accel = AccelStruct::build(
            &scene,
            BoundingPrimitive::UnitSphere,
            true,
            &LayoutConfig::default(),
        );
        let ray = line_ray();

        // Round 1: a real k-buffer (k = 4) keeping the closest hits;
        // displaced/rejected Gaussians go to the eviction buffer, exactly
        // as Listing 1 prescribes.
        let k = 4;
        let mut kbuf: Vec<(f32, u32)> = Vec::new();
        let mut evicted: Vec<(f32, u32)> = Vec::new();
        let mut ckpt = Vec::new();
        trace_round(
            &accel,
            &scene,
            &ray,
            0.0,
            None,
            Some(&mut ckpt),
            &mut NullObserver,
            &mut |g, t| {
                let pos = kbuf.partition_point(|&(bt, bg)| (bt, bg) < (t, g));
                kbuf.insert(pos, (t, g));
                if kbuf.len() <= k {
                    return AnyHitVerdict::Ignore;
                }
                let rejected = kbuf.pop().unwrap();
                evicted.push(rejected);
                if rejected == (t, g) {
                    AnyHitVerdict::Commit // incoming was the farthest → report
                } else {
                    AnyHitVerdict::Ignore
                }
            },
        );
        assert!(!ckpt.is_empty(), "far nodes must be checkpointed");
        assert_eq!(kbuf.len(), k);

        // Round 2 (replay): resume from checkpoints with t_min = last
        // blended t; union with the eviction buffer.
        let t_min = kbuf.last().unwrap().0;
        let mut replay_found: Vec<(f32, u32)> = evicted.clone();
        trace_round(
            &accel,
            &scene,
            &ray,
            t_min,
            Some(&ckpt),
            None,
            &mut NullObserver,
            &mut |g, t| {
                replay_found.push((t, g));
                AnyHitVerdict::Ignore
            },
        );
        replay_found.retain(|&(t, _)| t > t_min);
        replay_found.sort_by(|a, b| a.0.total_cmp(&b.0).then(a.1.cmp(&b.1)));

        // Baseline round 2: restart from the root with the same t_min.
        let mut baseline_found: Vec<(f32, u32)> = Vec::new();
        trace_round(
            &accel,
            &scene,
            &ray,
            t_min,
            None,
            None,
            &mut NullObserver,
            &mut |g, t| {
                baseline_found.push((t, g));
                AnyHitVerdict::Ignore
            },
        );
        baseline_found.sort_by(|a, b| a.0.total_cmp(&b.0).then(a.1.cmp(&b.1)));

        assert_eq!(
            replay_found, baseline_found,
            "replay + eviction buffer must equal a root restart"
        );
    }

    #[test]
    fn replay_fetches_fewer_nodes_than_restart() {
        let scene = line_scene(64);
        let accel = AccelStruct::build(
            &scene,
            BoundingPrimitive::Mesh20,
            true,
            &LayoutConfig::default(),
        );
        let ray = line_ray();

        let k = 4;
        let run_round1 = |ckpt: CheckpointSink<'_>| {
            let mut taken = 0;
            let mut last_t = 0.0f32;
            let outcome = trace_round(
                &accel,
                &scene,
                &ray,
                0.0,
                None,
                ckpt,
                &mut NullObserver,
                &mut |_, t| {
                    if taken < k {
                        taken += 1;
                        last_t = last_t.max(t);
                        AnyHitVerdict::Ignore
                    } else {
                        AnyHitVerdict::Commit
                    }
                },
            );
            (outcome, last_t)
        };

        let mut ckpt = Vec::new();
        let (_, t_min) = run_round1(Some(&mut ckpt));

        let noop = &mut |_: u32, _: f32| AnyHitVerdict::Ignore;
        let replay = trace_round(
            &accel,
            &scene,
            &ray,
            t_min,
            Some(&ckpt),
            None,
            &mut NullObserver,
            noop,
        );
        let restart = trace_round(
            &accel,
            &scene,
            &ray,
            t_min,
            None,
            None,
            &mut NullObserver,
            noop,
        );
        assert!(
            replay.nodes_fetched < restart.nodes_fetched,
            "replay {} should fetch fewer nodes than restart {}",
            replay.nodes_fetched,
            restart.nodes_fetched
        );
    }

    #[test]
    fn empty_scene_traverses_nothing() {
        let scene = GaussianScene::new(vec![]);
        let accel = AccelStruct::build(
            &scene,
            BoundingPrimitive::UnitSphere,
            true,
            &LayoutConfig::default(),
        );
        let ray = Ray::new(Vec3::ZERO, Vec3::Z);
        let outcome = trace_round(
            &accel,
            &scene,
            &ray,
            0.0,
            None,
            None,
            &mut NullObserver,
            &mut |_, _| panic!("no hits possible"),
        );
        assert_eq!(outcome.nodes_fetched, 0);
    }

    #[test]
    fn ray_missing_scene_reports_nothing() {
        let scene = line_scene(5);
        let accel = AccelStruct::build(
            &scene,
            BoundingPrimitive::UnitSphere,
            true,
            &LayoutConfig::default(),
        );
        let ray = Ray::new(Vec3::new(100.0, 100.0, 0.0), Vec3::Z);
        let hits = collect_hits(&accel, &scene, &ray);
        assert!(hits.is_empty());
    }
}
