//! Byte-level layout of acceleration structures in a virtual address
//! space.
//!
//! Two consumers need byte-accurate structure sizes: the Table II / Fig. 5b
//! size accounting, and the cache model in `grtx-sim`, which replays node
//! fetches against addresses assigned here.
//!
//! The default constants are calibrated against Table II of the paper:
//! with 224-byte wide nodes, 64-byte triangle records, 80-byte instance
//! records, and 4-primitive leaves, the reported sizes reproduce the
//! paper's numbers to within a few percent (e.g. Truck 20-tri ≈ 3.9 GB vs
//! the paper's 3.88 GB; Truck TLAS+20-tri ≈ 349 MB vs 345 MB; Train
//! TLAS+20-tri ≈ 210 MB vs 208 MB).

/// Byte sizes of every structure element, plus leaf-width policies.
#[derive(Debug, Clone, PartialEq)]
pub struct LayoutConfig {
    /// Bytes per interior wide node. The 224-byte default holds a full
    /// BVH-8 node exactly: eight child AABBs (8 × 24 B) plus eight
    /// 4-byte child references.
    pub node_bytes: u64,
    /// Bytes per triangle record in a leaf (inlined vertices + Gaussian
    /// id, Embree-style).
    pub triangle_bytes: u64,
    /// Bytes per TLAS instance record (3×4 object-to-world transform,
    /// compressed inverse, Gaussian id, BLAS reference).
    pub instance_bytes: u64,
    /// Bytes per hardware sphere primitive record.
    pub sphere_prim_bytes: u64,
    /// Bytes per custom (software) ellipsoid primitive record.
    pub ellipsoid_prim_bytes: u64,
    /// Max primitives per leaf in monolithic BVHs and the template BLAS.
    pub mono_max_leaf: usize,
    /// Max instances per TLAS leaf (hardware TLAS leaves hold a single
    /// instance).
    pub tlas_max_leaf: usize,
}

impl Default for LayoutConfig {
    fn default() -> Self {
        Self {
            node_bytes: 224,
            triangle_bytes: 64,
            instance_bytes: 80,
            sphere_prim_bytes: 32,
            ellipsoid_prim_bytes: 80,
            mono_max_leaf: 8,
            tlas_max_leaf: 1,
        }
    }
}

impl LayoutConfig {
    /// An AMD-like encoding (Fig. 24): the paper observes that "AMD
    /// generates larger BVHs than NVIDIA", pushing monolithic mesh BVHs
    /// past the 4 GB Vulkan buffer-allocation limit for most scenes.
    pub fn amd() -> Self {
        Self {
            node_bytes: 256,
            triangle_bytes: 128,
            instance_bytes: 112,
            ..Self::default()
        }
    }
}

/// Monotonic virtual-address allocator. Each structure region (node
/// array, primitive array, ...) gets a disjoint, 128-byte-aligned range so
/// the cache model sees realistic line sharing within a region and none
/// across regions.
#[derive(Debug, Clone, Default)]
pub struct AddressSpace {
    cursor: u64,
}

/// Cache-line size used for region alignment (matches the simulated
/// GPU's 128 B lines).
pub const REGION_ALIGN: u64 = 128;

impl AddressSpace {
    /// Creates an empty address space starting above the null page.
    pub fn new() -> Self {
        Self { cursor: 0x1000 }
    }

    /// Reserves a region of `count` records of `stride` bytes; returns
    /// the base address.
    pub fn alloc(&mut self, count: u64, stride: u64) -> u64 {
        let base = self.cursor.div_ceil(REGION_ALIGN) * REGION_ALIGN;
        self.cursor = base + count * stride;
        base
    }

    /// Total bytes spanned so far.
    pub fn bytes_used(&self) -> u64 {
        self.cursor
    }
}

/// Size accounting for one acceleration structure (Table II, Fig. 5b,
/// Fig. 24).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct BvhSizeReport {
    /// Total structure bytes.
    pub total_bytes: u64,
    /// Bytes in interior nodes (all levels).
    pub node_bytes: u64,
    /// Bytes in leaf primitive records (triangles / spheres / ellipsoids
    /// / instances).
    pub prim_bytes: u64,
    /// Bytes in the TLAS (nodes + instance records); zero for monolithic.
    pub tlas_bytes: u64,
    /// Bytes in the shared BLAS; zero for monolithic.
    pub blas_bytes: u64,
    /// Interior node count (all levels).
    pub node_count: u64,
    /// Primitive record count.
    pub prim_count: u64,
    /// Instance count (two-level only).
    pub instance_count: u64,
}

impl BvhSizeReport {
    /// Linearly extrapolates the measured size to the paper-scale
    /// Gaussian count (documented substitution: synthetic scenes are
    /// generated at `1/divisor` scale; structure size is linear in
    /// primitive count to first order).
    pub fn extrapolated(&self, factor: f64) -> BvhSizeReport {
        let scale = |v: u64| (v as f64 * factor) as u64;
        BvhSizeReport {
            total_bytes: scale(self.total_bytes),
            node_bytes: scale(self.node_bytes),
            prim_bytes: scale(self.prim_bytes),
            tlas_bytes: scale(self.tlas_bytes),
            blas_bytes: self.blas_bytes, // the shared BLAS does not grow
            node_count: scale(self.node_count),
            prim_count: scale(self.prim_count),
            instance_count: scale(self.instance_count),
        }
    }
}

/// Formats a byte count the way the paper's tables do (GB/MB/KB).
pub fn format_bytes(bytes: u64) -> String {
    const KB: f64 = 1024.0;
    const MB: f64 = KB * 1024.0;
    const GB: f64 = MB * 1024.0;
    let b = bytes as f64;
    if b >= GB {
        format!("{:.2} GB", b / GB)
    } else if b >= MB {
        format!("{:.0} MB", b / MB)
    } else if b >= KB {
        format!("{:.1} KB", b / KB)
    } else {
        format!("{bytes} B")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn alloc_regions_are_disjoint_and_aligned() {
        let mut space = AddressSpace::new();
        let a = space.alloc(10, 224);
        let b = space.alloc(5, 64);
        assert_eq!(a % REGION_ALIGN, 0);
        assert_eq!(b % REGION_ALIGN, 0);
        assert!(b >= a + 10 * 224);
    }

    #[test]
    fn amd_layout_is_larger() {
        let nv = LayoutConfig::default();
        let amd = LayoutConfig::amd();
        assert!(amd.node_bytes > nv.node_bytes);
        assert!(amd.triangle_bytes > nv.triangle_bytes);
    }

    #[test]
    fn format_bytes_picks_units() {
        assert_eq!(format_bytes(512), "512 B");
        assert_eq!(format_bytes(2048), "2.0 KB");
        assert_eq!(format_bytes(3 * 1024 * 1024), "3 MB");
        assert!(format_bytes(4_200_000_000).contains("GB"));
    }

    #[test]
    fn extrapolation_scales_everything_but_blas() {
        let r = BvhSizeReport {
            total_bytes: 100,
            node_bytes: 40,
            prim_bytes: 60,
            tlas_bytes: 90,
            blas_bytes: 10,
            node_count: 4,
            prim_count: 6,
            instance_count: 6,
        };
        let e = r.extrapolated(20.0);
        assert_eq!(e.node_bytes, 800);
        assert_eq!(e.blas_bytes, 10, "shared BLAS must not scale");
    }
}
