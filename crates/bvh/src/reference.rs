//! Brute-force intersection oracles for validating BVH traversal.
//!
//! These bypass the acceleration structure entirely: they test the ray
//! against every Gaussian's proxy directly. Property tests assert that
//! BVH traversal reports exactly the same hit set.

use crate::BoundingPrimitive;
use grtx_math::{intersect, Ray};
use grtx_scene::{GaussianScene, TemplateMesh};

/// Returns every `(gaussian id, t_hit)` the given proxy would report for
/// the ray, sorted by `(t, id)` — the oracle for BVH traversal.
pub fn brute_force_hits(
    scene: &GaussianScene,
    primitive: BoundingPrimitive,
    ray: &Ray,
    t_min: f32,
) -> Vec<(u32, f32)> {
    let template = match primitive {
        BoundingPrimitive::Mesh20 => Some(TemplateMesh::icosahedron()),
        BoundingPrimitive::Mesh80 => Some(TemplateMesh::icosphere_80()),
        BoundingPrimitive::CustomEllipsoid | BoundingPrimitive::UnitSphere => None,
    };
    let mut hits = Vec::new();
    for i in 0..scene.len() {
        let instance = scene.instance_transform(i);
        let t_hit = match &template {
            Some(mesh) => {
                // Front-face hit of the stretched proxy (matches the
                // backface-culled traversal).
                let mut best: Option<f32> = None;
                for tri in 0..mesh.triangle_count() {
                    let corners = mesh.triangle_vertices(tri);
                    let world = [
                        instance.transform_point(corners[0]),
                        instance.transform_point(corners[1]),
                        instance.transform_point(corners[2]),
                    ];
                    let n = (world[1] - world[0]).cross(world[2] - world[0]);
                    if ray.direction.dot(n) >= 0.0 {
                        continue;
                    }
                    if let Some(h) = intersect::ray_triangle(ray, world[0], world[1], world[2]) {
                        best = Some(best.map_or(h.t, |t: f32| t.min(h.t)));
                    }
                }
                best
            }
            None => {
                let local = instance.inverse_transform_ray(ray);
                intersect::ray_sphere_unit(&local).map(|h| {
                    if h.t_enter > 0.0 {
                        h.t_enter
                    } else {
                        h.t_exit
                    }
                })
            }
        };
        if let Some(t) = t_hit {
            if t > t_min {
                hits.push((i as u32, t));
            }
        }
    }
    hits.sort_by(|a, b| a.1.total_cmp(&b.1).then(a.0.cmp(&b.0)));
    hits
}

#[cfg(test)]
mod tests {
    use super::*;
    use grtx_math::Vec3;
    use grtx_scene::Gaussian;

    #[test]
    fn oracle_is_sorted_and_filtered() {
        let scene: GaussianScene = (0..8)
            .map(|i| Gaussian::isotropic(Vec3::new(0.0, 0.0, i as f32 * 3.0), 0.3, 0.5, Vec3::ONE))
            .collect();
        let ray = Ray::new(Vec3::new(0.0, 0.0, -4.0), Vec3::Z);
        let hits = brute_force_hits(&scene, BoundingPrimitive::UnitSphere, &ray, 5.0);
        assert!(hits.windows(2).all(|w| w[0].1 <= w[1].1));
        assert!(hits.iter().all(|&(_, t)| t > 5.0));
        assert!(!hits.is_empty());
    }

    #[test]
    fn sphere_and_custom_oracles_agree() {
        let scene: GaussianScene = (0..5)
            .map(|i| Gaussian::isotropic(Vec3::new(i as f32, 0.1, 0.0), 0.25, 0.5, Vec3::ONE))
            .collect();
        let ray = Ray::new(Vec3::new(-4.0, 0.1, 0.0), Vec3::X);
        let a = brute_force_hits(&scene, BoundingPrimitive::UnitSphere, &ray, 0.0);
        let b = brute_force_hits(&scene, BoundingPrimitive::CustomEllipsoid, &ray, 0.0);
        assert_eq!(a, b, "both test the exact ellipsoid");
    }
}
