//! Monolithic single-level BVH — the baseline organization.
//!
//! Every Gaussian contributes its own proxy geometry to one scene-wide
//! BVH: either a stretched icosahedron/icosphere mesh (20 or 80 triangles
//! per Gaussian, exploiting hardware ray–triangle units) or a single
//! custom ellipsoid primitive intersected in software (paper Fig. 5).

use crate::builder::{build_wide_bvh, BuildPrim, BuilderConfig};
use crate::layout::{AddressSpace, BvhSizeReport, LayoutConfig};
use crate::wide::WideBvh;
use crate::BoundingPrimitive;
use grtx_math::{intersect, Ray, Vec3};
use grtx_scene::{GaussianScene, TemplateMesh};

/// Primitive payloads stored in monolithic leaves.
#[derive(Debug)]
pub enum MonoPrimData {
    /// World-space proxy triangles: per-triangle corner positions and
    /// owning Gaussian.
    Triangles {
        /// Corner positions per triangle.
        verts: Vec<[Vec3; 3]>,
        /// Owning Gaussian per triangle.
        gaussian_of: Vec<u32>,
    },
    /// One software ellipsoid per Gaussian; primitive id == Gaussian id,
    /// geometry read from the scene at test time.
    Ellipsoids,
}

/// The baseline monolithic acceleration structure.
#[derive(Debug)]
pub struct MonolithicBvh {
    /// The scene-wide wide BVH (leaves index primitives).
    pub bvh: WideBvh,
    /// Which proxy the leaves hold.
    pub primitive: BoundingPrimitive,
    /// Primitive payloads.
    pub prims: MonoPrimData,
    /// Byte accounting.
    pub size_report: BvhSizeReport,
    /// Base address of the node array.
    pub node_base: u64,
    /// Base address of the primitive array.
    pub prim_base: u64,
    /// Bytes per primitive record.
    pub prim_stride: u64,
    /// Bytes per node record.
    pub node_stride: u64,
}

impl MonolithicBvh {
    /// Builds the monolithic BVH for a scene.
    ///
    /// # Panics
    ///
    /// Panics if `primitive` is [`BoundingPrimitive::UnitSphere`]
    /// (hardware spheres require instance transforms, i.e. the two-level
    /// organization).
    pub fn build(
        scene: &GaussianScene,
        primitive: BoundingPrimitive,
        layout: &LayoutConfig,
    ) -> Self {
        let builder_cfg = Self::builder_config(layout);
        match primitive {
            BoundingPrimitive::Mesh20 | BoundingPrimitive::Mesh80 => {
                let (build_prims, verts, gaussian_of) = Self::mesh_build_prims(scene, primitive);
                let bvh = build_wide_bvh(&build_prims, &builder_cfg);
                Self::assemble_mesh(primitive, verts, gaussian_of, bvh, layout)
            }
            BoundingPrimitive::CustomEllipsoid => {
                let build_prims = Self::custom_build_prims(scene);
                let bvh = build_wide_bvh(&build_prims, &builder_cfg);
                Self::assemble_custom(bvh, layout)
            }
            BoundingPrimitive::UnitSphere => {
                panic!("unit-sphere primitives require the two-level organization")
            }
        }
    }

    /// The builder configuration monolithic structures use for a layout.
    pub fn builder_config(layout: &LayoutConfig) -> BuilderConfig {
        BuilderConfig {
            max_leaf_size: layout.mono_max_leaf,
            ..Default::default()
        }
    }

    /// Build inputs for a mesh-proxy monolithic BVH: one [`BuildPrim`]
    /// per world-space proxy triangle (Gaussian-major order), plus the
    /// triangle corners and owning-Gaussian table the leaves store.
    /// Exposed so `grtx-shard` can run the sharded parallel build over
    /// exactly the same primitives.
    ///
    /// # Panics
    ///
    /// Panics if `primitive` is not [`BoundingPrimitive::Mesh20`] or
    /// [`BoundingPrimitive::Mesh80`].
    #[allow(clippy::type_complexity)]
    pub fn mesh_build_prims(
        scene: &GaussianScene,
        primitive: BoundingPrimitive,
    ) -> (Vec<BuildPrim>, Vec<[Vec3; 3]>, Vec<u32>) {
        let template = match primitive {
            BoundingPrimitive::Mesh20 => TemplateMesh::icosahedron(),
            BoundingPrimitive::Mesh80 => TemplateMesh::icosphere_80(),
            _ => panic!("mesh build prims require a mesh bounding primitive"),
        };
        let tri_per = template.triangle_count();
        let n = scene.len();
        let mut verts = Vec::with_capacity(n * tri_per);
        let mut gaussian_of = Vec::with_capacity(n * tri_per);
        let mut build_prims = Vec::with_capacity(n * tri_per);
        for (g_idx, _) in scene.world_aabbs() {
            let instance = scene.instance_transform(g_idx);
            for t in 0..tri_per {
                let corners = template.triangle_vertices(t);
                let world = [
                    instance.transform_point(corners[0]),
                    instance.transform_point(corners[1]),
                    instance.transform_point(corners[2]),
                ];
                let mut aabb = grtx_math::Aabb::EMPTY;
                for &c in &world {
                    aabb.grow_point(c);
                }
                build_prims.push(BuildPrim::from_aabb(aabb));
                verts.push(world);
                gaussian_of.push(g_idx as u32);
            }
        }
        (build_prims, verts, gaussian_of)
    }

    /// Build inputs for the custom-ellipsoid monolithic BVH: one
    /// [`BuildPrim`] per Gaussian, in Gaussian-id order.
    pub fn custom_build_prims(scene: &GaussianScene) -> Vec<BuildPrim> {
        crate::gaussian_build_prims(scene)
    }

    /// Wraps an externally built mesh-proxy BVH (e.g. a sharded parallel
    /// build over [`Self::mesh_build_prims`]) with the leaf payloads,
    /// addresses, and byte accounting.
    pub fn assemble_mesh(
        primitive: BoundingPrimitive,
        verts: Vec<[Vec3; 3]>,
        gaussian_of: Vec<u32>,
        bvh: WideBvh,
        layout: &LayoutConfig,
    ) -> Self {
        let mut space = AddressSpace::new();
        let node_base = space.alloc(bvh.node_count() as u64, layout.node_bytes);
        let prim_base = space.alloc(bvh.prim_count() as u64, layout.triangle_bytes);
        let size_report = mono_size_report(&bvh, layout.node_bytes, layout.triangle_bytes);
        Self {
            bvh,
            primitive,
            prims: MonoPrimData::Triangles { verts, gaussian_of },
            size_report,
            node_base,
            prim_base,
            prim_stride: layout.triangle_bytes,
            node_stride: layout.node_bytes,
        }
    }

    /// Wraps an externally built BVH over [`Self::custom_build_prims`]
    /// with the ellipsoid payload, addresses, and byte accounting.
    pub fn assemble_custom(bvh: WideBvh, layout: &LayoutConfig) -> Self {
        let mut space = AddressSpace::new();
        let node_base = space.alloc(bvh.node_count() as u64, layout.node_bytes);
        let prim_base = space.alloc(bvh.prim_count() as u64, layout.ellipsoid_prim_bytes);
        let size_report = mono_size_report(&bvh, layout.node_bytes, layout.ellipsoid_prim_bytes);
        Self {
            bvh,
            primitive: BoundingPrimitive::CustomEllipsoid,
            prims: MonoPrimData::Ellipsoids,
            size_report,
            node_base,
            prim_base,
            prim_stride: layout.ellipsoid_prim_bytes,
            node_stride: layout.node_bytes,
        }
    }

    /// Intersects primitive `prim_pos` (a position in the BVH's
    /// `prim_order`) with a world-space ray.
    ///
    /// Mesh proxies are backface-culled so a closed convex proxy reports
    /// exactly one hit per ray, as 3DGRT configures its traversal.
    /// Returns `(gaussian id, t_hit)`.
    pub fn intersect_prim(
        &self,
        scene: &GaussianScene,
        prim_pos: u32,
        ray: &Ray,
    ) -> Option<(u32, f32)> {
        let prim_id = self.bvh.prim_order[prim_pos as usize];
        match &self.prims {
            MonoPrimData::Triangles { verts, gaussian_of } => {
                let [a, b, c] = verts[prim_id as usize];
                // Backface culling: keep only front-facing hits
                // (direction opposing the outward normal).
                let n = (b - a).cross(c - a);
                if ray.direction.dot(n) >= 0.0 {
                    return None;
                }
                intersect::ray_triangle(ray, a, b, c).map(|h| (gaussian_of[prim_id as usize], h.t))
            }
            MonoPrimData::Ellipsoids => {
                let g = scene.gaussian(prim_id as usize);
                let instance = scene.instance_transform(prim_id as usize);
                let local = instance.inverse_transform_ray(ray);
                intersect::ray_sphere_unit(&local).map(|h| {
                    let t = if h.t_enter > 0.0 { h.t_enter } else { h.t_exit };
                    let _ = g;
                    (prim_id, t)
                })
            }
        }
    }

    /// Batched leaf test: up to 4 consecutive proxy triangles
    /// (`prim_order` positions `start..start + n`) against a world-space
    /// ray in one [`grtx_math::simd::ray_triangle_4`] kernel call. Slot `i` is
    /// bit-identical to [`Self::intersect_prim`]`(scene, start + i,
    /// ray)`, backface culling included.
    ///
    /// # Panics
    ///
    /// Panics if the leaves do not hold mesh triangles or `n > 4`.
    pub fn intersect_tri4(&self, start: u32, n: usize, ray: &Ray) -> [Option<(u32, f32)>; 4] {
        let MonoPrimData::Triangles { verts, gaussian_of } = &self.prims else {
            panic!("batched triangle tests require mesh proxies")
        };
        assert!(n <= 4, "at most 4 lanes");
        let mut tris = [[Vec3::ZERO; 3]; 4];
        let mut gaussians = [0u32; 4];
        for (i, lane) in tris.iter_mut().enumerate().take(n) {
            let prim_id = self.bvh.prim_order[start as usize + i] as usize;
            *lane = verts[prim_id];
            gaussians[i] = gaussian_of[prim_id];
        }
        let hits = crate::intersect_tri_lanes(&tris[..n], ray);
        let mut out = [None; 4];
        for i in 0..n {
            out[i] = hits[i].map(|t| (gaussians[i], t));
        }
        out
    }

    /// Byte address of node `id`.
    pub fn node_addr(&self, id: u32) -> u64 {
        self.node_base + id as u64 * self.node_stride
    }

    /// Byte address of the record at `prim_pos` in leaf order.
    pub fn prim_addr(&self, prim_pos: u32) -> u64 {
        self.prim_base + prim_pos as u64 * self.prim_stride
    }
}

fn mono_size_report(bvh: &WideBvh, node_bytes: u64, prim_bytes: u64) -> BvhSizeReport {
    let node_total = bvh.node_count() as u64 * node_bytes;
    let prim_total = bvh.prim_count() as u64 * prim_bytes;
    BvhSizeReport {
        total_bytes: node_total + prim_total,
        node_bytes: node_total,
        prim_bytes: prim_total,
        tlas_bytes: 0,
        blas_bytes: 0,
        node_count: bvh.node_count() as u64,
        prim_count: bvh.prim_count() as u64,
        instance_count: 0,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use grtx_scene::Gaussian;

    fn small_scene() -> GaussianScene {
        (0..20)
            .map(|i| {
                Gaussian::isotropic(
                    Vec3::new((i % 5) as f32 * 2.0, (i / 5) as f32 * 2.0, 0.0),
                    0.2,
                    0.8,
                    Vec3::ONE,
                )
            })
            .collect()
    }

    #[test]
    fn mesh20_has_20_prims_per_gaussian() {
        let scene = small_scene();
        let m = MonolithicBvh::build(&scene, BoundingPrimitive::Mesh20, &LayoutConfig::default());
        assert_eq!(m.bvh.prim_count(), scene.len() * 20);
    }

    #[test]
    fn mesh80_is_four_times_larger_than_mesh20() {
        let scene = small_scene();
        let m20 = MonolithicBvh::build(&scene, BoundingPrimitive::Mesh20, &LayoutConfig::default());
        let m80 = MonolithicBvh::build(&scene, BoundingPrimitive::Mesh80, &LayoutConfig::default());
        assert_eq!(m80.bvh.prim_count(), 4 * m20.bvh.prim_count());
        assert!(m80.size_report.total_bytes > 3 * m20.size_report.total_bytes);
    }

    #[test]
    fn custom_has_one_prim_per_gaussian_and_smaller_bvh() {
        let scene = small_scene();
        let custom = MonolithicBvh::build(
            &scene,
            BoundingPrimitive::CustomEllipsoid,
            &LayoutConfig::default(),
        );
        let mesh =
            MonolithicBvh::build(&scene, BoundingPrimitive::Mesh20, &LayoutConfig::default());
        assert_eq!(custom.bvh.prim_count(), scene.len());
        assert!(custom.size_report.total_bytes < mesh.size_report.total_bytes / 4);
    }

    #[test]
    #[should_panic(expected = "two-level")]
    fn unit_sphere_monolithic_panics() {
        let scene = small_scene();
        let _ = MonolithicBvh::build(
            &scene,
            BoundingPrimitive::UnitSphere,
            &LayoutConfig::default(),
        );
    }

    #[test]
    fn mesh_prim_intersection_reports_one_front_hit_per_gaussian() {
        let scene = small_scene();
        let m = MonolithicBvh::build(&scene, BoundingPrimitive::Mesh20, &LayoutConfig::default());
        // Ray through Gaussian 0 at the origin, offset slightly so it
        // cannot pass exactly through a proxy-mesh edge.
        let ray = Ray::new(Vec3::new(0.05, 0.03, -5.0), Vec3::Z);
        let mut hits_per_gaussian = std::collections::BTreeMap::new();
        for pos in 0..m.bvh.prim_count() as u32 {
            if let Some((g, _t)) = m.intersect_prim(&scene, pos, &ray) {
                *hits_per_gaussian.entry(g).or_insert(0u32) += 1;
            }
        }
        assert!(
            hits_per_gaussian.contains_key(&0),
            "must hit Gaussian 0's proxy"
        );
        for (&g, &n) in &hits_per_gaussian {
            assert_eq!(n, 1, "gaussian {g} reported {n} front-face hits");
        }
    }

    #[test]
    fn ellipsoid_prim_hits_match_direct_test() {
        let scene = small_scene();
        let m = MonolithicBvh::build(
            &scene,
            BoundingPrimitive::CustomEllipsoid,
            &LayoutConfig::default(),
        );
        let ray = Ray::new(Vec3::new(0.05, 0.03, -5.0), Vec3::Z);
        let mut hit_any = false;
        for pos in 0..m.bvh.prim_count() as u32 {
            if let Some((g, t)) = m.intersect_prim(&scene, pos, &ray) {
                hit_any = true;
                // Hit point lies on the bounding ellipsoid surface, so it
                // must sit inside the (slightly padded) world AABB.
                let p = ray.at(t);
                let aabb = scene.gaussian(g as usize).world_aabb(3.0);
                let padded = grtx_math::Aabb::new(
                    aabb.min - Vec3::splat(1e-3),
                    aabb.max + Vec3::splat(1e-3),
                );
                assert!(padded.contains_point(p));
            }
        }
        assert!(hit_any);
    }

    #[test]
    fn addresses_are_disjoint_between_nodes_and_prims() {
        let scene = small_scene();
        let m = MonolithicBvh::build(&scene, BoundingPrimitive::Mesh20, &LayoutConfig::default());
        let last_node_end = m.node_addr(m.bvh.node_count() as u32 - 1) + m.node_stride;
        assert!(m.prim_addr(0) >= last_node_end);
    }

    #[test]
    fn bvh_structure_is_valid() {
        let scene = small_scene();
        let m = MonolithicBvh::build(&scene, BoundingPrimitive::Mesh20, &LayoutConfig::default());
        let aabbs: Vec<grtx_math::Aabb> = match &m.prims {
            MonoPrimData::Triangles { verts, .. } => verts
                .iter()
                .map(|tri| {
                    let mut b = grtx_math::Aabb::EMPTY;
                    for &v in tri {
                        b.grow_point(v);
                    }
                    b
                })
                .collect(),
            _ => unreachable!(),
        };
        m.bvh.validate(&aabbs, 1e-3).expect("valid");
    }
}
