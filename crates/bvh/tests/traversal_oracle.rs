//! Property tests: BVH traversal must agree with the brute-force oracle
//! for every structure organization and bounding primitive.

use grtx_bvh::reference::brute_force_hits;
use grtx_bvh::{
    trace_round, AccelStruct, AnyHitVerdict, BoundingPrimitive, LayoutConfig, NullObserver,
};
use grtx_math::{Quat, Ray, Vec3};
use grtx_scene::{Gaussian, GaussianScene, ShCoeffs};
use proptest::prelude::*;

fn arb_gaussian() -> impl Strategy<Value = Gaussian> {
    (
        (-5.0f32..5.0, -5.0f32..5.0, -5.0f32..5.0),
        (0.05f32..0.8, 0.05f32..0.8, 0.05f32..0.8),
        (
            -1.0f32..1.0,
            -1.0f32..1.0,
            -1.0f32..1.0,
            0.0f32..std::f32::consts::TAU,
        ),
        0.1f32..0.95,
    )
        .prop_map(|(m, s, (ax, ay, az, angle), o)| {
            let axis = Vec3::new(ax, ay, az);
            let rotation = if axis.length() > 1e-3 {
                Quat::from_axis_angle(axis, angle)
            } else {
                Quat::IDENTITY
            };
            Gaussian {
                mean: Vec3::new(m.0, m.1, m.2),
                rotation,
                scale: Vec3::new(s.0, s.1, s.2),
                opacity: o,
                sh: ShCoeffs::from_color(Vec3::splat(0.5)),
            }
        })
}

fn arb_scene(max: usize) -> impl Strategy<Value = GaussianScene> {
    prop::collection::vec(arb_gaussian(), 1..max).prop_map(GaussianScene::new)
}

fn arb_ray() -> impl Strategy<Value = Ray> {
    (
        (-10.0f32..10.0, -10.0f32..10.0, -10.0f32..10.0),
        (-1.0f32..1.0, -1.0f32..1.0, -1.0f32..1.0),
    )
        .prop_filter_map("non-degenerate direction", |(o, d)| {
            let dir = Vec3::new(d.0, d.1, d.2);
            if dir.length() < 1e-3 {
                return None;
            }
            Some(Ray::new(Vec3::new(o.0, o.1, o.2), dir.normalized()))
        })
}

fn traversal_hits(
    scene: &GaussianScene,
    primitive: BoundingPrimitive,
    two_level: bool,
    ray: &Ray,
    t_min: f32,
) -> Vec<(u32, f32)> {
    let accel = AccelStruct::build(scene, primitive, two_level, &LayoutConfig::default());
    let mut hits = Vec::new();
    trace_round(
        &accel,
        scene,
        ray,
        t_min,
        None,
        None,
        &mut NullObserver,
        &mut |g, t| {
            hits.push((g, t));
            AnyHitVerdict::Ignore
        },
    );
    hits.sort_by(|a, b| a.1.total_cmp(&b.1).then(a.0.cmp(&b.0)));
    hits
}

/// Compares hit lists with a small t tolerance (the BVH path and the
/// brute-force path do the same arithmetic, so hits should match almost
/// bitwise; grazing hits may differ).
fn assert_hits_match(mut a: Vec<(u32, f32)>, mut b: Vec<(u32, f32)>) -> Result<(), TestCaseError> {
    a.sort_by_key(|h| h.0);
    b.sort_by_key(|h| h.0);
    let ids_a: Vec<u32> = a.iter().map(|h| h.0).collect();
    let ids_b: Vec<u32> = b.iter().map(|h| h.0).collect();
    prop_assert_eq!(ids_a, ids_b, "hit sets differ");
    for (x, y) in a.iter().zip(&b) {
        prop_assert!(
            (x.1 - y.1).abs() < 1e-3 * (1.0 + x.1.abs()),
            "t mismatch: {} vs {}",
            x.1,
            y.1
        );
    }
    Ok(())
}

/// Like [`assert_hits_match`] but tolerant of mismatches on rays that
/// *graze* the proxy shell: world-space triangle tests (monolithic /
/// oracle) and instance-space tests (shared BLAS) round differently, so
/// a ray skimming the icosahedron may hit in one and miss in the other.
/// The canonical closest-approach distance of such rays must sit in the
/// proxy band (insphere 1.0 to circumradius ~1.26 of the σ-bound shell).
fn assert_hits_match_graze(
    scene: &GaussianScene,
    ray: &Ray,
    a: Vec<(u32, f32)>,
    b: Vec<(u32, f32)>,
) -> Result<(), TestCaseError> {
    let set_a: std::collections::HashSet<u32> = a.iter().map(|h| h.0).collect();
    let set_b: std::collections::HashSet<u32> = b.iter().map(|h| h.0).collect();
    for &g in set_a.symmetric_difference(&set_b) {
        let gaussian = scene.gaussian(g as usize);
        let inv = gaussian.world_to_canonical();
        let og = inv.mul_vec3(ray.origin - gaussian.mean);
        let dg = inv.mul_vec3(ray.direction);
        let t_star = (-og.dot(dg) / dg.dot(dg).max(1e-20)).max(0.0);
        let d_min = (og + dg * t_star).length() / 3.0; // canonical σ-bound units
        prop_assert!(
            (0.8..=1.45).contains(&d_min),
            "gaussian {g} mismatch is not a grazing case (canonical distance {d_min:.3})"
        );
    }
    // Hits present in both must agree on t.
    let map_b: std::collections::HashMap<u32, f32> = b.iter().map(|&(g, t)| (g, t)).collect();
    for (g, t) in &a {
        if let Some(tb) = map_b.get(g) {
            prop_assert!(
                (t - tb).abs() < 1e-3 * (1.0 + t.abs()),
                "t mismatch for {g}"
            );
        }
    }
    Ok(())
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn two_level_sphere_matches_oracle(scene in arb_scene(40), ray in arb_ray()) {
        let hits = traversal_hits(&scene, BoundingPrimitive::UnitSphere, true, &ray, 0.0);
        let oracle = brute_force_hits(&scene, BoundingPrimitive::UnitSphere, &ray, 0.0);
        assert_hits_match(hits, oracle)?;
    }

    #[test]
    fn two_level_mesh_matches_oracle(scene in arb_scene(25), ray in arb_ray()) {
        let hits = traversal_hits(&scene, BoundingPrimitive::Mesh20, true, &ray, 0.0);
        let oracle = brute_force_hits(&scene, BoundingPrimitive::Mesh20, &ray, 0.0);
        // The BLAS tests template triangles with the transformed ray; the
        // oracle tests world-space triangles — grazing hits may differ.
        assert_hits_match_graze(&scene, &ray, hits, oracle)?;
    }

    #[test]
    fn monolithic_mesh_matches_oracle(scene in arb_scene(25), ray in arb_ray()) {
        let hits = traversal_hits(&scene, BoundingPrimitive::Mesh20, false, &ray, 0.0);
        let oracle = brute_force_hits(&scene, BoundingPrimitive::Mesh20, &ray, 0.0);
        assert_hits_match(hits, oracle)?;
    }

    #[test]
    fn monolithic_custom_matches_oracle(scene in arb_scene(40), ray in arb_ray()) {
        let hits = traversal_hits(&scene, BoundingPrimitive::CustomEllipsoid, false, &ray, 0.0);
        let oracle = brute_force_hits(&scene, BoundingPrimitive::CustomEllipsoid, &ray, 0.0);
        assert_hits_match(hits, oracle)?;
    }

    /// GRTX-SW's core claim: the structure reorganization does not change
    /// what a ray hits — monolithic 20-tri and TLAS+20-tri see identical
    /// Gaussians at identical depths.
    #[test]
    fn monolithic_and_two_level_mesh_agree(scene in arb_scene(25), ray in arb_ray()) {
        let mono = traversal_hits(&scene, BoundingPrimitive::Mesh20, false, &ray, 0.0);
        let two = traversal_hits(&scene, BoundingPrimitive::Mesh20, true, &ray, 0.0);
        assert_hits_match_graze(&scene, &ray, mono, two)?;
    }

    /// The unit-sphere BLAS and the software ellipsoid test the same
    /// exact geometry.
    #[test]
    fn sphere_blas_equals_custom_ellipsoid(scene in arb_scene(40), ray in arb_ray()) {
        let sphere = traversal_hits(&scene, BoundingPrimitive::UnitSphere, true, &ray, 0.0);
        let custom = traversal_hits(&scene, BoundingPrimitive::CustomEllipsoid, false, &ray, 0.0);
        assert_hits_match(sphere, custom)?;
    }

    /// t_min culling must behave identically to post-filtering.
    #[test]
    fn t_min_equals_post_filter(scene in arb_scene(40), ray in arb_ray(), t_min in 0.0f32..20.0) {
        let culled = traversal_hits(&scene, BoundingPrimitive::UnitSphere, true, &ray, t_min);
        let all = traversal_hits(&scene, BoundingPrimitive::UnitSphere, true, &ray, 0.0);
        let filtered: Vec<(u32, f32)> = all.into_iter().filter(|&(_, t)| t > t_min).collect();
        assert_hits_match(culled, filtered)?;
    }
}
