#![forbid(unsafe_code)]

//! Simulated-cycle microarchitecture profiling for the GRTX stack.
//!
//! `grtx-telemetry` (PR 7) sees *host* time: wall-clock spans around the
//! pipeline's update/build/render stages. This crate opens up the other
//! clock domain — the **simulated GPU's** — so the machine the simulator
//! models (SMs, warp buffers, L1/sliced-L2, k-buffer, checkpoint and
//! eviction buffers) stops being a black box between `render()` and an
//! aggregate [`SimStats`].
//!
//! # The virtual clock
//!
//! Every timestamp in a profile is a **simulated cycle count**, never a
//! wall-clock reading: one trace tick = one cycle of the configured core
//! clock ([`GpuDesc::cycles_to_ms`] converts for human-readable
//! columns). Each `(launch, SM)` fragment carries its own virtual SM
//! clock, advanced by the warp scheduler's round times; launches are laid
//! out back-to-back in canonical launch-key order at export. A profile is
//! therefore a *pure function of the simulated work* — bit-identical
//! across runs and host thread counts by construction, and free of the
//! wall-clock reads `grtx-analyze --deny` forbids outside the telemetry
//! crate.
//!
//! # What gets recorded
//!
//! * a per-SM × per-launch **counter matrix**: the fragment's full
//!   [`SimStats`] snapshot plus L1/L2-slice/DRAM traffic — each parallel
//!   fragment simulates one SM against its private cache slice, so the
//!   fragment's own counters *are* the per-SM hardware counters, and the
//!   matrix sums exactly to the global totals the reports publish;
//! * **per-warp activity intervals** on the SM's virtual clock (one
//!   Chrome-trace track per simulated SM);
//! * SIMD **lane-occupancy** and **warp-divergence** histograms, sampled
//!   per warp-round;
//! * **k-buffer / checkpoint / eviction occupancy high-water** time
//!   series, sampled once per scheduler round (the Fig. 20 curves).
//!
//! # Cost when disabled
//!
//! Like [`Telemetry`], a [`Profiler`] is an `Option<Arc<_>>` handle:
//! the default ([`Profiler::disabled`]) records nothing, and every hook
//! in the render engine's warp queue is one branch on that `Option`.
//! Profiles ride through [`FragmentProfile`]s drained at merge time —
//! never through `SimStats` or `RenderReport` — so profiling on vs. off
//! leaves images, cycles, and every statistic bit-identical.
//!
//! # Consumers
//!
//! [`Profiler::chrome_trace`] exports one track per simulated SM
//! (virtual-time `"X"` events — Perfetto shows the simulated GPU, not
//! the host threads); [`Profiler::report`] builds the `grtx-prof-v1`
//! [`ProfReport`] with its per-SM utilization / cache / divergence /
//! fetch-latency [`ProfReport::summary_table`].

pub mod report;

pub use report::{HistDigest, LaunchSummary, MatrixRow, ProfReport};

use grtx_sim::{GpuConfig, GpuSim, SimStats};
use grtx_telemetry::{ClockMode, Histogram, Telemetry};
use std::sync::{Arc, Mutex};

/// Architecture parameters embedded in every profile, so a report is
/// self-describing (clock for cycle→ms conversion, latencies for the
/// fetch-latency breakdown, SM count for track layout).
#[derive(Debug, Clone, PartialEq)]
pub struct GpuDesc {
    /// Streaming multiprocessor count.
    pub num_sms: usize,
    /// Core clock in MHz.
    pub clock_mhz: f64,
    /// Threads per warp.
    pub warp_size: usize,
    /// RT-unit warp buffer entries per SM.
    pub warp_buffer_size: usize,
    /// Cache line size in bytes (traffic counters are line-granular).
    pub line_bytes: usize,
    /// L1 hit latency in cycles.
    pub l1_latency: u64,
    /// L2 hit latency in cycles.
    pub l2_latency: u64,
    /// DRAM access latency in cycles.
    pub dram_latency: u64,
}

impl GpuDesc {
    /// Snapshots the profile-relevant subset of a [`GpuConfig`].
    pub fn of(config: &GpuConfig) -> Self {
        Self {
            num_sms: config.num_sms,
            clock_mhz: config.clock_mhz,
            warp_size: config.warp_size,
            warp_buffer_size: config.warp_buffer_size,
            line_bytes: config.line_bytes,
            l1_latency: config.l1_latency,
            l2_latency: config.l2_latency,
            dram_latency: config.dram_latency,
        }
    }

    /// Converts virtual-clock cycles to milliseconds at the snapshot's
    /// core clock (mirrors [`GpuConfig::cycles_to_ms`]).
    pub fn cycles_to_ms(&self, cycles: u64) -> f64 {
        cycles as f64 / (self.clock_mhz * 1_000.0)
    }
}

/// One warp's activity interval on its SM's virtual clock.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct WarpInterval {
    /// Launch-local warp index.
    pub warp: usize,
    /// Admission cycle (the warp entered the SM's warp buffer).
    pub start: u64,
    /// Retire cycle (all lanes done).
    pub end: u64,
}

/// One scheduler-round occupancy sample: the high-water marks across the
/// SM's resident warps at that cycle (the Fig. 20 buffer-sizing curves).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct OccupancySample {
    /// Virtual cycle the sample was taken at (end of the round).
    pub cycle: u64,
    /// Largest checkpoint-buffer occupancy across resident lanes.
    pub checkpoint: u64,
    /// Largest eviction-buffer occupancy across resident lanes.
    pub eviction: u64,
    /// Largest k-buffer occupancy across resident lanes this round.
    pub kbuffer: u64,
}

/// Everything one `(launch, SM)` fragment records: the per-SM hardware
/// counters, the warp timeline, and the per-round histograms/series.
///
/// Produced by [`FragmentRecorder::finish`] inside the render engine's
/// fragment simulation, submitted to the [`Profiler`] sink at merge time
/// with the launch's canonical key.
#[derive(Debug, Clone)]
pub struct FragmentProfile {
    /// Simulated SM index within the launch.
    pub sm: usize,
    /// The SM's virtual clock at fragment end — its busy-cycle total.
    pub busy_cycles: u64,
    /// Warp activity intervals, sorted by `(start, warp)`.
    pub warps: Vec<WarpInterval>,
    /// Active SIMT lanes per warp-round.
    pub lane_occupancy: Histogram,
    /// Idle SIMT lanes per warp-round (the divergence profile).
    pub divergence: Histogram,
    /// Per-scheduler-round buffer occupancy high-water series.
    pub occupancy: Vec<OccupancySample>,
    /// The fragment simulator's full counter set — the per-(launch, SM)
    /// cell of the hardware-counter matrix. Snapshotted *before* the
    /// merge absorbs the fragment, so summing the matrix reproduces the
    /// global totals exactly.
    pub stats: SimStats,
    /// L1 structure accesses (line-granular) on this SM's private L1.
    pub l1_accesses: u64,
    /// L1 structure hits.
    pub l1_hits: u64,
    /// Accesses reaching this SM's private L2 slice.
    pub l2_accesses: u64,
    /// L2-slice structure hits.
    pub l2_hits: u64,
    /// Accesses falling through to DRAM.
    pub dram_accesses: u64,
    /// Lines installed by the sibling prefetcher.
    pub prefetch_installs: u64,
}

/// Records one `(launch, SM)` fragment's timeline while the render
/// engine's warp queue executes it. Obtained from
/// [`Profiler::fragment_recorder`] (`None` when profiling is disabled,
/// so every hook in the queue is one `Option` branch).
///
/// The recorder owns the fragment's **virtual SM clock**: each scheduler
/// round advances it by the slowest resident warp's round time
/// (compute + round overhead + stall) — a pure function of the simulated
/// work, identical at any host thread count.
#[derive(Debug)]
pub struct FragmentRecorder {
    sm: usize,
    now: u64,
    warp_base: usize,
    /// `(launch-local warp, admission cycle)` for resident warps — at
    /// most the warp-buffer depth, so linear scans stay trivial.
    admitted: Vec<(usize, u64)>,
    warps: Vec<WarpInterval>,
    lane_occupancy: Histogram,
    divergence: Histogram,
    occupancy: Vec<OccupancySample>,
}

impl FragmentRecorder {
    /// A fresh recorder for fragment `sm`, with its clock at cycle 0.
    pub fn new(sm: usize) -> Self {
        Self {
            sm,
            now: 0,
            warp_base: 0,
            admitted: Vec::new(),
            warps: Vec::new(),
            lane_occupancy: Histogram::default(),
            divergence: Histogram::default(),
            occupancy: Vec::new(),
        }
    }

    /// Starts a launch phase whose queue uses phase-local warp indices
    /// offset by `warp_base` (the secondary-ray phase continues the
    /// round-robin where the primaries left off). The virtual clock
    /// keeps running across phases.
    pub fn begin_phase(&mut self, warp_base: usize) {
        self.warp_base = warp_base;
    }

    /// A warp entered the warp buffer at the current cycle.
    pub fn admit(&mut self, warp: usize) {
        self.admitted.push((self.warp_base + warp, self.now));
    }

    /// One warp executed one round with `active` of `lanes` SIMT lanes
    /// live — feeds the lane-occupancy and divergence histograms.
    pub fn warp_round(&mut self, active: u64, lanes: u64) {
        self.lane_occupancy.record(active);
        self.divergence.record(lanes.saturating_sub(active));
    }

    /// Ends one scheduler round: advances the virtual clock by the
    /// slowest resident warp's round time and samples the buffer
    /// occupancy high-water marks observed across resident lanes.
    pub fn round_end(&mut self, advance: u64, checkpoint: u64, eviction: u64, kbuffer: u64) {
        self.now += advance;
        self.occupancy.push(OccupancySample {
            cycle: self.now,
            checkpoint,
            eviction,
            kbuffer,
        });
    }

    /// A warp retired (all lanes done) at the current cycle.
    ///
    /// # Panics
    ///
    /// Panics if the warp was never [admitted](Self::admit).
    pub fn retire(&mut self, warp: usize) {
        let warp = self.warp_base + warp;
        let pos = self
            .admitted
            .iter()
            .position(|(w, _)| *w == warp)
            .expect("retired warp was admitted");
        let (_, start) = self.admitted.swap_remove(pos);
        self.warps.push(WarpInterval {
            warp,
            start,
            end: self.now,
        });
    }

    /// The fragment's virtual clock, in cycles.
    pub fn now(&self) -> u64 {
        self.now
    }

    /// Seals the recording, snapshotting the fragment simulator's
    /// counters into the matrix cell. Call after the queue drains and
    /// *before* the merge absorbs `sim` into the aggregate.
    pub fn finish(mut self, sim: &GpuSim) -> FragmentProfile {
        // Retire order is not admission order (an early warp can outlive
        // a late one); canonicalize the timeline by (start, warp).
        self.warps
            .sort_by(|a, b| a.start.cmp(&b.start).then(a.warp.cmp(&b.warp)));
        FragmentProfile {
            sm: self.sm,
            busy_cycles: self.now,
            warps: self.warps,
            lane_occupancy: self.lane_occupancy,
            divergence: self.divergence,
            occupancy: self.occupancy,
            stats: sim.stats.clone(),
            l1_accesses: sim.mem.l1_structure_accesses,
            l1_hits: sim.mem.l1_structure_hits,
            l2_accesses: sim.mem.l2_structure_accesses,
            l2_hits: sim.mem.l2_structure_hits,
            dram_accesses: sim.mem.dram_structure_accesses,
            prefetch_installs: sim.mem.prefetch_installs,
        }
    }
}

#[derive(Debug)]
struct ProfInner {
    gpu: Mutex<Option<GpuDesc>>,
    /// `(launch key, fragment)` in arrival order; every export sorts by
    /// `(key, sm)`, so concurrent merges (pipeline frames finishing out
    /// of order) cannot perturb the canonical profile.
    fragments: Mutex<Vec<(u64, FragmentProfile)>>,
}

/// The profiling handle threaded through the render engine, the frame
/// pipeline, and the facade. Cheap to clone; disabled by default. See
/// the [crate docs](self) for the design.
#[derive(Debug, Clone, Default)]
pub struct Profiler {
    inner: Option<Arc<ProfInner>>,
}

/// Two handles are equal when they are the *same* sink (or both
/// disabled) — configuration structs deriving `PartialEq` compare
/// identity, not recorded content (the [`Telemetry`] convention).
impl PartialEq for Profiler {
    fn eq(&self, other: &Self) -> bool {
        match (&self.inner, &other.inner) {
            (None, None) => true,
            (Some(a), Some(b)) => Arc::ptr_eq(a, b),
            _ => false,
        }
    }
}

impl Profiler {
    /// The no-op handle: every hook is a single `None` branch.
    pub fn disabled() -> Self {
        Self::default()
    }

    /// An enabled handle with an empty sink. One handle should observe
    /// each launch once — profile a run with a fresh handle.
    pub fn enabled() -> Self {
        Self {
            inner: Some(Arc::new(ProfInner {
                gpu: Mutex::new(None),
                fragments: Mutex::new(Vec::new()),
            })),
        }
    }

    /// Whether this handle records anything at all.
    pub fn is_enabled(&self) -> bool {
        self.inner.is_some()
    }

    /// Captures the GPU description once (first caller wins; profiled
    /// launches all run the same engine configuration).
    pub fn observe_gpu(&self, config: &GpuConfig) {
        let Some(inner) = &self.inner else { return };
        let mut gpu = inner
            .gpu
            .lock()
            .unwrap_or_else(std::sync::PoisonError::into_inner);
        if gpu.is_none() {
            *gpu = Some(GpuDesc::of(config));
        }
    }

    /// A recorder for one `(launch, SM)` fragment, or `None` when
    /// disabled — the engine holds the `Option` and every hook costs
    /// one branch on it.
    pub fn fragment_recorder(&self, sm: usize) -> Option<FragmentRecorder> {
        self.inner.as_ref().map(|_| FragmentRecorder::new(sm))
    }

    /// Submits one fragment's profile under its launch's canonical key
    /// (camera index for a batch; `frame << 32 | camera` for a stream).
    /// Arrival order is irrelevant — exports sort by `(key, sm)`.
    pub fn submit(&self, key: u64, profile: FragmentProfile) {
        let Some(inner) = &self.inner else { return };
        inner
            .fragments
            .lock()
            .unwrap_or_else(std::sync::PoisonError::into_inner)
            .push((key, profile));
    }

    /// The captured GPU description, if any launch ran yet.
    pub fn gpu_desc(&self) -> Option<GpuDesc> {
        let inner = self.inner.as_ref()?;
        inner
            .gpu
            .lock()
            .unwrap_or_else(std::sync::PoisonError::into_inner)
            .clone()
    }

    /// Snapshot of every submitted fragment in canonical `(key, sm)`
    /// order.
    fn sorted_fragments(&self) -> Vec<(u64, FragmentProfile)> {
        let Some(inner) = &self.inner else {
            return Vec::new();
        };
        let mut frags: Vec<(u64, FragmentProfile)> = inner
            .fragments
            .lock()
            .unwrap_or_else(std::sync::PoisonError::into_inner)
            .clone();
        frags.sort_by(|(ka, fa), (kb, fb)| ka.cmp(kb).then(fa.sm.cmp(&fb.sm)));
        frags
    }

    /// Builds the canonical `grtx-prof-v1` [`ProfReport`]. Returns
    /// `None` when disabled.
    pub fn report(&self) -> Option<ProfReport> {
        self.inner.as_ref()?;
        Some(ProfReport::build(self.gpu_desc(), self.sorted_fragments()))
    }

    /// Exports the profile as a Chrome trace-event JSON document with
    /// **one track per simulated SM** and all timestamps in simulated
    /// cycles (1 tick = 1 cycle; `displayTimeUnit` stays ms, so Perfetto
    /// renders cycle counts as if they were microseconds — exact
    /// integers, no sub-tick rounding). Launches lay out back-to-back in
    /// canonical key order, each fragment contributing a `launch` span
    /// and one `warp` span per warp interval; SMs that executed no
    /// fragment flush no events and get no track. Returns `None` when
    /// disabled.
    pub fn chrome_trace(&self) -> Option<String> {
        self.inner.as_ref()?;
        let frags = self.sorted_fragments();
        let num_sms = self.gpu_desc().map_or_else(
            || frags.iter().map(|(_, f)| f.sm + 1).max().unwrap_or(1),
            |g| g.num_sms.max(1),
        );
        // Reuse telemetry's exporter through a virtual-clock handle: the
        // recorders never read a wall clock, every timestamp below comes
        // from the fragments' virtual SM clocks.
        let t = Telemetry::with_clock(ClockMode::Virtual);
        let mut recorders: Vec<_> = (0..num_sms)
            .map(|sm| t.recorder(format!("sm-{sm:02}")))
            .collect();
        let mut offset = 0u64;
        let mut i = 0;
        while i < frags.len() {
            let key = frags[i].0;
            let mut span = 0u64;
            while i < frags.len() && frags[i].0 == key {
                let f = &frags[i].1;
                span = span.max(f.busy_cycles);
                if let Some(rec) = recorders.get_mut(f.sm) {
                    rec.record_at("launch", key, offset, f.busy_cycles);
                    for w in &f.warps {
                        rec.record_at("warp", w.warp as u64, offset + w.start, w.end - w.start);
                    }
                }
                i += 1;
            }
            offset += span;
        }
        drop(recorders);
        t.chrome_trace()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_profile(sm: usize, busy: u64) -> FragmentProfile {
        let mut rec = FragmentRecorder::new(sm);
        rec.admit(0);
        rec.warp_round(32, 32);
        rec.round_end(busy, 3, 1, 8);
        rec.retire(0);
        rec.finish(&GpuSim::new(GpuConfig::default().sm_slice()))
    }

    #[test]
    fn disabled_profiler_records_nothing() {
        let p = Profiler::disabled();
        assert!(!p.is_enabled());
        assert!(p.fragment_recorder(0).is_none());
        p.observe_gpu(&GpuConfig::default());
        p.submit(0, sample_profile(0, 100));
        assert!(p.report().is_none());
        assert!(p.chrome_trace().is_none());
        assert!(p.gpu_desc().is_none());
    }

    #[test]
    fn recorder_clock_is_a_pure_function_of_rounds() {
        let mut rec = FragmentRecorder::new(2);
        rec.admit(0);
        rec.admit(1);
        rec.warp_round(32, 32);
        rec.warp_round(16, 32);
        rec.round_end(500, 4, 2, 8);
        rec.retire(1);
        rec.warp_round(32, 32);
        rec.round_end(200, 4, 2, 8);
        rec.retire(0);
        rec.begin_phase(10);
        rec.admit(0); // warp 10 of the secondary phase
        rec.round_end(300, 0, 0, 5);
        rec.retire(0);
        assert_eq!(rec.now(), 1000);
        let profile = rec.finish(&GpuSim::new(GpuConfig::default().sm_slice()));
        assert_eq!(profile.sm, 2);
        assert_eq!(profile.busy_cycles, 1000);
        // Sorted by (start, warp); the clock runs on across phases.
        assert_eq!(
            profile.warps,
            vec![
                WarpInterval {
                    warp: 0,
                    start: 0,
                    end: 700
                },
                WarpInterval {
                    warp: 1,
                    start: 0,
                    end: 500
                },
                WarpInterval {
                    warp: 10,
                    start: 700,
                    end: 1000
                },
            ]
        );
        assert_eq!(profile.occupancy.len(), 3);
        assert_eq!(profile.occupancy[0].cycle, 500);
        assert_eq!(profile.occupancy[0].kbuffer, 8);
        assert_eq!(profile.lane_occupancy.count(), 3);
        assert_eq!(profile.divergence.max(), 16);
    }

    #[test]
    fn exports_sort_fragments_canonically() {
        let build = |submit_order: &[(u64, usize)]| {
            let p = Profiler::enabled();
            p.observe_gpu(&GpuConfig::default());
            for &(key, sm) in submit_order {
                p.submit(key, sample_profile(sm, 100 * (key + 1)));
            }
            (p.chrome_trace().unwrap(), p.report().unwrap().to_json())
        };
        let (trace_a, report_a) = build(&[(0, 0), (0, 1), (1, 0)]);
        let (trace_b, report_b) = build(&[(1, 0), (0, 1), (0, 0)]);
        assert_eq!(trace_a, trace_b, "arrival order must not leak");
        assert_eq!(report_a, report_b);
    }

    #[test]
    fn launches_lay_out_back_to_back() {
        let p = Profiler::enabled();
        p.observe_gpu(&GpuConfig::default());
        p.submit(0, sample_profile(0, 100));
        p.submit(1, sample_profile(0, 50));
        let trace = p.chrome_trace().unwrap();
        // Launch 1 starts where launch 0's slowest SM ended.
        assert!(trace.contains("\"name\":\"launch\",\"cat\":\"grtx\",\"ts\":0,\"dur\":100"));
        assert!(trace.contains("\"name\":\"launch\",\"cat\":\"grtx\",\"ts\":100,\"dur\":50"));
        // SMs that recorded fragments get a named track; idle SMs flush
        // no events and therefore no track.
        assert!(trace.contains("\"name\":\"sm-00\""));
        assert!(!trace.contains("\"name\":\"sm-07\""));
    }

    #[test]
    fn handles_compare_by_identity() {
        let a = Profiler::enabled();
        let b = a.clone();
        assert_eq!(a, b);
        assert_ne!(a, Profiler::enabled());
        assert_eq!(Profiler::disabled(), Profiler::disabled());
        assert_ne!(a, Profiler::disabled());
    }
}
