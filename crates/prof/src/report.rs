//! The canonical `grtx-prof-v1` machine-readable profile report and its
//! JSON/table serializations.
//!
//! Everything here is a pure function of the submitted
//! [`FragmentProfile`]s: values are simulated-cycle counts and simulator
//! counters, serialization order is canonical `(launch key, SM)`, and
//! floats derive from integer counters by fixed arithmetic — so two
//! profiled runs of the same workload produce **byte-identical** JSON at
//! any host thread count.

use crate::{FragmentProfile, GpuDesc, OccupancySample};
use grtx_sim::SimStats;

/// Percentile digest of one per-round histogram.
#[derive(Debug, Clone, PartialEq)]
pub struct HistDigest {
    /// Recorded samples (one per warp-round).
    pub count: u64,
    /// Mean sample.
    pub mean: f64,
    /// Median sample.
    pub p50: u64,
    /// 95th-percentile sample.
    pub p95: u64,
    /// Largest sample.
    pub max: u64,
}

impl HistDigest {
    fn of(h: &grtx_telemetry::Histogram) -> Self {
        Self {
            count: h.count(),
            mean: h.mean(),
            p50: h.percentile(50.0),
            p95: h.percentile(95.0),
            max: h.max(),
        }
    }
}

/// One launch's virtual-clock placement: launches lay out back-to-back
/// in key order, each spanning its slowest SM's busy cycles.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct LaunchSummary {
    /// Canonical launch key (camera index for a batch;
    /// `frame << 32 | camera` for a stream).
    pub key: u64,
    /// Cycle the launch starts at on the global virtual clock.
    pub start_cycle: u64,
    /// Slowest SM's busy cycles — the launch's virtual-clock span.
    pub cycles: u64,
    /// Fragments (SMs) that reported for this launch.
    pub sms: usize,
}

/// One `(launch, SM)` cell of the hardware-counter matrix.
#[derive(Debug, Clone, PartialEq)]
pub struct MatrixRow {
    /// Launch key (matches a [`LaunchSummary`]).
    pub launch: u64,
    /// Simulated SM index.
    pub sm: usize,
    /// The SM's virtual clock at fragment end.
    pub busy_cycles: u64,
    /// Warps this SM executed for the launch.
    pub warps: u64,
    /// Full simulator counter snapshot for this cell. Summing the
    /// column over all rows of a run reproduces the global [`SimStats`]
    /// exactly (peaks take the max) — the matrix is the totals,
    /// disaggregated.
    pub stats: SimStats,
    /// L1 structure accesses (line-granular).
    pub l1_accesses: u64,
    /// L1 structure hits.
    pub l1_hits: u64,
    /// Accesses reaching the SM's private L2 slice.
    pub l2_accesses: u64,
    /// L2-slice structure hits.
    pub l2_hits: u64,
    /// Accesses falling through to DRAM.
    pub dram_accesses: u64,
    /// Lines installed by the sibling prefetcher.
    pub prefetch_installs: u64,
    /// Active SIMT lanes per warp-round.
    pub lane_occupancy: HistDigest,
    /// Idle SIMT lanes per warp-round.
    pub divergence: HistDigest,
    /// Per-scheduler-round buffer occupancy high-water series.
    pub occupancy: Vec<OccupancySample>,
}

/// The canonical profile report (schema `grtx-prof-v1`).
#[derive(Debug, Clone, PartialEq)]
pub struct ProfReport {
    /// Architecture snapshot (`None` if no launch ever ran).
    pub gpu: Option<GpuDesc>,
    /// Launch placements in key order.
    pub launches: Vec<LaunchSummary>,
    /// Counter matrix in `(launch, SM)` order.
    pub matrix: Vec<MatrixRow>,
}

impl ProfReport {
    /// Builds the report from fragments already in canonical
    /// `(key, sm)` order.
    pub(crate) fn build(gpu: Option<GpuDesc>, frags: Vec<(u64, FragmentProfile)>) -> Self {
        let mut launches: Vec<LaunchSummary> = Vec::new();
        let mut matrix: Vec<MatrixRow> = Vec::with_capacity(frags.len());
        let mut offset = 0u64;
        let mut i = 0;
        while i < frags.len() {
            let key = frags[i].0;
            let mut span = 0u64;
            let mut sms = 0usize;
            while i < frags.len() && frags[i].0 == key {
                let f = &frags[i].1;
                span = span.max(f.busy_cycles);
                sms += 1;
                matrix.push(MatrixRow {
                    launch: key,
                    sm: f.sm,
                    busy_cycles: f.busy_cycles,
                    warps: f.warps.len() as u64,
                    stats: f.stats.clone(),
                    l1_accesses: f.l1_accesses,
                    l1_hits: f.l1_hits,
                    l2_accesses: f.l2_accesses,
                    l2_hits: f.l2_hits,
                    dram_accesses: f.dram_accesses,
                    prefetch_installs: f.prefetch_installs,
                    lane_occupancy: HistDigest::of(&f.lane_occupancy),
                    divergence: HistDigest::of(&f.divergence),
                    occupancy: f.occupancy.clone(),
                });
                i += 1;
            }
            launches.push(LaunchSummary {
                key,
                start_cycle: offset,
                cycles: span,
                sms,
            });
            offset += span;
        }
        Self {
            gpu,
            launches,
            matrix,
        }
    }

    /// Sums the matrix back to the global counter totals (additive
    /// counters sum, peaks take the max) — by construction equal to the
    /// [`SimStats`] the run's reports published.
    pub fn matrix_totals(&self) -> SimStats {
        let mut total = SimStats::default();
        for row in &self.matrix {
            total.merge(&row.stats);
        }
        total
    }

    /// Serializes as a `grtx-prof-v1` JSON document (hand-rolled; the
    /// workspace has no serde). Byte-identical across runs and host
    /// thread counts for the same profiled workload.
    pub fn to_json(&self) -> String {
        let mut out = String::from("{\n  \"schema\": \"grtx-prof-v1\",\n");
        out.push_str("  \"gpu\": ");
        match &self.gpu {
            None => out.push_str("null"),
            Some(g) => out.push_str(&format!(
                "{{\"num_sms\": {}, \"clock_mhz\": {}, \"warp_size\": {}, \
                 \"warp_buffer_size\": {}, \"line_bytes\": {}, \"l1_latency\": {}, \
                 \"l2_latency\": {}, \"dram_latency\": {}}}",
                g.num_sms,
                g.clock_mhz,
                g.warp_size,
                g.warp_buffer_size,
                g.line_bytes,
                g.l1_latency,
                g.l2_latency,
                g.dram_latency
            )),
        }
        out.push_str(",\n  \"launches\": [\n");
        let rows: Vec<String> = self
            .launches
            .iter()
            .map(|l| {
                format!(
                    "    {{\"key\": {}, \"start_cycle\": {}, \"cycles\": {}, \"sms\": {}}}",
                    l.key, l.start_cycle, l.cycles, l.sms
                )
            })
            .collect();
        out.push_str(&rows.join(",\n"));
        out.push_str("\n  ],\n  \"matrix\": [\n");
        let rows: Vec<String> = self.matrix.iter().map(matrix_row_json).collect();
        out.push_str(&rows.join(",\n"));
        out.push_str("\n  ]\n}\n");
        out
    }

    /// Renders the human-readable summary: per-SM utilization, cache hit
    /// rates per level, the divergence profile, and the Fig. 15-style
    /// fetch-latency breakdown.
    pub fn summary_table(&self) -> String {
        let mut out = String::new();
        out.push_str(&format!(
            "grtx-prof: {} launches, {} matrix cells\n",
            self.launches.len(),
            self.matrix.len()
        ));
        if let Some(g) = &self.gpu {
            let total: u64 = self.launches.iter().map(|l| l.cycles).sum();
            out.push_str(&format!(
                "gpu: {} SMs @ {} MHz, warp {} x buffer {}; profiled span {} cycles ({:.3} ms)\n",
                g.num_sms,
                g.clock_mhz,
                g.warp_size,
                g.warp_buffer_size,
                total,
                g.cycles_to_ms(total)
            ));
        }
        // Per-SM utilization: busy cycles summed over launches, relative
        // to the busiest SM.
        let num_sms = 1 + self.matrix.iter().map(|r| r.sm).max().unwrap_or(0);
        let mut busy = vec![0u64; num_sms];
        let mut warps = vec![0u64; num_sms];
        for row in &self.matrix {
            busy[row.sm] += row.busy_cycles;
            warps[row.sm] += row.warps;
        }
        let busiest = busy.iter().copied().max().unwrap_or(0).max(1);
        out.push_str(&format!(
            "\n{:<8} {:>14} {:>8} {:>12}\n",
            "sm", "busy cycles", "warps", "utilization"
        ));
        for (sm, (&cycles, &w)) in busy.iter().zip(&warps).enumerate() {
            out.push_str(&format!(
                "sm-{sm:02}    {:>14} {:>8} {:>11.1}%\n",
                cycles,
                w,
                100.0 * cycles as f64 / busiest as f64
            ));
        }
        // Cache hit rates per level, and the latency each level
        // contributed (every access pays L1 latency; misses add the next
        // level on top — the Fig. 15 average-fetch-latency decomposition).
        let l1_acc: u64 = self.matrix.iter().map(|r| r.l1_accesses).sum();
        let l1_hit: u64 = self.matrix.iter().map(|r| r.l1_hits).sum();
        let l2_acc: u64 = self.matrix.iter().map(|r| r.l2_accesses).sum();
        let l2_hit: u64 = self.matrix.iter().map(|r| r.l2_hits).sum();
        let dram: u64 = self.matrix.iter().map(|r| r.dram_accesses).sum();
        let rate = |hits: u64, acc: u64| {
            if acc == 0 {
                0.0
            } else {
                100.0 * hits as f64 / acc as f64
            }
        };
        out.push_str(&format!(
            "\ncache: L1 {:.1}% of {} | L2-slice {:.1}% of {} | DRAM {}\n",
            rate(l1_hit, l1_acc),
            l1_acc,
            rate(l2_hit, l2_acc),
            l2_acc,
            dram
        ));
        if let Some(g) = &self.gpu {
            let totals = self.matrix_totals();
            let l1_cyc = l1_acc * g.l1_latency;
            let l2_cyc = l2_acc * g.l2_latency;
            let dram_cyc = dram * g.dram_latency;
            let sum = (l1_cyc + l2_cyc + dram_cyc).max(1);
            out.push_str(&format!(
                "fetch latency: avg {:.1} cycles; est. breakdown L1 {:.1}% / L2 {:.1}% / DRAM {:.1}%\n",
                totals.avg_fetch_latency(),
                100.0 * l1_cyc as f64 / sum as f64,
                100.0 * l2_cyc as f64 / sum as f64,
                100.0 * dram_cyc as f64 / sum as f64
            ));
        }
        // Divergence profile over all warp-rounds: digests can't merge,
        // so the aggregate means come from count-weighted sums.
        let rounds: u64 = self.matrix.iter().map(|r| r.lane_occupancy.count).sum();
        let weighted = |f: fn(&MatrixRow) -> (u64, f64)| -> f64 {
            let (mut n, mut sum) = (0u64, 0.0f64);
            for row in &self.matrix {
                let (count, mean) = f(row);
                n += count;
                sum += count as f64 * mean;
            }
            if n == 0 {
                0.0
            } else {
                sum / n as f64
            }
        };
        let mean_active = weighted(|r| (r.lane_occupancy.count, r.lane_occupancy.mean));
        let mean_idle = weighted(|r| (r.divergence.count, r.divergence.mean));
        out.push_str(&format!(
            "divergence: {rounds} warp-rounds, mean {mean_active:.1} active / {mean_idle:.1} idle lanes\n",
        ));
        // Buffer high-water marks across every occupancy sample.
        let mut ckpt = 0u64;
        let mut evict = 0u64;
        let mut kbuf = 0u64;
        for row in &self.matrix {
            for s in &row.occupancy {
                ckpt = ckpt.max(s.checkpoint);
                evict = evict.max(s.eviction);
                kbuf = kbuf.max(s.kbuffer);
            }
        }
        out.push_str(&format!(
            "buffers: checkpoint high-water {ckpt}, eviction {evict}, k-buffer {kbuf}\n"
        ));
        out
    }
}

fn hist_json(h: &HistDigest) -> String {
    format!(
        "{{\"count\": {}, \"mean\": {}, \"p50\": {}, \"p95\": {}, \"max\": {}}}",
        h.count, h.mean, h.p50, h.p95, h.max
    )
}

fn matrix_row_json(row: &MatrixRow) -> String {
    let s = &row.stats;
    let series: Vec<String> = row
        .occupancy
        .iter()
        .map(|o| {
            format!(
                "[{},{},{},{}]",
                o.cycle, o.checkpoint, o.eviction, o.kbuffer
            )
        })
        .collect();
    format!(
        "    {{\"launch\": {}, \"sm\": {}, \"busy_cycles\": {}, \"warps\": {}, \
         \"node_fetches_total\": {}, \"node_fetches_unique\": {}, \
         \"internal_fetches_total\": {}, \"internal_fetches_unique\": {}, \
         \"fetch_latency_cycles\": {}, \"box_tests\": {}, \"triangle_tests\": {}, \
         \"sphere_tests\": {}, \"ellipsoid_tests\": {}, \"ray_transforms\": {}, \
         \"any_hit_invocations\": {}, \"checkpoint_writes\": {}, \"checkpoint_reads\": {}, \
         \"eviction_writes\": {}, \"peak_checkpoint_entries\": {}, \
         \"peak_eviction_entries\": {}, \"rounds\": {}, \"rays\": {}, \
         \"blended_gaussians\": {}, \"l1_accesses\": {}, \"l1_hits\": {}, \
         \"l2_accesses\": {}, \"l2_hits\": {}, \"dram_accesses\": {}, \
         \"prefetch_installs\": {}, \"lane_occupancy\": {}, \"divergence\": {}, \
         \"occupancy\": [{}]}}",
        row.launch,
        row.sm,
        row.busy_cycles,
        row.warps,
        s.node_fetches_total,
        s.node_fetches_unique,
        s.internal_fetches_total,
        s.internal_fetches_unique,
        s.fetch_latency_cycles,
        s.box_tests,
        s.triangle_tests,
        s.sphere_tests,
        s.ellipsoid_tests,
        s.ray_transforms,
        s.any_hit_invocations,
        s.checkpoint_writes,
        s.checkpoint_reads,
        s.eviction_writes,
        s.peak_checkpoint_entries,
        s.peak_eviction_entries,
        s.rounds,
        s.rays,
        s.blended_gaussians,
        row.l1_accesses,
        row.l1_hits,
        row.l2_accesses,
        row.l2_hits,
        row.dram_accesses,
        row.prefetch_installs,
        hist_json(&row.lane_occupancy),
        hist_json(&row.divergence),
        series.join(",")
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::FragmentRecorder;
    use grtx_sim::{GpuConfig, GpuSim};

    fn two_launch_report() -> ProfReport {
        let frag = |sm: usize, busy: u64| {
            let mut rec = FragmentRecorder::new(sm);
            rec.admit(0);
            rec.warp_round(30, 32);
            rec.round_end(busy, 2, 1, 6);
            rec.retire(0);
            let mut sim = GpuSim::new(GpuConfig::default().sm_slice());
            sim.stats.rays = 32;
            sim.stats.rounds = 1;
            sim.stats.peak_checkpoint_entries = 2 + sm as u64;
            sim.mem.l1_structure_accesses = 100;
            sim.mem.l1_structure_hits = 80;
            rec.finish(&sim)
        };
        ProfReport::build(
            Some(GpuDesc::of(&GpuConfig::default())),
            vec![(0, frag(0, 500)), (0, frag(1, 700)), (1, frag(0, 300))],
        )
    }

    #[test]
    fn launches_are_placed_back_to_back() {
        let r = two_launch_report();
        assert_eq!(r.launches.len(), 2);
        assert_eq!(r.launches[0].start_cycle, 0);
        assert_eq!(r.launches[0].cycles, 700);
        assert_eq!(r.launches[0].sms, 2);
        assert_eq!(r.launches[1].start_cycle, 700);
        assert_eq!(r.launches[1].cycles, 300);
    }

    #[test]
    fn matrix_totals_fold_like_simstats() {
        let r = two_launch_report();
        let totals = r.matrix_totals();
        assert_eq!(totals.rays, 96);
        assert_eq!(totals.rounds, 3);
        // Peaks max-merge, exactly as SimStats::merge does.
        assert_eq!(totals.peak_checkpoint_entries, 3);
    }

    #[test]
    fn json_is_well_formed_and_carries_required_keys() {
        let json = two_launch_report().to_json();
        for key in [
            "\"schema\": \"grtx-prof-v1\"",
            "\"gpu\"",
            "\"num_sms\": 8",
            "\"launches\"",
            "\"matrix\"",
            "\"busy_cycles\": 700",
            "\"lane_occupancy\"",
            "\"occupancy\": [[500,2,1,6]]",
            "\"l1_hits\": 80",
        ] {
            assert!(json.contains(key), "missing {key} in {json}");
        }
        assert_eq!(json.matches('{').count(), json.matches('}').count());
        assert_eq!(json.matches('[').count(), json.matches(']').count());
    }

    #[test]
    fn summary_table_lists_every_section() {
        let table = two_launch_report().summary_table();
        for needle in [
            "2 launches",
            "sm-00",
            "sm-01",
            "utilization",
            "cache: L1 80.0%",
            "fetch latency",
            "divergence",
            "buffers: checkpoint high-water 2",
        ] {
            assert!(table.contains(needle), "missing {needle:?} in:\n{table}");
        }
    }

    #[test]
    fn empty_report_serializes() {
        let r = ProfReport::build(None, Vec::new());
        let json = r.to_json();
        assert!(json.contains("\"gpu\": null"));
        assert!(json.contains("grtx-prof-v1"));
        assert!(!r.summary_table().is_empty());
    }
}
