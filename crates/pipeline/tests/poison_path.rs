//! The default-policy poisoning contract, pinned: a stage-task panic
//! poisons the pipeline, sibling workers drain out without deadlocking,
//! the *original* panic payload reaches the caller unchanged, and the
//! process can run fresh streams afterwards.
//!
//! Everything lives in one `#[test]` because the quiet-hook dance is
//! process-global.

use grtx_fault::{FaultInjector, FaultPlan, FaultSite, InjectedFault, RetryPolicy};
use grtx_pipeline::{run_stream, FrameSource, FrameSpec, OrbitSource, StreamConfig};
use grtx_scene::synth::generate_scene;
use grtx_scene::{Camera, CameraModel, SceneKind};
use std::sync::Arc;

fn train_scene(budget: usize) -> Arc<grtx_scene::GaussianScene> {
    Arc::new(generate_scene(
        SceneKind::Train.profile().with_gaussian_budget(budget),
        7,
    ))
}

fn base_camera() -> Camera {
    Camera::look_at(
        16,
        16,
        CameraModel::Pinhole { fov_y: 0.9 },
        SceneKind::Train.profile().camera_eye(),
        grtx_math::Vec3::ZERO,
        grtx_math::Vec3::Y,
    )
}

/// A payload type the pipeline cannot fabricate: if the caller sees it,
/// the original payload survived the choke point byte for byte.
struct Marker {
    frame: usize,
}

/// Panics (with a [`Marker`]) when producing `panic_at`.
struct PanickySource {
    inner: OrbitSource,
    panic_at: usize,
}

impl FrameSource for PanickySource {
    fn frame(&self, index: usize) -> FrameSpec {
        if index == self.panic_at {
            std::panic::panic_any(Marker { frame: index });
        }
        self.inner.frame(index)
    }
}

#[test]
fn poisoned_pool_preserves_the_payload_drains_and_recovers() {
    let scene = train_scene(150);
    let config = StreamConfig {
        depth: 3,
        threads: 4,
        ..Default::default()
    };

    // 1. A foreign panic in the update stage: the pool drains (this
    //    call returning at all is the no-deadlock check) and the caller
    //    receives the original payload, not a re-wrapped description.
    let hook = std::panic::take_hook();
    std::panic::set_hook(Box::new(|_| {}));
    let source = PanickySource {
        inner: OrbitSource::new(scene.clone(), base_camera(), 1, 0.3),
        panic_at: 2,
    };
    let result = std::panic::catch_unwind(|| run_stream(&source, 5, &config));
    let payload = result.expect_err("a stage panic must propagate to the caller");
    let marker = payload
        .downcast_ref::<Marker>()
        .expect("the original panic payload must be preserved");
    assert_eq!(marker.frame, 2);

    // 2. An injected fault under the *default* policy behaves exactly
    //    like any other stage panic — poison, drain, and the typed
    //    `InjectedFault` payload surfaces unchanged.
    let faulty = StreamConfig {
        depth: 3,
        threads: 4,
        faults: FaultInjector::with_plan(FaultPlan::new().permanent(FaultSite::Build, 1)),
        retry: RetryPolicy::default(),
        ..Default::default()
    };
    let source = OrbitSource::new(scene.clone(), base_camera(), 1, 0.3);
    let result = std::panic::catch_unwind(|| run_stream(&source, 4, &faulty));
    let payload = result.expect_err("an injected fault must propagate under the default policy");
    let fault = payload
        .downcast_ref::<InjectedFault>()
        .expect("the injected payload must be preserved");
    assert_eq!(fault.site, FaultSite::Build);
    assert_eq!(fault.key >> 32, 1, "the fault fired on frame 1");
    std::panic::set_hook(hook);

    // 3. The process is healthy afterwards: a fresh stream on a fresh
    //    pool runs to completion with every frame rendered.
    let source = OrbitSource::new(scene, base_camera(), 1, 0.3);
    let frames = run_stream(&source, 3, &config);
    assert_eq!(frames.len(), 3);
    assert!(frames.iter().all(|f| !f.reports.is_empty()));
}
