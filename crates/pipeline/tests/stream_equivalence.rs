//! The pipeline's determinism contract at the engine level: frames from
//! the overlapped scheduler are bit-identical — images, cycles, every
//! statistic, structure accounting — to the sequential per-frame path,
//! in strict frame order, at any depth, thread count, and shard count.

use grtx_pipeline::{
    run_sequential, run_stream, FrameResult, FrameSource, FrameSpec, JitterSource, OrbitSource,
    StreamConfig,
};
use grtx_scene::synth::generate_scene;
use grtx_scene::{Camera, CameraModel, SceneKind};
use std::sync::Arc;

fn train_scene(budget: usize) -> Arc<grtx_scene::GaussianScene> {
    Arc::new(generate_scene(
        SceneKind::Train.profile().with_gaussian_budget(budget),
        7,
    ))
}

fn base_camera() -> Camera {
    Camera::look_at(
        20,
        20,
        CameraModel::Pinhole { fov_y: 0.9 },
        SceneKind::Train.profile().camera_eye(),
        grtx_math::Vec3::ZERO,
        grtx_math::Vec3::Y,
    )
}

fn assert_frames_identical(label: &str, a: &[FrameResult], b: &[FrameResult]) {
    assert_eq!(a.len(), b.len(), "{label}: frame count");
    for (x, y) in a.iter().zip(b) {
        let tag = format!("{label}, frame {}", x.index);
        assert_eq!(x.index, y.index, "{tag}: index");
        assert_eq!(x.gaussians, y.gaussians, "{tag}: gaussians");
        assert_eq!(x.rebuilt, y.rebuilt, "{tag}: rebuilt");
        assert_eq!(x.size, y.size, "{tag}: size report");
        assert_eq!(x.height, y.height, "{tag}: height");
        assert_eq!(x.reports.len(), y.reports.len(), "{tag}: view count");
        for (view, (r, s)) in x.reports.iter().zip(&y.reports).enumerate() {
            let tag = format!("{tag}, view {view}");
            assert_eq!(r.image.pixels(), s.image.pixels(), "{tag}: image");
            assert_eq!(r.cycles, s.cycles, "{tag}: cycles");
            assert_eq!(r.stats, s.stats, "{tag}: stats");
            assert_eq!(r.l2_accesses, s.l2_accesses, "{tag}: L2");
            assert_eq!(r.dram_accesses, s.dram_accesses, "{tag}: DRAM");
            assert_eq!(r.footprint_bytes, s.footprint_bytes, "{tag}: footprint");
            assert_eq!(r.secondary, s.secondary, "{tag}: secondary");
            assert!((r.l1_hit_rate - s.l1_hit_rate).abs() < 1e-12, "{tag}: L1");
        }
        // Sharded accounting matches on everything deterministic
        // (build-phase wall-clock seconds are exempt by contract).
        match (&x.sharding, &y.sharding) {
            (None, None) => {}
            (Some(xs), Some(ys)) => {
                assert_eq!(xs.shard_count, ys.shard_count, "{tag}: shard count");
                assert_eq!(xs.shard_sizes, ys.shard_sizes, "{tag}: shard sizes");
                assert_eq!(xs.directory, ys.directory, "{tag}: directory");
            }
            _ => panic!("{tag}: sharding presence differs"),
        }
    }
}

/// Orbit (rebuild-free) and jitter (rebuild-heavy) streams are
/// bit-identical to the sequential path across the full depth × threads
/// × shards grid.
#[test]
fn stream_matches_sequential_across_depths_threads_and_shards() {
    let scene = train_scene(400);
    let orbit = OrbitSource::new(scene.clone(), base_camera(), 2, 0.35);
    let jitter = JitterSource::with_period(scene, vec![base_camera()], 0.15, 2);
    let sources: [(&str, &dyn FrameSource); 2] = [("orbit", &orbit), ("jitter", &jitter)];
    for (name, source) in sources {
        for shards in [1usize, 4] {
            let reference = run_sequential(
                source,
                4,
                &StreamConfig {
                    depth: 1,
                    threads: 1,
                    shards,
                    ..Default::default()
                },
            );
            for depth in [1usize, 2, 3] {
                for threads in [1usize, 4] {
                    let config = StreamConfig {
                        depth,
                        threads,
                        shards,
                        ..Default::default()
                    };
                    let frames = run_stream(source, 4, &config);
                    assert_frames_identical(
                        &format!("{name}, depth {depth}, threads {threads}, shards {shards}"),
                        &frames,
                        &reference,
                    );
                }
            }
        }
    }
}

/// The unchanged-scene rebuild skip: an orbit stream rebuilds exactly
/// once, a period-2 jitter stream every other frame.
#[test]
fn rebuild_flags_follow_the_source() {
    let scene = train_scene(200);
    let config = StreamConfig {
        depth: 3,
        threads: 2,
        ..Default::default()
    };
    let orbit = run_stream(
        &OrbitSource::new(scene.clone(), base_camera(), 1, 0.3),
        5,
        &config,
    );
    let rebuilds: Vec<bool> = orbit.iter().map(|f| f.rebuilt).collect();
    assert_eq!(rebuilds, [true, false, false, false, false]);
    let jitter = run_stream(
        &JitterSource::with_period(scene, vec![base_camera()], 0.1, 2),
        5,
        &config,
    );
    let rebuilds: Vec<bool> = jitter.iter().map(|f| f.rebuilt).collect();
    assert_eq!(rebuilds, [true, false, true, false, true]);
    // Reused frames render against the same structure — and the moving
    // rig means consecutive orbit frames still see different images.
    assert_ne!(
        orbit[0].reports[0].image.pixels(),
        orbit[1].reports[0].image.pixels()
    );
}

/// Frames arrive in strict frame order regardless of overlap.
#[test]
fn results_arrive_in_frame_order() {
    let source = OrbitSource::new(train_scene(150), base_camera(), 2, 0.4);
    let frames = run_stream(
        &source,
        6,
        &StreamConfig {
            depth: 3,
            threads: 4,
            ..Default::default()
        },
    );
    assert_eq!(frames.len(), 6);
    for (i, frame) in frames.iter().enumerate() {
        assert_eq!(frame.index, i);
        assert_eq!(frame.reports.len(), 2);
    }
}

/// Zero frames stream to zero results; camera-less frames produce empty
/// report lists but still carry their structure accounting.
#[test]
fn empty_streams_and_camera_less_frames_are_defined() {
    let scene = train_scene(100);
    let source = OrbitSource::new(scene.clone(), base_camera(), 1, 0.2);
    assert!(run_stream(&source, 0, &StreamConfig::default()).is_empty());

    struct NoCameras(Arc<grtx_scene::GaussianScene>);
    impl FrameSource for NoCameras {
        fn frame(&self, index: usize) -> FrameSpec {
            FrameSpec {
                scene: (index == 0).then(|| self.0.clone()),
                cameras: Vec::new(),
            }
        }
    }
    for depth in [1usize, 3] {
        let frames = run_stream(
            &NoCameras(scene.clone()),
            3,
            &StreamConfig {
                depth,
                threads: 2,
                ..Default::default()
            },
        );
        assert_eq!(frames.len(), 3);
        for frame in &frames {
            assert!(frame.reports.is_empty());
            assert!(frame.size.total_bytes > 0);
        }
    }
}

/// Long rebuild-every-frame streams release old frames' scenes (and
/// with them their structures) as the window advances, instead of
/// retaining every frame to the end of the stream.
///
/// The check is deterministic: by the time `update(n)` is claimed, the
/// scheduler's handoff bounds guarantee frame `n - 6` has merged, its
/// successor's update has completed, and its successor's build has been
/// claimed — the three conditions that release a slot.
#[test]
fn old_frame_slots_release_their_scenes() {
    use std::sync::{Mutex, Weak};
    struct Tracking {
        base: Arc<grtx_scene::GaussianScene>,
        camera: Camera,
        produced: Mutex<Vec<Weak<grtx_scene::GaussianScene>>>,
    }
    impl FrameSource for Tracking {
        fn frame(&self, index: usize) -> FrameSpec {
            let mut produced = self.produced.lock().unwrap();
            assert_eq!(produced.len(), index, "updates run in frame order");
            if index >= 6 {
                assert!(
                    produced[index - 6].upgrade().is_none(),
                    "frame {} scene still retained at frame {index}",
                    index - 6
                );
            }
            // A fresh allocation every frame forces a rebuild and makes
            // retention observable per frame.
            let scene = Arc::new((*self.base).clone());
            produced.push(Arc::downgrade(&scene));
            FrameSpec {
                scene: Some(scene),
                cameras: vec![self.camera.clone()],
            }
        }
    }
    let source = Tracking {
        base: train_scene(120),
        camera: base_camera(),
        produced: Mutex::new(Vec::new()),
    };
    let frames = run_stream(
        &source,
        10,
        &StreamConfig {
            depth: 3,
            threads: 2,
            ..Default::default()
        },
    );
    assert_eq!(frames.len(), 10);
}

/// A sourceless first frame is a contract violation — pipelined workers
/// forward the panic to the caller instead of hanging.
#[test]
#[should_panic(expected = "frame 0 must supply a scene")]
fn sceneless_first_frame_panics_through_the_pool() {
    struct Sceneless;
    impl FrameSource for Sceneless {
        fn frame(&self, _index: usize) -> FrameSpec {
            FrameSpec {
                scene: None,
                cameras: vec![base_camera()],
            }
        }
    }
    let _ = run_stream(
        &Sceneless,
        2,
        &StreamConfig {
            depth: 2,
            threads: 2,
            ..Default::default()
        },
    );
}
