//! The failure-path determinism contract: the same seed-scattered
//! `FaultPlan` produces the same `FaultLog` — and the same per-frame
//! outcomes — at any thread count and any pipeline depth, and recovered
//! transient-fault streams are bit-identical to fault-free runs.

use grtx_fault::{
    silence_injected_panics, FaultInjector, FaultLog, FaultPlan, FaultSite, RetryPolicy,
};
use grtx_pipeline::{try_run_stream, FrameOutcome, JitterSource, StreamConfig};
use grtx_scene::synth::generate_scene;
use grtx_scene::{Camera, CameraModel, SceneKind};
use proptest::prelude::*;
use std::sync::Arc;

const FRAMES: usize = 5;

fn source() -> JitterSource {
    let scene = Arc::new(generate_scene(
        SceneKind::Train.profile().with_gaussian_budget(120),
        7,
    ));
    let camera = Camera::look_at(
        14,
        14,
        CameraModel::Pinhole { fov_y: 0.9 },
        SceneKind::Train.profile().camera_eye(),
        grtx_math::Vec3::ZERO,
        grtx_math::Vec3::Y,
    );
    JitterSource::with_period(scene, vec![camera], 0.15, 2)
}

fn run_scattered(seed: u64, threads: usize, depth: usize) -> (Vec<FrameOutcome>, FaultLog) {
    let plan = FaultPlan::scatter(seed, &FaultSite::INJECTABLE, FRAMES as u64, 400, 1);
    let injector = FaultInjector::with_plan(plan);
    let config = StreamConfig {
        depth,
        threads,
        faults: injector.clone(),
        retry: RetryPolicy::resilient(3),
        ..Default::default()
    };
    let outcomes = try_run_stream(&source(), FRAMES, &config).expect("valid configuration");
    (outcomes, injector.log())
}

fn assert_outcomes_identical(label: &str, a: &[FrameOutcome], b: &[FrameOutcome]) {
    assert_eq!(a.len(), b.len(), "{label}: frame count");
    for (x, y) in a.iter().zip(b) {
        let tag = format!("{label}, frame {}", x.index());
        assert_eq!(x.index(), y.index(), "{tag}: index");
        assert_eq!(x.is_failed(), y.is_failed(), "{tag}: failure status");
        match (x.rendered(), y.rendered()) {
            (Some(r), Some(s)) => {
                assert_eq!(r.rebuilt, s.rebuilt, "{tag}: rebuilt");
                assert_eq!(r.size, s.size, "{tag}: size report");
                assert_eq!(r.reports.len(), s.reports.len(), "{tag}: view count");
                for (view, (p, q)) in r.reports.iter().zip(&s.reports).enumerate() {
                    let tag = format!("{tag}, view {view}");
                    assert_eq!(p.image.pixels(), q.image.pixels(), "{tag}: image");
                    assert_eq!(p.cycles, q.cycles, "{tag}: cycles");
                    assert_eq!(p.stats, q.stats, "{tag}: stats");
                }
            }
            (None, None) => assert_eq!(x.error(), y.error(), "{tag}: error"),
            _ => unreachable!("failure status compared above"),
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(6))]

    /// Same seed → same `FaultLog` and same outcomes, across the
    /// threads × depth grid: the probe set never depends on the
    /// schedule.
    #[test]
    fn fault_log_is_schedule_independent(seed in 0u64..512) {
        silence_injected_panics();
        let (reference_outcomes, reference_log) = run_scattered(seed, 1, 1);
        for depth in [1usize, 3] {
            for threads in [1usize, 4] {
                let (outcomes, log) = run_scattered(seed, threads, depth);
                prop_assert_eq!(
                    &log,
                    &reference_log,
                    "seed {} depth {} threads {}: fault log diverged",
                    seed,
                    depth,
                    threads
                );
                assert_outcomes_identical(
                    &format!("seed {seed} depth {depth} threads {threads}"),
                    &outcomes,
                    &reference_outcomes,
                );
            }
        }
    }
}

/// Transient faults recovered by retries leave no trace in the results:
/// the stream is bit-identical to a fault-free run of the same
/// configuration, and every injection was logged.
#[test]
fn recovered_streams_match_fault_free_runs() {
    silence_injected_panics();
    let plan = FaultPlan::new()
        .transient(FaultSite::Partition, 0, 1)
        .transient(FaultSite::Build, 2, 2)
        .transient(FaultSite::Fragment, 1, 1)
        .transient(FaultSite::Merge, 3, 2);
    for depth in [1usize, 3] {
        let injector = FaultInjector::with_plan(plan.clone());
        let faulty = StreamConfig {
            depth,
            threads: 2,
            faults: injector.clone(),
            retry: RetryPolicy::resilient(3),
            ..Default::default()
        };
        let clean = StreamConfig {
            depth,
            threads: 2,
            retry: RetryPolicy::resilient(3),
            ..Default::default()
        };
        let recovered = try_run_stream(&source(), FRAMES, &faulty).expect("valid configuration");
        let baseline = try_run_stream(&source(), FRAMES, &clean).expect("valid configuration");
        assert!(
            recovered.iter().all(|o| !o.is_failed()),
            "depth {depth}: transient faults within the retry budget must recover"
        );
        assert_outcomes_identical(&format!("depth {depth}"), &recovered, &baseline);
        let log = injector.log();
        assert!(
            log.count_for(FaultSite::Build) >= 2,
            "depth {depth}: the frame-2 build fault fails twice before succeeding"
        );
        assert!(log.count_for(FaultSite::Merge) >= 2, "depth {depth}");
    }
}
