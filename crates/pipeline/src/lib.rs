#![forbid(unsafe_code)]

//! Frame-stream pipeline: overlapped scene update, acceleration-structure
//! rebuild, and batched rendering.
//!
//! The paper's workload is not one frame — it is *streams* of frames
//! (animated scenes, orbiting cameras) in which scene generation, BVH
//! construction, and ray-traced rendering each occupy a different part
//! of the machine. This crate keeps all three busy at once:
//!
//! * [`FrameSource`] describes the stream — per-frame scene mutation
//!   (or reuse) and camera paths — with ready-made [`OrbitSource`]
//!   (static scene, orbiting rig) and [`JitterSource`] (animated scene)
//!   scenario generators;
//! * [`run_stream`] drives a three-stage graph — **update** (produce
//!   frame N+2's scene/cameras) → **build** (frame N+1's sharded
//!   structure, reusing the previous one when the scene is unchanged) →
//!   **render** (frame N's `cameras × SMs` fragment fan-out) — over one
//!   scoped worker pool that steals across stages, with bounded
//!   double-buffered stage handoffs;
//! * [`run_sequential`] is the one-frame-at-a-time proof anchor
//!   ([`StreamConfig::depth`] ≤ 1 runs it directly).
//!
//! # Determinism contract
//!
//! Frames come back as [`FrameResult`]s in strict frame order, and every
//! frame's images, cycles, and statistics are **bit-identical** to
//! running the frames sequentially — at any pipeline depth, any thread
//! count, and any shard count. Overlap changes wall-clock time only.
//! The scheduler details and the proof sketch live in [`stream`].
//!
//! # Faults and graceful degradation
//!
//! [`try_run_stream`] is the fallible entry point: it validates inputs
//! up front ([`grtx_fault::GrtxError`]) and, when
//! [`StreamConfig::retry`] enables quarantine, converts stage-task
//! panics — injected by a [`grtx_fault::FaultPlan`] or genuine — into
//! per-frame [`FrameOutcome::Failed`] entries after
//! [`grtx_fault::RetryPolicy`]-bounded retries, while unaffected frames
//! keep flowing. Recovered streams are bit-identical to fault-free
//! runs; the determinism contract extends to failure handling.

pub mod source;
pub mod stream;

pub use grtx_fault::{FaultInjector, FaultPlan, GrtxError, RetryPolicy};
pub use source::{FrameSource, FrameSpec, JitterSource, OrbitSource};
pub use stream::{
    run_sequential, run_stream, try_run_stream, FrameOutcome, FrameResult, StreamConfig,
};
