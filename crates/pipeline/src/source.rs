//! Frame sources: per-frame scene mutation and camera paths.
//!
//! A [`FrameSource`] describes a stream of frames — for each frame
//! index, the scene to render (or `None` when the scene is unchanged
//! from the previous frame, letting the build stage skip the rebuild and
//! reuse the previous acceleration structure) and the cameras to render
//! it with. Sources must be **pure**: `frame(n)` depends only on `n` and
//! the source's construction, never on call order or count. That is
//! what lets the pipeline's update stage run ahead of the frames being
//! rendered, and what makes pipelined output bit-identical to a
//! sequential per-frame run.

use grtx_math::Vec3;
use grtx_scene::{Camera, GaussianScene};
use std::sync::Arc;

/// One frame's worth of input to the pipeline.
#[derive(Debug, Clone)]
pub struct FrameSpec {
    /// The scene this frame renders; `None` means "unchanged since the
    /// previous frame" — the build stage then reuses the previous
    /// frame's acceleration structure instead of rebuilding. Frame 0
    /// must always supply a scene.
    pub scene: Option<Arc<GaussianScene>>,
    /// The cameras this frame renders, in view order. May be empty (the
    /// frame produces no reports).
    pub cameras: Vec<Camera>,
}

/// A deterministic stream of frames.
///
/// `Sync` because the pipeline's update stage calls `frame` from worker
/// threads (always in frame order, exactly once per rendered frame).
pub trait FrameSource: Sync {
    /// Produces frame `index`'s scene and cameras.
    ///
    /// Must be deterministic in `index` alone.
    fn frame(&self, index: usize) -> FrameSpec;
}

/// A static scene orbited by the camera rig: frame 0 supplies the scene,
/// every later frame reuses it (`scene: None`), so the pipeline's build
/// stage rebuilds nothing after the first frame.
///
/// Frame `n` renders `views` cameras evenly spaced on the base camera's
/// orbit (same radius and height, looking at the scene center), with the
/// whole rig advanced by `n × step` radians. Frame 0 view 0 is the base
/// camera itself, so a one-frame stream reproduces a standalone orbit
/// sweep exactly.
#[derive(Debug, Clone)]
pub struct OrbitSource {
    scene: Arc<GaussianScene>,
    base: Camera,
    views: usize,
    step: f32,
}

impl OrbitSource {
    /// Creates an orbit stream around `base`'s eye position.
    pub fn new(scene: Arc<GaussianScene>, base: Camera, views: usize, step: f32) -> Self {
        Self {
            scene,
            base,
            views,
            step,
        }
    }

    /// Cameras per frame.
    pub fn views(&self) -> usize {
        self.views
    }
}

impl FrameSource for OrbitSource {
    fn frame(&self, index: usize) -> FrameSpec {
        FrameSpec {
            scene: (index == 0).then(|| self.scene.clone()),
            // The shared orbit rig ([`Camera::orbit`]): at phase 0 this
            // is exactly the batched `orbit_cameras` sweep.
            cameras: self.base.orbit(self.views, self.step * index as f32),
        }
    }
}

/// An animated scene: every `period` frames the Gaussian means jitter to
/// a new deterministic position (epoch `n / period`), forcing the build
/// stage to rebuild; the frames in between reuse the previous structure.
///
/// Epoch 0 is the unjittered base scene. Cameras are fixed across the
/// stream. `period = 1` (the default) mutates the scene every frame —
/// the fully build-bound workload.
#[derive(Debug, Clone)]
pub struct JitterSource {
    base: Arc<GaussianScene>,
    cameras: Vec<Camera>,
    amplitude: f32,
    period: usize,
}

impl JitterSource {
    /// Creates a stream that jitters Gaussian means by up to
    /// `amplitude` world units every frame.
    pub fn new(base: Arc<GaussianScene>, cameras: Vec<Camera>, amplitude: f32) -> Self {
        Self::with_period(base, cameras, amplitude, 1)
    }

    /// Like [`Self::new`], but the scene only changes every `period`
    /// frames (`period = 3`: frames 0–2 share epoch 0, frames 3–5 epoch
    /// 1, …), interleaving rebuild frames with reuse frames.
    pub fn with_period(
        base: Arc<GaussianScene>,
        cameras: Vec<Camera>,
        amplitude: f32,
        period: usize,
    ) -> Self {
        Self {
            base,
            cameras,
            amplitude,
            period: period.max(1),
        }
    }

    /// The deterministic scene of epoch `epoch` (epoch 0 = the base).
    pub fn epoch_scene(&self, epoch: usize) -> Arc<GaussianScene> {
        if epoch == 0 {
            return self.base.clone();
        }
        let gaussians = self
            .base
            .gaussians()
            .iter()
            .enumerate()
            .map(|(i, g)| {
                let mut g = g.clone();
                g.mean += jitter_offset(epoch as u64, i as u64) * self.amplitude;
                g
            })
            .collect();
        Arc::new(GaussianScene::with_sigma_bound(
            gaussians,
            self.base.sigma_bound(),
        ))
    }
}

impl FrameSource for JitterSource {
    fn frame(&self, index: usize) -> FrameSpec {
        let scene = index
            .is_multiple_of(self.period)
            .then(|| self.epoch_scene(index / self.period));
        FrameSpec {
            scene,
            cameras: self.cameras.clone(),
        }
    }
}

/// A deterministic offset in `[-1, 1]³` from `(epoch, gaussian)` via
/// SplitMix64 — no RNG state, so any frame can be produced on any
/// worker.
fn jitter_offset(epoch: u64, index: u64) -> Vec3 {
    let mut next = {
        let mut state = epoch.wrapping_mul(0x9e37_79b9_7f4a_7c15) ^ index;
        move || {
            state = state.wrapping_add(0x9e37_79b9_7f4a_7c15);
            let mut z = state;
            z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
            z ^ (z >> 31)
        }
    };
    let unit = |bits: u64| (bits >> 11) as f32 / (1u64 << 53) as f32 * 2.0 - 1.0;
    Vec3::new(unit(next()), unit(next()), unit(next()))
}

#[cfg(test)]
mod tests {
    use super::*;
    use grtx_scene::{CameraModel, Gaussian};

    fn tiny_scene() -> Arc<GaussianScene> {
        Arc::new(
            (0..40)
                .map(|i| {
                    Gaussian::isotropic(
                        Vec3::new((i % 5) as f32, (i / 5) as f32, 0.5 * i as f32),
                        0.3,
                        0.7,
                        Vec3::ONE,
                    )
                })
                .collect(),
        )
    }

    fn base_camera() -> Camera {
        Camera::look_at(
            16,
            16,
            CameraModel::Pinhole { fov_y: 0.9 },
            Vec3::new(4.0, 2.0, 9.0),
            Vec3::ZERO,
            Vec3::Y,
        )
    }

    #[test]
    fn orbit_supplies_the_scene_exactly_once() {
        let source = OrbitSource::new(tiny_scene(), base_camera(), 3, 0.2);
        assert!(source.frame(0).scene.is_some());
        for n in 1..5 {
            assert!(source.frame(n).scene.is_none(), "frame {n} must reuse");
            assert_eq!(source.frame(n).cameras.len(), 3);
        }
    }

    #[test]
    fn orbit_frame_zero_starts_at_the_base_camera() {
        let base = base_camera();
        let source = OrbitSource::new(tiny_scene(), base.clone(), 2, 0.5);
        assert_eq!(source.frame(0).cameras[0], base);
        // The rig advances: the same view differs on the next frame.
        assert_ne!(source.frame(1).cameras[0], base);
        // Pure: repeated calls yield identical cameras.
        assert_eq!(source.frame(3).cameras, source.frame(3).cameras);
    }

    #[test]
    fn jitter_epochs_are_deterministic_and_distinct() {
        let source = JitterSource::new(tiny_scene(), vec![base_camera()], 0.1);
        let a = source.epoch_scene(2);
        let b = source.epoch_scene(2);
        assert_eq!(a.gaussians(), b.gaussians(), "epochs must be pure");
        let c = source.epoch_scene(3);
        assert_ne!(a.gaussians(), c.gaussians(), "epochs must differ");
        assert_eq!(a.len(), source.epoch_scene(0).len());
    }

    #[test]
    fn jitter_period_interleaves_rebuilds_and_reuse() {
        let source = JitterSource::with_period(tiny_scene(), vec![base_camera()], 0.1, 3);
        let changed: Vec<bool> = (0..7).map(|n| source.frame(n).scene.is_some()).collect();
        assert_eq!(
            changed,
            [true, false, false, true, false, false, true],
            "scene changes exactly at epoch boundaries"
        );
    }

    #[test]
    fn jitter_epoch_zero_is_the_base_scene() {
        let base = tiny_scene();
        let source = JitterSource::new(base.clone(), vec![base_camera()], 0.5);
        assert!(Arc::ptr_eq(&source.epoch_scene(0), &base));
    }
}
