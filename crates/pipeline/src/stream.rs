//! The frame-stream scheduler: a three-stage graph (update → build →
//! render) driven by one scoped worker pool.
//!
//! # Stage graph
//!
//! ```text
//!  FrameSource ──► update ──► build ──► render ──► Vec<FrameResult>
//!                 (N + 2)    (N + 1)     (N)        (frame order)
//! ```
//!
//! * **update** produces a frame's scene and cameras from the
//!   [`FrameSource`] and plans its raygen launches
//!   ([`RenderEngine::plan_launch`] — pure, scene-independent). Updates
//!   run in frame order, one at a time.
//! * **build** constructs the frame's acceleration structure — sharded
//!   in parallel through the `grtx-shard` builder when
//!   [`StreamConfig::shards`] > 0 — or, when the source reports the
//!   scene unchanged, reuses the previous frame's structure without
//!   rebuilding. Builds run in frame order, one at a time.
//! * **render** fans the frame into `cameras × SMs` closed fragments
//!   ([`RenderEngine::simulate_fragment`]) and merges them per camera in
//!   fixed SM order ([`RenderEngine::merge_launch`]).
//!
//! Stages are connected by bounded, double-buffered handoffs: `update(n)`
//! starts only when `n ≤ builds_done + 2` (one spec feeding the build in
//! progress, two buffered behind it), and `build(n)` only when
//! `n ≤ merged + 1` (the structure being rendered plus one queued).
//! A frame's slot releases its scene, structure, and launches as soon as
//! no successor can still reuse them, so a long stream holds a bounded
//! working set — not every frame to the end. [`StreamConfig::depth`]
//! additionally caps the total frames in flight — depth 1 degenerates to
//! the sequential per-frame path ([`run_sequential`]), depth 3 reaches
//! the full update(N+2) ∥ build(N+1) ∥ render(N) overlap, and the
//! handoff bounds cap useful depth at 5 regardless.
//!
//! # One pool, work stealing across stages
//!
//! All stage work executes on a single `std::thread::scope` worker pool.
//! Workers claim whatever is ready, preferring downstream work (merge,
//! then fragments, then build, then update) on the oldest frame first —
//! so a worker that runs out of render fragments for frame N naturally
//! steals the build of frame N+1 or the update of frame N+2, and the
//! machine stays busy across stage boundaries.
//!
//! # Determinism
//!
//! Every task is a pure function of its frame's inputs, results land in
//! slots keyed by frame (and fragment) index, and merges follow the
//! engine's fixed `(camera, SM)` order — so images, cycles, and every
//! statistic are **bit-identical** to running the frames sequentially
//! ([`run_sequential`], and therefore to per-frame
//! `RenderEngine::render_batch` calls) at any thread count and any
//! pipeline depth. Only wall-clock time changes. Build timings inside
//! [`ShardingSummary`] are wall-clock measurements and are exempt.

use crate::source::FrameSource;
use grtx_bvh::{AccelStruct, BoundingPrimitive, BvhSizeReport, LayoutConfig};
use grtx_fault::{FaultInjector, FaultSite, GrtxError, InjectedFault, RetryPolicy};
use grtx_prof::Profiler;
use grtx_render::engine::{CameraLaunch, SmOutcome};
use grtx_render::renderer::{RenderConfig, RenderReport};
use grtx_render::RenderEngine;
use grtx_scene::{Camera, EffectObjects, GaussianScene};
use grtx_shard::{ShardedAccel, ShardingSummary};
use grtx_sim::GpuConfig;
use grtx_telemetry::Telemetry;
use std::sync::{Arc, Condvar, Mutex};

/// Everything the pipeline needs to turn a [`FrameSource`] into frames:
/// the acceleration-structure recipe, the render configuration, and the
/// pipeline shape (depth, threads, shards).
#[derive(Debug, Clone)]
pub struct StreamConfig {
    /// Maximum frames in flight. `0`/`1` runs the sequential per-frame
    /// path; `2` overlaps rendering with the next frame's update+build;
    /// `3` (the default) reaches the full three-stage overlap. Depths
    /// above 5 change nothing — the bounded stage handoffs (update ≤ 2
    /// frames past completed builds, build ≤ 1 frame past the oldest
    /// unmerged frame) admit at most five frames in flight.
    pub depth: usize,
    /// Worker threads for the pool (`0` = all available cores). Thread
    /// count never changes results, only wall-clock time.
    pub threads: usize,
    /// Spatial shards for acceleration-structure builds (`0` = the
    /// serial unsharded build). Shard count never changes results.
    pub shards: usize,
    /// Bounding proxy for Gaussians.
    pub primitive: BoundingPrimitive,
    /// Two-level (TLAS + shared BLAS) vs monolithic organization.
    pub two_level: bool,
    /// Structure byte layout.
    pub layout: LayoutConfig,
    /// Render configuration (trace params, cycle charging, background).
    pub render: RenderConfig,
    /// Simulated GPU configuration.
    pub gpu: GpuConfig,
    /// Effect objects applied to every frame's cameras, if any.
    pub effects: Option<EffectObjects>,
    /// Telemetry handle. The default (disabled) handle records nothing;
    /// an enabled one collects per-worker task spans, stage-handoff
    /// histograms (frame latency, queue dwell, handoff depth), and
    /// scheduler counters — without changing any frame result.
    pub telemetry: Telemetry,
    /// Simulated-cycle profiler handle. The default (disabled) handle
    /// records nothing; an enabled one collects per-(launch, SM)
    /// hardware counters and warp timelines on the virtual clock, keyed
    /// `(frame << 32) | camera` — byte-identical at every depth, thread,
    /// and shard count, and invisible in every frame result.
    pub profiler: Profiler,
    /// Fault-injection handle. The default (disabled) handle never
    /// fires; an enabled one panics stage tasks per its seeded
    /// [`grtx_fault::FaultPlan`], keyed by the same
    /// `(frame << 32) | camera` launch keys the profiler uses — so
    /// injection is schedule-independent and the recovered stream is
    /// bit-identical to a fault-free run.
    pub faults: FaultInjector,
    /// How the pipeline responds to a panicking stage task. The default
    /// (one attempt, no quarantine) is the legacy behavior: the first
    /// panic poisons the pipeline and re-raises on the caller. A
    /// [`RetryPolicy::resilient`] policy retries deterministically and
    /// quarantines frames that exhaust their attempts as
    /// [`FrameOutcome::Failed`] while later frames keep flowing.
    pub retry: RetryPolicy,
}

impl Default for StreamConfig {
    /// GRTX-SW structure (TLAS + shared 20-triangle BLAS), default
    /// render/GPU configuration, full three-stage overlap on all cores.
    fn default() -> Self {
        Self {
            depth: 3,
            threads: 0,
            shards: 0,
            primitive: BoundingPrimitive::Mesh20,
            two_level: true,
            layout: LayoutConfig::default(),
            render: RenderConfig::default(),
            gpu: GpuConfig::default(),
            effects: None,
            telemetry: Telemetry::disabled(),
            profiler: Profiler::disabled(),
            faults: FaultInjector::disabled(),
            retry: RetryPolicy::default(),
        }
    }
}

impl StreamConfig {
    /// Whether this configuration needs the fault/retry machinery at
    /// all. When it doesn't (the default), the sequential path runs the
    /// exact legacy code with zero catch points.
    fn wants_fault_machinery(&self) -> bool {
        self.faults.is_enabled() || self.retry.attempts() > 1 || self.retry.quarantine
    }
}

/// One rendered frame, in frame order, with everything the sequential
/// path would have produced.
#[derive(Debug, Clone)]
pub struct FrameResult {
    /// Frame index in the stream.
    pub index: usize,
    /// Gaussians in this frame's scene.
    pub gaussians: usize,
    /// Whether this frame rebuilt the acceleration structure (`false`
    /// when the source reported the scene unchanged and the previous
    /// structure was reused).
    pub rebuilt: bool,
    /// One report per camera, in view order — each bit-identical to a
    /// standalone render of that camera against this frame's scene.
    pub reports: Vec<RenderReport>,
    /// Acceleration-structure byte accounting for this frame.
    pub size: BvhSizeReport,
    /// Structure height.
    pub height: u32,
    /// Sharded-build accounting when [`StreamConfig::shards`] > 0.
    /// Reused (cloned) from the building frame on reuse frames. Shard
    /// sizes and the directory are deterministic; the summary's
    /// build-phase timings and worker count are wall-clock/scheduling
    /// metadata (overlapped builds size themselves to the pool's spare
    /// capacity) and are exempt from the determinism contract.
    pub sharding: Option<ShardingSummary>,
}

/// One frame's outcome under a quarantining [`RetryPolicy`]: rendered,
/// or failed after exhausting its retries — in frame order either way.
#[derive(Debug, Clone)]
pub enum FrameOutcome {
    /// The frame rendered completely; bit-identical to a fault-free
    /// run of the same stream.
    Rendered(FrameResult),
    /// The frame exhausted its retries (or depended on a frame that
    /// did) and was quarantined; later frames keep flowing.
    Failed {
        /// Frame index in the stream.
        index: usize,
        /// Why the frame was quarantined.
        error: GrtxError,
    },
}

impl FrameOutcome {
    /// Frame index in the stream.
    pub fn index(&self) -> usize {
        match self {
            FrameOutcome::Rendered(result) => result.index,
            FrameOutcome::Failed { index, .. } => *index,
        }
    }

    /// Whether the frame was quarantined.
    pub fn is_failed(&self) -> bool {
        matches!(self, FrameOutcome::Failed { .. })
    }

    /// The quarantine error, if the frame failed.
    pub fn error(&self) -> Option<&GrtxError> {
        match self {
            FrameOutcome::Rendered(_) => None,
            FrameOutcome::Failed { error, .. } => Some(error),
        }
    }

    /// The rendered result, if the frame succeeded.
    pub fn rendered(&self) -> Option<&FrameResult> {
        match self {
            FrameOutcome::Rendered(result) => Some(result),
            FrameOutcome::Failed { .. } => None,
        }
    }

    /// Unwraps into the rendered result or the quarantine error.
    pub fn into_rendered(self) -> Result<FrameResult, GrtxError> {
        match self {
            FrameOutcome::Rendered(result) => Ok(result),
            FrameOutcome::Failed { error, .. } => Err(error),
        }
    }
}

/// A built acceleration structure plus the accounting a frame reports.
struct Built {
    accel: Arc<AccelStruct>,
    size: BvhSizeReport,
    height: u32,
    sharding: Option<ShardingSummary>,
}

/// Builds a frame's structure per the config — sharded in parallel on
/// `build_threads` workers when `shards` > 0.
fn build_structure(scene: &GaussianScene, config: &StreamConfig, build_threads: usize) -> Built {
    if config.shards > 0 {
        let sharded = ShardedAccel::build_traced(
            scene,
            config.primitive,
            config.two_level,
            &config.layout,
            config.shards,
            build_threads,
            &config.telemetry,
        );
        let sharding = Some(sharded.summary());
        let accel = sharded.into_accel();
        Built {
            size: *accel.size_report(),
            height: accel.height(),
            accel: Arc::new(accel),
            sharding,
        }
    } else {
        let accel = AccelStruct::build(scene, config.primitive, config.two_level, &config.layout);
        Built {
            size: *accel.size_report(),
            height: accel.height(),
            accel: Arc::new(accel),
            sharding: None,
        }
    }
}

/// Runs `frames` frames of `source` through the pipeline, returning
/// results in strict frame order.
///
/// Every frame's images, cycles, and statistics are **bit-identical** to
/// [`run_sequential`] — and therefore to building and batch-rendering
/// each frame one at a time — at any [`StreamConfig::depth`],
/// [`StreamConfig::threads`], and [`StreamConfig::shards`].
///
/// # Panics
///
/// Panics if frame 0's [`FrameSpec`](crate::FrameSpec) carries no scene,
/// if the source/build/render work itself panics past the retry budget
/// (worker panics are forwarded to the caller under the default
/// [`RetryPolicy`]), if the configuration is invalid, or if a
/// quarantining policy produced a `Failed` frame — callers that expect
/// failures should use [`try_run_stream`], which surfaces them as
/// [`FrameOutcome::Failed`] instead.
pub fn run_stream(
    source: &dyn FrameSource,
    frames: usize,
    config: &StreamConfig,
) -> Vec<FrameResult> {
    try_run_stream(source, frames, config)
        .unwrap_or_else(|e| panic!("{e}"))
        .into_iter()
        .map(|outcome| outcome.into_rendered().unwrap_or_else(|e| panic!("{e}")))
        .collect()
}

/// Fallible [`run_stream`]: validates the configuration up front
/// (returning [`GrtxError::InvalidConfig`] for degenerate GPU shapes)
/// and, under a quarantining [`RetryPolicy`], yields per-frame
/// [`FrameOutcome`]s — failed frames surface in order as
/// [`FrameOutcome::Failed`] while later frames keep rendering.
///
/// Zero-fault runs take exactly the legacy code paths and are
/// bit-identical to [`run_stream`] today; recovered transient-fault
/// runs are bit-identical to fault-free runs at any depth, thread
/// count, and shard count.
///
/// # Panics
///
/// Under the default non-quarantining policy, a stage panic that
/// exhausts [`RetryPolicy::max_attempts`] still poisons the pipeline
/// and re-raises the original payload — preserving the legacy contract
/// (and the panic payload) for callers that want panics.
pub fn try_run_stream(
    source: &dyn FrameSource,
    frames: usize,
    config: &StreamConfig,
) -> Result<Vec<FrameOutcome>, GrtxError> {
    grtx_render::validate_gpu(&config.gpu)?;
    if frames == 0 {
        return Ok(Vec::new());
    }
    if config.depth <= 1 {
        if !config.wants_fault_machinery() {
            return Ok(run_sequential(source, frames, config)
                .into_iter()
                .map(FrameOutcome::Rendered)
                .collect());
        }
        return Ok(resilient_sequential(source, frames, config));
    }
    Ok(Pipeline::new(source, frames, config).run())
}

/// The sequential per-frame path: update, build, render, one frame at a
/// time — the proof anchor the pipelined scheduler is tested against
/// (and the `depth ≤ 1` behavior of [`run_stream`]).
///
/// The unchanged-scene rebuild skip applies here too, so reuse frames
/// cost no build; skipping is invisible in the results because the
/// serial rebuild is deterministic.
pub fn run_sequential(
    source: &dyn FrameSource,
    frames: usize,
    config: &StreamConfig,
) -> Vec<FrameResult> {
    let engine = RenderEngine::new(config.gpu.clone())
        .with_threads(config.threads)
        .with_telemetry(config.telemetry.clone())
        .with_profiler(config.profiler.clone());
    let telemetry = &config.telemetry;
    let mut recorder = telemetry.recorder("stream-sequential");
    let mut results = Vec::with_capacity(frames);
    let mut scene: Option<Arc<GaussianScene>> = None;
    let mut built: Option<Arc<Built>> = None;
    for index in 0..frames {
        let frame_start = telemetry.now_us();
        let (rebuilt, reports) = recorder.scope("pipeline.frame", index as u64, |rec| {
            let spec = rec.scope("pipeline.update", index as u64, |_| source.frame(index));
            let rebuilt = spec.scene.is_some();
            if let Some(s) = spec.scene {
                scene = Some(s);
            }
            let scene = scene.as_ref().expect("frame 0 must supply a scene");
            if rebuilt || built.is_none() {
                telemetry.counter_add("pipeline.rebuilds", 1);
                built = Some(Arc::new(rec.scope("pipeline.build", index as u64, |_| {
                    build_structure(scene, config, config.threads)
                })));
            } else {
                telemetry.counter_add("pipeline.rebuild_skips", 1);
            }
            let built = built.as_ref().expect("structure built above");
            let reports = rec.scope("pipeline.render", index as u64, |_| {
                // The same `(frame << 32) | camera` profile keys as the
                // task-graph path, so profiles are depth-independent.
                engine.render_batch_keyed(
                    (index as u64) << 32,
                    &built.accel,
                    scene,
                    &spec.cameras,
                    config.effects.as_ref(),
                    &config.render,
                )
            });
            (rebuilt, reports)
        });
        telemetry.record_value(
            "pipeline.frame_latency_us",
            telemetry.now_us().saturating_sub(frame_start),
        );
        telemetry.counter_add("pipeline.frames", 1);
        let scene = scene.as_ref().expect("frame 0 must supply a scene");
        let built = built.as_ref().expect("structure built above");
        results.push(FrameResult {
            index,
            gaussians: scene.len(),
            rebuilt,
            reports,
            size: built.size,
            height: built.height,
            sharding: built.sharding.clone(),
        });
    }
    results
}

/// Outcome of one stage task run under the retry policy.
enum StageRun<T> {
    /// The body completed (possibly after retries).
    Done(T),
    /// Every permitted attempt panicked; quarantine converted the last
    /// payload into a typed error (which records the attempt count).
    Exhausted { error: GrtxError },
}

/// Builds the `StageFailed` error for an exhausted stage task. Injected
/// payloads attribute to their true site (a build task probes both the
/// partition and build sites) and foreign payloads contribute their
/// message when they carry one.
fn stage_failed(
    stage: FaultSite,
    frame: usize,
    attempts: u32,
    payload: &(dyn std::any::Any + Send),
) -> GrtxError {
    let (stage, reason) = if let Some(fault) = payload.downcast_ref::<InjectedFault>() {
        (fault.site, fault.to_string())
    } else if let Some(message) = payload.downcast_ref::<&str>() {
        (stage, (*message).to_string())
    } else if let Some(message) = payload.downcast_ref::<String>() {
        (stage, message.clone())
    } else {
        (stage, "stage task panicked".to_string())
    };
    GrtxError::StageFailed {
        stage,
        frame: frame as u64,
        attempts,
        reason,
    }
}

/// Runs one stage body under the retry policy: catches panics, counts
/// attempts (passing the 0-based attempt number to the body so fault
/// probes see it), and — under quarantine — converts exhaustion into a
/// typed error. Non-quarantine exhaustion re-raises the original
/// payload, preserving the legacy panic contract.
fn run_stage<T>(
    config: &StreamConfig,
    recorder: &mut grtx_telemetry::SpanRecorder,
    stage: FaultSite,
    frame: usize,
    body: &mut dyn FnMut(u32) -> T,
) -> StageRun<T> {
    let telemetry = &config.telemetry;
    let mut attempt = 0u32;
    loop {
        match std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| body(attempt))) {
            Ok(value) => return StageRun::Done(value),
            Err(payload) => {
                if payload.downcast_ref::<InjectedFault>().is_some() {
                    telemetry.counter_add("fault.injected", 1);
                }
                attempt += 1;
                if attempt < config.retry.attempts() {
                    telemetry.counter_add("fault.retries", 1);
                    recorder.scope("pipeline.retry", frame as u64, |_| ());
                    continue;
                }
                if config.retry.quarantine {
                    return StageRun::Exhausted {
                        error: stage_failed(stage, frame, attempt, payload.as_ref()),
                    };
                }
                std::panic::resume_unwind(payload);
            }
        }
    }
}

/// The fault-aware sequential path (`depth ≤ 1` with fault injection,
/// retries, or quarantine enabled): the same per-frame update → build →
/// fragment → merge structure as the task graph, probing the same
/// `(site, key, unit, attempt)` points — so its [`FaultLog`] and its
/// recovered results are bit-identical to the pipelined scheduler's at
/// any depth.
///
/// [`FaultLog`]: grtx_fault::FaultLog
fn resilient_sequential(
    source: &dyn FrameSource,
    frames: usize,
    config: &StreamConfig,
) -> Vec<FrameOutcome> {
    let engine = RenderEngine::new(config.gpu.clone())
        .with_threads(config.threads)
        .with_telemetry(config.telemetry.clone())
        .with_profiler(config.profiler.clone());
    let sms = engine.fragments_per_launch();
    let telemetry = &config.telemetry;
    let mut recorder = telemetry.recorder("stream-sequential");
    let mut results: Vec<FrameOutcome> = Vec::with_capacity(frames);
    let mut scene: Option<Arc<GaussianScene>> = None;
    let mut built: Option<Arc<Built>> = None;
    // Root of the most recent scene-chain break: set when an update
    // fails, cleared when a later frame supplies a fresh scene.
    let mut broken_dependency: Option<usize> = None;

    let fail = |results: &mut Vec<FrameOutcome>, index: usize, error: GrtxError| {
        telemetry.counter_add("fault.frames_failed", 1);
        results.push(FrameOutcome::Failed { index, error });
    };

    for index in 0..frames {
        let key = (index as u64) << 32;
        let frame_start = telemetry.now_us();

        // Update: produce the spec and plan launches. Not an injection
        // site, but foreign panics quarantine like any other stage.
        let update = run_stage(config, &mut recorder, FaultSite::Update, index, &mut |_| {
            let spec = source.frame(index);
            assert!(
                spec.scene.is_some() || index > 0,
                "frame 0 must supply a scene"
            );
            let launches: Vec<CameraLaunch> = spec
                .cameras
                .iter()
                .map(|camera| engine.plan_launch(camera, config.effects.as_ref()))
                .collect();
            (spec, launches)
        });
        let (spec, launches) = match update {
            StageRun::Done(value) => value,
            StageRun::Exhausted { error, .. } => {
                // The frame never resolved a scene; successors that rely
                // on an unchanged scene inherit the break until a frame
                // supplies a fresh one.
                scene = None;
                built = None;
                broken_dependency = broken_dependency.or(Some(index));
                fail(&mut results, index, error);
                continue;
            }
        };
        let rebuilt = spec.scene.is_some();
        if let Some(fresh) = spec.scene {
            scene = Some(fresh);
            broken_dependency = None;
        }
        let Some(frame_scene) = scene.clone() else {
            let dependency = broken_dependency.unwrap_or(0) as u64;
            fail(
                &mut results,
                index,
                GrtxError::DependencyFailed {
                    frame: index as u64,
                    dependency,
                },
            );
            continue;
        };

        // Build (or reuse). Probes the partition and build sites — on
        // reuse frames too, matching the task-graph build task.
        let reuse = if rebuilt { None } else { built.clone() };
        let build = run_stage(
            config,
            &mut recorder,
            FaultSite::Build,
            index,
            &mut |attempt| {
                config.faults.probe(FaultSite::Partition, key, 0, attempt);
                config.faults.probe(FaultSite::Build, key, 0, attempt);
                match &reuse {
                    Some(structure) => {
                        telemetry.counter_add("pipeline.rebuild_skips", 1);
                        structure.clone()
                    }
                    None => {
                        telemetry.counter_add("pipeline.rebuilds", 1);
                        Arc::new(build_structure(&frame_scene, config, config.threads))
                    }
                }
            },
        );
        let frame_built = match build {
            StageRun::Done(structure) => structure,
            StageRun::Exhausted { error, .. } => {
                // A failed build invalidates only its own frame; the
                // next reuse frame rebuilds fresh from its scene.
                built = None;
                fail(&mut results, index, error);
                continue;
            }
        };
        built = Some(frame_built.clone());

        // Fragments: every fragment runs to completion or exhaustion —
        // even after a sibling exhausted — so the set of probed
        // `(site, key, unit, attempt)` points is schedule-independent.
        // The lowest exhausted fragment's error is the frame's error.
        let fragment_count = spec.cameras.len() * sms;
        let mut outcomes: Vec<Option<SmOutcome>> = (0..fragment_count).map(|_| None).collect();
        let mut fragment_error: Option<GrtxError> = None;
        for (fragment, slot) in outcomes.iter_mut().enumerate() {
            let camera = fragment / sms;
            let sm = fragment % sms;
            let run = run_stage(
                config,
                &mut recorder,
                FaultSite::Fragment,
                index,
                &mut |attempt| {
                    config.faults.probe(
                        FaultSite::Fragment,
                        key | camera as u64,
                        sm as u64,
                        attempt,
                    );
                    engine.simulate_fragment(
                        &frame_built.accel,
                        &frame_scene,
                        &config.render,
                        &launches[camera],
                        sm,
                    )
                },
            );
            match run {
                StageRun::Done(outcome) => *slot = Some(outcome),
                StageRun::Exhausted { error, .. } => {
                    fragment_error.get_or_insert(error);
                }
            }
        }
        if let Some(error) = fragment_error {
            fail(&mut results, index, error);
            continue;
        }

        // Merge. The probe fires before any outcome is consumed, so an
        // injected merge fault retries against intact inputs; a foreign
        // panic mid-merge leaves them consumed and the retry exhausts
        // on the "inputs consumed" panic instead (the task graph fails
        // such frames immediately for the same reason).
        let merge = run_stage(
            config,
            &mut recorder,
            FaultSite::Merge,
            index,
            &mut |attempt| {
                config.faults.probe(FaultSite::Merge, key, 0, attempt);
                spec.cameras
                    .iter()
                    .enumerate()
                    .map(|(cam, camera)| {
                        let sm_outcomes: Vec<SmOutcome> = outcomes[cam * sms..(cam + 1) * sms]
                            .iter_mut()
                            .map(|o| o.take().expect("merge inputs consumed by a failed attempt"))
                            .collect();
                        engine.merge_launch_keyed(
                            key | cam as u64,
                            &launches[cam],
                            camera,
                            &config.render,
                            sm_outcomes,
                        )
                    })
                    .collect::<Vec<RenderReport>>()
            },
        );
        match merge {
            StageRun::Done(reports) => {
                telemetry.record_value(
                    "pipeline.frame_latency_us",
                    telemetry.now_us().saturating_sub(frame_start),
                );
                telemetry.counter_add("pipeline.frames", 1);
                results.push(FrameOutcome::Rendered(FrameResult {
                    index,
                    gaussians: frame_scene.len(),
                    rebuilt,
                    reports,
                    size: frame_built.size,
                    height: frame_built.height,
                    sharding: frame_built.sharding.clone(),
                }));
            }
            StageRun::Exhausted { error, .. } => {
                fail(&mut results, index, error);
            }
        }
    }
    results
}

/// Per-frame pipeline slot, filled stage by stage.
#[derive(Default)]
struct Slot {
    /// After update: this frame's cameras.
    cameras: Vec<Camera>,
    /// After update: the frame's resolved scene (the previous frame's
    /// when the source reported it unchanged).
    scene: Option<Arc<GaussianScene>>,
    /// Whether the source supplied a fresh scene for this frame.
    scene_changed: bool,
    /// After update: planned launches, one per camera.
    launches: Option<Arc<Vec<CameraLaunch>>>,
    /// After build: the structure to render against.
    built: Option<Arc<Built>>,
    /// Fragment outcomes, camera-major (`camera × SMs + sm`).
    outcomes: Vec<Option<SmOutcome>>,
    /// Fragments handed to workers so far.
    issued: usize,
    /// Fragments completed so far.
    fragments_done: usize,
    /// Whether the merge task was claimed.
    merge_claimed: bool,
    /// Whether the merge completed (or the frame was sealed as failed).
    merged: bool,
    /// Attempts already made per stage task (0 until a task panics).
    update_attempts: u32,
    build_attempts: u32,
    merge_attempts: u32,
    /// Per-fragment attempt counters, sized with `outcomes`.
    fragment_attempts: Vec<u32>,
    /// Fragments requeued for retry after a caught panic.
    requeued: Vec<usize>,
    /// Fragments that exhausted their attempts (settled without an
    /// outcome).
    fragments_exhausted: usize,
    /// The merge task consumed its inputs; a panic after this point
    /// cannot retry (the outcomes are gone).
    merge_inputs_taken: bool,
    /// Quarantine error plus the canonical (lowest) failing fragment
    /// index, once the frame has failed. Failed frames keep draining
    /// their in-flight fragments — so the probe set stays
    /// schedule-independent — and seal once everything settles.
    failed: Option<(GrtxError, usize)>,
    /// Telemetry timestamps (µs since the handle's epoch; all `0` with
    /// telemetry disabled): when the frame's update was claimed, when it
    /// completed, and when the build completed — the anchors for the
    /// frame-latency and queue-dwell histograms.
    t_update_claim: u64,
    t_update_done: u64,
    t_build_done: u64,
}

/// A claimed unit of pool work.
enum Task {
    /// Produce frame `n`'s spec and plan its launches.
    Update(usize),
    /// Build (or reuse) frame `n`'s structure. Carries the resolved
    /// scene and, when the scene is unchanged, the structure to reuse.
    Build {
        frame: usize,
        scene: Arc<GaussianScene>,
        reuse: Option<Arc<Built>>,
        /// Worker threads for the nested sharded build: the pool's spare
        /// capacity at claim time, so an overlapped build soaks up idle
        /// cores instead of oversubscribing busy ones.
        build_threads: usize,
        /// 0-based attempt number, for fault probes.
        attempt: u32,
    },
    /// Simulate fragment `fragment` (camera-major) of frame `frame`.
    Fragment {
        frame: usize,
        fragment: usize,
        scene: Arc<GaussianScene>,
        built: Arc<Built>,
        launches: Arc<Vec<CameraLaunch>>,
        /// 0-based attempt number, for fault probes.
        attempt: u32,
    },
    /// Merge frame `frame`'s fragments into its result. The cameras and
    /// outcomes stay in the slot until the task's fault probe has
    /// passed, so an injected merge fault retries against intact
    /// inputs.
    Merge {
        frame: usize,
        scene: Arc<GaussianScene>,
        built: Arc<Built>,
        launches: Arc<Vec<CameraLaunch>>,
        scene_changed: bool,
        /// 0-based attempt number, for fault probes.
        attempt: u32,
    },
}

/// Identity of a claimed task, captured before execution so a caught
/// panic can be attributed, retried, or quarantined.
#[derive(Clone, Copy)]
struct TaskId {
    stage: FaultSite,
    frame: usize,
    /// Fragment index for fragment tasks.
    fragment: Option<usize>,
}

/// Shared scheduler state, guarded by one mutex.
struct State {
    slots: Vec<Slot>,
    results: Vec<Option<FrameOutcome>>,
    /// Next frame index the update stage will claim / has completed.
    update_claimed: usize,
    update_done: usize,
    /// Next frame index the build stage will claim / has completed.
    build_claimed: usize,
    build_done: usize,
    /// Frames `0..merged_prefix` are fully rendered and merged.
    merged_prefix: usize,
    /// Frames `0..released_prefix` have dropped their slot's scene,
    /// structure, and launches (no successor can still reuse them).
    released_prefix: usize,
    /// Tasks currently executing on workers (claimed, not yet
    /// completed) — the pool's busy count, used to size nested builds.
    running: usize,
    /// A worker panicked; everyone else drains out.
    poisoned: bool,
}

struct Pipeline<'a> {
    source: &'a dyn FrameSource,
    frames: usize,
    config: &'a StreamConfig,
    engine: RenderEngine,
    sms: usize,
    depth: usize,
    workers: usize,
    state: Mutex<State>,
    ready: Condvar,
}

impl<'a> Pipeline<'a> {
    /// Locks the scheduler state. Poisoning is survivable by design:
    /// critical sections only mutate state as their final step, and a
    /// panicking task marks the whole pipeline poisoned anyway — the
    /// first panic is what reaches the caller, not a `PoisonError`.
    fn lock_state(&self) -> std::sync::MutexGuard<'_, State> {
        self.state
            .lock()
            .unwrap_or_else(std::sync::PoisonError::into_inner)
    }

    fn new(source: &'a dyn FrameSource, frames: usize, config: &'a StreamConfig) -> Self {
        let engine = RenderEngine::new(config.gpu.clone())
            .with_threads(config.threads)
            .with_telemetry(config.telemetry.clone())
            .with_profiler(config.profiler.clone());
        let sms = engine.fragments_per_launch();
        // The shard builder's worker policy: 0 = all cores. No work-item
        // cap — the pool's parallel width (in-flight frames × cameras ×
        // SMs fragments plus builds and updates) isn't known until the
        // source produces frames, and idle workers just park on the
        // condvar.
        let workers = grtx_shard::effective_threads(config.threads, usize::MAX);
        Self {
            source,
            frames,
            config,
            engine,
            sms,
            depth: config.depth.max(1),
            workers,
            state: Mutex::new(State {
                slots: (0..frames).map(|_| Slot::default()).collect(),
                results: (0..frames).map(|_| None).collect(),
                update_claimed: 0,
                update_done: 0,
                build_claimed: 0,
                build_done: 0,
                merged_prefix: 0,
                released_prefix: 0,
                running: 0,
                poisoned: false,
            }),
            ready: Condvar::new(),
        }
    }

    fn run(self) -> Vec<FrameOutcome> {
        std::thread::scope(|scope| {
            let this = &self;
            let handles: Vec<_> = (0..self.workers)
                .map(|index| scope.spawn(move || this.worker(index)))
                .collect();
            for handle in handles {
                if let Err(payload) = handle.join() {
                    // Re-raise the first worker panic on the caller.
                    std::panic::resume_unwind(payload);
                }
            }
        });
        let state = self
            .state
            .into_inner()
            .unwrap_or_else(std::sync::PoisonError::into_inner);
        state
            .results
            .into_iter()
            .map(|r| r.expect("every frame settled"))
            .collect()
    }

    /// One pool worker: claim, execute, publish, until the stream is
    /// fully merged (or a sibling panicked).
    fn worker(&self, index: usize) {
        let mut recorder = self
            .config
            .telemetry
            .recorder(format!("pipeline-worker-{index:02}"));
        loop {
            let task = {
                let mut state = self.lock_state();
                loop {
                    if state.poisoned {
                        return;
                    }
                    if state.merged_prefix == self.frames {
                        return;
                    }
                    match self.claim(&mut state) {
                        Some(task) => {
                            state.running += 1;
                            break task;
                        }
                        None => {
                            state = self
                                .ready
                                .wait(state)
                                .unwrap_or_else(std::sync::PoisonError::into_inner);
                        }
                    }
                }
            };
            // Execute outside the lock. A panic is caught at this choke
            // point and routed through `handle_panic`: retried (within
            // the retry budget), quarantined to its frame (resilient
            // policy), or — under the default policy — the pipeline is
            // poisoned so sibling workers drain out, then the payload
            // re-raises. Which worker runs which task is
            // scheduling-dependent, so span *tracks* vary run to run —
            // but the per-path span counts are deterministic (one
            // update/build/merge per frame, one fragment per
            // (camera, SM)).
            let (span, key) = match &task {
                Task::Update(n) => ("pipeline.update", *n),
                Task::Build { frame, reuse, .. } => (
                    if reuse.is_some() {
                        "pipeline.build_reuse"
                    } else {
                        "pipeline.build"
                    },
                    *frame,
                ),
                Task::Fragment { frame, .. } => ("pipeline.fragment", *frame),
                Task::Merge { frame, .. } => ("pipeline.merge", *frame),
            };
            let id = match &task {
                Task::Update(n) => TaskId {
                    stage: FaultSite::Update,
                    frame: *n,
                    fragment: None,
                },
                Task::Build { frame, .. } => TaskId {
                    stage: FaultSite::Build,
                    frame: *frame,
                    fragment: None,
                },
                Task::Fragment {
                    frame, fragment, ..
                } => TaskId {
                    stage: FaultSite::Fragment,
                    frame: *frame,
                    fragment: Some(*fragment),
                },
                Task::Merge { frame, .. } => TaskId {
                    stage: FaultSite::Merge,
                    frame: *frame,
                    fragment: None,
                },
            };
            let outcome = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
                recorder.scope(span, key as u64, |_| self.execute(task));
            }));
            if let Err(payload) = outcome {
                if self.handle_panic(id, payload) {
                    recorder.scope("pipeline.retry", id.frame as u64, |_| ());
                }
            }
        }
    }

    /// Handles a stage-task panic caught at the worker choke point:
    /// requeue the task for a retry (returns `true`), quarantine its
    /// frame under the resilient policy (returns `false`), or — under
    /// the default policy — poison the pipeline and re-raise the
    /// original payload on this worker (diverges, preserving legacy
    /// fail-fast semantics byte for byte).
    fn handle_panic(&self, id: TaskId, payload: Box<dyn std::any::Any + Send>) -> bool {
        let telemetry = &self.config.telemetry;
        if payload.downcast_ref::<InjectedFault>().is_some() {
            telemetry.counter_add("fault.injected", 1);
        }
        let policy = self.config.retry;
        let mut state = self.lock_state();
        state.running -= 1;
        let (attempts, retryable) = {
            let slot = &mut state.slots[id.frame];
            let counter = match (id.stage, id.fragment) {
                (FaultSite::Fragment, Some(f)) => &mut slot.fragment_attempts[f],
                (FaultSite::Update, _) => &mut slot.update_attempts,
                (FaultSite::Merge, _) => &mut slot.merge_attempts,
                _ => &mut slot.build_attempts,
            };
            *counter += 1;
            // A merge that already consumed its inputs cannot re-run;
            // injected merge faults fire before the take, so they stay
            // retryable.
            (
                *counter,
                id.stage != FaultSite::Merge || !slot.merge_inputs_taken,
            )
        };
        if retryable && attempts < policy.attempts() {
            telemetry.counter_add("fault.retries", 1);
            match (id.stage, id.fragment) {
                (FaultSite::Fragment, Some(f)) => state.slots[id.frame].requeued.push(f),
                (FaultSite::Update, _) => state.update_claimed = id.frame,
                (FaultSite::Merge, _) => state.slots[id.frame].merge_claimed = false,
                _ => state.build_claimed = id.frame,
            }
            drop(state);
            self.ready.notify_all();
            return true;
        }
        if policy.quarantine {
            if id.stage == FaultSite::Fragment {
                state.slots[id.frame].fragments_exhausted += 1;
            }
            let error = stage_failed(id.stage, id.frame, attempts, payload.as_ref());
            self.fail_frame(
                &mut state,
                id.frame,
                id.stage,
                id.fragment.unwrap_or(usize::MAX),
                error,
            );
            drop(state);
            self.ready.notify_all();
            return false;
        }
        state.poisoned = true;
        drop(state);
        self.ready.notify_all();
        std::panic::resume_unwind(payload);
    }

    /// Quarantines `frame` with `error`, advancing the stage cursor the
    /// failed task held so successors keep flowing, and seals the frame
    /// once its in-flight fragments settle. When several fragments of
    /// one frame exhaust, the lowest fragment index wins the recorded
    /// error — a schedule-independent choice.
    fn fail_frame(
        &self,
        state: &mut State,
        frame: usize,
        stage: FaultSite,
        fragment: usize,
        error: GrtxError,
    ) {
        {
            let slot = &mut state.slots[frame];
            let replace = match &slot.failed {
                None => {
                    self.config.telemetry.counter_add("fault.frames_failed", 1);
                    true
                }
                Some((_, existing)) => stage == FaultSite::Fragment && fragment < *existing,
            };
            if replace {
                slot.failed = Some((error, fragment));
            }
        }
        match stage {
            FaultSite::Update => state.update_done = state.update_done.max(frame + 1),
            FaultSite::Partition | FaultSite::Build => {
                state.build_done = state.build_done.max(frame + 1)
            }
            FaultSite::Fragment | FaultSite::Merge => {}
        }
        self.try_seal(state, frame);
    }

    /// Seals a failed frame — publishes its `FrameOutcome::Failed` and
    /// advances the merged prefix — once none of its fragments are
    /// still unissued, in flight, or awaiting a retry. Draining every
    /// fragment to settlement before sealing keeps the fault-probe set
    /// (and thus the `FaultLog`) schedule-independent.
    fn try_seal(&self, state: &mut State, frame: usize) {
        let slot = &state.slots[frame];
        if slot.merged || slot.failed.is_none() {
            return;
        }
        let fragments_pending = slot.built.is_some()
            && (slot.issued < slot.outcomes.len()
                || slot.fragments_done + slot.fragments_exhausted < slot.outcomes.len());
        if fragments_pending {
            return;
        }
        let error = slot
            .failed
            .as_ref()
            .map(|(e, _)| e.clone())
            .expect("frame failed");
        state.slots[frame].merged = true;
        state.results[frame] = Some(FrameOutcome::Failed {
            index: frame,
            error,
        });
        while state.merged_prefix < self.frames && state.slots[state.merged_prefix].merged {
            state.merged_prefix += 1;
        }
    }

    /// Claims the next ready task, preferring downstream work on the
    /// oldest frame — this is the cross-stage steal: a worker with no
    /// render fragments left picks up the next build or update instead.
    fn claim(&self, state: &mut State) -> Option<Task> {
        self.release_slots(state);
        // 1. Merge: any built frame whose fragments all completed.
        //    Failed frames never merge — they seal via `try_seal`.
        for n in state.merged_prefix..state.build_done {
            let slot = &state.slots[n];
            if slot.merged || slot.merge_claimed || slot.failed.is_some() || slot.built.is_none() {
                continue;
            }
            if slot.fragments_done == slot.outcomes.len() {
                let slot = &mut state.slots[n];
                slot.merge_claimed = true;
                return Some(Task::Merge {
                    frame: n,
                    scene: slot.scene.clone().expect("updated frame has a scene"),
                    built: slot.built.clone().expect("built frame has a structure"),
                    launches: slot.launches.clone().expect("updated frame has launches"),
                    scene_changed: slot.scene_changed,
                    attempt: slot.merge_attempts,
                });
            }
        }
        // 2. Fragments: requeued retries first, then the oldest built
        //    frame with unissued fragments. Failed frames keep issuing
        //    so their probe set stays schedule-independent.
        for n in state.merged_prefix..state.build_done {
            let slot = &state.slots[n];
            if slot.built.is_none() {
                continue;
            }
            let has_retry = !slot.requeued.is_empty();
            if !has_retry && slot.issued >= slot.outcomes.len() {
                continue;
            }
            let slot = &mut state.slots[n];
            let fragment = if let Some(fragment) = slot.requeued.pop() {
                fragment
            } else {
                if slot.issued == 0 {
                    // How long the built structure waited before any
                    // render fragment picked it up.
                    let now = self.config.telemetry.now_us();
                    self.config.telemetry.record_value(
                        "pipeline.dwell.render_us",
                        now.saturating_sub(slot.t_build_done),
                    );
                }
                let fragment = slot.issued;
                slot.issued += 1;
                fragment
            };
            return Some(Task::Fragment {
                frame: n,
                fragment,
                scene: slot.scene.clone().expect("updated frame has a scene"),
                built: slot.built.clone().expect("built frame has a structure"),
                launches: slot.launches.clone().expect("updated frame has launches"),
                attempt: slot.fragment_attempts[fragment],
            });
        }
        // 3. Build: in frame order, one at a time, at most one frame
        //    ahead of the oldest unmerged frame (the structure being
        //    rendered plus one queued — the double-buffered handoff).
        while state.build_claimed == state.build_done
            && state.build_claimed < state.update_done
            && state.build_claimed - state.merged_prefix < 2
        {
            let n = state.build_claimed;
            if state.slots[n].failed.is_some() {
                // The frame failed at update (or an earlier build
                // attempt): skip its build so successors keep flowing.
                state.build_claimed = n + 1;
                state.build_done = n + 1;
                continue;
            }
            state.build_claimed += 1;
            let now = self.config.telemetry.now_us();
            // Queue dwell: update finished → build claimed. Handoff
            // depth: how far the build stage runs ahead of the oldest
            // unmerged frame when it claims (bounded at 2 by design).
            self.config.telemetry.record_value(
                "pipeline.dwell.build_us",
                now.saturating_sub(state.slots[n].t_update_done),
            );
            self.config.telemetry.record_value(
                "pipeline.handoff.build_depth",
                (n - state.merged_prefix) as u64,
            );
            // Spare pool capacity for the nested sharded build: every
            // worker not currently executing a task, plus the one this
            // build will block while its scoped builders run.
            let build_threads = (self.workers - self.workers.min(state.running)).max(1);
            let scene = state.slots[n]
                .scene
                .clone()
                .expect("updated frame has a scene");
            // An unchanged scene reuses the previous structure; if the
            // previous frame's build was quarantined the reuse source is
            // gone, so fall back to a fresh (bit-identical) build.
            let reuse = if state.slots[n].scene_changed {
                None
            } else if self.config.retry.quarantine {
                state.slots[n - 1].built.clone()
            } else {
                Some(
                    state.slots[n - 1]
                        .built
                        .clone()
                        .expect("previous frame built before an unchanged frame"),
                )
            };
            return Some(Task::Build {
                frame: n,
                scene,
                reuse,
                build_threads,
                attempt: state.slots[n].build_attempts,
            });
        }
        // 4. Update: in frame order, one at a time, within the depth
        //    cap and at most two frames ahead of completed builds.
        if state.update_claimed == state.update_done
            && state.update_claimed < self.frames
            && state.update_claimed - state.merged_prefix < self.depth
            && state.update_claimed - state.build_done < 3
        {
            // Handoff depth: how far the update stage runs ahead of
            // completed builds when it claims (bounded at 2 by design).
            self.config.telemetry.record_value(
                "pipeline.handoff.update_depth",
                (state.update_claimed - state.build_done) as u64,
            );
            let n = state.update_claimed;
            state.update_claimed += 1;
            state.slots[n].t_update_claim = self.config.telemetry.now_us();
            return Some(Task::Update(n));
        }
        None
    }

    /// Drops merged frames' slot data (scene, structure, launches) once
    /// no successor can still read it — `update(n + 1)` has completed
    /// (it resolves an unchanged scene from slot `n`) and `build(n + 1)`
    /// has been claimed (it copies the reuse structure at claim time) —
    /// so a long stream's working set stays bounded by the pipeline
    /// window instead of accumulating every frame's structure.
    fn release_slots(&self, state: &mut State) {
        while state.released_prefix < state.merged_prefix {
            let n = state.released_prefix;
            let successor_updated = n + 2 <= state.update_done || n + 1 >= self.frames;
            let successor_build_claimed = n + 2 <= state.build_claimed || n + 1 >= self.frames;
            if !(successor_updated && successor_build_claimed) {
                break;
            }
            let slot = &mut state.slots[n];
            slot.scene = None;
            slot.built = None;
            slot.launches = None;
            state.released_prefix += 1;
        }
    }

    /// Executes a task and publishes its result under the lock.
    fn execute(&self, task: Task) {
        match task {
            Task::Update(n) => {
                let spec = self.source.frame(n);
                assert!(spec.scene.is_some() || n > 0, "frame 0 must supply a scene");
                let launches: Vec<CameraLaunch> = spec
                    .cameras
                    .iter()
                    .map(|camera| {
                        self.engine
                            .plan_launch(camera, self.config.effects.as_ref())
                    })
                    .collect();
                let fragment_count = spec.cameras.len() * self.sms;
                let mut state = self.lock_state();
                let scene_changed = spec.scene.is_some();
                let scene = match spec.scene {
                    Some(scene) => scene,
                    None => {
                        assert!(n > 0, "frame 0 must supply a scene");
                        match state.slots[n - 1].scene.clone() {
                            Some(scene) => scene,
                            None if self.config.retry.quarantine => {
                                // The predecessor's update was
                                // quarantined, so this frame's scene is
                                // unreachable: fail it against the root
                                // of the dependency chain and move on.
                                let dependency = match &state.slots[n - 1].failed {
                                    Some((GrtxError::DependencyFailed { dependency, .. }, _)) => {
                                        *dependency
                                    }
                                    _ => (n - 1) as u64,
                                };
                                state.running -= 1;
                                self.fail_frame(
                                    &mut state,
                                    n,
                                    FaultSite::Update,
                                    usize::MAX,
                                    GrtxError::DependencyFailed {
                                        frame: n as u64,
                                        dependency,
                                    },
                                );
                                drop(state);
                                self.ready.notify_all();
                                return;
                            }
                            None => panic!("previous frame updated before this one"),
                        }
                    }
                };
                let slot = &mut state.slots[n];
                slot.cameras = spec.cameras;
                slot.scene = Some(scene);
                slot.scene_changed = scene_changed;
                slot.launches = Some(Arc::new(launches));
                slot.outcomes = (0..fragment_count).map(|_| None).collect();
                slot.fragment_attempts = vec![0; fragment_count];
                slot.t_update_done = self.config.telemetry.now_us();
                state.update_done = n + 1;
                state.running -= 1;
                drop(state);
                self.config
                    .telemetry
                    .counter_add("pipeline.tasks.update", 1);
                self.ready.notify_all();
            }
            Task::Build {
                frame,
                scene,
                reuse,
                build_threads,
                attempt,
            } => {
                // Probe before any side effect, so a retried attempt
                // replays no counters.
                let key = (frame as u64) << 32;
                self.config
                    .faults
                    .probe(FaultSite::Partition, key, 0, attempt);
                self.config.faults.probe(FaultSite::Build, key, 0, attempt);
                let telemetry = &self.config.telemetry;
                let built = match reuse {
                    Some(built) => {
                        telemetry.counter_add("pipeline.rebuild_skips", 1);
                        built
                    }
                    None => {
                        telemetry.counter_add("pipeline.rebuilds", 1);
                        Arc::new(build_structure(&scene, self.config, build_threads))
                    }
                };
                // Drop the task-held scene clone before publishing, so
                // "completed" implies "no task still pins the frame".
                drop(scene);
                let mut state = self.lock_state();
                state.running -= 1;
                state.slots[frame].built = Some(built);
                state.slots[frame].t_build_done = telemetry.now_us();
                state.build_done = frame + 1;
                drop(state);
                telemetry.counter_add("pipeline.tasks.build", 1);
                self.ready.notify_all();
            }
            Task::Fragment {
                frame,
                fragment,
                scene,
                built,
                launches,
                attempt,
            } => {
                let camera = fragment / self.sms;
                let sm = fragment % self.sms;
                self.config.faults.probe(
                    FaultSite::Fragment,
                    ((frame as u64) << 32) | camera as u64,
                    sm as u64,
                    attempt,
                );
                let outcome = self.engine.simulate_fragment(
                    &built.accel,
                    &scene,
                    &self.config.render,
                    &launches[camera],
                    sm,
                );
                // As in the build arm: release the task's Arc clones
                // before the completion publish.
                drop(scene);
                drop(built);
                drop(launches);
                let mut state = self.lock_state();
                state.running -= 1;
                let slot = &mut state.slots[frame];
                slot.outcomes[fragment] = Some(outcome);
                slot.fragments_done += 1;
                // The last settling fragment of a quarantined frame
                // seals it.
                if slot.failed.is_some() {
                    self.try_seal(&mut state, frame);
                }
                drop(state);
                self.config
                    .telemetry
                    .counter_add("pipeline.tasks.fragment", 1);
                self.ready.notify_all();
            }
            Task::Merge {
                frame,
                scene,
                built,
                launches,
                scene_changed,
                attempt,
            } => {
                // Probe first, take second: an injected merge fault
                // fires while the cameras and outcomes are still in the
                // slot, so the retry re-runs against intact inputs. A
                // foreign panic after the take is non-retryable
                // (`merge_inputs_taken`).
                self.config
                    .faults
                    .probe(FaultSite::Merge, (frame as u64) << 32, 0, attempt);
                let (cameras, mut outcomes) = {
                    let mut state = self.lock_state();
                    let slot = &mut state.slots[frame];
                    slot.merge_inputs_taken = true;
                    (
                        std::mem::take(&mut slot.cameras),
                        std::mem::take(&mut slot.outcomes),
                    )
                };
                let reports: Vec<RenderReport> = cameras
                    .iter()
                    .enumerate()
                    .map(|(cam, camera)| {
                        let sm_outcomes: Vec<SmOutcome> = outcomes
                            [cam * self.sms..(cam + 1) * self.sms]
                            .iter_mut()
                            .map(|o| o.take().expect("every fragment completed before merge"))
                            .collect();
                        self.engine.merge_launch_keyed(
                            ((frame as u64) << 32) | cam as u64,
                            &launches[cam],
                            camera,
                            &self.config.render,
                            sm_outcomes,
                        )
                    })
                    .collect();
                let result = FrameResult {
                    index: frame,
                    gaussians: scene.len(),
                    rebuilt: scene_changed,
                    reports,
                    size: built.size,
                    height: built.height,
                    sharding: built.sharding.clone(),
                };
                // As in the build arm: release the task's Arc clones
                // before the completion publish.
                drop(scene);
                drop(built);
                drop(launches);
                let telemetry = &self.config.telemetry;
                let mut state = self.lock_state();
                state.running -= 1;
                state.results[frame] = Some(FrameOutcome::Rendered(result));
                state.slots[frame].merged = true;
                telemetry.record_value(
                    "pipeline.frame_latency_us",
                    telemetry
                        .now_us()
                        .saturating_sub(state.slots[frame].t_update_claim),
                );
                while state.merged_prefix < self.frames && state.slots[state.merged_prefix].merged {
                    state.merged_prefix += 1;
                }
                drop(state);
                telemetry.counter_add("pipeline.tasks.merge", 1);
                telemetry.counter_add("pipeline.frames", 1);
                self.ready.notify_all();
            }
        }
    }
}
