//! The frame-stream scheduler: a three-stage graph (update → build →
//! render) driven by one scoped worker pool.
//!
//! # Stage graph
//!
//! ```text
//!  FrameSource ──► update ──► build ──► render ──► Vec<FrameResult>
//!                 (N + 2)    (N + 1)     (N)        (frame order)
//! ```
//!
//! * **update** produces a frame's scene and cameras from the
//!   [`FrameSource`] and plans its raygen launches
//!   ([`RenderEngine::plan_launch`] — pure, scene-independent). Updates
//!   run in frame order, one at a time.
//! * **build** constructs the frame's acceleration structure — sharded
//!   in parallel through the `grtx-shard` builder when
//!   [`StreamConfig::shards`] > 0 — or, when the source reports the
//!   scene unchanged, reuses the previous frame's structure without
//!   rebuilding. Builds run in frame order, one at a time.
//! * **render** fans the frame into `cameras × SMs` closed fragments
//!   ([`RenderEngine::simulate_fragment`]) and merges them per camera in
//!   fixed SM order ([`RenderEngine::merge_launch`]).
//!
//! Stages are connected by bounded, double-buffered handoffs: `update(n)`
//! starts only when `n ≤ builds_done + 2` (one spec feeding the build in
//! progress, two buffered behind it), and `build(n)` only when
//! `n ≤ merged + 1` (the structure being rendered plus one queued).
//! A frame's slot releases its scene, structure, and launches as soon as
//! no successor can still reuse them, so a long stream holds a bounded
//! working set — not every frame to the end. [`StreamConfig::depth`]
//! additionally caps the total frames in flight — depth 1 degenerates to
//! the sequential per-frame path ([`run_sequential`]), depth 3 reaches
//! the full update(N+2) ∥ build(N+1) ∥ render(N) overlap, and the
//! handoff bounds cap useful depth at 5 regardless.
//!
//! # One pool, work stealing across stages
//!
//! All stage work executes on a single `std::thread::scope` worker pool.
//! Workers claim whatever is ready, preferring downstream work (merge,
//! then fragments, then build, then update) on the oldest frame first —
//! so a worker that runs out of render fragments for frame N naturally
//! steals the build of frame N+1 or the update of frame N+2, and the
//! machine stays busy across stage boundaries.
//!
//! # Determinism
//!
//! Every task is a pure function of its frame's inputs, results land in
//! slots keyed by frame (and fragment) index, and merges follow the
//! engine's fixed `(camera, SM)` order — so images, cycles, and every
//! statistic are **bit-identical** to running the frames sequentially
//! ([`run_sequential`], and therefore to per-frame
//! `RenderEngine::render_batch` calls) at any thread count and any
//! pipeline depth. Only wall-clock time changes. Build timings inside
//! [`ShardingSummary`] are wall-clock measurements and are exempt.

use crate::source::FrameSource;
use grtx_bvh::{AccelStruct, BoundingPrimitive, BvhSizeReport, LayoutConfig};
use grtx_prof::Profiler;
use grtx_render::engine::{CameraLaunch, SmOutcome};
use grtx_render::renderer::{RenderConfig, RenderReport};
use grtx_render::RenderEngine;
use grtx_scene::{Camera, EffectObjects, GaussianScene};
use grtx_shard::{ShardedAccel, ShardingSummary};
use grtx_sim::GpuConfig;
use grtx_telemetry::Telemetry;
use std::sync::{Arc, Condvar, Mutex};

/// Everything the pipeline needs to turn a [`FrameSource`] into frames:
/// the acceleration-structure recipe, the render configuration, and the
/// pipeline shape (depth, threads, shards).
#[derive(Debug, Clone)]
pub struct StreamConfig {
    /// Maximum frames in flight. `0`/`1` runs the sequential per-frame
    /// path; `2` overlaps rendering with the next frame's update+build;
    /// `3` (the default) reaches the full three-stage overlap. Depths
    /// above 5 change nothing — the bounded stage handoffs (update ≤ 2
    /// frames past completed builds, build ≤ 1 frame past the oldest
    /// unmerged frame) admit at most five frames in flight.
    pub depth: usize,
    /// Worker threads for the pool (`0` = all available cores). Thread
    /// count never changes results, only wall-clock time.
    pub threads: usize,
    /// Spatial shards for acceleration-structure builds (`0` = the
    /// serial unsharded build). Shard count never changes results.
    pub shards: usize,
    /// Bounding proxy for Gaussians.
    pub primitive: BoundingPrimitive,
    /// Two-level (TLAS + shared BLAS) vs monolithic organization.
    pub two_level: bool,
    /// Structure byte layout.
    pub layout: LayoutConfig,
    /// Render configuration (trace params, cycle charging, background).
    pub render: RenderConfig,
    /// Simulated GPU configuration.
    pub gpu: GpuConfig,
    /// Effect objects applied to every frame's cameras, if any.
    pub effects: Option<EffectObjects>,
    /// Telemetry handle. The default (disabled) handle records nothing;
    /// an enabled one collects per-worker task spans, stage-handoff
    /// histograms (frame latency, queue dwell, handoff depth), and
    /// scheduler counters — without changing any frame result.
    pub telemetry: Telemetry,
    /// Simulated-cycle profiler handle. The default (disabled) handle
    /// records nothing; an enabled one collects per-(launch, SM)
    /// hardware counters and warp timelines on the virtual clock, keyed
    /// `(frame << 32) | camera` — byte-identical at every depth, thread,
    /// and shard count, and invisible in every frame result.
    pub profiler: Profiler,
}

impl Default for StreamConfig {
    /// GRTX-SW structure (TLAS + shared 20-triangle BLAS), default
    /// render/GPU configuration, full three-stage overlap on all cores.
    fn default() -> Self {
        Self {
            depth: 3,
            threads: 0,
            shards: 0,
            primitive: BoundingPrimitive::Mesh20,
            two_level: true,
            layout: LayoutConfig::default(),
            render: RenderConfig::default(),
            gpu: GpuConfig::default(),
            effects: None,
            telemetry: Telemetry::disabled(),
            profiler: Profiler::disabled(),
        }
    }
}

/// One rendered frame, in frame order, with everything the sequential
/// path would have produced.
#[derive(Debug, Clone)]
pub struct FrameResult {
    /// Frame index in the stream.
    pub index: usize,
    /// Gaussians in this frame's scene.
    pub gaussians: usize,
    /// Whether this frame rebuilt the acceleration structure (`false`
    /// when the source reported the scene unchanged and the previous
    /// structure was reused).
    pub rebuilt: bool,
    /// One report per camera, in view order — each bit-identical to a
    /// standalone render of that camera against this frame's scene.
    pub reports: Vec<RenderReport>,
    /// Acceleration-structure byte accounting for this frame.
    pub size: BvhSizeReport,
    /// Structure height.
    pub height: u32,
    /// Sharded-build accounting when [`StreamConfig::shards`] > 0.
    /// Reused (cloned) from the building frame on reuse frames. Shard
    /// sizes and the directory are deterministic; the summary's
    /// build-phase timings and worker count are wall-clock/scheduling
    /// metadata (overlapped builds size themselves to the pool's spare
    /// capacity) and are exempt from the determinism contract.
    pub sharding: Option<ShardingSummary>,
}

/// A built acceleration structure plus the accounting a frame reports.
struct Built {
    accel: Arc<AccelStruct>,
    size: BvhSizeReport,
    height: u32,
    sharding: Option<ShardingSummary>,
}

/// Builds a frame's structure per the config — sharded in parallel on
/// `build_threads` workers when `shards` > 0.
fn build_structure(scene: &GaussianScene, config: &StreamConfig, build_threads: usize) -> Built {
    if config.shards > 0 {
        let sharded = ShardedAccel::build_traced(
            scene,
            config.primitive,
            config.two_level,
            &config.layout,
            config.shards,
            build_threads,
            &config.telemetry,
        );
        let sharding = Some(sharded.summary());
        let accel = sharded.into_accel();
        Built {
            size: *accel.size_report(),
            height: accel.height(),
            accel: Arc::new(accel),
            sharding,
        }
    } else {
        let accel = AccelStruct::build(scene, config.primitive, config.two_level, &config.layout);
        Built {
            size: *accel.size_report(),
            height: accel.height(),
            accel: Arc::new(accel),
            sharding: None,
        }
    }
}

/// Runs `frames` frames of `source` through the pipeline, returning
/// results in strict frame order.
///
/// Every frame's images, cycles, and statistics are **bit-identical** to
/// [`run_sequential`] — and therefore to building and batch-rendering
/// each frame one at a time — at any [`StreamConfig::depth`],
/// [`StreamConfig::threads`], and [`StreamConfig::shards`].
///
/// # Panics
///
/// Panics if frame 0's [`FrameSpec`](crate::FrameSpec) carries no scene,
/// or if the source/build/render work itself panics (worker panics are
/// forwarded to the caller).
pub fn run_stream(
    source: &dyn FrameSource,
    frames: usize,
    config: &StreamConfig,
) -> Vec<FrameResult> {
    if frames == 0 {
        return Vec::new();
    }
    if config.depth <= 1 {
        return run_sequential(source, frames, config);
    }
    Pipeline::new(source, frames, config).run()
}

/// The sequential per-frame path: update, build, render, one frame at a
/// time — the proof anchor the pipelined scheduler is tested against
/// (and the `depth ≤ 1` behavior of [`run_stream`]).
///
/// The unchanged-scene rebuild skip applies here too, so reuse frames
/// cost no build; skipping is invisible in the results because the
/// serial rebuild is deterministic.
pub fn run_sequential(
    source: &dyn FrameSource,
    frames: usize,
    config: &StreamConfig,
) -> Vec<FrameResult> {
    let engine = RenderEngine::new(config.gpu.clone())
        .with_threads(config.threads)
        .with_telemetry(config.telemetry.clone())
        .with_profiler(config.profiler.clone());
    let telemetry = &config.telemetry;
    let mut recorder = telemetry.recorder("stream-sequential");
    let mut results = Vec::with_capacity(frames);
    let mut scene: Option<Arc<GaussianScene>> = None;
    let mut built: Option<Arc<Built>> = None;
    for index in 0..frames {
        let frame_start = telemetry.now_us();
        let (rebuilt, reports) = recorder.scope("pipeline.frame", index as u64, |rec| {
            let spec = rec.scope("pipeline.update", index as u64, |_| source.frame(index));
            let rebuilt = spec.scene.is_some();
            if let Some(s) = spec.scene {
                scene = Some(s);
            }
            let scene = scene.as_ref().expect("frame 0 must supply a scene");
            if rebuilt || built.is_none() {
                telemetry.counter_add("pipeline.rebuilds", 1);
                built = Some(Arc::new(rec.scope("pipeline.build", index as u64, |_| {
                    build_structure(scene, config, config.threads)
                })));
            } else {
                telemetry.counter_add("pipeline.rebuild_skips", 1);
            }
            let built = built.as_ref().expect("structure built above");
            let reports = rec.scope("pipeline.render", index as u64, |_| {
                // The same `(frame << 32) | camera` profile keys as the
                // task-graph path, so profiles are depth-independent.
                engine.render_batch_keyed(
                    (index as u64) << 32,
                    &built.accel,
                    scene,
                    &spec.cameras,
                    config.effects.as_ref(),
                    &config.render,
                )
            });
            (rebuilt, reports)
        });
        telemetry.record_value(
            "pipeline.frame_latency_us",
            telemetry.now_us().saturating_sub(frame_start),
        );
        telemetry.counter_add("pipeline.frames", 1);
        let scene = scene.as_ref().expect("frame 0 must supply a scene");
        let built = built.as_ref().expect("structure built above");
        results.push(FrameResult {
            index,
            gaussians: scene.len(),
            rebuilt,
            reports,
            size: built.size,
            height: built.height,
            sharding: built.sharding.clone(),
        });
    }
    results
}

/// Per-frame pipeline slot, filled stage by stage.
#[derive(Default)]
struct Slot {
    /// After update: this frame's cameras.
    cameras: Vec<Camera>,
    /// After update: the frame's resolved scene (the previous frame's
    /// when the source reported it unchanged).
    scene: Option<Arc<GaussianScene>>,
    /// Whether the source supplied a fresh scene for this frame.
    scene_changed: bool,
    /// After update: planned launches, one per camera.
    launches: Option<Arc<Vec<CameraLaunch>>>,
    /// After build: the structure to render against.
    built: Option<Arc<Built>>,
    /// Fragment outcomes, camera-major (`camera × SMs + sm`).
    outcomes: Vec<Option<SmOutcome>>,
    /// Fragments handed to workers so far.
    issued: usize,
    /// Fragments completed so far.
    fragments_done: usize,
    /// Whether the merge task was claimed.
    merge_claimed: bool,
    /// Whether the merge completed.
    merged: bool,
    /// Telemetry timestamps (µs since the handle's epoch; all `0` with
    /// telemetry disabled): when the frame's update was claimed, when it
    /// completed, and when the build completed — the anchors for the
    /// frame-latency and queue-dwell histograms.
    t_update_claim: u64,
    t_update_done: u64,
    t_build_done: u64,
}

/// A claimed unit of pool work.
enum Task {
    /// Produce frame `n`'s spec and plan its launches.
    Update(usize),
    /// Build (or reuse) frame `n`'s structure. Carries the resolved
    /// scene and, when the scene is unchanged, the structure to reuse.
    Build {
        frame: usize,
        scene: Arc<GaussianScene>,
        reuse: Option<Arc<Built>>,
        /// Worker threads for the nested sharded build: the pool's spare
        /// capacity at claim time, so an overlapped build soaks up idle
        /// cores instead of oversubscribing busy ones.
        build_threads: usize,
    },
    /// Simulate fragment `fragment` (camera-major) of frame `frame`.
    Fragment {
        frame: usize,
        fragment: usize,
        scene: Arc<GaussianScene>,
        built: Arc<Built>,
        launches: Arc<Vec<CameraLaunch>>,
    },
    /// Merge frame `frame`'s fragments into its result.
    Merge {
        frame: usize,
        scene: Arc<GaussianScene>,
        built: Arc<Built>,
        launches: Arc<Vec<CameraLaunch>>,
        cameras: Vec<Camera>,
        outcomes: Vec<Option<SmOutcome>>,
        scene_changed: bool,
    },
}

/// Shared scheduler state, guarded by one mutex.
struct State {
    slots: Vec<Slot>,
    results: Vec<Option<FrameResult>>,
    /// Next frame index the update stage will claim / has completed.
    update_claimed: usize,
    update_done: usize,
    /// Next frame index the build stage will claim / has completed.
    build_claimed: usize,
    build_done: usize,
    /// Frames `0..merged_prefix` are fully rendered and merged.
    merged_prefix: usize,
    /// Frames `0..released_prefix` have dropped their slot's scene,
    /// structure, and launches (no successor can still reuse them).
    released_prefix: usize,
    /// Tasks currently executing on workers (claimed, not yet
    /// completed) — the pool's busy count, used to size nested builds.
    running: usize,
    /// A worker panicked; everyone else drains out.
    poisoned: bool,
}

struct Pipeline<'a> {
    source: &'a dyn FrameSource,
    frames: usize,
    config: &'a StreamConfig,
    engine: RenderEngine,
    sms: usize,
    depth: usize,
    workers: usize,
    state: Mutex<State>,
    ready: Condvar,
}

impl<'a> Pipeline<'a> {
    /// Locks the scheduler state. Poisoning is survivable by design:
    /// critical sections only mutate state as their final step, and a
    /// panicking task marks the whole pipeline poisoned anyway — the
    /// first panic is what reaches the caller, not a `PoisonError`.
    fn lock_state(&self) -> std::sync::MutexGuard<'_, State> {
        self.state
            .lock()
            .unwrap_or_else(std::sync::PoisonError::into_inner)
    }

    fn new(source: &'a dyn FrameSource, frames: usize, config: &'a StreamConfig) -> Self {
        let engine = RenderEngine::new(config.gpu.clone())
            .with_threads(config.threads)
            .with_telemetry(config.telemetry.clone())
            .with_profiler(config.profiler.clone());
        let sms = engine.fragments_per_launch();
        // The shard builder's worker policy: 0 = all cores. No work-item
        // cap — the pool's parallel width (in-flight frames × cameras ×
        // SMs fragments plus builds and updates) isn't known until the
        // source produces frames, and idle workers just park on the
        // condvar.
        let workers = grtx_shard::effective_threads(config.threads, usize::MAX);
        Self {
            source,
            frames,
            config,
            engine,
            sms,
            depth: config.depth.max(1),
            workers,
            state: Mutex::new(State {
                slots: (0..frames).map(|_| Slot::default()).collect(),
                results: (0..frames).map(|_| None).collect(),
                update_claimed: 0,
                update_done: 0,
                build_claimed: 0,
                build_done: 0,
                merged_prefix: 0,
                released_prefix: 0,
                running: 0,
                poisoned: false,
            }),
            ready: Condvar::new(),
        }
    }

    fn run(self) -> Vec<FrameResult> {
        std::thread::scope(|scope| {
            let this = &self;
            let handles: Vec<_> = (0..self.workers)
                .map(|index| scope.spawn(move || this.worker(index)))
                .collect();
            for handle in handles {
                if let Err(payload) = handle.join() {
                    // Re-raise the first worker panic on the caller.
                    std::panic::resume_unwind(payload);
                }
            }
        });
        let state = self
            .state
            .into_inner()
            .unwrap_or_else(std::sync::PoisonError::into_inner);
        state
            .results
            .into_iter()
            .map(|r| r.expect("every frame merged"))
            .collect()
    }

    /// One pool worker: claim, execute, publish, until the stream is
    /// fully merged (or a sibling panicked).
    fn worker(&self, index: usize) {
        let mut recorder = self
            .config
            .telemetry
            .recorder(format!("pipeline-worker-{index:02}"));
        loop {
            let task = {
                let mut state = self.lock_state();
                loop {
                    if state.poisoned {
                        return;
                    }
                    if state.merged_prefix == self.frames {
                        return;
                    }
                    match self.claim(&mut state) {
                        Some(task) => {
                            state.running += 1;
                            break task;
                        }
                        None => {
                            state = self
                                .ready
                                .wait(state)
                                .unwrap_or_else(std::sync::PoisonError::into_inner);
                        }
                    }
                }
            };
            // Execute outside the lock; a panic poisons the pipeline so
            // sibling workers drain out, then re-raises. Which worker
            // runs which task is scheduling-dependent, so span *tracks*
            // vary run to run — but the per-path span counts are
            // deterministic (one update/build/merge per frame, one
            // fragment per (camera, SM)).
            let (span, key) = match &task {
                Task::Update(n) => ("pipeline.update", *n),
                Task::Build { frame, reuse, .. } => (
                    if reuse.is_some() {
                        "pipeline.build_reuse"
                    } else {
                        "pipeline.build"
                    },
                    *frame,
                ),
                Task::Fragment { frame, .. } => ("pipeline.fragment", *frame),
                Task::Merge { frame, .. } => ("pipeline.merge", *frame),
            };
            let outcome = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
                recorder.scope(span, key as u64, |_| self.execute(task));
            }));
            if let Err(payload) = outcome {
                let mut state = self.lock_state();
                state.poisoned = true;
                drop(state);
                self.ready.notify_all();
                std::panic::resume_unwind(payload);
            }
        }
    }

    /// Claims the next ready task, preferring downstream work on the
    /// oldest frame — this is the cross-stage steal: a worker with no
    /// render fragments left picks up the next build or update instead.
    fn claim(&self, state: &mut State) -> Option<Task> {
        self.release_slots(state);
        // 1. Merge: any built frame whose fragments all completed.
        for n in state.merged_prefix..state.build_done {
            let slot = &state.slots[n];
            if slot.merged || slot.merge_claimed || slot.built.is_none() {
                continue;
            }
            if slot.fragments_done == slot.outcomes.len() {
                let slot = &mut state.slots[n];
                slot.merge_claimed = true;
                return Some(Task::Merge {
                    frame: n,
                    scene: slot.scene.clone().expect("updated frame has a scene"),
                    built: slot.built.clone().expect("built frame has a structure"),
                    launches: slot.launches.clone().expect("updated frame has launches"),
                    cameras: std::mem::take(&mut slot.cameras),
                    outcomes: std::mem::take(&mut slot.outcomes),
                    scene_changed: slot.scene_changed,
                });
            }
        }
        // 2. Fragments: oldest built frame with unissued fragments.
        for n in state.merged_prefix..state.build_done {
            let slot = &state.slots[n];
            if slot.built.is_none() || slot.issued >= slot.outcomes.len() {
                continue;
            }
            let slot = &mut state.slots[n];
            if slot.issued == 0 {
                // How long the built structure waited before any render
                // fragment picked it up.
                let now = self.config.telemetry.now_us();
                self.config.telemetry.record_value(
                    "pipeline.dwell.render_us",
                    now.saturating_sub(slot.t_build_done),
                );
            }
            let fragment = slot.issued;
            slot.issued += 1;
            return Some(Task::Fragment {
                frame: n,
                fragment,
                scene: slot.scene.clone().expect("updated frame has a scene"),
                built: slot.built.clone().expect("built frame has a structure"),
                launches: slot.launches.clone().expect("updated frame has launches"),
            });
        }
        // 3. Build: in frame order, one at a time, at most one frame
        //    ahead of the oldest unmerged frame (the structure being
        //    rendered plus one queued — the double-buffered handoff).
        if state.build_claimed == state.build_done
            && state.build_claimed < state.update_done
            && state.build_claimed - state.merged_prefix < 2
        {
            let n = state.build_claimed;
            state.build_claimed += 1;
            let now = self.config.telemetry.now_us();
            // Queue dwell: update finished → build claimed. Handoff
            // depth: how far the build stage runs ahead of the oldest
            // unmerged frame when it claims (bounded at 2 by design).
            self.config.telemetry.record_value(
                "pipeline.dwell.build_us",
                now.saturating_sub(state.slots[n].t_update_done),
            );
            self.config.telemetry.record_value(
                "pipeline.handoff.build_depth",
                (n - state.merged_prefix) as u64,
            );
            // Spare pool capacity for the nested sharded build: every
            // worker not currently executing a task, plus the one this
            // build will block while its scoped builders run.
            let build_threads = (self.workers - self.workers.min(state.running)).max(1);
            let scene = state.slots[n]
                .scene
                .clone()
                .expect("updated frame has a scene");
            let reuse = if state.slots[n].scene_changed {
                None
            } else {
                Some(
                    state.slots[n - 1]
                        .built
                        .clone()
                        .expect("previous frame built before an unchanged frame"),
                )
            };
            return Some(Task::Build {
                frame: n,
                scene,
                reuse,
                build_threads,
            });
        }
        // 4. Update: in frame order, one at a time, within the depth
        //    cap and at most two frames ahead of completed builds.
        if state.update_claimed == state.update_done
            && state.update_claimed < self.frames
            && state.update_claimed - state.merged_prefix < self.depth
            && state.update_claimed - state.build_done < 3
        {
            // Handoff depth: how far the update stage runs ahead of
            // completed builds when it claims (bounded at 2 by design).
            self.config.telemetry.record_value(
                "pipeline.handoff.update_depth",
                (state.update_claimed - state.build_done) as u64,
            );
            let n = state.update_claimed;
            state.update_claimed += 1;
            state.slots[n].t_update_claim = self.config.telemetry.now_us();
            return Some(Task::Update(n));
        }
        None
    }

    /// Drops merged frames' slot data (scene, structure, launches) once
    /// no successor can still read it — `update(n + 1)` has completed
    /// (it resolves an unchanged scene from slot `n`) and `build(n + 1)`
    /// has been claimed (it copies the reuse structure at claim time) —
    /// so a long stream's working set stays bounded by the pipeline
    /// window instead of accumulating every frame's structure.
    fn release_slots(&self, state: &mut State) {
        while state.released_prefix < state.merged_prefix {
            let n = state.released_prefix;
            let successor_updated = n + 2 <= state.update_done || n + 1 >= self.frames;
            let successor_build_claimed = n + 2 <= state.build_claimed || n + 1 >= self.frames;
            if !(successor_updated && successor_build_claimed) {
                break;
            }
            let slot = &mut state.slots[n];
            slot.scene = None;
            slot.built = None;
            slot.launches = None;
            state.released_prefix += 1;
        }
    }

    /// Executes a task and publishes its result under the lock.
    fn execute(&self, task: Task) {
        match task {
            Task::Update(n) => {
                let spec = self.source.frame(n);
                assert!(spec.scene.is_some() || n > 0, "frame 0 must supply a scene");
                let launches: Vec<CameraLaunch> = spec
                    .cameras
                    .iter()
                    .map(|camera| {
                        self.engine
                            .plan_launch(camera, self.config.effects.as_ref())
                    })
                    .collect();
                let fragment_count = spec.cameras.len() * self.sms;
                let mut state = self.lock_state();
                let scene_changed = spec.scene.is_some();
                let scene = match spec.scene {
                    Some(scene) => scene,
                    None => {
                        assert!(n > 0, "frame 0 must supply a scene");
                        state.slots[n - 1]
                            .scene
                            .clone()
                            .expect("previous frame updated before this one")
                    }
                };
                let slot = &mut state.slots[n];
                slot.cameras = spec.cameras;
                slot.scene = Some(scene);
                slot.scene_changed = scene_changed;
                slot.launches = Some(Arc::new(launches));
                slot.outcomes = (0..fragment_count).map(|_| None).collect();
                slot.t_update_done = self.config.telemetry.now_us();
                state.update_done = n + 1;
                state.running -= 1;
                drop(state);
                self.config
                    .telemetry
                    .counter_add("pipeline.tasks.update", 1);
                self.ready.notify_all();
            }
            Task::Build {
                frame,
                scene,
                reuse,
                build_threads,
            } => {
                let telemetry = &self.config.telemetry;
                let built = match reuse {
                    Some(built) => {
                        telemetry.counter_add("pipeline.rebuild_skips", 1);
                        built
                    }
                    None => {
                        telemetry.counter_add("pipeline.rebuilds", 1);
                        Arc::new(build_structure(&scene, self.config, build_threads))
                    }
                };
                // Drop the task-held scene clone before publishing, so
                // "completed" implies "no task still pins the frame".
                drop(scene);
                let mut state = self.lock_state();
                state.running -= 1;
                state.slots[frame].built = Some(built);
                state.slots[frame].t_build_done = telemetry.now_us();
                state.build_done = frame + 1;
                drop(state);
                telemetry.counter_add("pipeline.tasks.build", 1);
                self.ready.notify_all();
            }
            Task::Fragment {
                frame,
                fragment,
                scene,
                built,
                launches,
            } => {
                let camera = fragment / self.sms;
                let sm = fragment % self.sms;
                let outcome = self.engine.simulate_fragment(
                    &built.accel,
                    &scene,
                    &self.config.render,
                    &launches[camera],
                    sm,
                );
                // As in the build arm: release the task's Arc clones
                // before the completion publish.
                drop(scene);
                drop(built);
                drop(launches);
                let mut state = self.lock_state();
                state.running -= 1;
                let slot = &mut state.slots[frame];
                slot.outcomes[fragment] = Some(outcome);
                slot.fragments_done += 1;
                drop(state);
                self.config
                    .telemetry
                    .counter_add("pipeline.tasks.fragment", 1);
                self.ready.notify_all();
            }
            Task::Merge {
                frame,
                scene,
                built,
                launches,
                cameras,
                mut outcomes,
                scene_changed,
            } => {
                let reports: Vec<RenderReport> = cameras
                    .iter()
                    .enumerate()
                    .map(|(cam, camera)| {
                        let sm_outcomes: Vec<SmOutcome> = outcomes
                            [cam * self.sms..(cam + 1) * self.sms]
                            .iter_mut()
                            .map(|o| o.take().expect("every fragment completed before merge"))
                            .collect();
                        self.engine.merge_launch_keyed(
                            ((frame as u64) << 32) | cam as u64,
                            &launches[cam],
                            camera,
                            &self.config.render,
                            sm_outcomes,
                        )
                    })
                    .collect();
                let result = FrameResult {
                    index: frame,
                    gaussians: scene.len(),
                    rebuilt: scene_changed,
                    reports,
                    size: built.size,
                    height: built.height,
                    sharding: built.sharding.clone(),
                };
                // As in the build arm: release the task's Arc clones
                // before the completion publish.
                drop(scene);
                drop(built);
                drop(launches);
                let telemetry = &self.config.telemetry;
                let mut state = self.lock_state();
                state.running -= 1;
                state.results[frame] = Some(result);
                state.slots[frame].merged = true;
                telemetry.record_value(
                    "pipeline.frame_latency_us",
                    telemetry
                        .now_us()
                        .saturating_sub(state.slots[frame].t_update_claim),
                );
                while state.merged_prefix < self.frames && state.slots[state.merged_prefix].merged {
                    state.merged_prefix += 1;
                }
                drop(state);
                telemetry.counter_add("pipeline.tasks.merge", 1);
                telemetry.counter_add("pipeline.frames", 1);
                self.ready.notify_all();
            }
        }
    }
}
