//! The L1 / L2 / DRAM memory hierarchy.

use crate::cache::Cache;
use crate::config::GpuConfig;
use crate::fasthash::FastSet;

/// Classification of memory traffic.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum AccessClass {
    /// Acceleration-structure fetches (nodes, primitives, instances) —
    /// the traffic Figs. 14–17 count.
    Structure,
    /// Checkpoint / eviction buffer traffic in global memory (kept out
    /// of the node-fetch statistics, as in the paper).
    Buffer,
}

/// Per-SM L1s over a shared L2 over DRAM.
#[derive(Debug)]
pub struct MemorySystem {
    l1: Vec<Cache>,
    l2: Cache,
    line_bytes: u64,
    l1_latency: u64,
    l2_latency: u64,
    dram_latency: u64,
    sibling_prefetch: bool,
    /// Unique structure lines ever touched (the "BVH memory footprint"
    /// row of Table II).
    touched_lines: FastSet<u64>,
    /// L2 accesses attributable to structure fetches (Fig. 17).
    pub l2_structure_accesses: u64,
    /// L2 hits for structure fetches.
    pub l2_structure_hits: u64,
    /// DRAM accesses for structure fetches.
    pub dram_structure_accesses: u64,
    /// L1 accesses / hits for structure fetches (Fig. 16).
    pub l1_structure_accesses: u64,
    /// L1 hits for structure fetches.
    pub l1_structure_hits: u64,
    /// Lines installed by the sibling prefetcher.
    pub prefetch_installs: u64,
}

impl MemorySystem {
    /// Builds the hierarchy from a GPU configuration.
    pub fn new(config: &GpuConfig) -> Self {
        Self {
            l1: (0..config.num_sms)
                .map(|_| Cache::new(config.l1_bytes, config.line_bytes, config.l1_ways))
                .collect(),
            l2: Cache::new(config.l2_bytes, config.line_bytes, config.l2_ways),
            line_bytes: config.line_bytes as u64,
            l1_latency: config.l1_latency,
            l2_latency: config.l2_latency,
            dram_latency: config.dram_latency,
            sibling_prefetch: config.sibling_prefetch,
            touched_lines: FastSet::default(),
            l2_structure_accesses: 0,
            l2_structure_hits: 0,
            dram_structure_accesses: 0,
            l1_structure_accesses: 0,
            l1_structure_hits: 0,
            prefetch_installs: 0,
        }
    }

    /// Performs a read of `bytes` at `addr` from SM `sm`; returns the
    /// latency in cycles (the max over the spanned lines, as a wide load
    /// issues them in parallel).
    ///
    /// # Panics
    ///
    /// Panics if `sm` is out of range.
    pub fn access(&mut self, sm: usize, addr: u64, bytes: u64, class: AccessClass) -> u64 {
        let first_line = addr / self.line_bytes;
        let last_line = (addr + bytes.max(1) - 1) / self.line_bytes;
        let mut worst = 0u64;
        for line in first_line..=last_line {
            let line_addr = line * self.line_bytes;
            let latency = self.access_line(sm, line_addr, class);
            worst = worst.max(latency);
        }
        worst
    }

    fn access_line(&mut self, sm: usize, line_addr: u64, class: AccessClass) -> u64 {
        if class == AccessClass::Structure {
            self.touched_lines.insert(line_addr / self.line_bytes);
            self.l1_structure_accesses += 1;
        }
        if self.l1[sm].access(line_addr) {
            if class == AccessClass::Structure {
                self.l1_structure_hits += 1;
            }
            return self.l1_latency;
        }
        // L1 miss -> L2.
        if class == AccessClass::Structure {
            self.l2_structure_accesses += 1;
        }
        if self.l2.access(line_addr) {
            if class == AccessClass::Structure {
                self.l2_structure_hits += 1;
            }
            return self.l1_latency + self.l2_latency;
        }
        // L2 miss -> DRAM.
        if class == AccessClass::Structure {
            self.dram_structure_accesses += 1;
        }
        self.l1_latency + self.l2_latency + self.dram_latency
    }

    /// Sibling-prefetch install: puts the lines of `[addr, addr+bytes)`
    /// into SM `sm`'s L1 (and L2) without charging latency or counting
    /// demand accesses. No-op when prefetching is disabled.
    pub fn prefetch(&mut self, sm: usize, addr: u64, bytes: u64) {
        if !self.sibling_prefetch {
            return;
        }
        let first_line = addr / self.line_bytes;
        let last_line = (addr + bytes.max(1) - 1) / self.line_bytes;
        for line in first_line..=last_line {
            let line_addr = line * self.line_bytes;
            if self.l1[sm].install(line_addr) {
                self.prefetch_installs += 1;
            }
            self.l2.install(line_addr);
        }
    }

    /// Merges another shard's traffic counters into this hierarchy.
    ///
    /// Cache *contents* are left untouched (they are per-shard state with
    /// no meaningful union); only the statistics the reports read are
    /// combined: traffic counters sum, and the touched-line footprint is
    /// unioned so lines fetched by several SMs count once, exactly as
    /// they did when one `MemorySystem` served every SM.
    ///
    /// # Panics
    ///
    /// Panics if the two hierarchies have different line sizes.
    pub fn absorb_counters(&mut self, other: &MemorySystem) {
        // Exhaustive destructuring (no `..`): a new counter field must be
        // added here deliberately or the build breaks — cache state and
        // latency parameters are the only fields legitimately ignored.
        let MemorySystem {
            l1: _,
            l2: _,
            line_bytes,
            l1_latency: _,
            l2_latency: _,
            dram_latency: _,
            sibling_prefetch: _,
            touched_lines,
            l2_structure_accesses,
            l2_structure_hits,
            dram_structure_accesses,
            l1_structure_accesses,
            l1_structure_hits,
            prefetch_installs,
        } = other;
        assert_eq!(self.line_bytes, *line_bytes, "mismatched cache line size");
        for &line in touched_lines {
            self.touched_lines.insert(line);
        }
        self.l2_structure_accesses += l2_structure_accesses;
        self.l2_structure_hits += l2_structure_hits;
        self.dram_structure_accesses += dram_structure_accesses;
        self.l1_structure_accesses += l1_structure_accesses;
        self.l1_structure_hits += l1_structure_hits;
        self.prefetch_installs += prefetch_installs;
    }

    /// L1 hit rate over structure fetches (Fig. 16).
    pub fn l1_hit_rate(&self) -> f64 {
        if self.l1_structure_accesses == 0 {
            0.0
        } else {
            self.l1_structure_hits as f64 / self.l1_structure_accesses as f64
        }
    }

    /// Unique structure bytes touched (Table II memory footprint).
    pub fn footprint_bytes(&self) -> u64 {
        self.touched_lines.len() as u64 * self.line_bytes
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny_config() -> GpuConfig {
        GpuConfig {
            num_sms: 2,
            l1_bytes: 512,
            line_bytes: 128,
            l1_ways: 4,
            l2_bytes: 2048,
            l2_ways: 16,
            ..Default::default()
        }
    }

    #[test]
    fn first_access_pays_dram_second_hits_l1() {
        let cfg = tiny_config();
        let mut m = MemorySystem::new(&cfg);
        let cold = m.access(0, 0x1000, 8, AccessClass::Structure);
        assert_eq!(cold, cfg.l1_latency + cfg.l2_latency + cfg.dram_latency);
        let warm = m.access(0, 0x1000, 8, AccessClass::Structure);
        assert_eq!(warm, cfg.l1_latency);
    }

    #[test]
    fn l1s_are_private_l2_is_shared() {
        let cfg = tiny_config();
        let mut m = MemorySystem::new(&cfg);
        m.access(0, 0x1000, 8, AccessClass::Structure);
        // Other SM misses L1 but hits the shared L2.
        let lat = m.access(1, 0x1000, 8, AccessClass::Structure);
        assert_eq!(lat, cfg.l1_latency + cfg.l2_latency);
    }

    #[test]
    fn wide_access_spans_lines() {
        let cfg = tiny_config();
        let mut m = MemorySystem::new(&cfg);
        // 224-byte node spanning two 128-byte lines.
        m.access(0, 0x1000, 224, AccessClass::Structure);
        assert_eq!(m.l1_structure_accesses, 2);
    }

    #[test]
    fn prefetch_makes_demand_hit() {
        let cfg = tiny_config();
        let mut m = MemorySystem::new(&cfg);
        m.prefetch(0, 0x2000, 128);
        let lat = m.access(0, 0x2000, 8, AccessClass::Structure);
        assert_eq!(lat, cfg.l1_latency);
        assert_eq!(m.prefetch_installs, 1);
    }

    #[test]
    fn prefetch_disabled_is_noop() {
        let cfg = GpuConfig {
            sibling_prefetch: false,
            ..tiny_config()
        };
        let mut m = MemorySystem::new(&cfg);
        m.prefetch(0, 0x2000, 128);
        let lat = m.access(0, 0x2000, 8, AccessClass::Structure);
        assert!(lat > cfg.l1_latency);
    }

    #[test]
    fn buffer_traffic_excluded_from_structure_stats() {
        let cfg = tiny_config();
        let mut m = MemorySystem::new(&cfg);
        m.access(0, 0x3000, 20, AccessClass::Buffer);
        assert_eq!(m.l1_structure_accesses, 0);
        assert_eq!(m.footprint_bytes(), 0);
    }

    #[test]
    fn footprint_counts_unique_lines() {
        let cfg = tiny_config();
        let mut m = MemorySystem::new(&cfg);
        m.access(0, 0x0, 8, AccessClass::Structure);
        m.access(0, 0x10, 8, AccessClass::Structure); // same line
        m.access(1, 0x80, 8, AccessClass::Structure); // next line
        assert_eq!(m.footprint_bytes(), 256);
    }
}
