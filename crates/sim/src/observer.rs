//! The bridge between BVH traversal and the simulated hardware: a
//! [`TraversalObserver`] that charges cycles for every event.

use crate::config::CostModel;
use crate::fasthash::FastSet;
use crate::mem::{AccessClass, MemorySystem};
use crate::stats::SimStats;
use crate::GpuSim;
use grtx_bvh::{FetchKind, PrimTestKind, TraversalObserver};

/// Per-ray state that persists across tracing rounds (used to separate
/// unique from redundant node visits, Fig. 7).
#[derive(Debug, Clone, Default)]
pub struct RayTraceState {
    visited: FastSet<u64>,
}

impl RayTraceState {
    /// Fresh state for a new ray.
    pub fn new() -> Self {
        Self::default()
    }

    /// Number of distinct structure elements this ray has fetched.
    pub fn unique_visits(&self) -> usize {
        self.visited.len()
    }
}

/// Charges cycle and memory costs for one (ray, round) traversal.
///
/// `compute_cycles` accumulates fixed-function/shader work;
/// `stall_cycles` accumulates memory latency. The renderer combines them
/// into warp times (SIMT max over lanes).
#[derive(Debug)]
pub struct SimObserver<'a> {
    mem: &'a mut MemorySystem,
    stats: &'a mut SimStats,
    costs: CostModel,
    shader_fetch_overhead: u64,
    sm: usize,
    ray: &'a mut RayTraceState,
    /// Fixed-function + shader cycles this round.
    pub compute_cycles: u64,
    /// Memory stall cycles this round.
    pub stall_cycles: u64,
}

impl GpuSim {
    /// Creates the observer for one (ray, round) executing on SM `sm`.
    ///
    /// # Panics
    ///
    /// Panics if `sm >= num_sms`.
    pub fn observer<'a>(&'a mut self, sm: usize, ray: &'a mut RayTraceState) -> SimObserver<'a> {
        assert!(sm < self.config.num_sms, "SM index out of range");
        SimObserver {
            mem: &mut self.mem,
            stats: &mut self.stats,
            costs: self.config.costs,
            shader_fetch_overhead: self.config.shader_issued_fetch_overhead,
            sm,
            ray,
            compute_cycles: 0,
            stall_cycles: 0,
        }
    }
}

impl SimObserver<'_> {
    /// Total cycles charged this round.
    pub fn total_cycles(&self) -> u64 {
        self.compute_cycles + self.stall_cycles
    }

    /// Charges shader-side cycles (any-hit sorting, blending, round
    /// overhead) computed by the renderer.
    pub fn charge_shader(&mut self, cycles: u64) {
        self.compute_cycles += cycles;
    }

    /// The cost model in effect (renderers read shader-cost constants
    /// from here).
    pub fn costs(&self) -> &CostModel {
        &self.costs
    }

    /// Records an eviction-buffer entry write and charges its cost.
    pub fn eviction_write(&mut self) {
        self.stats.eviction_writes += 1;
        self.compute_cycles += self.costs.eviction_entry;
    }
}

impl TraversalObserver for SimObserver<'_> {
    fn node_fetch(&mut self, addr: u64, bytes: u64, kind: FetchKind) {
        let latency = self
            .mem
            .access(self.sm, addr, bytes, AccessClass::Structure);
        let first = self.ray.visited.insert(addr);
        self.stats.record_fetch(kind, first, latency);
        self.stall_cycles += latency;
        self.compute_cycles += self.shader_fetch_overhead;
    }

    fn box_tests(&mut self, count: u32) {
        self.stats.box_tests += count as u64;
        // A wide node's boxes are tested in parallel: flat cost per node.
        self.compute_cycles += self.costs.node_visit;
    }

    fn prim_test(&mut self, kind: PrimTestKind) {
        let cost = match kind {
            PrimTestKind::HardwareTriangle => {
                self.stats.triangle_tests += 1;
                self.costs.triangle_test
            }
            PrimTestKind::HardwareSphere => {
                self.stats.sphere_tests += 1;
                self.costs.sphere_test
            }
            PrimTestKind::SoftwareEllipsoid => {
                self.stats.ellipsoid_tests += 1;
                self.costs.software_ellipsoid_test
            }
        };
        self.compute_cycles += cost;
    }

    fn ray_transform(&mut self) {
        self.stats.ray_transforms += 1;
        self.compute_cycles += self.costs.ray_transform;
    }

    fn checkpoint_write(&mut self) {
        self.stats.checkpoint_writes += 1;
        self.compute_cycles += self.costs.checkpoint_write;
    }

    fn checkpoint_read(&mut self) {
        self.stats.checkpoint_reads += 1;
        self.compute_cycles += self.costs.checkpoint_read;
    }

    fn any_hit_invocation(&mut self) {
        self.stats.any_hit_invocations += 1;
        self.compute_cycles += self.costs.any_hit_base;
    }

    fn prefetch_hint(&mut self, addr: u64, bytes: u64) {
        self.mem.prefetch(self.sm, addr, bytes);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::GpuConfig;

    #[test]
    fn fetch_charges_latency_and_dedupes_unique() {
        let mut sim = GpuSim::new(GpuConfig::default());
        let mut ray = RayTraceState::new();
        {
            let mut obs = sim.observer(0, &mut ray);
            obs.node_fetch(0x1000, 224, FetchKind::MonoNode);
            obs.node_fetch(0x1000, 224, FetchKind::MonoNode);
            assert!(obs.stall_cycles > 0);
        }
        assert_eq!(sim.stats.node_fetches_total, 2);
        assert_eq!(sim.stats.node_fetches_unique, 1);
        assert_eq!(ray.unique_visits(), 1);
    }

    #[test]
    fn unique_persists_across_rounds() {
        let mut sim = GpuSim::new(GpuConfig::default());
        let mut ray = RayTraceState::new();
        {
            let mut obs = sim.observer(0, &mut ray);
            obs.node_fetch(0x1000, 224, FetchKind::TlasNode);
        }
        {
            // Second round, same ray: same node is NOT unique.
            let mut obs = sim.observer(0, &mut ray);
            obs.node_fetch(0x1000, 224, FetchKind::TlasNode);
        }
        assert_eq!(sim.stats.node_fetches_total, 2);
        assert_eq!(sim.stats.node_fetches_unique, 1);
    }

    #[test]
    fn different_rays_count_separately() {
        let mut sim = GpuSim::new(GpuConfig::default());
        let mut ray_a = RayTraceState::new();
        let mut ray_b = RayTraceState::new();
        sim.observer(0, &mut ray_a)
            .node_fetch(0x1000, 224, FetchKind::TlasNode);
        sim.observer(0, &mut ray_b)
            .node_fetch(0x1000, 224, FetchKind::TlasNode);
        assert_eq!(sim.stats.node_fetches_unique, 2, "uniqueness is per ray");
    }

    #[test]
    fn software_prim_test_costs_more() {
        let mut sim = GpuSim::new(GpuConfig::default());
        let mut ray = RayTraceState::new();
        let mut obs = sim.observer(0, &mut ray);
        obs.prim_test(PrimTestKind::HardwareTriangle);
        let hw = obs.compute_cycles;
        obs.prim_test(PrimTestKind::SoftwareEllipsoid);
        let sw = obs.compute_cycles - hw;
        assert!(sw > 5 * hw);
    }

    #[test]
    fn amd_config_charges_fetch_issue_overhead() {
        let mut nv = GpuSim::new(GpuConfig::default());
        let mut amd = GpuSim::new(GpuConfig::amd_like());
        let mut ray1 = RayTraceState::new();
        let mut ray2 = RayTraceState::new();
        let nv_cycles = {
            let mut obs = nv.observer(0, &mut ray1);
            obs.node_fetch(0x1000, 224, FetchKind::TlasNode);
            obs.compute_cycles
        };
        let amd_cycles = {
            let mut obs = amd.observer(0, &mut ray2);
            obs.node_fetch(0x1000, 224, FetchKind::TlasNode);
            obs.compute_cycles
        };
        assert!(amd_cycles > nv_cycles);
    }

    #[test]
    fn prefetch_hint_warms_l1() {
        let mut sim = GpuSim::new(GpuConfig::default());
        let mut ray = RayTraceState::new();
        let mut obs = sim.observer(0, &mut ray);
        obs.prefetch_hint(0x4000, 128);
        obs.node_fetch(0x4000, 64, FetchKind::Prim);
        assert_eq!(obs.stall_cycles, 20, "prefetched line must hit L1");
    }
}
