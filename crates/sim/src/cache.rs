//! Set-associative LRU cache model.

use crate::fasthash::FastMap;

const NIL: u16 = u16::MAX;

/// One cache set with exact LRU maintained as an intrusive doubly-linked
/// list over slot indices — all operations are O(1), which matters at
/// the hundreds of millions of simulated accesses per render.
#[derive(Debug, Clone, Default)]
struct CacheSet {
    /// line -> slot index.
    map: FastMap<u64, u16>,
    /// slot -> line address.
    lines: Vec<u64>,
    prev: Vec<u16>,
    next: Vec<u16>,
    /// Most-recently-used slot.
    head: u16,
    /// Least-recently-used slot.
    tail: u16,
}

impl CacheSet {
    fn new() -> Self {
        Self {
            map: FastMap::default(),
            lines: Vec::new(),
            prev: Vec::new(),
            next: Vec::new(),
            head: NIL,
            tail: NIL,
        }
    }

    fn unlink(&mut self, slot: u16) {
        let (p, n) = (self.prev[slot as usize], self.next[slot as usize]);
        if p != NIL {
            self.next[p as usize] = n;
        } else {
            self.head = n;
        }
        if n != NIL {
            self.prev[n as usize] = p;
        } else {
            self.tail = p;
        }
    }

    fn push_front(&mut self, slot: u16) {
        self.prev[slot as usize] = NIL;
        self.next[slot as usize] = self.head;
        if self.head != NIL {
            self.prev[self.head as usize] = slot;
        }
        self.head = slot;
        if self.tail == NIL {
            self.tail = slot;
        }
    }

    /// Touch a resident line; returns `true` on hit.
    fn touch(&mut self, line: u64) -> bool {
        let Some(&slot) = self.map.get(&line) else {
            return false;
        };
        if self.head != slot {
            self.unlink(slot);
            self.push_front(slot);
        }
        true
    }

    /// Install `line` as MRU, evicting the LRU when at `ways` capacity.
    fn insert(&mut self, line: u64, ways: usize) {
        if self.lines.len() < ways {
            let slot = self.lines.len() as u16;
            self.lines.push(line);
            self.prev.push(NIL);
            self.next.push(NIL);
            self.map.insert(line, slot);
            self.push_front(slot);
            return;
        }
        let victim = self.tail;
        debug_assert_ne!(victim, NIL, "full set must have a tail");
        self.unlink(victim);
        let old_line = self.lines[victim as usize];
        self.map.remove(&old_line);
        self.lines[victim as usize] = line;
        self.map.insert(line, victim);
        self.push_front(victim);
    }
}

/// A set-associative cache with exact LRU replacement.
#[derive(Debug, Clone)]
pub struct Cache {
    sets: Vec<CacheSet>,
    set_mask: u64,
    line_shift: u32,
    ways: usize,
    /// Total lookups.
    pub accesses: u64,
    /// Lookups that hit.
    pub hits: u64,
}

impl Cache {
    /// Creates a cache of `capacity_bytes` with `line_bytes` lines and
    /// `ways` associativity. The set count is rounded down to a power of
    /// two (minimum 1).
    ///
    /// # Panics
    ///
    /// Panics if `line_bytes` is not a power of two or capacity is
    /// smaller than one line.
    pub fn new(capacity_bytes: usize, line_bytes: usize, ways: usize) -> Self {
        assert!(
            line_bytes.is_power_of_two(),
            "line size must be a power of two"
        );
        assert!(capacity_bytes >= line_bytes, "cache smaller than a line");
        let num_lines = capacity_bytes / line_bytes;
        let ways = ways.min(num_lines).max(1);
        let num_sets = (num_lines / ways).next_power_of_two().max(1);
        // Rounding up set count would overshoot capacity; round down.
        let num_sets = if num_sets * ways > num_lines {
            num_sets / 2
        } else {
            num_sets
        };
        let num_sets = num_sets.max(1);
        Self {
            sets: vec![CacheSet::new(); num_sets],
            set_mask: num_sets as u64 - 1,
            line_shift: line_bytes.trailing_zeros(),
            ways,
            accesses: 0,
            hits: 0,
        }
    }

    /// Line address (byte address with the offset bits cleared).
    pub fn line_of(&self, addr: u64) -> u64 {
        addr >> self.line_shift
    }

    /// Looks up one byte address; returns `true` on hit. Misses install
    /// the line (evicting LRU if needed).
    pub fn access(&mut self, addr: u64) -> bool {
        self.accesses += 1;
        let line = self.line_of(addr);
        let ways = self.ways;
        let set = &mut self.sets[(line & self.set_mask) as usize];
        if set.touch(line) {
            self.hits += 1;
            return true;
        }
        set.insert(line, ways);
        false
    }

    /// Installs a line without counting an access or charging latency
    /// (prefetch). Returns `true` if the line was newly installed.
    pub fn install(&mut self, addr: u64) -> bool {
        let line = self.line_of(addr);
        let ways = self.ways;
        let set = &mut self.sets[(line & self.set_mask) as usize];
        if set.touch(line) {
            return false;
        }
        set.insert(line, ways);
        true
    }

    /// `true` if the address's line is currently resident (no state
    /// change).
    pub fn contains(&self, addr: u64) -> bool {
        let line = self.line_of(addr);
        self.sets[(line & self.set_mask) as usize]
            .map
            .contains_key(&line)
    }

    /// Hit rate over all accesses so far (0 when never accessed).
    pub fn hit_rate(&self) -> f64 {
        if self.accesses == 0 {
            0.0
        } else {
            self.hits as f64 / self.accesses as f64
        }
    }

    /// Resets counters but keeps contents (for per-phase measurement).
    pub fn reset_counters(&mut self) {
        self.accesses = 0;
        self.hits = 0;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn repeated_access_hits() {
        let mut c = Cache::new(1024, 128, 2);
        assert!(!c.access(0x100));
        assert!(c.access(0x100));
        assert!(c.access(0x17f)); // same line
        assert!(!c.access(0x180)); // next line
    }

    #[test]
    fn lru_evicts_oldest() {
        // 2 lines total capacity, fully associative.
        let mut c = Cache::new(256, 128, 2);
        c.access(0x0);
        c.access(0x80);
        c.access(0x0); // refresh line 0
        c.access(0x100); // evicts 0x80 (LRU)
        assert!(c.contains(0x0));
        assert!(!c.contains(0x80));
        assert!(c.contains(0x100));
    }

    #[test]
    fn hit_rate_counts_correctly() {
        let mut c = Cache::new(1024, 128, 8);
        c.access(0x0);
        c.access(0x0);
        c.access(0x0);
        c.access(0x1000);
        assert_eq!(c.accesses, 4);
        assert_eq!(c.hits, 2);
        assert!((c.hit_rate() - 0.5).abs() < 1e-9);
    }

    #[test]
    fn install_does_not_count_access() {
        let mut c = Cache::new(1024, 128, 8);
        assert!(c.install(0x200));
        assert_eq!(c.accesses, 0);
        assert!(c.access(0x200), "prefetched line must hit");
    }

    #[test]
    fn table1_l1_geometry() {
        // 128 KB / 128 B lines / 256-way = 1024 lines in 4 sets.
        let c = Cache::new(128 * 1024, 128, 256);
        assert_eq!(c.sets.len(), 4);
        assert_eq!(c.ways, 256);
    }

    #[test]
    fn working_set_larger_than_capacity_thrashes() {
        let mut c = Cache::new(1024, 128, 8); // 8 lines
                                              // Stream 64 distinct lines twice: second pass must still miss.
        for round in 0..2 {
            for i in 0..64u64 {
                let hit = c.access(i * 128);
                if round == 1 {
                    assert!(!hit, "line {i} should have been evicted");
                }
            }
        }
    }

    #[test]
    fn small_working_set_fits() {
        let mut c = Cache::new(1024, 128, 8);
        for _ in 0..4 {
            for i in 0..4u64 {
                c.access(i * 128);
            }
        }
        assert!(c.hit_rate() > 0.7);
    }

    #[test]
    fn lru_order_exact_under_mixed_ops() {
        // 4-line fully-associative set; verify exact LRU with touches.
        let mut c = Cache::new(512, 128, 4);
        for a in [0u64, 1, 2, 3] {
            c.access(a * 128);
        }
        c.access(0); // order (MRU->LRU): 0,3,2,1
        c.access(2 * 128); // order: 2,0,3,1
        c.access(4 * 128); // evicts 1
        assert!(!c.contains(128));
        assert!(c.contains(0));
        assert!(c.contains(2 * 128));
        assert!(c.contains(3 * 128));
        assert!(c.contains(4 * 128));
    }
}
