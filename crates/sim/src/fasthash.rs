//! A fast non-cryptographic hasher for the simulator's hot paths.
//!
//! The cache model and per-ray visited sets perform hundreds of millions
//! of lookups per simulated render; SipHash (std's default) dominates
//! wall time there. Addresses are already well-distributed, so an
//! Fx-style multiplicative hash is sufficient.

// grtx-allow(deterministic-collections): this module IS the sanctioned
// wrapper — the raw std types are re-exported below under a fixed-seed
// BuildHasherDefault, so hashing is identical on every run.
use std::collections::{HashMap, HashSet};
use std::hash::{BuildHasherDefault, Hasher};

/// Multiplicative hasher for integer keys (FxHash-style).
#[derive(Debug, Clone, Copy, Default)]
pub struct FxHasher(u64);

const SEED: u64 = 0x517c_c1b7_2722_0a95;

impl Hasher for FxHasher {
    fn finish(&self) -> u64 {
        self.0
    }

    fn write(&mut self, bytes: &[u8]) {
        for &b in bytes {
            self.0 = (self.0 ^ b as u64).wrapping_mul(SEED);
        }
    }

    fn write_u64(&mut self, n: u64) {
        self.0 = (self.0 ^ n).wrapping_mul(SEED);
    }

    fn write_u32(&mut self, n: u32) {
        self.write_u64(n as u64);
    }

    fn write_usize(&mut self, n: usize) {
        self.write_u64(n as u64);
    }
}

/// `HashMap` keyed by integers with the fast hasher.
// grtx-allow(deterministic-collections): the deterministic alias itself.
pub type FastMap<K, V> = HashMap<K, V, BuildHasherDefault<FxHasher>>;
/// `HashSet` of integers with the fast hasher.
// grtx-allow(deterministic-collections): the deterministic alias itself.
pub type FastSet<K> = HashSet<K, BuildHasherDefault<FxHasher>>;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn map_round_trips() {
        let mut m: FastMap<u64, u32> = FastMap::default();
        for i in 0..1000u64 {
            m.insert(i * 128, i as u32);
        }
        for i in 0..1000u64 {
            assert_eq!(m.get(&(i * 128)), Some(&(i as u32)));
        }
        assert_eq!(m.len(), 1000);
    }

    #[test]
    fn distinct_keys_distinct_hashes() {
        use std::hash::Hash;
        let hash = |k: u64| {
            let mut h = FxHasher::default();
            k.hash(&mut h);
            h.finish()
        };
        // Sequential line addresses must not collide.
        let hashes: FastSet<u64> = (0..10_000u64).map(|i| hash(i * 128)).collect();
        assert_eq!(hashes.len(), 10_000);
    }
}
