//! Table I configuration and the fixed-function cost model.

/// GPU architecture parameters (Table I of the paper) plus the
/// cost-model constants the in-house RT simulator needs.
#[derive(Debug, Clone, PartialEq)]
pub struct GpuConfig {
    /// Streaming multiprocessor count (Table I: 8).
    pub num_sms: usize,
    /// Core clock in MHz (Table I: 1365).
    pub clock_mhz: f64,
    /// SIMT lanes per SM (Table I: 128, 4 warp schedulers).
    pub simt_lanes: usize,
    /// Threads per warp.
    pub warp_size: usize,
    /// RT-unit warp buffer entries per SM (Table I: 8).
    pub warp_buffer_size: usize,
    /// L1 data cache capacity in bytes (Table I: 128 KB).
    pub l1_bytes: usize,
    /// Cache line size in bytes (Table I: 128 B).
    pub line_bytes: usize,
    /// L1 associativity (Table I: 256-way LRU).
    pub l1_ways: usize,
    /// L1 hit latency in cycles (Table I: 20).
    pub l1_latency: u64,
    /// Unified L2 capacity in bytes (Table I: 4 MB).
    pub l2_bytes: usize,
    /// L2 associativity (Table I: 16-way LRU).
    pub l2_ways: usize,
    /// L2 hit latency in cycles (Table I: 165).
    pub l2_latency: u64,
    /// DRAM access latency in core cycles (derived from the 3500 MHz
    /// memory clock and typical GDDR7 round trips).
    pub dram_latency: u64,
    /// Install intersected siblings into L1 on a leaf-child demand miss
    /// (the paper's prefetch calibration, Section V-A).
    pub sibling_prefetch: bool,
    /// Extra cycles the shader core spends issuing each node fetch when
    /// the RT accelerator does not traverse autonomously (AMD-style,
    /// Fig. 24). Zero for NVIDIA-style end-to-end traversal.
    pub shader_issued_fetch_overhead: u64,
    /// Fixed-function and shader costs.
    pub costs: CostModel,
}

impl Default for GpuConfig {
    fn default() -> Self {
        Self {
            num_sms: 8,
            clock_mhz: 1365.0,
            simt_lanes: 128,
            warp_size: 32,
            warp_buffer_size: 8,
            l1_bytes: 128 * 1024,
            line_bytes: 128,
            l1_ways: 256,
            l1_latency: 20,
            l2_bytes: 4 * 1024 * 1024,
            l2_ways: 16,
            l2_latency: 165,
            dram_latency: 420,
            sibling_prefetch: true,
            shader_issued_fetch_overhead: 0,
            costs: CostModel::default(),
        }
    }
}

impl GpuConfig {
    /// An AMD-like RT accelerator: intersection tests are offloaded but
    /// node fetches are issued by the shader core (Section VI,
    /// "Cross-Vendor Applicability"), adding per-fetch instruction
    /// overhead.
    pub fn amd_like() -> Self {
        Self {
            shader_issued_fetch_overhead: 24,
            ..Self::default()
        }
    }

    /// Scales cache capacities down by the scene-scale divisor.
    ///
    /// The evaluation scenes are synthesized at `1/divisor` of the
    /// paper's Gaussian counts (DESIGN.md §2). Keeping Table I cache
    /// sizes against a 20× smaller BVH would overstate cache-ability —
    /// a 10 MB TLAS almost fits in the 4 MB L2, which the paper's
    /// 208 MB+ structures never do. Scaling L1/L2 by the same divisor
    /// preserves the working-set-to-cache ratio, which is what the
    /// locality results (Figs. 15–17) actually depend on. Latencies and
    /// line size are unchanged.
    pub fn with_cache_scale(mut self, divisor: usize) -> Self {
        let divisor = divisor.max(1);
        let min_l1 = self.line_bytes * 8;
        let min_l2 = self.line_bytes * 64;
        self.l1_bytes = (self.l1_bytes / divisor).max(min_l1);
        self.l2_bytes = (self.l2_bytes / divisor).max(min_l2);
        self
    }

    /// Maximum resident warps across the whole GPU (the RT units'
    /// aggregate warp-buffer capacity).
    pub fn resident_warps(&self) -> usize {
        self.num_sms * self.warp_buffer_size
    }

    /// Converts simulated cycles into milliseconds at the configured
    /// core clock — the bridge from the profiler's virtual timebase
    /// (integer cycles) to human-readable time columns.
    pub fn cycles_to_ms(&self, cycles: u64) -> f64 {
        cycles as f64 / (self.clock_mhz * 1_000.0)
    }

    /// The configuration of one SM's *shard* of the GPU: a single SM
    /// with its private L1 over a **private** `1/num_sms`-capacity L2.
    ///
    /// This is a deliberate modeling tradeoff, not a claim about real
    /// hardware (real address-interleaved L2 slices are shared by every
    /// SM). Privatizing the slice removes cross-SM L2 reuse — an SM no
    /// longer inherits lines a neighbor fetched — so multi-SM L2/DRAM
    /// traffic runs somewhat higher than a shared-L2 model would report.
    /// In exchange, a shard never observes another SM's accesses, making
    /// per-SM simulation order-independent: the property that lets
    /// [`grtx_render`-style engines](crate) fan SMs out across host
    /// threads with bit-identical cycle counts at any thread count.
    /// For this workload (every SM streams the same BVH) the capacity
    /// ratio per SM is preserved, and the paper's qualitative memory
    /// phenomena (Figs. 15–17 trends) survive — the integration suite
    /// asserts them. Restoring shared-slice semantics deterministically
    /// (address-owned slices with cross-worker replay) is on the
    /// roadmap.
    pub fn sm_slice(&self) -> GpuConfig {
        let mut slice = self.clone();
        slice.num_sms = 1;
        slice.l2_bytes = (self.l2_bytes / self.num_sms.max(1)).max(self.line_bytes * 8);
        slice
    }
}

/// Per-operation cycle costs charged by [`crate::SimObserver`] and the
/// renderer's shader-side accounting.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct CostModel {
    /// RT-unit issue + ray–box evaluation for one wide node (up to eight
    /// boxes tested in parallel).
    pub node_visit: u64,
    /// Hardware ray–triangle test.
    pub triangle_test: u64,
    /// Hardware ray–sphere test (Blackwell-class; the paper observes its
    /// throughput trails the triangle units, Fig. 22 discussion).
    pub sphere_test: u64,
    /// Software custom-primitive (ellipsoid) intersection shader on the
    /// SM — the reason custom primitives lose to meshes in Fig. 5a.
    pub software_ellipsoid_test: u64,
    /// Instance ray transform (fixed-function).
    pub ray_transform: u64,
    /// Any-hit shader invocation overhead (SM warp launch + payload
    /// access).
    pub any_hit_base: u64,
    /// Per-entry insertion-sort step inside the any-hit shader.
    pub kbuffer_sort_per_entry: u64,
    /// Per-Gaussian alpha blend in the raygen shader (SH evaluation +
    /// response + accumulation).
    pub blend_per_gaussian: u64,
    /// Per-round `traceRayEXT` launch + intra-warp synchronization
    /// overhead (the straggler cost that makes very small k lose,
    /// Fig. 18).
    pub round_overhead: u64,
    /// Checkpoint-buffer append (global memory, write-combined).
    pub checkpoint_write: u64,
    /// Checkpoint-buffer read at round start.
    pub checkpoint_read: u64,
    /// Eviction-buffer append / k-buffer reseed per entry.
    pub eviction_entry: u64,
}

impl Default for CostModel {
    fn default() -> Self {
        Self {
            node_visit: 4,
            triangle_test: 4,
            sphere_test: 9,
            software_ellipsoid_test: 56,
            ray_transform: 5,
            any_hit_base: 14,
            kbuffer_sort_per_entry: 2,
            blend_per_gaussian: 40,
            round_overhead: 260,
            checkpoint_write: 4,
            checkpoint_read: 12,
            eviction_entry: 6,
        }
    }
}

/// Table III: per-RT-core storage for the checkpointing hardware.
///
/// `(1-bit replay flag + 2 B source offset + 2 B destination offset)` per
/// thread, times `warp_size` threads and `warp_buffer` warps, plus the
/// per-core source/destination base addresses and max size register.
/// With the default configuration this is 1.05 KB, matching Table III.
pub fn checkpoint_hw_cost_bytes(warp_size: usize, warp_buffer: usize) -> f64 {
    let per_thread_bits = 1 + 16 + 16;
    let thread_bits = per_thread_bits * warp_size * warp_buffer;
    let fixed_bytes = 8 + 8 + 2; // src address + dst address + max size
    thread_bits as f64 / 8.0 + fixed_bytes as f64
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_matches_table1() {
        let c = GpuConfig::default();
        assert_eq!(c.num_sms, 8);
        assert_eq!(c.l1_bytes, 128 * 1024);
        assert_eq!(c.line_bytes, 128);
        assert_eq!(c.l2_bytes, 4 * 1024 * 1024);
        assert_eq!(c.warp_buffer_size, 8);
        assert_eq!(c.resident_warps(), 64);
    }

    #[test]
    fn table3_cost_is_1_05_kb() {
        let bytes = checkpoint_hw_cost_bytes(32, 8);
        let kb = bytes / 1024.0;
        assert!((kb - 1.05).abs() < 0.02, "got {kb:.3} KB");
    }

    #[test]
    fn amd_variant_adds_fetch_overhead() {
        assert_eq!(GpuConfig::default().shader_issued_fetch_overhead, 0);
        assert!(GpuConfig::amd_like().shader_issued_fetch_overhead > 0);
    }

    #[test]
    fn software_test_is_far_slower_than_hardware() {
        let m = CostModel::default();
        assert!(m.software_ellipsoid_test > 5 * m.triangle_test);
        assert!(m.sphere_test >= m.triangle_test);
    }
}
