//! Warp scheduling and the makespan model.
//!
//! Warps are assigned to SMs round-robin (as the rasterizer-style tile
//! scheduler of Vulkan-Sim does for raygen launches). Within an SM, the
//! RT unit keeps up to `warp_buffer_size` warps in flight, overlapping
//! their memory stalls; we model that as an overlap factor on the sum of
//! warp times, bounded by the warp-buffer depth. The render time is the
//! slowest SM's time — this preserves both the latency-sensitivity the
//! paper measures (traversal is "memory latency-bound") and the
//! load-imbalance effects of uneven warps.

use crate::config::GpuConfig;

/// Assigns warps to SMs and converts per-warp cycles into a makespan.
#[derive(Debug, Clone)]
pub struct WarpSchedule {
    num_sms: usize,
    warp_buffer: usize,
    /// Fraction of memory stalls the warp buffer actually hides
    /// (traversal stays latency-bound, so overlap is partial).
    overlap_efficiency: f64,
}

impl WarpSchedule {
    /// Builds the schedule model from the GPU configuration.
    pub fn new(config: &GpuConfig) -> Self {
        Self {
            num_sms: config.num_sms,
            warp_buffer: config.warp_buffer_size,
            overlap_efficiency: 0.7,
        }
    }

    /// SM that warp `w` executes on (round-robin).
    pub fn sm_of_warp(&self, warp: usize) -> usize {
        warp % self.num_sms
    }

    /// SM that warp `w` *of one launch* executes on.
    ///
    /// Every raygen launch restarts the tile scheduler's round-robin at
    /// SM 0, so a warp's SM depends only on its index within its own
    /// launch — never on how many warps earlier launches in a batch
    /// issued. This is what makes a batched launch bit-identical to the
    /// same launch running standalone.
    pub fn sm_of_launch_warp(&self, warp_in_launch: usize) -> usize {
        self.sm_of_warp(warp_in_launch)
    }

    /// Base offsets of each launch's warps inside one flat per-batch
    /// warp-time vector: `bases[l]..bases[l + 1]` are launch `l`'s
    /// warps, and `bases[counts.len()]` is the batch total.
    ///
    /// The bases only address storage — SM assignment stays per-launch
    /// ([`Self::sm_of_launch_warp`]), so the round-robin restarts at
    /// every base.
    ///
    /// Kept as public API for drivers that store a whole batch's warp
    /// times flat; the render engine itself merges each launch into a
    /// launch-local vector, which holds identical values.
    pub fn launch_warp_bases(warp_counts: &[usize]) -> Vec<usize> {
        let mut bases = Vec::with_capacity(warp_counts.len() + 1);
        let mut total = 0usize;
        bases.push(0);
        for &count in warp_counts {
            total += count;
            bases.push(total);
        }
        bases
    }

    /// Converts per-warp `(compute, stall)` cycle pairs into total render
    /// cycles (the slowest SM).
    pub fn makespan(&self, warp_cycles: &[(u64, u64)]) -> u64 {
        self.makespan_from(0, warp_cycles)
    }

    /// Like [`makespan`](Self::makespan) for a slice of warps whose
    /// global indices start at `warp_base` — so a sub-range of a launch
    /// (e.g. the secondary-ray warps, which continue the round-robin
    /// where the primary warps left off) is grouped onto the same SMs it
    /// was simulated on.
    pub fn makespan_from(&self, warp_base: usize, warp_cycles: &[(u64, u64)]) -> u64 {
        if warp_cycles.is_empty() {
            return 0;
        }
        let mut sm_compute = vec![0u64; self.num_sms];
        let mut sm_stall = vec![0u64; self.num_sms];
        let mut sm_warps = vec![0usize; self.num_sms];
        for (w, &(compute, stall)) in warp_cycles.iter().enumerate() {
            let sm = self.sm_of_warp(warp_base + w);
            sm_compute[sm] += compute;
            sm_stall[sm] += stall;
            sm_warps[sm] += 1;
        }
        let mut worst = 0u64;
        for sm in 0..self.num_sms {
            if sm_warps[sm] == 0 {
                continue;
            }
            // Up to warp_buffer warps overlap; the hidden share of the
            // stall time shrinks by the effective concurrency.
            let concurrency = self.warp_buffer.min(sm_warps[sm]) as f64;
            let hidden = 1.0 + (concurrency - 1.0) * self.overlap_efficiency;
            let time = sm_compute[sm] as f64 + sm_stall[sm] as f64 / hidden;
            worst = worst.max(time.ceil() as u64);
        }
        worst
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn schedule() -> WarpSchedule {
        WarpSchedule::new(&GpuConfig::default())
    }

    #[test]
    fn empty_workload_is_zero() {
        assert_eq!(schedule().makespan(&[]), 0);
    }

    #[test]
    fn single_warp_pays_full_time() {
        let s = schedule();
        assert_eq!(s.makespan(&[(1000, 0)]), 1000);
        assert_eq!(s.makespan(&[(0, 1000)]), 1000);
    }

    #[test]
    fn makespan_from_matches_global_grouping() {
        let s = schedule();
        let mut warps: Vec<(u64, u64)> = (0..20).map(|_| (100, 50)).collect();
        warps[9] = (50_000, 0);
        warps[17] = (40_000, 0);
        // Warps 9 and 17 share an SM class in any uniform round-robin,
        // shifted or not — `makespan_from` documents the global indexing
        // and stays correct if the policy ever becomes non-uniform.
        assert_eq!(s.makespan_from(9, &warps[9..]), s.makespan(&warps[9..]));
        assert!(s.makespan_from(9, &warps[9..]) >= 90_000);
        assert!(s.makespan_from(9, &warps[9..]) <= s.makespan(&warps));
    }

    #[test]
    fn launch_warps_restart_the_round_robin() {
        let s = schedule();
        // Warp 0 of any launch lands on SM 0, regardless of batch
        // position — the per-launch index is the only input.
        for w in 0..20 {
            assert_eq!(s.sm_of_launch_warp(w), s.sm_of_warp(w));
        }
        assert_eq!(s.sm_of_launch_warp(0), 0);
    }

    #[test]
    fn launch_warp_bases_are_prefix_sums() {
        assert_eq!(WarpSchedule::launch_warp_bases(&[]), vec![0]);
        assert_eq!(
            WarpSchedule::launch_warp_bases(&[3, 0, 5]),
            vec![0, 3, 3, 8]
        );
    }

    /// A batch of empty launches still produces well-formed bases: one
    /// per launch plus the zero total, every slice empty.
    #[test]
    fn zero_warp_launches_have_empty_slices() {
        let bases = WarpSchedule::launch_warp_bases(&[0, 0, 0]);
        assert_eq!(bases, vec![0, 0, 0, 0]);
        for launch in 0..3 {
            assert_eq!(bases[launch], bases[launch + 1], "launch {launch} is empty");
        }
        // An empty launch's makespan is zero at its own base.
        let s = schedule();
        assert_eq!(s.makespan_from(bases[1], &[]), 0);
    }

    /// `makespan_from` at the final base — the position one past the
    /// batch's last warp, where `launch_warp_bases` ends — reduces an
    /// empty tail to zero cycles at any base offset.
    #[test]
    fn makespan_from_the_final_base_is_zero() {
        let s = schedule();
        let counts = [3usize, 0, 5];
        let bases = WarpSchedule::launch_warp_bases(&counts);
        let total = *bases.last().unwrap();
        assert_eq!(total, 8);
        assert_eq!(s.makespan_from(total, &[]), 0);
        // A single warp appended at the final base lands on the SM the
        // round-robin prescribes for index `total`, and pays full time.
        assert_eq!(s.makespan_from(total, &[(700, 0)]), 700);
        assert_eq!(s.sm_of_warp(total), total % GpuConfig::default().num_sms);
    }

    #[test]
    fn round_robin_covers_all_sms() {
        let s = schedule();
        let sms: crate::fasthash::FastSet<usize> = (0..16).map(|w| s.sm_of_warp(w)).collect();
        assert_eq!(sms.len(), 8);
    }

    #[test]
    fn stalls_overlap_but_compute_serializes() {
        let s = schedule();
        // 8 identical warps all landing on different SMs: same as one.
        let even: Vec<(u64, u64)> = (0..8).map(|_| (100, 1000)).collect();
        let t_even = s.makespan(&even);
        assert_eq!(t_even, 1100);
        // 64 warps = 8 per SM, warp buffer 8: stalls overlap partially.
        let many: Vec<(u64, u64)> = (0..64).map(|_| (100, 1000)).collect();
        let t_many = s.makespan(&many);
        assert!(t_many < 8 * 1100, "stall overlap must help: {t_many}");
        assert!(t_many > 1100, "but not eliminate time: {t_many}");
        assert!(t_many >= 800, "compute fully serializes: {t_many}");
    }

    #[test]
    fn lower_latency_means_lower_makespan() {
        let s = schedule();
        let slow: Vec<(u64, u64)> = (0..64).map(|_| (100, 2000)).collect();
        let fast: Vec<(u64, u64)> = (0..64).map(|_| (100, 500)).collect();
        assert!(s.makespan(&fast) < s.makespan(&slow));
    }

    #[test]
    fn imbalance_hurts() {
        let s = schedule();
        // One giant warp dominates.
        let mut warps: Vec<(u64, u64)> = (0..64).map(|_| (10, 10)).collect();
        warps[0] = (100_000, 0);
        assert!(s.makespan(&warps) >= 100_000);
    }
}
