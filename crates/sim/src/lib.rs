#![forbid(unsafe_code)]

//! Cycle-level GPU model for Gaussian ray tracing — the stand-in for
//! Vulkan-Sim plus the paper's in-house RT simulator.
//!
//! The paper evaluates GRTX on "Vulkan-Sim, a cycle-level graphics
//! simulator ... alongside an in-house cycle-level simulator that models
//! the ray tracing behavior with any-hit shaders" (Section V-A), with the
//! GPU configuration of Table I. This crate reproduces that methodology
//! at the architecture level:
//!
//! * [`config`] — Table I parameters (8 SMs at 1365 MHz, 128 KB L1D with
//!   128 B lines, 4 MB unified L2, one RT unit per SM with an 8-entry
//!   warp buffer) plus the fixed-function cost model and an AMD-like
//!   variant (shader-core node fetches, Fig. 24);
//! * [`cache`] / [`mem`] — set-associative LRU caches over the virtual
//!   addresses `grtx-bvh` assigns to structure elements, with the
//!   sibling-prefetch calibration the paper describes;
//! * [`observer`] — a [`grtx_bvh::TraversalObserver`] implementation
//!   that charges cycles and memory latency for every traversal event
//!   (node fetch, box/primitive test, ray transform, checkpoint
//!   read/write) and tracks per-ray visited-node sets for the Fig. 7
//!   unique-vs-total analysis;
//! * [`stats`] — the counter set every experiment reads: node fetches,
//!   unique visits, L1 hit rate, L2 accesses, average fetch latency,
//!   checkpoint/eviction buffer occupancy, and cycle totals;
//! * [`schedule`] — warp-to-SM assignment and the makespan model that
//!   converts per-warp cycle counts into render time.
//!
//! What "cycle-level" means here (and in DESIGN.md §6): per-ray traversal
//! charges a latency for every memory access through the modeled cache
//! hierarchy and a fixed-function cost for every intersection/transform;
//! warps execute in SIMT lockstep (a warp's round time is the maximum
//! over its rays); SMs overlap warps up to the warp-buffer depth. This
//! reproduces the architecture-level effects the paper measures without
//! modeling pipelines at RTL granularity.

pub mod cache;
pub mod config;
pub mod fasthash;
pub mod mem;
pub mod observer;
pub mod schedule;
pub mod stats;

pub use cache::Cache;
pub use config::{checkpoint_hw_cost_bytes, CostModel, GpuConfig};
pub use mem::{AccessClass, MemorySystem};
pub use observer::{RayTraceState, SimObserver};
pub use schedule::WarpSchedule;
pub use stats::SimStats;

/// A complete simulated GPU: configuration, memory hierarchy, and
/// statistics. The renderer drives it one (ray, round) at a time through
/// [`SimObserver`]s.
#[derive(Debug)]
pub struct GpuSim {
    /// Architecture parameters and cost model.
    pub config: GpuConfig,
    /// L1/L2/DRAM model.
    pub mem: MemorySystem,
    /// Global counters.
    pub stats: SimStats,
}

impl GpuSim {
    /// Creates a simulator for the given configuration.
    pub fn new(config: GpuConfig) -> Self {
        let mem = MemorySystem::new(&config);
        Self {
            config,
            mem,
            stats: SimStats::default(),
        }
    }

    /// Creates the simulator for one SM's shard of this configuration
    /// (see [`GpuConfig::sm_slice`]): a private L1 over an L2 slice.
    pub fn sm_shard(config: &GpuConfig) -> Self {
        Self::new(config.sm_slice())
    }

    /// Merges another shard's statistics and memory-traffic counters
    /// into this simulator (cache contents are not merged).
    ///
    /// Folding every shard of a render into one `GpuSim` — in any order —
    /// yields the same totals, which is what makes the parallel render
    /// engine's reports independent of thread count.
    pub fn absorb(&mut self, other: &GpuSim) {
        self.stats.merge(&other.stats);
        self.mem.absorb_counters(&other.mem);
    }

    /// Converts accumulated cycles into milliseconds at the configured
    /// core clock (see [`GpuConfig::cycles_to_ms`]).
    pub fn cycles_to_ms(&self, cycles: u64) -> f64 {
        self.config.cycles_to_ms(cycles)
    }
}
