//! Global simulation counters — the quantities every figure reads.

use grtx_bvh::FetchKind;

/// Aggregate statistics for one simulated render.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct SimStats {
    /// Total structure-element fetches (Fig. 14).
    pub node_fetches_total: u64,
    /// First-time-per-ray structure fetches (Fig. 7 "Unique").
    pub node_fetches_unique: u64,
    /// Interior-node share of total fetches (Fig. 7 split).
    pub internal_fetches_total: u64,
    /// Interior-node share of unique fetches.
    pub internal_fetches_unique: u64,
    /// Sum of fetch latencies in cycles (Fig. 15 numerator).
    pub fetch_latency_cycles: u64,
    /// Ray–box tests executed.
    pub box_tests: u64,
    /// Ray–triangle tests executed.
    pub triangle_tests: u64,
    /// Ray–sphere tests executed.
    pub sphere_tests: u64,
    /// Software ellipsoid tests executed.
    pub ellipsoid_tests: u64,
    /// Instance ray transforms executed.
    pub ray_transforms: u64,
    /// Any-hit shader invocations.
    pub any_hit_invocations: u64,
    /// Checkpoint entries written (Fig. 20 sizing input).
    pub checkpoint_writes: u64,
    /// Checkpoint entries read back.
    pub checkpoint_reads: u64,
    /// Eviction-buffer entries written.
    pub eviction_writes: u64,
    /// Peak per-ray checkpoint-buffer entries observed.
    pub peak_checkpoint_entries: u64,
    /// Peak per-ray eviction-buffer entries observed.
    pub peak_eviction_entries: u64,
    /// Tracing rounds executed across all rays.
    pub rounds: u64,
    /// Rays fully traced.
    pub rays: u64,
    /// Gaussians blended across all rays.
    pub blended_gaussians: u64,
}

impl SimStats {
    /// Records one structure fetch.
    pub fn record_fetch(&mut self, kind: FetchKind, first_visit: bool, latency: u64) {
        self.node_fetches_total += 1;
        self.fetch_latency_cycles += latency;
        if kind.is_internal() {
            self.internal_fetches_total += 1;
        }
        if first_visit {
            self.node_fetches_unique += 1;
            if kind.is_internal() {
                self.internal_fetches_unique += 1;
            }
        }
    }

    /// Average node-fetch latency in cycles (Fig. 15).
    pub fn avg_fetch_latency(&self) -> f64 {
        if self.node_fetches_total == 0 {
            0.0
        } else {
            self.fetch_latency_cycles as f64 / self.node_fetches_total as f64
        }
    }

    /// Merges another shard's counters into this one.
    ///
    /// Additive counters sum; peak-occupancy gauges take the maximum.
    /// Merging is commutative and associative, so any partition of a
    /// render into shards (per SM, per worker thread) folds back to the
    /// same totals — the invariant the parallel render engine's
    /// bit-identity guarantee rests on.
    pub fn merge(&mut self, other: &SimStats) {
        // Exhaustive destructuring (no `..`): adding a counter without
        // deciding how it merges is a compile error, not a silent
        // undercount in every multi-SM render.
        let SimStats {
            node_fetches_total,
            node_fetches_unique,
            internal_fetches_total,
            internal_fetches_unique,
            fetch_latency_cycles,
            box_tests,
            triangle_tests,
            sphere_tests,
            ellipsoid_tests,
            ray_transforms,
            any_hit_invocations,
            checkpoint_writes,
            checkpoint_reads,
            eviction_writes,
            peak_checkpoint_entries,
            peak_eviction_entries,
            rounds,
            rays,
            blended_gaussians,
        } = *other;
        self.node_fetches_total += node_fetches_total;
        self.node_fetches_unique += node_fetches_unique;
        self.internal_fetches_total += internal_fetches_total;
        self.internal_fetches_unique += internal_fetches_unique;
        self.fetch_latency_cycles += fetch_latency_cycles;
        self.box_tests += box_tests;
        self.triangle_tests += triangle_tests;
        self.sphere_tests += sphere_tests;
        self.ellipsoid_tests += ellipsoid_tests;
        self.ray_transforms += ray_transforms;
        self.any_hit_invocations += any_hit_invocations;
        self.checkpoint_writes += checkpoint_writes;
        self.checkpoint_reads += checkpoint_reads;
        self.eviction_writes += eviction_writes;
        self.peak_checkpoint_entries = self.peak_checkpoint_entries.max(peak_checkpoint_entries);
        self.peak_eviction_entries = self.peak_eviction_entries.max(peak_eviction_entries);
        self.rounds += rounds;
        self.rays += rays;
        self.blended_gaussians += blended_gaussians;
    }

    /// Redundancy factor: total / unique fetches (Fig. 7's gap).
    pub fn redundancy(&self) -> f64 {
        if self.node_fetches_unique == 0 {
            1.0
        } else {
            self.node_fetches_total as f64 / self.node_fetches_unique as f64
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn record_fetch_accumulates() {
        let mut s = SimStats::default();
        s.record_fetch(FetchKind::MonoNode, true, 20);
        s.record_fetch(FetchKind::MonoNode, false, 185);
        s.record_fetch(FetchKind::Prim, true, 20);
        assert_eq!(s.node_fetches_total, 3);
        assert_eq!(s.node_fetches_unique, 2);
        assert_eq!(s.internal_fetches_total, 2);
        assert_eq!(s.internal_fetches_unique, 1);
        assert!((s.avg_fetch_latency() - 75.0).abs() < 1e-9);
    }

    #[test]
    fn redundancy_is_total_over_unique() {
        let mut s = SimStats::default();
        for i in 0..10 {
            s.record_fetch(FetchKind::TlasNode, i < 4, 20);
        }
        assert!((s.redundancy() - 2.5).abs() < 1e-9);
    }

    #[test]
    fn empty_stats_have_safe_defaults() {
        let s = SimStats::default();
        assert_eq!(s.avg_fetch_latency(), 0.0);
        assert_eq!(s.redundancy(), 1.0);
    }
}
