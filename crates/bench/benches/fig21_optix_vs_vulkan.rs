//! Fig. 21: OptiX-style payload-register k-buffers vs Vulkan-style
//! global-memory SoA k-buffers — the two implementations should perform
//! similarly (which is what justifies evaluating GRTX in Vulkan).

use grtx::{PipelineVariant, RunOptions};
use grtx_bench::{banner, evaluation_scenes};
use grtx_render::tracer::KBufferStorage;

fn main() {
    banner("Fig. 21: OptiX vs Vulkan implementation parity", "Fig. 21");
    let scenes = evaluation_scenes();
    // OptiX payload registers cap k at 16 (32 payload slots / 2 per
    // entry), so both run k = 16.
    let optix = RunOptions {
        k: 16,
        storage: KBufferStorage::PayloadRegisters,
        ..Default::default()
    };
    let vulkan = RunOptions {
        k: 16,
        storage: KBufferStorage::GlobalSoA,
        ..Default::default()
    };
    let baseline = PipelineVariant::baseline();

    println!(
        "\n{:<11} {:>11} {:>11} {:>8}",
        "scene", "OptiX(ms)", "Vulkan(ms)", "ratio"
    );
    for setup in &scenes {
        let o = setup.run(&baseline, &optix);
        let v = setup.run(&baseline, &vulkan);
        println!(
            "{:<11} {:>11.3} {:>11.3} {:>8.3}",
            setup.kind.name(),
            o.report.time_ms,
            v.report.time_ms,
            v.report.time_ms / o.report.time_ms
        );
    }
    println!("(paper: the Vulkan implementation performs similarly to OptiX)");
}
