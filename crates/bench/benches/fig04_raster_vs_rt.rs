//! Fig. 4: (a) 3DGS rasterization vs 3DGRT ray tracing render time;
//! (b) single-round execution time isolating traversal / +sorting /
//! +blending.

use grtx::{PipelineVariant, RunOptions};
use grtx_bench::{banner, evaluation_scenes, geomean};
use grtx_render::{render_rasterized, RasterConfig};
use grtx_sim::GpuConfig;

fn main() {
    banner(
        "Fig. 4: rasterization (3DGS) vs ray tracing (3DGRT)",
        "Fig. 4a and Fig. 4b",
    );
    let scenes = evaluation_scenes();
    let baseline = PipelineVariant::baseline();

    println!("\nFig. 4a — render time (paper: 3DGRT ~3.04x slower on average):");
    println!(
        "{:<11} {:>12} {:>12} {:>8}",
        "scene", "3DGS(ms)", "3DGRT(ms)", "ratio"
    );
    let mut ratios = Vec::new();
    let mut rt_reports = Vec::new();
    for setup in &scenes {
        let raster = render_rasterized(
            &setup.scene,
            &setup.camera,
            &RasterConfig::default(),
            &GpuConfig::default().with_cache_scale(setup.divisor),
        );
        let rt = setup.run(&baseline, &RunOptions::default());
        let ratio = rt.report.time_ms / raster.time_ms;
        ratios.push(ratio);
        println!(
            "{:<11} {:>12.3} {:>12.3} {:>8.2}",
            setup.kind.name(),
            raster.time_ms,
            rt.report.time_ms,
            ratio
        );
        rt_reports.push(rt);
    }
    println!("geomean 3DGRT/3DGS ratio: {:.2}x", geomean(&ratios));

    println!("\nFig. 4b — single tracing round, cumulative phases (paper: traversal dominates):");
    println!(
        "{:<11} {:>12} {:>16} {:>22}",
        "scene", "traversal", "+sorting", "+sorting+blending"
    );
    for setup in &scenes {
        let traversal = setup.run(
            &baseline,
            &RunOptions {
                charge_sorting: false,
                charge_blending: false,
                ..Default::default()
            },
        );
        let sorting = setup.run(
            &baseline,
            &RunOptions {
                charge_sorting: true,
                charge_blending: false,
                ..Default::default()
            },
        );
        let full = setup.run(&baseline, &RunOptions::default());
        // Per-round time: divide by the average number of rounds.
        let rounds =
            (full.report.stats.rounds as f64 / full.report.stats.rays.max(1) as f64).max(1.0);
        println!(
            "{:<11} {:>12.3} {:>16.3} {:>22.3}",
            setup.kind.name(),
            traversal.report.time_ms / rounds,
            sorting.report.time_ms / rounds,
            full.report.time_ms / rounds
        );
    }
}
