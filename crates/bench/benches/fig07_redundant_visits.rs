//! Fig. 7: unique vs total visited nodes (internal/leaf split) across
//! multi-round traversal at k = 16 — the redundancy GRTX-HW eliminates.

use grtx::{PipelineVariant, RunOptions};
use grtx_bench::{banner, evaluation_scenes};

fn main() {
    banner(
        "Fig. 7: unique vs total node visits (baseline, k = 16)",
        "Fig. 7",
    );
    let scenes = evaluation_scenes();
    let opts = RunOptions::default();

    println!(
        "\n{:<11} {:>13} {:>13} {:>13} {:>13} {:>11}",
        "scene", "uniq-internal", "uniq-leaf", "total-internal", "total-leaf", "redundancy"
    );
    for setup in &scenes {
        let r = setup.run(&PipelineVariant::baseline(), &opts);
        let s = &r.report.stats;
        let uniq_leaf = s.node_fetches_unique - s.internal_fetches_unique;
        let total_leaf = s.node_fetches_total - s.internal_fetches_total;
        println!(
            "{:<11} {:>13} {:>13} {:>13} {:>13} {:>11.2}",
            setup.kind.name(),
            s.internal_fetches_unique,
            uniq_leaf,
            s.internal_fetches_total,
            total_leaf,
            s.redundancy()
        );
    }
    println!("(paper: a non-negligible unique-vs-total gap across all scenes)");
}
