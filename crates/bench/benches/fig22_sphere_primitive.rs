//! Fig. 22: GRTX-SW with the Blackwell hardware sphere primitive vs the
//! baseline icosahedron mesh. The sphere eliminates false positives but
//! its intersection throughput trails the triangle units, so the win is
//! smaller than TLAS+80-tri (Fig. 12).

use grtx::{PipelineVariant, RunOptions};
use grtx_bench::{banner, evaluation_scenes, geomean};

fn main() {
    banner(
        "Fig. 22: GRTX-SW with the hardware sphere primitive",
        "Fig. 22",
    );
    let scenes = evaluation_scenes();
    let opts = RunOptions::default();

    println!(
        "\n{:<11} {:>13} {:>13} {:>9}",
        "scene", "20-tri(ms)", "sphere(ms)", "speedup"
    );
    let mut speedups = Vec::new();
    for setup in &scenes {
        let base = setup.run(&PipelineVariant::baseline(), &opts);
        let sphere = setup.run(&PipelineVariant::grtx_sw_sphere(), &opts);
        let s = base.report.time_ms / sphere.report.time_ms;
        speedups.push(s);
        println!(
            "{:<11} {:>13.3} {:>13.3} {:>9.2}",
            setup.kind.name(),
            base.report.time_ms,
            sphere.report.time_ms,
            s
        );
    }
    println!(
        "geomean: {:.2}x (paper: 1.2-1.7x, below TLAS+80-tri due to sphere-test throughput)",
        geomean(&speedups)
    );
}
