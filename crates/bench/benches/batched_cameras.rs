//! Scaling: batched multi-camera rendering. Tracks one shared-structure
//! `render_batch` fan-out against sequential per-view renders — with and
//! without rebuilding the acceleration structure per view — at view
//! counts 1/4/16 and 1×/4× scene scale. This is the build-amortization
//! story behind the ROADMAP's many-views-per-scene serving goal; batch
//! results are bit-identical to the sequential path by construction.

use grtx::{LayoutConfig, PipelineVariant, RunOptions, SceneSetup};
use grtx_bench::{banner, BENCH_SEED};
use grtx_scene::SceneKind;
use std::time::Instant;

fn main() {
    banner(
        "Scaling: batched multi-camera rendering",
        "multi-view batching",
    );
    let kind = SceneKind::Train;
    let divisor = SceneSetup::env_divisor();
    let res = SceneSetup::env_resolution();
    let base_budget = (kind.profile().full_gaussian_count / divisor).max(1);
    let variant = PipelineVariant::grtx();
    let layout = LayoutConfig::default();
    let opts = RunOptions::default();
    let view_counts = [1usize, 4, 16];

    println!(
        "{:<7} {:>10} {:>6} | {:>9} {:>10} | {:>12} {:>12} | {:>8}",
        "scale",
        "gaussians",
        "views",
        "build ms",
        "batch ms",
        "seq+build ms",
        "seq shared",
        "speedup"
    );
    for scale in [1usize, 4] {
        let profile = kind
            .profile()
            .with_gaussian_budget(base_budget * scale)
            .with_resolution(res, res);
        let setup = SceneSetup::from_profile(kind, profile, (divisor / scale).max(1), BENCH_SEED);

        let build_start = Instant::now();
        let accel = setup.build_accel(&variant, &layout);
        let build_ms = build_start.elapsed().as_secs_f64() * 1e3;

        for &views in &view_counts {
            let cameras = setup.orbit_cameras(views);

            // Batched: one shared structure, one fan-out over all views.
            let start = Instant::now();
            let batch = setup.run_batch_with_accel(&accel, &variant, &opts, &cameras);
            let batch_ms = start.elapsed().as_secs_f64() * 1e3;
            assert_eq!(batch.len(), views);

            // Sequential, rebuilding the structure per view (the fully
            // unamortized baseline a naive per-view service pays).
            let start = Instant::now();
            for camera in &cameras {
                let per_view = setup.build_accel(&variant, &layout);
                let result = setup.run_batch_with_accel(
                    &per_view,
                    &variant,
                    &opts,
                    std::slice::from_ref(camera),
                );
                assert_eq!(result.len(), 1);
            }
            let seq_build_ms = start.elapsed().as_secs_f64() * 1e3;

            // Sequential sharing the build: isolates the fan-out /
            // warm-up amortization from the build amortization.
            let start = Instant::now();
            for camera in &cameras {
                let result = setup.run_batch_with_accel(
                    &accel,
                    &variant,
                    &opts,
                    std::slice::from_ref(camera),
                );
                assert_eq!(result.len(), 1);
            }
            let seq_shared_ms = start.elapsed().as_secs_f64() * 1e3;

            println!(
                "{:<7} {:>10} {:>6} | {:>9.1} {:>10.1} | {:>12.1} {:>12.1} | {:>7.2}x",
                format!("{scale}x"),
                setup.scene.len(),
                views,
                build_ms,
                batch_ms,
                seq_build_ms,
                seq_shared_ms,
                seq_build_ms / (build_ms + batch_ms).max(1e-9),
            );
        }
    }
    println!(
        "(speedup = sequential-with-rebuilds vs one build + one batch; \
         per-view batch results are bit-identical to standalone renders)"
    );
}
