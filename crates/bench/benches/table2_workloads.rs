//! Table II: workload summary — Gaussian counts, BVH heights, BVH sizes
//! (20-tri vs TLAS+20-tri, extrapolated to paper scale), and measured
//! BVH memory footprints during rendering.

use grtx::{PipelineVariant, RunOptions};
use grtx_bench::{banner, evaluation_scenes};
use grtx_bvh::layout::format_bytes;

fn main() {
    banner("Table II: workload summary", "Table II");
    let scenes = evaluation_scenes();
    let opts = RunOptions::default();

    println!(
        "\n{:<11} {:>10} {:>8} {:>12} {:>14} {:>12} {:>14}",
        "scene", "#gauss", "height", "BVH 20-tri", "TLAS+20-tri", "fp 20-tri", "fp TLAS+20-tri"
    );
    for setup in &scenes {
        let mono = setup.run(&PipelineVariant::baseline(), &opts);
        let tlas = setup.run(&PipelineVariant::grtx_sw(), &opts);
        let f = mono.scale_factor;
        println!(
            "{:<11} {:>10} {:>8} {:>12} {:>14} {:>12} {:>14}",
            setup.kind.name(),
            format!("{:.2}M", setup.profile.full_gaussian_count as f64 / 1e6),
            format!("{}/{}", mono.height, tlas.height),
            format_bytes(mono.size.extrapolated(f).total_bytes),
            format_bytes(tlas.size.extrapolated(f).total_bytes),
            format_bytes((mono.report.footprint_bytes as f64 * f) as u64),
            format_bytes((tlas.report.footprint_bytes as f64 * f) as u64),
        );
    }
    println!(
        "(Gaussian counts are Table II's; structures are built at 1/{} scale",
        scenes[0].divisor
    );
    println!(" and sizes/footprints extrapolated linearly — see EXPERIMENTS.md)");
    println!("(paper: e.g. Truck 3.88 GB vs 345 MB; footprints 181 MB vs 36 MB)");
}
