//! Fig. 18: GRTX performance across k-buffer sizes (checkpointing makes
//! small k viable; stragglers make it lose again below k = 8).

use grtx::{PipelineVariant, RunOptions};
use grtx_bench::{banner, evaluation_scenes};
use grtx_bvh::LayoutConfig;

fn main() {
    banner("Fig. 18: GRTX k-buffer size sensitivity", "Fig. 18");
    let scenes = evaluation_scenes();
    let grtx = PipelineVariant::grtx();
    let ks = [4usize, 8, 16, 32, 64];

    print!("{:<11}", "scene");
    for k in ks {
        print!(" {:>9}", format!("k={k}"));
    }
    println!("   (speedup vs k=4, higher is better)");
    for setup in &scenes {
        let accel = setup.build_accel(&grtx, &LayoutConfig::default());
        let times: Vec<f64> = ks
            .iter()
            .map(|&k| {
                setup
                    .run_with_accel(
                        &accel,
                        &grtx,
                        &RunOptions {
                            k,
                            ..Default::default()
                        },
                    )
                    .report
                    .time_ms
            })
            .collect();
        print!("{:<11}", setup.kind.name());
        for t in &times {
            print!(" {:>9.3}", times[0] / t);
        }
        println!();
    }
    println!("(paper: performance normalized to k=4; k=8 is the best average)");
}
