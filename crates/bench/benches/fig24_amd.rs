//! Fig. 24: cross-vendor applicability — an AMD-like GPU (shader-core
//! node fetches, larger BVH encoding, 4 GB Vulkan buffer-allocation
//! limit). Monolithic mesh BVHs exceed the limit for most scenes at
//! paper scale (marked x); the shared-BLAS variants always fit.

use grtx::{PipelineVariant, RunOptions};
use grtx_bench::{banner, evaluation_scenes};
use grtx_bvh::layout::format_bytes;
use grtx_sim::GpuConfig;

/// Vulkan maxBufferSize on the evaluated AMD driver (4 GB).
const VULKAN_BUFFER_LIMIT: u64 = 4 * 1024 * 1024 * 1024;

fn main() {
    banner(
        "Fig. 24: AMD-like GPU (Radeon RX 9070 XT analogue)",
        "Fig. 24",
    );
    let scenes = evaluation_scenes();
    let variants = [
        PipelineVariant::baseline(),
        PipelineVariant::baseline_80(),
        PipelineVariant::grtx_sw(),
        PipelineVariant::grtx_sw_80(),
    ];
    let opts = RunOptions {
        gpu: GpuConfig::amd_like(),
        layout_amd: true,
        ..Default::default()
    };

    print!("{:<11}", "scene");
    for v in &variants {
        print!(" {:>14}", v.name);
    }
    println!("   (time normalized to TLAS+80-tri; x = BVH exceeds 4 GB)");
    for setup in &scenes {
        // Feasibility at paper scale is decided from the extrapolated
        // structure size, exactly like the real 4 GB allocation failures.
        let mut times: Vec<Option<f64>> = Vec::new();
        let mut sizes: Vec<u64> = Vec::new();
        for v in &variants {
            let accel = setup.build_accel(v, &grtx_bvh::LayoutConfig::amd());
            let full_size = accel
                .size_report()
                .extrapolated(setup.scale_factor_for_bench())
                .total_bytes;
            sizes.push(full_size);
            if full_size > VULKAN_BUFFER_LIMIT {
                times.push(None);
            } else {
                let r = setup.run_with_accel(&accel, v, &opts);
                times.push(Some(r.report.time_ms));
            }
        }
        let reference = times[3].expect("TLAS+80-tri always fits");
        print!("{:<11}", setup.kind.name());
        for (t, size) in times.iter().zip(&sizes) {
            match t {
                Some(ms) => print!(" {:>14.2}", ms / reference),
                None => print!(" {:>14}", format!("x ({})", format_bytes(*size))),
            }
        }
        println!();
    }
    println!("(paper: 20/80-tri monolithic BVHs exceed 4 GB for most scenes;");
    println!(" TLAS+20-tri achieves 1.73-3.42x over feasible 20-tri baselines)");
}

/// Helper trait to keep the bench body readable.
trait ScaleFactor {
    fn scale_factor_for_bench(&self) -> f64;
}

impl ScaleFactor for grtx::SceneSetup {
    fn scale_factor_for_bench(&self) -> f64 {
        self.profile.full_gaussian_count as f64 / self.scene.len().max(1) as f64
    }
}
