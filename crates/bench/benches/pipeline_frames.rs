//! Scaling: the async frame pipeline. Tracks overlapped
//! (`depth = 3`: update ∥ build ∥ render) frame streams against
//! sequential per-frame runs (`depth = 1`) at frame counts 4/16, shard
//! counts 1/4, and thread counts 1/auto — the
//! keep-every-stage-busy story behind the ROADMAP's frame-stream
//! serving goal. Pipelined results are bit-identical to the sequential
//! path by construction; only wall-clock changes.

use grtx::{PipelineVariant, RunOptions, SceneSetup};
use grtx_bench::{banner, BENCH_SEED};
use grtx_scene::SceneKind;
use std::time::Instant;

fn main() {
    banner("Scaling: async frame pipeline", "frame-stream overlap");
    let kind = SceneKind::Train;
    let divisor = SceneSetup::env_divisor();
    let res = SceneSetup::env_resolution();
    let setup = SceneSetup::evaluation(kind, divisor, res, BENCH_SEED);
    let variant = PipelineVariant::grtx();
    // An animated scene that rebuilds every frame: the workload whose
    // update + build stages are worth overlapping with rendering.
    let source = setup.jitter_source(0.05, 1);

    println!(
        "{:<7} {:>8} {:>8} | {:>10} {:>12} | {:>8}",
        "frames", "shards", "threads", "stream ms", "seq ms", "overlap"
    );
    for &frames in &[4usize, 16] {
        for &shards in &[1usize, 4] {
            for &threads in &[1usize, 0] {
                let options = RunOptions {
                    shards,
                    threads,
                    ..Default::default()
                };

                // Overlapped: up to three frames in flight.
                let start = Instant::now();
                let stream = setup.run_stream(&source, frames, &variant, &options, 3);
                let stream_ms = start.elapsed().as_secs_f64() * 1e3;
                assert_eq!(stream.len(), frames);

                // Sequential: the same frames one at a time (depth 1).
                let start = Instant::now();
                let seq = setup.run_stream(&source, frames, &variant, &options, 1);
                let seq_ms = start.elapsed().as_secs_f64() * 1e3;
                assert_eq!(seq.len(), frames);

                println!(
                    "{:<7} {:>8} {:>8} | {:>10.1} {:>12.1} | {:>7.2}x",
                    frames,
                    shards,
                    if threads == 0 {
                        "auto".to_string()
                    } else {
                        threads.to_string()
                    },
                    stream_ms,
                    seq_ms,
                    seq_ms / stream_ms.max(1e-9),
                );
            }
        }
    }
    println!(
        "(overlap = sequential per-frame wall-clock vs depth-3 pipeline; \
         frame results are bit-identical between the two paths)"
    );
}
