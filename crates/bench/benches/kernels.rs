//! Criterion micro-benchmarks for the hot kernels: intersection tests,
//! k-buffer insertion, BVH construction, and cache lookups.

use criterion::{black_box, criterion_group, criterion_main, Criterion};
use grtx_bvh::builder::{build_wide_bvh, BuildPrim, BuilderConfig};
use grtx_math::intersect::{ray_sphere_unit, ray_triangle};
use grtx_math::{Aabb, Ray, Vec3};
use grtx_render::kbuffer::KBuffer;
use grtx_sim::Cache;

fn bench_intersections(c: &mut Criterion) {
    let ray = Ray::new(
        Vec3::new(0.1, 0.2, -3.0),
        Vec3::new(0.05, 0.02, 1.0).normalized(),
    );
    let aabb = Aabb::new(Vec3::splat(-1.0), Vec3::splat(1.0));
    c.bench_function("ray_aabb", |b| {
        b.iter(|| black_box(&aabb).intersect_ray(black_box(&ray)))
    });
    c.bench_function("ray_sphere_unit", |b| {
        b.iter(|| ray_sphere_unit(black_box(&ray)))
    });
    let (v0, v1, v2) = (
        Vec3::new(-1.0, -1.0, 0.0),
        Vec3::new(1.0, -1.0, 0.0),
        Vec3::new(0.0, 1.5, 0.0),
    );
    c.bench_function("ray_triangle", |b| {
        b.iter(|| ray_triangle(black_box(&ray), black_box(v0), black_box(v1), black_box(v2)))
    });
}

fn bench_kbuffer(c: &mut Criterion) {
    c.bench_function("kbuffer_insert_k16", |b| {
        b.iter(|| {
            let mut buf = KBuffer::new(16);
            for i in 0..64u32 {
                let t = ((i * 37) % 64) as f32;
                black_box(buf.insert(t, i));
            }
            buf
        })
    });
}

fn bench_builder(c: &mut Criterion) {
    let prims: Vec<BuildPrim> = (0..4096)
        .map(|i| {
            let p = Vec3::new(
                ((i * 131) % 97) as f32,
                ((i * 17) % 89) as f32,
                ((i * 7) % 101) as f32,
            );
            BuildPrim::from_aabb(Aabb::from_center_half_extent(p, Vec3::splat(0.4)))
        })
        .collect();
    c.bench_function("bvh6_build_4k_prims", |b| {
        b.iter(|| build_wide_bvh(black_box(&prims), &BuilderConfig::default()))
    });
}

fn bench_cache(c: &mut Criterion) {
    c.bench_function("cache_access_stream", |b| {
        let mut cache = Cache::new(128 * 1024, 128, 256);
        let mut i = 0u64;
        b.iter(|| {
            i = (i * 2862933555777941757).wrapping_add(3037000493) % (1 << 22);
            cache.access(black_box(i * 128))
        })
    });
}

criterion_group! {
    name = kernels;
    config = Criterion::default().sample_size(20).measurement_time(std::time::Duration::from_millis(500)).warm_up_time(std::time::Duration::from_millis(200));
    targets = bench_intersections, bench_kbuffer, bench_builder, bench_cache
}
criterion_main!(kernels);
