//! Criterion micro-benchmarks for the hot kernels: intersection tests
//! (scalar and the 8-wide/4-wide SIMD batches), the transposed 4-ray
//! packet kernel, k-buffer insertion, BVH construction, node visits
//! over a real built BVH, and cache lookups.

use criterion::{black_box, criterion_group, criterion_main, Criterion};
use grtx_bvh::builder::{build_wide_bvh, BuilderConfig};
use grtx_math::intersect::{ray_sphere_unit, ray_triangle};
use grtx_math::simd::{ray_triangle_4, slab_test_8, slab_test_8x4, SoaAabbs, Tri4};
use grtx_math::{Aabb, Ray, Vec3};
use grtx_render::kbuffer::KBuffer;
use grtx_sim::Cache;

fn bench_intersections(c: &mut Criterion) {
    let ray = Ray::new(
        Vec3::new(0.1, 0.2, -3.0),
        Vec3::new(0.05, 0.02, 1.0).normalized(),
    );
    let aabb = Aabb::new(Vec3::splat(-1.0), Vec3::splat(1.0));
    c.bench_function("ray_aabb", |b| {
        b.iter(|| black_box(&aabb).intersect_ray(black_box(&ray)))
    });
    c.bench_function("ray_sphere_unit", |b| {
        b.iter(|| ray_sphere_unit(black_box(&ray)))
    });
    let (v0, v1, v2) = (
        Vec3::new(-1.0, -1.0, 0.0),
        Vec3::new(1.0, -1.0, 0.0),
        Vec3::new(0.0, 1.5, 0.0),
    );
    c.bench_function("ray_triangle", |b| {
        b.iter(|| ray_triangle(black_box(&ray), black_box(v0), black_box(v1), black_box(v2)))
    });
}

/// The scalar-vs-SIMD pair the acceptance criterion tracks: one full
/// BVH-8 node's eight child slabs tested by the old per-child loop vs
/// one batched `slab_test_8` call (fixtures shared with the committed
/// `BENCH_kernels.json` baseline via `grtx_bench`).
fn bench_slab8(c: &mut Criterion) {
    let boxes = grtx_bench::kernel_node_boxes();
    let soa = SoaAabbs::from_aabbs(&boxes);
    let ray = grtx_bench::kernel_slab_ray();
    let arr: [Aabb; 8] = boxes.try_into().unwrap();
    c.bench_function("slab8_scalar", |b| {
        b.iter(|| {
            let ray = black_box(&ray);
            let mut hits = 0u32;
            for aabb in black_box(&arr) {
                if aabb.intersect_ray(ray).is_some() {
                    hits += 1;
                }
            }
            hits
        })
    });
    let inv = ray.inv();
    c.bench_function("slab8_simd", |b| {
        b.iter(|| {
            slab_test_8(black_box(&inv), black_box(&soa))
                .mask
                .count_ones()
        })
    });
}

/// Transposed packet kernel: four coherent rays against one wide node —
/// four independent `slab_test_8` calls vs one `slab_test_8x4` call
/// (the cache-miss work of one [`grtx_bvh::RayPacket4`] node test).
fn bench_packet4(c: &mut Criterion) {
    let boxes = grtx_bench::kernel_node_boxes();
    let soa = SoaAabbs::from_aabbs(&boxes);
    let rays = grtx_bench::kernel_packet_rays();
    let invs = [rays[0].inv(), rays[1].inv(), rays[2].inv(), rays[3].inv()];
    c.bench_function("packet4_single_ray", |b| {
        b.iter(|| {
            let mut hits = 0u32;
            for inv in black_box(&invs) {
                hits += slab_test_8(inv, black_box(&soa)).mask.count_ones();
            }
            hits
        })
    });
    c.bench_function("packet4_transposed", |b| {
        b.iter(|| {
            let masks = slab_test_8x4(black_box(&invs), black_box(&soa));
            masks.iter().map(|m| m.mask.count_ones()).sum::<u32>()
        })
    });
}

/// Four leaf triangles: scalar loop vs one batched kernel call.
fn bench_triangle4(c: &mut Criterion) {
    let tris = grtx_bench::kernel_triangles();
    let packet = Tri4::from_triangles(&tris);
    let ray = grtx_bench::kernel_tri_ray();
    let arr: [[Vec3; 3]; 4] = tris.try_into().unwrap();
    c.bench_function("triangle4_scalar", |b| {
        b.iter(|| {
            let ray = black_box(&ray);
            let mut hits = 0u32;
            for [a, bb, cc] in black_box(&arr) {
                if ray_triangle(ray, *a, *bb, *cc).is_some() {
                    hits += 1;
                }
            }
            hits
        })
    });
    c.bench_function("triangle4_simd", |b| {
        b.iter(|| {
            ray_triangle_4(black_box(&ray), black_box(&packet))
                .mask
                .count_ones()
        })
    });
}

/// Sweeps every node of a real BVH (~2k nodes over 16k grid prims) with
/// the batched kernel vs the scalar per-child loop over an AoS copy
/// (the pre-SIMD layout): the in-situ hot-loop comparison, including
/// real memory traffic.
fn bench_node_visits(c: &mut Criterion) {
    let prims = grtx_bench::kernel_grid_prims(16 * 1024);
    let bvh = build_wide_bvh(&prims, &BuilderConfig::default());
    let aos = grtx_bench::aos_node_boxes(&bvh);
    let ray = grtx_bench::kernel_visit_ray();
    c.bench_function("node_visit_scalar", |b| {
        b.iter(|| {
            let ray = black_box(&ray);
            let mut hits = 0u32;
            for (len, boxes) in black_box(&aos) {
                for aabb in &boxes[..*len] {
                    if aabb.intersect_ray(ray).is_some() {
                        hits += 1;
                    }
                }
            }
            hits
        })
    });
    let inv = ray.inv();
    c.bench_function("node_visit_simd", |b| {
        b.iter(|| {
            let inv = black_box(&inv);
            let mut hits = 0u32;
            for node in black_box(&bvh.nodes) {
                hits += slab_test_8(inv, &node.bounds).mask.count_ones();
            }
            hits
        })
    });
}

fn bench_kbuffer(c: &mut Criterion) {
    c.bench_function("kbuffer_insert_k16", |b| {
        b.iter(|| {
            let mut buf = KBuffer::new(16);
            for i in 0..64u32 {
                let t = ((i * 37) % 64) as f32;
                black_box(buf.insert(t, i));
            }
            buf
        })
    });
}

fn bench_builder(c: &mut Criterion) {
    let prims = grtx_bench::kernel_grid_prims(4096);
    c.bench_function("bvh8_build_4k_prims", |b| {
        b.iter(|| build_wide_bvh(black_box(&prims), &BuilderConfig::default()))
    });
    // The pre-collapse BVH-6 baseline, kept for the width comparison.
    let cfg6 = BuilderConfig {
        wide_width: 6,
        ..BuilderConfig::default()
    };
    c.bench_function("bvh6_build_4k_prims", |b| {
        b.iter(|| build_wide_bvh(black_box(&prims), black_box(&cfg6)))
    });
}

fn bench_cache(c: &mut Criterion) {
    c.bench_function("cache_access_stream", |b| {
        let mut cache = Cache::new(128 * 1024, 128, 256);
        let mut i = 0u64;
        b.iter(|| {
            i = (i * 2862933555777941757).wrapping_add(3037000493) % (1 << 22);
            cache.access(black_box(i * 128))
        })
    });
}

criterion_group! {
    name = kernels;
    config = Criterion::default().sample_size(20).measurement_time(std::time::Duration::from_millis(500)).warm_up_time(std::time::Duration::from_millis(200));
    targets = bench_intersections, bench_slab8, bench_packet4, bench_triangle4, bench_node_visits, bench_kbuffer, bench_builder, bench_cache
}
criterion_main!(kernels);
