//! Table III: hardware cost of the GRTX-HW checkpointing extensions.

use grtx::checkpoint_hw_cost_bytes;
use grtx_bench::banner;
use grtx_sim::GpuConfig;

fn main() {
    banner("Table III: GRTX-HW hardware cost", "Table III");
    let gpu = GpuConfig::default();
    let bytes = checkpoint_hw_cost_bytes(gpu.warp_size, gpu.warp_buffer_size);
    println!("\nCheckpoint buffer information per RT core:");
    println!(
        "  (1-bit replay flag + 2 B src offset + 2 B dst offset) x {} threads/warp x {} warps",
        gpu.warp_size, gpu.warp_buffer_size
    );
    println!("  + 8 B src address + 8 B dst address + 2 B max size");
    println!(
        "\nTotal: {:.2} KB per RT core (paper: 1.05 KB)",
        bytes / 1024.0
    );
    assert!(
        (bytes / 1024.0 - 1.05).abs() < 0.02,
        "Table III must reproduce"
    );
}
