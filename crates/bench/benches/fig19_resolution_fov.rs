//! Fig. 19: GRTX performance and L1 hit rates across resolution / FoV
//! settings (Train and Truck). Higher resolution and smaller FoV both
//! increase ray coherence, which shrinks GRTX-SW's relative advantage
//! but not GRTX-HW's.

use grtx::{RunOptions, SceneSetup};
use grtx_bench::{banner, fig13_variants, BENCH_SEED};
use grtx_scene::SceneKind;

fn main() {
    banner(
        "Fig. 19: resolution and FoV sensitivity (Train, Truck)",
        "Fig. 19a and Fig. 19b",
    );
    let divisor = SceneSetup::env_divisor();
    let base_res = SceneSetup::env_resolution();
    // "Original resolution" is emulated at 1.5x the evaluation
    // resolution (the full 980x545 would dominate bench wall-clock; the
    // coherence effect is monotone in resolution).
    let hi_res = base_res * 3 / 2;
    let opts = RunOptions::default();

    for (label, res, fov_scale) in [
        ("(a) higher resolution, original FoV", hi_res, 1.0f32),
        ("(b) base resolution, scaled-down FoV", base_res, 0.5f32),
    ] {
        println!("\nFig. 19{label}:");
        println!(
            "{:<8} {:<9} {:>9} {:>9} {:>8}",
            "scene", "variant", "time(ms)", "speedup", "L1 rate"
        );
        for kind in [SceneKind::Train, SceneKind::Truck] {
            let base_profile = kind.profile();
            let budget = base_profile.full_gaussian_count / divisor;
            let profile = base_profile
                .clone()
                .with_gaussian_budget(budget)
                .with_resolution(res, res)
                .with_fov_y_deg(base_profile.fov_y_deg * fov_scale);
            let setup = SceneSetup::from_profile(kind, profile, divisor, BENCH_SEED);
            let results: Vec<_> = fig13_variants()
                .iter()
                .map(|v| setup.run(v, &opts))
                .collect();
            let base_ms = results[0].report.time_ms;
            for (v, r) in fig13_variants().iter().zip(&results) {
                println!(
                    "{:<8} {:<9} {:>9.3} {:>9.2} {:>8.3}",
                    kind.name(),
                    v.name,
                    r.report.time_ms,
                    base_ms / r.report.time_ms,
                    r.report.l1_hit_rate
                );
            }
        }
    }
    println!("\n(paper: GRTX-HW speedups persist under high coherence; GRTX-SW's shrink)");
}
