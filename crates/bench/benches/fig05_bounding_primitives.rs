//! Fig. 5: icosahedron bounding mesh vs custom Gaussian primitive —
//! (a) rendering time, (b) BVH size.

use grtx::{PipelineVariant, RunOptions};
use grtx_bench::{banner, evaluation_scenes};
use grtx_bvh::layout::format_bytes;

fn main() {
    banner(
        "Fig. 5: bounding primitives (icosahedron vs custom Gaussian)",
        "Fig. 5a and Fig. 5b",
    );
    let scenes = evaluation_scenes();
    let opts = RunOptions::default();

    println!(
        "\n{:<11} {:>14} {:>14} {:>16} {:>16}",
        "scene", "ico time(ms)", "custom(ms)", "ico BVH(paper-scale)", "custom BVH"
    );
    for setup in &scenes {
        let ico = setup.run(&PipelineVariant::baseline(), &opts);
        let custom = setup.run(&PipelineVariant::custom_primitive(), &opts);
        let f = ico.scale_factor;
        println!(
            "{:<11} {:>14.3} {:>14.3} {:>16} {:>16}",
            setup.kind.name(),
            ico.report.time_ms,
            custom.report.time_ms,
            format_bytes(ico.size.extrapolated(f).total_bytes),
            format_bytes(custom.size.extrapolated(f).total_bytes),
        );
    }
    println!("(paper: custom primitives render slower despite much smaller BVHs,");
    println!(" because ray-ellipsoid tests run in software intersection shaders)");
}
