//! Fig. 6: (a) single-round vs multi-round traversal at k = 16;
//! (b) rendering time across k ∈ {4, 8, 16, 32, 64}.

use grtx::SceneSetup;
use grtx::{PipelineVariant, RunOptions};
use grtx_bench::{banner, BENCH_SEED};
use grtx_bvh::LayoutConfig;
use grtx_scene::SceneKind;

/// Single-round tracing forgoes ERT and touches every intersected
/// Gaussian, so this bench runs at twice the scale divisor to stay
/// tractable (relative comparisons are scale-stable).
fn scenes() -> Vec<SceneSetup> {
    let divisor = SceneSetup::env_divisor() * 2;
    let res = SceneSetup::env_resolution();
    SceneKind::ALL
        .iter()
        .map(|&kind| SceneSetup::evaluation(kind, divisor, res, BENCH_SEED))
        .collect()
}

fn main() {
    banner(
        "Fig. 6: multi-round tracing and the choice of k",
        "Fig. 6a and Fig. 6b",
    );
    let scenes = scenes();
    let baseline = PipelineVariant::baseline();

    println!("\nFig. 6a — single-round vs multi-round (k = 16; paper: multi-round wins):");
    println!(
        "{:<11} {:>16} {:>16}",
        "scene", "multi-round(ms)", "single-round(ms)"
    );
    for setup in &scenes {
        let accel = setup.build_accel(&baseline, &LayoutConfig::default());
        let multi = setup.run_with_accel(&accel, &baseline, &RunOptions::default());
        let single = setup.run_with_accel(
            &accel,
            &baseline,
            &RunOptions {
                single_round: true,
                ..Default::default()
            },
        );
        println!(
            "{:<11} {:>16.3} {:>16.3}",
            setup.kind.name(),
            multi.report.time_ms,
            single.report.time_ms
        );
    }

    println!("\nFig. 6b — baseline rendering time across k (paper: k = 16 best):");
    print!("{:<11}", "scene");
    let ks = [4usize, 8, 16, 32, 64];
    for k in ks {
        print!(" {:>9}", format!("k={k}"));
    }
    println!();
    for setup in &scenes {
        let accel = setup.build_accel(&baseline, &LayoutConfig::default());
        print!("{:<11}", setup.kind.name());
        for k in ks {
            let r = setup.run_with_accel(
                &accel,
                &baseline,
                &RunOptions {
                    k,
                    ..Default::default()
                },
            );
            print!(" {:>9.3}", r.report.time_ms);
        }
        println!();
    }
}
