//! Scaling: sharded acceleration-structure builds. Tracks TLAS build
//! time (serial vs sharded-parallel) and end-to-end render time vs shard
//! count, at 1×/4×/10× scene scale — the scaling story behind the
//! ROADMAP's multi-million-Gaussian / out-of-core / distributed goals.

use grtx::{LayoutConfig, PipelineVariant, RunOptions, SceneSetup};
use grtx_bench::{banner, BENCH_SEED};
use grtx_scene::SceneKind;
use std::time::Instant;

fn main() {
    banner(
        "Scaling: sharded scene builds and renders",
        "scene sharding",
    );
    let kind = SceneKind::Train;
    let divisor = SceneSetup::env_divisor();
    let res = SceneSetup::env_resolution();
    let base_budget = (kind.profile().full_gaussian_count / divisor).max(1);
    let variant = PipelineVariant::grtx_sw();
    let layout = LayoutConfig::default();
    let shard_counts = [1usize, 2, 4, 8, 16];

    println!(
        "{:<7} {:>10} {:>11} | {:>9} {:>9} {:>9} {:>9} {:>9} | {:>10}",
        "scale", "gaussians", "serial ms", "k=1", "k=2", "k=4", "k=8", "k=16", "render ms"
    );
    for scale in [1usize, 4, 10] {
        let profile = kind
            .profile()
            .with_gaussian_budget(base_budget * scale)
            .with_resolution(res, res);
        let setup = SceneSetup::from_profile(kind, profile, (divisor / scale).max(1), BENCH_SEED);

        let serial_start = Instant::now();
        let serial = setup.build_accel(&variant, &layout);
        let serial_ms = serial_start.elapsed().as_secs_f64() * 1e3;
        drop(serial);

        let mut build_ms = Vec::new();
        let mut last = None;
        for &shards in &shard_counts {
            let start = Instant::now();
            let sharded = setup.build_sharded_accel(&variant, &layout, shards, 0);
            build_ms.push(start.elapsed().as_secs_f64() * 1e3);
            last = Some(sharded);
        }
        // End-to-end render on the final sharded build (identical to the
        // serial structure, so one measurement covers them all).
        let sharded = last.expect("at least one shard count");
        let render_start = Instant::now();
        let result = setup.run_with_accel(sharded.accel(), &variant, &RunOptions::default());
        let render_ms = render_start.elapsed().as_secs_f64() * 1e3;
        assert!(result.report.cycles > 0);

        print!(
            "{:<7} {:>10} {:>11.1} |",
            format!("{scale}x"),
            setup.scene.len(),
            serial_ms
        );
        for ms in &build_ms {
            print!(" {ms:>9.1}");
        }
        println!(" | {render_ms:>10.1}");
    }
    println!(
        "(build columns: sharded parallel build wall ms at k shards on all cores; \
         structures are bit-identical to the serial build at every k)"
    );
}
