//! Fig. 12: GRTX-SW speedup with different Gaussian geometries —
//! monolithic 20/80-tri vs TLAS + shared 20/80-tri BLAS.

use grtx::{PipelineVariant, RunOptions};
use grtx_bench::{banner, evaluation_scenes, geomean};

fn main() {
    banner(
        "Fig. 12: GRTX-SW with different Gaussian geometries",
        "Fig. 12",
    );
    let scenes = evaluation_scenes();
    let opts = RunOptions::default();
    let variants = [
        PipelineVariant::baseline(),
        PipelineVariant::baseline_80(),
        PipelineVariant::grtx_sw(),
        PipelineVariant::grtx_sw_80(),
    ];

    print!("{:<11}", "scene");
    for v in &variants {
        print!(" {:>13}", v.name);
    }
    println!("   (speedup over 20-tri)");
    let mut speedups: Vec<Vec<f64>> = vec![Vec::new(); variants.len()];
    for setup in &scenes {
        let results: Vec<_> = variants.iter().map(|v| setup.run(v, &opts)).collect();
        let base_ms = results[0].report.time_ms;
        print!("{:<11}", setup.kind.name());
        for (i, r) in results.iter().enumerate() {
            let s = base_ms / r.report.time_ms;
            speedups[i].push(s);
            print!(" {:>13.2}", s);
        }
        println!();
    }
    print!("{:<11}", "geomean");
    for s in &speedups {
        print!(" {:>13.2}", geomean(s));
    }
    println!();
    println!("(paper: TLAS variants beat both monolithic meshes on every scene)");
}
