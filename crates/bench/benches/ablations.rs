//! Ablations of the simulator's design choices (beyond the paper's own
//! figures): what each modeling decision contributes to the headline
//! numbers. Each ablation runs Baseline vs GRTX on one outdoor and one
//! indoor scene.

use grtx::{PipelineVariant, RunOptions, SceneSetup};
use grtx_bench::{banner, BENCH_SEED};
use grtx_scene::SceneKind;
use grtx_sim::GpuConfig;

fn main() {
    banner(
        "Ablations: simulator design choices",
        "DESIGN.md §6 (not a paper exhibit)",
    );
    let divisor = SceneSetup::env_divisor();
    let res = SceneSetup::env_resolution();
    let scenes: Vec<SceneSetup> = [SceneKind::Train, SceneKind::Room]
        .iter()
        .map(|&k| SceneSetup::evaluation(k, divisor, res, BENCH_SEED))
        .collect();

    println!("\nAblation 1 — sibling leaf prefetch (the paper's L1 calibration):");
    println!(
        "{:<8} {:<10} {:>10} {:>10} {:>9} {:>9}",
        "scene", "variant", "on(ms)", "off(ms)", "L1 on", "L1 off"
    );
    for setup in &scenes {
        for variant in [PipelineVariant::baseline(), PipelineVariant::grtx()] {
            let on = setup.run(&variant, &RunOptions::default());
            let off = setup.run(
                &variant,
                &RunOptions {
                    gpu: GpuConfig {
                        sibling_prefetch: false,
                        ..Default::default()
                    },
                    ..Default::default()
                },
            );
            println!(
                "{:<8} {:<10} {:>10.3} {:>10.3} {:>9.3} {:>9.3}",
                setup.kind.name(),
                variant.name,
                on.report.time_ms,
                off.report.time_ms,
                on.report.l1_hit_rate,
                off.report.l1_hit_rate
            );
        }
    }

    println!("\nAblation 2 — cache scaling (unscaled Table I caches exaggerate locality):");
    println!(
        "{:<8} {:<10} {:>12} {:>14}",
        "scene", "variant", "scaled L1", "unscaled L1"
    );
    for setup in &scenes {
        for variant in [PipelineVariant::baseline(), PipelineVariant::grtx_sw()] {
            let scaled = setup.run(&variant, &RunOptions::default());
            // Re-run against an unscaled-cache setup of the same scene.
            let unscaled_setup = SceneSetup {
                divisor: 1,
                ..clone_setup(setup)
            };
            let unscaled = unscaled_setup.run(&variant, &RunOptions::default());
            println!(
                "{:<8} {:<10} {:>12.3} {:>14.3}",
                setup.kind.name(),
                variant.name,
                scaled.report.l1_hit_rate,
                unscaled.report.l1_hit_rate
            );
        }
    }

    println!("\nAblation 3 — straggler overhead: GRTX speedup over baseline vs round overhead:");
    println!(
        "{:<8} {:>14} {:>14} {:>14}",
        "scene", "overhead=0", "overhead=260", "overhead=1000"
    );
    for setup in &scenes {
        let mut speedups = Vec::new();
        for overhead in [0u64, 260, 1000] {
            let mut gpu = GpuConfig::default();
            gpu.costs.round_overhead = overhead;
            let opts = RunOptions {
                k: 8,
                gpu,
                ..Default::default()
            };
            let base = setup.run(&PipelineVariant::baseline(), &opts);
            let grtx = setup.run(&PipelineVariant::grtx(), &opts);
            speedups.push(base.report.time_ms / grtx.report.time_ms);
        }
        println!(
            "{:<8} {:>14.2} {:>14.2} {:>14.2}",
            setup.kind.name(),
            speedups[0],
            speedups[1],
            speedups[2]
        );
    }
    println!("(higher per-round overhead taxes checkpointing's extra fine-grained rounds)");
}

/// Rebuilds a setup with identical scene content (SceneSetup is not
/// Clone because GaussianScene is intentionally large).
fn clone_setup(s: &SceneSetup) -> SceneSetup {
    SceneSetup::from_profile(s.kind, s.profile.clone(), s.divisor, BENCH_SEED)
}
