//! Fig. 23: GRTX-HW effectiveness on secondary rays. Each scene gains a
//! glass sphere (refraction) and a mirror quad (reflection); speedups
//! are measured separately for primary and secondary rays.

use grtx::{PipelineVariant, RunOptions};
use grtx_bench::{banner, evaluation_scenes, geomean};

fn main() {
    banner(
        "Fig. 23: GRTX-HW on secondary rays (glass sphere + mirror)",
        "Fig. 23b",
    );
    let scenes = evaluation_scenes();
    let opts = RunOptions {
        effects_seed: Some(7),
        ..Default::default()
    };

    println!(
        "\n{:<11} {:>12} {:>14} {:>12}",
        "scene", "primary-spd", "secondary-spd", "#secondary"
    );
    let mut prim_speedups = Vec::new();
    let mut sec_speedups = Vec::new();
    for setup in &scenes {
        let base = setup.run(&PipelineVariant::baseline(), &opts);
        let hw = setup.run(&PipelineVariant::grtx_hw(), &opts);
        match (&base.report.secondary, &hw.report.secondary) {
            (Some(b), Some(h)) => {
                let ps = b.primary_cycles as f64 / h.primary_cycles.max(1) as f64;
                let ss = b.secondary_cycles as f64 / h.secondary_cycles.max(1) as f64;
                prim_speedups.push(ps);
                sec_speedups.push(ss);
                println!(
                    "{:<11} {:>12.2} {:>14.2} {:>12}",
                    setup.kind.name(),
                    ps,
                    ss,
                    b.secondary_rays
                );
            }
            _ => {
                // Objects landed outside the frustum for this seed.
                let s = base.report.time_ms / hw.report.time_ms;
                prim_speedups.push(s);
                println!(
                    "{:<11} {:>12.2} {:>14} {:>12}",
                    setup.kind.name(),
                    s,
                    "n/a",
                    0
                );
            }
        }
    }
    println!(
        "geomean primary {:.2}x, secondary {:.2}x (paper: similar speedups for both ray types)",
        geomean(&prim_speedups),
        geomean(&sec_speedups)
    );
}
