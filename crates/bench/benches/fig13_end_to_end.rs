//! Figures 13–17 + Fig. 20: end-to-end speedup of Baseline / GRTX-SW /
//! GRTX-HW / GRTX, with the underlying node-fetch, latency, L1, L2, and
//! checkpoint-buffer measurements — all from the same four runs per
//! scene, exactly as the paper derives them.

use grtx::RunOptions;
use grtx_bench::{banner, evaluation_scenes, fig13_variants, geomean};
use grtx_bvh::CHECKPOINT_ENTRY_BYTES;

fn main() {
    banner(
        "Fig. 13-17 + Fig. 20: end-to-end GRTX evaluation",
        "Figs. 13 (speedup), 14 (node fetches), 15 (fetch latency), 16 (L1), 17 (L2), 20 (buffers)",
    );
    let scenes = evaluation_scenes();
    let variants = fig13_variants();
    let opts = RunOptions::default();

    let mut speedups: Vec<Vec<f64>> = vec![Vec::new(); variants.len()];
    println!(
        "\n{:<11} {:<9} {:>9} {:>9} {:>11} {:>9} {:>8} {:>12}",
        "scene", "variant", "time(ms)", "speedup", "fetches", "norm.lat", "L1 rate", "L2 accesses"
    );
    for setup in &scenes {
        let results: Vec<_> = variants.iter().map(|v| setup.run(v, &opts)).collect();
        let base = &results[0].report;
        for (i, (variant, res)) in variants.iter().zip(&results).enumerate() {
            let r = &res.report;
            let speedup = base.time_ms / r.time_ms;
            speedups[i].push(speedup);
            println!(
                "{:<11} {:<9} {:>9.3} {:>9.2} {:>11} {:>9.3} {:>8.3} {:>12}",
                setup.kind.name(),
                variant.name,
                r.time_ms,
                speedup,
                r.stats.node_fetches_total,
                r.avg_fetch_latency / base.avg_fetch_latency.max(1e-9),
                r.l1_hit_rate,
                r.l2_accesses,
            );
        }
        // Fig. 20: checkpoint + eviction buffer sizing for the GRTX run.
        let grtx = &results[3].report;
        let gpu = &opts.gpu;
        let rays_resident = (gpu.num_sms * gpu.warp_buffer_size * gpu.warp_size) as u64;
        // Ping-pong checkpoint buffers + eviction buffer, sized by the
        // peak per-ray occupancy observed.
        let ckpt_bytes =
            grtx.stats.peak_checkpoint_entries * CHECKPOINT_ENTRY_BYTES * rays_resident * 2;
        let evict_bytes = grtx.stats.peak_eviction_entries * 8 * rays_resident;
        println!(
            "{:<11} Fig20: ckpt buffer {:.2} MB, eviction buffer {:.2} MB (peaks {} / {} entries/ray)",
            "",
            ckpt_bytes as f64 / (1024.0 * 1024.0),
            evict_bytes as f64 / (1024.0 * 1024.0),
            grtx.stats.peak_checkpoint_entries,
            grtx.stats.peak_eviction_entries
        );
    }
    println!("\nGeomean speedups over Baseline (paper: GRTX-SW 2.00x, GRTX-HW 1.94x, GRTX 4.36x):");
    for (variant, s) in fig13_variants().iter().zip(&speedups) {
        println!("  {:<9} {:.2}x", variant.name, geomean(s));
    }
}
