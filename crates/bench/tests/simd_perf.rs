//! GRTX_PERF-gated microbench: the batched 8-wide slab kernel must beat
//! the scalar per-child loop on a >10k-node traversal sweep.
//!
//! Wall-clock assertions are inherently flaky on loaded CI machines, so
//! (like the thread-scaling tests) this only arms itself when
//! `GRTX_PERF=1` is set; run it in release mode on dedicated hardware.

use grtx_bench::{aos_node_boxes, kernel_grid_prims};
use grtx_bvh::builder::{build_wide_bvh, BuilderConfig};
use grtx_math::simd::slab_test_8;
use std::hint::black_box;
use std::time::Instant;

#[test]
fn batched_slab_kernel_beats_scalar_loop_on_10k_nodes() {
    if std::env::var("GRTX_PERF").is_err() {
        eprintln!(
            "skipping kernel speedup assertion: set GRTX_PERF=1 (release) on dedicated hardware"
        );
        return;
    }

    // Leaf size 1 over a 64k grid yields a deep wide BVH (>10k nodes).
    let prims = kernel_grid_prims(64 * 1024);
    let bvh = build_wide_bvh(
        &prims,
        &BuilderConfig {
            max_leaf_size: 1,
            ..Default::default()
        },
    );
    assert!(
        bvh.node_count() > 10_000,
        "microbench wants >10k nodes, built {}",
        bvh.node_count()
    );

    // AoS copy replicating the pre-SIMD per-node child layout.
    let aos = aos_node_boxes(&bvh);
    let ray = grtx_bench::kernel_visit_ray();
    let inv = ray.inv();

    // Best-of-N sweeps to shrug off scheduler noise.
    let rounds = 7;
    let scalar_ns = (0..rounds)
        .map(|_| {
            let start = Instant::now();
            let mut hits = 0u32;
            for (len, boxes) in black_box(&aos) {
                for aabb in &boxes[..*len] {
                    hits += u32::from(aabb.intersect_ray(black_box(&ray)).is_some());
                }
            }
            black_box(hits);
            start.elapsed().as_nanos()
        })
        .min()
        .unwrap();
    let simd_ns = (0..rounds)
        .map(|_| {
            let start = Instant::now();
            let mut hits = 0u32;
            for node in black_box(&bvh.nodes) {
                hits += slab_test_8(black_box(&inv), &node.bounds).mask.count_ones();
            }
            black_box(hits);
            start.elapsed().as_nanos()
        })
        .min()
        .unwrap();

    // Sanity: both sweeps see the same boxes, so hit totals must agree.
    let scalar_hits: u32 = aos
        .iter()
        .map(|(len, boxes)| {
            boxes[..*len]
                .iter()
                .map(|a| u32::from(a.intersect_ray(&ray).is_some()))
                .sum::<u32>()
        })
        .sum();
    let simd_hits: u32 = bvh
        .nodes
        .iter()
        .map(|n| slab_test_8(&inv, &n.bounds).mask.count_ones())
        .sum();
    assert_eq!(scalar_hits, simd_hits);

    let speedup = scalar_ns as f64 / simd_ns as f64;
    eprintln!(
        "slab sweep over {} nodes: scalar {scalar_ns} ns, simd {simd_ns} ns, speedup {speedup:.2}x",
        bvh.node_count()
    );
    assert!(
        speedup > 1.1,
        "batched kernel must beat the scalar loop: {speedup:.2}x"
    );
}
