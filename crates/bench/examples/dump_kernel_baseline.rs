//! Dumps the kernel-timing baseline committed as `BENCH_kernels.json`.
//!
//! Times the scalar-vs-SIMD kernel pairs of `benches/kernels.rs` with a
//! simple calibrated median-of-samples loop and prints a JSON document
//! to stdout. Regenerate the committed baseline after kernel changes:
//!
//! ```text
//! cargo run --release -p grtx-bench --example dump_kernel_baseline > BENCH_kernels.json
//! ```
//!
//! Future PRs diff their numbers against the committed file to track the
//! perf trajectory (absolute nanoseconds are machine-dependent; the
//! speedup ratios are the comparable signal).

use std::hint::black_box;
use std::time::Instant;

use grtx_bvh::builder::{build_wide_bvh, BuilderConfig};
use grtx_math::intersect::ray_triangle;
use grtx_math::simd::{ray_triangle_4, slab_test_8, slab_test_8x4, SoaAabbs, Tri4};
use grtx_math::{Aabb, Vec3};

/// Median ns/iter over `samples` samples of `iters` iterations each.
fn time_ns(samples: usize, iters: u64, mut f: impl FnMut() -> u32) -> f64 {
    let mut medians: Vec<f64> = (0..samples)
        .map(|_| {
            let start = Instant::now();
            let mut acc = 0u32;
            for _ in 0..iters {
                acc = acc.wrapping_add(black_box(f()));
            }
            black_box(acc);
            start.elapsed().as_nanos() as f64 / iters as f64
        })
        .collect();
    medians.sort_by(f64::total_cmp);
    medians[medians.len() / 2]
}

/// The toolchain/flags provenance block recorded with the numbers, so a
/// later diff against the committed baseline can tell a real kernel
/// regression from a changed build environment.
fn provenance_json() -> String {
    let rustc =
        std::process::Command::new(std::env::var_os("RUSTC").unwrap_or_else(|| "rustc".into()))
            .arg("--version")
            .output()
            .ok()
            .filter(|out| out.status.success())
            .map(|out| String::from_utf8_lossy(&out.stdout).trim().to_string())
            .unwrap_or_else(|| "unknown".to_string());
    let rustflags = std::env::var("RUSTFLAGS").unwrap_or_default();
    let target_cpu = rustflags
        .split_whitespace()
        .find_map(|flag| flag.strip_prefix("-Ctarget-cpu="))
        .unwrap_or("generic");
    format!(
        concat!(
            "  \"provenance\": {{\n",
            "    \"rustc\": \"{}\",\n",
            "    \"target_cpu\": \"{}\",\n",
            "    \"rustflags\": \"{}\",\n",
            "    \"avx2\": {},\n",
            "    \"fma_target_feature\": {},\n",
            "    \"fma_crate_feature\": {}\n",
            "  }},"
        ),
        rustc.replace('"', "'"),
        target_cpu,
        rustflags.replace('"', "'"),
        cfg!(target_feature = "avx2"),
        cfg!(target_feature = "fma"),
        cfg!(feature = "fma"),
    )
}

fn main() {
    if cfg!(debug_assertions) {
        eprintln!(
            "error: dump_kernel_baseline measures kernel timings and must run \
             from a release build; debug numbers are meaningless as a baseline.\n\
             Re-run with: cargo run --release -p grtx-bench --example dump_kernel_baseline"
        );
        std::process::exit(1);
    }
    // Fixtures shared with benches/kernels.rs via grtx_bench, so the
    // committed baseline stays comparable to the live bench numbers.
    let boxes = grtx_bench::kernel_node_boxes();
    let soa = SoaAabbs::from_aabbs(&boxes);
    let slab_ray = grtx_bench::kernel_slab_ray();
    let slab_arr: [Aabb; 8] = boxes.try_into().unwrap();
    let inv = slab_ray.inv();

    let packet_rays = grtx_bench::kernel_packet_rays();
    let packet_invs = [
        packet_rays[0].inv(),
        packet_rays[1].inv(),
        packet_rays[2].inv(),
        packet_rays[3].inv(),
    ];

    let tris = grtx_bench::kernel_triangles();
    let packet = Tri4::from_triangles(&tris);
    let tri_ray = grtx_bench::kernel_tri_ray();
    let tri_arr: [[Vec3; 3]; 4] = tris.try_into().unwrap();

    let prims = grtx_bench::kernel_grid_prims(16 * 1024);
    let bvh = build_wide_bvh(&prims, &BuilderConfig::default());
    // Same primitives collapsed at the pre-BVH-8 width, for the tree
    // shape deltas reported below (fewer, fuller nodes and a shallower
    // tree mean fewer node fetches per root-to-leaf walk).
    let cfg6 = BuilderConfig {
        wide_width: 6,
        ..BuilderConfig::default()
    };
    let bvh6 = build_wide_bvh(&prims, &cfg6);
    let aos = grtx_bench::aos_node_boxes(&bvh);
    let visit_ray = grtx_bench::kernel_visit_ray();
    let visit_inv = visit_ray.inv();

    let (samples, iters) = (21, 200_000);
    let slab_scalar = time_ns(samples, iters, || {
        let mut hits = 0u32;
        for aabb in black_box(&slab_arr) {
            hits += u32::from(aabb.intersect_ray(black_box(&slab_ray)).is_some());
        }
        hits
    });
    let slab_simd = time_ns(samples, iters, || {
        slab_test_8(black_box(&inv), black_box(&soa))
            .mask
            .count_ones()
    });
    // Packet baseline: four independent single-ray kernel calls vs one
    // transposed call — the cache-miss work of a RayPacket4 node test.
    let packet_single = time_ns(samples, iters, || {
        let mut hits = 0u32;
        for r in black_box(&packet_invs) {
            hits += slab_test_8(r, black_box(&soa)).mask.count_ones();
        }
        hits
    });
    let packet_transposed = time_ns(samples, iters, || {
        slab_test_8x4(black_box(&packet_invs), black_box(&soa))
            .iter()
            .map(|m| m.mask.count_ones())
            .sum::<u32>()
    });
    let tri_scalar = time_ns(samples, iters, || {
        let mut hits = 0u32;
        for [a, b, c] in black_box(&tri_arr) {
            hits += u32::from(ray_triangle(black_box(&tri_ray), *a, *b, *c).is_some());
        }
        hits
    });
    let tri_simd = time_ns(samples, iters, || {
        ray_triangle_4(black_box(&tri_ray), black_box(&packet))
            .mask
            .count_ones()
    });
    let (visit_samples, visit_iters) = (11, 500);
    let visit_scalar = time_ns(visit_samples, visit_iters, || {
        let mut hits = 0u32;
        for (len, b) in black_box(&aos) {
            for aabb in &b[..*len] {
                hits += u32::from(aabb.intersect_ray(black_box(&visit_ray)).is_some());
            }
        }
        hits
    });
    let visit_simd = time_ns(visit_samples, visit_iters, || {
        let mut hits = 0u32;
        for node in black_box(&bvh.nodes) {
            hits += slab_test_8(black_box(&visit_inv), &node.bounds)
                .mask
                .count_ones();
        }
        hits
    });

    println!("{{");
    println!("  \"bench\": \"kernels\",");
    println!("  \"units\": \"ns_per_iter\",");
    println!("  \"node_count\": {},", bvh.node_count());
    println!("  \"arch\": \"{}\",", std::env::consts::ARCH);
    println!("{}", provenance_json());
    println!("  \"tree_shape\": {{");
    println!("    \"bvh8_nodes\": {},", bvh.node_count());
    println!("    \"bvh8_height\": {},", bvh.height);
    println!("    \"bvh6_nodes\": {},", bvh6.node_count());
    println!("    \"bvh6_height\": {}", bvh6.height);
    println!("  }},");
    println!("  \"results\": {{");
    let mut rows = Vec::new();
    for (name, scalar, simd) in [
        ("slab8", slab_scalar, slab_simd),
        ("packet4", packet_single, packet_transposed),
        ("triangle4", tri_scalar, tri_simd),
        ("node_visit", visit_scalar, visit_simd),
    ] {
        rows.push(format!(
            "    \"{name}_scalar\": {scalar:.1},\n    \"{name}_simd\": {simd:.1},\n    \"{name}_speedup\": {:.2}",
            scalar / simd
        ));
    }
    println!("{}", rows.join(",\n"));
    println!("  }}");
    println!("}}");
}
