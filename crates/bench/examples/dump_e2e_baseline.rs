//! Dumps the end-to-end timing baseline committed as `BENCH_e2e.json`.
//!
//! Times the full simulate-and-render path — build the GRTX structure,
//! run the cycle-level simulation, compose the image — for the
//! paper's variant lineup on a fixed evaluation scene, and prints a
//! JSON document to stdout. Regenerate the committed baseline after
//! engine or pipeline changes:
//!
//! ```text
//! cargo run --release -p grtx-bench --example dump_e2e_baseline > BENCH_e2e.json
//! ```
//!
//! Future PRs diff their numbers against the committed file with
//! `scripts/compare_bench.py` to track the perf trajectory. Wall-clock
//! milliseconds are machine-dependent; the simulated cycle counts are
//! deterministic (a change there means the modeled workload itself
//! changed, not the host), and the variant-to-variant ratios are the
//! comparable cross-machine signal.

use std::time::Instant;

use grtx::{PipelineVariant, RunOptions, SceneSetup};
use grtx_scene::SceneKind;

/// Median wall milliseconds over `samples` runs of `f`.
fn time_ms(samples: usize, mut f: impl FnMut() -> u64) -> (f64, u64) {
    let mut cycles = 0;
    let mut medians: Vec<f64> = (0..samples)
        .map(|_| {
            let start = Instant::now();
            cycles = f();
            start.elapsed().as_secs_f64() * 1e3
        })
        .collect();
    medians.sort_by(f64::total_cmp);
    (medians[medians.len() / 2], cycles)
}

/// The toolchain/flags provenance block recorded with the numbers, so a
/// later diff against the committed baseline can tell a real engine
/// regression from a changed build environment.
fn provenance_json() -> String {
    let rustc =
        std::process::Command::new(std::env::var_os("RUSTC").unwrap_or_else(|| "rustc".into()))
            .arg("--version")
            .output()
            .ok()
            .filter(|out| out.status.success())
            .map(|out| String::from_utf8_lossy(&out.stdout).trim().to_string())
            .unwrap_or_else(|| "unknown".to_string());
    let rustflags = std::env::var("RUSTFLAGS").unwrap_or_default();
    let target_cpu = rustflags
        .split_whitespace()
        .find_map(|flag| flag.strip_prefix("-Ctarget-cpu="))
        .unwrap_or("generic");
    format!(
        concat!(
            "  \"provenance\": {{\n",
            "    \"rustc\": \"{}\",\n",
            "    \"target_cpu\": \"{}\",\n",
            "    \"rustflags\": \"{}\",\n",
            "    \"avx2\": {},\n",
            "    \"fma_target_feature\": {},\n",
            "    \"fma_crate_feature\": {}\n",
            "  }},"
        ),
        rustc.replace('"', "'"),
        target_cpu,
        rustflags.replace('"', "'"),
        cfg!(target_feature = "avx2"),
        cfg!(target_feature = "fma"),
        cfg!(feature = "fma"),
    )
}

fn main() {
    if cfg!(debug_assertions) {
        eprintln!(
            "error: dump_e2e_baseline measures end-to-end timings and must run \
             from a release build; debug numbers are meaningless as a baseline.\n\
             Re-run with: cargo run --release -p grtx-bench --example dump_e2e_baseline"
        );
        std::process::exit(1);
    }
    // The acceptance workload family: a mid-size Train-statistics scene
    // at 96×96, single view, all four Fig. 13 variants. Small enough
    // for CI, large enough that the simulated GPU does real work.
    let setup = SceneSetup::evaluation(SceneKind::Train, 4000, 96, 42);
    let options = RunOptions {
        k: 8,
        threads: 4,
        ..Default::default()
    };
    let samples = 5;

    println!("{{");
    println!("  \"bench\": \"e2e\",");
    println!("  \"units\": \"wall_ms_and_sim_cycles\",");
    println!("  \"scene\": \"train-4000g-96px\",");
    println!("  \"arch\": \"{}\",", std::env::consts::ARCH);
    println!("{}", provenance_json());
    println!("  \"results\": {{");
    let mut rows = Vec::new();
    for variant in PipelineVariant::fig13_lineup() {
        // The structure build is timed separately from the render so a
        // regression in either shows up unmixed.
        let layout = grtx::LayoutConfig::default();
        let (build_ms, _) = time_ms(samples, || {
            let accel = setup.build_accel(&variant, &layout);
            u64::from(accel.height())
        });
        let accel = setup.build_accel(&variant, &layout);
        let (render_ms, cycles) = time_ms(samples, || {
            setup
                .run_with_accel(&accel, &variant, &options)
                .report
                .cycles
        });
        let slug = variant.name.to_lowercase().replace([' ', '-'], "_");
        rows.push(format!(
            "    \"{slug}_build_ms\": {build_ms:.2},\n    \
             \"{slug}_render_ms\": {render_ms:.2},\n    \
             \"{slug}_sim_cycles\": {cycles}"
        ));
    }
    println!("{}", rows.join(",\n"));
    println!("  }}");
    println!("}}");
}
