#![forbid(unsafe_code)]

//! Shared support for the paper-reproduction bench harnesses.
//!
//! Every bench target regenerates one table or figure from the paper's
//! evaluation section and prints the same rows/series the paper reports.
//! Scene scale and resolution default to `GRTX_SCALE=40` (1/40 of the
//! paper's Gaussian counts) and `GRTX_RES=96` for tractable wall-clock
//! time; set the environment variables for higher-fidelity runs
//! (`GRTX_SCALE=20 GRTX_RES=128` matches the paper's setup one-to-one,
//! modulo the documented synthetic-scene substitution).

use grtx::{PipelineVariant, RunOptions, SceneSetup};
use grtx_scene::SceneKind;

/// Seed used by all benches so every figure sees identical scenes.
pub const BENCH_SEED: u64 = 42;

/// Scene-scale divisor the smoke profile pins (1/800 of paper scale).
pub const SMOKE_SCALE_DIVISOR: &str = "800";

/// Resolution the smoke profile pins.
pub const SMOKE_RESOLUTION: &str = "32";

/// `true` when this bench run should use the fast smoke profile:
/// `cargo bench -- --test` (CI) or `GRTX_SMOKE=1`.
pub fn smoke_requested() -> bool {
    std::env::args().any(|a| a == "--test")
        || std::env::var("GRTX_SMOKE").is_ok_and(|v| v != "0" && !v.is_empty())
}

/// Applies the smoke profile by pinning `GRTX_SCALE`/`GRTX_RES` to tiny
/// values — unless the user already set them — so every bench target
/// finishes in seconds. Called from [`banner`], which every figure/table
/// bench prints before building scenes. Returns whether smoke is active.
pub fn apply_smoke_profile() -> bool {
    if !smoke_requested() {
        return false;
    }
    if std::env::var("GRTX_SCALE").is_err() {
        std::env::set_var("GRTX_SCALE", SMOKE_SCALE_DIVISOR);
    }
    if std::env::var("GRTX_RES").is_err() {
        std::env::set_var("GRTX_RES", SMOKE_RESOLUTION);
    }
    true
}

/// Builds the six evaluation scenes at the env-configured scale.
pub fn evaluation_scenes() -> Vec<SceneSetup> {
    let divisor = SceneSetup::env_divisor();
    let res = SceneSetup::env_resolution();
    SceneKind::ALL
        .iter()
        .map(|&kind| SceneSetup::evaluation(kind, divisor, res, BENCH_SEED))
        .collect()
}

/// Geometric mean of positive values.
pub fn geomean(values: &[f64]) -> f64 {
    if values.is_empty() {
        return 0.0;
    }
    let log_sum: f64 = values.iter().map(|v| v.max(1e-12).ln()).sum();
    (log_sum / values.len() as f64).exp()
}

/// Prints a figure/table banner with the run configuration. Also
/// applies the smoke profile when `--test` / `GRTX_SMOKE` asks for it.
pub fn banner(title: &str, paper_ref: &str) {
    let smoke = apply_smoke_profile();
    println!();
    println!("================================================================");
    println!("{title}");
    println!(
        "(reproduces {paper_ref}; scale divisor {}, resolution {}x{}{})",
        SceneSetup::env_divisor(),
        SceneSetup::env_resolution(),
        SceneSetup::env_resolution(),
        if smoke { "; SMOKE profile" } else { "" }
    );
    println!("================================================================");
}

/// Prints one row of named numeric columns.
pub fn row(label: &str, columns: &[(&str, f64)]) {
    print!("{label:<12}");
    for (name, value) in columns {
        print!("  {name}={value:<10.4}");
    }
    println!();
}

/// Default options (k = 16, Table I GPU) shared by most benches.
pub fn default_options() -> RunOptions {
    RunOptions::default()
}

/// The Fig. 13 variant lineup, re-exported for benches.
pub fn fig13_variants() -> [PipelineVariant; 4] {
    PipelineVariant::fig13_lineup()
}

/// Eight sibling boxes as one full BVH-8 node holds them — the
/// slab-test fixture shared by `benches/kernels.rs` and the committed
/// `BENCH_kernels.json` baseline dump, so their numbers stay
/// comparable. (Before the BVH-8 collapse this fixture held six boxes;
/// `slab6_*` rows in old baselines are not directly comparable to the
/// `slab8_*` rows dumped now.)
pub fn kernel_node_boxes() -> Vec<grtx_math::Aabb> {
    use grtx_math::{Aabb, Vec3};
    (0..8)
        .map(|i| {
            Aabb::from_center_half_extent(
                Vec3::new((i % 4) as f32 * 1.5, (i / 4) as f32 * 1.5, i as f32 * 0.4),
                Vec3::splat(0.8),
            )
        })
        .collect()
}

/// The ray the slab-test fixture is probed with.
pub fn kernel_slab_ray() -> grtx_math::Ray {
    use grtx_math::{Ray, Vec3};
    Ray::new(
        Vec3::new(-3.0, 0.4, -2.0),
        Vec3::new(1.0, 0.1, 0.6).normalized(),
    )
}

/// Four coherent rays (a primary-ray pixel quad) for the transposed
/// packet kernel bench: same origin, directions fanned a few milliradians
/// apart, exactly the shape `Camera::rays` tiles produce.
pub fn kernel_packet_rays() -> [grtx_math::Ray; 4] {
    use grtx_math::{Ray, Vec3};
    let origin = Vec3::new(-3.0, 0.4, -2.0);
    [
        Ray::new(origin, Vec3::new(1.0, 0.1, 0.6).normalized()),
        Ray::new(origin, Vec3::new(1.0, 0.104, 0.6).normalized()),
        Ray::new(origin, Vec3::new(1.0, 0.1, 0.604).normalized()),
        Ray::new(origin, Vec3::new(1.0, 0.104, 0.604).normalized()),
    ]
}

/// Four leaf triangles — the batched-triangle fixture shared by the
/// kernel bench and the baseline dump.
pub fn kernel_triangles() -> Vec<[grtx_math::Vec3; 3]> {
    use grtx_math::Vec3;
    (0..4)
        .map(|i| {
            let base = Vec3::new(i as f32 * 0.2 - 0.3, -0.4, 1.0 + i as f32 * 0.1);
            [
                base,
                base + Vec3::new(1.0, 0.1, 0.0),
                base + Vec3::new(0.3, 1.2, 0.1),
            ]
        })
        .collect()
}

/// The ray the triangle fixture is probed with.
pub fn kernel_tri_ray() -> grtx_math::Ray {
    use grtx_math::{Ray, Vec3};
    Ray::new(
        Vec3::new(0.1, 0.2, -3.0),
        Vec3::new(0.05, 0.02, 1.0).normalized(),
    )
}

/// The ray the node-visit sweep (and the `GRTX_PERF` speedup gate)
/// fires through the [`kernel_grid_prims`] BVH.
pub fn kernel_visit_ray() -> grtx_math::Ray {
    use grtx_math::{Ray, Vec3};
    Ray::new(
        Vec3::new(-10.0, 40.0, 45.0),
        Vec3::new(1.0, 0.1, 0.2).normalized(),
    )
}

/// Pseudo-random grid of build primitives shared by the kernel benches,
/// the committed `BENCH_kernels.json` baseline dump, and the
/// `GRTX_PERF`-gated kernel speedup test — one definition so their
/// numbers stay comparable.
pub fn kernel_grid_prims(n: usize) -> Vec<grtx_bvh::BuildPrim> {
    use grtx_math::Vec3;
    (0..n)
        .map(|i| {
            let p = Vec3::new(
                ((i * 131) % 97) as f32,
                ((i * 17) % 89) as f32,
                ((i * 7) % 101) as f32,
            );
            grtx_bvh::BuildPrim::from_aabb(grtx_math::Aabb::from_center_half_extent(
                p,
                Vec3::splat(0.4),
            ))
        })
        .collect()
}

/// AoS copy of a wide BVH's per-node child boxes, replicating the
/// pre-SIMD `Vec<WideChild>` layout for scalar-loop baselines.
#[allow(clippy::type_complexity)]
pub fn aos_node_boxes(
    bvh: &grtx_bvh::WideBvh,
) -> Vec<(usize, [grtx_math::Aabb; grtx_bvh::wide::MAX_WIDTH])> {
    bvh.nodes
        .iter()
        .map(|n| {
            let mut boxes = [grtx_math::Aabb::EMPTY; grtx_bvh::wide::MAX_WIDTH];
            for (i, c) in n.children().enumerate() {
                boxes[i] = c.aabb;
            }
            (n.len(), boxes)
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn geomean_of_identical_values_is_that_value() {
        assert!((geomean(&[2.0, 2.0, 2.0]) - 2.0).abs() < 1e-9);
    }

    #[test]
    fn geomean_of_reciprocals_is_one() {
        assert!((geomean(&[4.0, 0.25]) - 1.0).abs() < 1e-9);
    }

    #[test]
    fn geomean_empty_is_zero() {
        assert_eq!(geomean(&[]), 0.0);
    }
}
