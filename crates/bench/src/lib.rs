//! Shared support for the paper-reproduction bench harnesses.
//!
//! Every bench target regenerates one table or figure from the paper's
//! evaluation section and prints the same rows/series the paper reports.
//! Scene scale and resolution default to `GRTX_SCALE=40` (1/40 of the
//! paper's Gaussian counts) and `GRTX_RES=96` for tractable wall-clock
//! time; set the environment variables for higher-fidelity runs
//! (`GRTX_SCALE=20 GRTX_RES=128` matches the paper's setup one-to-one,
//! modulo the documented synthetic-scene substitution).

use grtx::{PipelineVariant, RunOptions, SceneSetup};
use grtx_scene::SceneKind;

/// Seed used by all benches so every figure sees identical scenes.
pub const BENCH_SEED: u64 = 42;

/// Builds the six evaluation scenes at the env-configured scale.
pub fn evaluation_scenes() -> Vec<SceneSetup> {
    let divisor = SceneSetup::env_divisor();
    let res = SceneSetup::env_resolution();
    SceneKind::ALL
        .iter()
        .map(|&kind| SceneSetup::evaluation(kind, divisor, res, BENCH_SEED))
        .collect()
}

/// Geometric mean of positive values.
pub fn geomean(values: &[f64]) -> f64 {
    if values.is_empty() {
        return 0.0;
    }
    let log_sum: f64 = values.iter().map(|v| v.max(1e-12).ln()).sum();
    (log_sum / values.len() as f64).exp()
}

/// Prints a figure/table banner with the run configuration.
pub fn banner(title: &str, paper_ref: &str) {
    println!();
    println!("================================================================");
    println!("{title}");
    println!("(reproduces {paper_ref}; scale divisor {}, resolution {}x{})",
        SceneSetup::env_divisor(),
        SceneSetup::env_resolution(),
        SceneSetup::env_resolution());
    println!("================================================================");
}

/// Prints one row of named numeric columns.
pub fn row(label: &str, columns: &[(&str, f64)]) {
    print!("{label:<12}");
    for (name, value) in columns {
        print!("  {name}={value:<10.4}");
    }
    println!();
}

/// Default options (k = 16, Table I GPU) shared by most benches.
pub fn default_options() -> RunOptions {
    RunOptions::default()
}

/// The Fig. 13 variant lineup, re-exported for benches.
pub fn fig13_variants() -> [PipelineVariant; 4] {
    PipelineVariant::fig13_lineup()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn geomean_of_identical_values_is_that_value() {
        assert!((geomean(&[2.0, 2.0, 2.0]) - 2.0).abs() < 1e-9);
    }

    #[test]
    fn geomean_of_reciprocals_is_one() {
        assert!((geomean(&[4.0, 0.25]) - 1.0).abs() < 1e-9);
    }

    #[test]
    fn geomean_empty_is_zero() {
        assert_eq!(geomean(&[]), 0.0);
    }
}
