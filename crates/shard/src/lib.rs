#![forbid(unsafe_code)]

//! Scene sharding: spatial shards with per-shard acceleration
//! structures, parallel builds, and deterministic sharded rendering.
//!
//! Multi-million-Gaussian scenes make the TLAS the build bottleneck: the
//! binned-SAH builder is serial and whole-scene. This crate splits a
//! [`GaussianScene`](grtx_scene::GaussianScene) into K spatial shards and
//! builds one acceleration subtree per shard in parallel:
//!
//! * [`ScenePartition`] — the spatial partitioner. Each cut is an
//!   axis-aligned plane chosen by the canonical builder's own binned-SAH
//!   decision (median fallback for degenerate distributions), and every
//!   Gaussian lands in exactly one shard.
//! * [`ShardedAccel`] — builds per-shard subtrees concurrently over
//!   `std::thread::scope` workers (the render engine's fan-out pattern)
//!   and stitches them, in shard order, under the *shard directory*: the
//!   small top-level shard BVH a ray walks before dispatching into a
//!   shard's subtree. Byte accounting is reported per shard and for the
//!   directory, summing exactly to the whole-structure
//!   [`BvhSizeReport`](grtx_bvh::BvhSizeReport).
//!
//! # Determinism guarantee
//!
//! Because shard boundaries are builder-aligned, the stitched structure
//! is **bit-identical** to the serial build — the same nodes, the same
//! primitive order, the same simulated fetch addresses. Rendering a
//! sharded scene therefore produces bit-identical images, cycle counts,
//! and statistics for *any* shard count and *any* thread count; sharding
//! changes build wall-clock time only. The equivalence is enforced by
//! this crate's structural tests and by the end-to-end render tests in
//! the experiment layer.
//!
//! Shard subtrees are self-contained (contiguous node and primitive
//! ranges), which is the foundation for incremental per-shard rebuilds,
//! out-of-core shard residency, and distributed rendering.
//!
//! The async frame pipeline (`grtx-pipeline`) reuses [`ShardedAccel`]
//! as its build stage: every rebuild frame of a stream constructs its
//! structure through this crate's parallel builder, and the determinism
//! guarantee above is what lets pipelined frames stay bit-identical to
//! sequential ones at any shard count.

pub mod accel;
pub mod partition;

pub use accel::{ShardInfo, ShardedAccel, ShardingSummary};
pub use partition::{ScenePartition, ShardSpec};

/// Worker threads a parallel phase should actually use: `requested = 0`
/// means all available cores, clamped to `1..=work_items`.
pub fn effective_threads(requested: usize, work_items: usize) -> usize {
    let hw = std::thread::available_parallelism().map_or(1, |n| n.get());
    let requested = if requested == 0 { hw } else { requested };
    requested.clamp(1, work_items.max(1))
}
