//! Sharded acceleration-structure construction.
//!
//! [`ShardedAccel::build`] splits the structure's build primitives into K
//! spatial shards along the canonical builder's own top-of-tree splits
//! ([`grtx_bvh::plan_frontier`]), builds one subtree per shard **in
//! parallel** over scoped worker threads (shard `s` goes to worker
//! `s % threads`, the same fan-out policy as the render engine), then
//! stitches subtrees back in shard order ([`grtx_bvh::assemble_wide_bvh`]).
//!
//! The stitched structure is **bit-identical** to the serial
//! [`AccelStruct::build`] — node arrays, primitive order, and therefore
//! every simulated fetch address. The shard *directory* (the small
//! top-level shard BVH a ray walks before dispatching into a shard's
//! subtree) is the materialized top of the stitched tree; per-shard node
//! and byte accounting is recovered by classifying each wide node by the
//! contiguous primitive range it covers, and merged deterministically in
//! shard order. Shard count and thread count therefore change build
//! wall-clock time only — never images, cycles, or statistics.

use crate::effective_threads;
use grtx_bvh::{
    assemble_wide_bvh, build_subtree, plan_frontier, AccelStruct, BinarySubtree, BoundingPrimitive,
    BuildPrim, BuilderConfig, BvhSizeReport, ChildKind, FrontierRange, LayoutConfig, MonolithicBvh,
    TwoLevelBvh, WideBvh,
};
use grtx_math::Aabb;
use grtx_scene::GaussianScene;
use grtx_telemetry::Telemetry;

/// Per-shard build outcome and accounting.
#[derive(Debug, Clone, PartialEq)]
pub struct ShardInfo {
    /// Shard id in canonical (left-to-right structure) order.
    pub id: usize,
    /// First position of the shard's primitives in the structure's
    /// `prim_order`.
    pub prim_start: usize,
    /// Number of build primitives the shard owns (Gaussians for two-level
    /// and custom-ellipsoid structures, proxy triangles for mesh
    /// monolithic ones).
    pub prim_count: usize,
    /// Union of the shard's primitive AABBs.
    pub bounds: Aabb,
    /// Byte-accurate accounting of the shard's slice of the structure
    /// (its subtree nodes plus its leaf/instance records).
    pub size: BvhSizeReport,
    /// Wall-clock seconds this shard's subtree build took on its worker.
    pub build_seconds: f64,
}

/// Deterministically merged sharding metadata, small enough to ride along
/// in experiment results.
///
/// All `*_seconds` fields come from the telemetry clock of the build's
/// [`Telemetry`] handle: wall-clock for the disabled/default handle and
/// for [`grtx_telemetry::ClockMode::Wall`], and exactly `0.0` under
/// [`grtx_telemetry::ClockMode::Null`] — which makes two null-clock
/// builds comparable with plain `==`.
#[derive(Debug, Clone, PartialEq)]
pub struct ShardingSummary {
    /// Number of shards actually built (≤ requested for tiny scenes).
    pub shard_count: usize,
    /// Worker threads the parallel build used.
    pub threads: usize,
    /// Shard-directory accounting: the top-level nodes above every shard
    /// subtree, plus the shared BLAS for two-level structures.
    pub directory: BvhSizeReport,
    /// Per-shard accounting in shard order.
    pub shard_sizes: Vec<BvhSizeReport>,
    /// Serial frontier-planning seconds.
    pub plan_seconds: f64,
    /// Wall-clock seconds of the parallel subtree fan-out.
    pub build_seconds: f64,
    /// Serial stitch + collapse seconds.
    pub assemble_seconds: f64,
}

/// An acceleration structure built shard-by-shard in parallel, with the
/// per-shard directory/accounting that sharding adds.
#[derive(Debug)]
pub struct ShardedAccel {
    accel: AccelStruct,
    shards: Vec<ShardInfo>,
    directory: BvhSizeReport,
    plan_seconds: f64,
    build_seconds: f64,
    assemble_seconds: f64,
    threads_used: usize,
}

impl ShardedAccel {
    /// Builds the structure `AccelStruct::build(scene, primitive,
    /// two_level, layout)` would produce — bit-identically — as `shards`
    /// spatial shards constructed on `threads` worker threads (`0` = all
    /// available cores, capped at the shard count).
    ///
    /// # Panics
    ///
    /// Panics if `primitive` is [`BoundingPrimitive::UnitSphere`] with a
    /// monolithic organization, exactly as the serial build does.
    pub fn build(
        scene: &GaussianScene,
        primitive: BoundingPrimitive,
        two_level: bool,
        layout: &LayoutConfig,
        shards: usize,
        threads: usize,
    ) -> Self {
        Self::build_traced(
            scene,
            primitive,
            two_level,
            layout,
            shards,
            threads,
            &Telemetry::disabled(),
        )
    }

    /// [`Self::build`] with telemetry: the planner, each shard subtree,
    /// and the stitch record spans (`shard.plan`, `shard.subtree`,
    /// `shard.assemble`), and the summary's wall-clock seconds route
    /// through the handle's clock. A disabled handle reproduces
    /// [`Self::build`] exactly; telemetry never changes the structure.
    #[allow(clippy::too_many_arguments)]
    pub fn build_traced(
        scene: &GaussianScene,
        primitive: BoundingPrimitive,
        two_level: bool,
        layout: &LayoutConfig,
        shards: usize,
        threads: usize,
        telemetry: &Telemetry,
    ) -> Self {
        if two_level {
            let prims = TwoLevelBvh::tlas_build_prims(scene);
            let config = TwoLevelBvh::tlas_builder_config(layout);
            let mut built = build_wide_parallel(&prims, &config, shards, threads, telemetry);
            let two =
                TwoLevelBvh::from_tlas(scene, primitive, layout, std::mem::take(&mut built.wide));
            let global = two.size_report;
            let accounting = PrimAccounting::Instances(layout.instance_bytes);
            Self::finish(
                AccelStruct::TwoLevel(two),
                built,
                global,
                layout.node_bytes,
                accounting,
            )
        } else {
            match primitive {
                BoundingPrimitive::CustomEllipsoid => {
                    let prims = MonolithicBvh::custom_build_prims(scene);
                    let config = MonolithicBvh::builder_config(layout);
                    let mut built =
                        build_wide_parallel(&prims, &config, shards, threads, telemetry);
                    let mono =
                        MonolithicBvh::assemble_custom(std::mem::take(&mut built.wide), layout);
                    let global = mono.size_report;
                    Self::finish(
                        AccelStruct::Monolithic(mono),
                        built,
                        global,
                        layout.node_bytes,
                        PrimAccounting::MonoPrims(layout.ellipsoid_prim_bytes),
                    )
                }
                BoundingPrimitive::Mesh20 | BoundingPrimitive::Mesh80 => {
                    let (prims, verts, gaussian_of) =
                        MonolithicBvh::mesh_build_prims(scene, primitive);
                    let config = MonolithicBvh::builder_config(layout);
                    let mut built =
                        build_wide_parallel(&prims, &config, shards, threads, telemetry);
                    let wide = std::mem::take(&mut built.wide);
                    let mono =
                        MonolithicBvh::assemble_mesh(primitive, verts, gaussian_of, wide, layout);
                    let global = mono.size_report;
                    Self::finish(
                        AccelStruct::Monolithic(mono),
                        built,
                        global,
                        layout.node_bytes,
                        PrimAccounting::MonoPrims(layout.triangle_bytes),
                    )
                }
                BoundingPrimitive::UnitSphere => {
                    panic!(
                        "unit-sphere primitives require the two-level (shared BLAS) organization"
                    )
                }
            }
        }
    }

    /// Classifies nodes, fills per-shard accounting, and wraps up.
    fn finish(
        accel: AccelStruct,
        built: ParallelWide,
        global: BvhSizeReport,
        node_bytes: u64,
        prim: PrimAccounting,
    ) -> Self {
        let bvh = match &accel {
            AccelStruct::TwoLevel(t) => &t.tlas,
            AccelStruct::Monolithic(m) => &m.bvh,
        };
        let (shard_nodes, dir_nodes) = classify_nodes(bvh, &built.ranges);
        let mut shards = Vec::with_capacity(built.ranges.len());
        let mut shard_prim_bytes_total = 0u64;
        for (i, range) in built.ranges.iter().enumerate() {
            let prim_bytes = match prim {
                PrimAccounting::Instances(stride) | PrimAccounting::MonoPrims(stride) => {
                    range.count as u64 * stride
                }
            };
            shard_prim_bytes_total += prim_bytes;
            let nodes = shard_nodes[i];
            let size = BvhSizeReport {
                total_bytes: nodes * node_bytes + prim_bytes,
                node_bytes: nodes * node_bytes,
                prim_bytes,
                tlas_bytes: match prim {
                    PrimAccounting::Instances(_) => nodes * node_bytes + prim_bytes,
                    PrimAccounting::MonoPrims(_) => 0,
                },
                blas_bytes: 0,
                node_count: nodes,
                prim_count: match prim {
                    PrimAccounting::Instances(_) => 0,
                    PrimAccounting::MonoPrims(_) => range.count as u64,
                },
                instance_count: match prim {
                    PrimAccounting::Instances(_) => range.count as u64,
                    PrimAccounting::MonoPrims(_) => 0,
                },
            };
            shards.push(ShardInfo {
                id: i,
                prim_start: range.start,
                prim_count: range.count,
                bounds: range.aabb,
                size,
                build_seconds: built.shard_seconds[i],
            });
        }
        // Everything not owned by a shard lands in the directory: the
        // top-level nodes above the shard subtrees, and (for two-level
        // structures) the shared BLAS every shard references.
        let blas_node_count = global.node_count - bvh.node_count() as u64;
        let directory = BvhSizeReport {
            total_bytes: dir_nodes * node_bytes + global.blas_bytes,
            node_bytes: (dir_nodes + blas_node_count) * node_bytes,
            prim_bytes: global.prim_bytes - shard_prim_bytes_total,
            tlas_bytes: match prim {
                PrimAccounting::Instances(_) => dir_nodes * node_bytes,
                PrimAccounting::MonoPrims(_) => 0,
            },
            blas_bytes: global.blas_bytes,
            node_count: dir_nodes + blas_node_count,
            prim_count: match prim {
                PrimAccounting::Instances(_) => global.prim_count,
                PrimAccounting::MonoPrims(_) => 0,
            },
            instance_count: 0,
        };
        debug_assert_eq!(
            directory.total_bytes + shards.iter().map(|s| s.size.total_bytes).sum::<u64>(),
            global.total_bytes,
            "shard + directory accounting must cover the structure exactly"
        );
        Self {
            accel,
            shards,
            directory,
            plan_seconds: built.plan_seconds,
            build_seconds: built.build_seconds,
            assemble_seconds: built.assemble_seconds,
            threads_used: built.threads_used,
        }
    }

    /// The built structure — bit-identical to the serial
    /// [`AccelStruct::build`], so it renders through the unchanged
    /// traversal and simulation paths.
    pub fn accel(&self) -> &AccelStruct {
        &self.accel
    }

    /// Consumes the wrapper, returning the structure.
    pub fn into_accel(self) -> AccelStruct {
        self.accel
    }

    /// Per-shard build outcomes, in shard order.
    pub fn shards(&self) -> &[ShardInfo] {
        &self.shards
    }

    /// Number of shards actually built.
    pub fn shard_count(&self) -> usize {
        self.shards.len()
    }

    /// Shard-directory accounting (top-level nodes + shared BLAS).
    pub fn directory(&self) -> &BvhSizeReport {
        &self.directory
    }

    /// Whole-structure size report (identical to the serial build's).
    pub fn size_report(&self) -> &BvhSizeReport {
        self.accel.size_report()
    }

    /// The build primitives shard `id` owns, as a slice of the
    /// structure's primitive order. For two-level and custom-ellipsoid
    /// structures these are Gaussian ids; for mesh monolithic structures
    /// they are proxy-triangle ids.
    pub fn shard_prims(&self, id: usize) -> &[u32] {
        let bvh = match &self.accel {
            AccelStruct::TwoLevel(t) => &t.tlas,
            AccelStruct::Monolithic(m) => &m.bvh,
        };
        let s = &self.shards[id];
        &bvh.prim_order[s.prim_start..s.prim_start + s.prim_count]
    }

    /// Worker threads the parallel build used.
    pub fn threads_used(&self) -> usize {
        self.threads_used
    }

    /// Serial frontier-planning seconds.
    pub fn plan_seconds(&self) -> f64 {
        self.plan_seconds
    }

    /// Wall-clock seconds of the parallel subtree fan-out.
    pub fn build_seconds(&self) -> f64 {
        self.build_seconds
    }

    /// Serial stitch + collapse seconds.
    pub fn assemble_seconds(&self) -> f64 {
        self.assemble_seconds
    }

    /// The summary embedded in experiment results.
    pub fn summary(&self) -> ShardingSummary {
        ShardingSummary {
            shard_count: self.shards.len(),
            threads: self.threads_used,
            directory: self.directory,
            shard_sizes: self.shards.iter().map(|s| s.size).collect(),
            plan_seconds: self.plan_seconds,
            build_seconds: self.build_seconds,
            assemble_seconds: self.assemble_seconds,
        }
    }
}

/// Which leaf-record accounting the structure kind uses.
#[derive(Debug, Clone, Copy)]
enum PrimAccounting {
    /// Two-level: shards own TLAS instance records.
    Instances(u64),
    /// Monolithic: shards own leaf primitive records.
    MonoPrims(u64),
}

/// Output of the parallel wide-BVH build.
struct ParallelWide {
    wide: WideBvh,
    ranges: Vec<FrontierRange>,
    shard_seconds: Vec<f64>,
    plan_seconds: f64,
    build_seconds: f64,
    assemble_seconds: f64,
    threads_used: usize,
}

/// Plans the shard frontier, fans subtree builds out over scoped worker
/// threads, and stitches — producing exactly `build_wide_bvh(prims,
/// config)`.
fn build_wide_parallel(
    prims: &[BuildPrim],
    config: &BuilderConfig,
    shards: usize,
    threads: usize,
    telemetry: &Telemetry,
) -> ParallelWide {
    let mut recorder = telemetry.recorder("shard-build");
    let plan_watch = telemetry.stopwatch();
    let mut indices: Vec<u32> = (0..prims.len() as u32).collect();
    let plan = recorder.scope("shard.plan", 0, |_| {
        plan_frontier(prims, &mut indices, shards, config)
    });
    let plan_seconds = plan_watch.seconds();
    let ranges = plan.ranges().to_vec();
    let k = ranges.len();
    let threads_used = effective_threads(threads, k);

    let build_watch = telemetry.stopwatch();
    let mut results: Vec<Option<(BinarySubtree, f64)>> = (0..k).map(|_| None).collect();
    {
        // Hand each worker its shards' disjoint index slices: shard `s`
        // goes to worker `s % threads` (the render engine's fan-out
        // policy). Results land back in shard order, so thread count can
        // only change wall-clock time.
        let mut per_worker: Vec<Vec<(usize, &mut [u32])>> =
            (0..threads_used).map(|_| Vec::new()).collect();
        let mut rest: &mut [u32] = &mut indices;
        for (i, range) in ranges.iter().enumerate() {
            let (head, tail) = rest.split_at_mut(range.count);
            per_worker[i % threads_used].push((i, head));
            rest = tail;
        }
        std::thread::scope(|scope| {
            let handles: Vec<_> = per_worker
                .into_iter()
                .enumerate()
                .map(|(worker, mine)| {
                    scope.spawn(move || {
                        let mut recorder = telemetry.recorder(format!("shard-worker-{worker:02}"));
                        mine.into_iter()
                            .map(|(i, slice)| {
                                let watch = telemetry.stopwatch();
                                let subtree = recorder.scope("shard.subtree", i as u64, |_| {
                                    build_subtree(prims, slice, config)
                                });
                                (i, subtree, watch.seconds())
                            })
                            .collect::<Vec<_>>()
                    })
                })
                .collect();
            for handle in handles {
                for (i, subtree, seconds) in handle.join().expect("shard build worker panicked") {
                    results[i] = Some((subtree, seconds));
                }
            }
        });
    }
    let build_seconds = build_watch.seconds();

    let mut subtrees = Vec::with_capacity(k);
    let mut shard_seconds = Vec::with_capacity(k);
    for result in results {
        let (subtree, seconds) = result.expect("every shard subtree built");
        subtrees.push(subtree);
        shard_seconds.push(seconds);
    }
    let assemble_watch = telemetry.stopwatch();
    let wide = recorder.scope("shard.assemble", 0, |_| {
        assemble_wide_bvh(&plan, subtrees, indices)
    });
    let assemble_seconds = assemble_watch.seconds();

    ParallelWide {
        wide,
        ranges,
        shard_seconds,
        plan_seconds,
        build_seconds,
        assemble_seconds,
        threads_used,
    }
}

/// Counts wide nodes per shard: a node belongs to shard `s` when the
/// contiguous `prim_order` range its subtree covers lies inside `s`'s
/// range; every other node (the top of the tree above the shard
/// subtrees) is a directory node. Returns `(per-shard counts, directory
/// count)`.
fn classify_nodes(bvh: &WideBvh, ranges: &[FrontierRange]) -> (Vec<u64>, u64) {
    let mut shard_nodes = vec![0u64; ranges.len()];
    let mut dir_nodes = 0u64;
    if bvh.node_count() == 0 || ranges.is_empty() {
        return (shard_nodes, dir_nodes);
    }
    let mut coverage = vec![(u32::MAX, 0u32); bvh.node_count()];
    node_coverage(bvh, 0, &mut coverage);
    let starts: Vec<u32> = ranges.iter().map(|r| r.start as u32).collect();
    for &(lo, hi) in &coverage {
        let shard = starts.partition_point(|&s| s <= lo) - 1;
        let end = (ranges[shard].start + ranges[shard].count) as u32;
        if hi <= end {
            shard_nodes[shard] += 1;
        } else {
            dir_nodes += 1;
        }
    }
    (shard_nodes, dir_nodes)
}

/// Post-order computation of each node's `prim_order` coverage
/// `[lo, hi)`.
fn node_coverage(bvh: &WideBvh, id: u32, coverage: &mut [(u32, u32)]) -> (u32, u32) {
    let mut lo = u32::MAX;
    let mut hi = 0u32;
    for child in bvh.nodes[id as usize].children() {
        let (s, e) = match child.kind {
            ChildKind::Leaf { start, count } => (start, start + count),
            ChildKind::Node(c) => node_coverage(bvh, c, coverage),
        };
        lo = lo.min(s);
        hi = hi.max(e);
    }
    coverage[id as usize] = (lo, hi);
    (lo, hi)
}

#[cfg(test)]
mod tests {
    use super::*;
    use grtx_math::Vec3;
    use grtx_scene::Gaussian;

    fn grid_scene(n: usize) -> GaussianScene {
        (0..n)
            .map(|i| {
                Gaussian::isotropic(
                    Vec3::new(
                        (i % 11) as f32,
                        ((i / 11) % 6) as f32,
                        (i / 66) as f32 * 1.5,
                    ),
                    0.2,
                    0.6,
                    Vec3::ONE,
                )
            })
            .collect()
    }

    #[test]
    fn accounting_sums_to_the_global_report() {
        let scene = grid_scene(120);
        for (primitive, two_level) in [
            (BoundingPrimitive::UnitSphere, true),
            (BoundingPrimitive::Mesh20, true),
            (BoundingPrimitive::Mesh20, false),
            (BoundingPrimitive::CustomEllipsoid, false),
        ] {
            let sharded =
                ShardedAccel::build(&scene, primitive, two_level, &LayoutConfig::default(), 4, 2);
            let total: u64 = sharded.directory().total_bytes
                + sharded
                    .shards()
                    .iter()
                    .map(|s| s.size.total_bytes)
                    .sum::<u64>();
            assert_eq!(
                total,
                sharded.size_report().total_bytes,
                "{primitive} two_level={two_level}: bytes must sum exactly"
            );
            let nodes: u64 = sharded.directory().node_count
                + sharded
                    .shards()
                    .iter()
                    .map(|s| s.size.node_count)
                    .sum::<u64>();
            assert_eq!(nodes, sharded.size_report().node_count);
        }
    }

    #[test]
    fn shard_prims_tile_the_prim_order() {
        let scene = grid_scene(90);
        let sharded = ShardedAccel::build(
            &scene,
            BoundingPrimitive::UnitSphere,
            true,
            &LayoutConfig::default(),
            6,
            0,
        );
        assert_eq!(sharded.shard_count(), 6);
        let mut all: Vec<u32> = (0..6)
            .flat_map(|i| sharded.shard_prims(i).to_vec())
            .collect();
        assert_eq!(all.len(), 90);
        all.sort_unstable();
        assert_eq!(all, (0..90).collect::<Vec<u32>>());
    }

    #[test]
    fn empty_scene_builds_empty_sharded_structure() {
        let sharded = ShardedAccel::build(
            &GaussianScene::default(),
            BoundingPrimitive::UnitSphere,
            true,
            &LayoutConfig::default(),
            4,
            2,
        );
        assert_eq!(sharded.shard_count(), 0);
        // The shared BLAS exists even without instances; it is all the
        // directory holds.
        assert_eq!(
            sharded.directory().node_count,
            sharded.size_report().node_count
        );
        assert_eq!(
            sharded.directory().total_bytes,
            sharded.size_report().total_bytes
        );
    }

    #[test]
    #[should_panic(expected = "two-level")]
    fn unit_sphere_monolithic_panics() {
        let _ = ShardedAccel::build(
            &grid_scene(10),
            BoundingPrimitive::UnitSphere,
            false,
            &LayoutConfig::default(),
            2,
            1,
        );
    }
}
