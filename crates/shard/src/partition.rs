//! Spatial partitioning of a [`GaussianScene`] into shards.
//!
//! The partitioner replays the top of the canonical binned-SAH recursion
//! over the per-Gaussian world AABBs (`world_aabbs()`): every cut is an
//! axis-aligned plane through the centroid distribution — the exact cut
//! the serial TLAS builder would make at that node, with a median
//! fallback for degenerate distributions. Splitting always divides the
//! most populous shard, so populations stay balanced.
//!
//! Builder alignment is what makes sharding *invisible*: a frontier of
//! builder splits is an antichain of the canonical build recursion, so
//! per-shard subtrees reassemble into the exact serial structure (see
//! [`crate::ShardedAccel`]) and sharded rendering stays bit-identical to
//! the unsharded path.

use grtx_bvh::{plan_frontier, BuilderConfig, TwoLevelBvh};
use grtx_math::Aabb;
use grtx_scene::GaussianScene;

/// One spatial shard: a subset of the scene's Gaussians plus its bounds.
#[derive(Debug, Clone, PartialEq)]
pub struct ShardSpec {
    /// Shard id, `0..partition.len()`, in canonical (left-to-right
    /// structure) order.
    pub id: usize,
    /// Global Gaussian ids owned by this shard. Every scene Gaussian
    /// appears in exactly one shard.
    pub gaussians: Vec<u32>,
    /// Union of the member Gaussians' world AABBs.
    pub bounds: Aabb,
}

impl ShardSpec {
    /// Number of Gaussians in the shard.
    pub fn len(&self) -> usize {
        self.gaussians.len()
    }

    /// `true` if the shard owns no Gaussians (never produced by the
    /// partitioner; present for API completeness).
    pub fn is_empty(&self) -> bool {
        self.gaussians.is_empty()
    }
}

/// A complete spatial partition of a scene into K shards.
#[derive(Debug, Clone)]
pub struct ScenePartition {
    shards: Vec<ShardSpec>,
    bounds: Aabb,
}

impl ScenePartition {
    /// Partitions `scene` into (up to) `shards` spatial shards with the
    /// TLAS split discipline (any shard with more than one Gaussian can
    /// split further). Scenes with at least `shards` Gaussians always
    /// yield exactly `shards` shards; smaller scenes yield one singleton
    /// shard per Gaussian, and an empty scene yields no shards.
    pub fn new(scene: &GaussianScene, shards: usize) -> Self {
        Self::with_min_split(scene, shards, 1)
    }

    /// Partitions with an explicit split floor: shards stop splitting at
    /// or below `min_split` Gaussians — matching a builder whose
    /// `max_leaf_size` is `min_split` keeps the frontier build-aligned.
    pub fn with_min_split(scene: &GaussianScene, shards: usize, min_split: usize) -> Self {
        let prims = TwoLevelBvh::tlas_build_prims(scene);
        let mut indices: Vec<u32> = (0..prims.len() as u32).collect();
        let config = BuilderConfig {
            max_leaf_size: min_split.max(1),
            ..Default::default()
        };
        let plan = plan_frontier(&prims, &mut indices, shards, &config);
        let shards = plan
            .ranges()
            .iter()
            .enumerate()
            .map(|(id, range)| ShardSpec {
                id,
                gaussians: indices[range.start..range.start + range.count].to_vec(),
                bounds: range.aabb,
            })
            .collect();
        Self {
            shards,
            bounds: scene.bounds(),
        }
    }

    /// The shards, in canonical order.
    pub fn shards(&self) -> &[ShardSpec] {
        &self.shards
    }

    /// Number of shards.
    pub fn len(&self) -> usize {
        self.shards.len()
    }

    /// `true` for the partition of an empty scene.
    pub fn is_empty(&self) -> bool {
        self.shards.is_empty()
    }

    /// The partitioned scene's bounds (equals the union of all shard
    /// bounds).
    pub fn bounds(&self) -> Aabb {
        self.bounds
    }

    /// Owning shard of each Gaussian: `map[g] == shard id`.
    pub fn shard_of_gaussian(&self) -> Vec<usize> {
        let total: usize = self.shards.iter().map(ShardSpec::len).sum();
        let mut map = vec![usize::MAX; total];
        for shard in &self.shards {
            for &g in &shard.gaussians {
                map[g as usize] = shard.id;
            }
        }
        map
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use grtx_math::Vec3;
    use grtx_scene::Gaussian;

    fn grid_scene(n: usize) -> GaussianScene {
        (0..n)
            .map(|i| {
                Gaussian::isotropic(
                    Vec3::new((i % 13) as f32, ((i / 13) % 7) as f32, (i / 91) as f32),
                    0.2,
                    0.6,
                    Vec3::ONE,
                )
            })
            .collect()
    }

    #[test]
    fn partition_covers_scene_exactly() {
        let scene = grid_scene(200);
        let p = ScenePartition::new(&scene, 8);
        assert_eq!(p.len(), 8);
        let mut all: Vec<u32> = p
            .shards()
            .iter()
            .flat_map(|s| s.gaussians.clone())
            .collect();
        all.sort_unstable();
        assert_eq!(all, (0..200).collect::<Vec<u32>>());
    }

    #[test]
    fn shard_bounds_union_to_scene_bounds() {
        let scene = grid_scene(150);
        let p = ScenePartition::new(&scene, 5);
        let mut union = Aabb::EMPTY;
        for s in p.shards() {
            union = union.union(&s.bounds);
        }
        assert_eq!(union, scene.bounds());
    }

    #[test]
    fn tiny_and_empty_scenes() {
        let empty = ScenePartition::new(&GaussianScene::default(), 4);
        assert!(empty.is_empty());
        let three = ScenePartition::new(&grid_scene(3), 16);
        assert_eq!(three.len(), 3, "one singleton shard per Gaussian");
    }

    #[test]
    fn shard_of_gaussian_is_consistent() {
        let scene = grid_scene(64);
        let p = ScenePartition::new(&scene, 4);
        let map = p.shard_of_gaussian();
        for shard in p.shards() {
            for &g in &shard.gaussians {
                assert_eq!(map[g as usize], shard.id);
            }
        }
    }
}
