//! Property tests for the spatial partitioner: for arbitrary scenes and
//! shard counts, every Gaussian lands in exactly one shard, shard bounds
//! union to the scene bounds, the requested shard count is honored
//! whenever the scene is large enough, and degenerate scenes are handled.

use grtx_math::{Aabb, Vec3};
use grtx_scene::{Gaussian, GaussianScene};
use grtx_shard::ScenePartition;
use proptest::prelude::*;

/// Arbitrary valid scenes: positions in a box, anisotropic-ish scales.
fn arb_scene(max_len: usize) -> impl Strategy<Value = GaussianScene> {
    prop::collection::vec(
        (
            (-20.0f32..20.0, -8.0f32..8.0, -20.0f32..20.0),
            0.05f32..1.5,
            0.1f32..1.0,
        ),
        1..max_len,
    )
    .prop_map(|params| {
        params
            .into_iter()
            .map(|((x, y, z), sigma, opacity)| {
                Gaussian::isotropic(Vec3::new(x, y, z), sigma, opacity, Vec3::ONE)
            })
            .collect()
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Disjoint cover: sorting the concatenated shard membership yields
    /// exactly the scene's Gaussian ids, each once.
    #[test]
    fn every_gaussian_lands_in_exactly_one_shard(
        scene in arb_scene(250),
        k in 1usize..24,
    ) {
        let partition = ScenePartition::new(&scene, k);
        let mut all: Vec<u32> = partition
            .shards()
            .iter()
            .flat_map(|s| s.gaussians.iter().copied())
            .collect();
        all.sort_unstable();
        let expected: Vec<u32> = (0..scene.len() as u32).collect();
        prop_assert_eq!(all, expected);
    }

    /// Shard bounds union exactly to the scene bounds (min/max unions are
    /// exact in IEEE arithmetic, so this is equality, not containment).
    #[test]
    fn shard_bounds_union_to_scene_bounds(
        scene in arb_scene(200),
        k in 1usize..16,
    ) {
        let partition = ScenePartition::new(&scene, k);
        let mut union = Aabb::EMPTY;
        for shard in partition.shards() {
            prop_assert!(!shard.is_empty(), "partitioner never emits empty shards");
            union = union.union(&shard.bounds);
        }
        prop_assert_eq!(union, scene.bounds());
    }

    /// Exactly `k` shards whenever the scene has at least `k` Gaussians;
    /// one singleton shard per Gaussian otherwise.
    #[test]
    fn shard_count_is_respected(
        scene in arb_scene(120),
        k in 1usize..40,
    ) {
        let partition = ScenePartition::new(&scene, k);
        prop_assert_eq!(partition.len(), k.min(scene.len()));
    }

    /// Coincident Gaussians (all centroids equal) exercise the median
    /// fallback and must still partition cleanly.
    #[test]
    fn degenerate_coincident_scenes_partition(
        n in 1usize..80,
        k in 1usize..12,
    ) {
        let scene: GaussianScene = (0..n)
            .map(|_| Gaussian::isotropic(Vec3::ONE, 0.3, 0.5, Vec3::ONE))
            .collect();
        let partition = ScenePartition::new(&scene, k);
        prop_assert_eq!(partition.len(), k.min(n));
        let total: usize = partition.shards().iter().map(|s| s.len()).sum();
        prop_assert_eq!(total, n);
    }
}

#[test]
fn empty_scene_yields_no_shards() {
    let partition = ScenePartition::new(&GaussianScene::default(), 8);
    assert!(partition.is_empty());
    assert_eq!(partition.len(), 0);
    assert!(partition.bounds().is_empty());
}

#[test]
fn min_split_floor_stops_splitting() {
    // With a split floor of 8 (the monolithic leaf width), splitting
    // stops once every shard holds at most 8 Gaussians — far fewer than
    // the 64 requested shards.
    let scene: GaussianScene = (0..16)
        .map(|i| Gaussian::isotropic(Vec3::new(i as f32, 0.0, 0.0), 0.2, 0.5, Vec3::ONE))
        .collect();
    let partition = ScenePartition::with_min_split(&scene, 64, 8);
    assert!(partition.len() >= 2, "a 16-Gaussian scene must split");
    assert!(
        partition.shards().iter().all(|s| s.len() <= 8),
        "no shard may exceed the split floor after exhaustive splitting"
    );
}
