//! The sharding contract at the structure level: for every organization
//! and any shard/thread count, the sharded parallel build produces the
//! exact structure the serial build produces — node arrays, primitive
//! order, heights, and byte layout all bit-identical.

use grtx_bvh::{AccelStruct, BoundingPrimitive, LayoutConfig};
use grtx_scene::synth::generate_scene;
use grtx_scene::SceneKind;
use grtx_shard::ShardedAccel;

fn test_scene(budget: usize, seed: u64) -> grtx_scene::GaussianScene {
    generate_scene(
        SceneKind::Train.profile().with_gaussian_budget(budget),
        seed,
    )
}

#[test]
fn sharded_two_level_matches_serial_bitwise() {
    let scene = test_scene(700, 11);
    let layout = LayoutConfig::default();
    for primitive in [
        BoundingPrimitive::UnitSphere,
        BoundingPrimitive::Mesh20,
        BoundingPrimitive::Mesh80,
        BoundingPrimitive::CustomEllipsoid,
    ] {
        let serial = AccelStruct::build(&scene, primitive, true, &layout);
        let AccelStruct::TwoLevel(serial) = &serial else {
            unreachable!()
        };
        for shards in [1usize, 2, 8, 57] {
            for threads in [1usize, 4] {
                let sharded =
                    ShardedAccel::build(&scene, primitive, true, &layout, shards, threads);
                let AccelStruct::TwoLevel(two) = sharded.accel() else {
                    panic!("expected a two-level structure")
                };
                assert_eq!(
                    serial.tlas, two.tlas,
                    "{primitive} shards={shards} threads={threads}: TLAS diverged"
                );
                assert_eq!(serial.size_report, two.size_report);
                assert_eq!(serial.tlas_node_base, two.tlas_node_base);
                assert_eq!(serial.instance_base, two.instance_base);
                assert_eq!(serial.blas_node_base, two.blas_node_base);
                assert_eq!(serial.blas_prim_base, two.blas_prim_base);
                assert_eq!(serial.height(), two.height());
            }
        }
    }
}

#[test]
fn sharded_monolithic_matches_serial_bitwise() {
    let scene = test_scene(250, 3);
    let layout = LayoutConfig::default();
    for primitive in [
        BoundingPrimitive::Mesh20,
        BoundingPrimitive::CustomEllipsoid,
    ] {
        let serial = AccelStruct::build(&scene, primitive, false, &layout);
        let AccelStruct::Monolithic(serial) = &serial else {
            unreachable!()
        };
        for shards in [2usize, 8] {
            let sharded = ShardedAccel::build(&scene, primitive, false, &layout, shards, 3);
            let AccelStruct::Monolithic(mono) = sharded.accel() else {
                panic!("expected a monolithic structure")
            };
            assert_eq!(
                serial.bvh, mono.bvh,
                "{primitive} shards={shards}: BVH diverged"
            );
            assert_eq!(serial.size_report, mono.size_report);
            assert_eq!(serial.node_base, mono.node_base);
            assert_eq!(serial.prim_base, mono.prim_base);
        }
    }
}

#[test]
fn sharded_build_is_independent_of_thread_count() {
    let scene = test_scene(500, 29);
    let layout = LayoutConfig::amd();
    let reference = ShardedAccel::build(&scene, BoundingPrimitive::UnitSphere, true, &layout, 8, 1);
    for threads in [2usize, 3, 8, 0] {
        let other = ShardedAccel::build(
            &scene,
            BoundingPrimitive::UnitSphere,
            true,
            &layout,
            8,
            threads,
        );
        let (AccelStruct::TwoLevel(a), AccelStruct::TwoLevel(b)) =
            (reference.accel(), other.accel())
        else {
            panic!("expected two-level structures")
        };
        assert_eq!(a.tlas, b.tlas, "threads={threads}");
        assert_eq!(reference.shards().len(), other.shards().len());
        for (x, y) in reference.shards().iter().zip(other.shards()) {
            assert_eq!(x.id, y.id);
            assert_eq!(x.prim_start, y.prim_start);
            assert_eq!(x.prim_count, y.prim_count);
            assert_eq!(x.bounds, y.bounds);
            assert_eq!(x.size, y.size);
        }
        assert_eq!(reference.directory(), other.directory());
    }
}

#[test]
fn shard_count_scales_directory_but_never_totals() {
    let scene = test_scene(600, 5);
    let layout = LayoutConfig::default();
    let serial = AccelStruct::build(&scene, BoundingPrimitive::UnitSphere, true, &layout);
    let mut last_dir_nodes = 0;
    for shards in [1usize, 4, 16] {
        let sharded = ShardedAccel::build(
            &scene,
            BoundingPrimitive::UnitSphere,
            true,
            &layout,
            shards,
            0,
        );
        assert_eq!(sharded.size_report(), serial.size_report());
        let dir_nodes = sharded.directory().node_count;
        assert!(
            dir_nodes >= last_dir_nodes,
            "directory grows (weakly) with shard count"
        );
        last_dir_nodes = dir_nodes;
    }
}
