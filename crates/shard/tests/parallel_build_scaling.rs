//! Wall-clock contract of the parallel shard build, mirroring the render
//! engine's `parallel_scaling` test: a K-shard build on 4 threads must
//! beat 1 thread on a large synthetic scene.
//!
//! Wall-clock assertions are too noisy for shared CI runners, so this
//! only arms itself on dedicated hardware: set `GRTX_PERF=1` with ≥ 4
//! cores available (both conditions are checked, with a note when
//! skipping).

use grtx_bvh::{BoundingPrimitive, LayoutConfig};
use grtx_scene::synth::generate_scene;
use grtx_scene::SceneKind;
use grtx_shard::ShardedAccel;
use std::time::Instant;

#[test]
fn four_threads_speed_up_sharded_tlas_build() {
    if std::env::var("GRTX_PERF").is_err() {
        eprintln!("skipping speedup assertion: set GRTX_PERF=1 on dedicated >=4-core hardware");
        return;
    }
    let hw = std::thread::available_parallelism().map_or(1, |n| n.get());
    if hw < 4 {
        eprintln!("skipping speedup assertion: needs >= 4 cores, host has {hw}");
        return;
    }
    let scene = generate_scene(SceneKind::Train.profile().with_gaussian_budget(400_000), 42);
    let layout = LayoutConfig::default();
    let time = |threads: usize| {
        // Warm once, then take the best of two runs to damp scheduler
        // noise.
        let mut best = f64::INFINITY;
        for _ in 0..2 {
            let start = Instant::now();
            let sharded = ShardedAccel::build(
                &scene,
                BoundingPrimitive::UnitSphere,
                true,
                &layout,
                32,
                threads,
            );
            best = best.min(start.elapsed().as_secs_f64());
            assert_eq!(sharded.shard_count(), 32);
        }
        best
    };
    let serial = time(1);
    let parallel = time(4);
    let speedup = serial / parallel;
    assert!(
        speedup > 1.5,
        "4-thread shard build must be > 1.5x faster than 1 (got {speedup:.2}x: {serial:.3}s vs {parallel:.3}s)"
    );
}
