#![forbid(unsafe_code)]

//! CLI for the workspace determinism-lint engine.
//!
//! ```text
//! grtx-analyze [--root PATH] [--json [PATH]] [--deny] [--list]
//! ```
//!
//! * `--root PATH` — workspace root to scan (default: current dir).
//! * `--json [PATH]` — emit the `grtx-analyze-v1` JSON report to PATH
//!   (or stdout when no path follows).
//! * `--deny` — exit non-zero if any finding survives waiver matching
//!   (the CI gate).
//! * `--list` — print the lint table and exit.

use std::path::PathBuf;
use std::process::ExitCode;

use grtx_analyze::{analyze_workspace, LINTS};

fn main() -> ExitCode {
    let mut root = PathBuf::from(".");
    let mut deny = false;
    let mut json: Option<Option<PathBuf>> = None;
    let mut list = false;

    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut i = 0;
    while i < args.len() {
        match args[i].as_str() {
            "--root" => {
                i += 1;
                match args.get(i) {
                    Some(p) => root = PathBuf::from(p),
                    None => return usage("--root needs a path"),
                }
            }
            "--json" => {
                // Optional path operand: consume the next arg unless it
                // is another flag.
                match args.get(i + 1) {
                    Some(p) if !p.starts_with("--") => {
                        json = Some(Some(PathBuf::from(p)));
                        i += 1;
                    }
                    _ => json = Some(None),
                }
            }
            "--deny" => deny = true,
            "--list" => list = true,
            "--help" | "-h" => return usage(""),
            other => return usage(&format!("unknown argument `{other}`")),
        }
        i += 1;
    }

    if list {
        for l in LINTS {
            println!("{:<28} {}", l.id, l.summary);
        }
        return ExitCode::SUCCESS;
    }

    let report = match analyze_workspace(&root) {
        Ok(r) => r,
        Err(e) => {
            eprintln!("grtx-analyze: {e}");
            return ExitCode::from(2);
        }
    };

    match &json {
        Some(Some(path)) => {
            if let Some(parent) = path.parent() {
                if !parent.as_os_str().is_empty() {
                    if let Err(e) = std::fs::create_dir_all(parent) {
                        eprintln!("grtx-analyze: create {}: {e}", parent.display());
                        return ExitCode::from(2);
                    }
                }
            }
            if let Err(e) = std::fs::write(path, report.to_json()) {
                eprintln!("grtx-analyze: write {}: {e}", path.display());
                return ExitCode::from(2);
            }
            eprint!("{}", report.to_text());
            eprintln!("grtx-analyze: JSON report written to {}", path.display());
        }
        Some(None) => {
            println!("{}", report.to_json());
            eprint!("{}", report.to_text());
        }
        None => print!("{}", report.to_text()),
    }

    if deny && !report.is_clean() {
        eprintln!(
            "grtx-analyze: --deny: {} finding(s) — fix or waive with \
             `// grtx-allow(<lint-id>): <reason>`",
            report.findings.len()
        );
        return ExitCode::FAILURE;
    }
    ExitCode::SUCCESS
}

fn usage(err: &str) -> ExitCode {
    if !err.is_empty() {
        eprintln!("grtx-analyze: {err}");
    }
    eprintln!("usage: grtx-analyze [--root PATH] [--json [PATH]] [--deny] [--list]");
    if err.is_empty() {
        ExitCode::SUCCESS
    } else {
        ExitCode::from(2)
    }
}
