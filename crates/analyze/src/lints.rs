//! The determinism lint suite and the per-file analysis engine.
//!
//! Every lint here turns one clause of the repo's bit-identity contract
//! into a machine-checked source invariant. Lints operate on the lexed
//! views from [`crate::lexer`] — string payloads can neither trigger nor
//! suppress a lint, and annotations (`SAFETY:`, waivers) are read only
//! from real comments.
//!
//! # Waivers
//!
//! A finding is suppressed by a line-level waiver comment:
//!
//! ```text
//! // grtx-allow(<lint-id>): <reason>
//! ```
//!
//! A *trailing* waiver (sharing a line with code) covers that line. A
//! waiver on its own line covers the next item or statement — the same
//! extent an attribute would attach to — so one waiver above a `use`,
//! `fn`, or multi-line `let` covers all of it. The reason is mandatory:
//! a waiver without one is itself a finding (`waiver-needs-reason`), as
//! is a waiver naming a lint that does not exist (`waiver-unknown-lint`).

use crate::lexer::{find_word, has_word, lex, Line};

/// The crate allowed to contain `unsafe` (behind an audit contract).
pub const UNSAFE_CRATE: &str = "grtx-math";
/// The crate allowed to read wall clocks (behind `ClockMode`).
pub const CLOCK_CRATE: &str = "grtx-telemetry";
/// The crates allowed to catch or rethrow panics (the fault-injection
/// machinery and the pipeline's single recovery choke point).
pub const PANIC_CRATES: &[&str] = &["grtx-fault", "grtx-pipeline"];

/// Where a file sits in its crate — determines which lints apply.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Role {
    /// `src/` — production code; every lint applies.
    Src,
    /// `tests/` — integration tests.
    Tests,
    /// `benches/` — bench harnesses.
    Benches,
    /// `examples/` — examples.
    Examples,
}

impl Role {
    /// Stable lowercase name used in reports.
    pub fn name(self) -> &'static str {
        match self {
            Role::Src => "src",
            Role::Tests => "tests",
            Role::Benches => "benches",
            Role::Examples => "examples",
        }
    }
}

/// One source file plus the crate context the lints need.
#[derive(Debug, Clone)]
pub struct SourceSpec {
    /// Package name from the crate's `Cargo.toml` (e.g. `grtx-math`).
    pub crate_name: String,
    /// Workspace-relative path, used verbatim in findings.
    pub path: String,
    /// Directory role within the crate.
    pub role: Role,
    /// `true` for crate roots (`src/lib.rs`, `src/main.rs`), where the
    /// crate-level attribute lint applies.
    pub is_crate_root: bool,
    /// Full source text.
    pub content: String,
}

/// A lint violation: `file:line` plus the lint id and a message.
#[derive(Debug, Clone, PartialEq, Eq, PartialOrd, Ord)]
pub struct Finding {
    /// Workspace-relative file path.
    pub file: String,
    /// 1-based line number.
    pub line: usize,
    /// Lint id (see [`LINTS`]).
    pub lint: &'static str,
    /// What fired, in context.
    pub message: String,
}

/// A waiver comment found in a file, with its resolution.
#[derive(Debug, Clone)]
pub struct WaiverRecord {
    /// Workspace-relative file path.
    pub file: String,
    /// 1-based line of the waiver comment.
    pub line: usize,
    /// Lint id the waiver names.
    pub lint: String,
    /// The mandatory justification.
    pub reason: String,
    /// `true` once the waiver suppressed at least one finding.
    pub used: bool,
}

/// Static description of one lint.
#[derive(Debug, Clone, Copy)]
pub struct LintInfo {
    /// Stable kebab-case id, used in reports and waivers.
    pub id: &'static str,
    /// One-line summary of what fires.
    pub summary: &'static str,
    /// Why the invariant matters for bit-identity / safety.
    pub rationale: &'static str,
}

/// The eight determinism/safety lints plus the two waiver meta-lints.
pub const LINTS: &[LintInfo] = &[
    LintInfo {
        id: "unsafe-needs-safety",
        summary:
            "every `unsafe` block or fn carries a `SAFETY:` comment (or `# Safety` doc section)",
        rationale: "unsafe proof obligations must be written down where the code is, so the \
                    audit survives refactors instead of living in reviewers' heads",
    },
    LintInfo {
        id: "forbid-unsafe-outside-math",
        summary: "crate roots outside grtx-math declare #![forbid(unsafe_code)]; grtx-math \
                  declares #![deny(unsafe_op_in_unsafe_fn)]",
        rationale: "grtx-math is the single audited unsafe boundary (SIMD kernels); the compiler \
                    enforces that unsafe cannot reappear anywhere else",
    },
    LintInfo {
        id: "deterministic-collections",
        summary: "no raw std HashMap/HashSet in src trees — use seeded FastMap/FastSet or BTreeMap",
        rationale: "RandomState seeds and hash-order iteration vary run to run; one stray \
                    hash-order loop in a merge path silently breaks bit-identity",
    },
    LintInfo {
        id: "no-wall-clock",
        summary: "Instant/SystemTime only inside grtx-telemetry (and tests/benches/examples)",
        rationale: "wall-clock reads in simulation or merge paths leak nondeterminism into \
                    results; timing flows through grtx-telemetry's ClockMode, which pins to \
                    a null clock in determinism tests",
    },
    LintInfo {
        id: "float-total-order",
        summary: "no sort_by/max_by/min_by over partial_cmp on floats — use total_cmp",
        rationale: "partial_cmp is not a total order (NaN, -0.0 vs +0.0); traversal sorts on \
                    raw bits and the SIMD kernels canonicalize -0.0, so float ordering must \
                    go through total_cmp",
    },
    LintInfo {
        id: "fma-containment",
        summary: "mul_add only inside cfg(feature = \"fma\") regions of grtx-math",
        rationale: "fused multiply-add contracts two roundings into one and changes bits; the \
                    `fma` feature is the only sanctioned opt-in, everywhere else contraction \
                    would silently fork the bit-identity baseline",
    },
    LintInfo {
        id: "no-unscoped-spawn",
        summary: "no std::thread::spawn — scoped pools only",
        rationale: "detached threads outlive their launch scope and merge results in completion \
                    order; std::thread::scope fan-outs join deterministically before results \
                    are combined",
    },
    LintInfo {
        id: "panic-containment",
        summary: "catch_unwind/resume_unwind only inside grtx-fault and grtx-pipeline",
        rationale: "a panic caught outside the pipeline's single choke point can swallow an \
                    injected fault or a poisoned-pool payload before the retry/quarantine \
                    machinery sees it, forking recovery behavior from the audited path",
    },
    LintInfo {
        id: "waiver-needs-reason",
        summary: "every grtx-allow waiver states a non-empty reason",
        rationale: "a waiver is a recorded exception to the determinism contract; without the \
                    why, the next reader cannot tell a justified exception from a leak",
    },
    LintInfo {
        id: "waiver-unknown-lint",
        summary: "grtx-allow waivers name an existing lint id",
        rationale: "a misspelled waiver suppresses nothing and hides the violation it was \
                    meant to document",
    },
];

/// Looks up a lint id in [`LINTS`].
pub fn lint_exists(id: &str) -> bool {
    LINTS.iter().any(|l| l.id == id)
}

/// Rationale string for a lint id (empty for unknown ids).
pub fn lint_rationale(id: &str) -> &'static str {
    LINTS
        .iter()
        .find(|l| l.id == id)
        .map(|l| l.rationale)
        .unwrap_or("")
}

// ---------------------------------------------------------------------------
// Per-file machinery.

struct Waiver {
    line_idx: usize,
    lint: String,
    reason: String,
    /// Inclusive 0-based line range the waiver covers.
    covers: (usize, usize),
    used: bool,
}

/// Everything derived from one lexed file that the lint passes share.
struct FileCx<'a> {
    spec: &'a SourceSpec,
    lines: Vec<Line>,
    /// Line is (part of) an attribute.
    attr: Vec<bool>,
    /// Line sits under `#[cfg(test)]` / `#[test]`.
    test_region: Vec<bool>,
    /// Line sits under `#[cfg(feature = "fma")]`.
    fma_region: Vec<bool>,
    waivers: Vec<Waiver>,
}

/// Result of analyzing one file.
pub struct FileAnalysis {
    /// Findings that survived waiver matching.
    pub findings: Vec<Finding>,
    /// Every waiver encountered, with use status.
    pub waivers: Vec<WaiverRecord>,
}

/// Runs the full lint suite over one file.
pub fn analyze_source(spec: &SourceSpec) -> FileAnalysis {
    let mut cx = FileCx::new(spec);
    let mut raw: Vec<Finding> = Vec::new();

    lint_unsafe_needs_safety(&cx, &mut raw);
    lint_crate_root_attrs(&cx, &mut raw);
    lint_deterministic_collections(&cx, &mut raw);
    lint_no_wall_clock(&cx, &mut raw);
    lint_float_total_order(&cx, &mut raw);
    lint_fma_containment(&cx, &mut raw);
    lint_no_unscoped_spawn(&cx, &mut raw);
    lint_panic_containment(&cx, &mut raw);

    // Waiver matching: a finding at line L is suppressed by a waiver for
    // the same lint whose extent covers L. File-level findings (anchored
    // to line 1 by the crate-root lint) accept a waiver anywhere in the
    // file, since there is no specific offending line to annotate.
    let mut findings = Vec::new();
    for f in raw {
        let idx = f.line - 1;
        let file_level = f.lint == "forbid-unsafe-outside-math";
        let mut waived = false;
        for w in cx.waivers.iter_mut() {
            if w.lint == f.lint && (file_level || (w.covers.0 <= idx && idx <= w.covers.1)) {
                w.used = true;
                waived = true;
            }
        }
        if !waived {
            findings.push(f);
        }
    }

    // Waiver meta-lints (never themselves waivable).
    for w in &cx.waivers {
        if !lint_exists(&w.lint) {
            findings.push(Finding {
                file: spec.path.clone(),
                line: w.line_idx + 1,
                lint: "waiver-unknown-lint",
                message: format!("waiver names unknown lint `{}`", w.lint),
            });
        } else if w.reason.is_empty() {
            findings.push(Finding {
                file: spec.path.clone(),
                line: w.line_idx + 1,
                lint: "waiver-needs-reason",
                message: format!(
                    "waiver for `{}` has no reason — justify the exception",
                    w.lint
                ),
            });
        }
    }

    findings.sort();
    let waivers = cx
        .waivers
        .iter()
        .map(|w| WaiverRecord {
            file: spec.path.clone(),
            line: w.line_idx + 1,
            lint: w.lint.clone(),
            reason: w.reason.clone(),
            used: w.used,
        })
        .collect();
    FileAnalysis { findings, waivers }
}

impl<'a> FileCx<'a> {
    fn new(spec: &'a SourceSpec) -> Self {
        let lines = lex(&spec.content);
        let n = lines.len();

        // Attribute lines, including multi-line attribute continuations.
        let mut attr = vec![false; n];
        let mut i = 0;
        while i < n {
            if lines[i].is_attr_start() {
                let base = lines[i].depth_start;
                attr[i] = true;
                let mut j = i;
                while lines[j].depth_end > base && j + 1 < n {
                    j += 1;
                    attr[j] = true;
                }
                i = j + 1;
            } else {
                i += 1;
            }
        }

        let mut cx = Self {
            spec,
            lines,
            attr,
            test_region: vec![false; n],
            fma_region: vec![false; n],
            waivers: Vec::new(),
        };

        // cfg(test) / #[test] and cfg(feature = "fma") regions: mark the
        // extent of the item/statement each such attribute attaches to.
        for i in 0..n {
            if !cx.attr[i] || !cx.lines[i].is_attr_start() {
                continue; // not the first line of an attribute
            }
            let text = cx.attr_text(i);
            let is_test = text.contains("cfg(test)")
                || text.contains("cfg(all(test")
                || text == "#[test]"
                || text.starts_with("#[test]");
            let is_fma = text.contains("cfg(feature=\"fma\")");
            if !is_test && !is_fma {
                continue;
            }
            if let Some((start, end)) = cx.element_extent(i) {
                for k in start..=end {
                    if is_test {
                        cx.test_region[k] = true;
                    }
                    if is_fma {
                        cx.fma_region[k] = true;
                    }
                }
            }
        }

        cx.collect_waivers();
        cx
    }

    /// Whitespace-normalized text of the attribute starting at `i`
    /// (string contents preserved), spanning continuation lines.
    fn attr_text(&self, i: usize) -> String {
        let base = self.lines[i].depth_start;
        let mut text: String = self.lines[i]
            .full
            .chars()
            .filter(|c| !c.is_whitespace())
            .collect();
        let mut j = i;
        while self.lines[j].depth_end > base && j + 1 < self.lines.len() {
            j += 1;
            text.extend(self.lines[j].full.chars().filter(|c| !c.is_whitespace()));
        }
        text
    }

    /// The inclusive 0-based line range of the item or statement that
    /// starts after line `after` — the extent an attribute (or own-line
    /// waiver) at `after` attaches to. Skips attributes, comments, and
    /// blank lines, then consumes until the nesting depth returns to the
    /// element's base depth at a line that syntactically terminates
    /// (`;`, `}`, `,`, or `)`).
    fn element_extent(&self, after: usize) -> Option<(usize, usize)> {
        let n = self.lines.len();
        let mut j = after + 1;
        while j < n && (self.attr[j] || self.lines[j].is_code_blank()) {
            j += 1;
        }
        if j >= n {
            return None;
        }
        let base = self.lines[j].depth_start;
        let mut k = j;
        loop {
            let line = &self.lines[k];
            let code = line.code.trim_end();
            let terminates = matches!(code.chars().last(), Some(';' | '}' | ',' | ')'));
            if line.depth_end < base || (line.depth_end == base && !code.is_empty() && terminates) {
                return Some((j, k));
            }
            if k + 1 >= n {
                return Some((j, k));
            }
            k += 1;
        }
    }

    fn collect_waivers(&mut self) {
        let mut found = Vec::new();
        for (i, line) in self.lines.iter().enumerate() {
            let comment = &line.comment;
            let Some(pos) = comment.find("grtx-allow(") else {
                continue;
            };
            let rest = &comment[pos + "grtx-allow(".len()..];
            let Some(close) = rest.find(')') else {
                continue;
            };
            let id = &rest[..close];
            if id.is_empty()
                || !id
                    .bytes()
                    .all(|b| b.is_ascii_lowercase() || b.is_ascii_digit() || b == b'-')
            {
                // Not a waiver attempt (e.g. docs showing `<lint-id>`).
                continue;
            }
            let mut reason = match rest[close + 1..].trim_start().strip_prefix(':') {
                Some(r) => r.trim().to_string(),
                None => String::new(),
            };
            let own_line = line.is_code_blank();
            // Own-line waivers may continue the reason on following
            // comment-only lines (until code or another waiver).
            if own_line {
                let mut j = i + 1;
                while j < self.lines.len()
                    && self.lines[j].is_code_blank()
                    && !self.lines[j].comment.is_empty()
                    && !self.lines[j].comment.contains("grtx-allow(")
                {
                    let cont = comment_text(&self.lines[j].comment);
                    if !cont.is_empty() {
                        if !reason.is_empty() {
                            reason.push(' ');
                        }
                        reason.push_str(&cont);
                    }
                    j += 1;
                }
            }
            let covers = if own_line {
                self.element_extent(i).unwrap_or((i, i))
            } else {
                (i, i)
            };
            found.push(Waiver {
                line_idx: i,
                lint: id.to_string(),
                reason,
                covers,
                used: false,
            });
        }
        self.waivers = found;
    }

    fn finding(&self, line_idx: usize, lint: &'static str, message: String) -> Finding {
        Finding {
            file: self.spec.path.clone(),
            line: line_idx + 1,
            lint,
            message,
        }
    }
}

/// Strips comment markers (`//`, `///`, `//!`, `/*`, `*/`, leading `*`)
/// from one line's comment text.
fn comment_text(comment: &str) -> String {
    let t = comment.trim();
    let t = t
        .trim_start_matches('/')
        .trim_start_matches('*')
        .trim_start_matches('!');
    t.trim_end_matches("*/").trim().to_string()
}

// ---------------------------------------------------------------------------
// The lints.

/// `unsafe-needs-safety`: every line containing the `unsafe` keyword
/// must have a `SAFETY:` comment trailing it or in the contiguous
/// comment/attribute block directly above (a `# Safety` doc section
/// counts for `unsafe fn` declarations).
fn lint_unsafe_needs_safety(cx: &FileCx, out: &mut Vec<Finding>) {
    for (i, line) in cx.lines.iter().enumerate() {
        if !has_word(&line.code, "unsafe") {
            continue;
        }
        if comment_has_safety(&line.comment) {
            continue;
        }
        let mut covered = false;
        let mut u = i;
        while u > 0 {
            u -= 1;
            let above = &cx.lines[u];
            if cx.attr[u] {
                continue; // look through attributes
            }
            if above.is_code_blank() && !above.comment.is_empty() {
                if comment_has_safety(&above.comment) {
                    covered = true;
                    break;
                }
                continue; // keep walking the comment block
            }
            break; // code or blank line ends the annotation block
        }
        if !covered {
            out.push(
                cx.finding(
                    i,
                    "unsafe-needs-safety",
                    "`unsafe` without a `SAFETY:` comment stating the discharged proof obligations"
                        .to_string(),
                ),
            );
        }
    }
}

fn comment_has_safety(comment: &str) -> bool {
    comment.contains("SAFETY:") || comment.contains("# Safety")
}

/// `forbid-unsafe-outside-math`: crate roots must pin the crate-level
/// unsafe policy attributes.
fn lint_crate_root_attrs(cx: &FileCx, out: &mut Vec<Finding>) {
    if !cx.spec.is_crate_root {
        return;
    }
    let all_attrs: String = (0..cx.lines.len())
        .filter(|&i| cx.attr[i] && cx.lines[i].is_attr_start())
        .map(|i| cx.attr_text(i))
        .collect();
    if cx.spec.crate_name == UNSAFE_CRATE {
        if !all_attrs.contains("#![deny(unsafe_op_in_unsafe_fn)]") {
            out.push(cx.finding(
                0,
                "forbid-unsafe-outside-math",
                format!(
                    "`{}` is the audited unsafe boundary and must declare \
                     #![deny(unsafe_op_in_unsafe_fn)] at the crate root",
                    UNSAFE_CRATE
                ),
            ));
        }
    } else if !all_attrs.contains("#![forbid(unsafe_code)]") {
        out.push(cx.finding(
            0,
            "forbid-unsafe-outside-math",
            format!(
                "crate `{}` must declare #![forbid(unsafe_code)] at the crate root \
                 (only `{}` may contain unsafe)",
                cx.spec.crate_name, UNSAFE_CRATE
            ),
        ));
    }
}

/// `deterministic-collections`: raw std HashMap/HashSet in `src/`.
fn lint_deterministic_collections(cx: &FileCx, out: &mut Vec<Finding>) {
    if cx.spec.role != Role::Src {
        return;
    }
    for (i, line) in cx.lines.iter().enumerate() {
        for name in ["HashMap", "HashSet"] {
            if has_word(&line.code, name) {
                out.push(cx.finding(
                    i,
                    "deterministic-collections",
                    format!(
                        "raw std `{name}` — use the seeded FastMap/FastSet \
                         (crates/sim/src/fasthash.rs) or a BTree collection"
                    ),
                ));
            }
        }
    }
}

/// `no-wall-clock`: `Instant` / `SystemTime` outside the telemetry
/// crate, tests, benches, and examples.
fn lint_no_wall_clock(cx: &FileCx, out: &mut Vec<Finding>) {
    if cx.spec.role != Role::Src || cx.spec.crate_name == CLOCK_CRATE {
        return;
    }
    for (i, line) in cx.lines.iter().enumerate() {
        if cx.test_region[i] {
            continue;
        }
        for name in ["Instant", "SystemTime"] {
            if has_word(&line.code, name) {
                out.push(cx.finding(
                    i,
                    "no-wall-clock",
                    format!(
                        "`{name}` outside {CLOCK_CRATE} — route timing through \
                         Telemetry/ClockMode so determinism tests can pin a null clock"
                    ),
                ));
            }
        }
    }
}

/// `float-total-order`: ordering combinators driven by `partial_cmp`.
fn lint_float_total_order(cx: &FileCx, out: &mut Vec<Finding>) {
    const COMBINATORS: [&str; 5] = [
        "sort_by",
        "sort_unstable_by",
        "max_by",
        "min_by",
        "binary_search_by",
    ];
    for (i, line) in cx.lines.iter().enumerate() {
        if !has_word(&line.code, "partial_cmp") {
            continue;
        }
        let window_start = i.saturating_sub(2);
        let fired =
            (window_start..=i).any(|j| COMBINATORS.iter().any(|c| has_word(&cx.lines[j].code, c)));
        if fired {
            out.push(
                cx.finding(
                    i,
                    "float-total-order",
                    "ordering via `partial_cmp` — use `total_cmp`, the total order the \
                 -0.0 canonicalization contract depends on"
                        .to_string(),
                ),
            );
        }
    }
}

/// `fma-containment`: `mul_add` outside `cfg(feature = "fma")` regions
/// of the math crate.
fn lint_fma_containment(cx: &FileCx, out: &mut Vec<Finding>) {
    for (i, line) in cx.lines.iter().enumerate() {
        if !has_word(&line.code, "mul_add") {
            continue;
        }
        let allowed =
            cx.spec.crate_name == UNSAFE_CRATE && cx.spec.role == Role::Src && cx.fma_region[i];
        if !allowed {
            out.push(cx.finding(
                i,
                "fma-containment",
                format!(
                    "`mul_add` contracts rounding and changes bits — only \
                     cfg(feature = \"fma\") regions of {UNSAFE_CRATE} may use it"
                ),
            ));
        }
    }
}

/// `no-unscoped-spawn`: `thread::spawn` (scoped pools only).
fn lint_no_unscoped_spawn(cx: &FileCx, out: &mut Vec<Finding>) {
    for (i, line) in cx.lines.iter().enumerate() {
        let code = &line.code;
        let mut from = 0;
        while let Some(rel) = find_word(&code[from..], "spawn") {
            let at = from + rel;
            if preceded_by_thread_path(&code[..at]) {
                out.push(
                    cx.finding(
                        i,
                        "no-unscoped-spawn",
                        "`std::thread::spawn` detaches from the launch scope — use \
                     `std::thread::scope` so joins (and merges) stay deterministic"
                            .to_string(),
                    ),
                );
                break;
            }
            from = at + "spawn".len();
        }
    }
}

/// `panic-containment`: `catch_unwind` / `resume_unwind` outside the
/// fault-injection crate and the pipeline's recovery choke point.
fn lint_panic_containment(cx: &FileCx, out: &mut Vec<Finding>) {
    if PANIC_CRATES.contains(&cx.spec.crate_name.as_str()) {
        return;
    }
    for (i, line) in cx.lines.iter().enumerate() {
        for name in ["catch_unwind", "resume_unwind"] {
            if has_word(&line.code, name) {
                out.push(cx.finding(
                    i,
                    "panic-containment",
                    format!(
                        "`{name}` outside {} — panics funnel through the pipeline's \
                         retry/quarantine choke point; use the typed try_* APIs instead",
                        PANIC_CRATES.join("/")
                    ),
                ));
            }
        }
    }
}

/// `true` if `prefix` ends with `thread ::` (whitespace-tolerant).
fn preceded_by_thread_path(prefix: &str) -> bool {
    let t = prefix.trim_end();
    let Some(t) = t.strip_suffix("::") else {
        return false;
    };
    let t = t.trim_end();
    t.ends_with("thread") && {
        let cut = t.len() - "thread".len();
        cut == 0 || !t.as_bytes()[cut - 1].is_ascii_alphanumeric() && t.as_bytes()[cut - 1] != b'_'
    }
}
