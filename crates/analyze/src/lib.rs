#![forbid(unsafe_code)]

//! # grtx-analyze — the workspace determinism-lint engine
//!
//! Every equivalence suite in this repo proves the same thing end to
//! end: parallel simulation is **bit-identical** to serial (threads,
//! shards, BVH widths, packets, telemetry on/off). The *source-level*
//! invariants that make those tests pass — no wall clocks in merge
//! paths, no hash-order iteration, total float ordering, FMA only
//! behind its feature gate, audited `unsafe` — previously lived in
//! reviewers' heads. This crate turns them into machine-checked lints
//! so the next subsystems (distributed serving, record/replay) cannot
//! silently regress the contract.
//!
//! The engine is **zero-dependency** by design (the workspace builds
//! offline): a hand-rolled, comment- and string-aware token scanner
//! ([`lexer`]) rather than a `syn`-style parser. Lints ([`lints`],
//! listed in [`LINTS`]) run per file; findings carry `file:line`, the
//! lint id, and the rationale, and render as human text or
//! `grtx-analyze-v1` JSON ([`report`]).
//!
//! Violations that are deliberate are waived in place:
//!
//! ```text
//! // grtx-allow(<lint-id>): <reason — mandatory>
//! ```
//!
//! See [`lints`] for waiver extents. Run the suite locally with
//! `cargo run -p grtx-analyze -- --deny`.

pub mod lexer;
pub mod lints;
pub mod report;

pub use lints::{analyze_source, Finding, LintInfo, Role, SourceSpec, WaiverRecord, LINTS};
pub use report::Report;

use std::fs;
use std::io;
use std::path::{Path, PathBuf};

/// Analyzes an explicit set of sources (the fixture-test entry point).
pub fn analyze_files(specs: &[SourceSpec]) -> Report {
    let mut report = Report::default();
    let mut crates: Vec<String> = Vec::new();
    for spec in specs {
        if !crates.contains(&spec.crate_name) {
            crates.push(spec.crate_name.clone());
        }
        let analysis = analyze_source(spec);
        report.findings.extend(analysis.findings);
        report.waivers.extend(analysis.waivers);
    }
    crates.sort();
    report.crates = crates;
    report.files_scanned = specs.len();
    report.findings.sort();
    report
        .waivers
        .sort_by(|a, b| (&a.file, a.line).cmp(&(&b.file, b.line)));
    report
}

/// Walks `root/crates/*` and runs the lint suite over every `.rs` file
/// in each crate's `src`, `tests`, `benches`, and `examples` trees.
///
/// Vendored stub crates (`vendor/`) are deliberately out of scope: they
/// are offline stand-ins slated for replacement, not product code.
pub fn analyze_workspace(root: &Path) -> io::Result<Report> {
    let crates_dir = root.join("crates");
    if !crates_dir.is_dir() {
        return Err(io::Error::new(
            io::ErrorKind::NotFound,
            format!("{} has no crates/ directory", root.display()),
        ));
    }
    let mut crate_dirs: Vec<PathBuf> = fs::read_dir(&crates_dir)?
        .filter_map(|e| e.ok())
        .map(|e| e.path())
        .filter(|p| p.is_dir() && p.join("Cargo.toml").is_file())
        .collect();
    crate_dirs.sort();

    let mut specs = Vec::new();
    let mut crates = Vec::new();
    for dir in &crate_dirs {
        let name = package_name(&dir.join("Cargo.toml"))?;
        crates.push(name.clone());
        for (sub, role) in [
            ("src", Role::Src),
            ("tests", Role::Tests),
            ("benches", Role::Benches),
            ("examples", Role::Examples),
        ] {
            let tree = dir.join(sub);
            if !tree.is_dir() {
                continue;
            }
            let mut files = Vec::new();
            collect_rs_files(&tree, &mut files)?;
            files.sort();
            for file in files {
                let rel = file
                    .strip_prefix(root)
                    .unwrap_or(&file)
                    .to_string_lossy()
                    .replace('\\', "/");
                let is_crate_root = role == Role::Src
                    && matches!(
                        file.file_name().and_then(|n| n.to_str()),
                        Some("lib.rs") | Some("main.rs")
                    )
                    && file.parent() == Some(tree.as_path());
                specs.push(SourceSpec {
                    crate_name: name.clone(),
                    path: rel,
                    role,
                    is_crate_root,
                    content: fs::read_to_string(&file)?,
                });
            }
        }
    }

    let mut report = analyze_files(&specs);
    report.root = root.to_string_lossy().into_owned();
    report.crates = crates;
    report.crates.sort();
    Ok(report)
}

/// Recursively gathers `.rs` files under `dir`.
fn collect_rs_files(dir: &Path, out: &mut Vec<PathBuf>) -> io::Result<()> {
    for entry in fs::read_dir(dir)? {
        let path = entry?.path();
        if path.is_dir() {
            collect_rs_files(&path, out)?;
        } else if path.extension().and_then(|e| e.to_str()) == Some("rs") {
            out.push(path);
        }
    }
    Ok(())
}

/// Reads `name = "…"` from a `[package]` section without a TOML parser.
fn package_name(manifest: &Path) -> io::Result<String> {
    let text = fs::read_to_string(manifest)?;
    let mut in_package = false;
    for line in text.lines() {
        let t = line.trim();
        if t.starts_with('[') {
            in_package = t == "[package]";
            continue;
        }
        if in_package {
            if let Some(rest) = t.strip_prefix("name") {
                let rest = rest.trim_start();
                if let Some(rest) = rest.strip_prefix('=') {
                    let v = rest.trim().trim_matches('"');
                    return Ok(v.to_string());
                }
            }
        }
    }
    Err(io::Error::new(
        io::ErrorKind::InvalidData,
        format!("{}: no [package] name", manifest.display()),
    ))
}
