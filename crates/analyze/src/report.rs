//! Report assembly and rendering: human text and `grtx-analyze-v1` JSON.
//!
//! The JSON writer is hand-rolled (the crate is zero-dependency by
//! design) and emits a stable field order so reports diff cleanly.

use crate::lints::{lint_rationale, Finding, WaiverRecord, LINTS};

/// Aggregated result of analyzing a set of files.
#[derive(Debug, Default)]
pub struct Report {
    /// Path the analysis ran over (workspace root), for provenance.
    pub root: String,
    /// Package names of the scanned crates, sorted.
    pub crates: Vec<String>,
    /// Number of `.rs` files scanned.
    pub files_scanned: usize,
    /// Unsuppressed findings, sorted by (file, line, lint).
    pub findings: Vec<Finding>,
    /// Every waiver encountered, sorted by (file, line).
    pub waivers: Vec<WaiverRecord>,
}

impl Report {
    /// `true` when the workspace is lint-clean.
    pub fn is_clean(&self) -> bool {
        self.findings.is_empty()
    }

    /// Number of waivers that suppressed at least one finding.
    pub fn waived_count(&self) -> usize {
        self.waivers.iter().filter(|w| w.used).count()
    }

    /// Human-readable rendering: one `file:line: [lint] message` row per
    /// finding plus a summary footer.
    pub fn to_text(&self) -> String {
        let mut out = String::new();
        for f in &self.findings {
            out.push_str(&format!(
                "{}:{}: [{}] {}\n",
                f.file, f.line, f.lint, f.message
            ));
            let rationale = lint_rationale(f.lint);
            if !rationale.is_empty() {
                out.push_str(&format!("    rationale: {rationale}\n"));
            }
        }
        out.push_str(&format!(
            "grtx-analyze: {} file(s), {} crate(s): {} finding(s), {} waiver(s) ({} active)\n",
            self.files_scanned,
            self.crates.len(),
            self.findings.len(),
            self.waivers.len(),
            self.waived_count(),
        ));
        out
    }

    /// Machine-readable rendering (schema `grtx-analyze-v1`).
    pub fn to_json(&self) -> String {
        let mut w = JsonWriter::new();
        w.open_object();
        w.field_str("schema", "grtx-analyze-v1");
        w.field_str("root", &self.root);
        w.key("crates");
        w.open_array();
        for c in &self.crates {
            w.array_str(c);
        }
        w.close_array();
        w.field_num("files_scanned", self.files_scanned as i64);

        w.key("lints");
        w.open_array();
        for l in LINTS {
            w.open_object();
            w.field_str("id", l.id);
            w.field_str("summary", l.summary);
            w.field_str("rationale", l.rationale);
            w.close_object();
        }
        w.close_array();

        w.key("findings");
        w.open_array();
        for f in &self.findings {
            w.open_object();
            w.field_str("lint", f.lint);
            w.field_str("file", &f.file);
            w.field_num("line", f.line as i64);
            w.field_str("message", &f.message);
            w.field_str("rationale", lint_rationale(f.lint));
            w.close_object();
        }
        w.close_array();

        w.key("waivers");
        w.open_array();
        for wv in &self.waivers {
            w.open_object();
            w.field_str("lint", &wv.lint);
            w.field_str("file", &wv.file);
            w.field_num("line", wv.line as i64);
            w.field_str("reason", &wv.reason);
            w.field_bool("used", wv.used);
            w.close_object();
        }
        w.close_array();

        w.key("counts");
        w.open_object();
        w.field_num("findings", self.findings.len() as i64);
        w.field_num("waivers", self.waivers.len() as i64);
        w.field_num("waivers_active", self.waived_count() as i64);
        w.close_object();

        w.close_object();
        w.finish()
    }
}

// ---------------------------------------------------------------------------
// Minimal JSON writer.

struct JsonWriter {
    out: String,
    /// Per-open-container flag: does the current container already hold
    /// an element (so the next one needs a comma)?
    needs_comma: Vec<bool>,
    /// Set right after a key is written: the value that follows must
    /// not emit a separator of its own.
    after_key: bool,
}

impl JsonWriter {
    fn new() -> Self {
        Self {
            out: String::new(),
            needs_comma: vec![false],
            after_key: false,
        }
    }

    fn sep(&mut self) {
        if self.after_key {
            self.after_key = false;
            return;
        }
        if let Some(last) = self.needs_comma.last_mut() {
            if *last {
                self.out.push(',');
            }
            *last = true;
        }
    }

    fn open_object(&mut self) {
        self.sep();
        self.out.push('{');
        self.needs_comma.push(false);
    }

    fn close_object(&mut self) {
        self.needs_comma.pop();
        self.out.push('}');
    }

    fn open_array(&mut self) {
        self.sep();
        self.out.push('[');
        self.needs_comma.push(false);
    }

    fn close_array(&mut self) {
        self.needs_comma.pop();
        self.out.push(']');
    }

    fn key(&mut self, k: &str) {
        self.sep();
        self.out.push_str(&escape(k));
        self.out.push(':');
        self.after_key = true;
    }

    fn field_str(&mut self, k: &str, v: &str) {
        self.key(k);
        self.array_str(v);
    }

    fn field_num(&mut self, k: &str, v: i64) {
        self.key(k);
        self.sep();
        self.out.push_str(&v.to_string());
    }

    fn field_bool(&mut self, k: &str, v: bool) {
        self.key(k);
        self.sep();
        self.out.push_str(if v { "true" } else { "false" });
    }

    fn array_str(&mut self, v: &str) {
        self.sep();
        self.out.push_str(&escape(v));
    }

    fn finish(self) -> String {
        self.out
    }
}

/// JSON string escaping (quotes, backslashes, control characters).
fn escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn json_escapes_specials() {
        assert_eq!(escape("a\"b\\c\nd"), "\"a\\\"b\\\\c\\nd\"");
    }

    #[test]
    fn empty_report_is_valid_shape() {
        let r = Report {
            root: "/tmp/x".into(),
            crates: vec!["grtx-math".into()],
            files_scanned: 3,
            ..Report::default()
        };
        let json = r.to_json();
        assert!(json.starts_with("{\"schema\":\"grtx-analyze-v1\""));
        assert!(json.contains("\"findings\":[]"));
        assert!(json.contains("\"counts\":{\"findings\":0"));
        assert!(r.is_clean());
    }
}
