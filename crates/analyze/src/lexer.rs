//! A hand-rolled, comment- and string-aware line lexer for Rust source.
//!
//! The lint engine does not need a full parser — every invariant it
//! checks is visible at the token level — but it *does* need to know,
//! for every character, whether it sits in code, a comment, or a string
//! literal, or the lints would fire on their own documentation. This
//! module splits a source file into [`Line`]s carrying three parallel
//! views of the same text plus the delimiter depth at the line
//! boundaries (used for attribute/statement extent tracking).
//!
//! Handled Rust syntax: line comments, nested block comments, string
//! literals with escapes, byte strings, raw (and raw byte) strings with
//! any number of `#`s, char/byte-char literals (including escaped
//! quotes), and lifetimes (`'a` is *not* an unterminated char literal).

/// One source line, decomposed by the lexer.
#[derive(Debug, Default, Clone)]
pub struct Line {
    /// Code with comments removed and string-literal *contents* blanked
    /// to spaces (the delimiting quotes survive). Word-level lint
    /// matching runs on this view so string payloads can never trigger
    /// or suppress a lint.
    pub code: String,
    /// Code with comments removed but string contents preserved —
    /// needed to read attributes like `#[cfg(feature = "fma")]`, whose
    /// significant token lives inside a string literal.
    pub full: String,
    /// Concatenated text of every comment on the line (`//`, `///`,
    /// `/* .. */`, including block-comment interiors on continuation
    /// lines). Waivers and `SAFETY:` annotations are read from here.
    pub comment: String,
    /// Paren/bracket/brace nesting depth at the start of the line.
    pub depth_start: i32,
    /// Nesting depth after the line's last code character.
    pub depth_end: i32,
}

impl Line {
    /// `true` if the line carries no code at all (blank or comment-only).
    pub fn is_code_blank(&self) -> bool {
        self.code.trim().is_empty()
    }

    /// `true` if the line's code is (the start of) an attribute.
    pub fn is_attr_start(&self) -> bool {
        let t = self.full.trim_start();
        t.starts_with("#[") || t.starts_with("#![")
    }
}

#[derive(Clone, Copy, PartialEq)]
enum State {
    Code,
    /// Nested block comment at the given depth.
    Block(u32),
    /// Inside a `"…"` or `b"…"` string (escape-aware).
    Str,
    /// Inside a raw string closed by `"` followed by `n` hashes.
    Raw(u32),
}

/// Splits `source` into lexed [`Line`]s.
pub fn lex(source: &str) -> Vec<Line> {
    let chars: Vec<char> = source.chars().collect();
    let mut lines = Vec::new();
    let mut line = Line::default();
    let mut depth: i32 = 0;
    let mut state = State::Code;
    let mut prev_ident = false;
    let mut i = 0;

    macro_rules! flush_line {
        () => {{
            line.depth_end = depth;
            let mut next = Line {
                depth_start: depth,
                ..Line::default()
            };
            std::mem::swap(&mut next, &mut line);
            // `next` now holds the finished line.
            lines.push(next);
        }};
    }

    while i < chars.len() {
        let c = chars[i];
        if c == '\n' {
            prev_ident = false;
            flush_line!();
            i += 1;
            continue;
        }
        match state {
            State::Code => {
                let next = chars.get(i + 1).copied();
                if c == '/' && next == Some('/') {
                    // Line comment: everything to EOL is comment text.
                    while i < chars.len() && chars[i] != '\n' {
                        line.comment.push(chars[i]);
                        i += 1;
                    }
                    continue;
                }
                if c == '/' && next == Some('*') {
                    state = State::Block(1);
                    line.comment.push_str("/*");
                    i += 2;
                    continue;
                }
                if c == '"' {
                    line.code.push('"');
                    line.full.push('"');
                    state = State::Str;
                    prev_ident = false;
                    i += 1;
                    continue;
                }
                if (c == 'r' || c == 'b') && !prev_ident {
                    // Possible raw / byte / raw-byte string prefix.
                    let mut j = i + 1;
                    let mut raw = c == 'r';
                    if c == 'b' && chars.get(j) == Some(&'r') {
                        raw = true;
                        j += 1;
                    }
                    let mut hashes = 0u32;
                    while raw && chars.get(j) == Some(&'#') {
                        hashes += 1;
                        j += 1;
                    }
                    if chars.get(j) == Some(&'"') {
                        // Emit the prefix + opening quote verbatim.
                        for &p in &chars[i..=j] {
                            line.code.push(p);
                            line.full.push(p);
                        }
                        state = if raw { State::Raw(hashes) } else { State::Str };
                        prev_ident = false;
                        i = j + 1;
                        continue;
                    }
                    if c == 'b' && chars.get(i + 1) == Some(&'\'') {
                        // Byte-char literal: emit `b`, let the `'` arm
                        // below consume the literal.
                        line.code.push('b');
                        line.full.push('b');
                        prev_ident = false;
                        i += 1;
                        continue;
                    }
                    // Plain identifier starting with r/b: fall through.
                }
                if c == '\'' && !prev_ident {
                    // Char literal or lifetime. A char literal is
                    // `'<escape>'` or `'<one char>'`; anything else
                    // (`'a`, `'static`, `'_`) is a lifetime.
                    if chars.get(i + 1) == Some(&'\\') {
                        // Escape: skip the backslash and the escaped
                        // char unconditionally, then scan to the close
                        // (covers `'\''`, `'\\'`, `'\u{…}'`).
                        let mut j = i + 3;
                        while j < chars.len() && chars[j] != '\'' {
                            j += 1;
                        }
                        for &p in chars.get(i..=j.min(chars.len() - 1)).unwrap_or(&[]) {
                            line.code.push(p);
                            line.full.push(p);
                        }
                        i = j + 1;
                        continue;
                    }
                    if chars.get(i + 2) == Some(&'\'') && chars.get(i + 1) != Some(&'\'') {
                        for &p in &chars[i..=i + 2] {
                            line.code.push(p);
                            line.full.push(p);
                        }
                        i += 3;
                        continue;
                    }
                    // Lifetime: emit the quote, stay in code.
                    line.code.push('\'');
                    line.full.push('\'');
                    prev_ident = false;
                    i += 1;
                    continue;
                }
                match c {
                    '(' | '[' | '{' => depth += 1,
                    ')' | ']' | '}' => depth -= 1,
                    _ => {}
                }
                prev_ident = c.is_alphanumeric() || c == '_';
                line.code.push(c);
                line.full.push(c);
                i += 1;
            }
            State::Block(d) => {
                let next = chars.get(i + 1).copied();
                if c == '/' && next == Some('*') {
                    state = State::Block(d + 1);
                    line.comment.push_str("/*");
                    i += 2;
                } else if c == '*' && next == Some('/') {
                    state = if d == 1 {
                        State::Code
                    } else {
                        State::Block(d - 1)
                    };
                    line.comment.push_str("*/");
                    i += 2;
                } else {
                    line.comment.push(c);
                    i += 1;
                }
            }
            State::Str => {
                line.full.push(c);
                if c == '\\' {
                    if let Some(&e) = chars.get(i + 1) {
                        if e != '\n' {
                            line.full.push(e);
                            line.code.push(' ');
                            i += 1;
                        }
                    }
                    line.code.push(' ');
                } else if c == '"' {
                    line.code.push('"');
                    state = State::Code;
                } else {
                    line.code.push(' ');
                }
                i += 1;
            }
            State::Raw(hashes) => {
                line.full.push(c);
                if c == '"' {
                    let closed = (1..=hashes as usize).all(|k| chars.get(i + k) == Some(&'#'));
                    if closed {
                        line.code.push('"');
                        for k in 1..=hashes as usize {
                            line.code.push('#');
                            line.full.push(chars[i + k]);
                        }
                        state = State::Code;
                        i += hashes as usize + 1;
                        continue;
                    }
                }
                line.code.push(' ');
                i += 1;
            }
        }
    }
    // Final (possibly newline-less) line.
    flush_line!();
    lines
}

/// `true` if `line` contains `word` as a standalone identifier (not as a
/// substring of a longer identifier).
pub fn has_word(line: &str, word: &str) -> bool {
    find_word(line, word).is_some()
}

/// Byte offset of the first standalone occurrence of `word` in `line`.
pub fn find_word(line: &str, word: &str) -> Option<usize> {
    let bytes = line.as_bytes();
    let mut start = 0;
    while let Some(pos) = line[start..].find(word) {
        let at = start + pos;
        let before_ok = at == 0 || !is_ident_byte(bytes[at - 1]);
        let end = at + word.len();
        let after_ok = end >= bytes.len() || !is_ident_byte(bytes[end]);
        if before_ok && after_ok {
            return Some(at);
        }
        start = at + 1;
    }
    None
}

fn is_ident_byte(b: u8) -> bool {
    b.is_ascii_alphanumeric() || b == b'_'
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn strips_line_comments_and_keeps_code() {
        let lines = lex("let x = 1; // trailing note\n// full line\nlet y = 2;");
        assert_eq!(lines[0].code.trim(), "let x = 1;");
        assert!(lines[0].comment.contains("trailing note"));
        assert!(lines[1].is_code_blank());
        assert!(lines[1].comment.contains("full line"));
        assert_eq!(lines[2].code.trim(), "let y = 2;");
    }

    #[test]
    fn blanks_string_contents_but_full_keeps_them() {
        let lines = lex(r#"let s = "not unsafe code // nor comment";"#);
        assert!(!has_word(&lines[0].code, "unsafe"));
        assert!(lines[0].comment.is_empty());
        assert!(lines[0].full.contains("not unsafe code"));
    }

    #[test]
    fn raw_strings_span_lines() {
        let src = "let s = r#\"line one\nline // two\n\"# ; done";
        let lines = lex(src);
        assert!(lines[1].comment.is_empty(), "raw string hides comments");
        assert!(lines[1].code.trim().is_empty());
        assert!(lines[2].code.contains(';'));
        assert!(lines[2].code.contains("done"));
    }

    #[test]
    fn nested_block_comments() {
        let lines = lex("a /* one /* two */ still */ b");
        assert_eq!(lines[0].code.replace(' ', ""), "ab");
        assert!(lines[0].comment.contains("two"));
    }

    #[test]
    fn lifetimes_are_not_char_literals() {
        let lines = lex("fn f<'a>(x: &'a str, c: char) -> bool { c == 'x' }");
        assert!(lines[0].code.contains("&'a str"));
        assert!(lines[0].code.contains("'x'"));
        // Escaped-quote char literal must not open a string.
        let lines = lex(r"let q = '\''; let n = 1;");
        assert!(lines[0].code.contains("let n = 1;"));
    }

    #[test]
    fn depth_tracks_all_delimiter_kinds() {
        let lines = lex("fn f(\n  x: [u8; 2],\n) {\n  body();\n}");
        assert_eq!(lines[0].depth_start, 0);
        assert_eq!(lines[0].depth_end, 1);
        assert_eq!(lines[2].depth_end, 1); // `) {` : close paren, open brace
        assert_eq!(lines[4].depth_end, 0);
    }

    #[test]
    fn word_matching_respects_identifier_boundaries() {
        assert!(has_word("use std::thread;", "thread"));
        assert!(!has_word("forbid(unsafe_code)", "unsafe"));
        assert!(has_word("unsafe { x }", "unsafe"));
        assert!(!has_word("MyHashMapLike", "HashMap"));
        assert_eq!(find_word("a HashMap b", "HashMap"), Some(2));
    }
}
