//! Per-lint fixture coverage: every lint has a firing case, a clean
//! case, and a waived case, exercised through [`analyze_files`] with
//! synthetic [`SourceSpec`]s. Fixture sources live in raw strings so
//! the analyzer's own self-scan (which also lints this file) sees them
//! as string payloads, never as code.

use grtx_analyze::{analyze_files, Report, Role, SourceSpec};

fn spec(crate_name: &str, role: Role, is_crate_root: bool, content: &str) -> SourceSpec {
    SourceSpec {
        crate_name: crate_name.to_string(),
        path: format!("fixture/{crate_name}-{}.rs", role.name()),
        role,
        is_crate_root,
        content: content.to_string(),
    }
}

fn run(s: SourceSpec) -> Report {
    analyze_files(&[s])
}

/// Lint ids of the surviving findings, in report order.
fn ids(report: &Report) -> Vec<&'static str> {
    report.findings.iter().map(|f| f.lint).collect()
}

// ---------------------------------------------------------------------------
// unsafe-needs-safety

#[test]
fn unsafe_needs_safety_fires_without_annotation() {
    let r = run(spec(
        "grtx-math",
        Role::Src,
        false,
        r##"
pub fn read_first(p: *const u32) -> u32 {
    unsafe { core::ptr::read(p) }
}
"##,
    ));
    assert_eq!(ids(&r), ["unsafe-needs-safety"]);
    assert_eq!(r.findings[0].line, 3);
}

#[test]
fn unsafe_needs_safety_accepts_comment_above_and_safety_doc() {
    let r = run(spec(
        "grtx-math",
        Role::Src,
        false,
        r##"
pub fn read_first(p: *const u32) -> u32 {
    // SAFETY: caller handed us a valid, aligned pointer.
    unsafe { core::ptr::read(p) }
}

/// Reads without checking.
///
/// # Safety
///
/// `p` must be valid for reads.
#[inline]
pub unsafe fn read_raw(p: *const u32) -> u32 {
    // SAFETY: fn contract.
    unsafe { core::ptr::read(p) }
}
"##,
    ));
    assert!(r.is_clean(), "unexpected: {:?}", r.findings);
}

#[test]
fn unsafe_needs_safety_trailing_waiver() {
    let r = run(spec(
        "grtx-math",
        Role::Src,
        false,
        r##"
pub fn f(p: *const u32) -> u32 {
    unsafe { core::ptr::read(p) } // grtx-allow(unsafe-needs-safety): audited in the module doc
}
"##,
    ));
    assert!(r.is_clean());
    assert_eq!(r.waivers.len(), 1);
    assert!(r.waivers[0].used, "waiver must be marked used");
}

// ---------------------------------------------------------------------------
// forbid-unsafe-outside-math

#[test]
fn crate_root_attr_fires_outside_math_and_in_math() {
    let r = run(spec("grtx-render", Role::Src, true, "pub fn f() {}\n"));
    assert_eq!(ids(&r), ["forbid-unsafe-outside-math"]);

    // grtx-math has its own required attribute.
    let r = run(spec("grtx-math", Role::Src, true, "pub fn f() {}\n"));
    assert_eq!(ids(&r), ["forbid-unsafe-outside-math"]);
}

#[test]
fn crate_root_attr_clean_when_declared() {
    let r = run(spec(
        "grtx-render",
        Role::Src,
        true,
        "#![forbid(unsafe_code)]\npub fn f() {}\n",
    ));
    assert!(r.is_clean());

    let r = run(spec(
        "grtx-math",
        Role::Src,
        true,
        "#![deny(unsafe_op_in_unsafe_fn)]\npub fn f() {}\n",
    ));
    assert!(r.is_clean());

    // Non-root files are exempt regardless of attributes.
    let r = run(spec("grtx-render", Role::Src, false, "pub fn f() {}\n"));
    assert!(r.is_clean());
}

#[test]
fn crate_root_attr_accepts_waiver_anywhere_in_file() {
    let r = run(spec(
        "grtx-render",
        Role::Src,
        true,
        r##"
pub fn f() {}
// grtx-allow(forbid-unsafe-outside-math): staged migration, tracked in ROADMAP.
"##,
    ));
    assert!(r.is_clean());
    assert!(r.waivers[0].used);
}

// ---------------------------------------------------------------------------
// deterministic-collections

#[test]
fn deterministic_collections_fires_in_src_only() {
    let content = r##"
use std::collections::HashMap;
"##;
    let r = run(spec("grtx-sim", Role::Src, false, content));
    assert_eq!(ids(&r), ["deterministic-collections"]);

    // Integration tests / benches / examples are out of scope.
    for role in [Role::Tests, Role::Benches, Role::Examples] {
        let r = run(spec("grtx-sim", role, false, content));
        assert!(r.is_clean(), "{} must be exempt", role.name());
    }
}

#[test]
fn deterministic_collections_clean_with_btree_and_aliases() {
    let r = run(spec(
        "grtx-sim",
        Role::Src,
        false,
        r##"
use std::collections::BTreeMap;
use crate::fasthash::{FastMap, FastSet};

pub fn f() -> BTreeMap<u32, u32> {
    BTreeMap::new()
}
"##,
    ));
    assert!(r.is_clean());
}

#[test]
fn deterministic_collections_own_line_waiver_covers_statement_extent() {
    // One own-line waiver covers the whole two-line `let`, including the
    // continuation line — the same extent an attribute would attach to.
    let r = run(spec(
        "grtx-scene",
        Role::Src,
        false,
        r##"
pub fn f() {
    // grtx-allow(deterministic-collections): insert/lookup cache only,
    // never iterated, so hash order cannot reach any output.
    let cache: std::collections::HashMap<u32, u32> =
        std::collections::HashMap::new();
    drop(cache);
}
"##,
    ));
    assert!(r.is_clean(), "unexpected: {:?}", r.findings);
    assert_eq!(r.waivers.len(), 1);
    assert!(r.waivers[0].used);
    assert!(
        r.waivers[0].reason.contains("never iterated"),
        "continuation lines extend the reason: {:?}",
        r.waivers[0].reason
    );
}

// ---------------------------------------------------------------------------
// no-wall-clock

#[test]
fn no_wall_clock_fires_outside_telemetry() {
    let content = r##"
pub fn now() -> std::time::Instant {
    std::time::Instant::now()
}
"##;
    let r = run(spec("grtx-sim", Role::Src, false, content));
    assert_eq!(ids(&r), ["no-wall-clock", "no-wall-clock"]);

    // The clock crate owns wall time.
    let r = run(spec("grtx-telemetry", Role::Src, false, content));
    assert!(r.is_clean());
}

#[test]
fn no_wall_clock_exempts_cfg_test_regions() {
    let r = run(spec(
        "grtx-sim",
        Role::Src,
        false,
        r##"
#[cfg(test)]
mod tests {
    #[test]
    fn timing_smoke() {
        let t0 = std::time::Instant::now();
        assert!(t0.elapsed().as_secs() < 60);
    }
}
"##,
    ));
    assert!(r.is_clean(), "unexpected: {:?}", r.findings);
}

#[test]
fn no_wall_clock_trailing_waiver() {
    let r = run(spec(
        "grtx-sim",
        Role::Src,
        false,
        r##"
pub fn stamp() -> u64 {
    let t = std::time::SystemTime::now(); // grtx-allow(no-wall-clock): log decoration only, never merged
    t.elapsed().map(|d| d.as_nanos() as u64).unwrap_or(0)
}
"##,
    ));
    assert!(r.is_clean());
    assert!(r.waivers[0].used);
}

// ---------------------------------------------------------------------------
// float-total-order

#[test]
fn float_total_order_fires_same_line_and_lookback() {
    let r = run(spec(
        "grtx-bvh",
        Role::Src,
        false,
        r##"
pub fn sort_hits(v: &mut [f32]) {
    v.sort_by(|a, b| a.partial_cmp(b).unwrap());
}
"##,
    ));
    assert_eq!(ids(&r), ["float-total-order"]);

    // Combinator and comparator split across lines still match.
    let r = run(spec(
        "grtx-bvh",
        Role::Src,
        false,
        r##"
pub fn best(v: &[f32]) -> Option<&f32> {
    v.iter().max_by(|a, b| {
        a.partial_cmp(b).expect("no NaN here")
    })
}
"##,
    ));
    assert_eq!(ids(&r), ["float-total-order"]);
}

#[test]
fn float_total_order_clean_with_total_cmp() {
    let r = run(spec(
        "grtx-bvh",
        Role::Src,
        false,
        r##"
pub fn sort_hits(v: &mut [f32]) {
    v.sort_by(|a, b| a.total_cmp(b));
}
"##,
    ));
    assert!(r.is_clean());
}

#[test]
fn float_total_order_trailing_waiver() {
    let r = run(spec(
        "grtx-bvh",
        Role::Src,
        false,
        r##"
pub fn sort_ids(v: &mut [(u32, f32)]) {
    v.sort_by(|a, b| a.0.partial_cmp(&b.0).unwrap()); // grtx-allow(float-total-order): integer keys, total by construction
}
"##,
    ));
    assert!(r.is_clean());
    assert!(r.waivers[0].used);
}

// ---------------------------------------------------------------------------
// fma-containment

#[test]
fn fma_containment_fires_outside_feature_region_and_outside_math() {
    let r = run(spec(
        "grtx-math",
        Role::Src,
        false,
        r##"
pub fn lerp(a: f32, b: f32, t: f32) -> f32 {
    t.mul_add(b - a, a)
}
"##,
    ));
    assert_eq!(ids(&r), ["fma-containment"]);

    // Even a feature-gated region is not enough outside grtx-math.
    let r = run(spec(
        "grtx-render",
        Role::Src,
        false,
        r##"
pub fn shade(x: f32) -> f32 {
    #[cfg(feature = "fma")]
    let y = x.mul_add(2.0, 1.0);
    #[cfg(not(feature = "fma"))]
    let y = x * 2.0 + 1.0;
    y
}
"##,
    ));
    assert_eq!(ids(&r), ["fma-containment"]);
}

#[test]
fn fma_containment_clean_inside_math_feature_region() {
    let r = run(spec(
        "grtx-math",
        Role::Src,
        false,
        r##"
pub fn slab(min: f32, inv: f32, n: f32) -> f32 {
    #[cfg(feature = "fma")]
    let t = min.mul_add(inv, n);
    #[cfg(not(feature = "fma"))]
    let t = min * inv + n;
    t
}
"##,
    ));
    assert!(r.is_clean(), "unexpected: {:?}", r.findings);
}

#[test]
fn fma_containment_trailing_waiver() {
    let r = run(spec(
        "grtx-render",
        Role::Src,
        false,
        r##"
pub fn tonemap(x: f32) -> f32 {
    x.mul_add(0.5, 0.5) // grtx-allow(fma-containment): display-only path, outside the bit-identity surface
}
"##,
    ));
    assert!(r.is_clean());
    assert!(r.waivers[0].used);
}

// ---------------------------------------------------------------------------
// no-unscoped-spawn

#[test]
fn no_unscoped_spawn_fires_on_thread_spawn() {
    let r = run(spec(
        "grtx-sim",
        Role::Src,
        false,
        r##"
pub fn launch() {
    std::thread::spawn(|| work());
}
"##,
    ));
    assert_eq!(ids(&r), ["no-unscoped-spawn"]);
}

#[test]
fn no_unscoped_spawn_allows_scoped_spawn() {
    let r = run(spec(
        "grtx-sim",
        Role::Src,
        false,
        r##"
pub fn fan_out(items: &[u32]) {
    std::thread::scope(|s| {
        for chunk in items.chunks(8) {
            s.spawn(move || work(chunk));
        }
    });
}
"##,
    ));
    assert!(r.is_clean(), "scoped spawns are the sanctioned pattern");
}

#[test]
fn no_unscoped_spawn_trailing_waiver() {
    let r = run(spec(
        "grtx-sim",
        Role::Src,
        false,
        r##"
pub fn watchdog() {
    std::thread::spawn(|| monitor()); // grtx-allow(no-unscoped-spawn): side-channel watchdog, never merges results
}
"##,
    ));
    assert!(r.is_clean());
    assert!(r.waivers[0].used);
}

// ---------------------------------------------------------------------------
// panic-containment

#[test]
fn panic_containment_fires_outside_the_fault_and_pipeline_crates() {
    let content = r##"
pub fn shield<F: FnOnce() -> u32 + std::panic::UnwindSafe>(f: F) -> Option<u32> {
    std::panic::catch_unwind(f).ok()
}
"##;
    let r = run(spec("grtx-render", Role::Src, false, content));
    assert_eq!(ids(&r), ["panic-containment"]);
    assert_eq!(r.findings[0].line, 3);

    // Tests and examples are in scope too: a swallowed panic in a test
    // harness hides the payload the poison-path contract pins.
    let r = run(spec(
        "grtx-core",
        Role::Tests,
        false,
        r##"
fn rethrow(payload: Box<dyn std::any::Any + Send>) -> ! {
    std::panic::resume_unwind(payload)
}
"##,
    ));
    assert_eq!(ids(&r), ["panic-containment"]);
}

#[test]
fn panic_containment_clean_inside_fault_and_pipeline() {
    let content = r##"
pub fn shield<F: FnOnce() -> u32 + std::panic::UnwindSafe>(f: F) -> Option<u32> {
    std::panic::catch_unwind(f).ok()
}
"##;
    for (crate_name, role) in [
        ("grtx-fault", Role::Src),
        ("grtx-pipeline", Role::Src),
        ("grtx-pipeline", Role::Tests),
    ] {
        let r = run(spec(crate_name, role, false, content));
        assert!(
            r.is_clean(),
            "{crate_name}/{} must be exempt: {:?}",
            role.name(),
            r.findings
        );
    }
}

#[test]
fn panic_containment_trailing_waiver() {
    let r = run(spec(
        "grtx-bench",
        Role::Src,
        false,
        r##"
pub fn harness(run: fn()) {
    let _ = std::panic::catch_unwind(run); // grtx-allow(panic-containment): bench isolation only, payload is rethrown by the driver
}
"##,
    ));
    assert!(r.is_clean());
    assert!(r.waivers[0].used);
}

// ---------------------------------------------------------------------------
// Waiver meta-lints.

#[test]
fn waiver_without_reason_is_a_finding() {
    let r = run(spec(
        "grtx-sim",
        Role::Src,
        false,
        r##"
use std::collections::BTreeMap; // grtx-allow(deterministic-collections)
"##,
    ));
    assert_eq!(ids(&r), ["waiver-needs-reason"]);
}

#[test]
fn waiver_naming_unknown_lint_is_a_finding() {
    let r = run(spec(
        "grtx-sim",
        Role::Src,
        false,
        r##"
pub fn f() {} // grtx-allow(no-such-lint): misspelled on purpose
"##,
    ));
    assert_eq!(ids(&r), ["waiver-unknown-lint"]);
}

#[test]
fn unused_waiver_is_recorded_as_unused() {
    let r = run(spec(
        "grtx-sim",
        Role::Src,
        false,
        r##"
pub fn f() {} // grtx-allow(no-wall-clock): nothing here actually needs this
"##,
    ));
    assert!(r.is_clean());
    assert_eq!(r.waivers.len(), 1);
    assert!(!r.waivers[0].used, "nothing was suppressed");
}

// ---------------------------------------------------------------------------
// String/comment immunity and report plumbing.

#[test]
fn lint_tokens_inside_strings_and_comments_never_fire() {
    let r = run(spec(
        "grtx-sim",
        Role::Src,
        false,
        r##"
// A doc mentioning std::thread::spawn and partial_cmp must not fire,
// and neither must string payloads.
pub fn describe() -> &'static str {
    "std::thread::spawn(HashMap, Instant, mul_add)"
}
"##,
    ));
    assert!(r.is_clean(), "unexpected: {:?}", r.findings);
}

#[test]
fn report_counts_and_json_schema() {
    let fire = spec(
        "grtx-sim",
        Role::Src,
        false,
        r##"
use std::collections::HashMap;
"##,
    );
    let r = analyze_files(&[fire]);
    assert_eq!(r.findings.len(), 1);
    assert_eq!(r.files_scanned, 1);
    let json = r.to_json();
    assert!(json.contains(r#""schema":"grtx-analyze-v1""#), "{json}");
    assert!(json.contains(r#""lint":"deterministic-collections""#));
    let text = r.to_text();
    assert!(text.contains("deterministic-collections"));
    assert!(text.contains("1 finding(s)"));
}
