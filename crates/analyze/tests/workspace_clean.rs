//! Self-check: the live workspace must pass its own determinism lints.
//! This is the same scan CI runs with `--deny`; keeping it in the test
//! suite means `cargo test` alone catches a regression.

use std::path::Path;

#[test]
fn live_workspace_is_analyzer_clean() {
    let root = Path::new(env!("CARGO_MANIFEST_DIR")).join("../..");
    let report = grtx_analyze::analyze_workspace(&root).expect("workspace scan");
    assert!(
        report.is_clean(),
        "determinism lints fired on the live workspace:\n{}",
        report.to_text()
    );
    // Sanity: the scan actually visited the tree (all ten product crates
    // plus this one) rather than vacuously passing on an empty dir.
    assert!(
        report.crates.len() >= 11,
        "expected the full workspace, scanned: {:?}",
        report.crates
    );
    assert!(
        report.files_scanned > 50,
        "only {} files",
        report.files_scanned
    );
    // Every waiver in the tree must suppress a real finding — stale
    // waivers are contract exceptions with nothing left to excuse.
    for w in &report.waivers {
        assert!(
            w.used,
            "stale waiver at {}:{} for {}",
            w.file, w.line, w.lint
        );
    }
}
