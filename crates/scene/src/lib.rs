#![forbid(unsafe_code)]

//! 3D Gaussian scenes for the GRTX reproduction.
//!
//! This crate provides:
//!
//! * [`Gaussian`] — the anisotropic Gaussian primitive of 3DGS/3DGRT
//!   (mean, rotation, scale, opacity, spherical-harmonic appearance) and
//!   its response/alpha math (the `t_alpha` evaluation of the paper's
//!   Section III-A);
//! * [`GaussianScene`] — a flat scene container plus derived quantities
//!   (instance transforms, world-space bounds);
//! * [`camera`] — pinhole and fisheye (equidistant) camera models; the
//!   fisheye model is one of the motivations for ray tracing Gaussians;
//! * [`mesh`] — icosahedron / icosphere template meshes used as bounding
//!   proxies (20-tri and 80-tri variants from the paper);
//! * [`profile`] + [`synth`] — statistical profiles of the six evaluation
//!   scenes (Train, Truck, Bonsai, Room, Drjohnson, Playroom) and the
//!   synthetic generator that reproduces their traversal-relevant
//!   characteristics (see DESIGN.md §2 for the substitution argument);
//! * [`effects`] — the glass sphere and mirror quad added for the
//!   secondary-ray experiment (Fig. 23).
//!
//! # Examples
//!
//! ```
//! use grtx_scene::{SceneKind, synth::generate_scene};
//!
//! // A miniature Bonsai-statistics scene for tests.
//! let scene = generate_scene(SceneKind::Bonsai.profile().with_gaussian_budget(500), 42);
//! assert_eq!(scene.len(), 500);
//! ```

pub mod camera;
pub mod effects;
pub mod gaussian;
pub mod mesh;
pub mod profile;
pub mod sh;
pub mod synth;

pub use camera::{Camera, CameraModel};
pub use effects::EffectObjects;
pub use gaussian::{Gaussian, GaussianScene};
pub use mesh::TemplateMesh;
pub use profile::{SceneKind, SceneProfile};
pub use sh::ShCoeffs;
