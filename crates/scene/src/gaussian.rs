//! The anisotropic Gaussian primitive and scene container.

use crate::sh::ShCoeffs;
use grtx_fault::GrtxError;
use grtx_math::{Aabb, Affine3, Mat3, Quat, Ray, Vec3};

/// Default bounding radius in units of standard deviation.
///
/// 3DGRT encloses each Gaussian in an ellipsoid at ~3σ before building the
/// acceleration structure; responses outside are treated as zero.
pub const DEFAULT_SIGMA_BOUND: f32 = 3.0;

/// One anisotropic 3D Gaussian, parameterized exactly as 3DGS/3DGRT
/// checkpoints: mean, rotation quaternion, per-axis scale (standard
/// deviations), opacity, and SH appearance.
#[derive(Debug, Clone, PartialEq)]
pub struct Gaussian {
    /// Center position µ.
    pub mean: Vec3,
    /// Orientation of the principal axes.
    pub rotation: Quat,
    /// Per-axis standard deviations (σx, σy, σz), all strictly positive.
    pub scale: Vec3,
    /// Opacity `o` in `(0, 1]`.
    pub opacity: f32,
    /// View-dependent appearance.
    pub sh: ShCoeffs,
}

impl Gaussian {
    /// Creates an isotropic Gaussian with a flat color — convenient for
    /// tests and examples.
    pub fn isotropic(mean: Vec3, sigma: f32, opacity: f32, color: Vec3) -> Self {
        Self {
            mean,
            rotation: Quat::IDENTITY,
            scale: Vec3::splat(sigma),
            opacity,
            sh: ShCoeffs::from_color(color),
        }
    }

    /// The covariance factor `M = R · diag(σ)`, so `Σ = M Mᵀ`.
    pub fn covariance_factor(&self) -> Mat3 {
        self.rotation
            .to_mat3()
            .mul_mat3(&Mat3::from_diagonal(self.scale))
    }

    /// World-to-canonical map `M⁻¹ = diag(1/σ) · Rᵀ`: maps the 1σ
    /// iso-surface to the unit sphere.
    pub fn world_to_canonical(&self) -> Mat3 {
        Mat3::from_diagonal(Vec3::new(
            1.0 / self.scale.x,
            1.0 / self.scale.y,
            1.0 / self.scale.z,
        ))
        .mul_mat3(&self.rotation.to_mat3().transpose())
    }

    /// Instance transform for the shared-BLAS TLAS (GRTX-SW): maps the
    /// unit sphere onto this Gaussian's `sigma_bound`·σ bounding
    /// ellipsoid.
    ///
    /// Returns `None` for degenerate scales, which scene loading filters
    /// out.
    pub fn instance_transform(&self, sigma_bound: f32) -> Option<Affine3> {
        let linear = self
            .rotation
            .to_mat3()
            .mul_mat3(&Mat3::from_diagonal(self.scale * sigma_bound));
        Affine3::new(linear, self.mean)
    }

    /// World-space AABB of the `sigma_bound`·σ bounding ellipsoid.
    ///
    /// Uses the exact ellipsoid bound: the half-extent along axis `i` is
    /// `sigma_bound * sqrt(Σ_ii)`, i.e. the row norms of the covariance
    /// factor.
    pub fn world_aabb(&self, sigma_bound: f32) -> Aabb {
        let m = self.covariance_factor();
        let half = Vec3::new(m.row(0).length(), m.row(1).length(), m.row(2).length()) * sigma_bound;
        Aabb::from_center_half_extent(self.mean, half)
    }

    /// The evaluation point `t_alpha` where the Gaussian achieves maximum
    /// response along the ray (paper Section III-A):
    ///
    /// `t_alpha = (µ − r_o)ᵀ Σ⁻¹ r_d / (r_dᵀ Σ⁻¹ r_d)`.
    ///
    /// Computed in canonical space: with `o_g = M⁻¹(r_o − µ)` and
    /// `d_g = M⁻¹ r_d`, this is `−o_g·d_g / d_g·d_g`.
    pub fn t_alpha(&self, ray: &Ray) -> f32 {
        let inv = self.world_to_canonical();
        let og = inv.mul_vec3(ray.origin - self.mean);
        let dg = inv.mul_vec3(ray.direction);
        let denom = dg.dot(dg);
        if denom <= 0.0 {
            return 0.0;
        }
        -og.dot(dg) / denom
    }

    /// The Gaussian response `G(r_o + t·r_d)` at parameter `t`, in
    /// `(0, 1]`.
    pub fn response_at(&self, ray: &Ray, t: f32) -> f32 {
        let inv = self.world_to_canonical();
        let p = inv.mul_vec3(ray.at(t) - self.mean);
        (-0.5 * p.dot(p)).exp()
    }

    /// The blending alpha for this ray: `α = o · G(r_o + t_alpha · r_d)`,
    /// clamped to `0.999` as 3DGS does to keep transmittance positive.
    pub fn alpha_along(&self, ray: &Ray) -> f32 {
        let t = self.t_alpha(ray);
        (self.opacity * self.response_at(ray, t)).min(0.999)
    }

    /// View-dependent color for a ray direction.
    pub fn color(&self, dir: Vec3) -> Vec3 {
        self.sh.eval(dir)
    }

    /// `true` if the parameters are usable (finite mean/scale/rotation,
    /// strictly positive scales, opacity in `(0, 1]`).
    pub fn is_valid(&self) -> bool {
        self.invalid_reason().is_none()
    }

    /// Why this Gaussian is unusable, or `None` when it is valid.
    ///
    /// A non-finite mean or scale would silently corrupt every AABB
    /// union downstream (`NaN.max(x)` propagates), so the builder entry
    /// points reject them with [`GrtxError::InvalidScene`] instead.
    pub fn invalid_reason(&self) -> Option<&'static str> {
        if !self.mean.is_finite() {
            return Some("non-finite mean");
        }
        if !self.scale.is_finite() {
            return Some("non-finite scale");
        }
        if !(self.scale.x > 0.0 && self.scale.y > 0.0 && self.scale.z > 0.0) {
            return Some("non-positive scale");
        }
        if !self.rotation.is_finite() {
            return Some("non-finite rotation");
        }
        if !self.opacity.is_finite() {
            return Some("non-finite opacity");
        }
        if !(self.opacity > 0.0 && self.opacity <= 1.0) {
            return Some("opacity outside (0, 1]");
        }
        None
    }
}

/// A flat container of Gaussians plus cached scene-level data.
#[derive(Debug, Clone)]
pub struct GaussianScene {
    gaussians: Vec<Gaussian>,
    /// Bounding radius multiplier used when building acceleration
    /// structures.
    sigma_bound: f32,
    /// Cached union of all world AABBs — `bounds()` is on the hot path of
    /// the shard partitioner and the experiment layer, and the container
    /// is immutable after construction.
    bounds: Aabb,
}

impl Default for GaussianScene {
    fn default() -> Self {
        Self::new(Vec::new())
    }
}

impl GaussianScene {
    /// Creates a scene from Gaussians, dropping invalid ones, with the
    /// default 3σ bounding radius.
    pub fn new(gaussians: Vec<Gaussian>) -> Self {
        Self::with_sigma_bound(gaussians, DEFAULT_SIGMA_BOUND)
    }

    /// Strict constructor: rejects (rather than silently drops) the
    /// first invalid Gaussian, with the default 3σ bounding radius.
    pub fn try_new(gaussians: Vec<Gaussian>) -> Result<Self, GrtxError> {
        Self::try_with_sigma_bound(gaussians, DEFAULT_SIGMA_BOUND)
    }

    /// Strict constructor with an explicit bounding radius multiplier.
    ///
    /// Returns [`GrtxError::InvalidScene`] naming the first offending
    /// Gaussian (or the degenerate sigma bound); on success the scene
    /// is identical to [`GaussianScene::with_sigma_bound`] of the same
    /// input.
    pub fn try_with_sigma_bound(
        gaussians: Vec<Gaussian>,
        sigma_bound: f32,
    ) -> Result<Self, GrtxError> {
        if !(sigma_bound.is_finite() && sigma_bound > 0.0) {
            return Err(GrtxError::InvalidScene {
                index: None,
                reason: format!("sigma bound must be finite and positive, got {sigma_bound}"),
            });
        }
        for (index, gaussian) in gaussians.iter().enumerate() {
            if let Some(reason) = gaussian.invalid_reason() {
                return Err(GrtxError::InvalidScene {
                    index: Some(index),
                    reason: reason.to_string(),
                });
            }
        }
        Ok(Self::with_sigma_bound(gaussians, sigma_bound))
    }

    /// Re-checks the scene's invariants (all Gaussians valid, sane
    /// sigma bound) — cheap O(n), used by fallible entry points that
    /// accept scenes from arbitrary construction paths.
    pub fn validate(&self) -> Result<(), GrtxError> {
        if !(self.sigma_bound.is_finite() && self.sigma_bound > 0.0) {
            return Err(GrtxError::InvalidScene {
                index: None,
                reason: format!(
                    "sigma bound must be finite and positive, got {}",
                    self.sigma_bound
                ),
            });
        }
        for (index, gaussian) in self.gaussians.iter().enumerate() {
            if let Some(reason) = gaussian.invalid_reason() {
                return Err(GrtxError::InvalidScene {
                    index: Some(index),
                    reason: reason.to_string(),
                });
            }
        }
        Ok(())
    }

    /// Creates a scene with an explicit bounding radius multiplier.
    pub fn with_sigma_bound(gaussians: Vec<Gaussian>, sigma_bound: f32) -> Self {
        let gaussians: Vec<Gaussian> = gaussians.into_iter().filter(Gaussian::is_valid).collect();
        let mut bounds = Aabb::EMPTY;
        for g in &gaussians {
            bounds = bounds.union(&g.world_aabb(sigma_bound));
        }
        Self {
            gaussians,
            sigma_bound,
            bounds,
        }
    }

    /// Number of Gaussians.
    pub fn len(&self) -> usize {
        self.gaussians.len()
    }

    /// `true` if the scene has no Gaussians.
    pub fn is_empty(&self) -> bool {
        self.gaussians.is_empty()
    }

    /// The bounding radius multiplier (σ units).
    pub fn sigma_bound(&self) -> f32 {
        self.sigma_bound
    }

    /// Gaussian accessor.
    ///
    /// # Panics
    ///
    /// Panics if `index` is out of bounds.
    pub fn gaussian(&self, index: usize) -> &Gaussian {
        &self.gaussians[index]
    }

    /// All Gaussians.
    pub fn gaussians(&self) -> &[Gaussian] {
        &self.gaussians
    }

    /// Iterator over `(index, world AABB)` pairs at the scene's bounding
    /// radius — the input to both BVH construction paths.
    pub fn world_aabbs(&self) -> impl Iterator<Item = (usize, Aabb)> + '_ {
        self.gaussians
            .iter()
            .enumerate()
            .map(|(i, g)| (i, g.world_aabb(self.sigma_bound)))
    }

    /// Instance transform of Gaussian `index` at the scene bounding
    /// radius.
    ///
    /// # Panics
    ///
    /// Panics if `index` is out of bounds or the Gaussian is degenerate
    /// (excluded by construction).
    pub fn instance_transform(&self, index: usize) -> Affine3 {
        self.gaussians[index]
            .instance_transform(self.sigma_bound)
            .expect("scene construction filters degenerate Gaussians")
    }

    /// World-space bounds of the whole scene (cached at construction).
    pub fn bounds(&self) -> Aabb {
        self.bounds
    }
}

impl FromIterator<Gaussian> for GaussianScene {
    fn from_iter<T: IntoIterator<Item = Gaussian>>(iter: T) -> Self {
        Self::new(iter.into_iter().collect())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn test_gaussian() -> Gaussian {
        Gaussian {
            mean: Vec3::new(1.0, 2.0, 3.0),
            rotation: Quat::from_axis_angle(Vec3::new(0.2, 1.0, 0.4), 0.9),
            scale: Vec3::new(0.5, 0.2, 1.5),
            opacity: 0.8,
            sh: ShCoeffs::from_color(Vec3::new(0.9, 0.1, 0.2)),
        }
    }

    #[test]
    fn response_is_max_at_t_alpha() {
        let g = test_gaussian();
        let ray = Ray::new(
            Vec3::new(-3.0, 0.0, 0.0),
            Vec3::new(0.9, 0.4, 0.6).normalized(),
        );
        let t = g.t_alpha(&ray);
        let peak = g.response_at(&ray, t);
        for dt in [-0.5, -0.1, 0.1, 0.5] {
            assert!(
                peak >= g.response_at(&ray, t + dt),
                "peak not maximal at dt={dt}"
            );
        }
    }

    #[test]
    fn response_at_mean_is_one() {
        let g = test_gaussian();
        let dir = Vec3::new(0.0, 0.0, 1.0);
        let ray = Ray::new(g.mean - dir * 5.0, dir);
        assert!((g.response_at(&ray, 5.0) - 1.0).abs() < 1e-5);
    }

    #[test]
    fn alpha_never_exceeds_cap() {
        let mut g = test_gaussian();
        g.opacity = 1.0;
        let dir = Vec3::Z;
        let ray = Ray::new(g.mean - dir * 5.0, dir);
        assert!(g.alpha_along(&ray) <= 0.999);
    }

    #[test]
    fn world_aabb_contains_bounding_ellipsoid_surface() {
        let g = test_gaussian();
        let bound = 3.0;
        let aabb = g.world_aabb(bound);
        let m = g.covariance_factor();
        // Sample points on the 3σ ellipsoid surface.
        for i in 0..32 {
            let theta = i as f32 * 0.39;
            let phi = i as f32 * 0.77;
            let p = Vec3::new(
                theta.sin() * phi.cos(),
                theta.sin() * phi.sin(),
                theta.cos(),
            );
            let world = m.mul_vec3(p * bound) + g.mean;
            assert!(
                aabb.contains_point(world),
                "surface point {world} escapes AABB"
            );
        }
    }

    #[test]
    fn instance_transform_maps_unit_sphere_to_bound() {
        let g = test_gaussian();
        let inst = g.instance_transform(3.0).expect("valid");
        // Unit-sphere pole maps to a point at 3σ in canonical distance.
        let world = inst.transform_point(Vec3::Z);
        let canonical = g.world_to_canonical().mul_vec3(world - g.mean);
        assert!((canonical.length() - 3.0).abs() < 1e-4);
    }

    #[test]
    fn scene_filters_invalid_gaussians() {
        let mut bad = test_gaussian();
        bad.scale.y = 0.0;
        let scene = GaussianScene::new(vec![test_gaussian(), bad]);
        assert_eq!(scene.len(), 1);
    }

    /// Regression: infinite scales and non-finite rotations previously
    /// passed `is_valid` (`inf > 0.0` is true) and fed NaN into the AABB
    /// union, silently corrupting the builder's bounds.
    #[test]
    fn non_finite_gaussians_are_filtered_and_bounds_stay_finite() {
        let mut inf_scale = test_gaussian();
        inf_scale.scale.x = f32::INFINITY;
        let mut nan_rotation = test_gaussian();
        nan_rotation.rotation = Quat::new(f32::NAN, 0.0, 0.0, 0.0);
        let mut nan_opacity = test_gaussian();
        nan_opacity.opacity = f32::NAN;
        assert_eq!(inf_scale.invalid_reason(), Some("non-finite scale"));
        assert_eq!(nan_rotation.invalid_reason(), Some("non-finite rotation"));
        assert_eq!(nan_opacity.invalid_reason(), Some("non-finite opacity"));
        let scene = GaussianScene::new(vec![test_gaussian(), inf_scale, nan_rotation, nan_opacity]);
        assert_eq!(scene.len(), 1);
        let b = scene.bounds();
        assert!(b.min.is_finite() && b.max.is_finite());
    }

    #[test]
    fn try_new_names_the_first_offender() {
        let mut bad = test_gaussian();
        bad.mean.z = f32::NAN;
        let err = GaussianScene::try_new(vec![test_gaussian(), bad]).unwrap_err();
        assert_eq!(
            err,
            GrtxError::InvalidScene {
                index: Some(1),
                reason: "non-finite mean".into()
            }
        );
        let ok = GaussianScene::try_new(vec![test_gaussian()]).expect("valid scene");
        assert_eq!(ok.len(), 1);
        ok.validate().expect("constructed scenes validate");
        assert!(GaussianScene::try_with_sigma_bound(vec![], f32::NAN).is_err());
    }

    #[test]
    fn scene_bounds_contain_all_means() {
        let scene: GaussianScene = (0..10)
            .map(|i| Gaussian::isotropic(Vec3::splat(i as f32), 0.1, 0.5, Vec3::ONE))
            .collect();
        let b = scene.bounds();
        for g in scene.gaussians() {
            assert!(b.contains_point(g.mean));
        }
    }

    #[test]
    fn cached_bounds_match_recomputed_union() {
        let scene: GaussianScene = (0..25)
            .map(|i| {
                Gaussian::isotropic(
                    Vec3::new(i as f32, (i * 7 % 5) as f32, -(i as f32)),
                    0.1 + (i % 4) as f32 * 0.2,
                    0.5,
                    Vec3::ONE,
                )
            })
            .collect();
        let mut expected = Aabb::EMPTY;
        for (_, aabb) in scene.world_aabbs() {
            expected = expected.union(&aabb);
        }
        assert_eq!(scene.bounds(), expected);
        assert!(GaussianScene::default().bounds().is_empty());
    }

    #[test]
    fn t_alpha_matches_direct_covariance_formula() {
        // Cross-check the canonical-space evaluation against the paper's
        // direct formula with Σ⁻¹.
        let g = test_gaussian();
        let ray = Ray::new(
            Vec3::new(-2.0, 1.0, 0.5),
            Vec3::new(0.5, 0.1, 0.85).normalized(),
        );
        let m = g.covariance_factor();
        let sigma = m.mul_self_transpose();
        let sigma_inv = sigma.inverse().expect("invertible");
        let diff = g.mean - ray.origin;
        let expected = diff.dot(sigma_inv.mul_vec3(ray.direction))
            / ray.direction.dot(sigma_inv.mul_vec3(ray.direction));
        assert!((g.t_alpha(&ray) - expected).abs() < 1e-3 * (1.0 + expected.abs()));
    }
}
