//! Real spherical harmonics for view-dependent Gaussian color.
//!
//! 3DGRT evaluates per-ray colors from SH coefficients and the ray
//! direction at render time (paper Section III-A, "Alpha Blending"),
//! instead of precomputing colors as rasterization does. We implement the
//! standard real SH basis up to degree 3 (16 coefficients), matching 3DGS
//! checkpoints.

use grtx_math::Vec3;

/// Number of SH coefficients at the maximum supported degree (3).
pub const MAX_COEFFS: usize = 16;

/// Hard-coded real SH basis constants (degree ≤ 3), identical to the
/// constants in the 3DGS reference CUDA kernels.
const SH_C0: f32 = 0.282_094_79;
const SH_C1: f32 = 0.488_602_51;
const SH_C2: [f32; 5] = [
    1.092_548_4,
    -1.092_548_4,
    0.315_391_57,
    -1.092_548_4,
    0.546_274_2,
];
const SH_C3: [f32; 7] = [
    -0.590_043_6,
    2.890_611_4,
    -0.457_045_8,
    0.373_176_33,
    -0.457_045_8,
    1.445_305_7,
    -0.590_043_6,
];

/// Per-Gaussian RGB spherical-harmonic coefficients.
///
/// Coefficients above the active `degree` are stored but ignored during
/// evaluation, mirroring how 3DGS progressively unlocks SH degrees during
/// training.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ShCoeffs {
    /// Active SH degree in `0..=3`.
    degree: u8,
    /// RGB coefficient per basis function.
    coeffs: [Vec3; MAX_COEFFS],
}

impl ShCoeffs {
    /// Creates degree-0 (view-independent) coefficients from a base color.
    ///
    /// The DC term is chosen so that evaluation returns `color` for any
    /// direction: `eval = SH_C0 * c0 + 0.5`.
    pub fn from_color(color: Vec3) -> Self {
        let mut coeffs = [Vec3::ZERO; MAX_COEFFS];
        coeffs[0] = (color - Vec3::splat(0.5)) / SH_C0;
        Self { degree: 0, coeffs }
    }

    /// Creates coefficients with an explicit degree.
    ///
    /// # Panics
    ///
    /// Panics if `degree > 3`.
    pub fn new(degree: u8, coeffs: [Vec3; MAX_COEFFS]) -> Self {
        assert!(degree <= 3, "SH degree must be at most 3, got {degree}");
        Self { degree, coeffs }
    }

    /// Active SH degree.
    pub fn degree(&self) -> u8 {
        self.degree
    }

    /// Raw coefficient access.
    pub fn coeffs(&self) -> &[Vec3; MAX_COEFFS] {
        &self.coeffs
    }

    /// Number of coefficients the active degree uses.
    pub fn active_len(&self) -> usize {
        ((self.degree as usize) + 1) * ((self.degree as usize) + 1)
    }

    /// Evaluates the view-dependent color for a (normalized) view
    /// direction, clamped to non-negative values as the 3DGS renderer does
    /// (`max(0, eval + 0.5)`).
    pub fn eval(&self, dir: Vec3) -> Vec3 {
        let c = &self.coeffs;
        let mut result = c[0] * SH_C0;
        if self.degree >= 1 {
            let (x, y, z) = (dir.x, dir.y, dir.z);
            result += c[1] * (-SH_C1 * y) + c[2] * (SH_C1 * z) + c[3] * (-SH_C1 * x);
            if self.degree >= 2 {
                let (xx, yy, zz) = (x * x, y * y, z * z);
                let (xy, yz, xz) = (x * y, y * z, x * z);
                result += c[4] * (SH_C2[0] * xy)
                    + c[5] * (SH_C2[1] * yz)
                    + c[6] * (SH_C2[2] * (2.0 * zz - xx - yy))
                    + c[7] * (SH_C2[3] * xz)
                    + c[8] * (SH_C2[4] * (xx - yy));
                if self.degree >= 3 {
                    result += c[9] * (SH_C3[0] * y * (3.0 * xx - yy))
                        + c[10] * (SH_C3[1] * xy * z)
                        + c[11] * (SH_C3[2] * y * (4.0 * zz - xx - yy))
                        + c[12] * (SH_C3[3] * z * (2.0 * zz - 3.0 * xx - 3.0 * yy))
                        + c[13] * (SH_C3[4] * x * (4.0 * zz - xx - yy))
                        + c[14] * (SH_C3[5] * z * (xx - yy))
                        + c[15] * (SH_C3[6] * x * (xx - 3.0 * yy));
                }
            }
        }
        result += Vec3::splat(0.5);
        result.max(Vec3::ZERO)
    }
}

impl Default for ShCoeffs {
    fn default() -> Self {
        Self::from_color(Vec3::splat(0.5))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn degree0_is_view_independent() {
        let sh = ShCoeffs::from_color(Vec3::new(0.8, 0.3, 0.1));
        let a = sh.eval(Vec3::Z);
        let b = sh.eval(Vec3::new(1.0, 1.0, 1.0).normalized());
        assert!((a - b).length() < 1e-6);
        assert!((a - Vec3::new(0.8, 0.3, 0.1)).length() < 1e-5);
    }

    #[test]
    fn eval_is_clamped_non_negative() {
        let sh = ShCoeffs::from_color(Vec3::new(-5.0, 0.5, 0.5));
        let c = sh.eval(Vec3::X);
        assert!(c.x >= 0.0 && c.y >= 0.0 && c.z >= 0.0);
    }

    #[test]
    fn degree1_varies_with_direction() {
        let mut coeffs = [Vec3::ZERO; MAX_COEFFS];
        coeffs[0] = Vec3::splat(0.0);
        coeffs[2] = Vec3::new(1.0, 0.0, 0.0); // z-linear red band
        let sh = ShCoeffs::new(1, coeffs);
        let up = sh.eval(Vec3::Z);
        let down = sh.eval(-Vec3::Z);
        assert!(up.x > down.x, "red should increase towards +z");
    }

    #[test]
    fn active_len_matches_degree() {
        assert_eq!(ShCoeffs::from_color(Vec3::ZERO).active_len(), 1);
        let sh3 = ShCoeffs::new(3, [Vec3::ZERO; MAX_COEFFS]);
        assert_eq!(sh3.active_len(), 16);
    }

    #[test]
    #[should_panic(expected = "SH degree")]
    fn degree_above_3_panics() {
        let _ = ShCoeffs::new(4, [Vec3::ZERO; MAX_COEFFS]);
    }

    #[test]
    fn higher_degree_terms_ignored_below_degree() {
        let mut coeffs = [Vec3::ZERO; MAX_COEFFS];
        coeffs[0] = Vec3::splat(1.0);
        coeffs[9] = Vec3::splat(100.0); // degree-3 coefficient
        let sh1 = ShCoeffs::new(1, coeffs);
        let sh3 = ShCoeffs::new(3, coeffs);
        let d = Vec3::new(0.3, 0.5, 0.8).normalized();
        assert_ne!(sh1.eval(d), sh3.eval(d));
    }
}
