//! Statistical profiles of the six evaluation scenes.
//!
//! The paper evaluates real captures (Tanks&Temples, Mip-NeRF 360, Deep
//! Blending) trained with 3DGRT. We cannot ship those trained checkpoints,
//! so each scene is replaced by a *profile*: the traversal-relevant
//! statistics the paper itself calls out —
//!
//! * total Gaussian count (Table II),
//! * spatial distribution (Bonsai: "numerous small Gaussians concentrated
//!   in specific regions"; Train/Truck: "distributed more uniformly"),
//! * the presence of very large Gaussians ("the walls in Drjohnson and
//!   Playroom" that force deep traversal of overlapping boxes),
//! * render resolution and field of view.
//!
//! The synthetic generator in [`crate::synth`] samples scenes from these
//! profiles. DESIGN.md §2 documents why this substitution preserves the
//! paper's phenomena.

use grtx_math::Vec3;

/// The six evaluation scenes of Table II.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum SceneKind {
    /// Tanks&Temples "Train" — outdoor, 1.46M Gaussians, fairly uniform.
    Train,
    /// Tanks&Temples "Truck" — outdoor, 2.43M Gaussians, fairly uniform.
    Truck,
    /// Mip-NeRF 360 "Bonsai" — indoor, 1.13M Gaussians, dense clusters of
    /// small Gaussians.
    Bonsai,
    /// Mip-NeRF 360 "Room" — indoor, 0.76M Gaussians.
    Room,
    /// Deep Blending "Drjohnson" — indoor, 1.72M Gaussians, large wall
    /// Gaussians.
    Drjohnson,
    /// Deep Blending "Playroom" — indoor, 0.97M Gaussians, large wall
    /// Gaussians.
    Playroom,
}

impl SceneKind {
    /// All six scenes in the paper's presentation order.
    pub const ALL: [SceneKind; 6] = [
        SceneKind::Train,
        SceneKind::Truck,
        SceneKind::Bonsai,
        SceneKind::Room,
        SceneKind::Drjohnson,
        SceneKind::Playroom,
    ];

    /// Display name matching the paper's tables.
    pub fn name(self) -> &'static str {
        match self {
            SceneKind::Train => "Train",
            SceneKind::Truck => "Truck",
            SceneKind::Bonsai => "Bonsai",
            SceneKind::Room => "Room",
            SceneKind::Drjohnson => "Drjohnson",
            SceneKind::Playroom => "Playroom",
        }
    }

    /// The scene's statistical profile.
    pub fn profile(self) -> SceneProfile {
        // Spatial extents are in abstract world units; indoor scenes are
        // tighter, which concentrates Gaussians and deepens traversal.
        match self {
            SceneKind::Train => SceneProfile {
                kind: self,
                full_gaussian_count: 1_460_000,
                gaussian_budget: 1_460_000 / DEFAULT_SCALE_DIVISOR,
                resolution: (980, 545),
                half_extent: Vec3::new(22.0, 8.0, 22.0),
                cluster_fraction: 0.25,
                cluster_count: 24,
                cluster_radius_frac: 0.08,
                large_fraction: 0.01,
                sigma_log_mean: -2.35,
                sigma_log_std: 0.55,
                large_sigma_mult: 10.0,
                anisotropy_log_std: 0.7,
                camera_distance_frac: 0.75,
                camera_height_frac: 0.35,
                fov_y_deg: 48.0,
            },
            SceneKind::Truck => SceneProfile {
                kind: self,
                full_gaussian_count: 2_430_000,
                gaussian_budget: 2_430_000 / DEFAULT_SCALE_DIVISOR,
                resolution: (979, 546),
                half_extent: Vec3::new(26.0, 9.0, 26.0),
                cluster_fraction: 0.20,
                cluster_count: 20,
                cluster_radius_frac: 0.10,
                large_fraction: 0.008,
                sigma_log_mean: -2.3,
                sigma_log_std: 0.55,
                large_sigma_mult: 10.0,
                anisotropy_log_std: 0.7,
                camera_distance_frac: 0.75,
                camera_height_frac: 0.3,
                fov_y_deg: 48.0,
            },
            SceneKind::Bonsai => SceneProfile {
                kind: self,
                full_gaussian_count: 1_130_000,
                gaussian_budget: 1_130_000 / DEFAULT_SCALE_DIVISOR,
                resolution: (1559, 1039),
                half_extent: Vec3::new(9.0, 5.0, 9.0),
                // The signature Bonsai structure: most Gaussians are tiny
                // and packed into a few dense regions the camera looks at.
                cluster_fraction: 0.70,
                cluster_count: 6,
                cluster_radius_frac: 0.10,
                large_fraction: 0.004,
                sigma_log_mean: -3.1,
                sigma_log_std: 0.5,
                large_sigma_mult: 12.0,
                anisotropy_log_std: 0.6,
                camera_distance_frac: 0.6,
                camera_height_frac: 0.25,
                fov_y_deg: 40.0,
            },
            SceneKind::Room => SceneProfile {
                kind: self,
                full_gaussian_count: 760_000,
                gaussian_budget: 760_000 / DEFAULT_SCALE_DIVISOR,
                resolution: (1557, 1038),
                half_extent: Vec3::new(8.0, 4.0, 8.0),
                cluster_fraction: 0.45,
                cluster_count: 10,
                cluster_radius_frac: 0.14,
                large_fraction: 0.015,
                sigma_log_mean: -2.7,
                sigma_log_std: 0.55,
                large_sigma_mult: 11.0,
                anisotropy_log_std: 0.7,
                camera_distance_frac: 0.6,
                camera_height_frac: 0.2,
                fov_y_deg: 42.0,
            },
            SceneKind::Drjohnson => SceneProfile {
                kind: self,
                full_gaussian_count: 1_720_000,
                gaussian_budget: 1_720_000 / DEFAULT_SCALE_DIVISOR,
                resolution: (1332, 876),
                half_extent: Vec3::new(10.0, 4.5, 10.0),
                cluster_fraction: 0.40,
                cluster_count: 12,
                cluster_radius_frac: 0.12,
                // Large wall Gaussians — the case where GRTX-HW shines.
                large_fraction: 0.05,
                sigma_log_mean: -2.75,
                sigma_log_std: 0.6,
                large_sigma_mult: 16.0,
                anisotropy_log_std: 0.9,
                camera_distance_frac: 0.55,
                camera_height_frac: 0.2,
                fov_y_deg: 45.0,
            },
            SceneKind::Playroom => SceneProfile {
                kind: self,
                full_gaussian_count: 970_000,
                gaussian_budget: 970_000 / DEFAULT_SCALE_DIVISOR,
                resolution: (1264, 832),
                half_extent: Vec3::new(9.0, 4.0, 9.0),
                cluster_fraction: 0.40,
                cluster_count: 10,
                cluster_radius_frac: 0.12,
                large_fraction: 0.05,
                sigma_log_mean: -2.7,
                sigma_log_std: 0.6,
                large_sigma_mult: 16.0,
                anisotropy_log_std: 0.9,
                camera_distance_frac: 0.55,
                camera_height_frac: 0.2,
                fov_y_deg: 45.0,
            },
        }
    }
}

impl std::fmt::Display for SceneKind {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.name())
    }
}

/// Default down-scaling of Gaussian counts for tractable simulation
/// (documented substitution: counts are reported at scale and the
/// paper-scale numbers are extrapolated linearly in EXPERIMENTS.md).
pub const DEFAULT_SCALE_DIVISOR: usize = 20;

/// The statistical profile a synthetic scene is sampled from.
#[derive(Debug, Clone, PartialEq)]
pub struct SceneProfile {
    /// Which paper scene this profile mimics.
    pub kind: SceneKind,
    /// Paper-scale Gaussian count (Table II).
    pub full_gaussian_count: usize,
    /// Number of Gaussians to actually generate.
    pub gaussian_budget: usize,
    /// Render resolution `(width, height)` from Table II.
    pub resolution: (u32, u32),
    /// Scene half-extent (world units); Gaussian means stay inside.
    pub half_extent: Vec3,
    /// Fraction of Gaussians packed into dense clusters.
    pub cluster_fraction: f32,
    /// Number of dense clusters.
    pub cluster_count: usize,
    /// Cluster radius as a fraction of the max half-extent.
    pub cluster_radius_frac: f32,
    /// Fraction of very large (wall/sky) Gaussians.
    pub large_fraction: f32,
    /// Log-normal mean of ln(σ) for regular Gaussians (world units).
    pub sigma_log_mean: f32,
    /// Log-normal std of ln(σ).
    pub sigma_log_std: f32,
    /// Scale multiplier applied to large Gaussians.
    pub large_sigma_mult: f32,
    /// Std of per-axis log anisotropy (0 → isotropic).
    pub anisotropy_log_std: f32,
    /// Camera distance from center as a fraction of max half-extent.
    pub camera_distance_frac: f32,
    /// Camera height as a fraction of max half-extent.
    pub camera_height_frac: f32,
    /// Vertical field of view in degrees.
    pub fov_y_deg: f32,
}

impl SceneProfile {
    /// Overrides the number of Gaussians generated (for fast tests or
    /// full-scale runs). Returns the modified profile builder-style.
    pub fn with_gaussian_budget(mut self, budget: usize) -> Self {
        self.gaussian_budget = budget;
        self
    }

    /// Overrides the render resolution (the paper evaluates mostly at
    /// 128×128 with the original FoV preserved).
    pub fn with_resolution(mut self, width: u32, height: u32) -> Self {
        self.resolution = (width, height);
        self
    }

    /// Overrides the vertical FoV (Fig. 19 scales it down to emulate
    /// cropping).
    pub fn with_fov_y_deg(mut self, fov: f32) -> Self {
        self.fov_y_deg = fov;
        self
    }

    /// The camera eye position implied by the profile.
    pub fn camera_eye(&self) -> Vec3 {
        let r = self.half_extent.max_element();
        Vec3::new(
            r * self.camera_distance_frac,
            r * self.camera_height_frac,
            r * self.camera_distance_frac,
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn all_scenes_have_table2_counts() {
        let counts: Vec<usize> = SceneKind::ALL
            .iter()
            .map(|k| k.profile().full_gaussian_count)
            .collect();
        assert_eq!(
            counts,
            vec![1_460_000, 2_430_000, 1_130_000, 760_000, 1_720_000, 970_000]
        );
    }

    #[test]
    fn default_budget_is_scaled_down() {
        for kind in SceneKind::ALL {
            let p = kind.profile();
            assert_eq!(
                p.gaussian_budget,
                p.full_gaussian_count / DEFAULT_SCALE_DIVISOR
            );
        }
    }

    #[test]
    fn bonsai_is_most_clustered() {
        let bonsai = SceneKind::Bonsai.profile();
        for kind in SceneKind::ALL {
            if kind != SceneKind::Bonsai {
                assert!(bonsai.cluster_fraction >= kind.profile().cluster_fraction);
            }
        }
    }

    #[test]
    fn deep_blending_scenes_have_most_large_gaussians() {
        let dj = SceneKind::Drjohnson.profile().large_fraction;
        let pr = SceneKind::Playroom.profile().large_fraction;
        for kind in [
            SceneKind::Train,
            SceneKind::Truck,
            SceneKind::Bonsai,
            SceneKind::Room,
        ] {
            assert!(dj > kind.profile().large_fraction);
            assert!(pr > kind.profile().large_fraction);
        }
    }

    #[test]
    fn builder_overrides_apply() {
        let p = SceneKind::Train
            .profile()
            .with_gaussian_budget(100)
            .with_resolution(128, 128)
            .with_fov_y_deg(20.0);
        assert_eq!(p.gaussian_budget, 100);
        assert_eq!(p.resolution, (128, 128));
        assert_eq!(p.fov_y_deg, 20.0);
    }

    #[test]
    fn display_matches_paper_names() {
        assert_eq!(SceneKind::Drjohnson.to_string(), "Drjohnson");
    }
}
