//! Template bounding meshes for Gaussian proxies.
//!
//! The baseline 3DGRT encloses every Gaussian in a *stretched regular
//! icosahedron* (20 triangles); Condor et al. use a subdivided icosphere
//! (80 triangles) to reduce false-positive intersections. GRTX-SW keeps a
//! single template mesh in the shared BLAS instead of stretching one copy
//! per Gaussian.

use grtx_math::{Affine3, Vec3};

/// An indexed triangle mesh template (unit-sphere circumscribed).
#[derive(Debug, Clone, PartialEq)]
pub struct TemplateMesh {
    /// Vertex positions on/around the unit sphere.
    pub vertices: Vec<Vec3>,
    /// Triangle vertex indices.
    pub triangles: Vec<[u32; 3]>,
}

impl TemplateMesh {
    /// Number of triangles.
    pub fn triangle_count(&self) -> usize {
        self.triangles.len()
    }

    /// Returns the three corner positions of triangle `i`.
    ///
    /// # Panics
    ///
    /// Panics if `i` is out of bounds.
    pub fn triangle_vertices(&self, i: usize) -> [Vec3; 3] {
        let [a, b, c] = self.triangles[i];
        [
            self.vertices[a as usize],
            self.vertices[b as usize],
            self.vertices[c as usize],
        ]
    }

    /// A regular icosahedron **circumscribing** the unit sphere: the
    /// insphere of the mesh has radius 1, so the mesh conservatively
    /// bounds the sphere (no false negatives). This is the 20-triangle
    /// proxy of the baseline.
    pub fn icosahedron() -> Self {
        let phi = (1.0 + 5.0_f32.sqrt()) / 2.0;
        // Circumradius of the unit-edge icosahedron relative to insphere:
        // scale vertices so the *insphere* radius becomes 1.
        let raw: Vec<Vec3> = [
            (-1.0, phi, 0.0),
            (1.0, phi, 0.0),
            (-1.0, -phi, 0.0),
            (1.0, -phi, 0.0),
            (0.0, -1.0, phi),
            (0.0, 1.0, phi),
            (0.0, -1.0, -phi),
            (0.0, 1.0, -phi),
            (phi, 0.0, -1.0),
            (phi, 0.0, 1.0),
            (-phi, 0.0, -1.0),
            (-phi, 0.0, 1.0),
        ]
        .iter()
        .map(|&(x, y, z)| Vec3::new(x, y, z))
        .collect();

        let triangles: Vec<[u32; 3]> = vec![
            [0, 11, 5],
            [0, 5, 1],
            [0, 1, 7],
            [0, 7, 10],
            [0, 10, 11],
            [1, 5, 9],
            [5, 11, 4],
            [11, 10, 2],
            [10, 7, 6],
            [7, 1, 8],
            [3, 9, 4],
            [3, 4, 2],
            [3, 2, 6],
            [3, 6, 8],
            [3, 8, 9],
            [4, 9, 5],
            [2, 4, 11],
            [6, 2, 10],
            [8, 6, 7],
            [9, 8, 1],
        ];

        // Current insphere radius = distance from origin to a face plane.
        let v = [raw[0], raw[11], raw[5]];
        let n = (v[1] - v[0]).cross(v[2] - v[0]).normalized();
        let insphere = n.dot(v[0]).abs();
        let scale = 1.0 / insphere;
        let vertices = raw.into_iter().map(|p| p * scale).collect();
        Self {
            vertices,
            triangles,
        }
    }

    /// An 80-triangle icosphere (one subdivision of the icosahedron),
    /// rescaled so its insphere has radius 1 — the tighter proxy of
    /// Condor et al. with ~4× fewer false positives.
    pub fn icosphere_80() -> Self {
        let base = Self::icosahedron();
        // Project base vertices onto the unit sphere, subdivide, re-project,
        // then scale out to circumscribe.
        let mut vertices: Vec<Vec3> = base.vertices.iter().map(|v| v.normalized()).collect();
        let mut triangles = Vec::with_capacity(80);
        // grtx-allow(deterministic-collections): insert/lookup cache
        // only, never iterated — hash order cannot reach any output.
        let mut midpoint_cache: std::collections::HashMap<(u32, u32), u32> =
            std::collections::HashMap::new();
        let mut midpoint = |a: u32, b: u32, vertices: &mut Vec<Vec3>| -> u32 {
            let key = if a < b { (a, b) } else { (b, a) };
            *midpoint_cache.entry(key).or_insert_with(|| {
                let m = ((vertices[a as usize] + vertices[b as usize]) * 0.5).normalized();
                vertices.push(m);
                (vertices.len() - 1) as u32
            })
        };
        for &[a, b, c] in &base.triangles {
            let ab = midpoint(a, b, &mut vertices);
            let bc = midpoint(b, c, &mut vertices);
            let ca = midpoint(c, a, &mut vertices);
            triangles.push([a, ab, ca]);
            triangles.push([b, bc, ab]);
            triangles.push([c, ca, bc]);
            triangles.push([ab, bc, ca]);
        }
        // Insphere of the subdivided mesh: min distance to any face plane.
        let mut insphere = f32::INFINITY;
        for &[a, b, c] in &triangles {
            let (va, vb, vc) = (
                vertices[a as usize],
                vertices[b as usize],
                vertices[c as usize],
            );
            let n = (vb - va).cross(vc - va).normalized();
            insphere = insphere.min(n.dot(va).abs());
        }
        let scale = 1.0 / insphere;
        let vertices = vertices.into_iter().map(|p| p * scale).collect();
        Self {
            vertices,
            triangles,
        }
    }

    /// Instantiates the template for one Gaussian: applies the instance
    /// transform to every vertex (the baseline's per-Gaussian stretched
    /// mesh used by the monolithic BVH).
    pub fn stretched(&self, instance: &Affine3) -> Self {
        Self {
            vertices: self
                .vertices
                .iter()
                .map(|&v| instance.transform_point(v))
                .collect(),
            triangles: self.triangles.clone(),
        }
    }

    /// Approximate bytes needed to store this mesh (vertices + indices),
    /// used by the BVH size accounting.
    pub fn storage_bytes(&self) -> usize {
        self.vertices.len() * 12 + self.triangles.len() * 12
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use grtx_math::intersect::ray_triangle;
    use grtx_math::Ray;

    fn mesh_hit(mesh: &TemplateMesh, ray: &Ray) -> Option<f32> {
        let mut best: Option<f32> = None;
        for i in 0..mesh.triangle_count() {
            let [a, b, c] = mesh.triangle_vertices(i);
            if let Some(hit) = ray_triangle(ray, a, b, c) {
                best = Some(best.map_or(hit.t, |t: f32| t.min(hit.t)));
            }
        }
        best
    }

    #[test]
    fn icosahedron_has_20_faces_12_vertices() {
        let m = TemplateMesh::icosahedron();
        assert_eq!(m.triangle_count(), 20);
        assert_eq!(m.vertices.len(), 12);
    }

    #[test]
    fn icosphere_has_80_faces() {
        let m = TemplateMesh::icosphere_80();
        assert_eq!(m.triangle_count(), 80);
        assert_eq!(m.vertices.len(), 42);
    }

    #[test]
    fn icosahedron_circumscribes_unit_sphere() {
        // Any ray hitting the unit sphere must hit the proxy (no false
        // negatives). Fire rays at random sphere points from outside.
        let m = TemplateMesh::icosahedron();
        for i in 0..64 {
            let theta = i as f32 * 0.41;
            let phi = i as f32 * 1.13;
            let target = Vec3::new(
                theta.sin() * phi.cos(),
                theta.sin() * phi.sin(),
                theta.cos(),
            ) * 0.99;
            let origin = Vec3::new(7.0, -4.0, 3.0);
            let ray = Ray::new(origin, (target - origin).normalized());
            assert!(
                mesh_hit(&m, &ray).is_some(),
                "proxy misses sphere point {target}"
            );
        }
    }

    #[test]
    fn icosphere_is_tighter_than_icosahedron() {
        let ico = TemplateMesh::icosahedron();
        let sphere80 = TemplateMesh::icosphere_80();
        let max_r = |m: &TemplateMesh| m.vertices.iter().map(|v| v.length()).fold(0.0f32, f32::max);
        assert!(
            max_r(&sphere80) < max_r(&ico),
            "80-tri proxy should hug the sphere tighter"
        );
    }

    #[test]
    fn stretched_mesh_moves_with_instance() {
        use grtx_math::{Mat3, Vec3};
        let m = TemplateMesh::icosahedron();
        let inst = grtx_math::Affine3::new(
            Mat3::from_diagonal(Vec3::new(2.0, 1.0, 1.0)),
            Vec3::new(10.0, 0.0, 0.0),
        )
        .unwrap();
        let s = m.stretched(&inst);
        let centroid: Vec3 =
            s.vertices.iter().fold(Vec3::ZERO, |acc, &v| acc + v) / s.vertices.len() as f32;
        assert!((centroid - Vec3::new(10.0, 0.0, 0.0)).length() < 1e-3);
    }

    #[test]
    fn storage_bytes_counts_both_arrays() {
        let m = TemplateMesh::icosahedron();
        assert_eq!(m.storage_bytes(), 12 * 12 + 20 * 12);
    }
}
