//! Secondary-ray effect objects (Fig. 23).
//!
//! The paper augments each scene with "a spherical glass object for
//! refractions and a rectangular mirror for reflections, both placed at
//! random locations". Rays hitting these objects spawn secondary rays that
//! then trace the Gaussian scene again — the workload GRTX-HW is shown to
//! accelerate independent of ray coherence.

use grtx_math::intersect::{ray_quad, ray_sphere};
use grtx_math::{Ray, Vec3};
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

/// Refractive index of the glass sphere (crown glass).
pub const GLASS_IOR: f32 = 1.5;

/// A refractive glass sphere.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct GlassSphere {
    /// Sphere center.
    pub center: Vec3,
    /// Sphere radius.
    pub radius: f32,
}

/// A perfectly reflective rectangular mirror.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct MirrorQuad {
    /// One corner of the rectangle.
    pub corner: Vec3,
    /// First edge vector.
    pub edge_u: Vec3,
    /// Second edge vector.
    pub edge_v: Vec3,
}

/// What a primary ray hit among the effect objects.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum EffectHit {
    /// Hit the glass sphere at distance `t`; the secondary ray is the
    /// refracted continuation.
    Glass {
        /// Hit distance.
        t: f32,
        /// The refracted (or totally internally reflected) secondary ray.
        secondary: Ray,
    },
    /// Hit the mirror at distance `t`; the secondary ray is the
    /// reflection.
    Mirror {
        /// Hit distance.
        t: f32,
        /// The reflected secondary ray.
        secondary: Ray,
    },
}

impl EffectHit {
    /// Hit distance of either variant.
    pub fn t(&self) -> f32 {
        match self {
            EffectHit::Glass { t, .. } | EffectHit::Mirror { t, .. } => *t,
        }
    }

    /// The spawned secondary ray.
    pub fn secondary(&self) -> Ray {
        match self {
            EffectHit::Glass { secondary, .. } | EffectHit::Mirror { secondary, .. } => *secondary,
        }
    }
}

/// The pair of effect objects added to a scene for Fig. 23.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct EffectObjects {
    /// Refracting sphere.
    pub glass: GlassSphere,
    /// Reflecting rectangle.
    pub mirror: MirrorQuad,
}

impl EffectObjects {
    /// Places the objects pseudo-randomly inside a scene of the given
    /// half-extent, deterministically from `seed` (mirroring the paper's
    /// "random locations").
    pub fn place_in(half_extent: Vec3, seed: u64) -> Self {
        let mut rng = SmallRng::seed_from_u64(seed);
        let scale = half_extent.max_element();
        let glass = GlassSphere {
            center: Vec3::new(
                rng.gen_range(-0.4..0.4) * half_extent.x,
                rng.gen_range(-0.2..0.3) * half_extent.y,
                rng.gen_range(-0.4..0.4) * half_extent.z,
            ),
            radius: scale * rng.gen_range(0.06..0.12),
        };
        let corner = Vec3::new(
            rng.gen_range(-0.5..0.5) * half_extent.x,
            rng.gen_range(-0.4..0.1) * half_extent.y,
            rng.gen_range(-0.5..0.5) * half_extent.z,
        );
        let w = scale * rng.gen_range(0.2..0.4);
        let h = scale * rng.gen_range(0.15..0.3);
        // Mirror stands vertically with a random yaw.
        let yaw: f32 = rng.gen_range(0.0..std::f32::consts::TAU);
        let edge_u = Vec3::new(yaw.cos(), 0.0, yaw.sin()) * w;
        let edge_v = Vec3::new(0.0, 1.0, 0.0) * h;
        Self {
            glass,
            mirror: MirrorQuad {
                corner,
                edge_u,
                edge_v,
            },
        }
    }

    /// Tests a ray against both objects, returning the nearest hit and its
    /// secondary ray.
    pub fn intersect(&self, ray: &Ray) -> Option<EffectHit> {
        let glass_hit = ray_sphere(ray, self.glass.center, self.glass.radius)
            .filter(|h| h.t_enter > 1e-4)
            .map(|h| {
                let p = ray.at(h.t_enter);
                let n = (p - self.glass.center).normalized();
                let secondary = refract_or_reflect(ray.direction, n, 1.0 / GLASS_IOR, p);
                EffectHit::Glass {
                    t: h.t_enter,
                    secondary,
                }
            });
        let mirror_hit = ray_quad(
            ray,
            self.mirror.corner,
            self.mirror.edge_u,
            self.mirror.edge_v,
        )
        .filter(|&t| t > 1e-4)
        .map(|t| {
            let p = ray.at(t);
            let n = self.mirror.edge_u.cross(self.mirror.edge_v).normalized();
            let d = reflect(ray.direction, n);
            EffectHit::Mirror {
                t,
                secondary: Ray::new(p + d * 1e-3, d),
            }
        });
        match (glass_hit, mirror_hit) {
            (Some(g), Some(m)) => Some(if g.t() <= m.t() { g } else { m }),
            (hit, None) | (None, hit) => hit,
        }
    }
}

/// Mirror reflection of `d` about normal `n`.
pub fn reflect(d: Vec3, n: Vec3) -> Vec3 {
    d - n * (2.0 * d.dot(n))
}

/// Snell refraction of direction `d` at normal `n` with relative index
/// `eta`; falls back to reflection on total internal reflection.
fn refract_or_reflect(d: Vec3, n: Vec3, eta: f32, p: Vec3) -> Ray {
    let n = if d.dot(n) > 0.0 { -n } else { n };
    let cos_i = -d.dot(n);
    let sin2_t = eta * eta * (1.0 - cos_i * cos_i);
    let dir = if sin2_t > 1.0 {
        reflect(d, n)
    } else {
        (d * eta + n * (eta * cos_i - (1.0 - sin2_t).sqrt())).normalized()
    };
    Ray::new(p + dir * 1e-3, dir)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn placement_is_deterministic() {
        let a = EffectObjects::place_in(Vec3::splat(10.0), 5);
        let b = EffectObjects::place_in(Vec3::splat(10.0), 5);
        assert_eq!(a, b);
    }

    #[test]
    fn reflect_preserves_length_and_flips_normal_component() {
        let d = Vec3::new(1.0, -1.0, 0.0).normalized();
        let r = reflect(d, Vec3::Y);
        assert!((r.length() - 1.0).abs() < 1e-6);
        assert!((r.y - (-d.y)).abs() < 1e-6);
        assert!((r.x - d.x).abs() < 1e-6);
    }

    #[test]
    fn mirror_hit_produces_reflected_secondary() {
        let objects = EffectObjects {
            glass: GlassSphere {
                center: Vec3::new(100.0, 0.0, 0.0),
                radius: 0.1,
            },
            mirror: MirrorQuad {
                corner: Vec3::new(-1.0, -1.0, 0.0),
                edge_u: Vec3::new(2.0, 0.0, 0.0),
                edge_v: Vec3::new(0.0, 2.0, 0.0),
            },
        };
        let ray = Ray::new(Vec3::new(0.0, 0.0, -3.0), Vec3::Z);
        let hit = objects.intersect(&ray).expect("mirror hit");
        match hit {
            EffectHit::Mirror { t, secondary } => {
                assert!((t - 3.0).abs() < 1e-5);
                assert!((secondary.direction - (-Vec3::Z)).length() < 1e-5);
            }
            other => panic!("expected mirror hit, got {other:?}"),
        }
    }

    #[test]
    fn glass_hit_bends_ray_towards_normal() {
        let objects = EffectObjects {
            glass: GlassSphere {
                center: Vec3::ZERO,
                radius: 1.0,
            },
            mirror: MirrorQuad {
                corner: Vec3::new(100.0, 0.0, 0.0),
                edge_u: Vec3::X,
                edge_v: Vec3::Y,
            },
        };
        // Oblique incidence.
        let dir = Vec3::new(0.3, 0.0, 1.0).normalized();
        let ray = Ray::new(Vec3::new(-0.3, 0.0, -3.0), dir);
        let hit = objects.intersect(&ray).expect("glass hit");
        let secondary = hit.secondary();
        // Entering denser medium: the refracted ray aligns closer to the
        // inward surface normal than the incident ray did.
        let p = ray.at(hit.t());
        let n_in = -(p - Vec3::ZERO).normalized();
        assert!(secondary.direction.dot(n_in) > dir.dot(n_in) - 1e-5);
    }

    #[test]
    fn nearest_object_wins() {
        let objects = EffectObjects {
            glass: GlassSphere {
                center: Vec3::new(0.0, 0.0, 2.0),
                radius: 0.5,
            },
            mirror: MirrorQuad {
                corner: Vec3::new(-1.0, -1.0, 5.0),
                edge_u: Vec3::new(2.0, 0.0, 0.0),
                edge_v: Vec3::new(0.0, 2.0, 0.0),
            },
        };
        let ray = Ray::new(Vec3::new(0.0, 0.0, -1.0), Vec3::Z);
        match objects.intersect(&ray).expect("hit") {
            EffectHit::Glass { .. } => {}
            other => panic!("glass is nearer, got {other:?}"),
        }
    }
}
