//! Synthetic scene generation from [`SceneProfile`]s.
//!
//! Sampling is fully deterministic given `(profile, seed)` so every
//! experiment, test, and bench sees the same scene.

use crate::gaussian::{Gaussian, GaussianScene};
use crate::profile::SceneProfile;
use crate::sh::{ShCoeffs, MAX_COEFFS};
use grtx_math::{Quat, Vec3};
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

/// Generates a deterministic synthetic scene from a profile.
///
/// The scene contains three Gaussian populations:
///
/// 1. **clustered** — `cluster_fraction` of the budget in
///    `cluster_count` dense isotropic blobs (Bonsai-style foliage);
/// 2. **large** — `large_fraction` as greatly enlarged, highly
///    anisotropic Gaussians (Drjohnson/Playroom-style walls);
/// 3. **background** — the rest spread uniformly through the extent
///    (Train/Truck-style streetscape).
pub fn generate_scene(profile: SceneProfile, seed: u64) -> GaussianScene {
    let mut rng = SmallRng::seed_from_u64(seed ^ scene_salt(&profile));
    let n = profile.gaussian_budget;
    let n_clustered = ((n as f32) * profile.cluster_fraction) as usize;
    let n_large = ((n as f32) * profile.large_fraction) as usize;
    let n_uniform = n.saturating_sub(n_clustered + n_large);

    let half = profile.half_extent;
    let cluster_radius = half.max_element() * profile.cluster_radius_frac;

    // Cluster centers concentrate in the camera-facing half of the scene so
    // rays actually traverse the dense regions (as they do in Bonsai).
    let cluster_centers: Vec<Vec3> = (0..profile.cluster_count.max(1))
        .map(|_| {
            Vec3::new(
                rng.gen_range(-0.7..0.7) * half.x,
                rng.gen_range(-0.6..0.4) * half.y,
                rng.gen_range(-0.7..0.7) * half.z,
            )
        })
        .collect();

    let mut gaussians = Vec::with_capacity(n);

    for i in 0..n_clustered {
        let center = cluster_centers[i % cluster_centers.len()];
        let mean = center + sample_gaussian_vec(&mut rng) * cluster_radius;
        // Cluster members are smaller than background Gaussians.
        let sigma = sample_log_normal(
            &mut rng,
            profile.sigma_log_mean - 0.4,
            profile.sigma_log_std,
        );
        gaussians.push(sample_gaussian(&mut rng, &profile, mean, sigma, 1.0));
    }

    for _ in 0..n_large {
        let mean = sample_uniform_in(&mut rng, half);
        let sigma = sample_log_normal(&mut rng, profile.sigma_log_mean, profile.sigma_log_std)
            * profile.large_sigma_mult;
        // Walls are flattened: exaggerate anisotropy.
        gaussians.push(sample_gaussian(&mut rng, &profile, mean, sigma, 2.0));
    }

    for _ in 0..n_uniform {
        let mean = sample_uniform_in(&mut rng, half);
        let sigma = sample_log_normal(&mut rng, profile.sigma_log_mean, profile.sigma_log_std);
        gaussians.push(sample_gaussian(&mut rng, &profile, mean, sigma, 1.0));
    }

    GaussianScene::new(gaussians)
}

/// Mixes profile identity into the seed so different scenes generated with
/// the same user seed do not correlate.
fn scene_salt(profile: &SceneProfile) -> u64 {
    let mut h = 0xcbf2_9ce4_8422_2325u64;
    for b in profile.kind.name().bytes() {
        h ^= b as u64;
        h = h.wrapping_mul(0x1000_0000_01b3);
    }
    h ^= profile.gaussian_budget as u64;
    h
}

fn sample_uniform_in(rng: &mut SmallRng, half: Vec3) -> Vec3 {
    Vec3::new(
        rng.gen_range(-1.0..1.0) * half.x,
        rng.gen_range(-1.0..1.0) * half.y,
        rng.gen_range(-1.0..1.0) * half.z,
    )
}

/// Standard normal 3-vector via Box–Muller.
fn sample_gaussian_vec(rng: &mut SmallRng) -> Vec3 {
    Vec3::new(
        sample_standard_normal(rng),
        sample_standard_normal(rng),
        sample_standard_normal(rng),
    )
}

fn sample_standard_normal(rng: &mut SmallRng) -> f32 {
    let u1: f32 = rng.gen_range(f32::EPSILON..1.0);
    let u2: f32 = rng.gen_range(0.0..std::f32::consts::TAU);
    (-2.0 * u1.ln()).sqrt() * u2.cos()
}

fn sample_log_normal(rng: &mut SmallRng, log_mean: f32, log_std: f32) -> f32 {
    (log_mean + log_std * sample_standard_normal(rng)).exp()
}

fn sample_gaussian(
    rng: &mut SmallRng,
    profile: &SceneProfile,
    mean: Vec3,
    base_sigma: f32,
    anisotropy_boost: f32,
) -> Gaussian {
    let log_std = profile.anisotropy_log_std * anisotropy_boost;
    let scale = Vec3::new(
        base_sigma * (log_std * sample_standard_normal(rng)).exp(),
        base_sigma * (log_std * sample_standard_normal(rng)).exp(),
        base_sigma * (log_std * sample_standard_normal(rng)).exp(),
    );
    let axis = sample_gaussian_vec(rng);
    let rotation = if axis.length() > 1e-4 {
        Quat::from_axis_angle(axis, rng.gen_range(0.0..std::f32::consts::TAU))
    } else {
        Quat::IDENTITY
    };
    // Opacity distribution: trained scenes are bimodal (many near-opaque,
    // a tail of faint Gaussians). A squared uniform gives a similar skew.
    let u: f32 = rng.gen_range(0.0..1.0);
    let opacity = (0.05 + 0.95 * u * u).min(0.999);

    let sh = sample_sh(rng);

    Gaussian {
        mean,
        rotation,
        scale: clamp_scale(scale),
        opacity,
        sh,
    }
}

/// Degree-1 SH with a random base color and mild view dependence —
/// enough to exercise the per-ray SH evaluation path without the storage
/// cost of degree-3 coefficients for every synthetic Gaussian.
fn sample_sh(rng: &mut SmallRng) -> ShCoeffs {
    let base = Vec3::new(
        rng.gen_range(0.0..1.0),
        rng.gen_range(0.0..1.0),
        rng.gen_range(0.0..1.0),
    );
    let mut coeffs = [Vec3::ZERO; MAX_COEFFS];
    coeffs[0] = (base - Vec3::splat(0.5)) / 0.282_094_79;
    for c in coeffs.iter_mut().take(4).skip(1) {
        *c = Vec3::new(
            rng.gen_range(-0.2..0.2),
            rng.gen_range(-0.2..0.2),
            rng.gen_range(-0.2..0.2),
        );
    }
    ShCoeffs::new(1, coeffs)
}

/// Keeps scales within a sane dynamic range so instance transforms remain
/// invertible in f32.
fn clamp_scale(scale: Vec3) -> Vec3 {
    Vec3::new(
        scale.x.clamp(1e-4, 1e3),
        scale.y.clamp(1e-4, 1e3),
        scale.z.clamp(1e-4, 1e3),
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::profile::SceneKind;

    #[test]
    fn generation_is_deterministic() {
        let p = SceneKind::Train.profile().with_gaussian_budget(300);
        let a = generate_scene(p.clone(), 7);
        let b = generate_scene(p, 7);
        assert_eq!(a.gaussians(), b.gaussians());
    }

    #[test]
    fn different_seeds_differ() {
        let p = SceneKind::Train.profile().with_gaussian_budget(300);
        let a = generate_scene(p.clone(), 1);
        let b = generate_scene(p, 2);
        assert_ne!(a.gaussians()[0].mean, b.gaussians()[0].mean);
    }

    #[test]
    fn budget_is_respected() {
        for kind in SceneKind::ALL {
            let scene = generate_scene(kind.profile().with_gaussian_budget(500), 3);
            assert_eq!(scene.len(), 500, "{kind}");
        }
    }

    #[test]
    fn all_gaussians_valid() {
        let scene = generate_scene(
            SceneKind::Drjohnson.profile().with_gaussian_budget(2000),
            11,
        );
        assert_eq!(
            scene.len(),
            2000,
            "no Gaussian should be filtered as invalid"
        );
    }

    #[test]
    fn means_stay_near_extent() {
        let p = SceneKind::Room.profile().with_gaussian_budget(1000);
        let half = p.half_extent;
        let scene = generate_scene(p, 5);
        // Clustered points can leak slightly outside via the normal tail;
        // allow 2 cluster radii of slack.
        let slack = half.max_element() * 0.5;
        for g in scene.gaussians() {
            assert!(g.mean.x.abs() <= half.x + slack);
            assert!(g.mean.y.abs() <= half.y + slack);
            assert!(g.mean.z.abs() <= half.z + slack);
        }
    }

    #[test]
    fn drjohnson_has_larger_tail_than_train() {
        let budget = 4000;
        let dj = generate_scene(
            SceneKind::Drjohnson.profile().with_gaussian_budget(budget),
            9,
        );
        let train = generate_scene(SceneKind::Train.profile().with_gaussian_budget(budget), 9);
        let p99 = |s: &GaussianScene| {
            let mut sizes: Vec<f32> = s
                .gaussians()
                .iter()
                .map(|g| g.scale.max_element())
                .collect();
            sizes.sort_by(f32::total_cmp);
            sizes[(sizes.len() * 99) / 100]
        };
        assert!(
            p99(&dj) > p99(&train),
            "Drjohnson should have a heavier large-Gaussian tail"
        );
    }

    #[test]
    fn bonsai_is_denser_than_truck() {
        // Median nearest-cluster concentration proxy: mean pairwise
        // distance of a sample should be smaller for Bonsai relative to
        // its extent.
        let budget = 1500;
        let bonsai = generate_scene(SceneKind::Bonsai.profile().with_gaussian_budget(budget), 4);
        let truck = generate_scene(SceneKind::Truck.profile().with_gaussian_budget(budget), 4);
        let spread = |s: &GaussianScene, half: Vec3| {
            // Sample evenly across the scene: generation order puts all
            // clustered Gaussians first, so a prefix sample would compare
            // cluster layouts instead of whole-scene concentration.
            let m = s.gaussians().len().min(200);
            let stride = (s.gaussians().len() / m).max(1);
            let sample: Vec<Vec3> = s
                .gaussians()
                .iter()
                .step_by(stride)
                .take(m)
                .map(|g| g.mean)
                .collect();
            let mut total = 0.0;
            for i in 0..sample.len() {
                for j in (i + 1)..sample.len() {
                    total += (sample[i] - sample[j]).length();
                }
            }
            total / ((sample.len() * (sample.len() - 1) / 2) as f32) / half.max_element()
        };
        let b = spread(&bonsai, SceneKind::Bonsai.profile().half_extent);
        let t = spread(&truck, SceneKind::Truck.profile().half_extent);
        assert!(
            b < t,
            "Bonsai relative spread {b} should be below Truck {t}"
        );
    }
}
