//! Camera models and ray generation.
//!
//! Rasterization struggles with "highly distorted cameras" (paper
//! Section I); ray tracing handles them natively because each pixel just
//! gets its own ray. We provide the standard pinhole model plus an
//! equidistant fisheye model to exercise that motivation.

use crate::profile::SceneProfile;
use grtx_math::{Mat3, Mat4, Ray, Vec3};

/// Projection model for ray generation.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum CameraModel {
    /// Classic perspective projection with a vertical field of view in
    /// radians.
    Pinhole {
        /// Vertical field of view (radians).
        fov_y: f32,
    },
    /// Equidistant fisheye: the image-plane radius is proportional to the
    /// ray angle from the optical axis, up to `max_theta` radians.
    Fisheye {
        /// Maximum half-angle covered by the image circle (radians).
        max_theta: f32,
    },
}

/// A positioned camera that generates primary rays.
#[derive(Debug, Clone, PartialEq)]
pub struct Camera {
    /// Image width in pixels.
    pub width: u32,
    /// Image height in pixels.
    pub height: u32,
    model: CameraModel,
    eye: Vec3,
    /// Camera-to-world rotation columns: right, up, forward.
    basis: Mat3,
}

impl Camera {
    /// Creates a camera at `eye` looking at `target`.
    pub fn look_at(
        width: u32,
        height: u32,
        model: CameraModel,
        eye: Vec3,
        target: Vec3,
        up: Vec3,
    ) -> Self {
        let view = Mat4::look_at(eye, target, up);
        // look_at returns world-to-camera; camera-to-world rotation is the
        // transpose of its linear part.
        let w2c = view.linear();
        let c2w = w2c.transpose();
        Self {
            width,
            height,
            model,
            eye,
            basis: c2w,
        }
    }

    /// Builds the evaluation camera a scene profile prescribes
    /// (pinhole, Table II resolution/FoV).
    pub fn for_profile(profile: &SceneProfile) -> Self {
        Self::look_at(
            profile.resolution.0,
            profile.resolution.1,
            CameraModel::Pinhole {
                fov_y: profile.fov_y_deg.to_radians(),
            },
            profile.camera_eye(),
            Vec3::ZERO,
            Vec3::Y,
        )
    }

    /// Camera position.
    pub fn eye(&self) -> Vec3 {
        self.eye
    }

    /// Cameras for a deterministic `views`-view orbit of this camera:
    /// all views share this camera's resolution, model, orbit radius,
    /// and height, evenly spaced around the vertical axis starting
    /// `phase` radians past this camera's azimuth, all looking at the
    /// scene origin. At `phase = 0`, view 0 is this camera itself.
    ///
    /// The single source of orbit-rig math: `SceneSetup::orbit_cameras`
    /// sweeps (`phase = 0`) and the frame pipeline's `OrbitSource`
    /// (`phase = step × frame`) both build their views here, which is
    /// what makes an orbit stream's frame 0 bit-identical to the
    /// batched sweep.
    pub fn orbit(&self, views: usize, phase: f32) -> Vec<Camera> {
        let radius = (self.eye.x * self.eye.x + self.eye.z * self.eye.z).sqrt();
        let base = self.eye.z.atan2(self.eye.x);
        (0..views)
            .map(|v| {
                if v == 0 && phase == 0.0 {
                    return self.clone();
                }
                let angle = base + phase + std::f32::consts::TAU * v as f32 / views.max(1) as f32;
                let orbit_eye = Vec3::new(radius * angle.cos(), self.eye.y, radius * angle.sin());
                Camera::look_at(
                    self.width,
                    self.height,
                    self.model,
                    orbit_eye,
                    Vec3::ZERO,
                    Vec3::Y,
                )
            })
            .collect()
    }

    /// Camera-to-world rotation (columns: right, up, backward-facing
    /// forward); the rasterizer needs the world-to-camera transpose.
    pub fn basis(&self) -> Mat3 {
        self.basis
    }

    /// Camera model.
    pub fn model(&self) -> CameraModel {
        self.model
    }

    /// Total pixel (ray) count.
    pub fn pixel_count(&self) -> usize {
        self.width as usize * self.height as usize
    }

    /// Row-major linear index of pixel `(px, py)`, widened to `usize`
    /// before multiplying — `u32` arithmetic wraps once `py * width`
    /// passes `u32::MAX` (images of 65536 × 65536 and beyond).
    ///
    /// # Panics
    ///
    /// Panics if the pixel is out of bounds.
    pub fn pixel_index(&self, px: u32, py: u32) -> usize {
        assert!(px < self.width && py < self.height, "pixel out of bounds");
        py as usize * self.width as usize + px as usize
    }

    /// Generates the primary ray through pixel `(px, py)` (pixel centers).
    ///
    /// Returns `None` for fisheye pixels outside the image circle.
    ///
    /// # Panics
    ///
    /// Panics if the pixel is out of bounds.
    pub fn primary_ray(&self, px: u32, py: u32) -> Option<Ray> {
        assert!(px < self.width && py < self.height, "pixel out of bounds");
        // NDC in [-1, 1], y up.
        let ndc_x = ((px as f32 + 0.5) / self.width as f32) * 2.0 - 1.0;
        let ndc_y = 1.0 - ((py as f32 + 0.5) / self.height as f32) * 2.0;
        let aspect = self.width as f32 / self.height as f32;

        let dir_camera = match self.model {
            CameraModel::Pinhole { fov_y } => {
                let tan_half = (fov_y * 0.5).tan();
                Vec3::new(ndc_x * tan_half * aspect, ndc_y * tan_half, -1.0)
            }
            CameraModel::Fisheye { max_theta } => {
                let r = (ndc_x * ndc_x * aspect * aspect + ndc_y * ndc_y).sqrt();
                if r > 1.0 {
                    return None;
                }
                let theta = r * max_theta;
                let phi = (ndc_y).atan2(ndc_x * aspect);
                let (st, ct) = theta.sin_cos();
                Vec3::new(st * phi.cos(), st * phi.sin(), -ct)
            }
        };
        let world_dir = self.basis.mul_vec3(dir_camera).normalized();
        Some(Ray::new(self.eye, world_dir))
    }

    /// Iterator over `(pixel_index, ray)` in row-major order, skipping
    /// fisheye pixels outside the image circle.
    pub fn rays(&self) -> impl Iterator<Item = (usize, Ray)> + '_ {
        (0..self.height).flat_map(move |py| {
            (0..self.width).filter_map(move |px| {
                self.primary_ray(px, py)
                    .map(|ray| (self.pixel_index(px, py), ray))
            })
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn test_camera(model: CameraModel) -> Camera {
        Camera::look_at(
            64,
            48,
            model,
            Vec3::new(0.0, 0.0, 10.0),
            Vec3::ZERO,
            Vec3::Y,
        )
    }

    #[test]
    fn center_pixel_looks_at_target() {
        let cam = test_camera(CameraModel::Pinhole { fov_y: 0.8 });
        let ray = cam.primary_ray(32, 24).unwrap();
        // Center ray should point from eye towards the origin.
        let expected = (Vec3::ZERO - cam.eye()).normalized();
        assert!((ray.direction - expected).length() < 0.05);
    }

    #[test]
    fn rays_start_at_eye() {
        let cam = test_camera(CameraModel::Pinhole { fov_y: 0.8 });
        for (_, ray) in cam.rays().take(10) {
            assert_eq!(ray.origin, cam.eye());
        }
    }

    #[test]
    fn pinhole_covers_every_pixel() {
        let cam = test_camera(CameraModel::Pinhole { fov_y: 0.8 });
        assert_eq!(cam.rays().count(), cam.pixel_count());
    }

    #[test]
    fn fisheye_drops_corner_pixels() {
        let cam = test_camera(CameraModel::Fisheye { max_theta: 1.5 });
        assert!(
            cam.primary_ray(0, 0).is_none(),
            "corner outside image circle"
        );
        assert!(cam.primary_ray(32, 24).is_some(), "center inside");
        assert!(cam.rays().count() < cam.pixel_count());
    }

    #[test]
    fn wider_fov_spreads_rays() {
        let narrow = test_camera(CameraModel::Pinhole { fov_y: 0.3 });
        let wide = test_camera(CameraModel::Pinhole { fov_y: 1.2 });
        let spread = |cam: &Camera| {
            let a = cam.primary_ray(0, 24).unwrap().direction;
            let b = cam.primary_ray(63, 24).unwrap().direction;
            a.dot(b)
        };
        // Smaller dot product = wider angular spread.
        assert!(spread(&wide) < spread(&narrow));
    }

    #[test]
    fn directions_are_normalized() {
        let cam = test_camera(CameraModel::Fisheye { max_theta: 1.2 });
        for (_, ray) in cam.rays().take(100) {
            assert!((ray.direction.length() - 1.0).abs() < 1e-5);
        }
    }

    /// Regression: `rays()` used to compute `(py * self.width + px) as
    /// usize` in `u32`, wrapping — and panicking under debug overflow
    /// checks — once `py * width` passes `u32::MAX`. Camera construction
    /// allocates nothing per pixel, so gigapixel dimensions are cheap to
    /// index (no render).
    #[test]
    fn pixel_index_survives_products_above_u32_max() {
        let cam = Camera::look_at(
            65_536,
            65_537,
            CameraModel::Pinhole { fov_y: 0.8 },
            Vec3::new(0.0, 0.0, 10.0),
            Vec3::ZERO,
            Vec3::Y,
        );
        // py * width alone is 2^32: already past u32.
        assert_eq!(cam.pixel_index(0, 65_536), 4_294_967_296usize);
        let last = cam.pixel_index(cam.width - 1, cam.height - 1);
        assert_eq!(last, cam.pixel_count() - 1);
        assert!(cam.pixel_count() > u32::MAX as usize);
        // Ray generation at the far corner still works.
        assert!(cam.primary_ray(cam.width - 1, cam.height - 1).is_some());
    }

    #[test]
    fn profile_camera_uses_table2_resolution() {
        let p = crate::profile::SceneKind::Bonsai.profile();
        let cam = Camera::for_profile(&p);
        assert_eq!((cam.width, cam.height), (1559, 1039));
    }
}
