use grtx_scene::TemplateMesh;

#[test]
fn template_meshes_wind_ccw_outward() {
    for (name, m) in [
        ("ico", TemplateMesh::icosahedron()),
        ("80", TemplateMesh::icosphere_80()),
    ] {
        for i in 0..m.triangle_count() {
            let [a, b, c] = m.triangle_vertices(i);
            let n = (b - a).cross(c - a);
            let centroid = (a + b + c) / 3.0;
            assert!(n.dot(centroid) > 0.0, "{name} triangle {i} wound inward");
        }
    }
}
