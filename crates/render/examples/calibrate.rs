use grtx_bvh::{AccelStruct, BoundingPrimitive, LayoutConfig};
use grtx_render::renderer::{render_simulated, RenderConfig};
use grtx_render::tracer::{TraceMode, TraceParams};
use grtx_scene::{synth::generate_scene, Camera, SceneKind};
use grtx_sim::GpuConfig;
use std::time::Instant;

fn main() {
    let divisor: usize = std::env::args()
        .nth(1)
        .and_then(|s| s.parse().ok())
        .unwrap_or(20);
    let kind = SceneKind::Train;
    let profile = kind.profile();
    let budget = profile.full_gaussian_count / divisor;
    let profile = profile
        .with_gaussian_budget(budget)
        .with_resolution(128, 128);
    let t0 = Instant::now();
    let scene = generate_scene(profile.clone(), 42);
    println!("scene gen: {:?} ({} gaussians)", t0.elapsed(), scene.len());

    let camera = Camera::for_profile(&profile);
    for (name, prim, two, ckpt) in [
        ("baseline mono20", BoundingPrimitive::Mesh20, false, false),
        (
            "GRTX-HW mono20+ckpt",
            BoundingPrimitive::Mesh20,
            false,
            true,
        ),
        ("GRTX-SW tlas20", BoundingPrimitive::Mesh20, true, false),
        ("GRTX tlas20+ckpt", BoundingPrimitive::Mesh20, true, true),
        ("TLAS+sphere", BoundingPrimitive::UnitSphere, true, false),
    ] {
        let t0 = Instant::now();
        let accel = AccelStruct::build(&scene, prim, two, &LayoutConfig::default());
        println!(
            "{name}: build {:?}, size {} MB, height {}",
            t0.elapsed(),
            accel.size_report().total_bytes / (1 << 20),
            accel.height()
        );
        let t0 = Instant::now();
        let mode = if ckpt {
            TraceMode::MultiRoundCheckpoint
        } else {
            TraceMode::MultiRoundRestart
        };
        let cfg = RenderConfig {
            params: TraceParams {
                k: 16,
                mode,
                ..Default::default()
            },
            ..Default::default()
        };
        let report = render_simulated(
            &accel,
            &scene,
            &camera,
            None,
            &cfg,
            GpuConfig::default().with_cache_scale(divisor),
        );
        println!("  render: wall {:?}, sim {:.2} ms, fetches {}, rounds/ray {:.2}, blended/ray {:.1}, l1 {:.2}, lat {:.0}, l2 {}, uniq-frac {:.2}",
                 t0.elapsed(), report.time_ms, report.stats.node_fetches_total,
                 report.stats.rounds as f64 / report.stats.rays as f64,
                 report.stats.blended_gaussians as f64 / report.stats.rays as f64,
                 report.l1_hit_rate, report.avg_fetch_latency, report.l2_accesses,
                 report.stats.node_fetches_unique as f64 / report.stats.node_fetches_total as f64);
    }
}
