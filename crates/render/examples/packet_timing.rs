//! Quick wall-clock A/B for the ray-packet path: renders one scene with
//! `ray_packets` on and off and prints both times, plus the packet
//! cache's hit/miss/eviction counters (via telemetry) for the on-path.
//! Not a committed baseline — run ad hoc when touching the packet
//! machinery:
//!
//! ```text
//! cargo run --release -p grtx-render --example packet_timing
//! ```

use std::time::Instant;

use grtx_bvh::{AccelStruct, BoundingPrimitive, LayoutConfig};
use grtx_render::engine::RenderEngine;
use grtx_render::renderer::RenderConfig;
use grtx_scene::{synth::generate_scene, Camera, CameraModel, SceneKind};
use grtx_sim::GpuConfig;
use grtx_telemetry::Telemetry;

fn main() {
    let scene = generate_scene(SceneKind::Train.profile().with_gaussian_budget(40_000), 42);
    let accel = AccelStruct::build(
        &scene,
        BoundingPrimitive::UnitSphere,
        true,
        &LayoutConfig::default(),
    );
    let camera = Camera::look_at(
        128,
        128,
        CameraModel::Pinhole { fov_y: 0.9 },
        SceneKind::Train.profile().camera_eye(),
        grtx_math::Vec3::ZERO,
        grtx_math::Vec3::Y,
    );
    for (label, packets) in [("packets on ", true), ("packets off", false)] {
        let config = RenderConfig {
            ray_packets: packets,
            ..Default::default()
        };
        // Warm-up + best-of-3 to dodge scheduler noise. Telemetry
        // counters accumulate across repeats, so the cache report uses a
        // fresh handle on the last (already warm) run only.
        let mut best = f64::INFINITY;
        let mut telemetry = Telemetry::disabled();
        for repeat in 0..4 {
            if repeat == 3 {
                telemetry = Telemetry::enabled();
            }
            let start = Instant::now();
            let report = RenderEngine::new(GpuConfig::default())
                .with_threads(4)
                .with_telemetry(telemetry.clone())
                .render(&accel, &scene, &camera, None, &config);
            let secs = start.elapsed().as_secs_f64();
            best = best.min(secs);
            std::hint::black_box(report.cycles);
        }
        println!("{label}: best {best:.3} s");
        if let Some(report) = telemetry.report() {
            for counter in &report.counters {
                println!("  {:<22} {:>12}", counter.name, counter.value);
            }
            let value = |name: &str| {
                report
                    .counters
                    .iter()
                    .find(|c| c.name == name)
                    .map_or(0, |c| c.value)
            };
            let (calls, hits) = (value("packet.kernel_calls"), value("packet.cache_hits"));
            if calls + hits > 0 {
                println!(
                    "  {:<22} {:>11.1}%",
                    "cache hit rate",
                    100.0 * hits as f64 / (calls + hits) as f64
                );
            }
        }
    }
}
