//! The parallel render engine: per-SM fragment simulation fanned out
//! over host threads, for one camera or a whole batch of them.
//!
//! # Execution model
//!
//! A simulated render decomposes into one *fragment* per simulated SM:
//! the warps assigned to that SM (round-robin, as the raygen tile
//! scheduler distributes them), simulated against that SM's private L1
//! and its address-interleaved slice of the L2 ([`GpuConfig::sm_slice`]).
//! Because a fragment never observes another SM's memory accesses, each
//! one is a closed deterministic computation — so fragments can execute
//! on any number of worker threads in any order and still produce the
//! same per-SM cycle counts, statistics, and blend states.
//!
//! # Batched launches
//!
//! A batch of cameras over one scene is a sequence of raygen *launches*
//! against the same acceleration structure. Each launch restarts the
//! warp round-robin at SM 0 and starts from cold per-launch SM state, so
//! the fragment unit generalizes to **fragments = SM × camera**: warp
//! `w` of camera `c` runs on [`WarpSchedule::sm_of_launch_warp`]`(w)`
//! inside fragment `(c, s)`, and every `(camera, SM)` fragment is still
//! a closed deterministic computation. [`RenderEngine::render_batch`]
//! fans all `cameras × SMs` fragments over one worker pool — amortizing
//! thread spin-up and sharing the structure — and merges them per
//! camera in fixed `(camera, SM)` order, so each camera's report is
//! **bit-identical** to a standalone [`RenderEngine::render`] of that
//! camera. Single-camera `render` *is* the batch path at `N = 1`.
//!
//! After the fan-out, per-fragment state is merged in fixed SM order
//! (miden-style fragment replay): [`grtx_sim::SimStats`] counters sum (peaks take
//! the max), memory-traffic counters sum with the touched-line footprint
//! unioned, per-warp `(compute, stall)` times land in a launch-indexed
//! vector that the [`WarpSchedule`] makespan model reduces per camera
//! (batch-wide flat storage addresses warps with
//! [`WarpSchedule::launch_warp_bases`]), and blend states scatter back to
//! their pixels. The result is **bit-identical** for `threads = 1` and
//! `threads = N` — a property the test-suite enforces on images, cycles,
//! and every counter.
//!
//! # Stage-level building blocks
//!
//! External drivers (the `grtx-pipeline` frame-stream pipeline) need the
//! same three phases as individually schedulable units of work, so the
//! engine exposes them: [`RenderEngine::plan_launch`] (pure, per camera),
//! [`RenderEngine::simulate_fragment`] (one closed `(camera, SM)`
//! fragment), and [`RenderEngine::merge_launch`] (fixed-SM-order merge of
//! one camera's fragments). Driving those three by hand — in any
//! interleaving across cameras, frames, or threads — produces reports
//! **bit-identical** to [`RenderEngine::render`], because `render_batch`
//! itself is nothing more than that plan → fragment → merge sequence.

use crate::blend::BlendState;
use crate::image::Image;
use crate::renderer::{shader_cycles, RenderConfig, RenderReport, SecondaryBreakdown};
use crate::tracer::{RayTracer, TraceParams};
use grtx_bvh::{AccelStruct, PacketCacheStats, RayPacket4};
use grtx_fault::GrtxError;
use grtx_math::Ray;
use grtx_prof::{FragmentProfile, FragmentRecorder, Profiler};
use grtx_scene::{Camera, EffectObjects, GaussianScene};
use grtx_sim::fasthash::FastMap;
use grtx_sim::{GpuConfig, GpuSim, RayTraceState, WarpSchedule};
use grtx_telemetry::Telemetry;
use std::cell::RefCell;
use std::collections::VecDeque;
use std::rc::Rc;

/// One traced job: pixel index, ray, scene cut-off.
struct Job {
    pixel: usize,
    ray: Ray,
    t_cut: f32,
}

/// One camera's planned raygen launch: its primary/secondary jobs and
/// warp counts, in the camera-local namespace (job and warp indices both
/// start at 0 for every launch).
///
/// Produced by [`RenderEngine::plan_launch`], consumed by
/// [`RenderEngine::simulate_fragment`] and
/// [`RenderEngine::merge_launch`]. Planning is pure and deterministic —
/// it depends only on the camera, the effect objects, and the warp size —
/// so a launch may be planned once and simulated any number of times.
pub struct CameraLaunch {
    primary_jobs: Vec<Job>,
    secondary_jobs: Vec<Job>,
    primary_warps: usize,
    secondary_warps: usize,
}

impl CameraLaunch {
    /// Partitions a camera's pixels into primary jobs (with effect
    /// cut-offs) and secondary jobs — serial and deterministic.
    fn plan(camera: &Camera, effects: Option<&EffectObjects>, warp_size: usize) -> Self {
        let mut primary_jobs: Vec<Job> = Vec::with_capacity(camera.pixel_count());
        let mut secondary_jobs: Vec<Job> = Vec::new();
        for (pixel, ray) in camera.rays() {
            let mut t_cut = f32::INFINITY;
            if let Some(objects) = effects {
                if let Some(hit) = objects.intersect(&ray) {
                    t_cut = hit.t();
                    secondary_jobs.push(Job {
                        pixel,
                        ray: hit.secondary(),
                        t_cut: f32::INFINITY,
                    });
                }
            }
            primary_jobs.push(Job { pixel, ray, t_cut });
        }
        let primary_warps = primary_jobs.len().div_ceil(warp_size);
        let secondary_warps = secondary_jobs.len().div_ceil(warp_size);
        Self {
            primary_jobs,
            secondary_jobs,
            primary_warps,
            secondary_warps,
        }
    }

    /// Warps this launch issues (primary + secondary).
    pub fn total_warps(&self) -> usize {
        self.primary_warps + self.secondary_warps
    }

    /// Traced jobs this launch issues (primary + secondary rays).
    pub fn job_count(&self) -> usize {
        self.primary_jobs.len() + self.secondary_jobs.len()
    }
}

/// Everything one `(camera, SM)` fragment produces; merged per camera
/// in SM order afterwards. Indices are camera-local.
///
/// Opaque to callers: produced by [`RenderEngine::simulate_fragment`],
/// consumed (in SM order) by [`RenderEngine::merge_launch`].
pub struct SmOutcome {
    /// The fragment's simulator (stats + memory counters).
    sim: GpuSim,
    /// `(launch-local warp index, (compute, stall))` for this SM's warps.
    warp_times: Vec<(usize, (u64, u64))>,
    /// `(launch-local job index, final blend state)` for this SM's rays.
    blends: Vec<(usize, BlendState)>,
    /// Packet node-test cache counters for this fragment's warps. Kept
    /// out of [`grtx_sim::SimStats`] on purpose: packets must leave the
    /// simulated statistics bit-identical, so their observability rides
    /// on the side and reaches the user only through telemetry counters.
    packet_stats: PacketCacheStats,
    /// The fragment's microarchitecture profile, recorded only when the
    /// engine's [`Profiler`] is enabled. Rides on the side exactly like
    /// `packet_stats` — never into `SimStats`/`RenderReport` — and is
    /// drained into the profiler sink at merge time.
    profile: Option<FragmentProfile>,
}

/// Whole-image renderer executing simulated SMs in parallel.
///
/// `threads = 0` (the default) uses every available core, capped at the
/// parallel work available (simulated SMs × cameras). Any thread count
/// produces bit-identical images, cycle totals, and statistics; threads
/// only change wall-clock time.
#[derive(Debug, Clone)]
pub struct RenderEngine {
    gpu: GpuConfig,
    threads: usize,
    telemetry: Telemetry,
    profiler: Profiler,
}

impl RenderEngine {
    /// Creates an engine for the given GPU configuration, using all
    /// available cores.
    pub fn new(gpu: GpuConfig) -> Self {
        Self {
            gpu,
            threads: 0,
            telemetry: Telemetry::disabled(),
            profiler: Profiler::disabled(),
        }
    }

    /// Sets the worker-thread count (`0` = all available cores). The
    /// count is capped at the fragment count (simulated SMs × cameras),
    /// the unit of parallel work.
    pub fn with_threads(mut self, threads: usize) -> Self {
        self.threads = threads;
        self
    }

    /// Attaches a telemetry handle: render workers record per-fragment
    /// spans and the merge publishes packet-cache counters. The default
    /// (disabled) handle records nothing and costs one branch per event.
    /// Telemetry never changes images, cycles, or statistics.
    pub fn with_telemetry(mut self, telemetry: Telemetry) -> Self {
        self.telemetry = telemetry;
        self
    }

    /// Attaches a simulated-cycle profiler: fragments record per-SM
    /// hardware counters, warp timelines, and per-round occupancy on the
    /// virtual clock, drained into the handle's sink at merge time. The
    /// default (disabled) handle records nothing, and every hook in the
    /// warp queue costs one `Option` branch. Profiling never changes
    /// images, cycles, or statistics.
    pub fn with_profiler(mut self, profiler: Profiler) -> Self {
        self.profiler = profiler;
        self
    }

    /// The GPU configuration this engine simulates.
    pub fn gpu(&self) -> &GpuConfig {
        &self.gpu
    }

    /// Worker threads a single-camera render will actually use.
    pub fn effective_threads(&self) -> usize {
        self.effective_threads_for(1)
    }

    /// Worker threads a `cameras`-view batch will actually use: the
    /// requested count capped at `SMs × cameras` fragments.
    pub fn effective_threads_for(&self, cameras: usize) -> usize {
        let hw = std::thread::available_parallelism().map_or(1, |n| n.get());
        let requested = if self.threads == 0 { hw } else { self.threads };
        requested.clamp(1, self.gpu.num_sms.max(1) * cameras.max(1))
    }

    /// Renders a camera view through the simulated GPU.
    ///
    /// With `effects`, rays hitting the glass sphere / mirror spawn
    /// secondary rays whose Gaussian traversal is simulated separately
    /// (Fig. 23) and composited into the image.
    ///
    /// This is [`Self::render_batch`] at `N = 1` — the batch path is the
    /// only render body.
    ///
    /// # Panics
    ///
    /// Panics on degenerate inputs ([`Self::try_render`] returns them as
    /// [`GrtxError`]s instead).
    pub fn render(
        &self,
        accel: &AccelStruct,
        scene: &GaussianScene,
        camera: &Camera,
        effects: Option<&EffectObjects>,
        config: &RenderConfig,
    ) -> RenderReport {
        self.try_render(accel, scene, camera, effects, config)
            .unwrap_or_else(|e| panic!("{e}"))
    }

    /// Fallible [`Self::render`]: validates the GPU configuration,
    /// camera, and scene up front and returns a [`GrtxError`] instead of
    /// panicking. On valid inputs the report is bit-identical to
    /// [`Self::render`].
    pub fn try_render(
        &self,
        accel: &AccelStruct,
        scene: &GaussianScene,
        camera: &Camera,
        effects: Option<&EffectObjects>,
        config: &RenderConfig,
    ) -> Result<RenderReport, GrtxError> {
        let mut reports =
            self.try_render_batch(accel, scene, std::slice::from_ref(camera), effects, config)?;
        Ok(reports.pop().expect("one camera yields one report"))
    }

    /// Renders every camera of a batch against one shared acceleration
    /// structure in a single fan-out.
    ///
    /// All cameras' launches flatten into `SMs × cameras` fragments over
    /// one worker pool, amortizing engine warm-up and structure sharing
    /// across views; per-fragment state merges per camera in fixed
    /// `(camera, SM)` order. Each returned report — image, cycles, and
    /// every statistic — is **bit-identical** to a standalone
    /// [`Self::render`] of that camera at any thread count, because each
    /// launch restarts the warp round-robin and simulates against cold
    /// per-launch SM state.
    ///
    /// With `effects`, the same effect objects apply to every camera.
    /// Returns one report per camera, in input order.
    ///
    /// # Panics
    ///
    /// Panics on degenerate inputs ([`Self::try_render_batch`] returns
    /// them as [`GrtxError`]s instead).
    pub fn render_batch(
        &self,
        accel: &AccelStruct,
        scene: &GaussianScene,
        cameras: &[Camera],
        effects: Option<&EffectObjects>,
        config: &RenderConfig,
    ) -> Vec<RenderReport> {
        self.try_render_batch(accel, scene, cameras, effects, config)
            .unwrap_or_else(|e| panic!("{e}"))
    }

    /// Fallible [`Self::render_batch`]: rejects zero-SM / zero-lane GPU
    /// configurations ([`GrtxError::InvalidConfig`]), zero-resolution or
    /// non-finite cameras ([`GrtxError::InvalidCamera`]), and scenes
    /// carrying non-finite Gaussians ([`GrtxError::InvalidScene`])
    /// before any work happens. On valid inputs the reports are
    /// bit-identical to [`Self::render_batch`].
    pub fn try_render_batch(
        &self,
        accel: &AccelStruct,
        scene: &GaussianScene,
        cameras: &[Camera],
        effects: Option<&EffectObjects>,
        config: &RenderConfig,
    ) -> Result<Vec<RenderReport>, GrtxError> {
        validate_gpu(&self.gpu)?;
        for camera in cameras {
            validate_camera(camera)?;
        }
        scene.validate()?;
        Ok(self.render_batch_keyed(0, accel, scene, cameras, effects, config))
    }

    /// [`Self::render_batch`] with an explicit profiler key base: camera
    /// `c` profiles under launch key `base_key + c`.
    ///
    /// Callers that drive many batches through one engine pick
    /// non-overlapping bases so launches stay separable in profile
    /// exports — the frame pipeline passes `frame << 32`, matching the
    /// `(frame << 32) | camera` keys of its task-graph path so both
    /// paths emit byte-identical profiles. Rendering itself ignores the
    /// key entirely.
    pub fn render_batch_keyed(
        &self,
        base_key: u64,
        accel: &AccelStruct,
        scene: &GaussianScene,
        cameras: &[Camera],
        effects: Option<&EffectObjects>,
        config: &RenderConfig,
    ) -> Vec<RenderReport> {
        if cameras.is_empty() {
            // An empty batch renders nothing: no planning, no worker
            // fan-out, no reports.
            return Vec::new();
        }
        let warp_size = self.gpu.warp_size.max(1);
        let num_sms = self.gpu.num_sms.max(1);
        let threads = self.effective_threads_for(cameras.len());

        // Plan every camera's launch up front. Planning is pure and
        // per-camera independent, so big batches plan on the worker pool
        // too — camera `c` to worker `c % plan_threads` — with results
        // landing by index, deterministically.
        let plan_threads = threads.min(cameras.len());
        let launches: Vec<CameraLaunch> = if plan_threads <= 1 {
            cameras
                .iter()
                .map(|camera| CameraLaunch::plan(camera, effects, warp_size))
                .collect()
        } else {
            let mut planned: Vec<Option<CameraLaunch>> = (0..cameras.len()).map(|_| None).collect();
            std::thread::scope(|scope| {
                let handles: Vec<_> = (0..plan_threads)
                    .map(|worker| {
                        scope.spawn(move || {
                            (worker..cameras.len())
                                .step_by(plan_threads)
                                .map(|cam| {
                                    (cam, CameraLaunch::plan(&cameras[cam], effects, warp_size))
                                })
                                .collect::<Vec<_>>()
                        })
                    })
                    .collect();
                for handle in handles {
                    for (cam, launch) in handle.join().expect("plan worker panicked") {
                        planned[cam] = Some(launch);
                    }
                }
            });
            planned
                .into_iter()
                .map(|l| l.expect("every camera planned"))
                .collect()
        };
        // Single source of the warp-to-SM policy: the same schedule that
        // reduces warp times to a makespan decides which fragment
        // simulates each warp.
        let schedule = WarpSchedule::new(&self.gpu);

        // Fan the SM × camera fragments out over worker threads.
        // Fragment `f` is camera `f / SMs`, SM `f % SMs`, and goes to
        // worker `f % threads`; each fragment is self-contained, so the
        // assignment only affects load balance, never results.
        let fragments = cameras.len() * num_sms;
        let mut outcomes: Vec<Option<SmOutcome>> = (0..fragments).map(|_| None).collect();
        std::thread::scope(|scope| {
            let launches = &launches;
            let schedule = &schedule;
            let handles: Vec<_> = (0..threads)
                .map(|worker| {
                    scope.spawn(move || {
                        let mut recorder = self
                            .telemetry
                            .recorder(format!("render-worker-{worker:02}"));
                        (worker..fragments)
                            .step_by(threads)
                            .map(|fragment| {
                                let launch = &launches[fragment / num_sms];
                                let sm = fragment % num_sms;
                                let outcome =
                                    recorder.scope("render.fragment", fragment as u64, |_| {
                                        self.run_sm_fragment(
                                            sm, schedule, accel, scene, config, launch, warp_size,
                                        )
                                    });
                                (fragment, outcome)
                            })
                            .collect::<Vec<_>>()
                    })
                })
                .collect();
            for handle in handles {
                for (fragment, outcome) in handle.join().expect("render worker panicked") {
                    outcomes[fragment] = Some(outcome);
                }
            }
        });

        // Merge per camera in fixed (camera, SM) order — the same merge
        // the pipeline drives through `merge_launch`. Batch-wide flat
        // warp storage would be addressed by
        // `WarpSchedule::launch_warp_bases`; here each camera's warps
        // merge launch-locally, which holds identical values.
        let mut outcomes = outcomes.into_iter();
        let mut merge_recorder = self.telemetry.recorder("render-merge");
        launches
            .iter()
            .zip(cameras)
            .enumerate()
            .map(|(cam, (launch, camera))| {
                let mine = outcomes
                    .by_ref()
                    .take(num_sms)
                    .map(|o| o.expect("every SM fragment ran"));
                merge_recorder.scope("render.merge", cam as u64, |_| {
                    merge_camera(
                        launch,
                        camera,
                        config,
                        &schedule,
                        mine,
                        &self.telemetry,
                        &self.profiler,
                        base_key + cam as u64,
                    )
                })
            })
            .collect()
    }

    /// Plans one camera's raygen launch: pixels partition into primary
    /// jobs (with effect-object cut-offs) and secondary jobs, serially
    /// and deterministically.
    ///
    /// Planning depends only on the camera, the effects, and this
    /// engine's warp size — never on the scene or the acceleration
    /// structure — so the update stage of a frame pipeline can plan
    /// launches before the frame's structure exists.
    pub fn plan_launch(&self, camera: &Camera, effects: Option<&EffectObjects>) -> CameraLaunch {
        CameraLaunch::plan(camera, effects, self.gpu.warp_size.max(1))
    }

    /// Fragments a planned launch decomposes into: one per simulated SM.
    pub fn fragments_per_launch(&self) -> usize {
        self.gpu.num_sms.max(1)
    }

    /// Simulates fragment `sm` of a planned launch: the launch's warps
    /// assigned to that SM, against the SM's private L1 and L2 slice,
    /// from cold per-launch state.
    ///
    /// Each fragment is a closed deterministic computation — fragments
    /// of one launch (or of many launches over many scenes) may execute
    /// on any thread in any order.
    ///
    /// # Panics
    ///
    /// Panics if `sm >= self.fragments_per_launch()`.
    pub fn simulate_fragment(
        &self,
        accel: &AccelStruct,
        scene: &GaussianScene,
        config: &RenderConfig,
        launch: &CameraLaunch,
        sm: usize,
    ) -> SmOutcome {
        assert!(
            sm < self.fragments_per_launch(),
            "fragment {sm} out of range: engine simulates {} SMs",
            self.fragments_per_launch()
        );
        let schedule = WarpSchedule::new(&self.gpu);
        self.run_sm_fragment(
            sm,
            &schedule,
            accel,
            scene,
            config,
            launch,
            self.gpu.warp_size.max(1),
        )
    }

    /// Merges one launch's fragment outcomes — **in SM order** — into
    /// the camera's report.
    ///
    /// The result is bit-identical to [`Self::render`] of the same
    /// camera: `render_batch` is exactly this merge applied per camera.
    ///
    /// # Panics
    ///
    /// Panics if `outcomes.len() != self.fragments_per_launch()`.
    pub fn merge_launch(
        &self,
        launch: &CameraLaunch,
        camera: &Camera,
        config: &RenderConfig,
        outcomes: Vec<SmOutcome>,
    ) -> RenderReport {
        self.merge_launch_keyed(0, launch, camera, config, outcomes)
    }

    /// [`Self::merge_launch`] with an explicit profiler launch key.
    ///
    /// When the engine profiles, every fragment profile lands in the sink
    /// under `key`, and exports order launches by it. Drivers that merge
    /// many launches through one engine (the frame pipeline keys by
    /// `(frame << 32) | camera`) must pass distinct keys so per-launch
    /// rows stay separable; `merge_launch` files everything under key 0.
    ///
    /// # Panics
    ///
    /// Panics if `outcomes.len() != self.fragments_per_launch()`.
    pub fn merge_launch_keyed(
        &self,
        key: u64,
        launch: &CameraLaunch,
        camera: &Camera,
        config: &RenderConfig,
        outcomes: Vec<SmOutcome>,
    ) -> RenderReport {
        assert_eq!(
            outcomes.len(),
            self.fragments_per_launch(),
            "merge needs exactly one outcome per SM, in SM order"
        );
        let schedule = WarpSchedule::new(&self.gpu);
        merge_camera(
            launch,
            camera,
            config,
            &schedule,
            outcomes,
            &self.telemetry,
            &self.profiler,
            key,
        )
    }

    /// Simulates one `(camera, SM)` fragment: the launch's primary warps
    /// to completion, then its secondary warps, against its own cold L1
    /// + L2 slice.
    #[allow(clippy::too_many_arguments)]
    fn run_sm_fragment(
        &self,
        sm: usize,
        schedule: &WarpSchedule,
        accel: &AccelStruct,
        scene: &GaussianScene,
        config: &RenderConfig,
        launch: &CameraLaunch,
        warp_size: usize,
    ) -> SmOutcome {
        let mut sim = GpuSim::sm_shard(&self.gpu);
        // When profiling, this fragment gets its own recorder on the
        // SM-local virtual clock; the finished profile snapshots the
        // fragment's private counters *before* the merge absorbs them,
        // which is what makes the counter matrix sum exactly to the
        // global `SimStats`.
        self.profiler.observe_gpu(&self.gpu);
        let mut profile = self.profiler.fragment_recorder(sm);
        let mut warp_times = Vec::new();
        let mut blends = Vec::new();
        // Secondary warps continue the round-robin where the primary
        // warps left off. The two phases run back-to-back, preserving the
        // seed renderer's ordering (all primaries retire before any
        // secondary starts). Only primary rays are coherent row-major
        // fans, so only the primary phase packetizes.
        let phases: [(&[Job], usize, usize, usize, bool); 2] = [
            (
                &launch.primary_jobs,
                launch.primary_warps,
                0,
                0,
                config.ray_packets,
            ),
            (
                &launch.secondary_jobs,
                launch.secondary_warps,
                launch.primary_warps,
                launch.primary_jobs.len(),
                false,
            ),
        ];
        let mut packet_stats = PacketCacheStats::default();
        for (jobs, warp_count, warp_base, job_base, packets) in phases {
            let my_warps: Vec<usize> = (0..warp_count)
                .filter(|w| schedule.sm_of_launch_warp(warp_base + w) == sm)
                .collect();
            if let Some(rec) = profile.as_mut() {
                rec.begin_phase(warp_base);
            }
            run_warp_queue(
                &mut sim,
                accel,
                scene,
                jobs,
                config,
                &my_warps,
                warp_size,
                packets,
                &mut packet_stats,
                profile.as_mut(),
                |warp, times| warp_times.push((warp_base + warp, times)),
                |job, blend| blends.push((job_base + job, blend)),
            );
        }
        let profile = profile.map(|rec| rec.finish(&sim));
        SmOutcome {
            sim,
            warp_times,
            blends,
            packet_stats,
            profile,
        }
    }
}

/// Merges one camera's fragment outcomes in the order given (callers
/// pass SM order): warp times land at their launch-local indices, blend
/// states at their jobs, and the per-SM simulators absorb in sequence.
#[allow(clippy::too_many_arguments)]
fn merge_camera(
    launch: &CameraLaunch,
    camera: &Camera,
    config: &RenderConfig,
    schedule: &WarpSchedule,
    outcomes: impl IntoIterator<Item = SmOutcome>,
    telemetry: &Telemetry,
    profiler: &Profiler,
    key: u64,
) -> RenderReport {
    let mut warps = vec![(0u64, 0u64); launch.total_warps()];
    let mut primary_blends = vec![BlendState::new(); launch.primary_jobs.len()];
    let mut secondary_blends = vec![BlendState::new(); launch.secondary_jobs.len()];
    let mut agg: Option<GpuSim> = None;
    let mut packet_totals = PacketCacheStats::default();
    for mut outcome in outcomes {
        // Fragment profiles detach before the sims fold together: the
        // sink receives per-(launch, SM) snapshots and re-sorts every
        // export by (key, SM), so concurrent camera merges may submit in
        // any order.
        if let Some(profile) = outcome.profile.take() {
            profiler.submit(key, profile);
        }
        packet_totals.absorb(&outcome.packet_stats);
        for (warp, times) in &outcome.warp_times {
            warps[*warp] = *times;
        }
        for (job, blend) in &outcome.blends {
            if *job < launch.primary_jobs.len() {
                primary_blends[*job] = *blend;
            } else {
                secondary_blends[*job - launch.primary_jobs.len()] = *blend;
            }
        }
        match agg.as_mut() {
            None => agg = Some(outcome.sim),
            Some(acc) => acc.absorb(&outcome.sim),
        }
    }
    let sim = agg.expect("at least one SM fragment");
    // Counter sums are order-independent, so these values are
    // deterministic for a deterministic workload at any thread count.
    if packet_totals.kernel_calls + packet_totals.cache_hits > 0 {
        telemetry.counter_add("packet.kernel_calls", packet_totals.kernel_calls);
        telemetry.counter_add("packet.cache_hits", packet_totals.cache_hits);
        telemetry.counter_add("packet.evictions", packet_totals.evictions);
    }
    compose_report(
        launch,
        camera,
        config,
        schedule,
        &warps,
        &primary_blends,
        &secondary_blends,
        sim,
    )
}

/// Composes one camera's image and report from its merged launch state.
#[allow(clippy::too_many_arguments)]
fn compose_report(
    launch: &CameraLaunch,
    camera: &Camera,
    config: &RenderConfig,
    schedule: &WarpSchedule,
    all_warps: &[(u64, u64)],
    primary_blends: &[BlendState],
    secondary_blends: &[BlendState],
    sim: GpuSim,
) -> RenderReport {
    // Background-filled canvas: fisheye cameras skip pixels outside the
    // image circle, and those must show the background, not black.
    let mut image = Image::filled(camera.width, camera.height, config.background);
    for (job, blend) in launch.primary_jobs.iter().zip(primary_blends) {
        image.set_pixel(job.pixel, blend.over_background(config.background));
    }
    if !launch.secondary_jobs.is_empty() {
        // Pixel -> primary blend index (cameras may skip pixels, so
        // the job index is not the pixel index).
        let primary_of_pixel: FastMap<u64, usize> = launch
            .primary_jobs
            .iter()
            .enumerate()
            .map(|(i, job)| (job.pixel as u64, i))
            .collect();
        for (job, blend) in launch.secondary_jobs.iter().zip(secondary_blends) {
            // The primary path's remaining transmittance scales the
            // reflected/refracted radiance.
            let primary = primary_of_pixel
                .get(&(job.pixel as u64))
                .map(|&i| primary_blends[i])
                .expect("secondary jobs come from primary pixels");
            let color =
                primary.color + blend.over_background(config.background) * primary.transmittance;
            image.set_pixel(job.pixel, color);
        }
    }

    let cycles = schedule.makespan(all_warps);
    let secondary = if launch.secondary_jobs.is_empty() {
        None
    } else {
        Some(SecondaryBreakdown {
            primary_cycles: schedule.makespan(&all_warps[..launch.primary_warps]),
            secondary_cycles: schedule
                .makespan_from(launch.primary_warps, &all_warps[launch.primary_warps..]),
            secondary_rays: launch.secondary_jobs.len() as u64,
        })
    };

    RenderReport {
        time_ms: sim.cycles_to_ms(cycles),
        cycles,
        l1_hit_rate: sim.mem.l1_hit_rate(),
        l2_accesses: sim.mem.l2_structure_accesses,
        dram_accesses: sim.mem.dram_structure_accesses,
        avg_fetch_latency: sim.stats.avg_fetch_latency(),
        footprint_bytes: sim.mem.footprint_bytes(),
        stats: sim.stats,
        image,
        secondary,
    }
}

/// One resident warp being executed round-by-round.
struct WarpExec<'a> {
    tracers: Vec<RayTracer<'a>>,
    states: Vec<RayTraceState>,
    compute: u64,
    stall: u64,
    index: usize,
    /// The packets attached to this warp's tracers (empty when packets
    /// are off); drained for cache counters when the warp retires.
    packets: Vec<Rc<RefCell<RayPacket4>>>,
}

impl WarpExec<'_> {
    fn is_done(&self) -> bool {
        self.tracers.iter().all(RayTracer::is_done)
    }
}

/// Executes one SM's warp queue exactly as the RT unit's warp buffer
/// does: up to `warp_buffer_size` warps stay resident and advance one
/// round at a time.
///
/// This interleaving is what gives the cache model realistic contention —
/// running each warp to completion in isolation would overstate
/// cross-round L1 locality and hide the redundant-traversal cost GRTX-HW
/// removes.
#[allow(clippy::too_many_arguments)]
fn run_warp_queue<'a>(
    sim: &mut GpuSim,
    accel: &'a AccelStruct,
    scene: &'a GaussianScene,
    jobs: &'a [Job],
    config: &RenderConfig,
    warps: &[usize],
    warp_size: usize,
    packets: bool,
    packet_stats: &mut PacketCacheStats,
    mut profile: Option<&mut FragmentRecorder>,
    mut on_warp_done: impl FnMut(usize, (u64, u64)),
    mut on_blend: impl FnMut(usize, BlendState),
) {
    let round_overhead = sim.config.costs.round_overhead;
    let buffer_depth = sim.config.warp_buffer_size.max(1);
    let mut pending: VecDeque<usize> = warps.iter().copied().collect();
    let mut resident: Vec<WarpExec<'a>> = Vec::new();

    let make_exec = |w: usize| -> WarpExec<'a> {
        let chunk = &jobs[w * warp_size..((w + 1) * warp_size).min(jobs.len())];
        let mut tracers: Vec<RayTracer<'a>> = chunk
            .iter()
            .map(|job| {
                let params = TraceParams {
                    t_scene_max: job.t_cut,
                    ..config.params
                };
                RayTracer::new(accel, scene, job.ray, params)
            })
            .collect();
        let mut packet_handles = Vec::new();
        if packets {
            // A warp's jobs are consecutive row-major pixels, so quads
            // of four adjacent tracers form coherent packets sharing
            // wide-node box tests. A warp advances its lanes on one
            // thread, so the shared `Rc<RefCell<_>>` never crosses
            // threads. Partial trailing quads stay single-ray.
            for (q, quad) in chunk.chunks_exact(4).enumerate() {
                let packet = Rc::new(RefCell::new(RayPacket4::new([
                    &quad[0].ray,
                    &quad[1].ray,
                    &quad[2].ray,
                    &quad[3].ray,
                ])));
                for lane in 0..4 {
                    tracers[q * 4 + lane].attach_packet(packet.clone(), lane);
                }
                packet_handles.push(packet);
            }
        }
        WarpExec {
            tracers,
            states: chunk.iter().map(|_| RayTraceState::new()).collect(),
            compute: 0,
            stall: 0,
            index: w,
            packets: packet_handles,
        }
    };

    // Profiling reads what the cost model already computes (plus cheap
    // occupancy getters), so the simulated outcome is identical with the
    // recorder on or off; with it off, every hook is one `Option` branch.
    let profiling = profile.is_some();
    loop {
        // Admit warps up to the buffer depth.
        while resident.len() < buffer_depth {
            let Some(w) = pending.pop_front() else { break };
            if let Some(rec) = profile.as_deref_mut() {
                rec.admit(w);
            }
            resident.push(make_exec(w));
        }
        if resident.is_empty() {
            break;
        }
        // Advance every resident warp by one round.
        let mut finished: Vec<usize> = Vec::new();
        let mut round_advance = 0u64;
        let mut ckpt_high = 0u64;
        let mut evict_high = 0u64;
        let mut kbuf_high = 0u64;
        for (slot, warp) in resident.iter_mut().enumerate() {
            let mut round_compute = 0u64;
            let mut round_stall = 0u64;
            let mut active_lanes = 0u64;
            for (tracer, state) in warp.tracers.iter_mut().zip(warp.states.iter_mut()) {
                if tracer.is_done() {
                    continue;
                }
                let mut obs = sim.observer(0, state);
                let report = tracer.round(&mut obs);
                let shader = shader_cycles(&report, obs.costs(), config);
                round_compute = round_compute.max(obs.compute_cycles + shader);
                round_stall = round_stall.max(obs.stall_cycles);
                sim.stats.rounds += 1;
                sim.stats.blended_gaussians += report.blended as u64;
                sim.stats.eviction_writes += report.eviction_writes;
                sim.stats.peak_checkpoint_entries = sim
                    .stats
                    .peak_checkpoint_entries
                    .max(tracer.peak_checkpoint_entries as u64);
                sim.stats.peak_eviction_entries = sim
                    .stats
                    .peak_eviction_entries
                    .max(tracer.peak_eviction_entries as u64);
                if profiling {
                    active_lanes += 1;
                    kbuf_high = kbuf_high.max(report.kbuffer_high_water);
                    ckpt_high = ckpt_high.max(tracer.checkpoint_occupancy() as u64);
                    evict_high = evict_high.max(tracer.eviction_occupancy() as u64);
                }
            }
            warp.compute += round_compute + round_overhead;
            warp.stall += round_stall;
            if let Some(rec) = profile.as_deref_mut() {
                rec.warp_round(active_lanes, warp.tracers.len() as u64);
                // The SM's clock advances by the slowest resident warp's
                // full round: issue + memory stall + fixed overhead.
                round_advance = round_advance.max(round_compute + round_overhead + round_stall);
            }
            if warp.is_done() {
                finished.push(slot);
            }
        }
        if let Some(rec) = profile.as_deref_mut() {
            rec.round_end(round_advance, ckpt_high, evict_high, kbuf_high);
        }
        // Retire finished warps (back to front to keep indices valid).
        for &slot in finished.iter().rev() {
            let warp = resident.swap_remove(slot);
            for packet in &warp.packets {
                packet_stats.absorb(&packet.borrow().cache_stats());
            }
            if let Some(rec) = profile.as_deref_mut() {
                rec.retire(warp.index);
            }
            on_warp_done(warp.index, (warp.compute, warp.stall));
            let base = warp.index * warp_size;
            for (i, tracer) in warp.tracers.iter().enumerate() {
                on_blend(base + i, *tracer.blend_state());
            }
            sim.stats.rays += warp.tracers.len() as u64;
        }
    }
}

/// Rejects GPU configurations no hardware could execute: zero SMs,
/// zero-size warps, zero SIMT lanes, or an empty warp buffer.
pub fn validate_gpu(gpu: &GpuConfig) -> Result<(), GrtxError> {
    let checks = [
        (gpu.num_sms, "num_sms"),
        (gpu.warp_size, "warp_size"),
        (gpu.simt_lanes, "simt_lanes"),
        (gpu.warp_buffer_size, "warp_buffer_size"),
    ];
    for (value, name) in checks {
        if value == 0 {
            return Err(GrtxError::InvalidConfig {
                reason: format!("{name} must be >= 1, got 0"),
            });
        }
    }
    Ok(())
}

/// Rejects cameras the renderer cannot shoot rays through:
/// zero-resolution images and non-finite or non-positive projection
/// parameters.
pub fn validate_camera(camera: &Camera) -> Result<(), GrtxError> {
    if camera.width == 0 || camera.height == 0 {
        return Err(GrtxError::InvalidCamera {
            reason: format!(
                "resolution must be nonzero, got {}x{}",
                camera.width, camera.height
            ),
        });
    }
    match camera.model() {
        grtx_scene::CameraModel::Pinhole { fov_y } => {
            if !(fov_y.is_finite() && fov_y > 0.0 && fov_y < std::f32::consts::PI) {
                return Err(GrtxError::InvalidCamera {
                    reason: format!("pinhole fov_y must be finite in (0, pi), got {fov_y}"),
                });
            }
        }
        grtx_scene::CameraModel::Fisheye { max_theta } => {
            if !(max_theta.is_finite() && max_theta > 0.0) {
                return Err(GrtxError::InvalidCamera {
                    reason: format!(
                        "fisheye max_theta must be finite and positive, got {max_theta}"
                    ),
                });
            }
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::tracer::TraceMode;
    use grtx_bvh::{BoundingPrimitive, LayoutConfig};
    use grtx_math::Vec3;
    use grtx_scene::{synth::generate_scene, CameraModel, SceneKind};

    fn tiny_setup() -> (GaussianScene, AccelStruct, Camera) {
        let scene = generate_scene(SceneKind::Train.profile().with_gaussian_budget(400), 7);
        let accel = AccelStruct::build(
            &scene,
            BoundingPrimitive::UnitSphere,
            true,
            &LayoutConfig::default(),
        );
        let camera = Camera::look_at(
            24,
            24,
            CameraModel::Pinhole { fov_y: 0.9 },
            SceneKind::Train.profile().camera_eye(),
            grtx_math::Vec3::ZERO,
            grtx_math::Vec3::Y,
        );
        (scene, accel, camera)
    }

    /// The fallible entry points reject degenerate inputs with typed
    /// errors — and accept (bit-identically) everything `render` does.
    #[test]
    fn try_render_validates_inputs() {
        let (scene, accel, camera) = tiny_setup();
        let config = RenderConfig::default();
        let engine = RenderEngine::new(GpuConfig::default()).with_threads(1);

        let ok = engine
            .try_render(&accel, &scene, &camera, None, &config)
            .expect("valid inputs render");
        let direct = engine.render(&accel, &scene, &camera, None, &config);
        assert_eq!(ok.image.pixels(), direct.image.pixels());
        assert_eq!(ok.cycles, direct.cycles);

        let mut flat = camera.clone();
        flat.height = 0;
        let err = engine
            .try_render(&accel, &scene, &flat, None, &config)
            .unwrap_err();
        assert!(matches!(err, GrtxError::InvalidCamera { .. }), "{err}");

        let no_sms = RenderEngine::new(GpuConfig {
            num_sms: 0,
            ..GpuConfig::default()
        });
        let err = no_sms
            .try_render(&accel, &scene, &camera, None, &config)
            .unwrap_err();
        assert!(matches!(err, GrtxError::InvalidConfig { .. }), "{err}");

        // Empty camera batches stay a silent no-op, as before.
        let none = engine
            .try_render_batch(&accel, &scene, &[], None, &config)
            .expect("empty batch is fine");
        assert!(none.is_empty());
    }

    /// Shared immutable scene state must be shareable across workers.
    #[test]
    fn scene_and_accel_are_send_sync() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<AccelStruct>();
        assert_send_sync::<GaussianScene>();
        assert_send_sync::<GpuConfig>();
        assert_send_sync::<Camera>();
    }

    #[test]
    fn thread_counts_produce_bit_identical_reports() {
        let (scene, accel, camera) = tiny_setup();
        let config = RenderConfig {
            params: TraceParams {
                k: 6,
                mode: TraceMode::MultiRoundCheckpoint,
                ..Default::default()
            },
            ..Default::default()
        };
        let render = |threads: usize| {
            RenderEngine::new(GpuConfig::default())
                .with_threads(threads)
                .render(&accel, &scene, &camera, None, &config)
        };
        let serial = render(1);
        for threads in [2, 4, 8] {
            let parallel = render(threads);
            assert_eq!(
                serial.image.pixels(),
                parallel.image.pixels(),
                "{threads} threads: image"
            );
            assert_eq!(serial.cycles, parallel.cycles, "{threads} threads: cycles");
            assert_eq!(serial.stats, parallel.stats, "{threads} threads: stats");
            assert_eq!(
                serial.l2_accesses, parallel.l2_accesses,
                "{threads} threads: L2"
            );
            assert_eq!(
                serial.dram_accesses, parallel.dram_accesses,
                "{threads} threads: DRAM"
            );
            assert_eq!(
                serial.footprint_bytes, parallel.footprint_bytes,
                "{threads} threads: footprint"
            );
            assert!((serial.l1_hit_rate - parallel.l1_hit_rate).abs() < 1e-12);
        }
    }

    #[test]
    fn thread_counts_match_with_effects() {
        let (scene, accel, camera) = tiny_setup();
        let effects = EffectObjects::place_in(SceneKind::Train.profile().half_extent, 3);
        let config = RenderConfig::default();
        let render = |threads: usize| {
            RenderEngine::new(GpuConfig::default())
                .with_threads(threads)
                .render(&accel, &scene, &camera, Some(&effects), &config)
        };
        let serial = render(1);
        let parallel = render(4);
        assert_eq!(serial.image.pixels(), parallel.image.pixels());
        assert_eq!(serial.cycles, parallel.cycles);
        assert_eq!(serial.secondary, parallel.secondary);
    }

    #[test]
    fn batch_of_one_is_a_standalone_render() {
        let (scene, accel, camera) = tiny_setup();
        let config = RenderConfig::default();
        let engine = RenderEngine::new(GpuConfig::default()).with_threads(2);
        let standalone = engine.render(&accel, &scene, &camera, None, &config);
        let mut batch =
            engine.render_batch(&accel, &scene, std::slice::from_ref(&camera), None, &config);
        assert_eq!(batch.len(), 1);
        let report = batch.pop().unwrap();
        assert_eq!(standalone.image.pixels(), report.image.pixels());
        assert_eq!(standalone.cycles, report.cycles);
        assert_eq!(standalone.stats, report.stats);
    }

    /// The exposed plan → fragment → merge building blocks, driven by
    /// hand in scrambled fragment order, reproduce `render()` exactly —
    /// the contract the frame pipeline's render stage is built on.
    #[test]
    fn hand_driven_fragments_match_render() {
        let (scene, accel, camera) = tiny_setup();
        let config = RenderConfig::default();
        let engine = RenderEngine::new(GpuConfig::default()).with_threads(2);
        let launch = engine.plan_launch(&camera, None);
        assert!(launch.total_warps() > 0);
        assert_eq!(launch.job_count(), camera.pixel_count());
        // Simulate fragments in reverse order; merge in SM order.
        let mut outcomes: Vec<SmOutcome> = (0..engine.fragments_per_launch())
            .rev()
            .map(|sm| engine.simulate_fragment(&accel, &scene, &config, &launch, sm))
            .collect();
        outcomes.reverse();
        let merged = engine.merge_launch(&launch, &camera, &config, outcomes);
        let standalone = engine.render(&accel, &scene, &camera, None, &config);
        assert_eq!(standalone.image.pixels(), merged.image.pixels());
        assert_eq!(standalone.cycles, merged.cycles);
        assert_eq!(standalone.stats, merged.stats);
        assert_eq!(standalone.footprint_bytes, merged.footprint_bytes);
    }

    #[test]
    fn empty_batch_renders_nothing() {
        let (scene, accel, _) = tiny_setup();
        let reports = RenderEngine::new(GpuConfig::default()).render_batch(
            &accel,
            &scene,
            &[],
            None,
            &RenderConfig::default(),
        );
        assert!(reports.is_empty());
    }

    /// Regression: fisheye pixels outside the image circle used to stay
    /// `Vec3::ZERO` (the black canvas) because `Camera::rays()` skips
    /// them and no job ever wrote them — ignoring the configured
    /// background.
    #[test]
    fn fisheye_corners_show_the_background() {
        let (scene, accel, _) = tiny_setup();
        let camera = Camera::look_at(
            24,
            24,
            CameraModel::Fisheye { max_theta: 1.4 },
            SceneKind::Train.profile().camera_eye(),
            Vec3::ZERO,
            Vec3::Y,
        );
        let background = Vec3::new(0.25, 0.5, 0.75);
        let config = RenderConfig {
            background,
            ..Default::default()
        };
        assert!(
            camera.primary_ray(0, 0).is_none(),
            "corner must lie outside the image circle"
        );
        let report =
            RenderEngine::new(GpuConfig::default()).render(&accel, &scene, &camera, None, &config);
        assert_eq!(
            report.image.pixel(0),
            background,
            "unwritten fisheye corner must show the configured background"
        );
        // The last pixel of the first row is outside the circle too.
        assert_eq!(report.image.pixel(23), background);
    }

    #[test]
    fn effective_threads_is_capped_by_sms() {
        let engine = RenderEngine::new(GpuConfig::default()).with_threads(64);
        assert_eq!(engine.effective_threads(), GpuConfig::default().num_sms);
        let one = RenderEngine::new(GpuConfig::default()).with_threads(1);
        assert_eq!(one.effective_threads(), 1);
    }

    #[test]
    fn batches_raise_the_thread_cap() {
        let engine = RenderEngine::new(GpuConfig::default()).with_threads(64);
        let sms = GpuConfig::default().num_sms;
        assert_eq!(engine.effective_threads_for(4), 64.min(sms * 4));
        assert_eq!(engine.effective_threads_for(1), engine.effective_threads());
    }
}
