#![forbid(unsafe_code)]

//! The 3DGRT-style Gaussian ray-tracing renderer and its 3DGS
//! rasterization baseline.
//!
//! The rendering pipeline follows Fig. 3 of the paper: rays are generated
//! from the camera, each ray gathers its `k` closest Gaussians per
//! traversal round using an any-hit k-buffer (Section III-A), blends them
//! front-to-back with early ray termination, and repeats with an advanced
//! `t_min` until the ray saturates or the scene is exhausted.
//!
//! Three tracing disciplines are implemented (they must produce identical
//! images — a property the tests enforce):
//!
//! * [`TraceMode::SingleRound`] — collect every intersected Gaussian in
//!   one traversal, sort afterwards, then blend (the strawman of
//!   Fig. 6a);
//! * [`TraceMode::MultiRoundRestart`] — the 3DGRT baseline: each round
//!   restarts BVH traversal from the root;
//! * [`TraceMode::MultiRoundCheckpoint`] — GRTX-HW: rounds resume from
//!   the checkpoint buffer and rejected Gaussians are recycled through
//!   the eviction buffer (Listing 1 / Fig. 11).
//!
//! [`renderer`] drives whole images through the `grtx-sim` GPU model in
//! SIMT warps; [`raster`] implements the tile-based 3DGS rasterizer used
//! as the Fig. 4a reference point.

pub mod blend;
pub mod engine;
pub mod image;
pub mod kbuffer;
pub mod raster;
pub mod renderer;
pub mod tracer;

pub use blend::{BlendState, MIN_BLEND_ALPHA};
pub use engine::{validate_camera, validate_gpu, CameraLaunch, RenderEngine, SmOutcome};
pub use image::Image;
pub use kbuffer::{InsertOutcome, KBuffer};
pub use raster::{render_rasterized, try_render_rasterized, RasterConfig, RasterReport};
pub use renderer::{render_simulated, RenderConfig, RenderReport, SecondaryBreakdown};
pub use tracer::{KBufferStorage, RayTracer, RoundReport, RoundStatus, TraceMode, TraceParams};
