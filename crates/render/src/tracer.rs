//! Per-ray multi-round tracing — the raygen-shader render loop of
//! Listing 1.

use crate::blend::BlendState;
use crate::kbuffer::{Entry, InsertOutcome, KBuffer};
use grtx_bvh::{
    trace_round_packet, AccelStruct, AnyHitVerdict, CheckpointEntry, PacketLane, RayPacket4,
    TraversalObserver,
};
use grtx_math::Ray;
use grtx_scene::GaussianScene;
use std::cell::RefCell;
use std::rc::Rc;

/// Tracing discipline (Figs. 6 and 13).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TraceMode {
    /// One traversal collecting every intersected Gaussian, sorted and
    /// blended afterwards (no ERT benefit during traversal).
    SingleRound,
    /// Multi-round k-buffer tracing, restarting each round from the BVH
    /// root (3DGRT baseline and GRTX-SW).
    MultiRoundRestart,
    /// Multi-round tracing with GRTX-HW traversal checkpointing and the
    /// eviction buffer.
    MultiRoundCheckpoint,
}

/// Where the per-ray k-buffer lives (Fig. 21: OptiX payload registers vs
/// Vulkan global-memory SoA).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum KBufferStorage {
    /// OptiX-style payload registers: fast access, but payload limits
    /// cap `k` at 16.
    PayloadRegisters,
    /// Vulkan-style global-memory structure-of-arrays: coalesced but
    /// slightly costlier per sort step.
    GlobalSoA,
}

impl KBufferStorage {
    /// Relative cost multiplier on k-buffer sort steps.
    pub fn sort_cost_factor(self) -> f64 {
        match self {
            KBufferStorage::PayloadRegisters => 1.0,
            KBufferStorage::GlobalSoA => 1.25,
        }
    }
}

/// Per-ray tracing parameters.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct TraceParams {
    /// k-buffer capacity (paper default: 16 baseline, 8 for GRTX).
    pub k: usize,
    /// Tracing discipline.
    pub mode: TraceMode,
    /// Early ray termination: stop once transmittance drops below this
    /// (the paper's "accumulated alpha exceeds a predefined threshold").
    pub min_transmittance: f32,
    /// Safety bound on rounds per ray.
    pub max_rounds: u32,
    /// Scene cut-off distance: Gaussians beyond it are not blended
    /// (used to composite secondary-ray objects, Fig. 23).
    pub t_scene_max: f32,
    /// k-buffer storage discipline (Fig. 21).
    pub storage: KBufferStorage,
}

impl Default for TraceParams {
    fn default() -> Self {
        Self {
            k: 16,
            mode: TraceMode::MultiRoundRestart,
            min_transmittance: 0.01,
            max_rounds: 1024,
            t_scene_max: f32::INFINITY,
            storage: KBufferStorage::GlobalSoA,
        }
    }
}

/// Whether the ray needs more rounds.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RoundStatus {
    /// More Gaussians may remain: run another round.
    Continue,
    /// The ray saturated (ERT), exhausted the scene, or hit its round
    /// budget.
    Done,
}

/// Shader-side work performed in one round, for the cost model (the
/// simulator charges these; functional callers ignore them).
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct RoundReport {
    /// Continue or done.
    pub status: Option<RoundStatus>,
    /// Insertion-sort steps inside the any-hit shader.
    pub sort_steps: u64,
    /// Entries appended to the eviction buffer.
    pub eviction_writes: u64,
    /// Entries seeded from the eviction buffer into the k-buffer.
    pub eviction_reads: u64,
    /// Gaussians blended this round.
    pub blended: u32,
    /// Post-traversal sort steps (single-round mode only).
    pub deferred_sort_steps: u64,
    /// Largest k-buffer occupancy this round (single-round mode reports
    /// the full buffered hit list). Pure observability for the profiler's
    /// Fig. 20-style occupancy series — the cost model never reads it.
    pub kbuffer_high_water: u64,
}

impl RoundReport {
    /// `true` when the ray is finished.
    pub fn is_done(&self) -> bool {
        self.status == Some(RoundStatus::Done)
    }
}

/// Drives one ray to completion over multiple rounds, owning all per-ray
/// buffers (k-buffer, eviction buffer, ping-pong checkpoint buffers).
#[derive(Debug)]
pub struct RayTracer<'a> {
    accel: &'a AccelStruct,
    scene: &'a GaussianScene,
    ray: Ray,
    params: TraceParams,
    blend: BlendState,
    t_min: f32,
    ckpt_src: Vec<CheckpointEntry>,
    ckpt_dst: Vec<CheckpointEntry>,
    evictions: Vec<Entry>,
    rounds: u32,
    done: bool,
    /// Largest checkpoint-buffer occupancy seen (Fig. 20).
    pub peak_checkpoint_entries: usize,
    /// Largest eviction-buffer occupancy seen (Fig. 20).
    pub peak_eviction_entries: usize,
    /// When enabled, records the blended `(t, gaussian)` sequence for
    /// equivalence tests.
    pub record_blends: bool,
    /// The recorded sequence.
    pub blend_log: Vec<Entry>,
    /// Shared coherent-ray packet and this tracer's lane in it, when
    /// packet traversal is enabled (see [`RayPacket4`]). The `Rc` ties
    /// the four packet-mates to one thread — warps never split across
    /// threads, so this is never a constraint in practice.
    packet: Option<(Rc<RefCell<RayPacket4>>, usize)>,
}

impl<'a> RayTracer<'a> {
    /// Creates a tracer for one ray.
    pub fn new(
        accel: &'a AccelStruct,
        scene: &'a GaussianScene,
        ray: Ray,
        params: TraceParams,
    ) -> Self {
        Self {
            accel,
            scene,
            ray,
            params,
            blend: BlendState::new(),
            t_min: 0.0,
            ckpt_src: Vec::new(),
            ckpt_dst: Vec::new(),
            evictions: Vec::new(),
            rounds: 0,
            done: false,
            peak_checkpoint_entries: 0,
            peak_eviction_entries: 0,
            record_blends: false,
            blend_log: Vec::new(),
            packet: None,
        }
    }

    /// Joins this tracer to lane `lane` of a shared 4-ray packet. The
    /// packet lane's ray must be the tracer's ray (checked in debug
    /// builds on every round); results stay bit-identical to the
    /// unpacketed path, only kernel work is amortized.
    pub fn attach_packet(&mut self, packet: Rc<RefCell<RayPacket4>>, lane: usize) {
        assert!(lane < 4, "a packet has four lanes");
        self.packet = Some((packet, lane));
    }

    /// `true` once the ray has terminated.
    pub fn is_done(&self) -> bool {
        self.done
    }

    /// Rounds executed so far.
    pub fn rounds(&self) -> u32 {
        self.rounds
    }

    /// Current checkpoint-buffer occupancy (entries pending replay next
    /// round) — the profiler samples this per tracing round.
    pub fn checkpoint_occupancy(&self) -> usize {
        self.ckpt_src.len()
    }

    /// Current eviction-buffer occupancy (entries awaiting k-buffer
    /// reseed) — the profiler samples this per tracing round.
    pub fn eviction_occupancy(&self) -> usize {
        self.evictions.len()
    }

    /// Final (or in-progress) blend state.
    pub fn blend_state(&self) -> &BlendState {
        &self.blend
    }

    /// Executes one tracing round (`traceRayEXT` + blending). No-op
    /// returning `Done` if the ray already finished.
    pub fn round(&mut self, observer: &mut dyn TraversalObserver) -> RoundReport {
        if self.done {
            return RoundReport {
                status: Some(RoundStatus::Done),
                ..Default::default()
            };
        }
        self.rounds += 1;
        match self.params.mode {
            TraceMode::SingleRound => self.single_round(observer),
            TraceMode::MultiRoundRestart => self.multi_round(observer, false),
            TraceMode::MultiRoundCheckpoint => self.multi_round(observer, true),
        }
    }

    fn single_round(&mut self, observer: &mut dyn TraversalObserver) -> RoundReport {
        let mut all: Vec<Entry> = Vec::new();
        let mut packet = self
            .packet
            .as_ref()
            .map(|(p, lane)| (p.borrow_mut(), *lane));
        trace_round_packet(
            self.accel,
            self.scene,
            &self.ray,
            0.0,
            None,
            None,
            packet
                .as_mut()
                .map(|(p, lane)| PacketLane::new(&mut *p, *lane)),
            observer,
            &mut |g, t| {
                all.push((t, g));
                AnyHitVerdict::Ignore
            },
        );
        drop(packet);
        all.sort_by(|a, b| a.0.total_cmp(&b.0).then(a.1.cmp(&b.1)));
        all.dedup();
        let n = all.len() as u64;
        // Post-traversal sort: n log n comparison steps.
        let deferred_sort_steps = if n > 1 {
            n * (64 - (n - 1).leading_zeros() as u64)
        } else {
            0
        };
        let mut blended = 0;
        for (t, g) in all {
            if t > self.params.t_scene_max {
                break;
            }
            self.blend_one(t, g);
            blended += 1;
            if self.blend.saturated(self.params.min_transmittance) {
                break;
            }
        }
        self.done = true;
        RoundReport {
            status: Some(RoundStatus::Done),
            blended,
            deferred_sort_steps,
            kbuffer_high_water: n,
            ..Default::default()
        }
    }

    fn multi_round(
        &mut self,
        observer: &mut dyn TraversalObserver,
        checkpointing: bool,
    ) -> RoundReport {
        let k = self.params.k;
        let mut kbuf = KBuffer::new(k);
        let mut report = RoundReport::default();

        // moveEvictToKBuf (Listing 1, line 3): seed the k closest evicted
        // Gaussians; the remainder stays buffered for later rounds.
        if checkpointing && !self.evictions.is_empty() {
            self.evictions
                .sort_by(|a, b| a.0.total_cmp(&b.0).then(a.1.cmp(&b.1)));
            let take = self.evictions.len().min(k);
            let seeds: Vec<Entry> = self.evictions.drain(..take).collect();
            kbuf.seed(&seeds);
            report.eviction_reads = take as u64;
        }

        let replay_owned;
        let replay: Option<&[CheckpointEntry]> = if checkpointing && self.rounds > 1 {
            replay_owned = std::mem::take(&mut self.ckpt_src);
            Some(&replay_owned)
        } else {
            None
        };
        self.ckpt_dst.clear();

        let mut sort_steps = 0u64;
        let mut new_evictions: Vec<Entry> = Vec::new();
        let mut packet = self
            .packet
            .as_ref()
            .map(|(p, lane)| (p.borrow_mut(), *lane));
        trace_round_packet(
            self.accel,
            self.scene,
            &self.ray,
            self.t_min,
            replay,
            if checkpointing {
                Some(&mut self.ckpt_dst)
            } else {
                None
            },
            packet
                .as_mut()
                .map(|(p, lane)| PacketLane::new(&mut *p, *lane)),
            observer,
            &mut |g, t| match kbuf.insert(t, g) {
                InsertOutcome::Accepted {
                    rejected,
                    sort_steps: s,
                } => {
                    sort_steps += s as u64;
                    if let Some(e) = rejected {
                        if checkpointing {
                            new_evictions.push(e);
                        }
                    }
                    AnyHitVerdict::Ignore
                }
                InsertOutcome::RejectedIncoming { sort_steps: s } => {
                    sort_steps += s as u64;
                    if checkpointing {
                        new_evictions.push((t, g));
                    }
                    AnyHitVerdict::Commit
                }
                InsertOutcome::Duplicate => AnyHitVerdict::Ignore,
            },
        );
        drop(packet);
        report.sort_steps = sort_steps;
        report.eviction_writes = new_evictions.len() as u64;
        if checkpointing {
            self.evictions.extend(new_evictions);
            std::mem::swap(&mut self.ckpt_src, &mut self.ckpt_dst);
            self.peak_checkpoint_entries = self.peak_checkpoint_entries.max(self.ckpt_src.len());
            self.peak_eviction_entries = self.peak_eviction_entries.max(self.evictions.len());
        }

        // Blend the k-buffer front-to-back with ERT.
        let entries = kbuf.drain_sorted();
        let n = entries.len();
        report.kbuffer_high_water = n as u64;
        for (t, g) in entries {
            if t > self.params.t_scene_max {
                self.done = true;
                break;
            }
            self.blend_one(t, g);
            report.blended += 1;
            self.t_min = t;
            if self.blend.saturated(self.params.min_transmittance) {
                self.done = true;
                break;
            }
        }
        // Fewer than k found after a complete traversal: scene exhausted
        // (Listing 1, line 6: `if prd.size < k: break`).
        if !self.done && n < k {
            self.done = true;
        }
        if !self.done && self.rounds >= self.params.max_rounds {
            self.done = true;
        }
        report.status = Some(if self.done {
            RoundStatus::Done
        } else {
            RoundStatus::Continue
        });
        report
    }

    fn blend_one(&mut self, t: f32, g: u32) {
        if self.record_blends {
            self.blend_log.push((t, g));
        }
        self.blend.blend(self.scene.gaussian(g as usize), &self.ray);
    }

    /// Runs the ray to completion with the given observer, returning the
    /// final blend state (functional path used by tests and examples).
    pub fn run_to_completion(&mut self, observer: &mut dyn TraversalObserver) -> BlendState {
        while !self.done {
            self.round(observer);
        }
        self.blend
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use grtx_bvh::{BoundingPrimitive, LayoutConfig, NullObserver};
    use grtx_math::Vec3;
    use grtx_scene::Gaussian;

    fn line_scene(n: usize) -> GaussianScene {
        (0..n)
            .map(|i| {
                Gaussian::isotropic(
                    Vec3::new(0.0, 0.0, i as f32 * 1.5),
                    0.25,
                    0.3,
                    Vec3::new((i % 3) as f32 / 2.0, 0.5, 1.0 - (i % 3) as f32 / 2.0),
                )
            })
            .collect()
    }

    fn accel(scene: &GaussianScene) -> AccelStruct {
        AccelStruct::build(
            scene,
            BoundingPrimitive::UnitSphere,
            true,
            &LayoutConfig::default(),
        )
    }

    fn ray() -> Ray {
        Ray::new(Vec3::new(0.02, 0.01, -4.0), Vec3::Z)
    }

    fn trace(
        scene: &GaussianScene,
        accel: &AccelStruct,
        params: TraceParams,
    ) -> (BlendState, Vec<Entry>) {
        let mut tracer = RayTracer::new(accel, scene, ray(), params);
        tracer.record_blends = true;
        let state = tracer.run_to_completion(&mut NullObserver);
        (state, tracer.blend_log)
    }

    #[test]
    fn all_three_modes_blend_identically() {
        let scene = line_scene(30);
        let accel = accel(&scene);
        let base = TraceParams {
            k: 4,
            ..Default::default()
        };
        let (s_single, log_single) = trace(
            &scene,
            &accel,
            TraceParams {
                mode: TraceMode::SingleRound,
                ..base
            },
        );
        let (s_restart, log_restart) = trace(
            &scene,
            &accel,
            TraceParams {
                mode: TraceMode::MultiRoundRestart,
                ..base
            },
        );
        let (s_ckpt, log_ckpt) = trace(
            &scene,
            &accel,
            TraceParams {
                mode: TraceMode::MultiRoundCheckpoint,
                ..base
            },
        );

        assert_eq!(log_single, log_restart, "single vs restart blend order");
        assert_eq!(log_restart, log_ckpt, "restart vs checkpoint blend order");
        assert!((s_single.color - s_restart.color).length() < 1e-5);
        assert!((s_restart.color - s_ckpt.color).length() < 1e-5);
    }

    #[test]
    fn multi_round_uses_multiple_rounds_for_small_k() {
        let scene = line_scene(30);
        let accel = accel(&scene);
        let mut tracer = RayTracer::new(
            &accel,
            &scene,
            ray(),
            TraceParams {
                k: 4,
                mode: TraceMode::MultiRoundRestart,
                ..Default::default()
            },
        );
        tracer.run_to_completion(&mut NullObserver);
        assert!(tracer.rounds() > 1, "30 hits with k=4 need several rounds");
    }

    #[test]
    fn ert_stops_early_on_opaque_scene() {
        let scene: GaussianScene = (0..50)
            .map(|i| {
                Gaussian::isotropic(Vec3::new(0.0, 0.0, i as f32 * 1.5), 0.25, 0.95, Vec3::ONE)
            })
            .collect();
        let accel = accel(&scene);
        let mut tracer = RayTracer::new(
            &accel,
            &scene,
            ray(),
            TraceParams {
                k: 8,
                mode: TraceMode::MultiRoundRestart,
                ..Default::default()
            },
        );
        tracer.record_blends = true;
        let state = tracer.run_to_completion(&mut NullObserver);
        assert!(state.saturated(0.01));
        assert!(
            tracer.blend_log.len() < 10,
            "ERT should stop long before 50: blended {}",
            tracer.blend_log.len()
        );
    }

    #[test]
    fn checkpoint_mode_tracks_buffer_peaks() {
        let scene = line_scene(40);
        let accel = accel(&scene);
        let mut tracer = RayTracer::new(
            &accel,
            &scene,
            ray(),
            TraceParams {
                k: 4,
                mode: TraceMode::MultiRoundCheckpoint,
                ..Default::default()
            },
        );
        tracer.run_to_completion(&mut NullObserver);
        assert!(tracer.peak_checkpoint_entries > 0 || tracer.peak_eviction_entries > 0);
    }

    #[test]
    fn t_scene_max_cuts_blending() {
        let scene = line_scene(30);
        let accel = accel(&scene);
        let cut = TraceParams {
            k: 8,
            t_scene_max: 10.0,
            ..Default::default()
        };
        let (_, log) = trace(&scene, &accel, cut);
        assert!(log.iter().all(|&(t, _)| t <= 10.0));
        let (_, full_log) = trace(
            &scene,
            &accel,
            TraceParams {
                k: 8,
                ..Default::default()
            },
        );
        assert!(full_log.len() > log.len());
    }

    #[test]
    fn done_ray_round_is_noop() {
        let scene = line_scene(5);
        let accel = accel(&scene);
        let mut tracer = RayTracer::new(&accel, &scene, ray(), TraceParams::default());
        tracer.run_to_completion(&mut NullObserver);
        let rounds_before = tracer.rounds();
        let report = tracer.round(&mut NullObserver);
        assert!(report.is_done());
        assert_eq!(tracer.rounds(), rounds_before);
    }

    #[test]
    fn miss_ray_terminates_immediately() {
        let scene = line_scene(5);
        let accel = accel(&scene);
        let miss = Ray::new(Vec3::new(100.0, 100.0, -5.0), Vec3::Z);
        let mut tracer = RayTracer::new(&accel, &scene, miss, TraceParams::default());
        let state = tracer.run_to_completion(&mut NullObserver);
        assert_eq!(tracer.rounds(), 1);
        assert_eq!(state.blended, 0);
        assert_eq!(state.transmittance, 1.0);
    }
}
