//! Front-to-back alpha blending with early ray termination.
//!
//! Implements Equation 1 of the paper with the ray-tracing twist of
//! Section III-A: colors come from SH evaluated per ray, and alpha is
//! evaluated at `t_alpha`, the point of maximum Gaussian response along
//! the ray.

use grtx_math::{Ray, Vec3};
use grtx_scene::Gaussian;

/// Alphas below this threshold contribute nothing visible and are
/// skipped, as in the 3DGS reference renderer (1/255).
pub const MIN_BLEND_ALPHA: f32 = 1.0 / 255.0;

/// Accumulated color and transmittance for one ray.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct BlendState {
    /// Accumulated radiance.
    pub color: Vec3,
    /// Remaining transmittance `Π (1 − αj)`; starts at 1.
    pub transmittance: f32,
    /// Number of Gaussians blended.
    pub blended: u32,
}

impl BlendState {
    /// Fresh state (black, fully transparent path).
    pub fn new() -> Self {
        Self {
            color: Vec3::ZERO,
            transmittance: 1.0,
            blended: 0,
        }
    }

    /// Blends one Gaussian. Returns the alpha it contributed.
    pub fn blend(&mut self, gaussian: &Gaussian, ray: &Ray) -> f32 {
        let alpha = gaussian.alpha_along(ray);
        if alpha < MIN_BLEND_ALPHA {
            return alpha;
        }
        let color = gaussian.color(ray.direction);
        self.color += color * (alpha * self.transmittance);
        self.transmittance *= 1.0 - alpha;
        self.blended += 1;
        alpha
    }

    /// Early-ray-termination check: `true` once the remaining
    /// transmittance drops below `min_transmittance`.
    pub fn saturated(&self, min_transmittance: f32) -> bool {
        self.transmittance < min_transmittance
    }

    /// Accumulated opacity (`1 − T`).
    pub fn alpha(&self) -> f32 {
        1.0 - self.transmittance
    }

    /// Composites a background color into the remaining transmittance.
    pub fn over_background(&self, background: Vec3) -> Vec3 {
        self.color + background * self.transmittance
    }
}

impl Default for BlendState {
    fn default() -> Self {
        Self::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn opaque_gaussian(z: f32, color: Vec3) -> Gaussian {
        Gaussian::isotropic(Vec3::new(0.0, 0.0, z), 0.3, 0.95, color)
    }

    fn axis_ray() -> Ray {
        Ray::new(Vec3::new(0.0, 0.0, -5.0), Vec3::Z)
    }

    #[test]
    fn blending_accumulates_and_attenuates() {
        let mut s = BlendState::new();
        let g = opaque_gaussian(0.0, Vec3::new(1.0, 0.0, 0.0));
        let a = s.blend(&g, &axis_ray());
        assert!(a > 0.9, "head-on hit at high opacity: alpha = {a}");
        assert!(s.color.x > 0.85);
        assert!(s.transmittance < 0.1);
        assert_eq!(s.blended, 1);
    }

    #[test]
    fn front_to_back_order_matters() {
        let red = opaque_gaussian(0.0, Vec3::new(1.0, 0.0, 0.0));
        let blue = opaque_gaussian(2.0, Vec3::new(0.0, 0.0, 1.0));
        let ray = axis_ray();
        let mut s = BlendState::new();
        s.blend(&red, &ray);
        s.blend(&blue, &ray);
        assert!(s.color.x > s.color.z, "front red must dominate");
    }

    #[test]
    fn saturation_detects_ert_point() {
        let mut s = BlendState::new();
        let ray = axis_ray();
        assert!(!s.saturated(0.01));
        for i in 0..6 {
            s.blend(&opaque_gaussian(i as f32, Vec3::ONE), &ray);
        }
        assert!(s.saturated(0.01), "transmittance = {}", s.transmittance);
    }

    #[test]
    fn tiny_alpha_is_skipped() {
        let mut s = BlendState::new();
        // A Gaussian far off-axis: response ~ 0.
        let g = Gaussian::isotropic(Vec3::new(50.0, 0.0, 0.0), 0.1, 0.9, Vec3::ONE);
        let a = s.blend(&g, &axis_ray());
        assert!(a < MIN_BLEND_ALPHA);
        assert_eq!(s.blended, 0);
        assert_eq!(s.transmittance, 1.0);
    }

    #[test]
    fn background_composites_through_transmittance() {
        let s = BlendState::new();
        let c = s.over_background(Vec3::new(0.2, 0.4, 0.6));
        assert_eq!(c, Vec3::new(0.2, 0.4, 0.6));
    }

    #[test]
    fn transmittance_never_negative() {
        let mut s = BlendState::new();
        let ray = axis_ray();
        for i in 0..50 {
            s.blend(&opaque_gaussian(i as f32 * 0.1, Vec3::ONE), &ray);
        }
        assert!(s.transmittance >= 0.0);
    }
}
