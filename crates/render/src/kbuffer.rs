//! The any-hit k-buffer (Section III-A / Listing 1).
//!
//! A per-ray buffer holding the `k` closest Gaussian hits found so far,
//! kept depth-sorted by insertion sort. When the buffer is full, an
//! incoming hit either displaces the farthest entry (which is *rejected*)
//! or is itself rejected. Under GRTX-HW, rejected entries go to the
//! eviction buffer; the baseline simply re-discovers them next round.

/// One k-buffer entry: `(t_hit, gaussian id)`. Ordering is lexicographic
/// on `(t, id)` so ties break deterministically.
pub type Entry = (f32, u32);

/// Result of inserting a hit into the k-buffer.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum InsertOutcome {
    /// Buffer had room (or the incoming displaced a farther entry that
    /// was rejected). Any-hit must `ignoreIntersectionEXT`.
    Accepted {
        /// The displaced farthest entry, if the buffer was full.
        rejected: Option<Entry>,
        /// Insertion-sort steps performed (for the shader cost model).
        sort_steps: u32,
    },
    /// The incoming hit is not among the `k` closest: it is the rejected
    /// entry itself. Any-hit must report the hit, shrinking `t_max`.
    RejectedIncoming {
        /// Sort steps performed before rejection.
        sort_steps: u32,
    },
    /// Exact duplicate of an existing entry (same `t` and id) — ignored.
    /// Happens when a proxy mesh reports the same Gaussian twice through
    /// a shared edge.
    Duplicate,
}

/// A depth-sorted bounded buffer of the `k` closest hits.
#[derive(Debug, Clone, PartialEq)]
pub struct KBuffer {
    entries: Vec<Entry>,
    k: usize,
}

impl KBuffer {
    /// Creates an empty buffer of capacity `k`.
    ///
    /// # Panics
    ///
    /// Panics if `k == 0`.
    pub fn new(k: usize) -> Self {
        assert!(k > 0, "k-buffer capacity must be positive");
        Self {
            entries: Vec::with_capacity(k + 1),
            k,
        }
    }

    /// Capacity `k`.
    pub fn capacity(&self) -> usize {
        self.k
    }

    /// Current entry count.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// `true` when no hits are buffered.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// `true` when the buffer holds `k` entries.
    pub fn is_full(&self) -> bool {
        self.entries.len() >= self.k
    }

    /// The sorted entries, nearest first.
    pub fn entries(&self) -> &[Entry] {
        &self.entries
    }

    /// The farthest buffered entry, if any.
    pub fn farthest(&self) -> Option<Entry> {
        self.entries.last().copied()
    }

    /// Inserts a hit per the Listing 1 protocol.
    pub fn insert(&mut self, t: f32, id: u32) -> InsertOutcome {
        let key = (t, id);
        // Position by (t, id); scan length models insertion-sort work.
        let pos = self.entries.partition_point(|&(et, eid)| (et, eid) < key);
        let sort_steps = (self.entries.len() - pos) as u32 + 1;
        if self.entries.get(pos) == Some(&key) {
            return InsertOutcome::Duplicate;
        }
        if self.entries.len() < self.k {
            self.entries.insert(pos, key);
            return InsertOutcome::Accepted {
                rejected: None,
                sort_steps,
            };
        }
        if pos == self.entries.len() {
            // Incoming is the farthest of k+1 candidates.
            return InsertOutcome::RejectedIncoming { sort_steps };
        }
        self.entries.insert(pos, key);
        let rejected = self.entries.pop().expect("buffer was full");
        InsertOutcome::Accepted {
            rejected: Some(rejected),
            sort_steps,
        }
    }

    /// Seeds entries (from the eviction buffer) before a round; input
    /// need not be sorted. Returns the number seeded.
    ///
    /// # Panics
    ///
    /// Panics if seeding would overflow the buffer (callers seed at most
    /// `k` entries into an empty buffer).
    pub fn seed(&mut self, entries: &[Entry]) -> usize {
        assert!(
            self.entries.len() + entries.len() <= self.k,
            "seed overflow: {} + {} > {}",
            self.entries.len(),
            entries.len(),
            self.k
        );
        self.entries.extend_from_slice(entries);
        self.entries
            .sort_by(|a, b| a.0.total_cmp(&b.0).then(a.1.cmp(&b.1)));
        entries.len()
    }

    /// Drains all entries (for blending), leaving the buffer empty.
    pub fn drain_sorted(&mut self) -> Vec<Entry> {
        std::mem::take(&mut self.entries)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn keeps_k_closest() {
        let mut b = KBuffer::new(3);
        for (t, id) in [(5.0, 0), (1.0, 1), (3.0, 2), (2.0, 3), (4.0, 4)] {
            b.insert(t, id);
        }
        let ts: Vec<f32> = b.entries().iter().map(|e| e.0).collect();
        assert_eq!(ts, vec![1.0, 2.0, 3.0]);
    }

    #[test]
    fn entries_stay_sorted_after_every_insert() {
        let mut b = KBuffer::new(4);
        for (i, t) in [3.0f32, 1.0, 4.0, 1.5, 9.0, 2.6, 5.0].iter().enumerate() {
            b.insert(*t, i as u32);
            assert!(b
                .entries()
                .windows(2)
                .all(|w| (w[0].0, w[0].1) <= (w[1].0, w[1].1)));
        }
    }

    #[test]
    fn incoming_farthest_is_rejected_with_commit() {
        let mut b = KBuffer::new(2);
        b.insert(1.0, 0);
        b.insert(2.0, 1);
        match b.insert(3.0, 2) {
            InsertOutcome::RejectedIncoming { .. } => {}
            other => panic!("expected RejectedIncoming, got {other:?}"),
        }
        assert_eq!(b.len(), 2);
    }

    #[test]
    fn displacement_rejects_previous_farthest() {
        let mut b = KBuffer::new(2);
        b.insert(1.0, 0);
        b.insert(3.0, 1);
        match b.insert(2.0, 2) {
            InsertOutcome::Accepted {
                rejected: Some((t, id)),
                ..
            } => {
                assert_eq!((t, id), (3.0, 1));
            }
            other => panic!("expected displacement, got {other:?}"),
        }
        assert_eq!(b.farthest(), Some((2.0, 2)));
    }

    #[test]
    fn duplicates_are_ignored() {
        let mut b = KBuffer::new(4);
        b.insert(1.0, 7);
        assert_eq!(b.insert(1.0, 7), InsertOutcome::Duplicate);
        assert_eq!(b.len(), 1);
    }

    #[test]
    fn equal_t_different_id_both_kept() {
        let mut b = KBuffer::new(4);
        b.insert(1.0, 7);
        assert!(matches!(b.insert(1.0, 3), InsertOutcome::Accepted { .. }));
        assert_eq!(b.entries(), &[(1.0, 3), (1.0, 7)]);
    }

    #[test]
    fn seed_then_insert_interacts_correctly() {
        let mut b = KBuffer::new(3);
        b.seed(&[(4.0, 1), (2.0, 0)]);
        assert_eq!(b.entries(), &[(2.0, 0), (4.0, 1)]);
        b.insert(3.0, 2);
        assert!(b.is_full());
        assert!(matches!(
            b.insert(9.0, 3),
            InsertOutcome::RejectedIncoming { .. }
        ));
    }

    #[test]
    #[should_panic(expected = "seed overflow")]
    fn seed_overflow_panics() {
        let mut b = KBuffer::new(1);
        b.seed(&[(1.0, 0), (2.0, 1)]);
    }

    #[test]
    fn sort_steps_reflect_scan_depth() {
        let mut b = KBuffer::new(8);
        // Appending at the end scans one slot.
        match b.insert(1.0, 0) {
            InsertOutcome::Accepted { sort_steps, .. } => assert_eq!(sort_steps, 1),
            _ => unreachable!(),
        }
        b.insert(2.0, 1);
        b.insert(3.0, 2);
        // Inserting at the front scans past everything.
        match b.insert(0.5, 3) {
            InsertOutcome::Accepted { sort_steps, .. } => assert_eq!(sort_steps, 4),
            _ => unreachable!(),
        }
    }
}
