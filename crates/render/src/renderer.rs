//! The simulated whole-image renderer: SIMT warps on the `grtx-sim` GPU.
//!
//! Rays are packed into 32-wide warps in row-major order (coherent
//! primaries, as raygen launches do) and scheduled round-robin across
//! SMs. Within a warp, rounds run in lockstep: the warp's round time is
//! the slowest lane's time plus the per-round launch/sync overhead —
//! this is the straggler effect that penalizes very small `k` (Fig. 18).

use crate::image::Image;
use crate::tracer::{RayTracer, RoundReport, TraceParams};
use grtx_bvh::AccelStruct;
use grtx_math::{Ray, Vec3};
use grtx_scene::{Camera, EffectObjects, GaussianScene};
use grtx_sim::config::CostModel;
use grtx_sim::{GpuConfig, GpuSim, RayTraceState, SimStats, WarpSchedule};

/// Whole-render configuration.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct RenderConfig {
    /// Per-ray tracing parameters.
    pub params: TraceParams,
    /// Charge any-hit sorting cycles (disabled to isolate traversal,
    /// Fig. 4b).
    pub charge_sorting: bool,
    /// Charge blending cycles (disabled to isolate traversal+sorting,
    /// Fig. 4b).
    pub charge_blending: bool,
    /// Background color composited through remaining transmittance.
    pub background: Vec3,
}

impl Default for RenderConfig {
    fn default() -> Self {
        Self {
            params: TraceParams::default(),
            charge_sorting: true,
            charge_blending: true,
            background: Vec3::ZERO,
        }
    }
}

/// Primary/secondary cycle split for the Fig. 23 experiment.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SecondaryBreakdown {
    /// Makespan of the primary-ray warps.
    pub primary_cycles: u64,
    /// Makespan of the secondary-ray warps.
    pub secondary_cycles: u64,
    /// Number of secondary rays spawned.
    pub secondary_rays: u64,
}

/// Everything an experiment reads from one simulated render.
#[derive(Debug, Clone)]
pub struct RenderReport {
    /// Render time in milliseconds at the configured clock.
    pub time_ms: f64,
    /// Total cycles (scheduler makespan).
    pub cycles: u64,
    /// Event counters.
    pub stats: SimStats,
    /// L1 hit rate over structure fetches (Fig. 16).
    pub l1_hit_rate: f64,
    /// L2 accesses from structure fetches (Fig. 17).
    pub l2_accesses: u64,
    /// DRAM accesses from structure fetches.
    pub dram_accesses: u64,
    /// Average node-fetch latency in cycles (Fig. 15).
    pub avg_fetch_latency: f64,
    /// Unique structure bytes touched (Table II footprint row).
    pub footprint_bytes: u64,
    /// The rendered image.
    pub image: Image,
    /// Present when effect objects spawned secondary rays.
    pub secondary: Option<SecondaryBreakdown>,
}

/// One traced job: pixel index, ray, scene cut-off.
struct Job {
    pixel: usize,
    ray: Ray,
    t_cut: f32,
}

/// Renders a camera view through the simulated GPU.
///
/// With `effects`, rays hitting the glass sphere / mirror spawn secondary
/// rays whose Gaussian traversal is simulated separately (Fig. 23) and
/// composited into the image.
pub fn render_simulated(
    accel: &AccelStruct,
    scene: &GaussianScene,
    camera: &Camera,
    effects: Option<&EffectObjects>,
    config: &RenderConfig,
    gpu: GpuConfig,
) -> RenderReport {
    let mut sim = GpuSim::new(gpu);
    let schedule = WarpSchedule::new(&sim.config);
    let warp_size = sim.config.warp_size;

    // Partition pixels into primary jobs (with effect cut-offs) and
    // secondary jobs.
    let mut primary_jobs: Vec<Job> = Vec::with_capacity(camera.pixel_count());
    let mut secondary_jobs: Vec<Job> = Vec::new();
    for (pixel, ray) in camera.rays() {
        let mut t_cut = f32::INFINITY;
        if let Some(objects) = effects {
            if let Some(hit) = objects.intersect(&ray) {
                t_cut = hit.t();
                secondary_jobs.push(Job { pixel, ray: hit.secondary(), t_cut: f32::INFINITY });
            }
        }
        primary_jobs.push(Job { pixel, ray, t_cut });
    }

    let primary_results = run_warps(&mut sim, &schedule, accel, scene, &primary_jobs, config, 0, warp_size);
    let primary_warp_count = primary_results.warp_times.len();
    let secondary_results = run_warps(
        &mut sim,
        &schedule,
        accel,
        scene,
        &secondary_jobs,
        config,
        primary_warp_count,
        warp_size,
    );

    // Compose the image.
    let mut image = Image::new(camera.width, camera.height);
    for (job, blend) in primary_jobs.iter().zip(&primary_results.blends) {
        image.set_pixel(job.pixel, blend.over_background(config.background));
    }
    for (job, blend) in secondary_jobs.iter().zip(&secondary_results.blends) {
        // The primary path's remaining transmittance scales the
        // reflected/refracted radiance.
        let primary = primary_jobs
            .iter()
            .zip(&primary_results.blends)
            .find(|(p, _)| p.pixel == job.pixel)
            .map(|(_, b)| *b)
            .expect("secondary jobs come from primary pixels");
        let color =
            primary.color + blend.over_background(config.background) * primary.transmittance;
        image.set_pixel(job.pixel, color);
    }

    let mut all_warps = primary_results.warp_times.clone();
    all_warps.extend(secondary_results.warp_times.iter().copied());
    let cycles = schedule.makespan(&all_warps);
    let secondary = if secondary_jobs.is_empty() {
        None
    } else {
        Some(SecondaryBreakdown {
            primary_cycles: schedule.makespan(&primary_results.warp_times),
            secondary_cycles: schedule.makespan(&secondary_results.warp_times),
            secondary_rays: secondary_jobs.len() as u64,
        })
    };

    RenderReport {
        time_ms: sim.cycles_to_ms(cycles),
        cycles,
        l1_hit_rate: sim.mem.l1_hit_rate(),
        l2_accesses: sim.mem.l2_structure_accesses,
        dram_accesses: sim.mem.dram_structure_accesses,
        avg_fetch_latency: sim.stats.avg_fetch_latency(),
        footprint_bytes: sim.mem.footprint_bytes(),
        stats: sim.stats,
        image,
        secondary,
    }
}

struct WarpResults {
    warp_times: Vec<(u64, u64)>,
    blends: Vec<crate::blend::BlendState>,
}

/// One resident warp being executed round-by-round.
struct WarpExec<'a> {
    tracers: Vec<RayTracer<'a>>,
    states: Vec<RayTraceState>,
    compute: u64,
    stall: u64,
    index: usize,
}

impl WarpExec<'_> {
    fn is_done(&self) -> bool {
        self.tracers.iter().all(RayTracer::is_done)
    }
}

/// Traces a job list in SIMT warps; returns per-warp `(compute, stall)`
/// cycles and per-job blend states.
///
/// Execution interleaves resident warps exactly as the RT unit's warp
/// buffer does: each SM keeps up to `warp_buffer_size` warps in flight
/// and advances them one round at a time. This interleaving is what
/// gives the cache model realistic contention — running each warp to
/// completion in isolation would overstate cross-round L1 locality and
/// hide the redundant-traversal cost GRTX-HW removes.
#[allow(clippy::too_many_arguments)]
fn run_warps(
    sim: &mut GpuSim,
    schedule: &WarpSchedule,
    accel: &AccelStruct,
    scene: &GaussianScene,
    jobs: &[Job],
    config: &RenderConfig,
    warp_id_base: usize,
    warp_size: usize,
) -> WarpResults {
    let warp_count = jobs.len().div_ceil(warp_size.max(1));
    let mut warp_times = vec![(0u64, 0u64); warp_count];
    let mut blend_out = vec![crate::blend::BlendState::new(); jobs.len()];
    let round_overhead = sim.config.costs.round_overhead;
    let num_sms = sim.config.num_sms;
    let buffer_depth = sim.config.warp_buffer_size;

    // Per-SM pending warp queues (round-robin assignment).
    let mut pending: Vec<std::collections::VecDeque<usize>> =
        vec![std::collections::VecDeque::new(); num_sms];
    for w in 0..warp_count {
        pending[schedule.sm_of_warp(warp_id_base + w)].push_back(w);
    }
    let mut resident: Vec<Vec<WarpExec<'_>>> = (0..num_sms).map(|_| Vec::new()).collect();

    let make_exec = |w: usize| -> WarpExec<'_> {
        let chunk = &jobs[w * warp_size..((w + 1) * warp_size).min(jobs.len())];
        WarpExec {
            tracers: chunk
                .iter()
                .map(|job| {
                    let params = TraceParams { t_scene_max: job.t_cut, ..config.params };
                    RayTracer::new(accel, scene, job.ray, params)
                })
                .collect(),
            states: chunk.iter().map(|_| RayTraceState::new()).collect(),
            compute: 0,
            stall: 0,
            index: w,
        }
    };

    loop {
        let mut any_work = false;
        for sm in 0..num_sms {
            // Admit warps up to the buffer depth.
            while resident[sm].len() < buffer_depth {
                let Some(w) = pending[sm].pop_front() else { break };
                resident[sm].push(make_exec(w));
            }
            // Advance every resident warp by one round.
            let mut finished: Vec<usize> = Vec::new();
            for (slot, warp) in resident[sm].iter_mut().enumerate() {
                any_work = true;
                let mut round_compute = 0u64;
                let mut round_stall = 0u64;
                for (tracer, state) in warp.tracers.iter_mut().zip(warp.states.iter_mut()) {
                    if tracer.is_done() {
                        continue;
                    }
                    let mut obs = sim.observer(sm, state);
                    let report = tracer.round(&mut obs);
                    let shader = shader_cycles(&report, obs.costs(), config);
                    round_compute = round_compute.max(obs.compute_cycles + shader);
                    round_stall = round_stall.max(obs.stall_cycles);
                    sim.stats.rounds += 1;
                    sim.stats.blended_gaussians += report.blended as u64;
                    sim.stats.eviction_writes += report.eviction_writes;
                    sim.stats.peak_checkpoint_entries = sim
                        .stats
                        .peak_checkpoint_entries
                        .max(tracer.peak_checkpoint_entries as u64);
                    sim.stats.peak_eviction_entries = sim
                        .stats
                        .peak_eviction_entries
                        .max(tracer.peak_eviction_entries as u64);
                }
                warp.compute += round_compute + round_overhead;
                warp.stall += round_stall;
                if warp.is_done() {
                    finished.push(slot);
                }
            }
            // Retire finished warps (back to front to keep indices valid).
            for &slot in finished.iter().rev() {
                let warp = resident[sm].swap_remove(slot);
                warp_times[warp.index] = (warp.compute, warp.stall);
                let base = warp.index * warp_size;
                for (i, tracer) in warp.tracers.iter().enumerate() {
                    blend_out[base + i] = *tracer.blend_state();
                }
                sim.stats.rays += warp.tracers.len() as u64;
            }
        }
        if !any_work {
            break;
        }
    }

    WarpResults { warp_times, blends: blend_out }
}

/// Shader-side cycles for one round per the cost model and isolation
/// toggles.
fn shader_cycles(report: &RoundReport, costs: &CostModel, config: &RenderConfig) -> u64 {
    let mut cycles = 0u64;
    if config.charge_sorting {
        let steps = (report.sort_steps + report.deferred_sort_steps) as f64;
        cycles += (steps
            * costs.kbuffer_sort_per_entry as f64
            * config.params.storage.sort_cost_factor()) as u64;
    }
    if config.charge_blending {
        cycles += report.blended as u64 * costs.blend_per_gaussian;
    }
    cycles += (report.eviction_writes + report.eviction_reads) * costs.eviction_entry;
    cycles
}

/// Functional (cost-free) render used by tests and examples: same
/// pipeline, no simulation.
pub fn render_functional(
    accel: &AccelStruct,
    scene: &GaussianScene,
    camera: &Camera,
    config: &RenderConfig,
) -> Image {
    let mut image = Image::new(camera.width, camera.height);
    for (pixel, ray) in camera.rays() {
        let mut tracer = RayTracer::new(accel, scene, ray, config.params);
        let blend = tracer.run_to_completion(&mut grtx_bvh::NullObserver);
        image.set_pixel(pixel, blend.over_background(config.background));
    }
    image
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::tracer::TraceMode;
    use grtx_bvh::{BoundingPrimitive, LayoutConfig};
    use grtx_scene::{CameraModel, SceneKind, synth::generate_scene};

    fn tiny_setup() -> (GaussianScene, AccelStruct, Camera) {
        let scene = generate_scene(SceneKind::Train.profile().with_gaussian_budget(400), 7);
        let accel =
            AccelStruct::build(&scene, BoundingPrimitive::UnitSphere, true, &LayoutConfig::default());
        let camera = Camera::look_at(
            24,
            24,
            CameraModel::Pinhole { fov_y: 0.9 },
            SceneKind::Train.profile().camera_eye(),
            grtx_math::Vec3::ZERO,
            grtx_math::Vec3::Y,
        );
        (scene, accel, camera)
    }

    #[test]
    fn simulated_render_produces_nonzero_image_and_time() {
        let (scene, accel, camera) = tiny_setup();
        let report = render_simulated(
            &accel,
            &scene,
            &camera,
            None,
            &RenderConfig::default(),
            GpuConfig::default(),
        );
        assert!(report.time_ms > 0.0);
        assert!(report.stats.node_fetches_total > 0);
        assert!(report.image.mean_luminance() > 0.0, "image must not be black");
        assert_eq!(report.stats.rays, 24 * 24);
        assert!(report.secondary.is_none());
    }

    #[test]
    fn simulated_and_functional_images_match() {
        let (scene, accel, camera) = tiny_setup();
        let config = RenderConfig::default();
        let sim_img =
            render_simulated(&accel, &scene, &camera, None, &config, GpuConfig::default()).image;
        let fun_img = render_functional(&accel, &scene, &camera, &config);
        assert_eq!(sim_img.psnr(&fun_img), f64::INFINITY, "cost model must not change pixels");
    }

    #[test]
    fn checkpoint_mode_is_faster_and_identical() {
        let (scene, accel, camera) = tiny_setup();
        let base = RenderConfig {
            params: TraceParams { k: 8, mode: TraceMode::MultiRoundRestart, ..Default::default() },
            ..Default::default()
        };
        let ckpt = RenderConfig {
            params: TraceParams { k: 8, mode: TraceMode::MultiRoundCheckpoint, ..Default::default() },
            ..Default::default()
        };
        let r_base = render_simulated(&accel, &scene, &camera, None, &base, GpuConfig::default());
        let r_ckpt = render_simulated(&accel, &scene, &camera, None, &ckpt, GpuConfig::default());
        assert_eq!(
            r_base.image.psnr(&r_ckpt.image),
            f64::INFINITY,
            "checkpointing must not change the image"
        );
        assert!(
            r_ckpt.stats.node_fetches_total <= r_base.stats.node_fetches_total,
            "checkpointing must not increase node fetches ({} vs {})",
            r_ckpt.stats.node_fetches_total,
            r_base.stats.node_fetches_total
        );
    }

    #[test]
    fn effects_produce_secondary_breakdown() {
        let (scene, accel, camera) = tiny_setup();
        let effects = EffectObjects::place_in(SceneKind::Train.profile().half_extent, 3);
        let report = render_simulated(
            &accel,
            &scene,
            &camera,
            Some(&effects),
            &RenderConfig::default(),
            GpuConfig::default(),
        );
        if let Some(s) = report.secondary {
            assert!(s.secondary_rays > 0);
            assert!(s.primary_cycles > 0);
            assert!(s.secondary_cycles > 0);
        }
        // (Objects may fall outside this tiny frustum; both outcomes are
        // legal, but the render must still complete.)
        assert!(report.time_ms > 0.0);
    }

    #[test]
    fn disabling_cost_charges_reduces_time_not_image() {
        let (scene, accel, camera) = tiny_setup();
        let full = RenderConfig::default();
        let traversal_only =
            RenderConfig { charge_sorting: false, charge_blending: false, ..Default::default() };
        let r_full = render_simulated(&accel, &scene, &camera, None, &full, GpuConfig::default());
        let r_trav =
            render_simulated(&accel, &scene, &camera, None, &traversal_only, GpuConfig::default());
        assert!(r_trav.cycles <= r_full.cycles);
        assert_eq!(r_full.image.psnr(&r_trav.image), f64::INFINITY);
    }
}
