//! Render configuration/report types and the simulated whole-image
//! entry point.
//!
//! Rays are packed into 32-wide warps in row-major order (coherent
//! primaries, as raygen launches do) and scheduled round-robin across
//! SMs. Within a warp, rounds run in lockstep: the warp's round time is
//! the slowest lane's time plus the per-round launch/sync overhead —
//! this is the straggler effect that penalizes very small `k` (Fig. 18).
//!
//! Execution lives in [`crate::engine::RenderEngine`], which simulates
//! each SM as an independent fragment and fans fragments out over host
//! threads; [`render_simulated`] is the convenience wrapper running on
//! all available cores (results are bit-identical at any thread count).

use crate::engine::RenderEngine;
use crate::image::Image;
use crate::tracer::{RayTracer, RoundReport, TraceParams};
use grtx_bvh::AccelStruct;
use grtx_math::Vec3;
use grtx_scene::{Camera, EffectObjects, GaussianScene};
use grtx_sim::config::CostModel;
use grtx_sim::{GpuConfig, SimStats};

/// Whole-render configuration.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct RenderConfig {
    /// Per-ray tracing parameters.
    pub params: TraceParams,
    /// Charge any-hit sorting cycles (disabled to isolate traversal,
    /// Fig. 4b).
    pub charge_sorting: bool,
    /// Charge blending cycles (disabled to isolate traversal+sorting,
    /// Fig. 4b).
    pub charge_blending: bool,
    /// Trace coherent primary rays as 4-ray packets sharing wide-node
    /// box tests ([`grtx_bvh::RayPacket4`]). Bit-identical to the
    /// single-ray path — images, cycles, and all statistics are
    /// unchanged; only host-side kernel work is amortized. Secondary
    /// (reflection/refraction) rays are never packetized.
    pub ray_packets: bool,
    /// Background color composited through remaining transmittance.
    pub background: Vec3,
}

impl Default for RenderConfig {
    fn default() -> Self {
        Self {
            params: TraceParams::default(),
            charge_sorting: true,
            charge_blending: true,
            ray_packets: true,
            background: Vec3::ZERO,
        }
    }
}

/// Primary/secondary cycle split for the Fig. 23 experiment.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SecondaryBreakdown {
    /// Makespan of the primary-ray warps.
    pub primary_cycles: u64,
    /// Makespan of the secondary-ray warps.
    pub secondary_cycles: u64,
    /// Number of secondary rays spawned.
    pub secondary_rays: u64,
}

/// Everything an experiment reads from one simulated render.
#[derive(Debug, Clone)]
pub struct RenderReport {
    /// Render time in milliseconds at the configured clock.
    pub time_ms: f64,
    /// Total cycles (scheduler makespan).
    pub cycles: u64,
    /// Event counters.
    pub stats: SimStats,
    /// L1 hit rate over structure fetches (Fig. 16).
    pub l1_hit_rate: f64,
    /// L2 accesses from structure fetches (Fig. 17).
    pub l2_accesses: u64,
    /// DRAM accesses from structure fetches.
    pub dram_accesses: u64,
    /// Average node-fetch latency in cycles (Fig. 15).
    pub avg_fetch_latency: f64,
    /// Unique structure bytes touched (Table II footprint row).
    pub footprint_bytes: u64,
    /// The rendered image.
    pub image: Image,
    /// Present when effect objects spawned secondary rays.
    pub secondary: Option<SecondaryBreakdown>,
}

/// Renders a camera view through the simulated GPU on all available
/// cores.
///
/// Convenience wrapper over [`RenderEngine`]; thread count never changes
/// results, so callers that need an explicit count (or a guaranteed
/// serial path) construct the engine directly.
///
/// With `effects`, rays hitting the glass sphere / mirror spawn secondary
/// rays whose Gaussian traversal is simulated separately (Fig. 23) and
/// composited into the image.
pub fn render_simulated(
    accel: &AccelStruct,
    scene: &GaussianScene,
    camera: &Camera,
    effects: Option<&EffectObjects>,
    config: &RenderConfig,
    gpu: GpuConfig,
) -> RenderReport {
    RenderEngine::new(gpu).render(accel, scene, camera, effects, config)
}

/// Shader-side cycles for one round per the cost model and isolation
/// toggles.
pub(crate) fn shader_cycles(report: &RoundReport, costs: &CostModel, config: &RenderConfig) -> u64 {
    let mut cycles = 0u64;
    if config.charge_sorting {
        let steps = (report.sort_steps + report.deferred_sort_steps) as f64;
        cycles += (steps
            * costs.kbuffer_sort_per_entry as f64
            * config.params.storage.sort_cost_factor()) as u64;
    }
    if config.charge_blending {
        cycles += report.blended as u64 * costs.blend_per_gaussian;
    }
    cycles += (report.eviction_writes + report.eviction_reads) * costs.eviction_entry;
    cycles
}

/// Functional (cost-free) render used by tests and examples: same
/// pipeline, no simulation.
///
/// Honors [`RenderConfig::ray_packets`]: quads of four consecutive
/// primary rays (row-major, the same tiling raygen launches use) share
/// one [`grtx_bvh::RayPacket4`]. The image is bit-identical either way.
pub fn render_functional(
    accel: &AccelStruct,
    scene: &GaussianScene,
    camera: &Camera,
    config: &RenderConfig,
) -> Image {
    use std::cell::RefCell;
    use std::rc::Rc;

    // Background-filled canvas: fisheye cameras skip pixels outside the
    // image circle, and those must show the background, not black.
    let mut image = Image::filled(camera.width, camera.height, config.background);
    let jobs: Vec<(usize, grtx_math::Ray)> = camera.rays().collect();
    for quad in jobs.chunks(4) {
        let packet = (config.ray_packets && quad.len() == 4).then(|| {
            Rc::new(RefCell::new(grtx_bvh::RayPacket4::new([
                &quad[0].1, &quad[1].1, &quad[2].1, &quad[3].1,
            ])))
        });
        for (lane, &(pixel, ray)) in quad.iter().enumerate() {
            let mut tracer = RayTracer::new(accel, scene, ray, config.params);
            if let Some(packet) = &packet {
                tracer.attach_packet(packet.clone(), lane);
            }
            let blend = tracer.run_to_completion(&mut grtx_bvh::NullObserver);
            image.set_pixel(pixel, blend.over_background(config.background));
        }
    }
    image
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::tracer::TraceMode;
    use grtx_bvh::{BoundingPrimitive, LayoutConfig};
    use grtx_scene::{synth::generate_scene, CameraModel, SceneKind};

    fn tiny_setup() -> (GaussianScene, AccelStruct, Camera) {
        let scene = generate_scene(SceneKind::Train.profile().with_gaussian_budget(400), 7);
        let accel = AccelStruct::build(
            &scene,
            BoundingPrimitive::UnitSphere,
            true,
            &LayoutConfig::default(),
        );
        let camera = Camera::look_at(
            24,
            24,
            CameraModel::Pinhole { fov_y: 0.9 },
            SceneKind::Train.profile().camera_eye(),
            grtx_math::Vec3::ZERO,
            grtx_math::Vec3::Y,
        );
        (scene, accel, camera)
    }

    #[test]
    fn simulated_render_produces_nonzero_image_and_time() {
        let (scene, accel, camera) = tiny_setup();
        let report = render_simulated(
            &accel,
            &scene,
            &camera,
            None,
            &RenderConfig::default(),
            GpuConfig::default(),
        );
        assert!(report.time_ms > 0.0);
        assert!(report.stats.node_fetches_total > 0);
        assert!(
            report.image.mean_luminance() > 0.0,
            "image must not be black"
        );
        assert_eq!(report.stats.rays, 24 * 24);
        assert!(report.secondary.is_none());
    }

    #[test]
    fn simulated_and_functional_images_match() {
        let (scene, accel, camera) = tiny_setup();
        let config = RenderConfig::default();
        let sim_img =
            render_simulated(&accel, &scene, &camera, None, &config, GpuConfig::default()).image;
        let fun_img = render_functional(&accel, &scene, &camera, &config);
        assert_eq!(
            sim_img.psnr(&fun_img),
            f64::INFINITY,
            "cost model must not change pixels"
        );
    }

    #[test]
    fn checkpoint_mode_is_faster_and_identical() {
        let (scene, accel, camera) = tiny_setup();
        let base = RenderConfig {
            params: TraceParams {
                k: 8,
                mode: TraceMode::MultiRoundRestart,
                ..Default::default()
            },
            ..Default::default()
        };
        let ckpt = RenderConfig {
            params: TraceParams {
                k: 8,
                mode: TraceMode::MultiRoundCheckpoint,
                ..Default::default()
            },
            ..Default::default()
        };
        let r_base = render_simulated(&accel, &scene, &camera, None, &base, GpuConfig::default());
        let r_ckpt = render_simulated(&accel, &scene, &camera, None, &ckpt, GpuConfig::default());
        assert_eq!(
            r_base.image.psnr(&r_ckpt.image),
            f64::INFINITY,
            "checkpointing must not change the image"
        );
        assert!(
            r_ckpt.stats.node_fetches_total <= r_base.stats.node_fetches_total,
            "checkpointing must not increase node fetches ({} vs {})",
            r_ckpt.stats.node_fetches_total,
            r_base.stats.node_fetches_total
        );
    }

    #[test]
    fn effects_produce_secondary_breakdown() {
        let (scene, accel, camera) = tiny_setup();
        let effects = EffectObjects::place_in(SceneKind::Train.profile().half_extent, 3);
        let report = render_simulated(
            &accel,
            &scene,
            &camera,
            Some(&effects),
            &RenderConfig::default(),
            GpuConfig::default(),
        );
        if let Some(s) = report.secondary {
            assert!(s.secondary_rays > 0);
            assert!(s.primary_cycles > 0);
            assert!(s.secondary_cycles > 0);
        }
        // (Objects may fall outside this tiny frustum; both outcomes are
        // legal, but the render must still complete.)
        assert!(report.time_ms > 0.0);
    }

    #[test]
    fn disabling_cost_charges_reduces_time_not_image() {
        let (scene, accel, camera) = tiny_setup();
        let full = RenderConfig::default();
        let traversal_only = RenderConfig {
            charge_sorting: false,
            charge_blending: false,
            ..Default::default()
        };
        let r_full = render_simulated(&accel, &scene, &camera, None, &full, GpuConfig::default());
        let r_trav = render_simulated(
            &accel,
            &scene,
            &camera,
            None,
            &traversal_only,
            GpuConfig::default(),
        );
        assert!(r_trav.cycles <= r_full.cycles);
        assert_eq!(r_full.image.psnr(&r_trav.image), f64::INFINITY);
    }
}
