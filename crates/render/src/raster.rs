//! Tile-based 3DGS rasterizer — the Fig. 4a reference point.
//!
//! Implements the standard 3D Gaussian Splatting pipeline: project each
//! Gaussian to a 2D splat via the EWA Jacobian, bin splats into 16×16
//! pixel tiles, depth-sort per tile, and alpha-blend front-to-back per
//! pixel with early termination (Equation 1). Runs on the same simulated
//! GPU budget (a throughput cost model over the Table I configuration) so
//! its render time is comparable with the ray tracer's.

use crate::blend::MIN_BLEND_ALPHA;
use crate::image::Image;
use grtx_fault::GrtxError;
use grtx_math::{Mat3, Vec3};
use grtx_scene::{Camera, CameraModel, GaussianScene};
use grtx_sim::GpuConfig;

/// Rasterizer parameters.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct RasterConfig {
    /// Square tile edge in pixels (3DGS uses 16).
    pub tile: u32,
    /// Early termination transmittance threshold.
    pub min_transmittance: f32,
    /// Background color.
    pub background: Vec3,
}

impl Default for RasterConfig {
    fn default() -> Self {
        Self {
            tile: 16,
            min_transmittance: 0.01,
            background: Vec3::ZERO,
        }
    }
}

/// Rasterization result with its simulated cost.
#[derive(Debug, Clone)]
pub struct RasterReport {
    /// Render time in milliseconds.
    pub time_ms: f64,
    /// Modeled GPU cycles.
    pub cycles: u64,
    /// The rendered image.
    pub image: Image,
    /// Splats surviving projection/culling.
    pub splats: u64,
    /// Pixel–splat pairs evaluated (the tile-blend workload).
    pub pairs_evaluated: u64,
}

struct Splat {
    u: f32,
    v: f32,
    // Inverse 2D covariance (symmetric): [a b; b c].
    inv_a: f32,
    inv_b: f32,
    inv_c: f32,
    depth: f32,
    opacity: f32,
    color: Vec3,
}

/// Rasterizes a scene with the 3DGS pipeline.
///
/// # Panics
///
/// Panics for non-pinhole cameras — exactly the limitation that
/// motivates ray-traced Gaussians in the paper.
/// [`try_render_rasterized`] reports the same limitation as a
/// [`GrtxError::InvalidCamera`] instead.
pub fn render_rasterized(
    scene: &GaussianScene,
    camera: &Camera,
    config: &RasterConfig,
    gpu: &GpuConfig,
) -> RasterReport {
    try_render_rasterized(scene, camera, config, gpu).unwrap_or_else(|e| panic!("{e}"))
}

/// Fallible [`render_rasterized`]: returns
/// [`GrtxError::InvalidCamera`] for projection models the tile
/// rasterizer cannot handle, instead of panicking.
pub fn try_render_rasterized(
    scene: &GaussianScene,
    camera: &Camera,
    config: &RasterConfig,
    gpu: &GpuConfig,
) -> Result<RasterReport, GrtxError> {
    let CameraModel::Pinhole { fov_y } = camera.model() else {
        return Err(GrtxError::InvalidCamera {
            reason:
                "rasterization supports only pinhole cameras (use the ray tracer for distorted lenses)"
                    .to_string(),
        });
    };
    let (width, height) = (camera.width, camera.height);
    let focal = height as f32 / (2.0 * (fov_y * 0.5).tan());
    let (cx, cy) = (width as f32 / 2.0, height as f32 / 2.0);
    // World-to-camera with z' pointing into the screen.
    let w2c = camera.basis().transpose();
    let flip = Mat3::from_diagonal(Vec3::new(1.0, 1.0, -1.0));
    let w2c_flipped = flip.mul_mat3(&w2c);

    // 1) Projection / preprocessing.
    let mut splats: Vec<Splat> = Vec::with_capacity(scene.len());
    for g in scene.gaussians() {
        let q = w2c_flipped.mul_vec3(g.mean - camera.eye());
        if q.z < 0.05 {
            continue; // Behind or grazing the camera plane.
        }
        let u = focal * q.x / q.z + cx;
        let v = cy - focal * q.y / q.z;

        // EWA: Σ2D = J W Σ Wᵀ Jᵀ with the standard local-affine Jacobian.
        let m = g.covariance_factor();
        let sigma_cam = w2c_flipped
            .mul_mat3(&m.mul_self_transpose())
            .mul_mat3(&w2c_flipped.transpose());
        let (jx, jz) = (focal / q.z, -focal / (q.z * q.z));
        // Row vectors of J (2×3): [jx, 0, jz*q.x], [0, -jx, -jz*q.y].
        let j0 = Vec3::new(jx, 0.0, jz * q.x);
        let j1 = Vec3::new(0.0, -jx, -jz * q.y);
        let s_j0 = sigma_cam.mul_vec3(j0);
        let s_j1 = sigma_cam.mul_vec3(j1);
        // Low-pass of 0.3 px² as in 3DGS.
        let a = j0.dot(s_j0) + 0.3;
        let b = j0.dot(s_j1);
        let c = j1.dot(s_j1) + 0.3;
        let det = a * c - b * b;
        if det <= 0.0 {
            continue;
        }
        let inv_det = 1.0 / det;
        splats.push(Splat {
            u,
            v,
            inv_a: c * inv_det,
            inv_b: -b * inv_det,
            inv_c: a * inv_det,
            depth: q.z,
            opacity: g.opacity,
            color: g.color((g.mean - camera.eye()).normalized()),
        });
    }

    // 2) Tile binning.
    let tile = config.tile.max(1);
    let tiles_x = width.div_ceil(tile);
    let tiles_y = height.div_ceil(tile);
    let mut bins: Vec<Vec<(f32, u32)>> = vec![Vec::new(); (tiles_x * tiles_y) as usize];
    for (i, s) in splats.iter().enumerate() {
        // 3σ radius from the max eigenvalue of Σ2D (invert the inverse).
        let det_inv = s.inv_a * s.inv_c - s.inv_b * s.inv_b;
        if det_inv <= 0.0 {
            continue;
        }
        let (sa, sc) = (s.inv_c / det_inv, s.inv_a / det_inv);
        let sb = -s.inv_b / det_inv;
        let mid = 0.5 * (sa + sc);
        let eig_max = mid + ((mid - sc) * (mid - sc) + sb * sb).max(0.0).sqrt();
        let radius = 3.0 * eig_max.max(0.0).sqrt();
        let x0 = (((s.u - radius) / tile as f32).floor().max(0.0)) as u32;
        let y0 = (((s.v - radius) / tile as f32).floor().max(0.0)) as u32;
        let x1 = (((s.u + radius) / tile as f32).ceil() as u32).min(tiles_x.saturating_sub(1) + 1);
        let y1 = (((s.v + radius) / tile as f32).ceil() as u32).min(tiles_y.saturating_sub(1) + 1);
        for ty in y0..y1.min(tiles_y) {
            for tx in x0..x1.min(tiles_x) {
                bins[(ty * tiles_x + tx) as usize].push((s.depth, i as u32));
            }
        }
    }

    // 3) Global depth sort (per tile — 3DGS sorts (tile, depth) pairs).
    let mut sort_pairs = 0u64;
    for bin in &mut bins {
        let n = bin.len() as u64;
        if n > 1 {
            sort_pairs += n * (64 - (n - 1).leading_zeros() as u64);
        }
        bin.sort_by(|a, b| a.0.total_cmp(&b.0).then(a.1.cmp(&b.1)));
    }

    // 4) Per-pixel front-to-back blending with ERT.
    let mut image = Image::new(width, height);
    let mut pairs_evaluated = 0u64;
    for ty in 0..tiles_y {
        for tx in 0..tiles_x {
            let bin = &bins[(ty * tiles_x + tx) as usize];
            if bin.is_empty() {
                continue;
            }
            for py in (ty * tile)..((ty + 1) * tile).min(height) {
                for px in (tx * tile)..((tx + 1) * tile).min(width) {
                    let (fx, fy) = (px as f32 + 0.5, py as f32 + 0.5);
                    let mut color = Vec3::ZERO;
                    let mut transmittance = 1.0f32;
                    for &(_, si) in bin {
                        pairs_evaluated += 1;
                        let s = &splats[si as usize];
                        let (dx, dy) = (fx - s.u, fy - s.v);
                        let power = -0.5
                            * (s.inv_a * dx * dx + 2.0 * s.inv_b * dx * dy + s.inv_c * dy * dy);
                        if power < -6.0 {
                            continue;
                        }
                        let alpha = (s.opacity * power.exp()).min(0.999);
                        if alpha < MIN_BLEND_ALPHA {
                            continue;
                        }
                        color += s.color * (alpha * transmittance);
                        transmittance *= 1.0 - alpha;
                        if transmittance < config.min_transmittance {
                            break;
                        }
                    }
                    image.set_pixel(
                        camera.pixel_index(px, py),
                        color + config.background * transmittance,
                    );
                }
            }
        }
    }

    // 5) Throughput cost model on the Table I GPU: projection, sorting,
    //    and tile blending are embarrassingly parallel shader work.
    const PROJECT_CYCLES: u64 = 180;
    const PAIR_CYCLES: u64 = 5;
    const SORT_STEP_CYCLES: u64 = 2;
    let work = scene.len() as u64 * PROJECT_CYCLES
        + pairs_evaluated * PAIR_CYCLES
        + sort_pairs * SORT_STEP_CYCLES;
    let parallelism = (gpu.num_sms * gpu.simt_lanes) as f64 * 0.6;
    let cycles = (work as f64 / parallelism).ceil() as u64;
    let time_ms = cycles as f64 / (gpu.clock_mhz * 1_000.0);

    Ok(RasterReport {
        time_ms,
        cycles,
        image,
        splats: splats.len() as u64,
        pairs_evaluated,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use grtx_scene::{synth::generate_scene, Gaussian, SceneKind};

    fn camera(w: u32, h: u32) -> Camera {
        Camera::look_at(
            w,
            h,
            CameraModel::Pinhole { fov_y: 0.9 },
            Vec3::new(0.0, 0.0, 8.0),
            Vec3::ZERO,
            Vec3::Y,
        )
    }

    #[test]
    fn single_gaussian_lands_at_image_center() {
        let scene: GaussianScene = vec![Gaussian::isotropic(
            Vec3::ZERO,
            0.4,
            0.95,
            Vec3::new(1.0, 0.0, 0.0),
        )]
        .into_iter()
        .collect();
        let cam = camera(64, 64);
        let report = render_rasterized(
            &scene,
            &cam,
            &RasterConfig::default(),
            &GpuConfig::default(),
        );
        let center = report.image.pixel((32 * 64 + 32) as usize);
        assert!(center.x > 0.5, "center pixel should be red, got {center}");
        let corner = report.image.pixel(0);
        assert!(corner.x < 0.05, "corner should stay dark, got {corner}");
    }

    #[test]
    fn gaussian_behind_camera_is_culled() {
        let scene: GaussianScene = vec![Gaussian::isotropic(
            Vec3::new(0.0, 0.0, 20.0),
            0.4,
            0.95,
            Vec3::ONE,
        )]
        .into_iter()
        .collect();
        let cam = camera(32, 32);
        let report = render_rasterized(
            &scene,
            &cam,
            &RasterConfig::default(),
            &GpuConfig::default(),
        );
        assert_eq!(report.splats, 0);
        assert_eq!(report.image.mean_luminance(), 0.0);
    }

    #[test]
    fn raster_roughly_matches_ray_tracer_on_simple_scene() {
        // Isotropic, well-separated Gaussians: both renderers implement
        // Equation 1, so images should agree closely.
        let scene: GaussianScene = (0..5)
            .map(|i| {
                Gaussian::isotropic(
                    Vec3::new(i as f32 - 2.0, 0.0, -(i as f32) * 0.5),
                    0.3,
                    0.8,
                    Vec3::new(0.2 * i as f32, 0.5, 1.0 - 0.2 * i as f32),
                )
            })
            .collect();
        let cam = camera(48, 48);
        let raster = render_rasterized(
            &scene,
            &cam,
            &RasterConfig::default(),
            &GpuConfig::default(),
        );
        let accel = grtx_bvh::AccelStruct::build(
            &scene,
            grtx_bvh::BoundingPrimitive::UnitSphere,
            true,
            &grtx_bvh::LayoutConfig::default(),
        );
        let rt = crate::renderer::render_functional(
            &accel,
            &scene,
            &cam,
            &crate::renderer::RenderConfig::default(),
        );
        let psnr = raster.image.psnr(&rt);
        assert!(
            psnr > 22.0,
            "raster and RT images diverge: PSNR = {psnr:.1} dB"
        );
    }

    #[test]
    fn cost_scales_with_scene_size() {
        let small = generate_scene(SceneKind::Room.profile().with_gaussian_budget(200), 1);
        let large = generate_scene(SceneKind::Room.profile().with_gaussian_budget(2000), 1);
        let cam = Camera::for_profile(&SceneKind::Room.profile().with_resolution(64, 64));
        let cfg = RasterConfig::default();
        let gpu = GpuConfig::default();
        let r_small = render_rasterized(&small, &cam, &cfg, &gpu);
        let r_large = render_rasterized(&large, &cam, &cfg, &gpu);
        assert!(r_large.cycles > r_small.cycles);
    }

    #[test]
    #[should_panic(expected = "pinhole")]
    fn fisheye_is_rejected() {
        let scene = GaussianScene::new(vec![]);
        let cam = Camera::look_at(
            8,
            8,
            CameraModel::Fisheye { max_theta: 1.0 },
            Vec3::new(0.0, 0.0, 5.0),
            Vec3::ZERO,
            Vec3::Y,
        );
        let _ = render_rasterized(
            &scene,
            &cam,
            &RasterConfig::default(),
            &GpuConfig::default(),
        );
    }
}
