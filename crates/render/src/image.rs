//! Minimal image container with comparison helpers and PPM output.

use grtx_math::Vec3;
use std::io::Write;

/// An RGB float image.
#[derive(Debug, Clone, PartialEq)]
pub struct Image {
    /// Width in pixels.
    pub width: u32,
    /// Height in pixels.
    pub height: u32,
    pixels: Vec<Vec3>,
}

impl Image {
    /// Creates a black image.
    pub fn new(width: u32, height: u32) -> Self {
        Self::filled(width, height, Vec3::ZERO)
    }

    /// Creates an image with every pixel set to `color`.
    ///
    /// Renderers whose cameras may skip pixels (fisheye rays outside the
    /// image circle) start from a background-filled canvas so unwritten
    /// pixels keep the configured background instead of black.
    pub fn filled(width: u32, height: u32, color: Vec3) -> Self {
        Self {
            width,
            height,
            pixels: vec![color; Self::linear_len(width, height)],
        }
    }

    /// Pixel count of a `width` × `height` image, widened to `usize`
    /// before multiplying — `u32` arithmetic wraps for images of
    /// 65536 × 65536 and beyond.
    pub fn linear_len(width: u32, height: u32) -> usize {
        width as usize * height as usize
    }

    /// Pixel accessor by linear index.
    ///
    /// # Panics
    ///
    /// Panics if `index` is out of bounds.
    pub fn pixel(&self, index: usize) -> Vec3 {
        self.pixels[index]
    }

    /// Sets a pixel by linear index.
    ///
    /// # Panics
    ///
    /// Panics if `index` is out of bounds.
    pub fn set_pixel(&mut self, index: usize, color: Vec3) {
        self.pixels[index] = color;
    }

    /// All pixels, row-major.
    pub fn pixels(&self) -> &[Vec3] {
        &self.pixels
    }

    /// Mean squared error against another image.
    ///
    /// # Panics
    ///
    /// Panics if dimensions differ.
    pub fn mse(&self, other: &Image) -> f64 {
        assert_eq!(
            (self.width, self.height),
            (other.width, other.height),
            "image size mismatch"
        );
        if self.pixels.is_empty() {
            return 0.0;
        }
        let sum: f64 = self
            .pixels
            .iter()
            .zip(&other.pixels)
            .map(|(a, b)| {
                let d = *a - *b;
                (d.dot(d) / 3.0) as f64
            })
            .sum();
        sum / self.pixels.len() as f64
    }

    /// Peak signal-to-noise ratio in dB against a reference (assumes
    /// values in [0, 1]; identical images report infinity).
    pub fn psnr(&self, other: &Image) -> f64 {
        let mse = self.mse(other);
        if mse <= 0.0 {
            f64::INFINITY
        } else {
            10.0 * (1.0 / mse).log10()
        }
    }

    /// Mean luminance (sanity metric: a non-degenerate render is neither
    /// all-black nor all-white).
    pub fn mean_luminance(&self) -> f64 {
        if self.pixels.is_empty() {
            return 0.0;
        }
        let sum: f64 = self
            .pixels
            .iter()
            .map(|p| (0.2126 * p.x + 0.7152 * p.y + 0.0722 * p.z) as f64)
            .sum();
        sum / self.pixels.len() as f64
    }

    /// Writes a binary PPM (P6) file, clamping to [0, 1].
    ///
    /// # Errors
    ///
    /// Returns any I/O error from writing the file.
    pub fn write_ppm(&self, path: &std::path::Path) -> std::io::Result<()> {
        let mut file = std::io::BufWriter::new(std::fs::File::create(path)?);
        write!(file, "P6\n{} {}\n255\n", self.width, self.height)?;
        let mut buf = Vec::with_capacity(self.pixels.len() * 3);
        for p in &self.pixels {
            for c in [p.x, p.y, p.z] {
                buf.push((c.clamp(0.0, 1.0) * 255.0 + 0.5) as u8);
            }
        }
        file.write_all(&buf)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn new_image_is_black() {
        let img = Image::new(4, 3);
        assert_eq!(img.pixels().len(), 12);
        assert_eq!(img.mean_luminance(), 0.0);
    }

    #[test]
    fn filled_image_holds_its_color_everywhere() {
        let bg = Vec3::new(0.1, 0.4, 0.7);
        let img = Image::filled(3, 5, bg);
        assert!(img.pixels().iter().all(|&p| p == bg));
    }

    /// Regression: the pixel-count arithmetic used to run in `u32`
    /// (`(width * height) as usize`), wrapping — and panicking under
    /// debug overflow checks — for ≥ 65536 × 65536 images. The widened
    /// arithmetic must report the true count past `u32::MAX` (the
    /// allocation itself would need ~51 GiB, so this checks the sizing
    /// path only).
    #[test]
    fn linear_len_survives_products_above_u32_max() {
        let len = Image::linear_len(65_536, 65_537);
        assert_eq!(len, 65_536usize * 65_537usize);
        assert!(len > u32::MAX as usize);
    }

    #[test]
    fn identical_images_have_infinite_psnr() {
        let mut img = Image::new(2, 2);
        img.set_pixel(0, Vec3::new(0.5, 0.2, 0.9));
        assert_eq!(img.psnr(&img.clone()), f64::INFINITY);
    }

    #[test]
    fn mse_detects_differences() {
        let a = Image::new(2, 2);
        let mut b = Image::new(2, 2);
        b.set_pixel(3, Vec3::ONE);
        assert!(a.mse(&b) > 0.0);
        assert!(a.psnr(&b) < 20.0);
    }

    #[test]
    #[should_panic(expected = "size mismatch")]
    fn mse_rejects_size_mismatch() {
        let _ = Image::new(2, 2).mse(&Image::new(3, 2));
    }

    #[test]
    fn ppm_round_trip_header() {
        let img = Image::new(5, 7);
        let dir = std::env::temp_dir().join("grtx_test_ppm");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("img.ppm");
        img.write_ppm(&path).unwrap();
        let data = std::fs::read(&path).unwrap();
        assert!(data.starts_with(b"P6\n5 7\n255\n"));
        assert_eq!(data.len(), 11 + 5 * 7 * 3);
    }
}
