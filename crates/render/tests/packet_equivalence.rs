//! The ray-packet contract: tracing coherent primary rays as 4-ray
//! packets ([`grtx_bvh::RayPacket4`]) is **bit-identical** to the
//! single-ray path — images, cycle counts, and every statistic — on
//! every camera model and at every thread count. Packets amortize
//! host-side kernel work only; they must never change a result.

use grtx_bvh::{AccelStruct, BoundingPrimitive, LayoutConfig};
use grtx_render::engine::RenderEngine;
use grtx_render::renderer::{render_functional, RenderConfig};
use grtx_scene::{synth::generate_scene, Camera, CameraModel, GaussianScene, SceneKind};
use grtx_sim::GpuConfig;

fn setup(model: CameraModel) -> (GaussianScene, AccelStruct, Camera) {
    let scene = generate_scene(SceneKind::Train.profile().with_gaussian_budget(500), 11);
    let accel = AccelStruct::build(
        &scene,
        BoundingPrimitive::UnitSphere,
        true,
        &LayoutConfig::default(),
    );
    let camera = Camera::look_at(
        26,
        22,
        model,
        SceneKind::Train.profile().camera_eye(),
        grtx_math::Vec3::ZERO,
        grtx_math::Vec3::Y,
    );
    (scene, accel, camera)
}

fn configs() -> (RenderConfig, RenderConfig) {
    let packets = RenderConfig {
        ray_packets: true,
        ..Default::default()
    };
    let single = RenderConfig {
        ray_packets: false,
        ..Default::default()
    };
    (packets, single)
}

/// Functional (cost-free) path: packets on vs off, pinhole and fisheye.
/// 26×22 is deliberately not a multiple of 4, so the trailing
/// partial quad of the row-major job list exercises the single-ray
/// fallback inside a packet-enabled render.
#[test]
fn functional_render_is_bit_identical_with_packets() {
    for model in [
        CameraModel::Pinhole { fov_y: 0.9 },
        CameraModel::Fisheye { max_theta: 1.4 },
    ] {
        let (scene, accel, camera) = setup(model);
        let (packets, single) = configs();
        let img_packet = render_functional(&accel, &scene, &camera, &packets);
        let img_single = render_functional(&accel, &scene, &camera, &single);
        assert_eq!(
            img_packet.pixels(),
            img_single.pixels(),
            "{model:?}: packet and single-ray functional images must match bitwise"
        );
    }
}

/// Simulated path through the engine: packets on vs off must leave the
/// image, cycles, and every statistic untouched, at 1 and 4 host
/// threads (packet-mates always share a thread, so thread count and
/// packets must compose).
#[test]
fn simulated_render_is_bit_identical_with_packets_at_any_thread_count() {
    for model in [
        CameraModel::Pinhole { fov_y: 0.9 },
        CameraModel::Fisheye { max_theta: 1.4 },
    ] {
        let (scene, accel, camera) = setup(model);
        let (packets, single) = configs();
        let baseline = RenderEngine::new(GpuConfig::default())
            .with_threads(1)
            .render(&accel, &scene, &camera, None, &single);
        for threads in [1usize, 4] {
            let report = RenderEngine::new(GpuConfig::default())
                .with_threads(threads)
                .render(&accel, &scene, &camera, None, &packets);
            let what = format!("{model:?} threads={threads}");
            assert_eq!(
                report.image.pixels(),
                baseline.image.pixels(),
                "{what}: image bytes"
            );
            assert_eq!(report.cycles, baseline.cycles, "{what}: cycles");
            assert_eq!(report.stats, baseline.stats, "{what}: SimStats");
            assert_eq!(
                report.l2_accesses, baseline.l2_accesses,
                "{what}: L2 accesses"
            );
            assert_eq!(
                report.dram_accesses, baseline.dram_accesses,
                "{what}: DRAM accesses"
            );
            assert_eq!(
                report.footprint_bytes, baseline.footprint_bytes,
                "{what}: footprint"
            );
        }
    }
}
