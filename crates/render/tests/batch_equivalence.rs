//! The batched multi-camera engine's contract: `render_batch` of N
//! cameras is bit-identical, per camera, to N standalone `render()`
//! calls — on images, cycles, statistics, and footprints — at every
//! thread count, for pinhole and fisheye views, with and without
//! secondary-ray effect objects.

use grtx_bvh::{AccelStruct, BoundingPrimitive, LayoutConfig};
use grtx_math::Vec3;
use grtx_render::renderer::RenderConfig;
use grtx_render::RenderEngine;
use grtx_scene::{synth::generate_scene, Camera, CameraModel, EffectObjects};
use grtx_scene::{GaussianScene, SceneKind};
use grtx_sim::GpuConfig;
use std::time::Instant;

fn setup() -> (GaussianScene, AccelStruct) {
    let scene = generate_scene(SceneKind::Train.profile().with_gaussian_budget(500), 9);
    let accel = AccelStruct::build(
        &scene,
        BoundingPrimitive::UnitSphere,
        true,
        &LayoutConfig::default(),
    );
    (scene, accel)
}

/// A pinhole + fisheye mix of views around the Train scene.
fn camera_mix() -> Vec<Camera> {
    let eye = SceneKind::Train.profile().camera_eye();
    vec![
        Camera::look_at(
            24,
            24,
            CameraModel::Pinhole { fov_y: 0.9 },
            eye,
            Vec3::ZERO,
            Vec3::Y,
        ),
        Camera::look_at(
            24,
            24,
            CameraModel::Fisheye { max_theta: 1.4 },
            Vec3::new(-eye.x, eye.y, eye.z),
            Vec3::ZERO,
            Vec3::Y,
        ),
        Camera::look_at(
            20,
            28,
            CameraModel::Pinhole { fov_y: 1.2 },
            Vec3::new(eye.x, eye.y * 0.5, -eye.z),
            Vec3::ZERO,
            Vec3::Y,
        ),
    ]
}

fn assert_batch_matches_standalone(effects: Option<&EffectObjects>) {
    let (scene, accel) = setup();
    let cameras = camera_mix();
    let config = RenderConfig {
        background: Vec3::new(0.1, 0.2, 0.3),
        ..Default::default()
    };
    for threads in [1usize, 4] {
        let engine = RenderEngine::new(GpuConfig::default()).with_threads(threads);
        let batch = engine.render_batch(&accel, &scene, &cameras, effects, &config);
        assert_eq!(batch.len(), cameras.len());
        for (i, (camera, batched)) in cameras.iter().zip(&batch).enumerate() {
            let standalone = engine.render(&accel, &scene, camera, effects, &config);
            let tag = format!("camera {i}, {threads} threads");
            assert_eq!(
                standalone.image.pixels(),
                batched.image.pixels(),
                "{tag}: image"
            );
            assert_eq!(standalone.cycles, batched.cycles, "{tag}: cycles");
            assert_eq!(standalone.stats, batched.stats, "{tag}: stats");
            assert_eq!(
                standalone.footprint_bytes, batched.footprint_bytes,
                "{tag}: footprint"
            );
            assert_eq!(
                standalone.l2_accesses, batched.l2_accesses,
                "{tag}: L2 accesses"
            );
            assert_eq!(
                standalone.dram_accesses, batched.dram_accesses,
                "{tag}: DRAM accesses"
            );
            assert_eq!(standalone.secondary, batched.secondary, "{tag}: secondary");
            assert!((standalone.l1_hit_rate - batched.l1_hit_rate).abs() < 1e-12);
        }
    }
}

#[test]
fn batch_is_bit_identical_to_standalone_renders() {
    assert_batch_matches_standalone(None);
}

#[test]
fn batch_is_bit_identical_with_effect_objects() {
    let effects = EffectObjects::place_in(SceneKind::Train.profile().half_extent, 3);
    assert_batch_matches_standalone(Some(&effects));
}

/// The batch thread cap scales with the view count, and results stay
/// identical across batch-level thread counts too.
#[test]
fn batch_results_are_thread_count_invariant() {
    let (scene, accel) = setup();
    let cameras = camera_mix();
    let config = RenderConfig::default();
    let render = |threads: usize| {
        RenderEngine::new(GpuConfig::default())
            .with_threads(threads)
            .render_batch(&accel, &scene, &cameras, None, &config)
    };
    let serial = render(1);
    for threads in [2, 8] {
        let parallel = render(threads);
        for (s, p) in serial.iter().zip(&parallel) {
            assert_eq!(s.image.pixels(), p.image.pixels());
            assert_eq!(s.cycles, p.cycles);
            assert_eq!(s.stats, p.stats);
        }
    }
}

/// Regression: fisheye pixels outside the image circle must show the
/// configured background — in batched renders too.
#[test]
fn batched_fisheye_corners_show_the_background() {
    let (scene, accel) = setup();
    let cameras = camera_mix();
    let background = Vec3::new(0.4, 0.1, 0.6);
    let config = RenderConfig {
        background,
        ..Default::default()
    };
    assert!(cameras[1].primary_ray(0, 0).is_none(), "fisheye corner");
    let batch = RenderEngine::new(GpuConfig::default())
        .render_batch(&accel, &scene, &cameras, None, &config);
    assert_eq!(batch[1].image.pixel(0), background);
}

/// Wall-clock: a 4-thread 4-camera batch must beat 4 sequential
/// 4-thread renders — the fan-out amortizes thread spin-up and removes
/// the per-camera merge barrier.
///
/// Wall-clock assertions are too noisy for shared CI runners, so this
/// only arms itself on dedicated hardware: set `GRTX_PERF=1` with ≥ 4
/// cores available (both conditions are checked, with a note when
/// skipping).
#[test]
fn four_camera_batch_beats_sequential_renders() {
    if std::env::var("GRTX_PERF").is_err() {
        eprintln!(
            "skipping batch speedup assertion: set GRTX_PERF=1 on dedicated >=4-core hardware"
        );
        return;
    }
    let hw = std::thread::available_parallelism().map_or(1, |n| n.get());
    if hw < 4 {
        eprintln!("skipping batch speedup assertion: needs >= 4 cores, host has {hw}");
        return;
    }
    let scene = generate_scene(SceneKind::Train.profile().with_gaussian_budget(8_000), 9);
    let accel = AccelStruct::build(
        &scene,
        BoundingPrimitive::UnitSphere,
        true,
        &LayoutConfig::default(),
    );
    let eye = SceneKind::Train.profile().camera_eye();
    let cameras: Vec<Camera> = (0..4)
        .map(|v| {
            let angle = std::f32::consts::TAU * v as f32 / 4.0;
            Camera::look_at(
                96,
                96,
                CameraModel::Pinhole { fov_y: 0.9 },
                Vec3::new(
                    eye.x * angle.cos() - eye.z * angle.sin(),
                    eye.y,
                    eye.x * angle.sin() + eye.z * angle.cos(),
                ),
                Vec3::ZERO,
                Vec3::Y,
            )
        })
        .collect();
    let config = RenderConfig::default();
    let engine = RenderEngine::new(GpuConfig::default()).with_threads(4);
    // Warm caches/allocator, then best-of-two to damp scheduler noise.
    let mut batch_s = f64::INFINITY;
    let mut seq_s = f64::INFINITY;
    for _ in 0..2 {
        let start = Instant::now();
        let reports = engine.render_batch(&accel, &scene, &cameras, None, &config);
        batch_s = batch_s.min(start.elapsed().as_secs_f64());
        assert_eq!(reports.len(), 4);

        let start = Instant::now();
        for camera in &cameras {
            let report = engine.render(&accel, &scene, camera, None, &config);
            assert!(report.cycles > 0);
        }
        seq_s = seq_s.min(start.elapsed().as_secs_f64());
    }
    assert!(
        batch_s < seq_s,
        "4-camera batch must beat 4 sequential renders ({batch_s:.3}s vs {seq_s:.3}s)"
    );
}
