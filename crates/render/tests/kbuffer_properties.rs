//! Property tests for the any-hit k-buffer: for *any* insertion
//! sequence, the buffer must end up holding exactly the `k` closest
//! distinct hits in sorted order, and every hit must be accounted for —
//! kept, rejected (evicted), or deduplicated — with no loss and no
//! invention.

use grtx_render::kbuffer::{Entry, InsertOutcome, KBuffer};
use proptest::prelude::*;

fn arb_hits(max_len: usize) -> impl Strategy<Value = Vec<Entry>> {
    prop::collection::vec((0.0f32..100.0, 0u32..64), 1..max_len)
}

/// Lexicographic `(t, id)` order used by the buffer.
fn sort_entries(entries: &mut [Entry]) {
    entries.sort_by(|a, b| a.0.total_cmp(&b.0).then(a.1.cmp(&b.1)));
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    /// The buffer retains exactly the k closest distinct entries,
    /// regardless of arrival order.
    #[test]
    fn keeps_the_k_closest_distinct_entries(hits in arb_hits(120), k in 1usize..24) {
        let mut buf = KBuffer::new(k);
        for &(t, id) in &hits {
            buf.insert(t, id);
        }
        let mut expected: Vec<Entry> = hits.clone();
        sort_entries(&mut expected);
        expected.dedup();
        expected.truncate(k);
        prop_assert_eq!(buf.entries(), expected.as_slice());
    }

    /// Entries are sorted after every single insertion (the invariant the
    /// insertion-sort cost model charges for).
    #[test]
    fn stays_sorted_after_every_insert(hits in arb_hits(60), k in 1usize..16) {
        let mut buf = KBuffer::new(k);
        for &(t, id) in &hits {
            buf.insert(t, id);
            prop_assert!(
                buf.entries().windows(2).all(|w| (w[0].0, w[0].1) < (w[1].0, w[1].1)),
                "buffer out of order after inserting ({}, {})", t, id
            );
            prop_assert!(buf.len() <= k);
        }
    }

    /// Conservation: every distinct inserted entry is either still in the
    /// buffer or was handed back as a rejection — the property GRTX-HW's
    /// eviction buffer depends on (rejects are recycled, never lost).
    #[test]
    fn every_hit_is_kept_or_evicted(hits in arb_hits(120), k in 1usize..24) {
        let mut buf = KBuffer::new(k);
        let mut evicted: Vec<Entry> = Vec::new();
        let mut duplicates = 0usize;
        for &(t, id) in &hits {
            match buf.insert(t, id) {
                InsertOutcome::Accepted { rejected, .. } => evicted.extend(rejected),
                InsertOutcome::RejectedIncoming { .. } => evicted.push((t, id)),
                InsertOutcome::Duplicate => duplicates += 1,
            }
        }
        let mut reunion: Vec<Entry> = buf.entries().to_vec();
        reunion.extend_from_slice(&evicted);
        sort_entries(&mut reunion);
        let mut expected = hits.clone();
        sort_entries(&mut expected);
        expected.dedup();
        prop_assert_eq!(reunion.len() + duplicates, hits.len(), "no entry may vanish or duplicate");
        let mut distinct = reunion.clone();
        distinct.dedup();
        prop_assert_eq!(distinct, expected, "kept + evicted must equal the distinct input set");
    }

    /// Seeding evicted entries then inserting fresh hits is equivalent to
    /// inserting everything — the moveEvictToKBuf step of Listing 1 must
    /// not change what survives.
    #[test]
    fn seeding_is_equivalent_to_inserting(
        seeds in arb_hits(12),
        hits in arb_hits(60),
        k in 12usize..24,
    ) {
        let mut seed_entries: Vec<Entry> = seeds.clone();
        sort_entries(&mut seed_entries);
        seed_entries.dedup();
        seed_entries.truncate(k);

        let mut seeded = KBuffer::new(k);
        seeded.seed(&seed_entries);
        for &(t, id) in &hits {
            seeded.insert(t, id);
        }

        let mut inserted = KBuffer::new(k);
        for &(t, id) in seed_entries.iter().chain(hits.iter()) {
            inserted.insert(t, id);
        }
        prop_assert_eq!(seeded.entries(), inserted.entries());
    }
}
