//! Rays and traversal intervals.

use crate::vec::Vec3;

/// A ray `r(t) = origin + t * direction`.
///
/// The inverse direction is precomputed because the slab-based ray–AABB
/// test — the single hottest operation in BVH traversal and one of the
/// fixed-function units in the paper's RT core — consumes it directly.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Ray {
    /// Ray origin.
    pub origin: Vec3,
    /// Ray direction (not required to be normalized; Gaussian ray tracing
    /// uses normalized directions so `t` is metric distance).
    pub direction: Vec3,
    /// Component-wise reciprocal of `direction`.
    pub inv_direction: Vec3,
}

impl Ray {
    /// Creates a ray from an origin and a direction.
    pub fn new(origin: Vec3, direction: Vec3) -> Self {
        Self {
            origin,
            direction,
            inv_direction: direction.recip(),
        }
    }

    /// Point at parameter `t`.
    pub fn at(&self, t: f32) -> Vec3 {
        self.origin + self.direction * t
    }

    /// The cached slab-test view of this ray.
    ///
    /// No divisions happen here: the reciprocal directions were computed
    /// once at construction. Every slab test — scalar
    /// ([`crate::Aabb::intersect_ray_inv`]) and vectorized
    /// ([`crate::simd::slab_test_8`]) — consumes this view, so `1/dir`
    /// is derived exactly once per ray, never per box test.
    pub fn inv(&self) -> RayInv {
        RayInv {
            origin: self.origin,
            inv_direction: self.inv_direction,
        }
    }
}

/// The per-ray inputs of the slab-based ray–box test: origin plus cached
/// reciprocal directions. This is what the RT unit's ray–box pipeline
/// actually consumes — traversal computes it once per ray (and once per
/// instance-local ray) and reuses it for every node visit.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct RayInv {
    /// Ray origin.
    pub origin: Vec3,
    /// Component-wise reciprocal of the ray direction (zero components
    /// map to signed infinities, as the slab test expects).
    pub inv_direction: Vec3,
}

/// The `(t_min, t_max]` traversal interval maintained by the RT core during
/// multi-round k-buffer tracing (Section III-A of the paper).
///
/// `t_min` advances to the last blended Gaussian's `t` between rounds;
/// `t_max` shrinks within a round as the k-buffer fills.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Interval {
    /// Exclusive lower bound: hits at `t <= t_min` were already blended.
    pub t_min: f32,
    /// Inclusive upper bound imposed by the k-th closest candidate.
    pub t_max: f32,
}

impl Interval {
    /// The full `(0, ∞)` interval used by the first tracing round.
    pub const FULL: Self = Self {
        t_min: 0.0,
        t_max: f32::INFINITY,
    };

    /// Creates an interval.
    pub fn new(t_min: f32, t_max: f32) -> Self {
        Self { t_min, t_max }
    }

    /// `true` if a hit distance lies inside the interval
    /// (`t_min < t <= t_max`), the condition the RT unit's t-value
    /// validation unit checks.
    pub fn contains(&self, t: f32) -> bool {
        t > self.t_min && t <= self.t_max
    }

    /// `true` if a `[t_enter, t_exit]` span (e.g. a box slab span)
    /// overlaps the interval.
    pub fn overlaps(&self, t_enter: f32, t_exit: f32) -> bool {
        t_exit > self.t_min && t_enter <= self.t_max
    }
}

impl Default for Interval {
    fn default() -> Self {
        Self::FULL
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn at_walks_along_direction() {
        let r = Ray::new(Vec3::ZERO, Vec3::new(0.0, 0.0, 2.0));
        assert_eq!(r.at(1.5), Vec3::new(0.0, 0.0, 3.0));
    }

    #[test]
    fn inv_direction_is_reciprocal() {
        let r = Ray::new(Vec3::ZERO, Vec3::new(2.0, -4.0, 0.5));
        assert_eq!(r.inv_direction, Vec3::new(0.5, -0.25, 2.0));
    }

    #[test]
    fn interval_contains_is_half_open() {
        let i = Interval::new(1.0, 2.0);
        assert!(!i.contains(1.0)); // exclusive lower bound
        assert!(i.contains(1.5));
        assert!(i.contains(2.0)); // inclusive upper bound
        assert!(!i.contains(2.5));
    }

    #[test]
    fn full_interval_contains_everything_positive() {
        assert!(Interval::FULL.contains(1e-30));
        assert!(Interval::FULL.contains(1e30));
        assert!(!Interval::FULL.contains(0.0));
    }

    #[test]
    fn overlaps_detects_straddling_spans() {
        let i = Interval::new(1.0, 2.0);
        assert!(i.overlaps(0.5, 1.5)); // straddles t_min: must traverse
        assert!(i.overlaps(1.5, 3.0)); // straddles t_max
        assert!(!i.overlaps(2.5, 3.0)); // beyond t_max: checkpoint candidate
        assert!(!i.overlaps(0.1, 0.9)); // fully behind
    }
}
