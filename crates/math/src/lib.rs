#![deny(unsafe_op_in_unsafe_fn)]

//! Linear algebra and geometric intersection primitives for GRTX.
//!
//! This crate is the lowest-level substrate of the GRTX reproduction. It
//! provides the vector/matrix types, rays, axis-aligned bounding boxes,
//! affine instance transforms, and the three intersection routines that the
//! paper's ray-tracing hardware model exposes as fixed-function units:
//! ray–AABB, ray–triangle, and ray–sphere.
//!
//! All arithmetic is `f32`, matching GPU shader and RT-core precision.
//!
//! # Examples
//!
//! ```
//! use grtx_math::{Ray, Vec3, intersect::ray_sphere_unit};
//!
//! let ray = Ray::new(Vec3::new(0.0, 0.0, -3.0), Vec3::new(0.0, 0.0, 1.0));
//! let hit = ray_sphere_unit(&ray).expect("ray points at the unit sphere");
//! assert!((hit.t_enter - 2.0).abs() < 1e-6);
//! ```
//!
//! # Safety
//!
//! `grtx-math` is the **only** workspace crate allowed to contain
//! `unsafe` code — every other crate pins `#![forbid(unsafe_code)]`,
//! and `cargo run -p grtx-analyze -- --deny` enforces both sides of
//! that boundary. All unsafe lives in [`simd`] and falls into exactly
//! three shapes, each annotated with a `SAFETY:` comment at the site:
//!
//! 1. **Target-feature dispatch** — calling an AVX2
//!    `#[target_feature]` kernel after
//!    `is_x86_feature_detected!` confirmed the CPU support;
//! 2. **Aligned/unaligned vector loads and stores** — raw-pointer
//!    intrinsics over `#[repr(C, align(32))]`/`align(16)` SoA arrays
//!    whose layout guarantees in-bounds, sufficiently-aligned access;
//! 3. **Baseline-feature intrinsics** — NEON value ops on `aarch64`
//!    (mandatory feature) and SSE2 on `x86-64` (baseline feature).
//!
//! `#![deny(unsafe_op_in_unsafe_fn)]` keeps those obligations visible:
//! every unsafe operation needs its own `unsafe { }` block (and
//! `SAFETY:` comment) even inside `unsafe fn` bodies.

pub mod aabb;
pub mod intersect;
pub mod mat;
pub mod quat;
pub mod ray;
pub mod simd;
pub mod transform;
pub mod vec;

pub use aabb::Aabb;
pub use mat::{Mat3, Mat4};
pub use quat::Quat;
pub use ray::{Ray, RayInv};
pub use transform::Affine3;
pub use vec::{Vec2, Vec3, Vec4};

/// Tolerance used by the test-suite for floating point comparisons.
pub const EPS: f32 = 1e-5;
