//! Axis-aligned bounding boxes.

use crate::ray::{Ray, RayInv};
use crate::vec::Vec3;

/// An axis-aligned bounding box, the node volume of every BVH level in the
/// paper (both the monolithic BVH and the TLAS/BLAS hierarchy).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Aabb {
    /// Minimum corner.
    pub min: Vec3,
    /// Maximum corner.
    pub max: Vec3,
}

impl Aabb {
    /// An empty box (min = +inf, max = -inf); the identity for
    /// [`Aabb::union`].
    pub const EMPTY: Self = Self {
        min: Vec3::splat(f32::INFINITY),
        max: Vec3::splat(f32::NEG_INFINITY),
    };

    /// Creates a box from its corners.
    pub fn new(min: Vec3, max: Vec3) -> Self {
        Self { min, max }
    }

    /// Creates a box centered at `center` with half-extent `half` in each
    /// axis.
    pub fn from_center_half_extent(center: Vec3, half: Vec3) -> Self {
        Self::new(center - half, center + half)
    }

    /// `true` if the box contains no points (any `min > max`).
    pub fn is_empty(&self) -> bool {
        self.min.x > self.max.x || self.min.y > self.max.y || self.min.z > self.max.z
    }

    /// Smallest box containing both operands.
    pub fn union(&self, other: &Self) -> Self {
        Self::new(self.min.min(other.min), self.max.max(other.max))
    }

    /// Grows the box to contain `p`.
    pub fn grow_point(&mut self, p: Vec3) {
        self.min = self.min.min(p);
        self.max = self.max.max(p);
    }

    /// Box center.
    pub fn center(&self) -> Vec3 {
        (self.min + self.max) * 0.5
    }

    /// Box diagonal (`max - min`).
    pub fn extent(&self) -> Vec3 {
        self.max - self.min
    }

    /// Surface area, the SAH cost metric used by the BVH builder.
    /// Empty boxes have zero area.
    pub fn surface_area(&self) -> f32 {
        if self.is_empty() {
            return 0.0;
        }
        let e = self.extent();
        2.0 * (e.x * e.y + e.y * e.z + e.z * e.x)
    }

    /// `true` if `other` lies entirely inside `self` (within `eps` slack).
    ///
    /// This is the structural BVH invariant — each parent node spatially
    /// encloses its children — checked by the property tests.
    pub fn contains_box(&self, other: &Self, eps: f32) -> bool {
        if other.is_empty() {
            return true;
        }
        self.min.x <= other.min.x + eps
            && self.min.y <= other.min.y + eps
            && self.min.z <= other.min.z + eps
            && self.max.x >= other.max.x - eps
            && self.max.y >= other.max.y - eps
            && self.max.z >= other.max.z - eps
    }

    /// `true` if `p` is inside the box (inclusive).
    pub fn contains_point(&self, p: Vec3) -> bool {
        p.x >= self.min.x
            && p.y >= self.min.y
            && p.z >= self.min.z
            && p.x <= self.max.x
            && p.y <= self.max.y
            && p.z <= self.max.z
    }

    /// Slab-based ray–box test, the operation of the RT unit's ray–box
    /// intersection pipeline.
    ///
    /// Returns the `[t_enter, t_exit]` span clipped to `[0, ∞)`, or `None`
    /// if the ray misses. A ray starting inside the box reports
    /// `t_enter = 0`. Convenience wrapper over [`Aabb::intersect_ray_inv`]
    /// using the ray's cached reciprocal directions.
    pub fn intersect_ray(&self, ray: &Ray) -> Option<(f32, f32)> {
        self.intersect_ray_inv(&ray.inv())
    }

    /// The slab test proper, consuming the cached [`RayInv`] view so the
    /// reciprocal directions are derived once per ray, never per test.
    /// This is the scalar reference the vectorized
    /// [`crate::simd::slab_test_8`] kernel matches bit-for-bit.
    ///
    /// The returned distances are canonicalized with `+ 0.0` so a zero
    /// result is always `+0.0`: IEEE minNum/maxNum leave the sign of a
    /// zero from equal-magnitude operands unspecified (LLVM picks
    /// per-site), and traversal sorts on raw bits via `total_cmp`, so
    /// without canonicalization scalar and vector paths could disagree
    /// on `-0.0` vs `+0.0`.
    pub fn intersect_ray_inv(&self, ray: &RayInv) -> Option<(f32, f32)> {
        let t0 = (self.min - ray.origin).mul_elem(ray.inv_direction);
        let t1 = (self.max - ray.origin).mul_elem(ray.inv_direction);
        let t_near = t0.min(t1);
        let t_far = t0.max(t1);
        let t_enter = t_near.max_element().max(0.0) + 0.0;
        let t_exit = t_far.min_element() + 0.0;
        if t_enter <= t_exit {
            Some((t_enter, t_exit))
        } else {
            None
        }
    }

    /// Transforms the box by an affine map and returns the enclosing AABB
    /// of the result (the standard "transform the eight corners" bound).
    pub fn transformed(&self, linear: &crate::mat::Mat3, translation: Vec3) -> Self {
        let mut out = Self::EMPTY;
        for i in 0..8 {
            let corner = Vec3::new(
                if i & 1 == 0 { self.min.x } else { self.max.x },
                if i & 2 == 0 { self.min.y } else { self.max.y },
                if i & 4 == 0 { self.min.z } else { self.max.z },
            );
            out.grow_point(linear.mul_vec3(corner) + translation);
        }
        out
    }
}

impl Default for Aabb {
    fn default() -> Self {
        Self::EMPTY
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::mat::Mat3;

    fn unit_box() -> Aabb {
        Aabb::new(Vec3::splat(-1.0), Vec3::splat(1.0))
    }

    #[test]
    fn empty_box_is_empty() {
        assert!(Aabb::EMPTY.is_empty());
        assert_eq!(Aabb::EMPTY.surface_area(), 0.0);
    }

    #[test]
    fn union_with_empty_is_identity() {
        let b = unit_box();
        assert_eq!(b.union(&Aabb::EMPTY), b);
        assert_eq!(Aabb::EMPTY.union(&b), b);
    }

    #[test]
    fn surface_area_of_unit_cube() {
        let b = Aabb::new(Vec3::ZERO, Vec3::ONE);
        assert_eq!(b.surface_area(), 6.0);
    }

    #[test]
    fn ray_through_center_hits() {
        let b = unit_box();
        let r = Ray::new(Vec3::new(0.0, 0.0, -5.0), Vec3::Z);
        let (t_enter, t_exit) = b.intersect_ray(&r).expect("hit");
        assert!((t_enter - 4.0).abs() < 1e-6);
        assert!((t_exit - 6.0).abs() < 1e-6);
    }

    #[test]
    fn ray_misses_offset_box() {
        let b = unit_box();
        let r = Ray::new(Vec3::new(0.0, 5.0, -5.0), Vec3::Z);
        assert!(b.intersect_ray(&r).is_none());
    }

    #[test]
    fn ray_starting_inside_enters_at_zero() {
        let b = unit_box();
        let r = Ray::new(Vec3::ZERO, Vec3::X);
        let (t_enter, t_exit) = b.intersect_ray(&r).expect("hit");
        assert_eq!(t_enter, 0.0);
        assert!((t_exit - 1.0).abs() < 1e-6);
    }

    #[test]
    fn ray_pointing_away_misses() {
        let b = unit_box();
        let r = Ray::new(Vec3::new(0.0, 0.0, -5.0), -Vec3::Z);
        assert!(b.intersect_ray(&r).is_none());
    }

    #[test]
    fn axis_parallel_ray_inside_slab_hits() {
        let b = unit_box();
        // Direction has a zero component; slab arithmetic must handle the
        // resulting infinities.
        let r = Ray::new(Vec3::new(0.5, 0.5, -5.0), Vec3::Z);
        assert!(b.intersect_ray(&r).is_some());
        let r_outside = Ray::new(Vec3::new(2.0, 0.5, -5.0), Vec3::Z);
        assert!(b.intersect_ray(&r_outside).is_none());
    }

    #[test]
    fn contains_box_accepts_children() {
        let parent = unit_box();
        let child = Aabb::new(Vec3::splat(-0.5), Vec3::splat(0.5));
        assert!(parent.contains_box(&child, 0.0));
        assert!(!child.contains_box(&parent, 0.0));
    }

    #[test]
    fn transformed_contains_all_transformed_points() {
        let b = unit_box();
        let linear = Mat3::from_diagonal(Vec3::new(2.0, 0.5, 1.0));
        let t = Vec3::new(1.0, 2.0, 3.0);
        let tb = b.transformed(&linear, t);
        for p in [
            Vec3::splat(-1.0),
            Vec3::splat(1.0),
            Vec3::new(1.0, -1.0, 0.3),
        ] {
            assert!(tb.contains_point(linear.mul_vec3(p) + t));
        }
    }

    #[test]
    fn grow_point_expands() {
        let mut b = Aabb::EMPTY;
        b.grow_point(Vec3::ONE);
        b.grow_point(-Vec3::ONE);
        assert_eq!(b, unit_box());
    }
}
