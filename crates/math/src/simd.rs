//! Vectorized intersection kernels for the traversal hot path.
//!
//! The paper's RT unit consumes one wide-node fetch as a batch of
//! parallel ray–box tests (Embree-style wide BVH, Section V-A). This
//! module provides the software analogue: an 8-wide slab test over a
//! structure-of-arrays child layout ([`SoaAabbs`]) — one AVX2 register
//! per lane array, every lane a real child — plus a 4-ray packet
//! variant ([`slab_test_8x4`]) that amortizes the node's box loads
//! across four coherent rays, and a 4-wide batched Möller–Trumbore
//! triangle test ([`ray_triangle_4`]) for BVH leaf ranges.
//!
//! # Determinism contract
//!
//! Every kernel has a **portable** fixed-width-array implementation the
//! compiler autovectorizes, plus `cfg(target_arch)`-gated explicit AVX2
//! (x86-64) and NEON (aarch64) paths. The explicit paths perform the
//! *same operations in the same order* with the same IEEE `min`/`max`
//! (minNum/maxNum — NaN-ignoring, matching Rust's `f32::min`/`f32::max`)
//! and infinity handling for axis-parallel rays, so lane `i` of a
//! batched kernel is **bitwise identical** to the corresponding scalar
//! test ([`Aabb::intersect_ray`] / [`crate::intersect::ray_triangle`])
//! on every input, and the explicit paths are bitwise identical to the
//! portable one. Images, cycle counts, and traversal statistics are
//! therefore independent of which path the dispatcher picks.
//!
//! Empty lanes are padded with the empty-box sentinel
//! (`min = +inf, max = -inf`); the returned hit masks are ANDed with the
//! lane mask so sentinel lanes never report hits, and callers charge
//! `box_tests` by the *occupied* lane count, keeping observer statistics
//! identical to the scalar per-child loop.

use crate::aabb::Aabb;
use crate::intersect::SurfaceHit;
use crate::ray::{Ray, RayInv};
use crate::vec::Vec3;

/// Lane count of the wide slab test: one lane per BVH-8 child. Storage
/// and semantics agree — one AVX2 register (or two NEON registers)
/// covers a whole node with aligned loads, and every lane can carry a
/// real child.
pub const LANES: usize = 8;

// ---------------------------------------------------------------------------
// SoA AABB layout.

/// Up to [`LANES`] axis-aligned boxes in structure-of-arrays layout:
/// `min_x[.], min_y[.], …, max_z[.]` lanes, padded to [`LANES`] with the
/// empty-box sentinel (`min = +inf, max = -inf`) so vector loads never
/// read uninitialized memory and padding lanes can never intersect.
#[derive(Debug, Clone, Copy, PartialEq)]
#[repr(C, align(32))]
pub struct SoaAabbs {
    min_x: [f32; LANES],
    min_y: [f32; LANES],
    min_z: [f32; LANES],
    max_x: [f32; LANES],
    max_y: [f32; LANES],
    max_z: [f32; LANES],
    len: u8,
}

impl SoaAabbs {
    /// No boxes: every lane holds the empty sentinel.
    pub const EMPTY: Self = Self {
        min_x: [f32::INFINITY; LANES],
        min_y: [f32::INFINITY; LANES],
        min_z: [f32::INFINITY; LANES],
        max_x: [f32::NEG_INFINITY; LANES],
        max_y: [f32::NEG_INFINITY; LANES],
        max_z: [f32::NEG_INFINITY; LANES],
        len: 0,
    };

    /// Packs `boxes` into lanes `0..boxes.len()`.
    ///
    /// # Panics
    ///
    /// Panics if more than [`LANES`] boxes are given.
    pub fn from_aabbs(boxes: &[Aabb]) -> Self {
        assert!(boxes.len() <= LANES, "at most {LANES} lanes");
        let mut soa = Self::EMPTY;
        for &aabb in boxes {
            soa.push(aabb);
        }
        soa
    }

    /// Appends one box to the next free lane.
    ///
    /// # Panics
    ///
    /// Panics if all [`LANES`] lanes are occupied.
    pub fn push(&mut self, aabb: Aabb) {
        let i = self.len as usize;
        assert!(i < LANES, "at most {LANES} lanes");
        self.min_x[i] = aabb.min.x;
        self.min_y[i] = aabb.min.y;
        self.min_z[i] = aabb.min.z;
        self.max_x[i] = aabb.max.x;
        self.max_y[i] = aabb.max.y;
        self.max_z[i] = aabb.max.z;
        self.len += 1;
    }

    /// Number of occupied lanes.
    pub fn len(&self) -> usize {
        self.len as usize
    }

    /// `true` if no lane is occupied.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Bit mask with one bit set per occupied lane.
    pub fn lane_mask(&self) -> u8 {
        ((1u16 << self.len) - 1) as u8
    }

    /// Reconstructs the box in lane `i`.
    ///
    /// # Panics
    ///
    /// Panics if `i` is not an occupied lane.
    pub fn get(&self, i: usize) -> Aabb {
        assert!(i < self.len as usize, "lane {i} not occupied");
        Aabb::new(
            Vec3::new(self.min_x[i], self.min_y[i], self.min_z[i]),
            Vec3::new(self.max_x[i], self.max_y[i], self.max_z[i]),
        )
    }
}

impl Default for SoaAabbs {
    fn default() -> Self {
        Self::EMPTY
    }
}

/// Result of one [`slab_test_8`] call: entry/exit distances for every
/// lane plus a hit mask. Lanes whose mask bit is clear hold garbage
/// `t` values (miss lanes and sentinel padding).
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct HitMask8 {
    /// Per-lane entry distance (clamped to `0`), valid where `mask` is set.
    pub t_enter: [f32; LANES],
    /// Per-lane exit distance, valid where `mask` is set.
    pub t_exit: [f32; LANES],
    /// Bit `i` set iff lane `i` is occupied and the ray hits its box.
    pub mask: u8,
}

impl HitMask8 {
    /// Lane `i` as the scalar API reports it: `Some((t_enter, t_exit))`
    /// on a hit, `None` on a miss.
    pub fn hit(&self, i: usize) -> Option<(f32, f32)> {
        if self.mask & (1 << i) != 0 {
            Some((self.t_enter[i], self.t_exit[i]))
        } else {
            None
        }
    }
}

/// Eight ray–box slab tests in one call — the software analogue of the
/// RT unit consuming one wide-node fetch as eight parallel box tests.
///
/// Lane `i` is bitwise identical to `boxes.get(i).intersect_ray(ray)`
/// (entry/exit `t` values and hit/miss decision). Sentinel (unoccupied)
/// lanes never set their mask bit. Dispatches to the explicit AVX2 path
/// when the CPU supports it (NEON on aarch64), falling back to
/// [`slab_test_8_portable`]; all paths produce identical bits.
#[inline]
pub fn slab_test_8(ray: &RayInv, boxes: &SoaAabbs) -> HitMask8 {
    #[cfg(target_arch = "x86_64")]
    {
        // Per-call detection is deliberate: the macro folds to `true`
        // at compile time when AVX2 is statically enabled (e.g.
        // `-C target-cpu=native`), and otherwise compiles to one cached
        // atomic load plus a perfectly-predicted branch — measurably
        // cheaper than an uninlinable function-pointer dispatch for a
        // ~10 ns kernel.
        if x86::runtime_features_available() {
            // SAFETY: the required features were just detected.
            return unsafe { x86::slab_test_8_avx2(ray, boxes) };
        }
    }
    #[cfg(target_arch = "aarch64")]
    {
        // NEON is a mandatory feature of aarch64.
        return neon::slab_test_8_neon(ray, boxes);
    }
    #[allow(unreachable_code)]
    slab_test_8_portable(ray, boxes)
}

/// Portable fixed-width slab kernel (autovectorized by the compiler).
///
/// Reference implementation for the explicit-SIMD paths: per lane it
/// performs exactly the operation sequence of [`Aabb::intersect_ray`] —
/// `(slab - origin) * inv_direction`, NaN-ignoring min/max, entry
/// clamped to zero — so `0 * ±inf = NaN` lanes from axis-parallel rays
/// resolve identically to the scalar test.
pub fn slab_test_8_portable(ray: &RayInv, boxes: &SoaAabbs) -> HitMask8 {
    let (ox, oy, oz) = (ray.origin.x, ray.origin.y, ray.origin.z);
    let (ix, iy, iz) = (
        ray.inv_direction.x,
        ray.inv_direction.y,
        ray.inv_direction.z,
    );
    // Opt-in contraction: (slab - o)*i == slab*i - o*i == slab.mul_add(i, -(o*i)).
    // Fused rounding changes bits vs the default path (and axis-parallel
    // rays turn the precomputed -(o*i) term into NaN, which the
    // NaN-ignoring min/max resolve to a conservative full slab span), so
    // the `fma` feature trades the bitwise-vs-scalar contract for fewer
    // rounding steps and is benched separately.
    #[cfg(feature = "fma")]
    let (nx, ny, nz) = (-(ox * ix), -(oy * iy), -(oz * iz));
    let mut t_enter = [0.0f32; LANES];
    let mut t_exit = [0.0f32; LANES];
    let mut mask = 0u8;
    for i in 0..LANES {
        #[cfg(not(feature = "fma"))]
        let (t0x, t1x, t0y, t1y, t0z, t1z) = (
            (boxes.min_x[i] - ox) * ix,
            (boxes.max_x[i] - ox) * ix,
            (boxes.min_y[i] - oy) * iy,
            (boxes.max_y[i] - oy) * iy,
            (boxes.min_z[i] - oz) * iz,
            (boxes.max_z[i] - oz) * iz,
        );
        #[cfg(feature = "fma")]
        let (t0x, t1x, t0y, t1y, t0z, t1z) = (
            boxes.min_x[i].mul_add(ix, nx),
            boxes.max_x[i].mul_add(ix, nx),
            boxes.min_y[i].mul_add(iy, ny),
            boxes.max_y[i].mul_add(iy, ny),
            boxes.min_z[i].mul_add(iz, nz),
            boxes.max_z[i].mul_add(iz, nz),
        );
        let near_x = t0x.min(t1x);
        let near_y = t0y.min(t1y);
        let near_z = t0z.min(t1z);
        let far_x = t0x.max(t1x);
        let far_y = t0y.max(t1y);
        let far_z = t0z.max(t1z);
        // Same reduction order as Vec3::max_element / min_element; the
        // `+ 0.0` canonicalizes `-0.0` to `+0.0` exactly like the scalar
        // test (IEEE min/max leave the sign of equal-operand zeros
        // unspecified, and traversal sorts on raw bits).
        let enter = near_x.max(near_y).max(near_z).max(0.0) + 0.0;
        let exit = far_x.min(far_y).min(far_z) + 0.0;
        t_enter[i] = enter;
        t_exit[i] = exit;
        mask |= u8::from(enter <= exit) << i;
    }
    HitMask8 {
        t_enter,
        t_exit,
        mask: mask & boxes.lane_mask(),
    }
}

// ---------------------------------------------------------------------------
// Ray packets.

/// One node's eight child slabs tested against **four coherent rays**
/// in a single call — the ray-axis transpose of [`slab_test_8`].
///
/// Packet `r` of the result is bitwise identical to
/// `slab_test_8(&rays[r], boxes)` on every input, so packet traversal
/// can substitute per-ray kernel calls without perturbing any
/// traversal decision. The win is bandwidth amortization: the explicit
/// AVX2 path loads the node's six lane arrays **once** and reuses the
/// registers for all four rays, instead of reloading them per ray.
#[inline]
pub fn slab_test_8x4(rays: &[RayInv; 4], boxes: &SoaAabbs) -> [HitMask8; 4] {
    #[cfg(target_arch = "x86_64")]
    {
        if x86::runtime_features_available() {
            // SAFETY: the required features were just detected.
            return unsafe { x86::slab_test_8x4_avx2(rays, boxes) };
        }
    }
    #[cfg(target_arch = "aarch64")]
    {
        // NEON is a mandatory feature of aarch64. The 8-wide kernel
        // already keeps the node in registers across its two halves;
        // per-ray broadcast is the whole transpose here.
        return [
            neon::slab_test_8_neon(&rays[0], boxes),
            neon::slab_test_8_neon(&rays[1], boxes),
            neon::slab_test_8_neon(&rays[2], boxes),
            neon::slab_test_8_neon(&rays[3], boxes),
        ];
    }
    #[allow(unreachable_code)]
    slab_test_8x4_portable(rays, boxes)
}

/// Portable packet kernel: the 8-wide portable slab test broadcast over
/// the four rays. Reference the explicit path must match bitwise.
pub fn slab_test_8x4_portable(rays: &[RayInv; 4], boxes: &SoaAabbs) -> [HitMask8; 4] {
    [
        slab_test_8_portable(&rays[0], boxes),
        slab_test_8_portable(&rays[1], boxes),
        slab_test_8_portable(&rays[2], boxes),
        slab_test_8_portable(&rays[3], boxes),
    ]
}

// ---------------------------------------------------------------------------
// Batched triangles.

/// Up to 4 triangles in structure-of-arrays layout for
/// [`ray_triangle_4`], padded with degenerate (all-zero) triangles that
/// can never be hit (their determinant is exactly `0`).
#[derive(Debug, Clone, Copy, PartialEq)]
#[repr(C, align(16))]
pub struct Tri4 {
    v0x: [f32; 4],
    v0y: [f32; 4],
    v0z: [f32; 4],
    v1x: [f32; 4],
    v1y: [f32; 4],
    v1z: [f32; 4],
    v2x: [f32; 4],
    v2y: [f32; 4],
    v2z: [f32; 4],
    len: u8,
}

impl Tri4 {
    /// Packs `tris` (each `[v0, v1, v2]`) into lanes `0..tris.len()`.
    ///
    /// # Panics
    ///
    /// Panics if more than 4 triangles are given.
    pub fn from_triangles(tris: &[[Vec3; 3]]) -> Self {
        assert!(tris.len() <= 4, "at most 4 lanes");
        let mut t = Self {
            v0x: [0.0; 4],
            v0y: [0.0; 4],
            v0z: [0.0; 4],
            v1x: [0.0; 4],
            v1y: [0.0; 4],
            v1z: [0.0; 4],
            v2x: [0.0; 4],
            v2y: [0.0; 4],
            v2z: [0.0; 4],
            len: tris.len() as u8,
        };
        for (i, [a, b, c]) in tris.iter().enumerate() {
            t.v0x[i] = a.x;
            t.v0y[i] = a.y;
            t.v0z[i] = a.z;
            t.v1x[i] = b.x;
            t.v1y[i] = b.y;
            t.v1z[i] = b.z;
            t.v2x[i] = c.x;
            t.v2y[i] = c.y;
            t.v2z[i] = c.z;
        }
        t
    }

    /// Number of occupied lanes.
    pub fn len(&self) -> usize {
        self.len as usize
    }

    /// `true` if no lane is occupied.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Bit mask with one bit set per occupied lane.
    pub fn lane_mask(&self) -> u8 {
        ((1u16 << self.len) - 1) as u8
    }
}

/// Result of one [`ray_triangle_4`] call. Lanes whose mask bit is clear
/// hold garbage values.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Tri4Hit {
    /// Per-lane hit distance, valid where `mask` is set.
    pub t: [f32; 4],
    /// Per-lane barycentric `u`, valid where `mask` is set.
    pub u: [f32; 4],
    /// Per-lane barycentric `v`, valid where `mask` is set.
    pub v: [f32; 4],
    /// Bit `i` set iff lane `i` is occupied and the ray hits it.
    pub mask: u8,
}

impl Tri4Hit {
    /// Lane `i` as the scalar API reports it.
    pub fn hit(&self, i: usize) -> Option<SurfaceHit> {
        if self.mask & (1 << i) != 0 {
            Some(SurfaceHit {
                t: self.t[i],
                u: self.u[i],
                v: self.v[i],
            })
        } else {
            None
        }
    }
}

/// Four Möller–Trumbore ray–triangle tests in one call, for BVH leaf
/// ranges (the hardware ray–triangle unit tests a leaf's triangles back
/// to back from one fetch).
///
/// Lane `i` is bitwise identical to
/// [`crate::intersect::ray_triangle`]`(ray, v0[i], v1[i], v2[i])`.
/// Sentinel lanes (degenerate zero triangles) never set their mask bit.
#[inline]
pub fn ray_triangle_4(ray: &Ray, tris: &Tri4) -> Tri4Hit {
    #[cfg(target_arch = "x86_64")]
    {
        // SSE2 is a baseline feature of x86-64, so the batched kernel
        // needs no dispatch; its internal loads are covered by Tri4's
        // `repr(C, align(16))` layout.
        return x86::ray_triangle_4_sse2(ray, tris);
    }
    #[cfg(target_arch = "aarch64")]
    {
        return neon::ray_triangle_4_neon(ray, tris);
    }
    #[allow(unreachable_code)]
    ray_triangle_4_portable(ray, tris)
}

/// Portable fixed-width batched Möller–Trumbore kernel — the reference
/// the explicit-SIMD paths must match bitwise. Per lane it performs the
/// exact operation sequence (and miss conditions, including their NaN
/// behavior) of the scalar [`crate::intersect::ray_triangle`].
// The negated comparisons are deliberate: `!(v < 0.0)` treats NaN as a
// pass exactly like the scalar early-return conditions, while `v >= 0.0`
// would not.
#[allow(clippy::neg_cmp_op_on_partial_ord)]
pub fn ray_triangle_4_portable(ray: &Ray, tris: &Tri4) -> Tri4Hit {
    let (ox, oy, oz) = (ray.origin.x, ray.origin.y, ray.origin.z);
    let (dx, dy, dz) = (ray.direction.x, ray.direction.y, ray.direction.z);
    let mut out = Tri4Hit {
        t: [0.0; 4],
        u: [0.0; 4],
        v: [0.0; 4],
        mask: 0,
    };
    for i in 0..4 {
        let e1x = tris.v1x[i] - tris.v0x[i];
        let e1y = tris.v1y[i] - tris.v0y[i];
        let e1z = tris.v1z[i] - tris.v0z[i];
        let e2x = tris.v2x[i] - tris.v0x[i];
        let e2y = tris.v2y[i] - tris.v0y[i];
        let e2z = tris.v2z[i] - tris.v0z[i];
        // p = direction × e2 (component order matches Vec3::cross).
        let px = dy * e2z - dz * e2y;
        let py = dz * e2x - dx * e2z;
        let pz = dx * e2y - dy * e2x;
        let det = e1x * px + e1y * py + e1z * pz;
        // Scalar: `if det.abs() < 1e-12 { return None }`.
        let mut pass = !(det.abs() < 1e-12);
        let inv_det = 1.0 / det;
        let sx = ox - tris.v0x[i];
        let sy = oy - tris.v0y[i];
        let sz = oz - tris.v0z[i];
        let u = (sx * px + sy * py + sz * pz) * inv_det;
        // Scalar: `if !(0.0..=1.0).contains(&u) { return None }`.
        pass &= (0.0..=1.0).contains(&u);
        // q = s × e1.
        let qx = sy * e1z - sz * e1y;
        let qy = sz * e1x - sx * e1z;
        let qz = sx * e1y - sy * e1x;
        let v = (dx * qx + dy * qy + dz * qz) * inv_det;
        // Scalar: `if v < 0.0 || u + v > 1.0 { return None }`.
        pass &= !(v < 0.0) && !(u + v > 1.0);
        let t = (e2x * qx + e2y * qy + e2z * qz) * inv_det;
        // Scalar: `if t < 0.0 { return None }`.
        pass &= !(t < 0.0);
        out.t[i] = t;
        out.u[i] = u;
        out.v[i] = v;
        out.mask |= u8::from(pass) << i;
    }
    out.mask &= tris.lane_mask();
    out
}

// ---------------------------------------------------------------------------
// Explicit x86-64 paths.

#[cfg(target_arch = "x86_64")]
mod x86 {
    use super::{HitMask8, Ray, RayInv, SoaAabbs, Tri4, Tri4Hit};
    use std::arch::x86_64::*;

    /// `true` when the CPU has every feature the explicit slab kernels
    /// were compiled against: AVX2, plus FMA under the `fma` cargo
    /// feature. Folds to a constant when the features are statically
    /// enabled (`-C target-cpu=native`).
    #[inline]
    pub fn runtime_features_available() -> bool {
        #[cfg(not(feature = "fma"))]
        {
            std::arch::is_x86_feature_detected!("avx2")
        }
        #[cfg(feature = "fma")]
        {
            std::arch::is_x86_feature_detected!("avx2")
                && std::arch::is_x86_feature_detected!("fma")
        }
    }

    /// IEEE minNum (Rust `f32::min`): if one operand is NaN, the other
    /// is returned. This mirrors LLVM's own `fminnum` lowering exactly —
    /// `minps` with **swapped** operands (`minps(b, a)` returns its
    /// second operand `a` on ordered-equal inputs, so `min(-0.0, +0.0)`
    /// keeps the first source argument just like the scalar code), then
    /// a blend to `b` where `a` is NaN (`minps` already returns `a` when
    /// `b` is NaN).
    ///
    /// # Safety
    ///
    /// Callers must ensure the `avx2` target feature is available.
    #[inline]
    unsafe fn min_num(a: __m256, b: __m256) -> __m256 {
        // SAFETY: register-only value ops (no memory access); the avx2
        // precondition is the fn's own contract, guaranteed by callers.
        unsafe {
            let m = _mm256_min_ps(b, a);
            let a_nan = _mm256_cmp_ps(a, a, _CMP_UNORD_Q);
            _mm256_blendv_ps(m, b, a_nan)
        }
    }

    /// IEEE maxNum (Rust `f32::max`); mirror of [`min_num`].
    ///
    /// # Safety
    ///
    /// Callers must ensure the `avx2` target feature is available.
    #[inline]
    unsafe fn max_num(a: __m256, b: __m256) -> __m256 {
        // SAFETY: register-only value ops (no memory access); the avx2
        // precondition is the fn's own contract, guaranteed by callers.
        unsafe {
            let m = _mm256_max_ps(b, a);
            let a_nan = _mm256_cmp_ps(a, a, _CMP_UNORD_Q);
            _mm256_blendv_ps(m, b, a_nan)
        }
    }

    /// One node's six lane arrays held in registers, so the packet
    /// kernel loads them once and reuses them for all four rays.
    #[derive(Clone, Copy)]
    struct NodeRegs {
        min_x: __m256,
        min_y: __m256,
        min_z: __m256,
        max_x: __m256,
        max_y: __m256,
        max_z: __m256,
    }

    /// Loads one node's lane arrays.
    ///
    /// # Safety
    ///
    /// Callers must ensure the `avx2` target feature is available.
    #[target_feature(enable = "avx2")]
    unsafe fn load_node(boxes: &SoaAabbs) -> NodeRegs {
        // SAFETY: `SoaAabbs` is `#[repr(C, align(32))]` and each lane
        // array is `[f32; 8]` = 32 bytes, so every load is in-bounds
        // and 32-byte aligned as `_mm256_load_ps` requires; the avx2
        // requirement is met by this fn's own `target_feature`.
        unsafe {
            NodeRegs {
                min_x: _mm256_load_ps(boxes.min_x.as_ptr()),
                min_y: _mm256_load_ps(boxes.min_y.as_ptr()),
                min_z: _mm256_load_ps(boxes.min_z.as_ptr()),
                max_x: _mm256_load_ps(boxes.max_x.as_ptr()),
                max_y: _mm256_load_ps(boxes.max_y.as_ptr()),
                max_z: _mm256_load_ps(boxes.max_z.as_ptr()),
            }
        }
    }

    /// Slab test of one ray against preloaded node registers. Same
    /// operation order as the portable kernel.
    ///
    /// # Safety
    ///
    /// Callers must ensure the `avx2` (and, under the `fma` feature,
    /// `fma`) target features are available.
    #[cfg_attr(not(feature = "fma"), target_feature(enable = "avx2"))]
    #[cfg_attr(feature = "fma", target_feature(enable = "avx2,fma"))]
    unsafe fn slab_ray(ray: &RayInv, node: &NodeRegs, lane_mask: u8) -> HitMask8 {
        // SAFETY: everything here is register-only value math except
        // the two `_mm256_storeu_ps` stores, which write 8 f32s into
        // the freshly declared `[f32; LANES]` stack arrays (in-bounds;
        // unaligned stores have no alignment requirement). The feature
        // preconditions are this fn's own contract.
        unsafe {
            let ox = _mm256_set1_ps(ray.origin.x);
            let oy = _mm256_set1_ps(ray.origin.y);
            let oz = _mm256_set1_ps(ray.origin.z);
            let ix = _mm256_set1_ps(ray.inv_direction.x);
            let iy = _mm256_set1_ps(ray.inv_direction.y);
            let iz = _mm256_set1_ps(ray.inv_direction.z);
            #[cfg(not(feature = "fma"))]
            let (t0x, t1x, t0y, t1y, t0z, t1z) = (
                _mm256_mul_ps(_mm256_sub_ps(node.min_x, ox), ix),
                _mm256_mul_ps(_mm256_sub_ps(node.max_x, ox), ix),
                _mm256_mul_ps(_mm256_sub_ps(node.min_y, oy), iy),
                _mm256_mul_ps(_mm256_sub_ps(node.max_y, oy), iy),
                _mm256_mul_ps(_mm256_sub_ps(node.min_z, oz), iz),
                _mm256_mul_ps(_mm256_sub_ps(node.max_z, oz), iz),
            );
            // Contracted form mirroring the portable `fma` path:
            // fmsub(slab, i, o*i) == fma(slab, i, -(o*i)) exactly (the
            // addend negation is sign-flip only, never a rounding step).
            #[cfg(feature = "fma")]
            let (t0x, t1x, t0y, t1y, t0z, t1z) = {
                let (px, py, pz) = (
                    _mm256_mul_ps(ox, ix),
                    _mm256_mul_ps(oy, iy),
                    _mm256_mul_ps(oz, iz),
                );
                (
                    _mm256_fmsub_ps(node.min_x, ix, px),
                    _mm256_fmsub_ps(node.max_x, ix, px),
                    _mm256_fmsub_ps(node.min_y, iy, py),
                    _mm256_fmsub_ps(node.max_y, iy, py),
                    _mm256_fmsub_ps(node.min_z, iz, pz),
                    _mm256_fmsub_ps(node.max_z, iz, pz),
                )
            };
            let near_x = min_num(t0x, t1x);
            let near_y = min_num(t0y, t1y);
            let near_z = min_num(t0z, t1z);
            let far_x = max_num(t0x, t1x);
            let far_y = max_num(t0y, t1y);
            let far_z = max_num(t0z, t1z);
            // `+ 0.0` canonicalizes `-0.0` to `+0.0`, as in the scalar test.
            let zero = _mm256_setzero_ps();
            let enter = _mm256_add_ps(
                max_num(max_num(max_num(near_x, near_y), near_z), zero),
                zero,
            );
            let exit = _mm256_add_ps(min_num(min_num(far_x, far_y), far_z), zero);
            let hit = _mm256_cmp_ps(enter, exit, _CMP_LE_OQ);
            let mut t_enter = [0.0f32; super::LANES];
            let mut t_exit = [0.0f32; super::LANES];
            _mm256_storeu_ps(t_enter.as_mut_ptr(), enter);
            _mm256_storeu_ps(t_exit.as_mut_ptr(), exit);
            HitMask8 {
                t_enter,
                t_exit,
                mask: (_mm256_movemask_ps(hit) as u8) & lane_mask,
            }
        }
    }

    /// AVX2 slab kernel: all 8 lanes in one 8-wide register.
    ///
    /// # Safety
    ///
    /// Callers must ensure the `avx2` (and, under the `fma` feature,
    /// `fma`) target features are available.
    #[cfg_attr(not(feature = "fma"), target_feature(enable = "avx2"))]
    #[cfg_attr(feature = "fma", target_feature(enable = "avx2,fma"))]
    pub unsafe fn slab_test_8_avx2(ray: &RayInv, boxes: &SoaAabbs) -> HitMask8 {
        // SAFETY: this fn's contract passes the avx2/fma guarantee
        // straight through to `load_node` and `slab_ray`, whose only
        // other preconditions (aligned `SoaAabbs` loads, stack stores)
        // are discharged at their own sites.
        unsafe {
            let node = load_node(boxes);
            slab_ray(ray, &node, boxes.lane_mask())
        }
    }

    /// AVX2 packet kernel: the node's lane arrays are loaded once and
    /// tested against four rays, each via the same [`slab_ray`] body the
    /// single-ray kernel uses — packet `r` is bitwise identical to
    /// `slab_test_8_avx2(&rays[r], boxes)` by construction.
    ///
    /// # Safety
    ///
    /// Callers must ensure the `avx2` (and, under the `fma` feature,
    /// `fma`) target features are available.
    #[cfg_attr(not(feature = "fma"), target_feature(enable = "avx2"))]
    #[cfg_attr(feature = "fma", target_feature(enable = "avx2,fma"))]
    pub unsafe fn slab_test_8x4_avx2(rays: &[RayInv; 4], boxes: &SoaAabbs) -> [HitMask8; 4] {
        // SAFETY: this fn's contract passes the avx2/fma guarantee
        // straight through to `load_node` and `slab_ray`, whose only
        // other preconditions (aligned `SoaAabbs` loads, stack stores)
        // are discharged at their own sites.
        unsafe {
            let node = load_node(boxes);
            let lane_mask = boxes.lane_mask();
            [
                slab_ray(&rays[0], &node, lane_mask),
                slab_ray(&rays[1], &node, lane_mask),
                slab_ray(&rays[2], &node, lane_mask),
                slab_ray(&rays[3], &node, lane_mask),
            ]
        }
    }

    /// SSE2 batched Möller–Trumbore: 4 independent triangle lanes, only
    /// lane-wise operations (no min/max, so no NaN-semantics hazards).
    /// Safe to call unconditionally: SSE2 is a baseline feature of
    /// every x86-64 target.
    pub fn ray_triangle_4_sse2(ray: &Ray, tris: &Tri4) -> Tri4Hit {
        // SAFETY: SSE2 is baseline on x86-64, so the feature
        // precondition of every intrinsic here holds statically. The
        // `_mm_load_ps` loads read `[f32; 4]` = 16-byte fields of the
        // `#[repr(C, align(16))]` `Tri4` (in-bounds, 16-byte aligned);
        // the `_mm_storeu_ps` stores write 4 f32s each into the local
        // `Tri4Hit` arrays (in-bounds; no alignment requirement).
        unsafe {
            let ox = _mm_set1_ps(ray.origin.x);
            let oy = _mm_set1_ps(ray.origin.y);
            let oz = _mm_set1_ps(ray.origin.z);
            let dx = _mm_set1_ps(ray.direction.x);
            let dy = _mm_set1_ps(ray.direction.y);
            let dz = _mm_set1_ps(ray.direction.z);
            let v0x = _mm_load_ps(tris.v0x.as_ptr());
            let v0y = _mm_load_ps(tris.v0y.as_ptr());
            let v0z = _mm_load_ps(tris.v0z.as_ptr());
            let e1x = _mm_sub_ps(_mm_load_ps(tris.v1x.as_ptr()), v0x);
            let e1y = _mm_sub_ps(_mm_load_ps(tris.v1y.as_ptr()), v0y);
            let e1z = _mm_sub_ps(_mm_load_ps(tris.v1z.as_ptr()), v0z);
            let e2x = _mm_sub_ps(_mm_load_ps(tris.v2x.as_ptr()), v0x);
            let e2y = _mm_sub_ps(_mm_load_ps(tris.v2y.as_ptr()), v0y);
            let e2z = _mm_sub_ps(_mm_load_ps(tris.v2z.as_ptr()), v0z);
            let px = _mm_sub_ps(_mm_mul_ps(dy, e2z), _mm_mul_ps(dz, e2y));
            let py = _mm_sub_ps(_mm_mul_ps(dz, e2x), _mm_mul_ps(dx, e2z));
            let pz = _mm_sub_ps(_mm_mul_ps(dx, e2y), _mm_mul_ps(dy, e2x));
            let det = _mm_add_ps(
                _mm_add_ps(_mm_mul_ps(e1x, px), _mm_mul_ps(e1y, py)),
                _mm_mul_ps(e1z, pz),
            );
            // pass = !(|det| < 1e-12): NaN determinants pass, as in scalar.
            let abs_mask = _mm_castsi128_ps(_mm_set1_epi32(0x7fff_ffff));
            let abs_det = _mm_and_ps(det, abs_mask);
            let mut pass = _mm_cmpnlt_ps(abs_det, _mm_set1_ps(1e-12));
            let inv_det = _mm_div_ps(_mm_set1_ps(1.0), det);
            let sx = _mm_sub_ps(ox, v0x);
            let sy = _mm_sub_ps(oy, v0y);
            let sz = _mm_sub_ps(oz, v0z);
            let u = _mm_mul_ps(
                _mm_add_ps(
                    _mm_add_ps(_mm_mul_ps(sx, px), _mm_mul_ps(sy, py)),
                    _mm_mul_ps(sz, pz),
                ),
                inv_det,
            );
            // pass &= 0 <= u && u <= 1 (NaN u fails, as in scalar).
            pass = _mm_and_ps(pass, _mm_cmple_ps(_mm_setzero_ps(), u));
            pass = _mm_and_ps(pass, _mm_cmple_ps(u, _mm_set1_ps(1.0)));
            let qx = _mm_sub_ps(_mm_mul_ps(sy, e1z), _mm_mul_ps(sz, e1y));
            let qy = _mm_sub_ps(_mm_mul_ps(sz, e1x), _mm_mul_ps(sx, e1z));
            let qz = _mm_sub_ps(_mm_mul_ps(sx, e1y), _mm_mul_ps(sy, e1x));
            let v = _mm_mul_ps(
                _mm_add_ps(
                    _mm_add_ps(_mm_mul_ps(dx, qx), _mm_mul_ps(dy, qy)),
                    _mm_mul_ps(dz, qz),
                ),
                inv_det,
            );
            // pass &= !(v < 0) && !(u + v > 1) (NaN v passes, as in scalar).
            pass = _mm_and_ps(pass, _mm_cmpnlt_ps(v, _mm_setzero_ps()));
            pass = _mm_and_ps(pass, _mm_cmpngt_ps(_mm_add_ps(u, v), _mm_set1_ps(1.0)));
            let t = _mm_mul_ps(
                _mm_add_ps(
                    _mm_add_ps(_mm_mul_ps(e2x, qx), _mm_mul_ps(e2y, qy)),
                    _mm_mul_ps(e2z, qz),
                ),
                inv_det,
            );
            // pass &= !(t < 0) (NaN t passes, as in scalar).
            pass = _mm_and_ps(pass, _mm_cmpnlt_ps(t, _mm_setzero_ps()));
            let mut out = Tri4Hit {
                t: [0.0; 4],
                u: [0.0; 4],
                v: [0.0; 4],
                mask: 0,
            };
            _mm_storeu_ps(out.t.as_mut_ptr(), t);
            _mm_storeu_ps(out.u.as_mut_ptr(), u);
            _mm_storeu_ps(out.v.as_mut_ptr(), v);
            out.mask = (_mm_movemask_ps(pass) as u8) & tris.lane_mask();
            out
        }
    }
}

// ---------------------------------------------------------------------------
// Explicit aarch64 paths.

#[cfg(target_arch = "aarch64")]
mod neon {
    use super::{HitMask8, Ray, RayInv, SoaAabbs, Tri4, Tri4Hit, LANES};
    use std::arch::aarch64::*;

    /// Per-lane select bits for the movemask emulation.
    const LANE_BITS: [u32; 4] = [1, 2, 4, 8];

    /// Collapses a comparison mask (all-ones / all-zeros lanes) into a
    /// 4-bit mask, shifted by `shift` lane positions.
    #[inline]
    fn movemask(m: uint32x4_t, shift: u32) -> u8 {
        // SAFETY: NEON is mandatory on aarch64.
        unsafe {
            let bits = vandq_u32(m, vld1q_u32(LANE_BITS.as_ptr()));
            (vaddvq_u32(bits) << shift) as u8
        }
    }

    /// One 4-lane half of the slab kernel. `vminnmq`/`vmaxnmq` are the
    /// IEEE minNum/maxNum instructions — exactly Rust's
    /// `f32::min`/`f32::max` lowering on aarch64, so NaN lanes from
    /// axis-parallel rays resolve identically to the portable kernel.
    ///
    /// # Safety
    ///
    /// Callers must pass `lane <= LANES - 4` so the four-float loads
    /// starting at `lane` stay inside the 8-wide `SoaAabbs` arrays.
    #[inline]
    #[allow(clippy::too_many_arguments)]
    unsafe fn slab_half(
        boxes: &SoaAabbs,
        lane: usize,
        ox: float32x4_t,
        oy: float32x4_t,
        oz: float32x4_t,
        ix: float32x4_t,
        iy: float32x4_t,
        iz: float32x4_t,
    ) -> (float32x4_t, float32x4_t, uint32x4_t) {
        // SAFETY: NEON is mandatory on aarch64; every `vld1q_f32` reads
        // four f32s starting at `lane`, in-bounds by this fn's
        // `lane <= LANES - 4` contract (`vld1q` has no alignment
        // requirement); the rest is register-only value math.
        unsafe {
            #[cfg(not(feature = "fma"))]
            let (t0x, t1x, t0y, t1y, t0z, t1z) = (
                vmulq_f32(vsubq_f32(vld1q_f32(boxes.min_x.as_ptr().add(lane)), ox), ix),
                vmulq_f32(vsubq_f32(vld1q_f32(boxes.max_x.as_ptr().add(lane)), ox), ix),
                vmulq_f32(vsubq_f32(vld1q_f32(boxes.min_y.as_ptr().add(lane)), oy), iy),
                vmulq_f32(vsubq_f32(vld1q_f32(boxes.max_y.as_ptr().add(lane)), oy), iy),
                vmulq_f32(vsubq_f32(vld1q_f32(boxes.min_z.as_ptr().add(lane)), oz), iz),
                vmulq_f32(vsubq_f32(vld1q_f32(boxes.max_z.as_ptr().add(lane)), oz), iz),
            );
            // Contracted form mirroring the portable `fma` path:
            // vfmaq(-(o*i), slab, i) == slab*i - o*i with one fused rounding.
            #[cfg(feature = "fma")]
            let (t0x, t1x, t0y, t1y, t0z, t1z) = {
                let nx = vnegq_f32(vmulq_f32(ox, ix));
                let ny = vnegq_f32(vmulq_f32(oy, iy));
                let nz = vnegq_f32(vmulq_f32(oz, iz));
                (
                    vfmaq_f32(nx, vld1q_f32(boxes.min_x.as_ptr().add(lane)), ix),
                    vfmaq_f32(nx, vld1q_f32(boxes.max_x.as_ptr().add(lane)), ix),
                    vfmaq_f32(ny, vld1q_f32(boxes.min_y.as_ptr().add(lane)), iy),
                    vfmaq_f32(ny, vld1q_f32(boxes.max_y.as_ptr().add(lane)), iy),
                    vfmaq_f32(nz, vld1q_f32(boxes.min_z.as_ptr().add(lane)), iz),
                    vfmaq_f32(nz, vld1q_f32(boxes.max_z.as_ptr().add(lane)), iz),
                )
            };
            let near_x = vminnmq_f32(t0x, t1x);
            let near_y = vminnmq_f32(t0y, t1y);
            let near_z = vminnmq_f32(t0z, t1z);
            let far_x = vmaxnmq_f32(t0x, t1x);
            let far_y = vmaxnmq_f32(t0y, t1y);
            let far_z = vmaxnmq_f32(t0z, t1z);
            // `+ 0.0` canonicalizes `-0.0` to `+0.0`, as in the scalar test.
            let zero = vdupq_n_f32(0.0);
            let enter = vaddq_f32(
                vmaxnmq_f32(vmaxnmq_f32(vmaxnmq_f32(near_x, near_y), near_z), zero),
                zero,
            );
            let exit = vaddq_f32(vminnmq_f32(vminnmq_f32(far_x, far_y), far_z), zero);
            (enter, exit, vcleq_f32(enter, exit))
        }
    }

    /// NEON slab kernel: two 4-lane halves over the 8-wide storage.
    pub fn slab_test_8_neon(ray: &RayInv, boxes: &SoaAabbs) -> HitMask8 {
        // SAFETY: NEON is mandatory on aarch64; loads stay inside the
        // 8-wide arrays.
        unsafe {
            let ox = vdupq_n_f32(ray.origin.x);
            let oy = vdupq_n_f32(ray.origin.y);
            let oz = vdupq_n_f32(ray.origin.z);
            let ix = vdupq_n_f32(ray.inv_direction.x);
            let iy = vdupq_n_f32(ray.inv_direction.y);
            let iz = vdupq_n_f32(ray.inv_direction.z);
            let (enter_lo, exit_lo, hit_lo) = slab_half(boxes, 0, ox, oy, oz, ix, iy, iz);
            let (enter_hi, exit_hi, hit_hi) = slab_half(boxes, 4, ox, oy, oz, ix, iy, iz);
            let mut t_enter = [0.0f32; LANES];
            let mut t_exit = [0.0f32; LANES];
            vst1q_f32(t_enter.as_mut_ptr(), enter_lo);
            vst1q_f32(t_enter.as_mut_ptr().add(4), enter_hi);
            vst1q_f32(t_exit.as_mut_ptr(), exit_lo);
            vst1q_f32(t_exit.as_mut_ptr().add(4), exit_hi);
            let mask = movemask(hit_lo, 0) | movemask(hit_hi, 4);
            HitMask8 {
                t_enter,
                t_exit,
                mask: mask & boxes.lane_mask(),
            }
        }
    }

    /// NEON batched Möller–Trumbore: 4 independent triangle lanes, only
    /// lane-wise operations.
    pub fn ray_triangle_4_neon(ray: &Ray, tris: &Tri4) -> Tri4Hit {
        // SAFETY: NEON is mandatory on aarch64.
        unsafe {
            let ox = vdupq_n_f32(ray.origin.x);
            let oy = vdupq_n_f32(ray.origin.y);
            let oz = vdupq_n_f32(ray.origin.z);
            let dx = vdupq_n_f32(ray.direction.x);
            let dy = vdupq_n_f32(ray.direction.y);
            let dz = vdupq_n_f32(ray.direction.z);
            let v0x = vld1q_f32(tris.v0x.as_ptr());
            let v0y = vld1q_f32(tris.v0y.as_ptr());
            let v0z = vld1q_f32(tris.v0z.as_ptr());
            let e1x = vsubq_f32(vld1q_f32(tris.v1x.as_ptr()), v0x);
            let e1y = vsubq_f32(vld1q_f32(tris.v1y.as_ptr()), v0y);
            let e1z = vsubq_f32(vld1q_f32(tris.v1z.as_ptr()), v0z);
            let e2x = vsubq_f32(vld1q_f32(tris.v2x.as_ptr()), v0x);
            let e2y = vsubq_f32(vld1q_f32(tris.v2y.as_ptr()), v0y);
            let e2z = vsubq_f32(vld1q_f32(tris.v2z.as_ptr()), v0z);
            let px = vsubq_f32(vmulq_f32(dy, e2z), vmulq_f32(dz, e2y));
            let py = vsubq_f32(vmulq_f32(dz, e2x), vmulq_f32(dx, e2z));
            let pz = vsubq_f32(vmulq_f32(dx, e2y), vmulq_f32(dy, e2x));
            let det = vaddq_f32(
                vaddq_f32(vmulq_f32(e1x, px), vmulq_f32(e1y, py)),
                vmulq_f32(e1z, pz),
            );
            // pass = !(|det| < 1e-12): NaN determinants pass, as in scalar.
            let mut pass = vmvnq_u32(vcltq_f32(vabsq_f32(det), vdupq_n_f32(1e-12)));
            let inv_det = vdivq_f32(vdupq_n_f32(1.0), det);
            let sx = vsubq_f32(ox, v0x);
            let sy = vsubq_f32(oy, v0y);
            let sz = vsubq_f32(oz, v0z);
            let u = vmulq_f32(
                vaddq_f32(
                    vaddq_f32(vmulq_f32(sx, px), vmulq_f32(sy, py)),
                    vmulq_f32(sz, pz),
                ),
                inv_det,
            );
            pass = vandq_u32(pass, vcleq_f32(vdupq_n_f32(0.0), u));
            pass = vandq_u32(pass, vcleq_f32(u, vdupq_n_f32(1.0)));
            let qx = vsubq_f32(vmulq_f32(sy, e1z), vmulq_f32(sz, e1y));
            let qy = vsubq_f32(vmulq_f32(sz, e1x), vmulq_f32(sx, e1z));
            let qz = vsubq_f32(vmulq_f32(sx, e1y), vmulq_f32(sy, e1x));
            let v = vmulq_f32(
                vaddq_f32(
                    vaddq_f32(vmulq_f32(dx, qx), vmulq_f32(dy, qy)),
                    vmulq_f32(dz, qz),
                ),
                inv_det,
            );
            pass = vandq_u32(pass, vmvnq_u32(vcltq_f32(v, vdupq_n_f32(0.0))));
            pass = vandq_u32(
                pass,
                vmvnq_u32(vcgtq_f32(vaddq_f32(u, v), vdupq_n_f32(1.0))),
            );
            let t = vmulq_f32(
                vaddq_f32(
                    vaddq_f32(vmulq_f32(e2x, qx), vmulq_f32(e2y, qy)),
                    vmulq_f32(e2z, qz),
                ),
                inv_det,
            );
            pass = vandq_u32(pass, vmvnq_u32(vcltq_f32(t, vdupq_n_f32(0.0))));
            let mut out = Tri4Hit {
                t: [0.0; 4],
                u: [0.0; 4],
                v: [0.0; 4],
                mask: 0,
            };
            vst1q_f32(out.t.as_mut_ptr(), t);
            vst1q_f32(out.u.as_mut_ptr(), u);
            vst1q_f32(out.v.as_mut_ptr(), v);
            out.mask = movemask(pass, 0) & tris.lane_mask();
            out
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::intersect::ray_triangle;

    /// Masked-out lanes hold garbage (possibly NaN), so path-equality
    /// checks compare masks plus live-lane bits, not whole structs.
    fn assert_slab_paths_equal(a: &HitMask8, b: &HitMask8) {
        assert_eq!(a.mask, b.mask, "hit masks diverge");
        for i in 0..LANES {
            if a.mask & (1 << i) != 0 {
                assert_eq!(a.t_enter[i].to_bits(), b.t_enter[i].to_bits(), "lane {i}");
                assert_eq!(a.t_exit[i].to_bits(), b.t_exit[i].to_bits(), "lane {i}");
            }
        }
    }

    fn assert_tri_paths_equal(a: &Tri4Hit, b: &Tri4Hit) {
        assert_eq!(a.mask, b.mask, "hit masks diverge");
        for i in 0..4 {
            if a.mask & (1 << i) != 0 {
                assert_eq!(a.t[i].to_bits(), b.t[i].to_bits(), "lane {i} t");
                assert_eq!(a.u[i].to_bits(), b.u[i].to_bits(), "lane {i} u");
                assert_eq!(a.v[i].to_bits(), b.v[i].to_bits(), "lane {i} v");
            }
        }
    }

    fn boxes8() -> Vec<Aabb> {
        (0..8)
            .map(|i| {
                let c = Vec3::new(i as f32 * 3.0, 0.2 * i as f32, 0.0);
                Aabb::from_center_half_extent(c, Vec3::splat(1.0))
            })
            .collect()
    }

    #[test]
    fn soa_round_trips_boxes() {
        let boxes = boxes8();
        let soa = SoaAabbs::from_aabbs(&boxes);
        assert_eq!(soa.len(), 8);
        assert_eq!(soa.lane_mask(), 0b1111_1111);
        for (i, &b) in boxes.iter().enumerate() {
            assert_eq!(soa.get(i), b);
        }
    }

    // FMA contraction deliberately changes bits, so the bitwise-vs-scalar
    // assertions only run on the default path; the `fma` build keeps the
    // mask-level sanity tests below.
    #[cfg(not(feature = "fma"))]
    #[test]
    fn slab_lanes_match_scalar_bitwise() {
        let boxes = boxes8();
        let soa = SoaAabbs::from_aabbs(&boxes);
        let ray = Ray::new(
            Vec3::new(-4.0, 0.1, 0.05),
            Vec3::new(1.0, 0.02, 0.01).normalized(),
        );
        let hit = slab_test_8(&ray.inv(), &soa);
        let portable = slab_test_8_portable(&ray.inv(), &soa);
        assert_slab_paths_equal(&hit, &portable);
        for (i, b) in boxes.iter().enumerate() {
            match (b.intersect_ray(&ray), hit.hit(i)) {
                (Some((se, sx)), Some((ve, vx))) => {
                    assert_eq!(se.to_bits(), ve.to_bits(), "lane {i} entry");
                    assert_eq!(sx.to_bits(), vx.to_bits(), "lane {i} exit");
                }
                (None, None) => {}
                (s, v) => panic!("lane {i}: scalar {s:?} vs simd {v:?}"),
            }
        }
    }

    #[cfg(not(feature = "fma"))]
    #[test]
    fn axis_parallel_ray_matches_scalar() {
        // Zero direction components make the slab arithmetic produce
        // 0 * inf = NaN; the kernel must resolve them like the scalar.
        let boxes = vec![
            Aabb::new(Vec3::new(-1.0, -1.0, 1.0), Vec3::new(1.0, 1.0, 3.0)),
            Aabb::new(Vec3::new(2.0, -1.0, 1.0), Vec3::new(4.0, 1.0, 3.0)),
            // Degenerate: zero-extent slab exactly at the origin plane.
            Aabb::new(Vec3::new(0.0, -1.0, 1.0), Vec3::new(0.0, 1.0, 3.0)),
        ];
        let soa = SoaAabbs::from_aabbs(&boxes);
        let ray = Ray::new(Vec3::ZERO, Vec3::Z);
        let hit = slab_test_8(&ray.inv(), &soa);
        for (i, b) in boxes.iter().enumerate() {
            assert_eq!(
                b.intersect_ray(&ray),
                hit.hit(i),
                "lane {i} disagrees on an axis-parallel ray"
            );
        }
    }

    #[test]
    fn sentinel_lanes_never_hit() {
        let soa = SoaAabbs::from_aabbs(&[Aabb::new(Vec3::splat(-1.0), Vec3::splat(1.0))]);
        let ray = Ray::new(Vec3::new(0.0, 0.0, -5.0), Vec3::Z);
        let hit = slab_test_8(&ray.inv(), &soa);
        assert_eq!(hit.mask, 0b1, "only the occupied lane may hit");
        assert!(SoaAabbs::EMPTY.is_empty());
        assert_eq!(
            slab_test_8(&ray.inv(), &SoaAabbs::EMPTY).mask,
            0,
            "empty node hits nothing"
        );
    }

    #[test]
    fn packet_rays_match_single_ray_kernel_bitwise() {
        // The packet kernel must be a pure transpose: packet lane `r`
        // bitwise-equals a single-ray kernel call. This holds on every
        // path, including `fma` builds (both sides contract identically).
        let boxes = boxes8();
        let soa = SoaAabbs::from_aabbs(&boxes);
        let rays: [Ray; 4] = [
            Ray::new(
                Vec3::new(-4.0, 0.1, 0.05),
                Vec3::new(1.0, 0.02, 0.01).normalized(),
            ),
            Ray::new(
                Vec3::new(-4.0, 0.3, -0.05),
                Vec3::new(1.0, 0.01, -0.02).normalized(),
            ),
            Ray::new(Vec3::new(2.0, 8.0, 0.0), Vec3::new(0.0, -1.0, 0.0)),
            Ray::new(Vec3::new(30.0, 0.0, 0.0), Vec3::X),
        ];
        let invs = [rays[0].inv(), rays[1].inv(), rays[2].inv(), rays[3].inv()];
        let packet = slab_test_8x4(&invs, &soa);
        let portable = slab_test_8x4_portable(&invs, &soa);
        for r in 0..4 {
            assert_slab_paths_equal(&packet[r], &slab_test_8(&invs[r], &soa));
            assert_slab_paths_equal(&portable[r], &slab_test_8_portable(&invs[r], &soa));
        }
    }

    #[cfg(feature = "fma")]
    #[test]
    fn fma_kernel_agrees_with_scalar_on_clear_cut_hits() {
        // Contraction shifts t values by at most one rounding step, so
        // hit/miss decisions on non-borderline boxes still match the
        // scalar test even though bits may differ.
        let boxes = boxes8();
        let soa = SoaAabbs::from_aabbs(&boxes);
        let ray = Ray::new(
            Vec3::new(-4.0, 0.1, 0.05),
            Vec3::new(1.0, 0.02, 0.01).normalized(),
        );
        let hit = slab_test_8(&ray.inv(), &soa);
        for (i, b) in boxes.iter().enumerate() {
            assert_eq!(
                b.intersect_ray(&ray).is_some(),
                hit.hit(i).is_some(),
                "lane {i} hit/miss diverged under fma"
            );
        }
    }

    #[test]
    fn triangle_lanes_match_scalar_bitwise() {
        let tris = [
            [Vec3::ZERO, Vec3::X, Vec3::Y],
            [
                Vec3::new(0.0, 0.0, 1.0),
                Vec3::new(1.0, 0.0, 1.0),
                Vec3::new(0.0, 1.0, 1.0),
            ],
            [
                Vec3::new(5.0, 0.0, 0.0),
                Vec3::new(6.0, 0.0, 0.0),
                Vec3::new(5.0, 1.0, 0.0),
            ],
            // Degenerate sliver (zero area).
            [Vec3::ZERO, Vec3::X, Vec3::X * 2.0],
        ];
        let packet = Tri4::from_triangles(&tris);
        let ray = Ray::new(Vec3::new(0.25, 0.25, -2.0), Vec3::Z);
        let batched = ray_triangle_4(&ray, &packet);
        let portable = ray_triangle_4_portable(&ray, &packet);
        assert_tri_paths_equal(&batched, &portable);
        for (i, [a, b, c]) in tris.iter().enumerate() {
            match (ray_triangle(&ray, *a, *b, *c), batched.hit(i)) {
                (Some(s), Some(v)) => {
                    assert_eq!(s.t.to_bits(), v.t.to_bits(), "lane {i} t");
                    assert_eq!(s.u.to_bits(), v.u.to_bits(), "lane {i} u");
                    assert_eq!(s.v.to_bits(), v.v.to_bits(), "lane {i} v");
                }
                (None, None) => {}
                (s, v) => panic!("lane {i}: scalar {s:?} vs simd {v:?}"),
            }
        }
    }

    #[test]
    fn triangle_padding_lanes_never_hit() {
        let packet = Tri4::from_triangles(&[[Vec3::ZERO, Vec3::X, Vec3::Y]]);
        assert_eq!(packet.len(), 1);
        assert!(!packet.is_empty());
        let ray = Ray::new(Vec3::new(0.25, 0.25, -2.0), Vec3::Z);
        let hit = ray_triangle_4(&ray, &packet);
        assert_eq!(hit.mask, 0b1);
    }
}
