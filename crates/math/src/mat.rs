//! 3×3 and 4×4 matrices (column-major, matching GPU conventions).

use crate::vec::{Vec3, Vec4};
use std::ops::Mul;

/// A 3×3 `f32` matrix stored as three column vectors.
///
/// Used for Gaussian covariance factors (rotation × scale) and for the
/// linear part of instance transforms.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Mat3 {
    /// First column.
    pub x_axis: Vec3,
    /// Second column.
    pub y_axis: Vec3,
    /// Third column.
    pub z_axis: Vec3,
}

impl Mat3 {
    /// The identity matrix.
    pub const IDENTITY: Self = Self {
        x_axis: Vec3::X,
        y_axis: Vec3::Y,
        z_axis: Vec3::Z,
    };

    /// Builds a matrix from column vectors.
    pub const fn from_cols(x_axis: Vec3, y_axis: Vec3, z_axis: Vec3) -> Self {
        Self {
            x_axis,
            y_axis,
            z_axis,
        }
    }

    /// Builds a diagonal matrix.
    pub const fn from_diagonal(d: Vec3) -> Self {
        Self {
            x_axis: Vec3::new(d.x, 0.0, 0.0),
            y_axis: Vec3::new(0.0, d.y, 0.0),
            z_axis: Vec3::new(0.0, 0.0, d.z),
        }
    }

    /// Returns column `i` (0..3).
    ///
    /// # Panics
    ///
    /// Panics if `i >= 3`.
    pub fn col(&self, i: usize) -> Vec3 {
        match i {
            0 => self.x_axis,
            1 => self.y_axis,
            2 => self.z_axis,
            _ => panic!("Mat3 column index out of range: {i}"),
        }
    }

    /// Returns row `i` (0..3).
    ///
    /// # Panics
    ///
    /// Panics if `i >= 3`.
    pub fn row(&self, i: usize) -> Vec3 {
        Vec3::new(self.x_axis[i], self.y_axis[i], self.z_axis[i])
    }

    /// Matrix transpose.
    pub fn transpose(&self) -> Self {
        Self::from_cols(self.row(0), self.row(1), self.row(2))
    }

    /// Determinant.
    pub fn determinant(&self) -> f32 {
        self.x_axis.dot(self.y_axis.cross(self.z_axis))
    }

    /// Matrix inverse.
    ///
    /// Returns `None` when the matrix is singular (|det| below `1e-20`).
    pub fn inverse(&self) -> Option<Self> {
        let det = self.determinant();
        if det.abs() < 1e-20 {
            return None;
        }
        let inv_det = 1.0 / det;
        // Adjugate-transpose method: columns of the inverse are the scaled
        // cross products of the original columns.
        let a = self.y_axis.cross(self.z_axis) * inv_det;
        let b = self.z_axis.cross(self.x_axis) * inv_det;
        let c = self.x_axis.cross(self.y_axis) * inv_det;
        // a, b, c are the *rows* of the inverse.
        Some(Self::from_cols(
            Vec3::new(a.x, b.x, c.x),
            Vec3::new(a.y, b.y, c.y),
            Vec3::new(a.z, b.z, c.z),
        ))
    }

    /// Multiplies a vector: `self * v`.
    pub fn mul_vec3(&self, v: Vec3) -> Vec3 {
        self.x_axis * v.x + self.y_axis * v.y + self.z_axis * v.z
    }

    /// Computes the symmetric product `M * M^T`, used to form a covariance
    /// matrix from its factor `M = R * S`.
    pub fn mul_self_transpose(&self) -> Self {
        self.mul_mat3(&self.transpose())
    }

    /// Matrix product `self * other`.
    pub fn mul_mat3(&self, other: &Self) -> Self {
        Self::from_cols(
            self.mul_vec3(other.x_axis),
            self.mul_vec3(other.y_axis),
            self.mul_vec3(other.z_axis),
        )
    }
}

impl Default for Mat3 {
    fn default() -> Self {
        Self::IDENTITY
    }
}

impl Mul<Vec3> for Mat3 {
    type Output = Vec3;
    fn mul(self, v: Vec3) -> Vec3 {
        self.mul_vec3(v)
    }
}

impl Mul for Mat3 {
    type Output = Mat3;
    fn mul(self, rhs: Mat3) -> Mat3 {
        self.mul_mat3(&rhs)
    }
}

/// A 4×4 `f32` matrix stored as four column vectors.
///
/// Used for camera view matrices and full homogeneous transforms.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Mat4 {
    /// First column.
    pub x_axis: Vec4,
    /// Second column.
    pub y_axis: Vec4,
    /// Third column.
    pub z_axis: Vec4,
    /// Fourth column (translation in affine matrices).
    pub w_axis: Vec4,
}

impl Mat4 {
    /// The identity matrix.
    pub const IDENTITY: Self = Self {
        x_axis: Vec4::new(1.0, 0.0, 0.0, 0.0),
        y_axis: Vec4::new(0.0, 1.0, 0.0, 0.0),
        z_axis: Vec4::new(0.0, 0.0, 1.0, 0.0),
        w_axis: Vec4::new(0.0, 0.0, 0.0, 1.0),
    };

    /// Builds a matrix from column vectors.
    pub const fn from_cols(x_axis: Vec4, y_axis: Vec4, z_axis: Vec4, w_axis: Vec4) -> Self {
        Self {
            x_axis,
            y_axis,
            z_axis,
            w_axis,
        }
    }

    /// Builds an affine matrix from a linear part and a translation.
    pub fn from_linear_translation(linear: Mat3, translation: Vec3) -> Self {
        Self::from_cols(
            linear.x_axis.extend(0.0),
            linear.y_axis.extend(0.0),
            linear.z_axis.extend(0.0),
            translation.extend(1.0),
        )
    }

    /// The upper-left 3×3 linear part.
    pub fn linear(&self) -> Mat3 {
        Mat3::from_cols(
            self.x_axis.truncate(),
            self.y_axis.truncate(),
            self.z_axis.truncate(),
        )
    }

    /// The translation column.
    pub fn translation(&self) -> Vec3 {
        self.w_axis.truncate()
    }

    /// Transforms a point (w = 1).
    pub fn transform_point(&self, p: Vec3) -> Vec3 {
        self.linear().mul_vec3(p) + self.translation()
    }

    /// Transforms a direction (w = 0).
    pub fn transform_vector(&self, v: Vec3) -> Vec3 {
        self.linear().mul_vec3(v)
    }

    /// Matrix product `self * other`.
    pub fn mul_mat4(&self, other: &Self) -> Self {
        let mul_vec4 =
            |v: Vec4| self.x_axis * v.x + self.y_axis * v.y + self.z_axis * v.z + self.w_axis * v.w;
        Self::from_cols(
            mul_vec4(other.x_axis),
            mul_vec4(other.y_axis),
            mul_vec4(other.z_axis),
            mul_vec4(other.w_axis),
        )
    }

    /// Inverse of an affine matrix (linear part must be invertible).
    ///
    /// Returns `None` when the linear part is singular.
    pub fn affine_inverse(&self) -> Option<Self> {
        let inv_linear = self.linear().inverse()?;
        let inv_translation = -(inv_linear.mul_vec3(self.translation()));
        Some(Self::from_linear_translation(inv_linear, inv_translation))
    }

    /// Right-handed look-at view matrix (camera at `eye`, looking at
    /// `center`, with up vector `up`).
    pub fn look_at(eye: Vec3, center: Vec3, up: Vec3) -> Self {
        let f = (center - eye).normalized();
        let s = f.cross(up).normalized();
        let u = s.cross(f);
        // World-to-camera: rows are the camera basis.
        Self::from_cols(
            Vec4::new(s.x, u.x, -f.x, 0.0),
            Vec4::new(s.y, u.y, -f.y, 0.0),
            Vec4::new(s.z, u.z, -f.z, 0.0),
            Vec4::new(-s.dot(eye), -u.dot(eye), f.dot(eye), 1.0),
        )
    }
}

impl Default for Mat4 {
    fn default() -> Self {
        Self::IDENTITY
    }
}

impl Mul for Mat4 {
    type Output = Mat4;
    fn mul(self, rhs: Mat4) -> Mat4 {
        self.mul_mat4(&rhs)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::EPS;

    fn assert_vec3_close(a: Vec3, b: Vec3) {
        assert!((a - b).length() < 1e-4, "{a} != {b}");
    }

    #[test]
    fn identity_preserves_vectors() {
        let v = Vec3::new(1.0, -2.0, 3.0);
        assert_eq!(Mat3::IDENTITY.mul_vec3(v), v);
    }

    #[test]
    fn diagonal_scales_components() {
        let m = Mat3::from_diagonal(Vec3::new(2.0, 3.0, 4.0));
        assert_eq!(m.mul_vec3(Vec3::ONE), Vec3::new(2.0, 3.0, 4.0));
    }

    #[test]
    fn transpose_swaps_rows_and_cols() {
        let m = Mat3::from_cols(
            Vec3::new(1.0, 2.0, 3.0),
            Vec3::new(4.0, 5.0, 6.0),
            Vec3::new(7.0, 8.0, 9.0),
        );
        let t = m.transpose();
        assert_eq!(t.x_axis, Vec3::new(1.0, 4.0, 7.0));
        assert_eq!(t.row(0), m.col(0));
    }

    #[test]
    fn inverse_times_original_is_identity() {
        let m = Mat3::from_cols(
            Vec3::new(2.0, 0.0, 1.0),
            Vec3::new(-1.0, 3.0, 0.5),
            Vec3::new(0.0, 1.0, 4.0),
        );
        let inv = m.inverse().expect("invertible");
        let prod = m.mul_mat3(&inv);
        assert_vec3_close(prod.x_axis, Vec3::X);
        assert_vec3_close(prod.y_axis, Vec3::Y);
        assert_vec3_close(prod.z_axis, Vec3::Z);
    }

    #[test]
    fn singular_matrix_has_no_inverse() {
        let m = Mat3::from_cols(Vec3::X, Vec3::X, Vec3::Z);
        assert!(m.inverse().is_none());
    }

    #[test]
    fn determinant_of_diagonal_is_product() {
        let m = Mat3::from_diagonal(Vec3::new(2.0, 3.0, 4.0));
        assert!((m.determinant() - 24.0).abs() < EPS);
    }

    #[test]
    fn mat4_affine_inverse_round_trips_points() {
        let linear = Mat3::from_cols(
            Vec3::new(0.0, 1.0, 0.0),
            Vec3::new(-2.0, 0.0, 0.0),
            Vec3::new(0.0, 0.0, 3.0),
        );
        let m = Mat4::from_linear_translation(linear, Vec3::new(5.0, -1.0, 2.0));
        let inv = m.affine_inverse().expect("invertible");
        let p = Vec3::new(0.3, 0.7, -1.2);
        assert_vec3_close(inv.transform_point(m.transform_point(p)), p);
    }

    #[test]
    fn look_at_maps_eye_to_origin() {
        let eye = Vec3::new(1.0, 2.0, 3.0);
        let view = Mat4::look_at(eye, Vec3::ZERO, Vec3::Y);
        assert_vec3_close(view.transform_point(eye), Vec3::ZERO);
    }

    #[test]
    fn look_at_center_is_on_negative_z() {
        let eye = Vec3::new(0.0, 0.0, 5.0);
        let view = Mat4::look_at(eye, Vec3::ZERO, Vec3::Y);
        let c = view.transform_point(Vec3::ZERO);
        assert_vec3_close(c, Vec3::new(0.0, 0.0, -5.0));
    }

    #[test]
    fn mul_self_transpose_is_symmetric() {
        let m = Mat3::from_cols(
            Vec3::new(1.0, 0.2, 0.0),
            Vec3::new(0.0, 2.0, 0.3),
            Vec3::new(0.5, 0.0, 3.0),
        );
        let s = m.mul_self_transpose();
        assert!((s.row(0).y - s.row(1).x).abs() < EPS);
        assert!((s.row(0).z - s.row(2).x).abs() < EPS);
        assert!((s.row(1).z - s.row(2).y).abs() < EPS);
    }
}
