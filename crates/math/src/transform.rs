//! Affine instance transforms.
//!
//! The core geometric insight of GRTX-SW (Section IV-A): a TLAS leaf stores
//! the affine map of one Gaussian instance; transforming the ray by the
//! *inverse* map turns the anisotropic ellipsoid into the unit sphere, so a
//! single shared BLAS suffices for every Gaussian in the scene. Modern RT
//! hardware performs exactly this transform at instance nodes.

use crate::mat::Mat3;
use crate::ray::Ray;
use crate::vec::Vec3;

/// An affine transform `x -> linear * x + translation` with its cached
/// inverse, mirroring the 3×4 transform matrices stored in TLAS instance
/// nodes (plus the world-to-object matrix the hardware keeps alongside).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Affine3 {
    /// Object-to-world linear part (rotation × scale for Gaussians).
    pub linear: Mat3,
    /// Object-to-world translation (the Gaussian mean).
    pub translation: Vec3,
    /// Cached world-to-object linear part.
    pub inv_linear: Mat3,
}

impl Affine3 {
    /// The identity transform.
    pub const IDENTITY: Self = Self {
        linear: Mat3::IDENTITY,
        translation: Vec3::ZERO,
        inv_linear: Mat3::IDENTITY,
    };

    /// Creates a transform from a linear part and translation.
    ///
    /// Returns `None` when `linear` is singular (a degenerate Gaussian with
    /// a zero scale axis), which callers must filter out at scene load.
    pub fn new(linear: Mat3, translation: Vec3) -> Option<Self> {
        let inv_linear = linear.inverse()?;
        Some(Self {
            linear,
            translation,
            inv_linear,
        })
    }

    /// Transforms a point object → world.
    pub fn transform_point(&self, p: Vec3) -> Vec3 {
        self.linear.mul_vec3(p) + self.translation
    }

    /// Transforms a point world → object.
    pub fn inverse_transform_point(&self, p: Vec3) -> Vec3 {
        self.inv_linear.mul_vec3(p - self.translation)
    }

    /// Transforms a world-space ray into object space — the ray-transform
    /// fixed-function unit of the RT core.
    ///
    /// The direction is *not* renormalized, so `t` values measured in
    /// object space equal world-space `t` values. This property is what
    /// lets the k-buffer compare `t_hit` from different instances directly.
    pub fn inverse_transform_ray(&self, ray: &Ray) -> Ray {
        Ray::new(
            self.inverse_transform_point(ray.origin),
            self.inv_linear.mul_vec3(ray.direction),
        )
    }
}

impl Default for Affine3 {
    fn default() -> Self {
        Self::IDENTITY
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::intersect::{ray_ellipsoid, ray_sphere_unit};
    use crate::quat::Quat;

    #[test]
    fn identity_round_trip() {
        let p = Vec3::new(1.0, 2.0, 3.0);
        let t = Affine3::IDENTITY;
        assert_eq!(t.transform_point(p), p);
        assert_eq!(t.inverse_transform_point(p), p);
    }

    #[test]
    fn inverse_transform_point_round_trips() {
        let linear = Quat::from_axis_angle(Vec3::new(0.3, 1.0, -0.2), 0.7)
            .to_mat3()
            .mul_mat3(&Mat3::from_diagonal(Vec3::new(2.0, 0.5, 1.5)));
        let t = Affine3::new(linear, Vec3::new(4.0, -2.0, 1.0)).expect("invertible");
        let p = Vec3::new(-1.0, 0.4, 2.2);
        let q = t.inverse_transform_point(t.transform_point(p));
        assert!((q - p).length() < 1e-4);
    }

    #[test]
    fn degenerate_scale_is_rejected() {
        let linear = Mat3::from_diagonal(Vec3::new(1.0, 0.0, 1.0));
        assert!(Affine3::new(linear, Vec3::ZERO).is_none());
    }

    #[test]
    fn transformed_ray_preserves_t_parameterization() {
        // The GRTX-SW insight: intersecting the world-space ellipsoid and
        // intersecting the unit sphere with the transformed ray must report
        // the same t values.
        let rot = Quat::from_axis_angle(Vec3::new(1.0, 2.0, 0.5), 1.1).to_mat3();
        let scale = Mat3::from_diagonal(Vec3::new(3.0, 0.4, 1.2));
        let linear = rot.mul_mat3(&scale);
        let center = Vec3::new(2.0, -1.0, 5.0);
        let instance = Affine3::new(linear, center).expect("invertible");

        let ray = Ray::new(
            Vec3::new(-4.0, 0.5, 0.0),
            (center - Vec3::new(-4.0, 0.5, 0.0)).normalized(),
        );
        let world_hit = ray_ellipsoid(&ray, center, &instance.inv_linear).expect("hit");
        let local_ray = instance.inverse_transform_ray(&ray);
        let local_hit = ray_sphere_unit(&local_ray).expect("hit");

        assert!((world_hit.t_enter - local_hit.t_enter).abs() < 1e-3);
        assert!((world_hit.t_exit - local_hit.t_exit).abs() < 1e-3);
    }
}
