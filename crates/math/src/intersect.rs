//! Ray–primitive intersection routines.
//!
//! These correspond one-to-one with the fixed-function intersection units in
//! the paper's RT core model: ray–triangle (all RT generations), ray–sphere
//! (Blackwell-class hardware, Section VI), and the software custom-primitive
//! (ellipsoid) test that runs in a user-defined intersection shader.

use crate::ray::Ray;
use crate::vec::Vec3;

/// A hit against a convex primitive, reporting the entry/exit distances.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SpanHit {
    /// Distance at which the ray enters the primitive (clamped to 0 when
    /// the origin is inside).
    pub t_enter: f32,
    /// Distance at which the ray exits.
    pub t_exit: f32,
}

/// A hit against a surface primitive (triangle).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SurfaceHit {
    /// Hit distance along the ray.
    pub t: f32,
    /// Barycentric `u` coordinate.
    pub u: f32,
    /// Barycentric `v` coordinate.
    pub v: f32,
}

/// Ray–unit-sphere test (sphere of radius 1 centered at the origin).
///
/// This is the intersection the shared BLAS performs after the TLAS leaf
/// transforms the ray into Gaussian-local space: the anisotropic ellipsoid
/// becomes exactly the unit sphere, so the test has no false positives.
///
/// Returns `None` if the ray misses or the sphere is entirely behind the
/// origin.
pub fn ray_sphere_unit(ray: &Ray) -> Option<SpanHit> {
    // |o + t d|^2 = 1  =>  (d.d) t^2 + 2 (o.d) t + (o.o - 1) = 0
    let a = ray.direction.dot(ray.direction);
    let half_b = ray.origin.dot(ray.direction);
    let c = ray.origin.dot(ray.origin) - 1.0;
    let disc = half_b * half_b - a * c;
    if disc < 0.0 || a == 0.0 {
        return None;
    }
    let sqrt_disc = disc.sqrt();
    let t0 = (-half_b - sqrt_disc) / a;
    let t1 = (-half_b + sqrt_disc) / a;
    if t1 < 0.0 {
        return None;
    }
    Some(SpanHit {
        t_enter: t0.max(0.0),
        t_exit: t1,
    })
}

/// Ray–sphere test against a sphere of radius `radius` centered at
/// `center`, used by the secondary-ray scene objects (glass sphere).
pub fn ray_sphere(ray: &Ray, center: Vec3, radius: f32) -> Option<SpanHit> {
    let local = Ray::new((ray.origin - center) / radius, ray.direction / radius);
    // The local parameterization rescales t by 1/radius only if direction is
    // scaled too; by dividing both origin offset and direction by radius the
    // returned t values remain in world units.
    ray_sphere_unit(&local)
}

/// Möller–Trumbore ray–triangle intersection, the operation of the
/// hardware ray–triangle unit.
///
/// Returns `None` on a miss, a backface-culling-free hit otherwise (Gaussian
/// bounding meshes must report hits from either side).
pub fn ray_triangle(ray: &Ray, v0: Vec3, v1: Vec3, v2: Vec3) -> Option<SurfaceHit> {
    let e1 = v1 - v0;
    let e2 = v2 - v0;
    let p = ray.direction.cross(e2);
    let det = e1.dot(p);
    if det.abs() < 1e-12 {
        return None; // Ray parallel to the triangle plane.
    }
    let inv_det = 1.0 / det;
    let s = ray.origin - v0;
    let u = s.dot(p) * inv_det;
    if !(0.0..=1.0).contains(&u) {
        return None;
    }
    let q = s.cross(e1);
    let v = ray.direction.dot(q) * inv_det;
    if v < 0.0 || u + v > 1.0 {
        return None;
    }
    let t = e2.dot(q) * inv_det;
    if t < 0.0 {
        return None;
    }
    Some(SurfaceHit { t, u, v })
}

/// Software ellipsoid intersection: the "custom Gaussian primitive" path of
/// Figure 5, executed by a user-defined intersection shader rather than
/// fixed-function hardware.
///
/// The ellipsoid is `{ x : |S^-1 R^T (x - center)| = 1 }` where
/// `inv_linear = S^-1 R^T` is the world-to-canonical map. `t` values are in
/// world units because only the spatial embedding is warped, not the ray
/// parameterization.
pub fn ray_ellipsoid(ray: &Ray, center: Vec3, inv_linear: &crate::mat::Mat3) -> Option<SpanHit> {
    let local_origin = inv_linear.mul_vec3(ray.origin - center);
    let local_dir = inv_linear.mul_vec3(ray.direction);
    let local = Ray::new(local_origin, local_dir);
    ray_sphere_unit(&local)
}

/// Ray–quad test for the secondary-ray mirror object.
///
/// The quad is defined by a corner and two edge vectors; hits report the
/// plane distance when the hit point lies within both edge spans.
pub fn ray_quad(ray: &Ray, corner: Vec3, edge_u: Vec3, edge_v: Vec3) -> Option<f32> {
    let normal = edge_u.cross(edge_v);
    let denom = ray.direction.dot(normal);
    if denom.abs() < 1e-12 {
        return None;
    }
    let t = (corner - ray.origin).dot(normal) / denom;
    if t < 0.0 {
        return None;
    }
    let p = ray.at(t) - corner;
    let uu = edge_u.dot(edge_u);
    let vv = edge_v.dot(edge_v);
    let u = p.dot(edge_u) / uu;
    let v = p.dot(edge_v) / vv;
    if (0.0..=1.0).contains(&u) && (0.0..=1.0).contains(&v) {
        Some(t)
    } else {
        None
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::mat::Mat3;

    #[test]
    fn unit_sphere_head_on() {
        let r = Ray::new(Vec3::new(0.0, 0.0, -3.0), Vec3::Z);
        let hit = ray_sphere_unit(&r).expect("hit");
        assert!((hit.t_enter - 2.0).abs() < 1e-6);
        assert!((hit.t_exit - 4.0).abs() < 1e-6);
    }

    #[test]
    fn unit_sphere_miss() {
        let r = Ray::new(Vec3::new(0.0, 2.0, -3.0), Vec3::Z);
        assert!(ray_sphere_unit(&r).is_none());
    }

    #[test]
    fn unit_sphere_tangent_grazes() {
        let r = Ray::new(Vec3::new(0.0, 1.0, -3.0), Vec3::Z);
        let hit = ray_sphere_unit(&r).expect("tangent counts as hit");
        assert!((hit.t_enter - hit.t_exit).abs() < 1e-3);
    }

    #[test]
    fn unit_sphere_behind_origin_misses() {
        let r = Ray::new(Vec3::new(0.0, 0.0, 3.0), Vec3::Z);
        assert!(ray_sphere_unit(&r).is_none());
    }

    #[test]
    fn unit_sphere_origin_inside_enters_at_zero() {
        let r = Ray::new(Vec3::ZERO, Vec3::X);
        let hit = ray_sphere_unit(&r).expect("hit");
        assert_eq!(hit.t_enter, 0.0);
        assert!((hit.t_exit - 1.0).abs() < 1e-6);
    }

    #[test]
    fn offset_sphere_reports_world_distances() {
        let r = Ray::new(Vec3::ZERO, Vec3::X);
        let hit = ray_sphere(&r, Vec3::new(10.0, 0.0, 0.0), 2.0).expect("hit");
        assert!((hit.t_enter - 8.0).abs() < 1e-5);
        assert!((hit.t_exit - 12.0).abs() < 1e-5);
    }

    #[test]
    fn triangle_hit_reports_barycentrics() {
        let r = Ray::new(Vec3::new(0.25, 0.25, -1.0), Vec3::Z);
        let hit = ray_triangle(&r, Vec3::ZERO, Vec3::X, Vec3::Y).expect("hit");
        assert!((hit.t - 1.0).abs() < 1e-6);
        assert!((hit.u - 0.25).abs() < 1e-6);
        assert!((hit.v - 0.25).abs() < 1e-6);
    }

    #[test]
    fn triangle_hits_from_both_sides() {
        let front = Ray::new(Vec3::new(0.25, 0.25, -1.0), Vec3::Z);
        let back = Ray::new(Vec3::new(0.25, 0.25, 1.0), -Vec3::Z);
        assert!(ray_triangle(&front, Vec3::ZERO, Vec3::X, Vec3::Y).is_some());
        assert!(ray_triangle(&back, Vec3::ZERO, Vec3::X, Vec3::Y).is_some());
    }

    #[test]
    fn triangle_miss_outside_edges() {
        let r = Ray::new(Vec3::new(0.9, 0.9, -1.0), Vec3::Z);
        assert!(ray_triangle(&r, Vec3::ZERO, Vec3::X, Vec3::Y).is_none());
    }

    #[test]
    fn triangle_parallel_ray_misses() {
        let r = Ray::new(Vec3::new(0.0, 0.0, 1.0), Vec3::X);
        assert!(ray_triangle(&r, Vec3::ZERO, Vec3::X, Vec3::Y).is_none());
    }

    #[test]
    fn ellipsoid_matches_scaled_sphere() {
        // Ellipsoid with radii (2, 1, 1) at the origin: the world-to-local
        // map is diag(1/2, 1, 1).
        let inv_linear = Mat3::from_diagonal(Vec3::new(0.5, 1.0, 1.0));
        let r = Ray::new(Vec3::new(-5.0, 0.0, 0.0), Vec3::X);
        let hit = ray_ellipsoid(&r, Vec3::ZERO, &inv_linear).expect("hit");
        assert!((hit.t_enter - 3.0).abs() < 1e-5);
        assert!((hit.t_exit - 7.0).abs() < 1e-5);
    }

    #[test]
    fn quad_hit_and_miss() {
        let corner = Vec3::new(-1.0, -1.0, 0.0);
        let eu = Vec3::new(2.0, 0.0, 0.0);
        let ev = Vec3::new(0.0, 2.0, 0.0);
        let hit_ray = Ray::new(Vec3::new(0.0, 0.0, -2.0), Vec3::Z);
        assert!((ray_quad(&hit_ray, corner, eu, ev).expect("hit") - 2.0).abs() < 1e-6);
        let miss_ray = Ray::new(Vec3::new(3.0, 0.0, -2.0), Vec3::Z);
        assert!(ray_quad(&miss_ray, corner, eu, ev).is_none());
    }
}
