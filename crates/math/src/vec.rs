//! Fixed-size vector types (`Vec2`, `Vec3`, `Vec4`).

use std::fmt;
use std::ops::{
    Add, AddAssign, Div, DivAssign, Index, IndexMut, Mul, MulAssign, Neg, Sub, SubAssign,
};

/// A 2-component `f32` vector (used for image-plane coordinates).
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct Vec2 {
    /// Horizontal component.
    pub x: f32,
    /// Vertical component.
    pub y: f32,
}

impl Vec2 {
    /// Creates a vector from its components.
    pub const fn new(x: f32, y: f32) -> Self {
        Self { x, y }
    }

    /// The zero vector.
    pub const ZERO: Self = Self::new(0.0, 0.0);

    /// Dot product with `other`.
    pub fn dot(self, other: Self) -> f32 {
        self.x * other.x + self.y * other.y
    }

    /// Euclidean length.
    pub fn length(self) -> f32 {
        self.dot(self).sqrt()
    }
}

impl fmt::Display for Vec2 {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "({}, {})", self.x, self.y)
    }
}

/// A 3-component `f32` vector, the workhorse type of the crate.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct Vec3 {
    /// X component.
    pub x: f32,
    /// Y component.
    pub y: f32,
    /// Z component.
    pub z: f32,
}

impl Vec3 {
    /// Creates a vector from its components.
    pub const fn new(x: f32, y: f32, z: f32) -> Self {
        Self { x, y, z }
    }

    /// The zero vector.
    pub const ZERO: Self = Self::new(0.0, 0.0, 0.0);
    /// The all-ones vector.
    pub const ONE: Self = Self::new(1.0, 1.0, 1.0);
    /// Unit vector along +X.
    pub const X: Self = Self::new(1.0, 0.0, 0.0);
    /// Unit vector along +Y.
    pub const Y: Self = Self::new(0.0, 1.0, 0.0);
    /// Unit vector along +Z.
    pub const Z: Self = Self::new(0.0, 0.0, 1.0);

    /// Creates a vector with all components equal to `v`.
    pub const fn splat(v: f32) -> Self {
        Self::new(v, v, v)
    }

    /// Dot product with `other`.
    pub fn dot(self, other: Self) -> f32 {
        self.x * other.x + self.y * other.y + self.z * other.z
    }

    /// Cross product with `other` (right-handed).
    pub fn cross(self, other: Self) -> Self {
        Self::new(
            self.y * other.z - self.z * other.y,
            self.z * other.x - self.x * other.z,
            self.x * other.y - self.y * other.x,
        )
    }

    /// Euclidean length.
    pub fn length(self) -> f32 {
        self.dot(self).sqrt()
    }

    /// Squared Euclidean length (cheaper than [`Vec3::length`]).
    pub fn length_squared(self) -> f32 {
        self.dot(self)
    }

    /// Returns this vector scaled to unit length.
    ///
    /// # Panics
    ///
    /// Does not panic; a zero vector is returned unchanged (callers in the
    /// renderer guarantee non-degenerate directions).
    pub fn normalized(self) -> Self {
        let len = self.length();
        if len > 0.0 {
            self / len
        } else {
            self
        }
    }

    /// Component-wise minimum.
    pub fn min(self, other: Self) -> Self {
        Self::new(
            self.x.min(other.x),
            self.y.min(other.y),
            self.z.min(other.z),
        )
    }

    /// Component-wise maximum.
    pub fn max(self, other: Self) -> Self {
        Self::new(
            self.x.max(other.x),
            self.y.max(other.y),
            self.z.max(other.z),
        )
    }

    /// Component-wise absolute value.
    pub fn abs(self) -> Self {
        Self::new(self.x.abs(), self.y.abs(), self.z.abs())
    }

    /// Component-wise reciprocal; zero components map to `f32::INFINITY`
    /// with the sign of the zero, as ray-traversal slab tests expect.
    pub fn recip(self) -> Self {
        Self::new(1.0 / self.x, 1.0 / self.y, 1.0 / self.z)
    }

    /// Largest component value.
    pub fn max_element(self) -> f32 {
        self.x.max(self.y).max(self.z)
    }

    /// Smallest component value.
    pub fn min_element(self) -> f32 {
        self.x.min(self.y).min(self.z)
    }

    /// Component-wise multiplication (Hadamard product).
    pub fn mul_elem(self, other: Self) -> Self {
        Self::new(self.x * other.x, self.y * other.y, self.z * other.z)
    }

    /// Linear interpolation: `self * (1 - t) + other * t`.
    pub fn lerp(self, other: Self, t: f32) -> Self {
        self * (1.0 - t) + other * t
    }

    /// `true` if all components are finite.
    pub fn is_finite(self) -> bool {
        self.x.is_finite() && self.y.is_finite() && self.z.is_finite()
    }

    /// Extends to a [`Vec4`] with the given `w`.
    pub fn extend(self, w: f32) -> Vec4 {
        Vec4::new(self.x, self.y, self.z, w)
    }
}

impl fmt::Display for Vec3 {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "({}, {}, {})", self.x, self.y, self.z)
    }
}

impl Index<usize> for Vec3 {
    type Output = f32;

    fn index(&self, index: usize) -> &f32 {
        match index {
            0 => &self.x,
            1 => &self.y,
            2 => &self.z,
            _ => panic!("Vec3 index out of range: {index}"),
        }
    }
}

impl IndexMut<usize> for Vec3 {
    fn index_mut(&mut self, index: usize) -> &mut f32 {
        match index {
            0 => &mut self.x,
            1 => &mut self.y,
            2 => &mut self.z,
            _ => panic!("Vec3 index out of range: {index}"),
        }
    }
}

impl Add for Vec3 {
    type Output = Self;
    fn add(self, rhs: Self) -> Self {
        Self::new(self.x + rhs.x, self.y + rhs.y, self.z + rhs.z)
    }
}

impl AddAssign for Vec3 {
    fn add_assign(&mut self, rhs: Self) {
        *self = *self + rhs;
    }
}

impl Sub for Vec3 {
    type Output = Self;
    fn sub(self, rhs: Self) -> Self {
        Self::new(self.x - rhs.x, self.y - rhs.y, self.z - rhs.z)
    }
}

impl SubAssign for Vec3 {
    fn sub_assign(&mut self, rhs: Self) {
        *self = *self - rhs;
    }
}

impl Mul<f32> for Vec3 {
    type Output = Self;
    fn mul(self, rhs: f32) -> Self {
        Self::new(self.x * rhs, self.y * rhs, self.z * rhs)
    }
}

impl Mul<Vec3> for f32 {
    type Output = Vec3;
    fn mul(self, rhs: Vec3) -> Vec3 {
        rhs * self
    }
}

impl MulAssign<f32> for Vec3 {
    fn mul_assign(&mut self, rhs: f32) {
        *self = *self * rhs;
    }
}

impl Div<f32> for Vec3 {
    type Output = Self;
    fn div(self, rhs: f32) -> Self {
        Self::new(self.x / rhs, self.y / rhs, self.z / rhs)
    }
}

impl DivAssign<f32> for Vec3 {
    fn div_assign(&mut self, rhs: f32) {
        *self = *self / rhs;
    }
}

impl Neg for Vec3 {
    type Output = Self;
    fn neg(self) -> Self {
        Self::new(-self.x, -self.y, -self.z)
    }
}

impl From<[f32; 3]> for Vec3 {
    fn from(a: [f32; 3]) -> Self {
        Self::new(a[0], a[1], a[2])
    }
}

impl From<Vec3> for [f32; 3] {
    fn from(v: Vec3) -> [f32; 3] {
        [v.x, v.y, v.z]
    }
}

/// A 4-component `f32` vector (homogeneous coordinates, RGBA colors).
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct Vec4 {
    /// X component.
    pub x: f32,
    /// Y component.
    pub y: f32,
    /// Z component.
    pub z: f32,
    /// W component.
    pub w: f32,
}

impl Vec4 {
    /// Creates a vector from its components.
    pub const fn new(x: f32, y: f32, z: f32, w: f32) -> Self {
        Self { x, y, z, w }
    }

    /// The zero vector.
    pub const ZERO: Self = Self::new(0.0, 0.0, 0.0, 0.0);

    /// Dot product with `other`.
    pub fn dot(self, other: Self) -> f32 {
        self.x * other.x + self.y * other.y + self.z * other.z + self.w * other.w
    }

    /// Drops the `w` component.
    pub fn truncate(self) -> Vec3 {
        Vec3::new(self.x, self.y, self.z)
    }
}

impl fmt::Display for Vec4 {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "({}, {}, {}, {})", self.x, self.y, self.z, self.w)
    }
}

impl Add for Vec4 {
    type Output = Self;
    fn add(self, rhs: Self) -> Self {
        Self::new(
            self.x + rhs.x,
            self.y + rhs.y,
            self.z + rhs.z,
            self.w + rhs.w,
        )
    }
}

impl Mul<f32> for Vec4 {
    type Output = Self;
    fn mul(self, rhs: f32) -> Self {
        Self::new(self.x * rhs, self.y * rhs, self.z * rhs, self.w * rhs)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn cross_follows_right_hand_rule() {
        assert_eq!(Vec3::X.cross(Vec3::Y), Vec3::Z);
        assert_eq!(Vec3::Y.cross(Vec3::Z), Vec3::X);
        assert_eq!(Vec3::Z.cross(Vec3::X), Vec3::Y);
    }

    #[test]
    fn cross_is_antisymmetric() {
        let a = Vec3::new(1.0, 2.0, 3.0);
        let b = Vec3::new(-4.0, 0.5, 2.0);
        assert_eq!(a.cross(b), -(b.cross(a)));
    }

    #[test]
    fn normalized_has_unit_length() {
        let v = Vec3::new(3.0, 4.0, 12.0);
        assert!((v.normalized().length() - 1.0).abs() < 1e-6);
    }

    #[test]
    fn normalized_zero_stays_zero() {
        assert_eq!(Vec3::ZERO.normalized(), Vec3::ZERO);
    }

    #[test]
    fn dot_of_orthogonal_vectors_is_zero() {
        assert_eq!(Vec3::X.dot(Vec3::Y), 0.0);
    }

    #[test]
    fn min_max_are_componentwise() {
        let a = Vec3::new(1.0, 5.0, -2.0);
        let b = Vec3::new(2.0, 3.0, -1.0);
        assert_eq!(a.min(b), Vec3::new(1.0, 3.0, -2.0));
        assert_eq!(a.max(b), Vec3::new(2.0, 5.0, -1.0));
    }

    #[test]
    fn recip_of_zero_is_infinite() {
        let r = Vec3::new(0.0, 2.0, -4.0).recip();
        assert!(r.x.is_infinite());
        assert_eq!(r.y, 0.5);
        assert_eq!(r.z, -0.25);
    }

    #[test]
    fn lerp_endpoints() {
        let a = Vec3::new(1.0, 2.0, 3.0);
        let b = Vec3::new(5.0, 6.0, 7.0);
        assert_eq!(a.lerp(b, 0.0), a);
        assert_eq!(a.lerp(b, 1.0), b);
    }

    #[test]
    fn indexing_round_trips() {
        let mut v = Vec3::new(1.0, 2.0, 3.0);
        v[1] = 9.0;
        assert_eq!(v[0], 1.0);
        assert_eq!(v[1], 9.0);
        assert_eq!(v[2], 3.0);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn indexing_out_of_range_panics() {
        let v = Vec3::ZERO;
        let _ = v[3];
    }

    #[test]
    fn vec4_truncate_drops_w() {
        assert_eq!(
            Vec4::new(1.0, 2.0, 3.0, 4.0).truncate(),
            Vec3::new(1.0, 2.0, 3.0)
        );
    }

    #[test]
    fn vec2_length() {
        assert_eq!(Vec2::new(3.0, 4.0).length(), 5.0);
    }
}
