//! Unit quaternions for Gaussian orientations.

use crate::mat::Mat3;
use crate::vec::Vec3;

/// A quaternion `w + xi + yj + zk`, used to parameterize the rotation of an
/// anisotropic Gaussian exactly as 3DGS/3DGRT checkpoints do.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Quat {
    /// Scalar part.
    pub w: f32,
    /// i component.
    pub x: f32,
    /// j component.
    pub y: f32,
    /// k component.
    pub z: f32,
}

impl Quat {
    /// The identity rotation.
    pub const IDENTITY: Self = Self {
        w: 1.0,
        x: 0.0,
        y: 0.0,
        z: 0.0,
    };

    /// Creates a quaternion from components `(w, x, y, z)`.
    pub const fn new(w: f32, x: f32, y: f32, z: f32) -> Self {
        Self { w, x, y, z }
    }

    /// Creates a rotation of `angle` radians about `axis` (normalized
    /// internally).
    pub fn from_axis_angle(axis: Vec3, angle: f32) -> Self {
        let axis = axis.normalized();
        let (s, c) = (angle * 0.5).sin_cos();
        Self::new(c, axis.x * s, axis.y * s, axis.z * s)
    }

    /// `true` when all four components are finite.
    pub fn is_finite(self) -> bool {
        self.w.is_finite() && self.x.is_finite() && self.y.is_finite() && self.z.is_finite()
    }

    /// Quaternion norm.
    pub fn length(self) -> f32 {
        (self.w * self.w + self.x * self.x + self.y * self.y + self.z * self.z).sqrt()
    }

    /// Returns this quaternion scaled to unit norm. A zero quaternion maps
    /// to the identity, matching the behaviour of 3DGS training code when
    /// normalizing raw parameters.
    pub fn normalized(self) -> Self {
        let len = self.length();
        if len > 0.0 {
            Self::new(self.w / len, self.x / len, self.y / len, self.z / len)
        } else {
            Self::IDENTITY
        }
    }

    /// Converts to a rotation matrix. The quaternion is normalized first so
    /// that arbitrary checkpoint parameters produce valid rotations.
    pub fn to_mat3(self) -> Mat3 {
        let q = self.normalized();
        let (w, x, y, z) = (q.w, q.x, q.y, q.z);
        Mat3::from_cols(
            Vec3::new(
                1.0 - 2.0 * (y * y + z * z),
                2.0 * (x * y + w * z),
                2.0 * (x * z - w * y),
            ),
            Vec3::new(
                2.0 * (x * y - w * z),
                1.0 - 2.0 * (x * x + z * z),
                2.0 * (y * z + w * x),
            ),
            Vec3::new(
                2.0 * (x * z + w * y),
                2.0 * (y * z - w * x),
                1.0 - 2.0 * (x * x + y * y),
            ),
        )
    }

    /// Rotates a vector by this quaternion.
    pub fn rotate(self, v: Vec3) -> Vec3 {
        self.to_mat3().mul_vec3(v)
    }
}

impl Default for Quat {
    fn default() -> Self {
        Self::IDENTITY
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::f32::consts::FRAC_PI_2;

    fn assert_vec3_close(a: Vec3, b: Vec3) {
        assert!((a - b).length() < 1e-5, "{a} != {b}");
    }

    #[test]
    fn identity_rotation_is_noop() {
        let v = Vec3::new(1.0, 2.0, 3.0);
        assert_eq!(Quat::IDENTITY.rotate(v), v);
    }

    #[test]
    fn quarter_turn_about_z_maps_x_to_y() {
        let q = Quat::from_axis_angle(Vec3::Z, FRAC_PI_2);
        assert_vec3_close(q.rotate(Vec3::X), Vec3::Y);
    }

    #[test]
    fn rotation_matrix_is_orthonormal() {
        let q = Quat::from_axis_angle(Vec3::new(1.0, 1.0, 0.5), 1.234);
        let m = q.to_mat3();
        let should_be_identity = m.mul_mat3(&m.transpose());
        assert_vec3_close(should_be_identity.x_axis, Vec3::X);
        assert_vec3_close(should_be_identity.y_axis, Vec3::Y);
        assert_vec3_close(should_be_identity.z_axis, Vec3::Z);
        assert!((m.determinant() - 1.0).abs() < 1e-5);
    }

    #[test]
    fn unnormalized_quaternion_still_yields_rotation() {
        let q = Quat::new(2.0, 0.0, 0.0, 2.0); // unnormalized quarter-ish turn
        let m = q.to_mat3();
        assert!((m.determinant() - 1.0).abs() < 1e-5);
    }

    #[test]
    fn zero_quaternion_normalizes_to_identity() {
        assert_eq!(Quat::new(0.0, 0.0, 0.0, 0.0).normalized(), Quat::IDENTITY);
    }
}
