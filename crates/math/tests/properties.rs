//! Property-based tests for the math substrate.

use grtx_math::intersect::{ray_ellipsoid, ray_sphere_unit, ray_triangle};
use grtx_math::{Aabb, Affine3, Mat3, Quat, Ray, Vec3};
use proptest::prelude::*;

fn finite_f32(range: std::ops::Range<f32>) -> impl Strategy<Value = f32> {
    let (start, end) = (range.start, range.end);
    (0.0f64..1.0f64).prop_map(move |u| start + (u as f32) * (end - start))
}

fn vec3(range: std::ops::Range<f32>) -> impl Strategy<Value = Vec3> {
    (
        finite_f32(range.clone()),
        finite_f32(range.clone()),
        finite_f32(range),
    )
        .prop_map(|(x, y, z)| Vec3::new(x, y, z))
}

fn unit_dir() -> impl Strategy<Value = Vec3> {
    vec3(-1.0..1.0)
        .prop_filter("non-degenerate direction", |v| v.length() > 1e-3)
        .prop_map(|v| v.normalized())
}

fn rotation() -> impl Strategy<Value = Mat3> {
    (unit_dir(), finite_f32(0.0..std::f32::consts::TAU))
        .prop_map(|(axis, angle)| Quat::from_axis_angle(axis, angle).to_mat3())
}

proptest! {
    #[test]
    fn aabb_union_contains_both(amin in vec3(-10.0..10.0), aext in vec3(0.0..5.0),
                                bmin in vec3(-10.0..10.0), bext in vec3(0.0..5.0)) {
        let a = Aabb::new(amin, amin + aext);
        let b = Aabb::new(bmin, bmin + bext);
        let u = a.union(&b);
        prop_assert!(u.contains_box(&a, 1e-6));
        prop_assert!(u.contains_box(&b, 1e-6));
    }

    #[test]
    fn aabb_hit_point_is_on_boundary_or_inside(origin in vec3(-20.0..20.0), dir in unit_dir(),
                                               bmin in vec3(-5.0..5.0), bext in vec3(0.1..5.0)) {
        let b = Aabb::new(bmin, bmin + bext);
        let ray = Ray::new(origin, dir);
        if let Some((t_enter, t_exit)) = b.intersect_ray(&ray) {
            prop_assert!(t_enter <= t_exit);
            // Points strictly between entry and exit must be inside
            // (within tolerance proportional to coordinate scale).
            let mid = ray.at(0.5 * (t_enter + t_exit));
            let slack = Vec3::splat(1e-3);
            let padded = Aabb::new(b.min - slack, b.max + slack);
            prop_assert!(padded.contains_point(mid));
        }
    }

    #[test]
    fn sphere_hit_points_lie_on_sphere(origin in vec3(-10.0..10.0), dir in unit_dir()) {
        let ray = Ray::new(origin, dir);
        if let Some(hit) = ray_sphere_unit(&ray) {
            if hit.t_enter > 0.0 {
                prop_assert!((ray.at(hit.t_enter).length() - 1.0).abs() < 1e-2);
            }
            prop_assert!((ray.at(hit.t_exit).length() - 1.0).abs() < 1e-2);
        }
    }

    #[test]
    fn triangle_hit_point_matches_barycentric(origin in vec3(-10.0..10.0), dir in unit_dir(),
                                              v0 in vec3(-3.0..3.0), e1 in vec3(-2.0..2.0), e2 in vec3(-2.0..2.0)) {
        let v1 = v0 + e1;
        let v2 = v0 + e2;
        let ray = Ray::new(origin, dir);
        if let Some(hit) = ray_triangle(&ray, v0, v1, v2) {
            let p_ray = ray.at(hit.t);
            let p_bary = v0 * (1.0 - hit.u - hit.v) + v1 * hit.u + v2 * hit.v;
            prop_assert!((p_ray - p_bary).length() < 1e-2 * (1.0 + p_ray.length()));
        }
    }

    /// The central GRTX-SW property: a world-space ellipsoid intersection
    /// equals a unit-sphere intersection of the instance-transformed ray.
    #[test]
    fn ellipsoid_equals_transformed_unit_sphere(
        rot in rotation(),
        scale in vec3(0.05..3.0),
        center in vec3(-5.0..5.0),
        origin in vec3(-10.0..10.0),
        dir in unit_dir(),
    ) {
        let scale = Vec3::new(scale.x.max(0.05), scale.y.max(0.05), scale.z.max(0.05));
        let linear = rot.mul_mat3(&Mat3::from_diagonal(scale));
        let instance = Affine3::new(linear, center).unwrap();
        let ray = Ray::new(origin, dir);

        let world = ray_ellipsoid(&ray, center, &instance.inv_linear);
        let local = ray_sphere_unit(&instance.inverse_transform_ray(&ray));

        match (world, local) {
            (None, None) => {}
            (Some(w), Some(l)) => {
                prop_assert!((w.t_enter - l.t_enter).abs() < 1e-2 * (1.0 + w.t_enter.abs()));
                prop_assert!((w.t_exit - l.t_exit).abs() < 1e-2 * (1.0 + w.t_exit.abs()));
            }
            // Grazing rays may disagree within float tolerance; accept only
            // near-tangent cases.
            (Some(w), None) => prop_assert!((w.t_exit - w.t_enter).abs() < 1e-2),
            (None, Some(l)) => prop_assert!((l.t_exit - l.t_enter).abs() < 1e-2),
        }
    }

    #[test]
    fn affine_round_trip(rot in rotation(), scale in vec3(0.05..3.0),
                         t in vec3(-5.0..5.0), p in vec3(-5.0..5.0)) {
        let scale = Vec3::new(scale.x.max(0.05), scale.y.max(0.05), scale.z.max(0.05));
        let linear = rot.mul_mat3(&Mat3::from_diagonal(scale));
        let a = Affine3::new(linear, t).unwrap();
        let q = a.inverse_transform_point(a.transform_point(p));
        prop_assert!((q - p).length() < 1e-2);
    }

    #[test]
    fn mat3_inverse_is_two_sided(rot in rotation(), scale in vec3(0.1..3.0)) {
        let scale = Vec3::new(scale.x.max(0.1), scale.y.max(0.1), scale.z.max(0.1));
        let m = rot.mul_mat3(&Mat3::from_diagonal(scale));
        let inv = m.inverse().unwrap();
        let left = inv.mul_mat3(&m);
        let right = m.mul_mat3(&inv);
        for i in 0..3 {
            prop_assert!((left.col(i) - Mat3::IDENTITY.col(i)).length() < 1e-3);
            prop_assert!((right.col(i) - Mat3::IDENTITY.col(i)).length() < 1e-3);
        }
    }
}
