//! Property-based equivalence tests for the vectorized kernels.
//!
//! The determinism contract of `grtx_math::simd` is that lane `i` of a
//! batched kernel is **bitwise identical** to the corresponding scalar
//! test, and that the explicit AVX2/NEON paths are bitwise identical to
//! the portable fixed-width kernel. These tests drive random rays and
//! boxes — including axis-parallel rays (zero direction components),
//! degenerate boxes (`min == max`), inverted-interval boxes
//! (`min > max`), and boxes entirely behind the origin — through both
//! and compare bits.
//!
//! The `fma` cargo feature contracts the slab arithmetic and therefore
//! deliberately breaks bitwise equality **with the scalar reference**;
//! those assertions gate themselves off under the feature. The packet
//! transpose (`slab_test_8x4` lane `r` == `slab_test_8(rays[r])`) holds
//! on every build, `fma` included, and stays unconditional.

use grtx_math::simd::{
    ray_triangle_4, ray_triangle_4_portable, slab_test_8, slab_test_8_portable, slab_test_8x4,
    slab_test_8x4_portable, HitMask8, SoaAabbs, Tri4, Tri4Hit, LANES,
};
#[cfg(not(feature = "fma"))]
use grtx_math::Aabb;
use grtx_math::{intersect::ray_triangle, Ray, Vec3};
use proptest::prelude::*;

fn finite_f32(range: std::ops::Range<f32>) -> impl Strategy<Value = f32> {
    let (start, end) = (range.start, range.end);
    (0.0f64..1.0f64).prop_map(move |u| start + (u as f32) * (end - start))
}

fn vec3(range: std::ops::Range<f32>) -> impl Strategy<Value = Vec3> {
    (
        finite_f32(range.clone()),
        finite_f32(range.clone()),
        finite_f32(range),
    )
        .prop_map(|(x, y, z)| Vec3::new(x, y, z))
}

/// Directions with a chance of exactly-zero components (axis-parallel
/// rays), whose slab arithmetic produces `0 * ±inf = NaN` terms.
fn direction() -> impl Strategy<Value = Vec3> {
    (vec3(-1.0..1.0), 0u32..8).prop_map(|(v, zero_mask)| {
        Vec3::new(
            if zero_mask & 1 != 0 { 0.0 } else { v.x },
            if zero_mask & 2 != 0 { 0.0 } else { v.y },
            if zero_mask & 4 != 0 { 0.0 } else { v.z },
        )
    })
}

/// Boxes of every shape class the traversal can meet: regular,
/// point-degenerate (`min == max`), inverted (`min > max` — the empty
/// sentinel shape), flat (one zero-extent axis), and far-behind-origin.
fn aabb_case() -> impl Strategy<Value = grtx_math::Aabb> {
    (vec3(-8.0..8.0), vec3(0.01..4.0), 0u32..5).prop_map(|(corner, ext, class)| match class {
        0 => grtx_math::Aabb::new(corner, corner + ext),
        1 => grtx_math::Aabb::new(corner, corner), // degenerate point box
        2 => grtx_math::Aabb::new(corner, corner - ext), // inverted interval
        3 => grtx_math::Aabb::new(corner, corner + Vec3::new(0.0, ext.y, ext.z)), // flat slab
        _ => grtx_math::Aabb::new(corner - Vec3::splat(100.0), corner - Vec3::splat(96.0)), // behind
    })
}

/// Triangles including degenerate slivers (collinear / duplicate
/// vertices) that must always miss via the determinant guard.
fn triangle_case() -> impl Strategy<Value = [Vec3; 3]> {
    (vec3(-4.0..4.0), vec3(-3.0..3.0), vec3(-3.0..3.0), 0u32..4).prop_map(|(v0, e1, e2, class)| {
        match class {
            0 | 1 => [v0, v0 + e1, v0 + e2],
            2 => [v0, v0 + e1, v0 + e1 * 2.0], // collinear sliver
            _ => [v0, v0, v0 + e2],            // duplicate vertex
        }
    })
}

/// Four packet rays spanning the coherence spectrum the packet path
/// meets in practice: two random rays, one axis-parallel, one with the
/// shared origin of a primary-ray fan.
fn ray_quad() -> impl Strategy<Value = [Ray; 4]> {
    (
        vec3(-12.0..12.0),
        direction(),
        direction(),
        direction(),
        direction(),
    )
        .prop_map(|(origin, d0, d1, d2, d3)| {
            [
                Ray::new(origin, d0),
                Ray::new(origin, d1),
                Ray::new(origin + Vec3::splat(0.25), d2),
                Ray::new(origin, Vec3::new(d3.x, 0.0, 0.0)),
            ]
        })
}

fn assert_slab_paths_equal(a: &HitMask8, b: &HitMask8) -> Result<(), TestCaseError> {
    prop_assert_eq!(a.mask, b.mask, "hit masks diverge");
    for i in 0..LANES {
        if a.mask & (1 << i) != 0 {
            prop_assert_eq!(a.t_enter[i].to_bits(), b.t_enter[i].to_bits());
            prop_assert_eq!(a.t_exit[i].to_bits(), b.t_exit[i].to_bits());
        }
    }
    Ok(())
}

fn assert_tri_paths_equal(a: &Tri4Hit, b: &Tri4Hit) -> Result<(), TestCaseError> {
    prop_assert_eq!(a.mask, b.mask, "hit masks diverge");
    for i in 0..4 {
        if a.mask & (1 << i) != 0 {
            prop_assert_eq!(a.t[i].to_bits(), b.t[i].to_bits());
            prop_assert_eq!(a.u[i].to_bits(), b.u[i].to_bits());
            prop_assert_eq!(a.v[i].to_bits(), b.v[i].to_bits());
        }
    }
    Ok(())
}

#[cfg(not(feature = "fma"))]
proptest! {
    /// Lane `i` of the batched slab test reproduces the scalar
    /// `Aabb::intersect_ray` bit-for-bit on every box class, across the
    /// full 8-lane width.
    #[test]
    fn slab_lane_equals_scalar(boxes in proptest::collection::vec(aabb_case(), 0..9),
                               origin in vec3(-12.0..12.0), dir in direction()) {
        let ray = Ray::new(origin, dir);
        let soa = SoaAabbs::from_aabbs(&boxes);
        let batched = slab_test_8(&ray.inv(), &soa);
        for (i, b) in boxes.iter().enumerate() {
            let scalar = b.intersect_ray(&ray);
            let lane = batched.hit(i);
            match (scalar, lane) {
                (Some((se, sx)), Some((le, lx))) => {
                    prop_assert_eq!(se.to_bits(), le.to_bits(), "lane {} entry", i);
                    prop_assert_eq!(sx.to_bits(), lx.to_bits(), "lane {} exit", i);
                }
                (None, None) => {}
                (s, l) => prop_assert!(false, "lane {}: scalar {:?} vs batched {:?}", i, s, l),
            }
        }
        // Sentinel padding lanes must stay silent.
        prop_assert_eq!(batched.mask & !soa.lane_mask(), 0);
    }

    /// The dispatched path (explicit AVX2/NEON when the CPU has it)
    /// produces exactly the portable kernel's bits.
    #[test]
    fn slab_dispatch_equals_portable(boxes in proptest::collection::vec(aabb_case(), 0..9),
                                     origin in vec3(-12.0..12.0), dir in direction()) {
        let ray = Ray::new(origin, dir);
        let soa = SoaAabbs::from_aabbs(&boxes);
        assert_slab_paths_equal(
            &slab_test_8(&ray.inv(), &soa),
            &slab_test_8_portable(&ray.inv(), &soa),
        )?;
    }

    /// Packet lane `r` of the dispatched packet kernel reproduces the
    /// portable single-ray kernel bit-for-bit — the packet path may
    /// never perturb a traversal decision.
    #[test]
    fn packet_lane_equals_portable_single_ray(
        boxes in proptest::collection::vec(aabb_case(), 0..9),
        rays in ray_quad(),
    ) {
        let soa = SoaAabbs::from_aabbs(&boxes);
        let invs = [rays[0].inv(), rays[1].inv(), rays[2].inv(), rays[3].inv()];
        let packet = slab_test_8x4(&invs, &soa);
        for r in 0..4 {
            assert_slab_paths_equal(&packet[r], &slab_test_8_portable(&invs[r], &soa))?;
        }
    }

    /// Lane `i` of the batched triangle test reproduces the scalar
    /// `ray_triangle` bit-for-bit, degenerate slivers included.
    #[test]
    fn triangle_lane_equals_scalar(tris in proptest::collection::vec(triangle_case(), 0..5),
                                   origin in vec3(-10.0..10.0), dir in direction()) {
        let ray = Ray::new(origin, dir);
        let packet = Tri4::from_triangles(&tris);
        let batched = ray_triangle_4(&ray, &packet);
        for (i, [a, b, c]) in tris.iter().enumerate() {
            let scalar = ray_triangle(&ray, *a, *b, *c);
            let lane = batched.hit(i);
            match (scalar, lane) {
                (Some(s), Some(l)) => {
                    prop_assert_eq!(s.t.to_bits(), l.t.to_bits(), "lane {} t", i);
                    prop_assert_eq!(s.u.to_bits(), l.u.to_bits(), "lane {} u", i);
                    prop_assert_eq!(s.v.to_bits(), l.v.to_bits(), "lane {} v", i);
                }
                (None, None) => {}
                (s, l) => prop_assert!(false, "lane {}: scalar {:?} vs batched {:?}", i, s, l),
            }
        }
        prop_assert_eq!(batched.mask & !packet.lane_mask(), 0);
    }

    /// Dispatched triangle path equals the portable kernel bitwise.
    #[test]
    fn triangle_dispatch_equals_portable(tris in proptest::collection::vec(triangle_case(), 0..5),
                                         origin in vec3(-10.0..10.0), dir in direction()) {
        let ray = Ray::new(origin, dir);
        let packet = Tri4::from_triangles(&tris);
        assert_tri_paths_equal(
            &ray_triangle_4(&ray, &packet),
            &ray_triangle_4_portable(&ray, &packet),
        )?;
    }
}

// Under `fma` the scalar reference no longer matches bitwise, but the
// packet transpose must still hold exactly: both sides of the identity
// contract identically, so packet lane `r` == the dispatched single-ray
// kernel on every build.
proptest! {
    #[test]
    fn packet_lane_equals_dispatched_single_ray(
        boxes in proptest::collection::vec(aabb_case(), 0..9),
        rays in ray_quad(),
    ) {
        let soa = SoaAabbs::from_aabbs(&boxes);
        let invs = [rays[0].inv(), rays[1].inv(), rays[2].inv(), rays[3].inv()];
        let packet = slab_test_8x4(&invs, &soa);
        let portable = slab_test_8x4_portable(&invs, &soa);
        for r in 0..4 {
            assert_slab_paths_equal(&packet[r], &slab_test_8(&invs[r], &soa))?;
            assert_slab_paths_equal(&portable[r], &slab_test_8_portable(&invs[r], &soa))?;
        }
    }
}

/// Deterministic worst-case corners, independent of the random driver:
/// rays lying exactly in a slab plane (the `0 * inf` NaN case), inverted
/// boxes, and boxes behind the origin.
#[cfg(not(feature = "fma"))]
#[test]
fn slab_known_hard_cases_match_scalar() {
    let boxes = vec![
        // Ray origin exactly on the min-x plane, axis-parallel in x.
        Aabb::new(Vec3::new(0.0, -1.0, -1.0), Vec3::new(2.0, 1.0, 1.0)),
        // Degenerate point box at the origin.
        Aabb::new(Vec3::ZERO, Vec3::ZERO),
        // Inverted interval (empty sentinel shape).
        Aabb::new(Vec3::splat(1.0), Vec3::splat(-1.0)),
        // Entirely behind the origin.
        Aabb::new(Vec3::new(-5.0, -1.0, -1.0), Vec3::new(-3.0, 1.0, 1.0)),
        // Contains the origin.
        Aabb::new(Vec3::splat(-0.5), Vec3::splat(0.5)),
    ];
    let rays = [
        Ray::new(Vec3::ZERO, Vec3::Z),
        Ray::new(Vec3::ZERO, Vec3::new(0.0, 0.0, -1.0)),
        Ray::new(Vec3::ZERO, Vec3::new(1.0, 0.0, 0.0)),
        Ray::new(Vec3::ZERO, Vec3::ZERO), // fully degenerate direction
        Ray::new(Vec3::new(0.0, 0.0, -4.0), Vec3::new(0.0, 0.0, 1.0)),
    ];
    let soa = SoaAabbs::from_aabbs(&boxes);
    for ray in &rays {
        let batched = slab_test_8(&ray.inv(), &soa);
        let portable = slab_test_8_portable(&ray.inv(), &soa);
        assert_eq!(batched.mask, portable.mask);
        for (i, b) in boxes.iter().enumerate() {
            let scalar = b.intersect_ray(ray);
            match (scalar, batched.hit(i)) {
                (Some((se, sx)), Some((le, lx))) => {
                    assert_eq!(se.to_bits(), le.to_bits(), "lane {i} entry");
                    assert_eq!(sx.to_bits(), lx.to_bits(), "lane {i} exit");
                }
                (None, None) => {}
                (s, l) => panic!("lane {i}: scalar {s:?} vs batched {l:?}"),
            }
        }
    }
}

/// The behind-origin packet hard case: four rays all pointing away from
/// every box must produce all-miss masks on every path.
#[test]
fn packet_behind_origin_rays_all_miss() {
    let boxes: Vec<grtx_math::Aabb> = (0..8)
        .map(|i| {
            grtx_math::Aabb::from_center_half_extent(
                Vec3::new(0.0, 0.0, -5.0 - i as f32),
                Vec3::splat(0.4),
            )
        })
        .collect();
    let soa = SoaAabbs::from_aabbs(&boxes);
    let rays = [
        Ray::new(Vec3::ZERO, Vec3::Z),
        Ray::new(Vec3::ZERO, Vec3::new(0.1, 0.0, 1.0)),
        Ray::new(Vec3::ZERO, Vec3::new(0.0, 0.1, 1.0)),
        Ray::new(Vec3::ZERO, Vec3::new(0.0, 0.0, 1.0)),
    ];
    let invs = [rays[0].inv(), rays[1].inv(), rays[2].inv(), rays[3].inv()];
    for hit in slab_test_8x4(&invs, &soa) {
        assert_eq!(hit.mask, 0, "behind-origin boxes must all miss");
    }
    for hit in slab_test_8x4_portable(&invs, &soa) {
        assert_eq!(hit.mask, 0);
    }
}
