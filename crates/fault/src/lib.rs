#![forbid(unsafe_code)]

//! # grtx-fault — deterministic fault injection and typed errors
//!
//! The workspace's failure model, in three pieces:
//!
//! 1. **[`GrtxError`]** — the typed error taxonomy every `try_*` entry
//!    point returns instead of panicking: invalid scenes/cameras/configs
//!    at the validation boundary, and [`GrtxError::StageFailed`] /
//!    [`GrtxError::DependencyFailed`] when a pipeline stage exhausts its
//!    retries.
//! 2. **[`FaultPlan`] / [`FaultInjector`]** — a seeded, wall-clock-free
//!    fault plan that injects panics at named pipeline sites
//!    ([`FaultSite`]), keyed by the same `(frame << 32) | camera` launch
//!    keys the profiler uses. Transient faults fail the first N attempts
//!    of a stage task then succeed; permanent faults fail every attempt.
//!    Every injection is recorded in a [`FaultLog`] whose canonical order
//!    is schedule-independent: the same plan produces the same log at
//!    any thread count, depth, or shard count.
//! 3. **[`RetryPolicy`]** — how the pipeline responds to a panicking
//!    stage task. The default (`max_attempts: 1`, no quarantine) is
//!    exactly the legacy poison-everything behavior; a resilient policy
//!    retries deterministically (attempt counts, never timers) and
//!    quarantines frames that exhaust their retries so the rest of the
//!    stream keeps flowing.
//!
//! Determinism is the contract: fault decisions are pure functions of
//! `(plan, site, key, unit, attempt)` — no clocks, no global RNG — so a
//! stream that recovers from transient faults is bit-identical to a
//! fault-free run.

mod error;
mod inject;
mod plan;

pub use error::GrtxError;
pub use inject::{silence_injected_panics, FaultInjector, FaultLog, FaultRecord, InjectedFault};
pub use plan::{FaultKind, FaultPlan, FaultSite, FaultSpec, RetryPolicy};
