//! The runtime half of fault injection: a cheap cloneable handle that
//! pipeline stages probe, a log of every injection, and a panic-hook
//! filter that keeps injected panics out of test output.

use crate::plan::{FaultKind, FaultPlan, FaultSite};
use std::fmt;
use std::sync::{Arc, Mutex, Once};

/// The panic payload an injected fault unwinds with. The pipeline's
/// catch point downcasts to this to distinguish injected faults from
/// foreign panics (and to attribute build-task faults to the partition
/// vs build site).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct InjectedFault {
    /// The site that fired.
    pub site: FaultSite,
    /// The launch key `(frame << 32) | camera` the probe carried.
    pub key: u64,
    /// The execution unit (SM index for fragment probes, else 0).
    pub unit: u64,
    /// The 0-based attempt number that failed.
    pub attempt: u32,
}

impl fmt::Display for InjectedFault {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "injected {} fault (frame {}, camera {}, unit {}, attempt {})",
            self.site.name(),
            self.key >> 32,
            self.key & 0xffff_ffff,
            self.unit,
            self.attempt
        )
    }
}

/// One recorded injection.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub struct FaultRecord {
    /// The site that fired.
    pub site: FaultSite,
    /// The launch key `(frame << 32) | camera`.
    pub key: u64,
    /// The execution unit (SM index for fragment probes, else 0).
    pub unit: u64,
    /// The 0-based attempt number that failed.
    pub attempt: u32,
    /// Whether the matching spec was permanent.
    pub permanent: bool,
}

/// Every injection an injector performed, in canonical
/// `(site, key, unit, attempt)` order — identical for the same plan and
/// workload at any thread count, pipeline depth, or shard count.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct FaultLog {
    /// The sorted records.
    pub records: Vec<FaultRecord>,
}

impl FaultLog {
    /// Number of injections.
    pub fn len(&self) -> usize {
        self.records.len()
    }

    /// Whether nothing was injected.
    pub fn is_empty(&self) -> bool {
        self.records.is_empty()
    }

    /// Injections at one site.
    pub fn count_for(&self, site: FaultSite) -> usize {
        self.records.iter().filter(|r| r.site == site).count()
    }
}

struct Inner {
    plan: FaultPlan,
    log: Mutex<Vec<FaultRecord>>,
}

/// A cheap cloneable fault-injection handle, following the workspace's
/// `Telemetry`/`Profiler` handle pattern: [`FaultInjector::disabled`]
/// (the default) is a no-op whose probes cost one branch; an enabled
/// handle evaluates its [`FaultPlan`] on every probe and panics with an
/// [`InjectedFault`] payload when a fault fires.
#[derive(Clone, Default)]
pub struct FaultInjector {
    inner: Option<Arc<Inner>>,
}

impl fmt::Debug for FaultInjector {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match &self.inner {
            Some(inner) => f
                .debug_struct("FaultInjector")
                .field("specs", &inner.plan.specs().len())
                .finish(),
            None => f.write_str("FaultInjector(disabled)"),
        }
    }
}

/// Handle identity (`Arc::ptr_eq`), like `Telemetry`: two clones of one
/// injector are equal; two separately-enabled injectors are not.
impl PartialEq for FaultInjector {
    fn eq(&self, other: &Self) -> bool {
        match (&self.inner, &other.inner) {
            (None, None) => true,
            (Some(a), Some(b)) => Arc::ptr_eq(a, b),
            _ => false,
        }
    }
}

impl FaultInjector {
    /// The no-op handle: probes never fire, nothing is logged.
    pub fn disabled() -> Self {
        Self { inner: None }
    }

    /// An injector driven by `plan`.
    pub fn with_plan(plan: FaultPlan) -> Self {
        Self {
            inner: Some(Arc::new(Inner {
                plan,
                log: Mutex::new(Vec::new()),
            })),
        }
    }

    /// Whether this handle can ever inject.
    pub fn is_enabled(&self) -> bool {
        self.inner.is_some()
    }

    /// Evaluates the plan at `(site, key, unit, attempt)`; if a fault
    /// fires, records it and panics with an [`InjectedFault`] payload.
    /// The decision is a pure function of the arguments — no clocks, no
    /// ambient state — so probes are schedule-independent.
    pub fn probe(&self, site: FaultSite, key: u64, unit: u64, attempt: u32) {
        let Some(inner) = &self.inner else {
            return;
        };
        let Some(kind) = inner.plan.fault_for(site, key, unit, attempt) else {
            return;
        };
        {
            let mut log = inner
                .log
                .lock()
                .unwrap_or_else(std::sync::PoisonError::into_inner);
            log.push(FaultRecord {
                site,
                key,
                unit,
                attempt,
                permanent: kind == FaultKind::Permanent,
            });
        }
        std::panic::panic_any(InjectedFault {
            site,
            key,
            unit,
            attempt,
        });
    }

    /// Snapshot of every injection so far, in canonical order.
    pub fn log(&self) -> FaultLog {
        let mut records = match &self.inner {
            Some(inner) => inner
                .log
                .lock()
                .unwrap_or_else(std::sync::PoisonError::into_inner)
                .clone(),
            None => Vec::new(),
        };
        records.sort_unstable();
        FaultLog { records }
    }
}

/// Installs (once, process-wide) a panic hook that suppresses the
/// default "thread panicked" report for [`InjectedFault`] payloads and
/// delegates everything else to the previously-installed hook. Chaos
/// tests and examples call this so thousands of injected panics don't
/// drown real output; foreign panics still print normally.
pub fn silence_injected_panics() {
    static INSTALL: Once = Once::new();
    INSTALL.call_once(|| {
        let previous = std::panic::take_hook();
        std::panic::set_hook(Box::new(move |info| {
            if info.payload().downcast_ref::<InjectedFault>().is_none() {
                previous(info);
            }
        }));
    });
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::plan::FaultPlan;

    #[test]
    fn disabled_probe_is_a_no_op() {
        let injector = FaultInjector::disabled();
        injector.probe(FaultSite::Build, 0, 0, 0);
        assert!(injector.log().is_empty());
        assert!(!injector.is_enabled());
    }

    #[test]
    fn probe_records_then_panics_with_typed_payload() {
        silence_injected_panics();
        let injector =
            FaultInjector::with_plan(FaultPlan::new().transient(FaultSite::Fragment, 0, 1));
        let clone = injector.clone();
        let payload = std::panic::catch_unwind(move || clone.probe(FaultSite::Fragment, 5, 2, 0))
            .expect_err("fault must fire on attempt 0");
        let fault = payload
            .downcast_ref::<InjectedFault>()
            .expect("payload is InjectedFault");
        assert_eq!(fault.site, FaultSite::Fragment);
        assert_eq!(fault.unit, 2);
        // Attempt 1 succeeds (transient with 1 failure).
        injector.probe(FaultSite::Fragment, 5, 2, 1);
        let log = injector.log();
        assert_eq!(log.len(), 1);
        assert_eq!(log.records[0].attempt, 0);
        assert!(!log.records[0].permanent);
    }

    #[test]
    fn log_is_canonically_sorted() {
        silence_injected_panics();
        let plan = FaultPlan::new()
            .transient(FaultSite::Merge, 1, 1)
            .transient(FaultSite::Build, 0, 1);
        let injector = FaultInjector::with_plan(plan);
        for (site, key) in [(FaultSite::Merge, 1u64 << 32), (FaultSite::Build, 0)] {
            let handle = injector.clone();
            let _ = std::panic::catch_unwind(move || handle.probe(site, key, 0, 0));
        }
        let log = injector.log();
        assert_eq!(log.records[0].site, FaultSite::Build);
        assert_eq!(log.records[1].site, FaultSite::Merge);
    }

    #[test]
    fn handle_equality_is_identity() {
        let a = FaultInjector::with_plan(FaultPlan::new());
        let b = FaultInjector::with_plan(FaultPlan::new());
        assert_eq!(a, a.clone());
        assert_ne!(a, b);
        assert_eq!(FaultInjector::disabled(), FaultInjector::disabled());
    }
}
